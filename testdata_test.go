package battsched_test

import (
	"os"
	"testing"

	battsched "repro"
	"repro/internal/taskgraph"
)

// TestShippedFixtures verifies the JSON files under testdata/ (usable
// directly with `battsched -graph testdata/g3.json`) stay byte-equivalent
// to the in-code fixtures.
func TestShippedFixtures(t *testing.T) {
	for _, tc := range []struct {
		path string
		want *battsched.Graph
	}{
		{"testdata/g2.json", battsched.G2()},
		{"testdata/g3.json", battsched.G3()},
	} {
		f, err := os.Open(tc.path)
		if err != nil {
			t.Fatalf("%s: %v (regenerate with taskgraph.WriteJSON)", tc.path, err)
		}
		got, err := taskgraph.ReadJSON(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", tc.path, err)
		}
		if got.N() != tc.want.N() || got.EdgeCount() != tc.want.EdgeCount() {
			t.Fatalf("%s: shape %d/%d, want %d/%d", tc.path, got.N(), got.EdgeCount(), tc.want.N(), tc.want.EdgeCount())
		}
		for _, id := range tc.want.TaskIDs() {
			a, b := tc.want.Task(id), got.Task(id)
			if b == nil || len(a.Points) != len(b.Points) {
				t.Fatalf("%s: task %d differs", tc.path, id)
			}
			for j := range a.Points {
				if a.Points[j].Current != b.Points[j].Current || a.Points[j].Time != b.Points[j].Time {
					t.Fatalf("%s: task %d point %d differs", tc.path, id, j)
				}
			}
		}
	}
}

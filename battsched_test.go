package battsched_test

import (
	"errors"
	"math"
	"testing"

	battsched "repro"
)

func smallGraph(t *testing.T) *battsched.Graph {
	t.Helper()
	var b battsched.Builder
	b.AddTask(1, "a",
		battsched.DesignPoint{Current: 500, Time: 2},
		battsched.DesignPoint{Current: 100, Time: 5})
	b.AddTask(2, "b",
		battsched.DesignPoint{Current: 400, Time: 1},
		battsched.DesignPoint{Current: 80, Time: 3})
	b.AddEdge(1, 2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFacadeRun(t *testing.T) {
	g := smallGraph(t)
	res, err := battsched.Run(g, 8, battsched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.ValidateDeadline(g, 8); err != nil {
		t.Fatal(err)
	}
	if res.Cost <= 0 || res.Duration <= 0 {
		t.Fatalf("result = %+v", res)
	}
	// Both tasks should be at their lowest-power point at this loose
	// deadline (5 + 3 = 8).
	if res.Schedule.Assignment[1] != 1 || res.Schedule.Assignment[2] != 1 {
		t.Fatalf("assignment = %v", res.Schedule.Assignment)
	}
}

func TestFacadeRunner(t *testing.T) {
	g := battsched.G3()
	s, err := battsched.New(g, 230, battsched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	var r *battsched.Runner = s.NewRunner()
	for pass := 0; pass < 2; pass++ {
		res, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Cost != want.Cost || res.Iterations != want.Iterations {
			t.Fatalf("pass %d: runner result %+v != Run's %+v", pass, res, want)
		}
		if err := res.Schedule.ValidateDeadline(g, 230); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFacadeInfeasible(t *testing.T) {
	g := smallGraph(t)
	if _, err := battsched.Run(g, 2.5, battsched.Options{}); !errors.Is(err, battsched.ErrDeadlineInfeasible) {
		t.Fatalf("want ErrDeadlineInfeasible, got %v", err)
	}
}

func TestFacadeBaselines(t *testing.T) {
	g := smallGraph(t)
	rv, err := battsched.RunBaselineRV(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := rv.ValidateDeadline(g, 8); err != nil {
		t.Fatal(err)
	}
	ch, err := battsched.RunBaselineChowdhury(g, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.ValidateDeadline(g, 8); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeFixtures(t *testing.T) {
	if battsched.G2().N() != 9 || battsched.G3().N() != 15 {
		t.Fatal("fixtures wrong size")
	}
	if len(battsched.G2Deadlines()) != 3 || len(battsched.G3Deadlines()) != 3 {
		t.Fatal("deadline lists wrong")
	}
	// Returned slices are copies.
	ds := battsched.G2Deadlines()
	ds[0] = -1
	if battsched.G2Deadlines()[0] == -1 {
		t.Fatal("G2Deadlines leaks internal state")
	}
	if battsched.G3Deadline != 230 {
		t.Fatal("G3Deadline wrong")
	}
}

func TestFacadeBatteryAndLifetime(t *testing.T) {
	m := battsched.NewRakhmatov(battsched.DefaultBeta)
	p := battsched.Profile{{Current: 100, Duration: 10}}
	sigma := m.ChargeLost(p, 10)
	if sigma <= 1000 {
		t.Fatalf("sigma = %g, want > delivered 1000", sigma)
	}
	if tDie, died := battsched.Lifetime(m, p, sigma/2); !died || tDie <= 0 || tDie >= 10 {
		t.Fatalf("lifetime = %g, %v", tDie, died)
	}
}

func TestFacadeSimulate(t *testing.T) {
	g := smallGraph(t)
	res, err := battsched.Run(g, 8, battsched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	simRes, err := battsched.Simulate(battsched.Platform{Capacity: math.Inf(1)}, g, res.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if !simRes.Completed || math.Abs(simRes.FinishTime-res.Duration) > 1e-9 {
		t.Fatalf("sim = %+v vs duration %g", simRes, res.Duration)
	}
	runs, _, err := battsched.MissionCycles(battsched.Platform{Capacity: 5000}, g, res.Schedule, 50)
	if err != nil {
		t.Fatal(err)
	}
	if runs < 1 {
		t.Fatalf("mission cycles = %d", runs)
	}
}

func TestFacadeRunWithIdle(t *testing.T) {
	g := battsched.G3()
	deadline := g.MaxTotalTime() * 1.2
	res, plan, err := battsched.RunWithIdle(g, deadline, battsched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Cost > plan.BaseCost {
		t.Fatalf("idle raised cost: %f > %f", plan.Cost, plan.BaseCost)
	}
	if plan.TotalIdle() <= 0 {
		t.Fatal("loose deadline should place rest")
	}
	// The padded profile must run on a simulated platform.
	p := plan.Apply(g, res.Schedule)
	simRes, err := battsched.SimulateProfile(battsched.Platform{Capacity: math.Inf(1)}, p)
	if err != nil {
		t.Fatal(err)
	}
	if !simRes.Completed || math.Abs(simRes.ChargeLost-plan.Cost) > 1e-6 {
		t.Fatalf("sim disagrees with plan: %+v vs %f", simRes, plan.Cost)
	}
}

func TestFacadeMultiStart(t *testing.T) {
	g := battsched.G2()
	base, err := battsched.Run(g, 75, battsched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := battsched.RunMultiStart(g, 75, battsched.Options{}, battsched.MultiStartOptions{Restarts: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if multi.Cost > base.Cost+1e-9 {
		t.Fatalf("multi-start worse than base: %f vs %f", multi.Cost, base.Cost)
	}
}

func TestFacadeRunBatch(t *testing.T) {
	jobs := []battsched.BatchJob{
		{Name: "iter", Graph: battsched.G3(), Deadline: battsched.G3Deadline},
		{Name: "ms", Graph: battsched.G2(), Deadline: 75, Strategy: "multistart",
			MultiStart: battsched.MultiStartOptions{Restarts: 4, Seed: 1, Workers: 4}},
		{Name: "bad", Graph: battsched.G3(), Deadline: 1},
	}
	results := battsched.RunBatch(jobs, 0)
	if len(results) != len(jobs) {
		t.Fatalf("got %d results, want %d", len(results), len(jobs))
	}
	if results[0].Err != nil || results[1].Err != nil {
		t.Fatalf("good jobs failed: %v / %v", results[0].Err, results[1].Err)
	}
	if results[0].Cost <= 0 || results[1].Cost <= 0 {
		t.Fatal("non-positive batch costs")
	}
	if !errors.Is(results[2].Err, battsched.ErrDeadlineInfeasible) {
		t.Fatalf("bad job error = %v", results[2].Err)
	}
	if len(battsched.BatchStrategies()) < 7 {
		t.Fatalf("strategies = %v", battsched.BatchStrategies())
	}
}

func TestFacadeFitAndModels(t *testing.T) {
	m := battsched.NewRakhmatov(0.3)
	var obs []battsched.Observation
	for _, i := range []float64{100, 300, 900} {
		p := battsched.Profile{{Current: i, Duration: 1e6}}
		life, died := battsched.Lifetime(m, p, 20000)
		if !died {
			t.Fatal("setup: battery should die")
		}
		obs = append(obs, battsched.Observation{Current: i, Lifetime: life})
	}
	alpha, beta, err := battsched.FitRakhmatov(obs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(beta-0.3) > 0.01 || math.Abs(alpha-20000) > 300 {
		t.Fatalf("fit = (%g, %g), want (20000, 0.3)", alpha, beta)
	}
	// The other models are constructible through the facade.
	kb := battsched.NewKiBaM(20000, 0.6, 0.05)
	pk := battsched.NewPeukert(1.2, 100)
	p := battsched.Profile{{Current: 200, Duration: 10}}
	if kb.ChargeLost(p, 10) <= 0 || pk.ChargeLost(p, 10) <= 0 {
		t.Fatal("facade models broken")
	}
}

// TestFacadePaperHeadline is the end-to-end acceptance test: on the
// paper's own benchmarks the iterative algorithm must beat the
// reference-[1] baseline at five of six deadlines and never lose by more
// than 3% (the paper's Table 4 shows wins everywhere; our G2
// reconstruction concedes at most the near-tie at deadline 75).
func TestFacadePaperHeadline(t *testing.T) {
	m := battsched.NewRakhmatov(battsched.DefaultBeta)
	wins := 0
	total := 0
	for _, tc := range []struct {
		g  *battsched.Graph
		ds []float64
	}{
		{battsched.G2(), battsched.G2Deadlines()},
		{battsched.G3(), battsched.G3Deadlines()},
	} {
		for _, d := range tc.ds {
			total++
			res, err := battsched.Run(tc.g, d, battsched.Options{})
			if err != nil {
				t.Fatal(err)
			}
			base, err := battsched.RunBaselineRV(tc.g, d)
			if err != nil {
				t.Fatal(err)
			}
			bc := base.Cost(tc.g, m)
			if res.Cost <= bc {
				wins++
			}
			if res.Cost > bc*1.03 {
				t.Errorf("lost to baseline by >3%% at deadline %g: %.0f vs %.0f", d, res.Cost, bc)
			}
		}
	}
	if wins < 5 {
		t.Errorf("won only %d of %d cells; paper wins all 6", wins, total)
	}
}

// TestFacadeBatterySpec covers the declarative battery surface: parsing
// the -battery flag syntax, running under a spec, the default spec's
// equivalence to zero options, and cached spec jobs.
func TestFacadeBatterySpec(t *testing.T) {
	g := smallGraph(t)

	spec, err := battsched.ParseBatterySpec("kibam,capacity=5000,c=0.5,rate=0.1")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Kind != battsched.BatteryKindKiBaM {
		t.Fatalf("parsed kind %q", spec.Kind)
	}
	res, err := battsched.Run(g, 8, battsched.Options{Battery: &spec})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost <= 0 {
		t.Fatalf("kibam cost %g", res.Cost)
	}

	// The default spec reproduces the zero-options run bit-for-bit.
	def := battsched.DefaultBatterySpec()
	viaSpec, err := battsched.Run(g, 8, battsched.Options{Battery: &def})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := battsched.Run(g, 8, battsched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(viaSpec.Cost) != math.Float64bits(plain.Cost) {
		t.Fatalf("default spec cost %x != zero-options cost %x",
			math.Float64bits(viaSpec.Cost), math.Float64bits(plain.Cost))
	}

	// Spec jobs cache: second identical cached run is served from
	// memory (stats show the hit) with an equal result.
	c := battsched.NewCache(0)
	first, err := battsched.RunCached(c, g, 8, battsched.Options{Battery: &spec})
	if err != nil {
		t.Fatal(err)
	}
	second, err := battsched.RunCached(c, g, 8, battsched.Options{Battery: &spec})
	if err != nil {
		t.Fatal(err)
	}
	if first.Cost != second.Cost {
		t.Fatalf("cached spec run differs: %g vs %g", first.Cost, second.Cost)
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 1 || st.Bypasses != 0 {
		t.Fatalf("spec job must cache (1 hit / 1 miss / 0 bypasses), got %+v", st)
	}

	if kinds := battsched.BatterySpecKinds(); len(kinds) != 5 {
		t.Fatalf("kinds = %v", kinds)
	}
	if _, err := battsched.ParseBatterySpec("hamster-wheel"); err == nil {
		t.Fatal("unknown kind must fail to parse")
	}
}

// One application, four batteries: schedule the paper's G3 fork-join
// graph under every declarative battery-model kind and compare what
// each model believes the schedule costs and how long the pack lasts
// when the mission repeats.
//
// The point of the comparison: the scheduler is battery-model-parametric
// (core.Options.Battery), so the same engine serves Rakhmatov-style
// diffusion packs, Peukert-style rate-penalty packs and KiBaM two-well
// packs — and the chosen schedule can differ, because each model
// rewards different load shapes (the ideal model is indifferent to
// order, Peukert punishes high currents, Rakhmatov and KiBaM also
// reward recovery rests).
//
// Run with: go run ./examples/modelcompare
package main

import (
	"fmt"
	"log"
	"os"

	battsched "repro"
	"repro/internal/report"
)

func main() {
	g := battsched.G3()
	const deadline = battsched.G3Deadline
	// One pack rating shared by every model so the lifetime columns
	// compare like for like (mA·min; roughly 2x one mission's charge).
	const alpha = 60000.0

	specs := []battsched.BatterySpec{
		{Kind: battsched.BatteryKindRakhmatov}, // paper default: beta 0.273, 10 terms
		{Kind: battsched.BatteryKindIdeal},
		{Kind: battsched.BatteryKindPeukert, Exponent: 1.2, RefCurrent: 100},
		{Kind: battsched.BatteryKindKiBaM, Capacity: alpha, WellFraction: 0.5, RateConstant: 0.05},
	}

	table := report.Table{
		Title:   fmt.Sprintf("G3 (deadline %.0f min) under every battery-model kind, pack %.0f mA·min", float64(deadline), alpha),
		Headers: []string{"model", "sigma", "duration", "energy", "iters", "cycles", "dies at", "schedule"},
		Notes: []string{
			"sigma/energy in mA·min, duration/dies-at in minutes; cycles = complete missions before the pack dies",
			"every row is one -battery flag away on battsched/battbatch/battschedd, and fully cacheable",
		},
	}
	for i := range specs {
		spec := specs[i]
		res, err := battsched.Run(g, deadline, battsched.Options{Battery: &spec})
		if err != nil {
			log.Fatalf("%s: %v", spec, err)
		}
		model, err := spec.Resolve()
		if err != nil {
			log.Fatal(err)
		}
		cycles, diedAt, err := battsched.MissionCycles(
			battsched.Platform{Model: model, Capacity: alpha}, g, res.Schedule, 1000)
		if err != nil {
			log.Fatal(err)
		}
		table.AddRow(
			model.Name(),
			report.F0(res.Cost),
			report.F1(res.Duration),
			report.F0(res.Energy),
			res.Iterations,
			cycles,
			report.F1(diedAt),
			report.DPs(res.Schedule.Order, res.Schedule.Assignment),
		)
	}
	if err := table.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

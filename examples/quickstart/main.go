// Quickstart: build a small application graph, schedule it battery-aware,
// and compare against naive scheduling.
//
// The application is a four-stage media pipeline on a DVS processor:
// capture → {filter, analyze} → encode. Every task has three
// voltage/frequency design points (fast/hot to slow/cool).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	battsched "repro"
)

func main() {
	var b battsched.Builder
	b.AddTask(1, "capture",
		battsched.DesignPoint{Current: 620, Time: 1.5, Name: "1.8V"},
		battsched.DesignPoint{Current: 260, Time: 2.4, Name: "1.3V"},
		battsched.DesignPoint{Current: 90, Time: 4.0, Name: "0.9V"})
	b.AddTask(2, "filter",
		battsched.DesignPoint{Current: 710, Time: 2.0, Name: "1.8V"},
		battsched.DesignPoint{Current: 300, Time: 3.2, Name: "1.3V"},
		battsched.DesignPoint{Current: 105, Time: 5.3, Name: "0.9V"})
	b.AddTask(3, "analyze",
		battsched.DesignPoint{Current: 480, Time: 1.2, Name: "1.8V"},
		battsched.DesignPoint{Current: 205, Time: 1.9, Name: "1.3V"},
		battsched.DesignPoint{Current: 70, Time: 3.2, Name: "0.9V"})
	b.AddTask(4, "encode",
		battsched.DesignPoint{Current: 840, Time: 2.6, Name: "1.8V"},
		battsched.DesignPoint{Current: 355, Time: 4.2, Name: "1.3V"},
		battsched.DesignPoint{Current: 125, Time: 7.0, Name: "0.9V"})
	b.AddEdge(1, 2)
	b.AddEdge(1, 3)
	b.AddEdge(2, 4)
	b.AddEdge(3, 4)
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	const deadline = 12.0 // minutes — tight: only ~23% slack over the fastest schedule
	res, err := battsched.Run(g, deadline, battsched.Options{})
	if err != nil {
		log.Fatal(err)
	}
	model := battsched.NewRakhmatov(battsched.DefaultBeta)

	fmt.Println("== battery-aware schedule (this paper's algorithm) ==")
	fmt.Printf("order+points: %s\n", res.Schedule)
	fmt.Printf("duration:     %.1f min (deadline %.0f)\n", res.Duration, deadline)
	fmt.Printf("battery cost: %.0f mA·min (sigma), energy %.0f mA·min\n\n", res.Cost, res.Energy)

	// Naive comparison 1: run everything at full speed.
	fast := &battsched.Schedule{Order: g.TopoOrder(), Assignment: map[int]int{1: 0, 2: 0, 3: 0, 4: 0}}
	fmt.Println("== all-fastest (battery-unaware) ==")
	fmt.Printf("battery cost: %.0f mA·min\n\n", fast.Cost(g, model))

	// Naive comparison 2: minimum-energy DP baseline (reference [1]).
	base, err := battsched.RunBaselineRV(g, deadline)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== min-energy DP + Eq.5 sequencing (baseline [1]) ==")
	fmt.Printf("battery cost: %.0f mA·min\n\n", base.Cost(g, model))

	saving := (fast.Cost(g, model) - res.Cost) / fast.Cost(g, model) * 100
	fmt.Printf("battery-aware scheduling saves %.1f%% of apparent charge vs all-fastest\n", saving)
	fmt.Println()
	fmt.Println("(at this tight deadline the iterative algorithm finds the true optimum — verify")
	fmt.Println(" with internal/baseline.Optimal; at looser deadlines the two heuristics trade")
	fmt.Println(" places on tiny graphs, and the gap widens again on the paper-sized ones)")
}

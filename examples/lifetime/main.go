// Battery model demonstrations (the paper's Section 3): the rate-capacity
// effect, the recovery effect, and the discharge-order property that
// motivates battery-aware sequencing. All three are what make plain
// minimum-energy scheduling suboptimal on real batteries.
//
// Run with: go run ./examples/lifetime
package main

import (
	"fmt"

	battsched "repro"
)

func main() {
	model := battsched.NewRakhmatov(battsched.DefaultBeta)
	const alpha = 40000.0 // battery capacity, mA·min

	fmt.Println("== rate-capacity effect ==")
	fmt.Println("an ideal battery would last alpha/I minutes; a real one dies sooner at high rates")
	fmt.Printf("%8s  %12s  %12s  %9s\n", "I (mA)", "ideal (min)", "RV (min)", "penalty")
	for _, i := range []float64{50, 100, 200, 400, 800} {
		ideal := alpha / i
		p := battsched.Profile{{Current: i, Duration: ideal * 1.01}}
		rv, died := battsched.Lifetime(model, p, alpha)
		if !died {
			rv = ideal
		}
		fmt.Printf("%8.0f  %12.1f  %12.1f  %8.1f%%\n", i, ideal, rv, (1-rv/ideal)*100)
	}

	fmt.Println("\n== recovery effect ==")
	fmt.Println("inserting rest lets the battery recover charge it had made unavailable")
	cont := battsched.Profile{{Current: 400, Duration: 40}}
	pulsed := battsched.Profile{}
	for k := 0; k < 4; k++ {
		pulsed = append(pulsed,
			battsched.Interval{Current: 400, Duration: 10},
			battsched.Interval{Current: 0, Duration: 10})
	}
	sc := model.ChargeLost(cont, cont.TotalTime())
	sp := model.ChargeLost(pulsed, pulsed.TotalTime())
	fmt.Printf("continuous 400 mA x 40 min: sigma %.0f mA·min\n", sc)
	fmt.Printf("pulsed 10 on / 10 off  x 4: sigma %.0f mA·min (%.1f%% less)\n", sp, (sc-sp)/sc*100)

	fmt.Println("\n== discharge-order property ==")
	fmt.Println("same intervals, different order: decreasing currents lose the least charge")
	tasks := battsched.Profile{
		{Current: 600, Duration: 10},
		{Current: 100, Duration: 10},
		{Current: 400, Duration: 10},
		{Current: 250, Duration: 10},
	}
	dec := tasks.SortedDescending()
	inc := dec.Reversed()
	T := tasks.TotalTime()
	fmt.Printf("decreasing order: sigma %.0f mA·min\n", model.ChargeLost(dec, T))
	fmt.Printf("given order:      sigma %.0f mA·min\n", model.ChargeLost(tasks, T))
	fmt.Printf("increasing order: sigma %.0f mA·min\n", model.ChargeLost(inc, T))

	fmt.Println("\n== why it matters: identical energy, different lifetimes ==")
	fmt.Println("all orders deliver the same charge; only the battery's nonlinearity separates them")
	fmt.Printf("delivered charge (all orders): %.0f mA·min\n", tasks.DeliveredCharge(T))
	const alpha30 = 30000.0
	for _, tc := range []struct {
		name string
		p    battsched.Profile
	}{{"decreasing", dec}, {"increasing", inc}} {
		if t, died := battsched.Lifetime(model, tc.p, alpha30); died {
			fmt.Printf("alpha=%.0f battery under %s order: DIES at %.1f min\n", alpha30, tc.name, t)
		} else {
			fmt.Printf("alpha=%.0f battery under %s order: survives all %.0f min\n", alpha30, tc.name, T)
		}
	}
	fmt.Println("\n(caveat the schedulers must respect: the decreasing order minimizes sigma at")
	fmt.Println(" completion but front-loads the discharge — on a much smaller battery it can")
	fmt.Println(" die during its early burst while the increasing order limps further)")
}

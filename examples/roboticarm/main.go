// Robotic arm controller case study (the paper's Section 5, graph G2):
// schedule the 9-task controller at the paper's three deadlines, compare
// with the reference-[1] baseline, then put the schedules on a simulated
// battery-powered platform and count how many control missions a finite
// battery supports under each policy.
//
// Run with: go run ./examples/roboticarm
package main

import (
	"fmt"
	"log"

	battsched "repro"
)

func main() {
	g := battsched.G2()
	model := battsched.NewRakhmatov(battsched.DefaultBeta)

	fmt.Println("G2: robotic arm controller, 9 tasks x 4 design points")
	fmt.Printf("fastest completion %.1f min, slowest %.1f min\n\n", g.MinTotalTime(), g.MaxTotalTime())

	fmt.Println("deadline   ours(sigma)   baseline[1]   % diff   paper: ours/[1]")
	paper := map[float64][2]float64{55: {30913, 35739}, 75: {13751, 13885}, 95: {7961, 8517}}
	var best *battsched.Schedule
	for _, d := range battsched.G2Deadlines() {
		res, err := battsched.Run(g, d, battsched.Options{})
		if err != nil {
			log.Fatal(err)
		}
		base, err := battsched.RunBaselineRV(g, d)
		if err != nil {
			log.Fatal(err)
		}
		bc := base.Cost(g, model)
		fmt.Printf("%7.0f    %9.0f    %9.0f    %5.1f    %6.0f/%.0f\n",
			d, res.Cost, bc, (bc-res.Cost)/res.Cost*100, paper[d][0], paper[d][1])
		if d == 75 {
			best = res.Schedule
		}
	}

	// Mission-cycle analysis at the middle deadline: how many complete
	// control runs fit on a 60 Ah·min-class battery pack?
	const capacity = 120000.0 // mA·min
	platform := battsched.Platform{Model: model, Capacity: capacity}
	naive := &battsched.Schedule{Order: g.TopoOrder(), Assignment: map[int]int{}}
	for _, id := range g.TaskIDs() {
		naive.Assignment[id] = 0 // all-fastest
	}
	oursRuns, oursDied, err := battsched.MissionCycles(platform, g, best, 100)
	if err != nil {
		log.Fatal(err)
	}
	naiveRuns, naiveDied, err := battsched.MissionCycles(platform, g, naive, 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmission cycles on a %.0f mA·min battery (deadline 75):\n", capacity)
	fmt.Printf("  battery-aware: %d full runs (dies at %.0f min)\n", oursRuns, oursDied)
	fmt.Printf("  all-fastest:   %d full runs (dies at %.0f min)\n", naiveRuns, naiveDied)

	// Simulate one run with explicit DVS switch overheads (a
	// pessimistic 0.01-minute re-lock at 50 mA) to confirm the
	// analytical schedule survives a non-ideal platform — the paper
	// folds this overhead into the per-task estimates.
	simRes, err := battsched.Simulate(battsched.Platform{
		PE:       battsched.CPU{SwitchTime: 0.01, SwitchCurrent: 50},
		Model:    model,
		Capacity: capacity,
	}, g, best)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated single run with DVS switch overhead: finish %.2f min, sigma %.0f mA·min, %d events, completed=%v\n",
		simRes.FinishTime, simRes.ChargeLost, len(simRes.Events), simRes.Completed)
}

// FPGA platform example: the paper's other target hardware. Each task has
// several alternative bitstream implementations (more parallel = faster
// but hotter) instead of voltage levels, and the platform pays a
// reconfiguration cost between tasks. The battery-aware scheduler is
// platform-agnostic — it only sees (current, time) design points — so the
// same algorithm applies unchanged.
//
// Run with: go run ./examples/fpga
package main

import (
	"fmt"
	"log"

	battsched "repro"
	"repro/internal/dvs"
)

func main() {
	// A 6-stage signal-processing chain on an FPGA. Per task: base
	// (fully sequential) implementation current/time, expanded into 4
	// bitstream variants (1x, 2x, 4x, 8x parallel). Parallel variants
	// run faster; current grows slightly slower than the speedup, so
	// energy gently improves with parallelism but the battery's
	// rate-capacity effect punishes the hot variants.
	stages := []struct {
		name  string
		baseI float64 // mA
		baseT float64 // min
	}{
		{"acquire", 60, 16},
		{"fir", 80, 24},
		{"fft", 95, 32},
		{"detect", 70, 12},
		{"classify", 85, 20},
		{"report", 40, 8},
	}
	var b battsched.Builder
	for k, st := range stages {
		pts, err := dvs.FPGAImplementations(st.baseI, st.baseT, 4, 2.0, 1.8)
		if err != nil {
			log.Fatal(err)
		}
		b.AddTask(k+1, st.name, pts...)
		if k > 0 {
			b.AddEdge(k, k+1)
		}
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	const deadline = 60.0
	res, err := battsched.Run(g, deadline, battsched.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FPGA chain, deadline %.0f min\n", deadline)
	fmt.Printf("chosen bitstreams: %s\n", res.Schedule)
	for _, id := range res.Schedule.Order {
		pt := g.Task(id).Points[res.Schedule.Assignment[id]]
		fmt.Printf("  %-9s -> %-5s  %5.1f mA  %5.1f min\n", g.Task(id).Name, pt.Name, pt.Current, pt.Time)
	}
	fmt.Printf("sigma %.0f mA·min, duration %.1f min\n\n", res.Cost, res.Duration)

	// Simulate with reconfiguration overhead: 0.2 min at 120 mA per
	// bitstream load (full-device configuration from flash).
	plat := battsched.Platform{
		PE:       battsched.FPGA{ReconfigTime: 0.2, ReconfigCurrent: 120},
		Model:    battsched.NewRakhmatov(battsched.DefaultBeta),
		Capacity: 30000,
	}
	sim, err := battsched.Simulate(plat, g, res.Schedule)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with reconfiguration overhead: finish %.1f min, sigma %.0f mA·min, completed=%v\n",
		sim.FinishTime, sim.ChargeLost, sim.Completed)
	fmt.Printf("reconfiguration events: %d (one per task)\n", len(sim.Events)-g.N())

	// Compare against the all-parallel (fastest) configuration.
	fast := &battsched.Schedule{Order: res.Schedule.Order, Assignment: map[int]int{}}
	for _, id := range g.TaskIDs() {
		fast.Assignment[id] = 0
	}
	model := battsched.NewRakhmatov(battsched.DefaultBeta)
	fmt.Printf("\nall-8x-parallel schedule: sigma %.0f mA·min (%.1fx ours)\n",
		fast.Cost(g, model), fast.Cost(g, model)/res.Cost)
}

// Sensitivity study: sweep the deadline across its feasible range on both
// paper graphs and a synthetic layered graph, comparing the iterative
// algorithm against the baselines. This generalizes Table 4's three
// sample points into full curves (printed as CSV for plotting).
//
// Run with: go run ./examples/sensitivity
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	battsched "repro"
	"repro/internal/dvs"
	"repro/internal/taskgraph"
)

func main() {
	model := battsched.NewRakhmatov(battsched.DefaultBeta)

	// A synthetic 12-task layered graph with 4 design points, generated
	// with the paper's G3-style recipe.
	rng := rand.New(rand.NewSource(7))
	recipe := dvs.Recipe{Factors: []float64{1, 0.8, 0.6, 0.4}, Rule: dvs.TimeReversedLinear, Round: 1}
	points, err := recipe.PointsFunc(dvs.RandomRefs(rng, 12, 300, 900, 3, 9))
	if err != nil {
		log.Fatal(err)
	}
	layered, err := taskgraph.Layered(rng, 4, 3, 0.4, points)
	if err != nil {
		log.Fatal(err)
	}

	graphs := []struct {
		name string
		g    *battsched.Graph
	}{
		{"G2", battsched.G2()},
		{"G3", battsched.G3()},
		{"layered12", layered},
	}

	fmt.Println("graph,deadline,ours,baseline_rv,chowdhury,all_fastest,pct_ours_vs_rv")
	for _, tc := range graphs {
		lo, hi := tc.g.MinTotalTime()*1.02, tc.g.MaxTotalTime()*1.02
		for k := 0; k < 10; k++ {
			d := math.Round((lo+(hi-lo)*float64(k)/9)*10) / 10
			res, err := battsched.Run(tc.g, d, battsched.Options{})
			if err != nil {
				continue
			}
			rv, err := battsched.RunBaselineRV(tc.g, d)
			if err != nil {
				continue
			}
			ch, err := battsched.RunBaselineChowdhury(tc.g, d, nil)
			if err != nil {
				continue
			}
			fastCost := math.NaN()
			if fast := allFastest(tc.g); fast != nil && fast.Duration(tc.g) <= d {
				fastCost = fast.Cost(tc.g, model)
			}
			rvCost := rv.Cost(tc.g, model)
			fmt.Printf("%s,%.1f,%.0f,%.0f,%.0f,%.0f,%.1f\n",
				tc.name, d, res.Cost, rvCost, ch.Cost(tc.g, model), fastCost,
				(rvCost-res.Cost)/res.Cost*100)
		}
	}
}

func allFastest(g *battsched.Graph) *battsched.Schedule {
	s := &battsched.Schedule{Order: g.TopoOrder(), Assignment: map[int]int{}}
	for _, id := range g.TaskIDs() {
		s.Assignment[id] = 0
	}
	return s
}

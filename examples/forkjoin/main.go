// Fork-join illustrative example (the paper's Section 4.2, graph G3):
// run the iterative algorithm at deadline 230 with full tracing and print
// the per-iteration sequences and window costs — the live version of the
// paper's Tables 2 and 3.
//
// Run with: go run ./examples/forkjoin
package main

import (
	"fmt"
	"log"

	battsched "repro"
)

func main() {
	g := battsched.G3()
	fmt.Printf("G3: %d tasks x 5 design points, fork-join; deadline %.0f min, beta %.3f\n\n",
		g.N(), battsched.G3Deadline, battsched.DefaultBeta)

	res, err := battsched.Run(g, battsched.G3Deadline, battsched.Options{RecordTrace: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(res.Trace.String())
	fmt.Printf("\nfinal: sigma %.0f mA·min, duration %.1f min, %d iterations\n",
		res.Cost, res.Duration, res.Iterations)
	fmt.Printf("paper:  sigma 13737 mA·min, duration 229.8 min, 4 iterations\n\n")

	// Show where the savings come from: the same assignment executed in
	// the WORST order (increasing currents) wastes measurably more.
	model := battsched.NewRakhmatov(battsched.DefaultBeta)
	p := res.Schedule.Profile(g)
	inc := p.SortedDescending().Reversed()
	fmt.Printf("same design points, decreasing-current order: sigma %.0f\n", model.ChargeLost(p.SortedDescending(), p.TotalTime()))
	fmt.Printf("same design points, chosen (precedence-legal) order: sigma %.0f\n", res.Cost)
	fmt.Printf("same design points, increasing-current order: sigma %.0f\n", model.ChargeLost(inc, inc.TotalTime()))
	fmt.Println("(the unconstrained decreasing order bounds what any sequencing can achieve)")
}

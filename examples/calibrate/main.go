// End-to-end calibration workflow: start from datasheet-style
// constant-current lifetime measurements, fit the Rakhmatov model's
// (capacity, beta), then schedule an application against the *calibrated*
// battery and check the mission actually fits the measured pack.
//
// This is the step the paper assumes has already happened ("it is assumed
// that performance and total power consumption estimates are available");
// here it is shown explicitly so the library is usable on a real device.
//
// Run with: go run ./examples/calibrate
package main

import (
	"fmt"
	"log"

	battsched "repro"
)

func main() {
	// 1. Bench measurements of the battery pack: current -> lifetime.
	// (Synthesized here from a beta=0.35, 50 Ah·min-class pack with ±3%
	// noise, playing the role of lab data.)
	obs := []battsched.Observation{
		{Current: 100, Lifetime: 478.0},
		{Current: 200, Lifetime: 228.9},
		{Current: 400, Lifetime: 106.4},
		{Current: 800, Lifetime: 45.9},
	}
	alpha, beta, err := battsched.FitRakhmatov(obs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibrated battery: alpha = %.0f mA·min, beta = %.3f min^-1/2\n\n", alpha, beta)

	// The same calibration as a declarative spec: kind "calibrated"
	// carries the raw measurements and runs the identical fit at
	// resolve time — so the scheduler below, a battbatch job line, or
	// an HTTP request ({"battery":{"kind":"calibrated",...}}) all cost
	// schedules against this exact pack, cacheably.
	spec := battsched.BatterySpec{Kind: battsched.BatteryKindCalibrated, Observations: obs}

	// 2. The application: a sense→process→transmit pipeline that must
	// repeat every 25 minutes — tight enough that the schedule needs the
	// faster, hotter design points.
	var b battsched.Builder
	b.AddTask(1, "sense",
		battsched.DesignPoint{Current: 420, Time: 6},
		battsched.DesignPoint{Current: 180, Time: 10},
		battsched.DesignPoint{Current: 60, Time: 17})
	b.AddTask(2, "process",
		battsched.DesignPoint{Current: 640, Time: 8},
		battsched.DesignPoint{Current: 270, Time: 13},
		battsched.DesignPoint{Current: 95, Time: 22})
	b.AddTask(3, "transmit",
		battsched.DesignPoint{Current: 510, Time: 4},
		battsched.DesignPoint{Current: 215, Time: 6.5},
		battsched.DesignPoint{Current: 75, Time: 11})
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// 3. Schedule against the calibrated model — through the validated
	// spec path, the same construction every other front end uses.
	const period = 25.0
	res, err := battsched.Run(g, period, battsched.Options{Battery: &spec})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schedule: %s\n", res.Schedule)
	fmt.Printf("per run:  %.1f min, sigma %.0f mA·min on the calibrated pack\n\n", res.Duration, res.Cost)

	// 4. How many mission cycles does the measured pack deliver? The
	// simulator's model resolves from the same spec, so planning and
	// simulation cannot drift apart.
	model, err := spec.Resolve()
	if err != nil {
		log.Fatal(err)
	}
	plat := battsched.Platform{Model: model, Capacity: alpha}
	runs, diedAt, err := battsched.MissionCycles(plat, g, res.Schedule, 1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mission cycles on the calibrated pack: %d (battery dies at %.0f min)\n", runs, diedAt)

	// Compare with planning on an idealized battery of the same rating:
	// the ideal plan overpromises.
	idealRuns, _, err := battsched.MissionCycles(battsched.Platform{Model: battsched.Ideal{}, Capacity: alpha}, g, res.Schedule, 1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("an ideal-battery plan would promise %d cycles — %.0f%% over-commitment\n",
		idealRuns, (float64(idealRuns)/float64(runs)-1)*100)
}

package cache

// Two-tier behavior: the disk store under the LRU turns a fresh
// in-memory cache into a warm one — memory misses are answered from
// disk without running compute, disk hits are promoted into memory,
// computed results are written through, and canceled computations are
// never persisted.

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/sched"
	"repro/internal/store"
)

func tierKey(i int) string {
	return fmt.Sprintf("%064x", i+1)
}

func tierResult(cost float64) engine.Result {
	return engine.Result{
		Strategy: "iterative",
		Cost:     cost,
		Schedule: &sched.Schedule{Order: []int{1, 0}, Assignment: map[int]int{0: 0, 1: 1}},
	}
}

func openTier(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, _, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestTierWriteThroughAndDiskHit: a computed result lands on disk; a
// second cache sharing the store (fresh memory — a "restarted process")
// answers the same key from disk without computing, promotes it into
// memory, and the counters tell that story exactly.
func TestTierWriteThroughAndDiskHit(t *testing.T) {
	dir := t.TempDir()
	want := tierResult(42)

	c1 := NewWithStore(0, openTier(t, dir))
	got, hit := c1.Do(tierKey(0), func() engine.Result { return want })
	if hit || got.Cost != want.Cost {
		t.Fatalf("first Do: hit=%v res=%+v", hit, got)
	}
	if st := c1.Stats(); st.Misses != 1 || st.DiskMisses != 1 || st.DiskEntries != 1 {
		t.Fatalf("after compute: %+v", st)
	}

	c2 := NewWithStore(0, openTier(t, dir))
	computed := false
	got, hit = c2.Do(tierKey(0), func() engine.Result { computed = true; return tierResult(-1) })
	if computed {
		t.Fatal("disk-resident key recomputed")
	}
	if !hit || !reflect.DeepEqual(got.Schedule, want.Schedule) || got.Cost != want.Cost {
		t.Fatalf("disk hit: hit=%v res=%+v", hit, got)
	}
	st := c2.Stats()
	if st.DiskHits != 1 || st.Misses != 0 || st.Hits != 0 {
		t.Fatalf("after disk hit: %+v", st)
	}
	if st.Entries != 1 {
		t.Fatal("disk hit not promoted into memory")
	}
	// Promotion means the next lookup never touches disk again.
	if _, hit = c2.Do(tierKey(0), func() engine.Result { return tierResult(-1) }); !hit {
		t.Fatal("promoted entry missed")
	}
	if st = c2.Stats(); st.Hits != 1 || st.DiskHits != 1 {
		t.Fatalf("after promoted hit: %+v", st)
	}
}

// TestTierDiskHitIsDeepCopy: mutating a disk-served result must not
// corrupt the promoted memory canon.
func TestTierDiskHitIsDeepCopy(t *testing.T) {
	dir := t.TempDir()
	c1 := NewWithStore(0, openTier(t, dir))
	c1.Do(tierKey(0), func() engine.Result { return tierResult(7) })

	c2 := NewWithStore(0, openTier(t, dir))
	got, _ := c2.Do(tierKey(0), func() engine.Result { return tierResult(-1) })
	got.Schedule.Order[0] = -99
	again, hit := c2.Do(tierKey(0), func() engine.Result { return tierResult(-1) })
	if !hit || again.Schedule.Order[0] == -99 {
		t.Fatalf("mutating a disk-served result corrupted the canon: %+v", again.Schedule)
	}
}

// TestTierCanceledNotPersisted: a canceled leader stores nothing in
// either tier.
func TestTierCanceledNotPersisted(t *testing.T) {
	st := openTier(t, t.TempDir())
	c := NewWithStore(0, st)
	res, hit := c.Do(tierKey(0), func() engine.Result {
		return engine.Result{Err: engine.CanceledError(context.Canceled)}
	})
	if hit || !errors.Is(res.Err, engine.ErrCanceled) {
		t.Fatalf("canceled compute: hit=%v err=%v", hit, res.Err)
	}
	if st.Len() != 0 {
		t.Fatal("canceled result written to disk")
	}
	if c.Len() != 0 {
		t.Fatal("canceled result stored in memory")
	}
}

// TestTierErrorResultsPersist: deterministic per-job errors are part of
// the canon and survive the tier boundary like any other result.
func TestTierErrorResultsPersist(t *testing.T) {
	dir := t.TempDir()
	c1 := NewWithStore(0, openTier(t, dir))
	c1.Do(tierKey(0), func() engine.Result {
		return engine.Result{Strategy: "iterative", Err: errors.New("core: infeasible deadline")}
	})

	c2 := NewWithStore(0, openTier(t, dir))
	got, hit := c2.Do(tierKey(0), func() engine.Result { return tierResult(-1) })
	if !hit || got.Err == nil || got.Err.Error() != "core: infeasible deadline" {
		t.Fatalf("error result after restart: hit=%v res=%+v", hit, got)
	}
}

// TestTierNilStoreIsMemoryOnly: NewWithStore(n, nil) behaves exactly
// like New(n) and reports zero disk counters.
func TestTierNilStoreIsMemoryOnly(t *testing.T) {
	c := NewWithStore(0, nil)
	c.Do(tierKey(0), func() engine.Result { return tierResult(1) })
	st := c.Stats()
	if st.Misses != 1 || st.DiskHits != 0 || st.DiskMisses != 0 || st.DiskEntries != 0 {
		t.Fatalf("nil-store stats: %+v", st)
	}
}

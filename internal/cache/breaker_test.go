package cache

import (
	"errors"
	"fmt"
	"syscall"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/store"
)

// fakeClock is a manually-advanced clock for deterministic breaker
// timing — no sleeps in these tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(cfg BreakerConfig) (*breaker, *fakeClock) {
	b := newBreaker(cfg)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b.now = clk.now
	return b, clk
}

func TestBreakerStateMachine(t *testing.T) {
	b, clk := newTestBreaker(BreakerConfig{Threshold: 3, Window: 30 * time.Second, Probe: 10 * time.Second})
	boom := errors.New("boom")

	// Closed: errors below threshold keep it closed.
	for i := 0; i < 2; i++ {
		if !b.allow() {
			t.Fatalf("closed breaker denied op %d", i)
		}
		b.record(boom)
	}
	if got := b.stateName(); got != breakerClosed {
		t.Fatalf("state after 2 errors = %s, want closed", got)
	}

	// The third error inside the window trips it.
	b.allow()
	b.record(boom)
	if got := b.stateName(); got != breakerOpen {
		t.Fatalf("state after 3 errors = %s, want open", got)
	}
	if got := b.tripCount(); got != 1 {
		t.Fatalf("tripCount = %d, want 1", got)
	}

	// Open: everything is denied until the probe interval elapses.
	for i := 0; i < 3; i++ {
		if b.allow() {
			t.Fatalf("open breaker allowed op %d", i)
		}
	}
	if got := b.skipCount(); got != 3 {
		t.Fatalf("skipCount = %d, want 3", got)
	}

	// After the probe interval: exactly one probe is admitted.
	clk.advance(11 * time.Second)
	if !b.allow() {
		t.Fatal("half-open breaker denied the probe")
	}
	if got := b.stateName(); got != breakerHalfOpen {
		t.Fatalf("state during probe = %s, want half-open", got)
	}
	if b.allow() {
		t.Fatal("half-open breaker admitted a second op while the probe is in flight")
	}

	// Probe fails → back to open for another interval.
	b.record(boom)
	if got := b.stateName(); got != breakerOpen {
		t.Fatalf("state after failed probe = %s, want open", got)
	}
	if got := b.tripCount(); got != 2 {
		t.Fatalf("tripCount after failed probe = %d, want 2", got)
	}
	if b.allow() {
		t.Fatal("reopened breaker allowed an op immediately")
	}

	// Second probe succeeds → closed, error history cleared.
	clk.advance(11 * time.Second)
	if !b.allow() {
		t.Fatal("second probe denied")
	}
	b.record(nil)
	if got := b.stateName(); got != breakerClosed {
		t.Fatalf("state after successful probe = %s, want closed", got)
	}
	// One fresh error must not re-trip (history was cleared).
	b.allow()
	b.record(boom)
	if got := b.stateName(); got != breakerClosed {
		t.Fatalf("state after 1 post-recovery error = %s, want closed", got)
	}
}

func TestBreakerWindowExpiry(t *testing.T) {
	b, clk := newTestBreaker(BreakerConfig{Threshold: 3, Window: 10 * time.Second, Probe: time.Second})
	boom := errors.New("boom")

	// Three errors, but spread wider than the window: never trips.
	for i := 0; i < 3; i++ {
		b.allow()
		b.record(boom)
		clk.advance(6 * time.Second)
	}
	if got := b.stateName(); got != breakerClosed {
		t.Fatalf("state with sparse errors = %s, want closed", got)
	}

	// Three errors inside one window: trips.
	for i := 0; i < 3; i++ {
		b.allow()
		b.record(boom)
	}
	if got := b.stateName(); got != breakerOpen {
		t.Fatalf("state with burst errors = %s, want open", got)
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := newBreaker(BreakerConfig{Threshold: -1})
	if b != nil {
		t.Fatal("Threshold<0 should return a nil (disabled) breaker")
	}
	// Nil breakers are always closed and always allow.
	if !b.allow() || b.stateName() != breakerClosed || b.tripCount() != 0 || b.skipCount() != 0 {
		t.Fatal("nil breaker is not a transparent pass-through")
	}
	b.record(errors.New("boom")) // must not panic
}

// TestCacheDegradesToMemoryOnly is the integration test: a cache over a
// store whose disk fails every write trips the breaker, after which the
// cache keeps serving — computes land in memory, disk is bypassed, and
// the counters show it.
func TestCacheDegradesToMemoryOnly(t *testing.T) {
	in := fault.NewInjector(fault.OS,
		fault.Rule{Op: fault.OpSync, Every: 1, Err: syscall.EIO})
	st, _, err := store.OpenFS(t.TempDir(), 0, in)
	if err != nil {
		t.Fatal(err)
	}
	c := NewTiered(8, st, BreakerConfig{Threshold: 3, Window: time.Minute, Probe: time.Hour})

	res := func(i int) engine.Result { return engine.Result{Strategy: "iterative", Cost: float64(i)} }
	key := func(i int) string { return fmt.Sprintf("%064x", i+1) }

	// Each unique key: clean disk miss, compute, failed write-through.
	for i := 0; i < 3; i++ {
		got, cached := c.Do(key(i), func() engine.Result { return res(i) })
		if cached || got.Cost != float64(i) {
			t.Fatalf("Do(%d): cached=%v cost=%v", i, cached, got.Cost)
		}
	}
	if got := c.Stats().DiskBreakerState; got != breakerOpen {
		t.Fatalf("breaker state after 3 write failures = %s, want open", got)
	}

	// Degraded: serving continues, disk untouched.
	writesBefore := in.Count(fault.OpSync)
	for i := 3; i < 6; i++ {
		if got, _ := c.Do(key(i), func() engine.Result { return res(i) }); got.Cost != float64(i) {
			t.Fatalf("degraded Do(%d): cost=%v", i, got.Cost)
		}
	}
	// Memory hits still work.
	if got, cached := c.Do(key(3), func() engine.Result {
		t.Fatal("memory hit recomputed")
		return engine.Result{}
	}); !cached || got.Cost != 3 {
		t.Fatalf("memory hit while degraded: cached=%v cost=%v", cached, got.Cost)
	}
	if after := in.Count(fault.OpSync); after != writesBefore {
		t.Fatalf("disk writes while open: %d -> %d, want unchanged", writesBefore, after)
	}

	s := c.Stats()
	if s.DiskBreakerOpen != 1 {
		t.Errorf("disk_breaker_open = %d, want 1", s.DiskBreakerOpen)
	}
	// 3 degraded keys × (1 skipped read + 1 skipped write) = 6.
	if s.DiskSkipped != 6 {
		t.Errorf("disk_skipped = %d, want 6", s.DiskSkipped)
	}
	if s.DiskErrors != 3 {
		t.Errorf("disk_errors = %d, want 3", s.DiskErrors)
	}
}

// TestCacheBreakerRecovery: after the probe interval, one disk op is
// let through; when the disk has healed, the breaker closes and
// write-through resumes.
func TestCacheBreakerRecovery(t *testing.T) {
	// Exactly 3 one-shot sync faults: the disk "heals" afterwards.
	in := fault.NewInjector(fault.OS,
		fault.Rule{Op: fault.OpSync, Nth: 1, Err: syscall.EIO},
		fault.Rule{Op: fault.OpSync, Nth: 2, Err: syscall.EIO},
		fault.Rule{Op: fault.OpSync, Nth: 3, Err: syscall.EIO})
	st, _, err := store.OpenFS(t.TempDir(), 0, in)
	if err != nil {
		t.Fatal(err)
	}
	c := NewTiered(8, st, BreakerConfig{Threshold: 3, Window: time.Minute, Probe: 10 * time.Second})
	clk := &fakeClock{t: time.Unix(1000, 0)}
	c.brk.now = clk.now

	key := func(i int) string { return fmt.Sprintf("%064x", i+1) }
	for i := 0; i < 3; i++ {
		c.Do(key(i), func() engine.Result { return engine.Result{Strategy: "iterative"} })
	}
	if got := c.DiskBreakerState(); got != breakerOpen {
		t.Fatalf("state = %s, want open", got)
	}

	// Probe interval elapses; the next disk op is the probe. It is a
	// clean read (miss, no error), which closes the breaker.
	clk.advance(11 * time.Second)
	c.Do(key(10), func() engine.Result { return engine.Result{Strategy: "iterative"} })
	if got := c.DiskBreakerState(); got != breakerClosed {
		t.Fatalf("state after healed probe = %s, want closed", got)
	}

	// Write-through is live again: a new compute reaches the disk.
	c.Do(key(11), func() engine.Result { return engine.Result{Strategy: "iterative"} })
	if st.Len() == 0 {
		t.Error("no entries on disk after recovery — write-through did not resume")
	}
}

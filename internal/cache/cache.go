// Package cache memoizes scheduling results behind a content-addressed
// key, turning the batch engine into a serving layer: a production host
// sees streams of repeated (graph, deadline, strategy) requests, and
// every algorithm in this repository is deterministic, so an identical
// request can be answered from memory instead of re-running the
// iterative search and its thousands of Rakhmatov–Vrudhula battery-cost
// evaluations.
//
// The package has two halves:
//
//   - Cache: a bounded, concurrency-safe LRU from canonical content
//     hash (see Key) to engine.Result, with single-flight deduplication —
//     identical requests arriving concurrently compute once and share
//     the result.
//   - Engine: a drop-in cached counterpart of engine.Engine. Its
//     RunBatch has the same ordering, per-job-error and determinism
//     guarantees as the uncached engine; only wall-clock time changes.
//
// Stored results are canonical (request identity stripped) and
// immutable: lookups return deep copies, so callers can mutate what
// they get back without corrupting the cache. Per-job errors are cached
// too — a deterministic failure (infeasible deadline, unknown strategy)
// costs the engine only once.
//
//battlint:deterministic
package cache

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/engine"
)

// DefaultMaxEntries bounds a Cache created with New(0). A cached result
// is a schedule plus a few scalars — roughly proportional to the task
// count — so the default is sized for tens of MB at worst, not for a
// memory budget that needs tuning.
const DefaultMaxEntries = 1024

// Cache is a bounded LRU of canonical scheduling results, safe for
// concurrent use. The zero value is not ready; use New.
type Cache struct {
	mu      sync.Mutex
	max     int
	ll      *list.List               // front = most recently used
	entries map[string]*list.Element // key -> element whose Value is *entry
	flights map[string]*flight       // keys being computed right now

	hits      atomic.Uint64
	misses    atomic.Uint64
	dedups    atomic.Uint64
	evictions atomic.Uint64
	bypasses  atomic.Uint64
}

// entry is one stored result; it lives in both ll and entries.
type entry struct {
	key string
	res engine.Result
}

// flight is one in-progress computation; waiters block on done and then
// read res and canceled (the close of done publishes the writes).
// canceled marks a leader that aborted without producing a result —
// nothing was stored, and live waiters should retry rather than adopt
// the leader's cancellation.
type flight struct {
	done     chan struct{}
	res      engine.Result
	canceled bool
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits counts lookups served from a stored entry.
	Hits uint64 `json:"hits"`
	// Misses counts lookups that had to compute.
	Misses uint64 `json:"misses"`
	// Dedups counts lookups that piggybacked on a concurrent identical
	// computation (single-flight) instead of computing their own.
	Dedups uint64 `json:"dedups"`
	// Evictions counts entries dropped by the LRU bound.
	Evictions uint64 `json:"evictions"`
	// Bypasses counts requests that were not cacheable (opaque
	// deprecated Options.Model, nil graph, unknown strategy, invalid
	// battery spec) and went straight to the engine. Declarative
	// battery specs are cacheable and never counted here.
	Bypasses uint64 `json:"bypasses"`
	// Entries is the current number of stored results.
	Entries int `json:"entries"`
}

// New returns an empty cache bounded at maxEntries results (0 means
// DefaultMaxEntries).
func New(maxEntries int) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	return &Cache{
		max:     maxEntries,
		ll:      list.New(),
		entries: make(map[string]*list.Element),
		flights: make(map[string]*flight),
	}
}

// Do returns the cached result for key, computing it with compute on a
// miss. Concurrent calls with the same key compute once: the first
// caller runs compute, the rest wait and share its result. The returned
// bool reports whether the call was served without running compute
// itself (a stored hit or a single-flight dedup). The result is a deep
// copy — mutating it cannot corrupt the cache. compute must be
// deterministic for the key and must not panic (engine.RunBatch already
// converts job panics into per-job errors).
func (c *Cache) Do(key string, compute func() engine.Result) (engine.Result, bool) {
	return c.DoContext(context.Background(), key, compute)
}

// DoContext is Do with request-scoped cancellation, designed so one
// caller's cancellation can never poison the shared computation:
//
//   - A waiter whose ctx dies detaches immediately with an
//     engine.ErrCanceled result; the leader's flight and the entry it
//     will store are untouched, and other waiters still share it.
//   - A leader whose compute is canceled (its result carries
//     engine.ErrCanceled — ctx died or the job's Timeout fired) stores
//     nothing: the aborted flight is discarded and still-live waiters
//     retry, the first of them becoming the new leader. A cancellation
//     is not a deterministic property of the key, so it must never be
//     served to anyone else.
//
// compute is expected to observe the same ctx and return an
// ErrCanceled result promptly once it is done.
func (c *Cache) DoContext(ctx context.Context, key string, compute func() engine.Result) (engine.Result, bool) {
	for {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			c.ll.MoveToFront(el)
			res := el.Value.(*entry).res
			c.mu.Unlock()
			c.hits.Add(1)
			return cloneResult(res), true
		}
		if f, ok := c.flights[key]; ok {
			c.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				// Detach: the flight keeps computing for its leader
				// and any remaining waiters.
				return engine.Result{Err: engine.CanceledError(ctx.Err())}, false
			}
			if f.canceled {
				if ctx.Err() != nil {
					return engine.Result{Err: engine.CanceledError(ctx.Err())}, false
				}
				continue // leader aborted; retry, possibly as the new leader
			}
			c.dedups.Add(1)
			return cloneResult(f.res), true
		}
		f := &flight{done: make(chan struct{})}
		c.flights[key] = f
		c.mu.Unlock()

		c.misses.Add(1)
		res := compute()
		// Strip the per-request identity so the stored canon serves any
		// later request regardless of its position or name; front ends
		// re-attach both (see Engine.Run).
		res.Index, res.Name = 0, ""

		c.mu.Lock()
		delete(c.flights, key)
		if errors.Is(res.Err, engine.ErrCanceled) {
			c.mu.Unlock()
			f.canceled = true
			close(f.done)
			return res, false
		}
		c.store(key, res)
		c.mu.Unlock()
		f.res = res
		close(f.done)
		return cloneResult(res), false
	}
}

// Get returns the stored result for key without computing anything.
func (c *Cache) Get(key string) (engine.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return engine.Result{}, false
	}
	c.ll.MoveToFront(el)
	return cloneResult(el.Value.(*entry).res), true
}

// store inserts (or refreshes) key under the LRU bound. Caller holds mu.
func (c *Cache) store(key string, res engine.Result) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*entry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&entry{key: key, res: res})
	for c.ll.Len() > c.max {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.entries, back.Value.(*entry).key)
		c.evictions.Add(1)
	}
}

// Len returns the number of stored results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Dedups:    c.dedups.Load(),
		Evictions: c.evictions.Load(),
		Bypasses:  c.bypasses.Load(),
		Entries:   c.Len(),
	}
}

// cloneResult deep-copies the pointer-typed fields of a result so cache
// canon and caller never alias. Err is shared (errors are immutable by
// convention).
func cloneResult(r engine.Result) engine.Result {
	if r.Schedule != nil {
		r.Schedule = r.Schedule.Clone()
	}
	if r.Idle != nil {
		cp := core.IdlePlan{
			After:    append([]float64(nil), r.Idle.After...),
			Cost:     r.Idle.Cost,
			BaseCost: r.Idle.BaseCost,
		}
		r.Idle = &cp
	}
	return r
}

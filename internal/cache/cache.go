// Package cache memoizes scheduling results behind a content-addressed
// key, turning the batch engine into a serving layer: a production host
// sees streams of repeated (graph, deadline, strategy) requests, and
// every algorithm in this repository is deterministic, so an identical
// request can be answered from memory instead of re-running the
// iterative search and its thousands of Rakhmatov–Vrudhula battery-cost
// evaluations.
//
// The package has two halves:
//
//   - Cache: a bounded, concurrency-safe LRU from canonical content
//     hash (see Key) to engine.Result, with single-flight deduplication —
//     identical requests arriving concurrently compute once and share
//     the result. An optional disk tier (internal/store) sits under the
//     LRU: memory misses consult it before computing, disk hits are
//     promoted into memory, and computed results are written through,
//     so the cache survives a process restart.
//   - Engine: a drop-in cached counterpart of engine.Engine. Its
//     RunBatch has the same ordering, per-job-error and determinism
//     guarantees as the uncached engine; only wall-clock time changes.
//
// Stored results are canonical (request identity stripped) and
// immutable: lookups return deep copies, so callers can mutate what
// they get back without corrupting the cache. Per-job errors are cached
// too — a deterministic failure (infeasible deadline, unknown strategy)
// costs the engine only once.
//
//battlint:deterministic
package cache

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/store"
)

// DefaultMaxEntries bounds a Cache created with New(0). A cached result
// is a schedule plus a few scalars — roughly proportional to the task
// count — so the default is sized for tens of MB at worst, not for a
// memory budget that needs tuning.
const DefaultMaxEntries = 1024

// Cache is a bounded LRU of canonical scheduling results, safe for
// concurrent use. The zero value is not ready; use New.
type Cache struct {
	mu      sync.Mutex
	max     int
	ll      *list.List               // front = most recently used
	entries map[string]*list.Element // key -> element whose Value is *entry
	flights map[string]*flight       // keys being computed right now

	// disk is the optional second tier, consulted on memory miss and
	// written through on store. All disk IO happens outside mu, from
	// inside the single-flight leader, so a slow disk never blocks
	// memory hits and a key is read from disk at most once per miss.
	disk *store.Store
	// brk guards every disk access: when the disk accumulates errors
	// past the configured threshold, the breaker opens and the cache
	// degrades to memory-only serving (reads bypassed, writes skipped)
	// instead of paying EIO latency per request. Nil when disabled or
	// when there is no disk tier.
	brk *breaker

	hits      atomic.Uint64
	misses    atomic.Uint64
	dedups    atomic.Uint64
	evictions atomic.Uint64
	bypasses  atomic.Uint64
}

// entry is one stored result; it lives in both ll and entries.
type entry struct {
	key string
	res engine.Result
}

// flight is one in-progress computation; waiters block on done and then
// read res and canceled (the close of done publishes the writes).
// canceled marks a leader that aborted without producing a result —
// nothing was stored, and live waiters should retry rather than adopt
// the leader's cancellation.
type flight struct {
	done     chan struct{}
	res      engine.Result
	canceled bool
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits counts lookups served from a stored entry.
	Hits uint64 `json:"hits"`
	// Misses counts lookups that had to compute.
	Misses uint64 `json:"misses"`
	// Dedups counts lookups that piggybacked on a concurrent identical
	// computation (single-flight) instead of computing their own.
	Dedups uint64 `json:"dedups"`
	// Evictions counts entries dropped by the LRU bound.
	Evictions uint64 `json:"evictions"`
	// Bypasses counts requests that were not cacheable (opaque
	// deprecated Options.Model, nil graph, unknown strategy, invalid
	// battery spec) and went straight to the engine. Declarative
	// battery specs are cacheable and never counted here.
	Bypasses uint64 `json:"bypasses"`
	// Entries is the current number of stored results.
	Entries int `json:"entries"`
	// The disk_* counters mirror the optional disk tier (all zero when
	// none is attached): DiskHits counts memory misses answered from
	// disk (Hits counts memory only, Misses counts computations —
	// disjoint by construction), DiskMisses counts memory misses that
	// had to compute, DiskErrors counts corrupt entries discarded and
	// IO failures (each degraded to a miss or a skipped write), and
	// DiskEvictions counts entries dropped by the disk byte budget.
	// DiskEntries/DiskBytes are the current on-disk population.
	DiskHits      uint64 `json:"disk_hits"`
	DiskMisses    uint64 `json:"disk_misses"`
	DiskErrors    uint64 `json:"disk_errors"`
	DiskEvictions uint64 `json:"disk_evictions"`
	DiskEntries   int    `json:"disk_entries"`
	DiskBytes     int64  `json:"disk_bytes"`
	// DiskBreakerState is the disk circuit breaker's current state
	// (closed|open|half-open; closed when no disk tier is attached),
	// DiskBreakerOpen counts how many times it has tripped open, and
	// DiskSkipped counts disk operations bypassed while it was open —
	// each one a read or write the cache degraded to memory-only.
	DiskBreakerState string `json:"disk_breaker_state"`
	DiskBreakerOpen  uint64 `json:"disk_breaker_open"`
	DiskSkipped      uint64 `json:"disk_skipped"`
}

// New returns an empty cache bounded at maxEntries results (0 means
// DefaultMaxEntries).
func New(maxEntries int) *Cache {
	return NewWithStore(maxEntries, nil)
}

// NewWithStore is New with a disk tier layered under the LRU: memory
// misses consult disk before computing (promoting hits into memory),
// and computed results are written through, so the cache's contents
// survive a restart of the process that owns disk's directory. A nil
// disk is exactly New. The disk tier is strictly best-effort — every
// disk failure degrades to a miss or a skipped write (counted in
// Stats.DiskErrors), never an error or a wrong result. The default
// circuit breaker (see BreakerConfig) guards the tier; use NewTiered to
// tune or disable it.
func NewWithStore(maxEntries int, disk *store.Store) *Cache {
	return NewTiered(maxEntries, disk, BreakerConfig{})
}

// NewTiered is NewWithStore with explicit circuit-breaker tuning: when
// the disk tier returns bc.Threshold errors within bc.Window, the
// breaker opens and the cache serves memory-only (disk reads bypassed,
// writes skipped — both counted in Stats.DiskSkipped) until a half-open
// probe after bc.Probe succeeds. bc.Threshold < 0 disables the breaker.
func NewTiered(maxEntries int, disk *store.Store, bc BreakerConfig) *Cache {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	c := &Cache{
		max:     maxEntries,
		ll:      list.New(),
		entries: make(map[string]*list.Element),
		flights: make(map[string]*flight),
		disk:    disk,
	}
	if disk != nil {
		c.brk = newBreaker(bc)
	}
	return c
}

// Do returns the cached result for key, computing it with compute on a
// miss. Concurrent calls with the same key compute once: the first
// caller runs compute, the rest wait and share its result. The returned
// bool reports whether the call was served without running compute
// itself (a stored hit or a single-flight dedup). The result is a deep
// copy — mutating it cannot corrupt the cache. compute must be
// deterministic for the key and must not panic (engine.RunBatch already
// converts job panics into per-job errors).
func (c *Cache) Do(key string, compute func() engine.Result) (engine.Result, bool) {
	return c.DoContext(context.Background(), key, compute)
}

// DoContext is Do with request-scoped cancellation, designed so one
// caller's cancellation can never poison the shared computation:
//
//   - A waiter whose ctx dies detaches immediately with an
//     engine.ErrCanceled result; the leader's flight and the entry it
//     will store are untouched, and other waiters still share it.
//   - A leader whose compute is canceled (its result carries
//     engine.ErrCanceled — ctx died or the job's Timeout fired) stores
//     nothing: the aborted flight is discarded and still-live waiters
//     retry, the first of them becoming the new leader. A cancellation
//     is not a deterministic property of the key, so it must never be
//     served to anyone else.
//
// compute is expected to observe the same ctx and return an
// ErrCanceled result promptly once it is done.
func (c *Cache) DoContext(ctx context.Context, key string, compute func() engine.Result) (engine.Result, bool) {
	for {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			c.ll.MoveToFront(el)
			res := el.Value.(*entry).res
			c.mu.Unlock()
			c.hits.Add(1)
			return CloneResult(res), true
		}
		if f, ok := c.flights[key]; ok {
			c.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				// Detach: the flight keeps computing for its leader
				// and any remaining waiters.
				return engine.Result{Err: engine.CanceledError(ctx.Err())}, false
			}
			if f.canceled {
				if ctx.Err() != nil {
					return engine.Result{Err: engine.CanceledError(ctx.Err())}, false
				}
				continue // leader aborted; retry, possibly as the new leader
			}
			c.dedups.Add(1)
			return CloneResult(f.res), true
		}
		f := &flight{done: make(chan struct{})}
		c.flights[key] = f
		c.mu.Unlock()

		// The single-flight leader consults the disk tier before
		// computing: outside mu (a disk read must never block memory
		// hits) and inside the flight (concurrent identical requests
		// share one disk read exactly as they share one computation).
		// A disk hit is promoted into the memory LRU and completes the
		// flight as if it had been computed.
		if res, ok := c.diskGet(key); ok {
			c.mu.Lock()
			delete(c.flights, key)
			c.store(key, res)
			c.mu.Unlock()
			f.res = res
			close(f.done)
			return CloneResult(res), true
		}

		c.misses.Add(1)
		res := compute()
		// Strip the per-request identity so the stored canon serves any
		// later request regardless of its position or name; front ends
		// re-attach both (see Engine.Run).
		res.Index, res.Name = 0, ""

		c.mu.Lock()
		delete(c.flights, key)
		if errors.Is(res.Err, engine.ErrCanceled) {
			c.mu.Unlock()
			f.canceled = true
			close(f.done)
			return res, false
		}
		c.store(key, res)
		c.mu.Unlock()
		f.res = res
		close(f.done)
		// Write-through after the flight completes: waiters are already
		// unblocked, and the memory entry is live, so disk latency costs
		// only this one request. Failures are counted by the store and
		// degrade to "not persisted".
		c.diskPut(key, res)
		return CloneResult(res), false
	}
}

// diskGet consults the disk tier; a nil tier is a permanent miss, and
// an open breaker bypasses the read — the miss recomputes instead of
// waiting on a disk already known to be failing.
func (c *Cache) diskGet(key string) (engine.Result, bool) {
	if c.disk == nil || !c.brk.allow() {
		return engine.Result{}, false
	}
	res, ok, err := c.disk.Get(key)
	c.brk.record(err)
	return res, ok
}

// diskPut writes through to the disk tier, if any. Best-effort: the
// store counts failures in its Errors counter, the breaker counts them
// toward its trip threshold, and an open breaker skips the write.
func (c *Cache) diskPut(key string, res engine.Result) {
	if c.disk == nil || !c.brk.allow() {
		return
	}
	c.brk.record(c.disk.Put(key, res))
}

// Get returns the stored result for key without computing anything.
func (c *Cache) Get(key string) (engine.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return engine.Result{}, false
	}
	c.ll.MoveToFront(el)
	return CloneResult(el.Value.(*entry).res), true
}

// store inserts (or refreshes) key under the LRU bound. Caller holds mu.
func (c *Cache) store(key string, res engine.Result) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*entry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&entry{key: key, res: res})
	for c.ll.Len() > c.max {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.entries, back.Value.(*entry).key)
		c.evictions.Add(1)
	}
}

// Len returns the number of stored results.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats snapshots the counters (including the disk tier's, when one is
// attached).
func (c *Cache) Stats() Stats {
	st := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Dedups:    c.dedups.Load(),
		Evictions: c.evictions.Load(),
		Bypasses:  c.bypasses.Load(),
		Entries:   c.Len(),
	}
	st.DiskBreakerState = c.brk.stateName()
	if c.disk != nil {
		ds := c.disk.Stats()
		st.DiskHits = ds.Hits
		st.DiskMisses = ds.Misses
		st.DiskErrors = ds.Errors
		st.DiskEvictions = ds.Evictions
		st.DiskEntries = ds.Entries
		st.DiskBytes = ds.Bytes
		st.DiskBreakerOpen = c.brk.tripCount()
		st.DiskSkipped = c.brk.skipCount()
	}
	return st
}

// DiskBreakerState returns the disk circuit breaker's current state
// (closed|open|half-open) — closed when no disk tier is attached. The
// server's /readyz reports it per-subsystem.
func (c *Cache) DiskBreakerState() string { return c.brk.stateName() }

// HasDisk reports whether a disk tier is attached.
func (c *Cache) HasDisk() bool { return c.disk != nil }

// CloneResult deep-copies the pointer-typed fields of a result so two
// holders never alias the same Schedule/Idle storage. Err is shared
// (errors are immutable by convention). The cache uses it on every
// lookup so callers can mutate what they get back without corrupting
// the stored canon; other retaining layers (the async queue's terminal
// snapshots) share it for the same no-aliasing invariant.
func CloneResult(r engine.Result) engine.Result {
	if r.Schedule != nil {
		r.Schedule = r.Schedule.Clone()
	}
	if r.Idle != nil {
		cp := core.IdlePlan{
			After:    append([]float64(nil), r.Idle.After...),
			Cost:     r.Idle.Cost,
			BaseCost: r.Idle.BaseCost,
		}
		r.Idle = &cp
	}
	return r
}

package cache

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/taskgraph"
)

// TestDoContextWaiterDetaches: a waiter whose context dies leaves the
// single-flight queue immediately with ErrCanceled — and the shared
// computation is not poisoned: the leader still completes, stores, and
// serves everyone else.
func TestDoContextWaiterDetaches(t *testing.T) {
	c := New(0)
	const key = "detach-key"
	gate := make(chan struct{})

	leaderDone := make(chan engine.Result, 1)
	go func() {
		res, _ := c.Do(key, func() engine.Result {
			<-gate
			return engine.Result{Cost: 42}
		})
		leaderDone <- res
	}()
	waitForFlight(t, c, key)

	// The waiter joins the flight, then its request dies.
	ctx, cancel := context.WithCancel(context.Background())
	waiterDone := make(chan engine.Result, 1)
	go func() {
		res, _ := c.DoContext(ctx, key, func() engine.Result {
			t.Error("detached waiter must not compute")
			return engine.Result{}
		})
		waiterDone <- res
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter block on the flight
	cancel()

	var waiterRes engine.Result
	select {
	case waiterRes = <-waiterDone:
	case <-time.After(5 * time.Second):
		t.Fatal("canceled waiter did not detach from the flight")
	}
	if !errors.Is(waiterRes.Err, engine.ErrCanceled) {
		t.Fatalf("waiter err = %v, want ErrCanceled", waiterRes.Err)
	}

	// The flight is unharmed: release the leader and check the canon.
	close(gate)
	if res := <-leaderDone; res.Cost != 42 || res.Err != nil {
		t.Fatalf("leader result corrupted: %+v", res)
	}
	stored, ok := c.Get(key)
	if !ok || stored.Cost != 42 {
		t.Fatalf("stored entry corrupted: ok=%v %+v", ok, stored)
	}
	if hit, ok := c.Do(key, func() engine.Result { return engine.Result{Cost: -1} }); !ok || hit.Cost != 42 {
		t.Fatalf("later caller must hit the stored 42: ok=%v %+v", ok, hit)
	}
}

// TestDoContextCanceledLeaderNotStored: a computation aborted by its
// caller's cancellation must not be cached — the aborted flight is
// discarded and a live waiter retries, computing the real result
// itself.
func TestDoContextCanceledLeaderNotStored(t *testing.T) {
	c := New(0)
	const key = "abort-key"
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	gate := make(chan struct{})

	leaderDone := make(chan engine.Result, 1)
	go func() {
		res, _ := c.DoContext(leaderCtx, key, func() engine.Result {
			<-gate
			// A ctx-observing compute reports cancellation this way.
			return engine.Result{Err: engine.ErrCanceled}
		})
		leaderDone <- res
	}()
	waitForFlight(t, c, key)

	// A healthy waiter joins before the leader aborts.
	waiterDone := make(chan engine.Result, 1)
	go func() {
		res, _ := c.DoContext(context.Background(), key, func() engine.Result {
			return engine.Result{Cost: 99}
		})
		waiterDone <- res
	}()
	time.Sleep(10 * time.Millisecond)
	cancelLeader()
	close(gate)

	if res := <-leaderDone; !errors.Is(res.Err, engine.ErrCanceled) {
		t.Fatalf("leader err = %v, want ErrCanceled", res.Err)
	}
	var waiterRes engine.Result
	select {
	case waiterRes = <-waiterDone:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never recovered from the aborted flight")
	}
	if waiterRes.Err != nil || waiterRes.Cost != 99 {
		t.Fatalf("retrying waiter got %+v, want its own cost-99 result", waiterRes)
	}
	if stored, ok := c.Get(key); !ok || stored.Cost != 99 {
		t.Fatalf("cache must hold the waiter's result, not the aborted one: ok=%v %+v", ok, stored)
	}
}

// TestRunBatchContextCachedCancel: the cached engine inherits the batch
// cancellation contract, and a canceled run leaves no canceled results
// behind in the cache — a later identical batch recomputes and succeeds.
func TestRunBatchContextCachedCancel(t *testing.T) {
	c := New(0)
	e := Engine{Cache: c, Workers: 1}
	jobs := []engine.Job{g3Job(230), g3Job(150), g3Job(100)}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, hits := e.RunBatchContext(ctx, jobs)
	for i, res := range results {
		if !errors.Is(res.Err, engine.ErrCanceled) {
			t.Fatalf("job %d err = %v, want ErrCanceled", i, res.Err)
		}
		if hits[i] {
			t.Fatalf("job %d reported a cache hit under a dead ctx", i)
		}
	}
	if got := c.Len(); got != 0 {
		t.Fatalf("canceled batch stored %d entries, want 0", got)
	}

	// The cache is clean: the same batch on a live ctx computes fully.
	results, _ = e.RunBatchContext(context.Background(), jobs)
	for i, res := range results {
		if res.Err != nil || res.Schedule == nil {
			t.Fatalf("post-cancel job %d failed: %+v", i, res)
		}
	}
}

// TestWaiterTimeoutDetaches: Timeout is excluded from the cache key, so
// a budgeted job can dedup onto a budget-free leader — and its budget
// must still hold: the waiter detaches with ErrCanceled when its
// timeout_ms expires instead of riding the leader's (much longer)
// computation to the end. The leader is unaffected and stores normally.
func TestWaiterTimeoutDetaches(t *testing.T) {
	c := New(0)
	e := Engine{Cache: c, Workers: 1}
	// ~4096 restarts ≈ a second of sequential search — three orders of
	// magnitude past the waiter's budget.
	slow := engine.Job{Graph: taskgraph.G3(), Deadline: 230, Strategy: "multistart",
		MultiStart: core.MultiStartOptions{Restarts: 4096, Seed: 5}}
	key, ok := Key(slow)
	if !ok {
		t.Fatal("slow job must be cacheable")
	}

	leaderDone := make(chan engine.Result, 1)
	go func() {
		res, _ := e.RunContext(context.Background(), slow)
		leaderDone <- res
	}()
	waitForFlight(t, c, key)

	budgeted := slow
	budgeted.Timeout = 25 * time.Millisecond
	res, hit := e.RunContext(context.Background(), budgeted)
	if hit || !errors.Is(res.Err, engine.ErrCanceled) {
		// A broken budget would instead ride the flight and come back a
		// successful dedup.
		t.Fatalf("budgeted waiter: hit=%v err=%v, want timeout detach", hit, res.Err)
	}

	if res := <-leaderDone; res.Err != nil || res.Schedule == nil {
		t.Fatalf("leader must be unaffected: %+v", res)
	}
	if stored, ok := c.Get(key); !ok || stored.Err != nil {
		t.Fatalf("leader's result must be stored: ok=%v %+v", ok, stored)
	}
}

// waitForFlight blocks until key has a registered in-flight computation.
func waitForFlight(t *testing.T, c *Cache, key string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		_, inFlight := c.flights[key]
		c.mu.Unlock()
		if inFlight {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("flight never registered")
		}
		time.Sleep(time.Millisecond)
	}
}

package cache

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/battery"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/taskgraph"
)

// specJob builds a G3 job costed under the given declarative battery.
func specJob(name string, spec battery.Spec) engine.Job {
	return engine.Job{
		Name:     name,
		Graph:    taskgraph.G3(),
		Deadline: 230,
		Options:  core.Options{Battery: &spec},
	}
}

// TestKeySpecCacheable pins the tentpole's cache contract: every
// declarative model kind is cacheable, distinct specs on the same graph
// produce distinct keys (no false sharing), equivalent spellings share
// a key, and the beta shorthand lands on the same entry as its
// rakhmatov spec.
func TestKeySpecCacheable(t *testing.T) {
	kibam := battery.Spec{Kind: battery.KindKiBaM, Capacity: 40000, WellFraction: 0.5, RateConstant: 0.1}
	peukert := battery.Spec{Kind: battery.KindPeukert, Exponent: 1.2, RefCurrent: 100}
	calibrated := battery.Spec{Kind: battery.KindCalibrated, Observations: []battery.Observation{
		{Current: 100, Lifetime: 478}, {Current: 200, Lifetime: 228.9}}}

	keys := map[string]string{}
	for name, spec := range map[string]battery.Spec{
		"rakhmatov":  battery.DefaultSpec(),
		"ideal":      {Kind: battery.KindIdeal},
		"peukert":    peukert,
		"kibam":      kibam,
		"kibam-2":    {Kind: battery.KindKiBaM, Capacity: 40000, WellFraction: 0.6, RateConstant: 0.1},
		"calibrated": calibrated,
	} {
		k, ok := Key(specJob("j", spec))
		if !ok {
			t.Fatalf("%s spec job must be cacheable", name)
		}
		for prev, pk := range keys {
			if pk == k {
				t.Fatalf("specs %s and %s share a key — false sharing", prev, name)
			}
		}
		keys[name] = k
	}

	// The default spec and the spec-less default configuration share an
	// entry, as do the beta shorthand and its explicit rakhmatov spec.
	base, _ := Key(engine.Job{Graph: taskgraph.G3(), Deadline: 230})
	if keys["rakhmatov"] != base {
		t.Fatal("default spec must share the spec-less default's entry")
	}
	viaBeta, _ := Key(engine.Job{Graph: taskgraph.G3(), Deadline: 230, Options: core.Options{Beta: 0.35}})
	viaSpec, _ := Key(specJob("j", battery.Spec{Kind: battery.KindRakhmatov, Beta: 0.35}))
	if viaBeta != viaSpec {
		t.Fatal(`{"beta":0.35} and {"battery":{"kind":"rakhmatov","beta":0.35}} must share an entry`)
	}

	// Job names are labels, not content.
	renamed, _ := Key(specJob("other-label", kibam))
	if renamed != keys["kibam"] {
		t.Fatal("job name must not reach a spec job's key")
	}
}

// TestEngineSpecColdWarmByteIdentical is the satellite's end-to-end
// proof: a batch of kibam and peukert jobs runs byte-identical through
// cache.Engine cold (all computed) and warm (all served from memory) —
// compared on the encoded wire-level JSON bytes, the strongest form of
// "the cache changes wall-clock only". Distinct specs on the same graph
// stay distinct results, so there is no false sharing to hide behind.
func TestEngineSpecColdWarmByteIdentical(t *testing.T) {
	kibam := battery.Spec{Kind: battery.KindKiBaM, Capacity: 40000, WellFraction: 0.5, RateConstant: 0.1}
	peukert := battery.Spec{Kind: battery.KindPeukert, Exponent: 1.2, RefCurrent: 100}
	jobs := []engine.Job{
		specJob("kibam", kibam),
		specJob("peukert", peukert),
		specJob("kibam-again", kibam), // in-batch repeat: single-flight or stored hit
	}

	ce := Engine{Cache: New(0), Workers: 2}
	cold, coldHits := ce.RunBatch(jobs)
	warm, warmHits := ce.RunBatch(jobs)

	encode := func(results []engine.Result) []byte {
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		for _, r := range results {
			if r.Err != nil {
				t.Fatalf("job %q failed: %v", r.Name, r.Err)
			}
			if err := enc.Encode(struct {
				Name       string
				Strategy   string
				Cost       float64
				Duration   float64
				Energy     float64
				Iterations int
				Order      []int
				Assignment map[int]int
			}{r.Name, r.Strategy, r.Cost, r.Duration, r.Energy, r.Iterations, r.Schedule.Order, r.Schedule.Assignment}); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	if !bytes.Equal(encode(cold), encode(warm)) {
		t.Fatalf("cold and warm spec batches differ:\ncold %s\nwarm %s", encode(cold), encode(warm))
	}

	// Warm pass: everything answers from the cache.
	for i, h := range warmHits {
		if !h {
			t.Fatalf("warm pass job %d (%s) was not a cache hit", i, jobs[i].Name)
		}
	}
	_ = coldHits // the in-batch repeat may dedup or hit; either is fine
	if st := ce.Cache.Stats(); st.Bypasses != 0 {
		t.Fatalf("spec jobs must not bypass the cache, got %d bypasses", st.Bypasses)
	}

	// The two specs computed different answers on the same graph —
	// distinct keys carried distinct results.
	if cold[0].Cost == cold[1].Cost {
		t.Fatalf("kibam and peukert costs both %g — models did not reach the cost function", cold[0].Cost)
	}
	if cold[0].Cost != cold[2].Cost {
		t.Fatal("identical kibam jobs disagree")
	}

	// Results match the uncached engine's, the drop-in guarantee.
	want := engine.RunBatch(jobs, 2)
	for i := range want {
		if !resultsEquivalent(want[i], cold[i]) {
			t.Fatalf("job %d: cached result differs from uncached:\nwant %+v\ngot  %+v", i, want[i], cold[i])
		}
	}
}

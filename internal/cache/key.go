package cache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"io"
	"math"
	"sort"

	"repro/internal/battery"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/taskgraph"
)

// keyVersion namespaces the hash so a future change to the canonical
// encoding cannot collide with results stored under the old one.
// v2: the battery model is hashed as a canonical battery.Spec encoding
// instead of raw Beta/SeriesTerms fields, making every declarative
// model kind (ideal/peukert/kibam/calibrated) cacheable.
// v3: Options.Approx joins the hash — the approximation mode changes
// which candidates the search evaluates, so an approximate result must
// never answer an exact request (or vice versa).
const keyVersion = "battsched-cache-v3"

// Key returns the canonical content hash of a job — the cache address of
// its result — and whether the job is cacheable at all.
//
// The key covers everything that determines the result: the graph
// content (tasks in ID order with their design points and sorted parent
// sets), the deadline, the canonical strategy name, the canonical
// battery-spec bytes (see battery.Spec.AppendCanonical), every other
// result-affecting Options field, and (for the multistart strategy) the
// restart count and seed. Fields are hashed at their resolved defaults
// (core.Options.Canonical, battery.Spec.Canonical, core.DefaultRestarts),
// so a request spelling out a default and one leaving it zero share an
// entry — including {"beta":0.35} and the equivalent
// {"battery":{"kind":"rakhmatov","beta":0.35}}, which canonicalize to
// the same spec.
//
// Deliberately excluded because they are result-neutral: Job.Name (a
// label), Options.Parallel and MultiStart.Workers (both documented
// bit-identical to their sequential paths), Options.RecordTrace (the
// trace never reaches an engine.Result), MultiStart for non-multistart
// strategies, and Job.Timeout (a completed result is identical under
// any timeout, and a computation the timeout aborts is never stored —
// see Cache.DoContext). Excluding them means a request answers from
// cache however the caller tuned its concurrency or deadline budget.
//
// Not cacheable (ok = false): a nil graph, an unknown strategy or an
// invalid battery spec (the engine's per-job error is cheaper than
// hashing), and an opaque Options.Model — an interface value has no
// canonical content to hash. Declarative Options.Battery specs are
// fully cacheable; the old "custom model ⇒ uncacheable" carve-out
// applies only to the deprecated Model field.
//
// Key derivation is the whole cost of a cache hit, so it hashes the
// graph directly (no Spec marshaling) through a reused buffer.
//
// The battlint:canonical exclusions below are the result-neutral fields
// listed above, plus Options.Beta, .SeriesTerms, .Battery and .Model,
// which ARE hashed — folded into the canonical battery-spec bytes by
// Options.BatterySpec (a core method, outside the analyzer's
// same-package view) and k.spec.
//
//battlint:canonical engine.Job -Name -Timeout
//battlint:canonical core.Options -Beta -SeriesTerms -Battery -Model -RecordTrace -Parallel
//battlint:canonical core.MultiStartOptions -Workers
func Key(job engine.Job) (key string, ok bool) {
	if job.Graph == nil {
		return "", false
	}
	spec, ok := job.Options.BatterySpec()
	if !ok {
		// Deprecated opaque Options.Model: nothing canonical to hash.
		return "", false
	}
	if spec.Validate() != nil {
		return "", false
	}
	strategy, err := engine.CanonicalStrategy(job.Strategy)
	if err != nil {
		return "", false
	}
	k := keyHasher{h: sha256.New()}
	k.str(keyVersion)
	k.str(strategy)
	k.f64(job.Deadline)

	// Hash the resolved defaults, not the raw zero values, so a zero
	// field and its explicit default ({"strategy":"multistart"} vs
	// "restarts":8, beta 0 vs 0.273) land on the same entry.
	k.spec(spec)
	o := job.Options.Canonical()
	k.ints(int(o.InitialOrder), o.MaxIterations,
		int(o.Factors), int(o.Windows), int(o.DPFColumns), boolBit(o.DisableResequencing))
	k.f64(o.Approx)

	if strategy == engine.StrategyMultiStart {
		restarts := job.MultiStart.Restarts
		if restarts <= 0 {
			restarts = core.DefaultRestarts
		}
		k.ints(restarts)
		k.i64(job.MultiStart.Seed)
	}

	k.graph(job.Graph)
	return hex.EncodeToString(k.h.Sum(nil)), true
}

// keyHasher wraps the hash with a reused scratch buffer so the hot
// fixed-width writes do not allocate.
type keyHasher struct {
	h   hash.Hash
	buf [8]byte
}

// specStackBytes fits every fixed-parameter spec encoding (kind + three
// float64s); only calibrated specs with long observation lists spill to
// the heap.
const specStackBytes = 64

// spec hashes the battery spec's canonical bytes, length-prefixed like
// every variable-width field.
func (k *keyHasher) spec(s battery.Spec) {
	var stack [specStackBytes]byte
	enc := s.AppendCanonical(stack[:0])
	k.i64(int64(len(enc)))
	k.h.Write(enc)
}

// str writes s length-prefixed so adjacent fields cannot melt into each
// other.
func (k *keyHasher) str(s string) {
	k.i64(int64(len(s)))
	io.WriteString(k.h, s)
}

// f64 writes the exact bit pattern (distinguishes -0/+0 and every NaN
// payload; exactness matters more than normalization here).
func (k *keyHasher) f64(v float64) {
	binary.LittleEndian.PutUint64(k.buf[:], math.Float64bits(v))
	k.h.Write(k.buf[:])
}

func (k *keyHasher) i64(v int64) {
	binary.LittleEndian.PutUint64(k.buf[:], uint64(v))
	k.h.Write(k.buf[:])
}

func (k *keyHasher) ints(vs ...int) {
	for _, v := range vs {
		k.i64(int64(v))
	}
}

// graph hashes the graph content canonically: tasks in ascending ID
// order (whatever order they were added in), each with its name, its
// validated ascending-time design points and its sorted parent IDs.
func (k *keyHasher) graph(g *taskgraph.Graph) {
	n := g.N()
	ids := make([]int, n)
	for i := 0; i < n; i++ {
		ids[i] = g.IDAt(i)
	}
	sort.Ints(ids)
	k.ints(n)
	for _, id := range ids {
		t := g.Task(id)
		k.ints(id)
		k.str(t.Name)
		k.ints(len(t.Points))
		for _, p := range t.Points {
			k.f64(p.Current)
			k.f64(p.Time)
			k.f64(p.Voltage)
			k.str(p.Name)
		}
		parents := g.Parents(id)
		sort.Ints(parents)
		k.ints(len(parents))
		k.ints(parents...)
	}
}

func boolBit(b bool) int {
	if b {
		return 1
	}
	return 0
}

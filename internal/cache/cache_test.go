package cache

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/battery"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/taskgraph"
)

func g3Job(deadline float64) engine.Job {
	return engine.Job{Graph: taskgraph.G3(), Deadline: deadline}
}

// TestKeyCanonical: equal content hashes equal, different content
// hashes different, result-neutral knobs are excluded.
func TestKeyCanonical(t *testing.T) {
	base, ok := Key(g3Job(230))
	if !ok || base == "" {
		t.Fatal("G3 job must be cacheable")
	}

	// A graph rebuilt from its own spec is the same content.
	spec := taskgraph.G3().ToSpec("renamed")
	g, err := taskgraph.FromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if k, _ := Key(engine.Job{Graph: g, Deadline: 230}); k != base {
		t.Fatal("rebuilt graph must hash to the same key")
	}

	// Result-neutral fields must not change the key.
	neutral := g3Job(230)
	neutral.Name = "labelled"
	neutral.Options.Parallel = true
	neutral.MultiStart = core.MultiStartOptions{Restarts: 9, Seed: 3, Workers: 4} // ignored: strategy is iterative
	if k, _ := Key(neutral); k != base {
		t.Fatal("name/Parallel/MultiStart-for-iterative must be excluded from the key")
	}

	// Result-affecting fields must change it.
	for name, job := range map[string]engine.Job{
		"deadline": g3Job(231),
		"strategy": {Graph: taskgraph.G3(), Deadline: 230, Strategy: engine.StrategyMultiStart},
		"beta":     {Graph: taskgraph.G3(), Deadline: 230, Options: core.Options{Beta: 0.5}},
		"windows":  {Graph: taskgraph.G3(), Deadline: 230, Options: core.Options{Windows: core.WindowFullOnly}},
		"graph":    {Graph: taskgraph.G2(), Deadline: 230},
	} {
		k, ok := Key(job)
		if !ok {
			t.Fatalf("%s variant must be cacheable", name)
		}
		if k == base {
			t.Fatalf("%s variant must change the key", name)
		}
	}

	// Multistart config matters once the strategy is multistart.
	ms1 := engine.Job{Graph: taskgraph.G3(), Deadline: 230, Strategy: "multistart", MultiStart: core.MultiStartOptions{Restarts: 4, Seed: 1}}
	ms2 := ms1
	ms2.MultiStart.Seed = 2
	k1, _ := Key(ms1)
	k2, _ := Key(ms2)
	if k1 == k2 {
		t.Fatal("multistart seed must change the key")
	}
	ms3 := ms1
	ms3.MultiStart.Workers = 8
	if k3, _ := Key(ms3); k3 != k1 {
		t.Fatal("multistart Workers must not change the key")
	}

	// Zero-valued fields hash at their resolved defaults: spelling a
	// default out must land on the same entry as leaving it zero.
	explicit := g3Job(230)
	explicit.Options.Beta = battery.DefaultBeta
	explicit.Options.SeriesTerms = battery.DefaultTerms
	explicit.Options.MaxIterations = core.DefaultMaxIterations
	explicit.Options.Factors = core.AllFactors
	if k, _ := Key(explicit); k != base {
		t.Fatal("explicit option defaults must hash like zero values")
	}
	msDefault := engine.Job{Graph: taskgraph.G3(), Deadline: 230, Strategy: "multistart"}
	msExplicit := msDefault
	msExplicit.MultiStart.Restarts = core.DefaultRestarts
	kd, _ := Key(msDefault)
	ke, _ := Key(msExplicit)
	if kd != ke {
		t.Fatal("explicit default restart count must hash like zero")
	}
}

// TestKeyUncacheable: nil graphs, unknown strategies, invalid battery
// specs and opaque deprecated Options.Model values bypass the cache.
// Declarative Options.Battery specs do NOT — see spec_test.go.
func TestKeyUncacheable(t *testing.T) {
	if _, ok := Key(engine.Job{Deadline: 10}); ok {
		t.Fatal("nil graph must be uncacheable")
	}
	if _, ok := Key(engine.Job{Graph: taskgraph.G3(), Deadline: 10, Strategy: "nonsense"}); ok {
		t.Fatal("unknown strategy must be uncacheable")
	}
	custom := g3Job(230)
	custom.Options.Model = battery.Ideal{}
	if _, ok := Key(custom); ok {
		t.Fatal("opaque Options.Model must be uncacheable")
	}
	invalid := g3Job(230)
	invalid.Options.Battery = &battery.Spec{Kind: "fluxcap"}
	if _, ok := Key(invalid); ok {
		t.Fatal("invalid battery spec must be uncacheable (its per-job error is cheaper than hashing)")
	}
}

// TestDoHitMissAndClone: second lookup is a hit with equal content, and
// mutating a returned result does not corrupt the stored canon.
func TestDoHitMissAndClone(t *testing.T) {
	c := New(0)
	e := Engine{Cache: c, Workers: 1}

	first, hit := e.Run(g3Job(230))
	if hit || first.Err != nil {
		t.Fatalf("first run: hit=%v err=%v", hit, first.Err)
	}
	second, hit := e.Run(g3Job(230))
	if !hit {
		t.Fatal("second identical run must be a cache hit")
	}
	if !reflect.DeepEqual(first.Schedule, second.Schedule) || first.Cost != second.Cost {
		t.Fatal("cached result must equal the computed one")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}

	// Vandalize the returned copy; the canon must be unaffected.
	second.Schedule.Order[0] = -99
	second.Schedule.Assignment[1] = -99
	third, _ := e.Run(g3Job(230))
	if third.Schedule.Order[0] == -99 || third.Schedule.Assignment[1] == -99 {
		t.Fatal("mutating a returned result corrupted the cache")
	}
}

// TestLRUEviction: the bound holds and the oldest entry goes first.
func TestLRUEviction(t *testing.T) {
	c := New(2)
	for i, d := range []float64{100, 150, 230} {
		key, ok := Key(g3Job(d))
		if !ok {
			t.Fatal("expected cacheable")
		}
		c.Do(key, func() engine.Result { return engine.Result{Cost: d} })
		if want := min(i+1, 2); c.Len() != want {
			t.Fatalf("after insert %d: len = %d, want %d", i, c.Len(), want)
		}
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	k100, _ := Key(g3Job(100))
	if _, ok := c.Get(k100); ok {
		t.Fatal("oldest entry must have been evicted")
	}
	k230, _ := Key(g3Job(230))
	if _, ok := c.Get(k230); !ok {
		t.Fatal("newest entry must survive")
	}
}

// TestSingleFlight: concurrent identical requests compute once; the
// waiters share the leader's result.
func TestSingleFlight(t *testing.T) {
	c := New(0)
	var computes atomic.Int32
	gate := make(chan struct{})
	key := "test-key"

	leaderDone := make(chan engine.Result, 1)
	go func() {
		res, _ := c.Do(key, func() engine.Result {
			computes.Add(1)
			<-gate // hold the flight open until the waiters have joined
			return engine.Result{Cost: 42}
		})
		leaderDone <- res
	}()

	// Wait until the leader's flight is registered.
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		_, inFlight := c.flights[key]
		c.mu.Unlock()
		if inFlight {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("leader flight never registered")
		}
		time.Sleep(time.Millisecond)
	}

	const waiters = 8
	var wg sync.WaitGroup
	results := make([]engine.Result, waiters)
	hits := make([]bool, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], hits[i] = c.Do(key, func() engine.Result {
				computes.Add(1)
				return engine.Result{Cost: -1}
			})
		}(i)
	}
	// Release the leader. Waiters that joined the flight dedup; any
	// that arrive after it completes hit the stored entry — either way
	// compute must have run exactly once and everyone sees cost 42.
	close(gate)
	wg.Wait()
	<-leaderDone

	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	for i := range results {
		if results[i].Cost != 42 {
			t.Fatalf("waiter %d got cost %v, want the leader's 42", i, results[i].Cost)
		}
		if !hits[i] {
			t.Fatalf("waiter %d not reported as served-from-flight", i)
		}
	}
}

// TestEngineMatchesUncached: for a mixed batch, the cached engine's
// results must be identical to engine.RunBatch's, for any worker count
// and for warm and cold caches alike.
func TestEngineMatchesUncached(t *testing.T) {
	jobs := []engine.Job{
		{Name: "a", Graph: taskgraph.G3(), Deadline: 230},
		{Name: "dup-of-a", Graph: taskgraph.G3(), Deadline: 230},
		{Name: "b", Graph: taskgraph.G2(), Deadline: 75, Strategy: "rv-dp"},
		{Name: "infeasible", Graph: taskgraph.G2(), Deadline: 1},
		{Name: "nil-graph"},
		{Name: "ms", Graph: taskgraph.G2(), Deadline: 55, Strategy: "multistart", MultiStart: core.MultiStartOptions{Restarts: 4, Seed: 7}},
	}
	want := engine.RunBatch(jobs, 3)

	for _, workers := range []int{1, 4} {
		// A 2-slot Gate on the 4-worker engine also exercises the
		// global computation bound without changing any result.
		ce := Engine{Cache: New(0), Workers: workers}
		if workers == 4 {
			ce.Gate = make(chan struct{}, 2)
		}
		for pass := 0; pass < 2; pass++ {
			got, hits := ce.RunBatch(jobs)
			for i := range want {
				if !resultsEquivalent(want[i], got[i]) {
					t.Fatalf("workers=%d pass=%d job %d: cached result differs:\nwant %+v\ngot  %+v",
						workers, pass, i, want[i], got[i])
				}
			}
			if pass == 1 {
				// Everything cacheable must now hit (all but the
				// nil-graph bypass).
				for i, h := range hits {
					if i == 4 {
						if h {
							t.Fatal("nil-graph job cannot be a cache hit")
						}
						continue
					}
					if !h {
						t.Fatalf("workers=%d warm pass job %d was not a hit", workers, i)
					}
				}
			}
		}
	}
}

// resultsEquivalent compares results modulo error identity (cached
// errors are the same value; uncached ones are fresh but equal text).
func resultsEquivalent(a, b engine.Result) bool {
	if (a.Err == nil) != (b.Err == nil) {
		return false
	}
	if a.Err != nil {
		return a.Err.Error() == b.Err.Error() && a.Index == b.Index && a.Name == b.Name
	}
	return a.Index == b.Index && a.Name == b.Name && a.Strategy == b.Strategy &&
		a.Cost == b.Cost && a.Duration == b.Duration && a.Energy == b.Energy &&
		a.Iterations == b.Iterations && reflect.DeepEqual(a.Schedule, b.Schedule) &&
		reflect.DeepEqual(a.Idle, b.Idle)
}

// TestEngineNilCachePassThrough: Engine without a Cache is a plain
// engine.
func TestEngineNilCachePassThrough(t *testing.T) {
	ce := Engine{Workers: 2}
	res, hit := ce.Run(g3Job(230))
	if hit || res.Err != nil || res.Schedule == nil {
		t.Fatalf("pass-through run failed: hit=%v res=%+v", hit, res)
	}
}

// TestKeyApprox: the approximation tolerance changes results, so it must
// change the key — and the zero (exact-mode) spelling must stay on the
// baseline entry.
func TestKeyApprox(t *testing.T) {
	base, ok := Key(g3Job(230))
	if !ok {
		t.Fatal("G3 job must be cacheable")
	}
	exact := g3Job(230)
	exact.Options.Approx = 0
	if k, _ := Key(exact); k != base {
		t.Fatal("explicit Approx: 0 must share the exact-mode entry")
	}
	approx := g3Job(230)
	approx.Options.Approx = 0.5
	ka, ok := Key(approx)
	if !ok {
		t.Fatal("approx job must be cacheable")
	}
	if ka == base {
		t.Fatal("an approximate run must never answer an exact request")
	}
	other := g3Job(230)
	other.Options.Approx = 1.5
	if ko, _ := Key(other); ko == ka {
		t.Fatal("distinct tolerances must hash distinctly")
	}
}

package cache

import (
	"sync"
	"sync/atomic"
	"time"
)

// Breaker states. String values are what /metrics and /readyz report.
const (
	breakerClosed   = "closed"
	breakerOpen     = "open"
	breakerHalfOpen = "half-open"
)

// BreakerConfig tunes the disk circuit breaker. The zero value selects
// the defaults; Threshold < 0 disables the breaker entirely (every disk
// error still counts in DiskErrors, but the tier is never bypassed).
type BreakerConfig struct {
	// Threshold is how many disk errors within Window trip the breaker
	// open. 0 means DefaultBreakerThreshold; negative disables.
	Threshold int
	// Window is the sliding interval the error count is measured over.
	// 0 means DefaultBreakerWindow.
	Window time.Duration
	// Probe is how long the breaker stays open before admitting a single
	// half-open probe. 0 means DefaultBreakerProbe.
	Probe time.Duration
}

// Default breaker tuning: a healthy disk does not return five errors in
// thirty seconds, and ten seconds of memory-only operation per probe
// keeps a flapping disk from burning every request on EIO latency.
const (
	DefaultBreakerThreshold = 5
	DefaultBreakerWindow    = 30 * time.Second
	DefaultBreakerProbe     = 10 * time.Second
)

// breaker is the disk tier's circuit breaker: closed (disk in use) →
// open (threshold errors inside the window; disk bypassed entirely) →
// half-open (after the probe interval, exactly one operation is let
// through) → closed again on probe success, or back to open on probe
// failure. It exists so a dying disk degrades the process to
// memory-only serving instead of dragging every request through EIO
// timeouts — reads fall back to recomputation, writes are skipped, and
// the daemon keeps answering.
type breaker struct {
	cfg BreakerConfig
	now func() time.Time // injectable clock for deterministic tests

	mu       sync.Mutex
	state    string
	errs     []time.Time // error timestamps inside the window, oldest first
	openedAt time.Time
	probing  bool // half-open: the single probe slot is taken

	trips   atomic.Uint64 // times the breaker opened
	skipped atomic.Uint64 // disk ops bypassed while open
}

// newBreaker returns a breaker for cfg, or nil when cfg disables it —
// callers treat a nil breaker as always-closed.
func newBreaker(cfg BreakerConfig) *breaker {
	if cfg.Threshold < 0 {
		return nil
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = DefaultBreakerThreshold
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultBreakerWindow
	}
	if cfg.Probe <= 0 {
		cfg.Probe = DefaultBreakerProbe
	}
	return &breaker{cfg: cfg, now: time.Now, state: breakerClosed}
}

// allow reports whether a disk operation may proceed. In the open state
// it returns false (and counts the skip) until the probe interval
// elapses, at which point it transitions to half-open and admits
// exactly one operation — the probe. Nil receivers always allow.
func (b *breaker) allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cfg.Probe {
			b.skipped.Add(1)
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			b.skipped.Add(1)
			return false
		}
		b.probing = true
		return true
	}
}

// record reports the outcome of an allowed disk operation. A nil err in
// half-open closes the breaker (the probe succeeded — the disk is
// back); a non-nil err in half-open reopens it for another probe
// interval; a non-nil err in closed counts toward the window threshold
// and trips the breaker when reached.
func (b *breaker) record(err error) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	switch b.state {
	case breakerHalfOpen:
		b.probing = false
		if err == nil {
			b.state = breakerClosed
			b.errs = b.errs[:0]
			return
		}
		b.state = breakerOpen
		b.openedAt = now
		b.trips.Add(1)
	case breakerClosed:
		if err == nil {
			return
		}
		cutoff := now.Add(-b.cfg.Window)
		keep := b.errs[:0]
		for _, t := range b.errs {
			if t.After(cutoff) {
				keep = append(keep, t)
			}
		}
		b.errs = append(keep, now)
		if len(b.errs) >= b.cfg.Threshold {
			b.state = breakerOpen
			b.openedAt = now
			b.errs = b.errs[:0]
			b.trips.Add(1)
		}
	default: // open: a straggler from before the trip; nothing to do
	}
}

// stateName returns the current state string; nil (disabled) breakers
// report closed — the disk is always in use.
func (b *breaker) stateName() string {
	if b == nil {
		return breakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// tripCount returns how many times the breaker has opened.
func (b *breaker) tripCount() uint64 {
	if b == nil {
		return 0
	}
	return b.trips.Load()
}

// skipCount returns how many disk operations were bypassed while open.
func (b *breaker) skipCount() uint64 {
	if b == nil {
		return 0
	}
	return b.skipped.Load()
}

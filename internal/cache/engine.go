package cache

import (
	"runtime"

	"repro/internal/engine"
)

// Engine is the cached counterpart of engine.Engine: same worker-pool
// batch execution, same ordering and per-job-error guarantees, but
// every cacheable job is answered through the Cache — a repeat is a
// lookup, and identical jobs in flight at the same time (within one
// batch or across concurrent batches) compute once.
//
// A nil Cache degrades to pass-through execution, so callers can make
// caching a flag without branching.
type Engine struct {
	// Cache holds the results; nil disables caching.
	Cache *Cache
	// Workers bounds concurrent jobs; 0 means GOMAXPROCS(0).
	Workers int
	// Gate, when non-nil, globally bounds concurrent scheduling work
	// across every Run/RunBatch call sharing it — cache hits bypass it.
	// A server handling many requests, each with its own worker pool,
	// uses one shared Gate so total scheduling concurrency stays near
	// the gate's capacity instead of requests × Workers. A gated
	// computation also sizes its multistart restart fan-out by the idle
	// gate capacity it can claim (overriding Job.MultiStart.Workers,
	// which is result-neutral), so the bound holds through the restart
	// level too.
	Gate chan struct{}
}

// workers resolves the pool bound.
func (e *Engine) workers() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes one job through the cache and reports whether it was
// served without computing (stored hit or single-flight dedup). The
// result carries the job's Name and Index 0.
func (e *Engine) Run(job engine.Job) (engine.Result, bool) {
	// A lone job may fan its multistart restarts over the whole pool,
	// mirroring engine.RunBatch's bound-splitting for a one-job batch.
	res, hit := e.run(job, e.workers())
	res.Index, res.Name = 0, job.Name
	return res, hit
}

// RunBatch executes every job over the engine's pool and returns one
// result per job in input order, plus a parallel slice reporting which
// were served from cache. Output results are identical to
// engine.RunBatch's for any Workers value and any cache state — the
// pool and its bound-splitting live in engine.RunEach, shared by both.
func (e *Engine) RunBatch(jobs []engine.Job) ([]engine.Result, []bool) {
	results := make([]engine.Result, len(jobs))
	hits := make([]bool, len(jobs))
	pool := engine.Engine{Workers: e.Workers}
	pool.RunEach(len(jobs), func(i, restartWorkers int) {
		res, hit := e.run(jobs[i], restartWorkers)
		res.Index, res.Name = i, jobs[i].Name
		results[i], hits[i] = res, hit
	})
	return results, hits
}

// run executes one job: cache lookup/single-flight when cacheable,
// direct engine execution otherwise.
func (e *Engine) run(job engine.Job, restartWorkers int) (engine.Result, bool) {
	if e.Cache == nil {
		return e.compute(job, restartWorkers), false
	}
	key, ok := Key(job)
	if !ok {
		e.Cache.bypasses.Add(1)
		return e.compute(job, restartWorkers), false
	}
	return e.Cache.Do(key, func() engine.Result {
		return e.compute(job, restartWorkers)
	})
}

// compute runs the job on the uncached engine as a one-job batch,
// pinning the multistart fan-out first so a single-job engine batch
// cannot collapse it to 1.
//
// Under a Gate, the computation blocks for one slot and then widens its
// restart fan-out only with whatever idle capacity it can claim without
// waiting — so a lone request on an idle server still fans out fully,
// while concurrent requests each hold ~one slot and run their restarts
// sequentially. Total scheduling goroutines stay at ~cap(Gate) instead
// of requests × restartWorkers; since restart fan-out is result-neutral
// (bit-identical for any Workers), clamping it here changes wall-clock
// only.
func (e *Engine) compute(job engine.Job, restartWorkers int) engine.Result {
	if e.Gate != nil {
		e.Gate <- struct{}{}
		held := 1
		// Only a multistart job can use extra slots (every other
		// strategy runs one goroutine), so only it widens — a greedy
		// claim here would serialize concurrent cheap requests behind
		// one holder of the whole gate.
		if s, err := engine.CanonicalStrategy(job.Strategy); err == nil && s == engine.StrategyMultiStart {
			for held < restartWorkers {
				gotSlot := false
				select {
				case e.Gate <- struct{}{}:
					gotSlot = true
				default:
				}
				if !gotSlot {
					break
				}
				held++
			}
			job.MultiStart.Workers = held
		}
		defer func() {
			for i := 0; i < held; i++ {
				<-e.Gate
			}
		}()
	} else if job.MultiStart.Workers == 0 {
		job.MultiStart.Workers = restartWorkers
	}
	return engine.RunBatch([]engine.Job{job}, 1)[0]
}

package cache

import (
	"context"
	"runtime"

	"repro/internal/engine"
)

// Engine is the cached counterpart of engine.Engine: same worker-pool
// batch execution, same ordering and per-job-error guarantees, but
// every cacheable job is answered through the Cache — a repeat is a
// lookup, and identical jobs in flight at the same time (within one
// batch or across concurrent batches) compute once.
//
// A nil Cache degrades to pass-through execution, so callers can make
// caching a flag without branching.
type Engine struct {
	// Cache holds the results; nil disables caching.
	Cache *Cache
	// Workers bounds concurrent jobs; 0 means GOMAXPROCS(0).
	Workers int
	// Gate, when non-nil, globally bounds concurrent scheduling work
	// across every Run/RunBatch call sharing it — cache hits bypass it.
	// A server handling many requests, each with its own worker pool,
	// uses one shared Gate so total scheduling concurrency stays near
	// the gate's capacity instead of requests × Workers. A gated
	// computation also sizes its multistart restart fan-out by the idle
	// gate capacity it can claim (overriding Job.MultiStart.Workers,
	// which is result-neutral), so the bound holds through the restart
	// level too.
	Gate chan struct{}
}

// workers resolves the pool bound.
func (e *Engine) workers() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes one job through the cache and reports whether it was
// served without computing (stored hit or single-flight dedup). The
// result carries the job's Name and Index 0.
func (e *Engine) Run(job engine.Job) (engine.Result, bool) {
	return e.RunContext(context.Background(), job)
}

// RunContext is Run with request-scoped cancellation: a done ctx stops
// the computation at its next cooperative check (or skips it entirely,
// including the wait for a Gate slot) and yields an engine.ErrCanceled
// result. Cache hits still answer instantly — serving stored bytes
// costs nothing worth canceling.
func (e *Engine) RunContext(ctx context.Context, job engine.Job) (engine.Result, bool) {
	// A lone job may fan its multistart restarts over the whole pool,
	// mirroring engine.RunBatch's bound-splitting for a one-job batch.
	res, hit := e.run(ctx, job, e.workers())
	res.Index, res.Name = 0, job.Name
	return res, hit
}

// RunBatch executes every job over the engine's pool and returns one
// result per job in input order, plus a parallel slice reporting which
// were served from cache. Output results are identical to
// engine.RunBatch's for any Workers value and any cache state — the
// pool and its bound-splitting live in engine.RunEach, shared by both.
func (e *Engine) RunBatch(jobs []engine.Job) ([]engine.Result, []bool) {
	return e.RunBatchContext(context.Background(), jobs)
}

// RunBatchContext is RunBatch with request-scoped cancellation,
// inheriting engine.RunBatchContext's contract: jobs the dispatcher
// never reached are marked engine.ErrCanceled without running,
// in-flight computations abort at their next cooperative check, and
// results that completed before the cancellation are bit-identical to
// an uncancelled run's.
func (e *Engine) RunBatchContext(ctx context.Context, jobs []engine.Job) ([]engine.Result, []bool) {
	results := make([]engine.Result, len(jobs))
	hits := make([]bool, len(jobs))
	for i := range results {
		results[i] = engine.Result{Index: i, Name: jobs[i].Name, Err: engine.ErrCanceled}
	}
	pool := engine.Engine{Workers: e.Workers}
	pool.RunEachContext(ctx, len(jobs), func(i, restartWorkers int) {
		res, hit := e.run(ctx, jobs[i], restartWorkers)
		res.Index, res.Name = i, jobs[i].Name
		results[i], hits[i] = res, hit
	})
	return results, hits
}

// run executes one job: cache lookup/single-flight when cacheable,
// direct engine execution otherwise.
//
// The job's Timeout starts counting here — before the Gate wait and
// before any single-flight join — not just inside the engine. Timeout
// is excluded from the cache key, so a budgeted job can dedup onto a
// budget-free leader's computation; without this wrapping it would wait
// on that flight bounded only by the request context, ignoring its own
// timeout_ms contract.
func (e *Engine) run(ctx context.Context, job engine.Job, restartWorkers int) (engine.Result, bool) {
	if job.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, job.Timeout)
		defer cancel()
		// The budget now lives in ctx; clear the field so the engine
		// underneath does not arm a second, never-firing timer per job.
		job.Timeout = 0
	}
	if e.Cache == nil {
		return e.compute(ctx, job, restartWorkers), false
	}
	key, ok := Key(job)
	if !ok {
		e.Cache.bypasses.Add(1)
		return e.compute(ctx, job, restartWorkers), false
	}
	return e.Cache.DoContext(ctx, key, func() engine.Result {
		return e.compute(ctx, job, restartWorkers)
	})
}

// compute runs the job on the uncached engine as a one-job batch,
// pinning the multistart fan-out first so a single-job engine batch
// cannot collapse it to 1.
//
// Under a Gate, the computation blocks for one slot and then widens its
// restart fan-out only with whatever idle capacity it can claim without
// waiting — so a lone request on an idle server still fans out fully,
// while concurrent requests each hold ~one slot and run their restarts
// sequentially. Total scheduling goroutines stay at ~cap(Gate) instead
// of requests × restartWorkers; since restart fan-out is result-neutral
// (bit-identical for any Workers), clamping it here changes wall-clock
// only. A request canceled while queued for its slot gives up with an
// engine.ErrCanceled result instead of holding its place in line.
func (e *Engine) compute(ctx context.Context, job engine.Job, restartWorkers int) engine.Result {
	if e.Gate != nil {
		select {
		case e.Gate <- struct{}{}:
		case <-ctx.Done():
			return engine.Result{Err: engine.CanceledError(ctx.Err())}
		}
		held := 1
		// Only a multistart job can use extra slots (every other
		// strategy runs one goroutine), so only it widens — a greedy
		// claim here would serialize concurrent cheap requests behind
		// one holder of the whole gate.
		if s, err := engine.CanonicalStrategy(job.Strategy); err == nil && s == engine.StrategyMultiStart {
			for held < restartWorkers {
				gotSlot := false
				select {
				case e.Gate <- struct{}{}:
					gotSlot = true
				default:
				}
				if !gotSlot {
					break
				}
				held++
			}
			job.MultiStart.Workers = held
		}
		defer func() {
			for i := 0; i < held; i++ {
				<-e.Gate
			}
		}()
	} else if job.MultiStart.Workers == 0 {
		job.MultiStart.Workers = restartWorkers
	}
	return engine.RunBatchContext(ctx, []engine.Job{job}, 1)[0]
}

package store

// The store's contract under hostile bytes: every corruption — torn
// writes, truncation, bit rot, wrong versions, foreign files — degrades
// to a miss (deleted on sight, counted in Errors), never a panic, a
// hang or a wrong result. These tests drive the decode paths table-
// style, the Store paths through injected files, and the concurrent
// read-during-evict race directly; FuzzStoreDecode hammers the decoder
// with arbitrary bytes.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/engine"
)

// corruptEntry builds one valid entry and hands it to mutate.
func corruptEntry(mutate func([]byte) []byte) []byte {
	return mutate(encodeEntry(fullResult()))
}

func TestDecodeCorruptEntries(t *testing.T) {
	valid := encodeEntry(fullResult())
	cases := map[string]func([]byte) []byte{
		"empty":            func(b []byte) []byte { return nil },
		"truncated-header": func(b []byte) []byte { return b[:headerSize-1] },
		"truncated-payload": func(b []byte) []byte {
			return b[:len(b)-1]
		},
		"header-only": func(b []byte) []byte { return b[:headerSize] },
		"bad-magic": func(b []byte) []byte {
			b[0] ^= 0xFF
			return b
		},
		"wrong-version": func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:8], entryVersion+1)
			return b
		},
		"length-overstated": func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[8:16], uint64(len(b))) // > payload
			return b
		},
		"length-understated": func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[8:16], 0)
			return b
		},
		"payload-bit-flip": func(b []byte) []byte {
			b[headerSize+3] ^= 0x01
			return b
		},
		"checksum-flip": func(b []byte) []byte {
			b[16] ^= 0xFF
			return b
		},
		"trailing-garbage": func(b []byte) []byte {
			return append(b, 0xAA, 0xBB)
		},
		// Structurally hostile payloads with VALID checksums: a count
		// field claiming more elements than the payload holds must be
		// rejected by bounds, not by allocation.
		"huge-count-rehashed": func(b []byte) []byte {
			payload := b[headerSize:]
			// Order-count field sits right after strategy + 3 floats +
			// iterations + schedule flag. Overwrite the last 8 payload
			// bytes instead — simplest deterministic stomp — then fix
			// the checksum so only structure can fail.
			for i := len(payload) - 8; i < len(payload); i++ {
				payload[i] = 0xFF
			}
			binary.LittleEndian.PutUint32(b[16:20], crc32.ChecksumIEEE(payload))
			return b
		},
		"bad-flag-rehashed": func(b []byte) []byte {
			payload := b[headerSize:]
			// The schedule presence flag follows strategy (8+len) +
			// cost/duration/energy/iterations (32 bytes).
			off := 8 + len("withidle") + 32
			payload[off] = 7
			binary.LittleEndian.PutUint32(b[16:20], crc32.ChecksumIEEE(payload))
			return b
		},
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			data := corruptEntry(func(b []byte) []byte {
				return mutate(append([]byte(nil), b...))
			})
			if bytes.Equal(data, valid) {
				t.Fatal("mutation left the entry intact; the case tests nothing")
			}
			if _, err := decodeEntry(data); err == nil {
				t.Fatalf("corrupt entry decoded cleanly")
			}
		})
	}
}

// TestGetDiscardsCorruptFile: a corrupt entry under a real key is a
// counted miss and is deleted so it cannot fail again.
func TestGetDiscardsCorruptFile(t *testing.T) {
	s, _ := mustOpen(t, t.TempDir(), 0)
	if err := s.Put(key(0), fullResult()); err != nil {
		t.Fatal(err)
	}
	path := s.path(key(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}

	if _, ok, _ := s.Get(key(0)); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	st := s.Stats()
	if st.Errors != 1 || st.Misses != 1 || st.Entries != 0 {
		t.Fatalf("stats after corrupt read: %+v", st)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt entry file not deleted")
	}
	// The key is writable again and round-trips.
	if err := s.Put(key(0), fullResult()); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get(key(0)); !ok {
		t.Fatal("rewrite after discard missed")
	}
}

// TestScanSkipsCorruptFiles: Open counts and deletes corrupt entries —
// the warm-start half of the crash-safety story.
func TestScanSkipsCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	s1, _ := mustOpen(t, dir, 0)
	for i := 0; i < 3; i++ {
		if err := s1.Put(key(i), fullResult()); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt one real entry in place (truncation: the classic torn
	// write a crash mid-rename cannot produce but bit rot can).
	data, err := os.ReadFile(s1.path(key(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s1.path(key(1)), data[:len(data)/2], 0o666); err != nil {
		t.Fatal(err)
	}
	// And plant a garbage file under a never-stored key.
	garbage := s1.path(key(100))
	if err := os.MkdirAll(filepath.Dir(garbage), 0o777); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(garbage, []byte("not an entry"), 0o666); err != nil {
		t.Fatal(err)
	}

	s2, rep := mustOpen(t, dir, 0)
	if rep.Entries != 2 || rep.Corrupt != 2 {
		t.Fatalf("scan: %+v, want 2 entries / 2 corrupt", rep)
	}
	for _, k := range []string{key(0), key(2)} {
		if _, ok, _ := s2.Get(k); !ok {
			t.Fatalf("intact entry %s lost in scan", k)
		}
	}
	for _, k := range []string{key(1), key(100)} {
		if _, err := os.Stat(s2.path(k)); !os.IsNotExist(err) {
			t.Fatalf("corrupt file %s survived the scan", k)
		}
	}
}

// TestConcurrentReadDuringEvict: readers hammering a key while writers
// force continuous eviction over a tiny budget must only ever observe a
// valid result or a clean miss.
func TestConcurrentReadDuringEvict(t *testing.T) {
	small := fullResult()
	entrySize := int64(len(encodeEntry(small)))
	s, _ := mustOpen(t, t.TempDir(), 4*entrySize)

	hot := key(0)
	if err := s.Put(hot, small); err != nil {
		t.Fatal(err)
	}
	want, _, _ := s.Get(hot)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if got, ok, _ := s.Get(hot); ok && !resultsEqual(got, want) {
					t.Errorf("wrong result under eviction: %+v", got)
					return
				}
			}
		}()
	}
	// Churn enough distinct keys through the 4-entry budget that the
	// hot key is evicted and rewritten repeatedly mid-read.
	for i := 0; i < 200; i++ {
		if err := s.Put(key(1+i%8), small); err != nil {
			t.Fatal(err)
		}
		if i%10 == 0 {
			s.Put(hot, small)
		}
	}
	close(stop)
	wg.Wait()
	if st := s.Stats(); st.Evictions == 0 {
		t.Fatalf("churn produced no evictions: %+v", st)
	}
}

// FuzzStoreDecode: arbitrary bytes must decode to (result, nil) or
// (zero, ErrCorrupt) — never panic or hang — and anything that decodes
// must re-encode canonically to an equal result (so a store can always
// re-serve what it accepted).
func FuzzStoreDecode(f *testing.F) {
	f.Add(encodeEntry(fullResult()))
	f.Add(encodeEntry(okErrResult()))
	f.Add(encodeEntry(minimalResult()))
	f.Add([]byte{})
	f.Add([]byte(entryMagic))
	f.Add(corruptEntry(func(b []byte) []byte { return b[:len(b)-3] }))
	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := decodeEntry(data)
		if err != nil {
			return
		}
		re := encodeEntry(res)
		res2, err := decodeEntry(re)
		if err != nil {
			t.Fatalf("re-encode of a decoded entry fails to decode: %v", err)
		}
		if !resultsEqual(res, res2) {
			t.Fatalf("re-encode round trip mismatch:\nfirst:  %+v\nsecond: %+v", res, res2)
		}
	})
}

func okErrResult() engine.Result {
	return engine.Result{Strategy: "iterative", Err: fmt.Errorf("core: infeasible")}
}

func minimalResult() engine.Result {
	return engine.Result{Strategy: "all-fastest"}
}

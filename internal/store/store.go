// Package store is the disk tier of the result cache: a crash-safe,
// content-addressed store of canonical engine.Result values, one file
// per cache key, that survives what the in-memory LRU cannot — a
// process restart. A battschedd pointed at the same -cache-dir warm
// starts with every schedule it ever computed, so repeated-query fleet
// traffic (the distributed-serving tier this store is the storage unit
// for) pays for each Rakhmatov–Vrudhula search once per disk, not once
// per process lifetime.
//
// Layout and guarantees:
//
//   - One file per key under a two-level fanout: <dir>/<key[:2]>/<key>.res,
//     where keys are the lowercase-hex content hashes of cache.Key.
//   - Entries are a versioned binary encoding of engine.Result behind a
//     magic + version + length + CRC-32 header (see codec.go). Torn,
//     truncated, bit-rotted or wrong-version files are detected before
//     any payload byte is trusted and degrade to a miss — Get deletes
//     them, Open's scan skips and deletes them — never a wrong result.
//   - Writes are atomic: encode to a tmp file in the same directory,
//     fsync, rename. A crash mid-write leaves a tmp file the next Open
//     sweeps away; it can never leave a half-written entry under a real
//     key.
//   - A byte budget (MaxBytes) is enforced by oldest-mtime eviction; a
//     hit refreshes its entry's mtime, so eviction approximates LRU.
//
// The store is safe for concurrent use. File reads and writes happen
// outside the store's lock (the lock guards only the size-accounting
// index), so a slow disk never serializes readers — and the cache layer
// above (cache.Cache) consults the store strictly outside its own LRU
// lock, from inside the single-flight leader, so one disk read per
// missed key and zero lock-held IO.
//
//battlint:deterministic
//battlint:fsseam
package store

import (
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/fault"
)

// DefaultMaxBytes bounds a store opened with maxBytes 0: 1 GiB holds
// hundreds of thousands of typical entries (a schedule is ~a few
// hundred bytes), far past the in-memory LRU, without surprising a
// host's disk.
const DefaultMaxBytes = 1 << 30

// Store is the disk-backed result store. Create it with Open; the zero
// value is not ready.
type Store struct {
	dir      string
	maxBytes int64
	fsys     fault.FS

	// mu guards the index and size accounting — never file IO.
	mu    sync.Mutex
	size  int64
	index map[string]entryInfo

	hits      atomic.Uint64
	misses    atomic.Uint64
	errs      atomic.Uint64
	evictions atomic.Uint64
}

// entryInfo is the index's view of one on-disk entry.
type entryInfo struct {
	size  int64
	mtime time.Time
}

// Stats is a point-in-time snapshot of the store counters.
type Stats struct {
	// Hits counts Gets answered from a valid entry.
	Hits uint64 `json:"hits"`
	// Misses counts Gets that found no entry (including entries that
	// failed validation and were discarded — those also count Errors).
	Misses uint64 `json:"misses"`
	// Errors counts corrupt entries discarded and IO failures (a failed
	// write, an unreadable file). The store degrades every one of them
	// to a miss or a skipped write; this counter is how operators see it
	// happening.
	Errors uint64 `json:"errors"`
	// Evictions counts entries removed by the byte budget.
	Evictions uint64 `json:"evictions"`
	// Entries and Bytes are the current population.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
}

// ScanReport summarizes Open's warm-start scan — what a restarted
// daemon logs so operators can see the cache survive.
type ScanReport struct {
	// Entries and Bytes are the valid population found on disk.
	Entries int
	Bytes   int64
	// Corrupt counts files that failed validation and were deleted:
	// torn writes, truncated files, checksum mismatches, wrong versions.
	Corrupt int
	// Evicted counts valid entries dropped because the surviving
	// population exceeded the byte budget (e.g. the store was reopened
	// with a smaller bound).
	Evicted int
	// TmpSwept counts crash leftovers — tmp files a Put never got to
	// rename — deleted by the scan. A crash between CreateTemp and
	// Rename leaves exactly one of these; it is never served.
	TmpSwept int
}

// Open opens (creating if needed) the store rooted at dir, scans it to
// rebuild the size index, deletes tmp-file leftovers and corrupt
// entries, and enforces the byte budget over what survived. maxBytes 0
// means DefaultMaxBytes; negative means unbounded.
func Open(dir string, maxBytes int64) (*Store, ScanReport, error) {
	return OpenFS(dir, maxBytes, fault.OS)
}

// OpenFS is Open against an explicit filesystem seam — the injection
// point for fault testing. Production callers use Open (the real
// filesystem); chaos harnesses pass a *fault.Injector.
func OpenFS(dir string, maxBytes int64, fsys fault.FS) (*Store, ScanReport, error) {
	if maxBytes == 0 {
		maxBytes = DefaultMaxBytes
	}
	if err := fsys.MkdirAll(dir, 0o777); err != nil {
		return nil, ScanReport{}, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:      dir,
		maxBytes: maxBytes,
		fsys:     fsys,
		index:    make(map[string]entryInfo),
	}
	rep, err := s.scan()
	if err != nil {
		return nil, ScanReport{}, err
	}
	s.mu.Lock()
	rep.Evicted = s.evictLocked()
	s.mu.Unlock()
	return s, rep, nil
}

// scan walks the fanout tree validating every entry: valid ones enter
// the index, everything else (corrupt entries, tmp leftovers, foreign
// files) is deleted. Validation reads every byte once — entries are
// small, and a warm start that trusted unvalidated sizes would report a
// population it might not be able to serve.
func (s *Store) scan() (ScanReport, error) {
	var rep ScanReport
	subdirs, err := s.fsys.ReadDir(s.dir)
	if err != nil {
		return rep, fmt.Errorf("store: scan: %w", err)
	}
	for _, sub := range subdirs {
		if !sub.IsDir() || !validFanout(sub.Name()) {
			continue // not ours; leave it alone
		}
		files, err := s.fsys.ReadDir(filepath.Join(s.dir, sub.Name()))
		if err != nil {
			return rep, fmt.Errorf("store: scan: %w", err)
		}
		for _, f := range files {
			path := filepath.Join(s.dir, sub.Name(), f.Name())
			key, ok := strings.CutSuffix(f.Name(), entrySuffix)
			if f.IsDir() || !ok || !validKey(key) || key[:2] != sub.Name() {
				// Tmp leftovers from a crash mid-Put, misplaced or
				// foreign files: sweep them so they cannot accumulate.
				if strings.HasSuffix(f.Name(), ".tmp") {
					rep.TmpSwept++
				}
				s.fsys.Remove(path)
				continue
			}
			data, err := s.fsys.ReadFile(path)
			if err != nil {
				rep.Corrupt++
				s.fsys.Remove(path)
				continue
			}
			if _, err := decodeEntry(data); err != nil {
				rep.Corrupt++
				s.fsys.Remove(path)
				continue
			}
			info, err := f.Info()
			mtime := time.Now()
			if err == nil {
				mtime = info.ModTime()
			}
			s.index[key] = entryInfo{size: int64(len(data)), mtime: mtime}
			s.size += int64(len(data))
			rep.Entries++
			rep.Bytes += int64(len(data))
		}
	}
	return rep, nil
}

// entrySuffix names entry files; anything else in a fanout directory is
// not an entry.
const entrySuffix = ".res"

// validKey reports whether key is usable as a content address: 4–128
// lowercase-hex characters (cache.Key produces 64). Anything else is
// refused — keys become file names, so this is also the path-traversal
// guard for embedders that mint their own keys.
func validKey(key string) bool {
	if len(key) < 4 || len(key) > 128 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// validFanout reports whether name is a two-hex-char fanout directory.
func validFanout(name string) bool {
	return len(name) == 2 && validKey(name+"00")
}

// path maps a key to its entry file.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key[:2], key+entrySuffix)
}

// Get returns the stored result for key, whether a valid entry was
// found, and the disk error if one occurred. A clean miss (no entry) is
// (zero, false, nil); an IO failure or a corrupt entry is (zero, false,
// err) — the error return is what the cache's disk circuit breaker
// counts. A corrupt entry is deleted and reported as a miss (and
// counted in Errors); a hit refreshes the entry's mtime so the
// byte-budget eviction approximates LRU. The returned result aliases
// nothing — every Get decodes a fresh copy.
func (s *Store) Get(key string) (engine.Result, bool, error) {
	if !validKey(key) {
		s.misses.Add(1)
		return engine.Result{}, false, nil
	}
	path := s.path(key)
	data, err := s.fsys.ReadFile(path)
	if err != nil {
		s.misses.Add(1)
		if errors.Is(err, fs.ErrNotExist) {
			return engine.Result{}, false, nil
		}
		s.errs.Add(1)
		return engine.Result{}, false, fmt.Errorf("store: %w", err)
	}
	res, err := decodeEntry(data)
	if err != nil {
		s.discard(key, path)
		s.errs.Add(1)
		s.misses.Add(1)
		return engine.Result{}, false, fmt.Errorf("store: %w", err)
	}
	now := time.Now()
	s.fsys.Chtimes(path, now, now) // best-effort recency for eviction
	s.mu.Lock()
	if e, ok := s.index[key]; ok {
		e.mtime = now
		s.index[key] = e
	}
	s.mu.Unlock()
	s.hits.Add(1)
	return res, true, nil
}

// discard removes a corrupt entry file and its index accounting.
func (s *Store) discard(key, path string) {
	s.fsys.Remove(path)
	s.mu.Lock()
	if e, ok := s.index[key]; ok {
		s.size -= e.size
		delete(s.index, key)
	}
	s.mu.Unlock()
}

// Put stores the canonical result under key, atomically: the entry is
// fully written and fsynced to a tmp file in the target directory, then
// renamed into place, and the directory is fsynced so the rename itself
// survives a power cut — a crash at any instant leaves either the old
// entry, the new entry, or a tmp file the next Open sweeps — never a
// torn entry. An entry larger than the whole byte budget is skipped
// (storing it would evict everything else for a single key). Errors are
// counted in Stats.Errors and returned; callers that treat the disk
// tier as best-effort (the cache does) may ignore them.
func (s *Store) Put(key string, res engine.Result) error {
	if !validKey(key) {
		return fmt.Errorf("store: invalid key %q", key)
	}
	data := encodeEntry(res)
	if s.maxBytes > 0 && int64(len(data)) > s.maxBytes {
		return nil
	}
	dir := filepath.Join(s.dir, key[:2])
	if err := s.fsys.MkdirAll(dir, 0o777); err != nil {
		s.errs.Add(1)
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := s.fsys.CreateTemp(dir, "put-*.tmp")
	if err != nil {
		s.errs.Add(1)
		return fmt.Errorf("store: %w", err)
	}
	if _, err = tmp.Write(data); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = s.fsys.Rename(tmp.Name(), s.path(key))
	}
	if err != nil {
		s.fsys.Remove(tmp.Name())
		s.errs.Add(1)
		return fmt.Errorf("store: %w", err)
	}
	// The rename returned, but POSIX only promises it survives a power
	// cut after the parent directory is fsynced. The entry is serveable
	// either way (it is in this boot's page cache), so index it — but a
	// failed directory sync is still a counted, reported disk error.
	syncErr := s.fsys.SyncDir(dir)
	if syncErr != nil {
		s.errs.Add(1)
		syncErr = fmt.Errorf("store: %w", syncErr)
	}

	s.mu.Lock()
	if old, ok := s.index[key]; ok {
		s.size -= old.size
	}
	s.index[key] = entryInfo{size: int64(len(data)), mtime: time.Now()}
	s.size += int64(len(data))
	evicted := s.evictLocked()
	s.mu.Unlock()
	s.evictions.Add(uint64(evicted))
	return syncErr
}

// evictLocked deletes oldest-mtime entries until the population fits
// the byte budget, returning how many were dropped. Caller holds mu.
// Ties (equal mtimes — coarse filesystems produce them) break on the
// key so eviction order is deterministic. Each fanout directory an
// eviction touched is fsynced once, so removals are as durable as the
// writes; sync failures here are counted but cannot fail the eviction
// (the budget must hold regardless).
func (s *Store) evictLocked() int {
	if s.maxBytes <= 0 || s.size <= s.maxBytes {
		return 0
	}
	type aged struct {
		key  string
		info entryInfo
	}
	entries := make([]aged, 0, len(s.index))
	//battlint:allow detrange collected pairs are fully sorted below (mtime, then key) before any is acted on
	for k, e := range s.index {
		entries = append(entries, aged{k, e})
	}
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].info.mtime.Equal(entries[j].info.mtime) {
			return entries[i].info.mtime.Before(entries[j].info.mtime)
		}
		return entries[i].key < entries[j].key
	})
	n := 0
	touched := make(map[string]bool)
	for _, e := range entries {
		if s.size <= s.maxBytes {
			break
		}
		if err := s.fsys.Remove(s.path(e.key)); err != nil && !errors.Is(err, fs.ErrNotExist) {
			s.errs.Add(1)
			// ENOSPC-class failures can afflict removal too (dirent
			// updates allocate on some filesystems). Drop the entry from
			// the index regardless: the budget is an accounting bound,
			// and a file the index forgot is re-swept by the next Open.
		}
		touched[filepath.Dir(s.path(e.key))] = true
		s.size -= e.info.size
		delete(s.index, e.key)
		n++
	}
	//battlint:allow detrange fanout dirs are fsynced idempotently; order cannot matter
	for dir := range touched {
		if err := s.fsys.SyncDir(dir); err != nil {
			s.errs.Add(1)
		}
	}
	return n
}

// Len returns the current entry count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Bytes returns the current stored byte total.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	entries, bytes := len(s.index), s.size
	s.mu.Unlock()
	return Stats{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Errors:    s.errs.Load(),
		Evictions: s.evictions.Load(),
		Entries:   entries,
		Bytes:     bytes,
	}
}

package store

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"repro/internal/fault"
)

func mustOpenFS(t *testing.T, dir string, maxBytes int64, fsys fault.FS) (*Store, ScanReport) {
	t.Helper()
	s, rep, err := OpenFS(dir, maxBytes, fsys)
	if err != nil {
		t.Fatalf("OpenFS(%s): %v", dir, err)
	}
	return s, rep
}

// TestPutSyncsDirectory is the crash-durability regression test: every
// Put must fsync the temp file AND the parent directory after the
// rename — POSIX does not make a rename durable until the directory is
// synced. Counted through the fault seam, where a regression is a
// number, not an opinion.
func TestPutSyncsDirectory(t *testing.T) {
	in := fault.NewInjector(fault.OS)
	s, _ := mustOpenFS(t, t.TempDir(), 0, in)

	if err := s.Put(key(0), fullResult()); err != nil {
		t.Fatal(err)
	}
	if got := in.Count(fault.OpSync); got != 1 {
		t.Errorf("file syncs after one Put = %d, want 1", got)
	}
	if got := in.Count(fault.OpSyncDir); got != 1 {
		t.Errorf("directory syncs after one Put = %d, want 1 (rename durability)", got)
	}

	if err := s.Put(key(1), fullResult()); err != nil {
		t.Fatal(err)
	}
	if got := in.Count(fault.OpSyncDir); got != 2 {
		t.Errorf("directory syncs after two Puts = %d, want 2", got)
	}
}

// TestPutDirSyncFailure: a failed directory fsync is a counted,
// returned error, but the entry — durable or not, it is readable in
// this boot — still serves.
func TestPutDirSyncFailure(t *testing.T) {
	in := fault.NewInjector(fault.OS,
		fault.Rule{Op: fault.OpSyncDir, Nth: 1, Err: syscall.EIO})
	s, _ := mustOpenFS(t, t.TempDir(), 0, in)

	err := s.Put(key(0), fullResult())
	if !errors.Is(err, syscall.EIO) || !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Put with failing dir sync: want injected EIO, got %v", err)
	}
	if got := s.Stats().Errors; got != 1 {
		t.Errorf("Stats.Errors = %d, want 1", got)
	}
	if _, ok, err := s.Get(key(0)); !ok || err != nil {
		t.Errorf("entry unreadable after dir-sync failure: ok=%v err=%v", ok, err)
	}
}

// TestPutFaults: EIO on write, sync, and rename each fail the Put
// cleanly — error returned, counted, no tmp leftover, nothing served.
func TestPutFaults(t *testing.T) {
	cases := []fault.Rule{
		{Op: fault.OpWrite, Nth: 1, Err: syscall.EIO},
		{Op: fault.OpSync, Nth: 1, Err: syscall.ENOSPC},
		{Op: fault.OpRename, Nth: 1, Err: syscall.EIO},
	}
	for _, rule := range cases {
		t.Run(string(rule.Op), func(t *testing.T) {
			dir := t.TempDir()
			in := fault.NewInjector(fault.OS, rule)
			s, _ := mustOpenFS(t, dir, 0, in)

			if err := s.Put(key(0), fullResult()); !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("Put: want injected error, got %v", err)
			}
			if got := s.Stats().Errors; got != 1 {
				t.Errorf("Stats.Errors = %d, want 1", got)
			}
			if _, ok, _ := s.Get(key(0)); ok {
				t.Error("failed Put produced a servable entry")
			}
			if n := countTmp(t, dir); n != 0 {
				t.Errorf("%d tmp leftovers after failed Put, want 0 (cleanup path)", n)
			}
			// The store recovers: the schedule is spent, the next Put lands.
			if err := s.Put(key(0), fullResult()); err != nil {
				t.Fatalf("Put after fault: %v", err)
			}
			if _, ok, err := s.Get(key(0)); !ok || err != nil {
				t.Errorf("Get after recovery: ok=%v err=%v", ok, err)
			}
		})
	}
}

// TestCrashBetweenCreateTempAndRename: when the process dies after
// CreateTemp but before Rename (simulated by a Rename fault plus a
// Remove fault killing the cleanup — the on-disk state a SIGKILL
// leaves), the next Open sweeps the tmp file, counts it in TmpSwept,
// and never serves it.
func TestCrashBetweenCreateTempAndRename(t *testing.T) {
	dir := t.TempDir()
	in := fault.NewInjector(fault.OS,
		fault.Rule{Op: fault.OpRename, Nth: 1, Err: syscall.EIO},
		fault.Rule{Op: fault.OpRemove, Nth: 1, Err: syscall.EIO})
	s, _ := mustOpenFS(t, dir, 0, in)

	if err := s.Put(key(0), fullResult()); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Put: want injected error, got %v", err)
	}
	if n := countTmp(t, dir); n != 1 {
		t.Fatalf("%d tmp files after simulated crash, want 1", n)
	}

	s2, rep := mustOpen(t, dir, 0)
	if rep.TmpSwept != 1 {
		t.Errorf("reopen ScanReport.TmpSwept = %d, want 1", rep.TmpSwept)
	}
	if rep.Entries != 0 {
		t.Errorf("reopen found %d entries, want 0 — a tmp file must never be served", rep.Entries)
	}
	if n := countTmp(t, dir); n != 0 {
		t.Errorf("%d tmp files survive the sweep, want 0", n)
	}
	if _, ok, _ := s2.Get(key(0)); ok {
		t.Error("Get served a key whose Put never renamed")
	}
}

// TestTornWriteNeverServed: a write torn at byte K (the fault layer's
// crash-shaped artifact) fails the Put; even if the torn bytes had
// reached the entry path, the CRC header means they decode to a miss,
// not a wrong result. Here the tear hits the tmp file, Put reports it,
// and nothing is served.
func TestTornWriteNeverServed(t *testing.T) {
	dir := t.TempDir()
	in := fault.NewInjector(fault.OS,
		fault.Rule{Op: fault.OpWrite, Nth: 1, Torn: true, TruncateAt: 10},
		fault.Rule{Op: fault.OpRemove, Nth: 1, Err: syscall.EIO}) // cleanup dies too
	s, _ := mustOpenFS(t, dir, 0, in)

	if err := s.Put(key(0), fullResult()); !errors.Is(err, syscall.EIO) {
		t.Fatalf("torn Put: want EIO, got %v", err)
	}
	// The torn tmp file is on disk; reopen sweeps it.
	if n := countTmp(t, dir); n != 1 {
		t.Fatalf("%d tmp files, want 1", n)
	}
	_, rep := mustOpen(t, dir, 0)
	if rep.TmpSwept != 1 || rep.Entries != 0 {
		t.Errorf("reopen after torn write: %+v, want TmpSwept=1 Entries=0", rep)
	}
}

// TestEvictionSyncsDirectories: evictions fsync the fanout directories
// they removed from, same durability bar as writes.
func TestEvictionSyncsDirectories(t *testing.T) {
	in := fault.NewInjector(fault.OS)
	entryBytes := int64(len(encodeEntry(fullResult())))
	// Budget for exactly 2 entries; the 3rd Put evicts the oldest.
	s, _ := mustOpenFS(t, t.TempDir(), 2*entryBytes, in)

	for i := 0; i < 2; i++ {
		if err := s.Put(key(i), fullResult()); err != nil {
			t.Fatal(err)
		}
	}
	before := in.Count(fault.OpSyncDir)
	if err := s.Put(key(2), fullResult()); err != nil {
		t.Fatal(err)
	}
	// The 3rd Put syncs its own dir once, plus the evicted entry's dir.
	if got := in.Count(fault.OpSyncDir) - before; got != 2 {
		t.Errorf("directory syncs for an evicting Put = %d, want 2 (write dir + evicted dir)", got)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d after eviction, want 2", s.Len())
	}
}

// TestENOSPCDuringEviction: a full disk failing the eviction's Remove
// cannot wedge the store — the entry leaves the index (the budget is an
// accounting bound), the error is counted, and the Put that triggered
// the eviction still lands.
func TestENOSPCDuringEviction(t *testing.T) {
	dir := t.TempDir()
	in := fault.NewInjector(fault.OS,
		fault.Rule{Op: fault.OpRemove, Nth: 1, Err: syscall.ENOSPC})
	entryBytes := int64(len(encodeEntry(fullResult())))
	s, _ := mustOpenFS(t, dir, 2*entryBytes, in)

	for i := 0; i < 2; i++ {
		if err := s.Put(key(i), fullResult()); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put(key(2), fullResult()); err != nil {
		t.Fatalf("Put with ENOSPC eviction: %v (eviction failure must not fail the write)", err)
	}
	if got := s.Stats().Errors; got != 1 {
		t.Errorf("Stats.Errors = %d, want 1 (the failed Remove)", got)
	}
	// Index accounting holds the budget even though the file remains.
	if s.Len() != 2 || s.Bytes() > 2*entryBytes {
		t.Errorf("after failed-Remove eviction: Len=%d Bytes=%d, want 2 entries within budget", s.Len(), s.Bytes())
	}
	if _, ok, err := s.Get(key(2)); !ok || err != nil {
		t.Errorf("the triggering Put is not servable: ok=%v err=%v", ok, err)
	}
	// The orphaned file the Remove left behind is re-adopted or swept by
	// the next Open — either way the reopened population is consistent.
	s2, rep := mustOpen(t, dir, 0)
	if rep.Corrupt != 0 {
		t.Errorf("reopen after failed eviction: %d corrupt, want 0", rep.Corrupt)
	}
	if s2.Len() != rep.Entries {
		t.Errorf("reopen index (%d) disagrees with scan (%d)", s2.Len(), rep.Entries)
	}
}

// TestReadFaultCountsError: an EIO on Get's read is a miss with a
// non-nil error — the signal the cache's breaker feeds on — while a
// clean miss keeps err nil.
func TestReadFaultCountsError(t *testing.T) {
	in := fault.NewInjector(fault.OS,
		fault.Rule{Op: fault.OpReadFile, Nth: 2, Err: syscall.EIO})
	s, _ := mustOpenFS(t, t.TempDir(), 0, in)

	if _, ok, err := s.Get(key(9)); ok || err != nil {
		t.Fatalf("clean miss: ok=%v err=%v, want false,nil", ok, err)
	}
	if err := s.Put(key(0), fullResult()); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(key(0)); ok || !errors.Is(err, syscall.EIO) {
		t.Fatalf("faulted Get: ok=%v err=%v, want false,EIO", ok, err)
	}
	if _, ok, err := s.Get(key(0)); !ok || err != nil {
		t.Fatalf("Get after fault: ok=%v err=%v, want true,nil", ok, err)
	}
	if got := s.Stats().Errors; got != 1 {
		t.Errorf("Stats.Errors = %d, want 1", got)
	}
}

// countTmp counts *.tmp files anywhere under dir.
func countTmp(t *testing.T, dir string) int {
	t.Helper()
	n := 0
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".tmp") {
			n++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

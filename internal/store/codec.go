package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sched"
)

// The on-disk entry format, designed so a reader can always tell a good
// entry from a torn, truncated or foreign one before trusting a single
// payload byte:
//
//	offset  size  field
//	0       4     magic "BSRS" (battsched result store)
//	4       4     format version, little-endian uint32 (currently 1)
//	8       8     payload length, little-endian uint64
//	16      4     CRC-32 (IEEE) of the payload
//	20      ...   payload (entryVersion-specific encoding of engine.Result)
//
// A write lands atomically (tmp file + rename), so the interesting
// failure is a crash mid-write of the tmp file or bit rot in place:
// both are caught by the length and checksum before decode, and a
// version bump makes old entries read as misses instead of
// misinterpreted bytes. Every decode failure is ErrCorrupt — the store
// turns it into "miss, delete the file", never an answer.
const (
	entryMagic   = "BSRS"
	entryVersion = 1
	headerSize   = 20
)

// ErrCorrupt marks an entry that failed structural validation —
// truncated, checksum mismatch, wrong magic/version, or a payload that
// does not decode. Match with errors.Is.
var ErrCorrupt = errors.New("store: corrupt entry")

// corruptf wraps a decode failure under ErrCorrupt.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// encodeEntry serializes a canonical (request-neutral) result into a
// complete entry: header plus versioned payload. The payload writes
// every result-affecting field of engine.Result; Index and Name are
// excluded because stored results are request-neutral (the cache strips
// them before storing, and every front end re-attaches its own — see
// cache.Cache.DoContext).
//
//battlint:canonical engine.Result -Index -Name
func encodeEntry(res engine.Result) []byte {
	payload := make([]byte, 0, 256)
	payload = appendString(payload, res.Strategy)
	payload = appendF64(payload, res.Cost)
	payload = appendF64(payload, res.Duration)
	payload = appendF64(payload, res.Energy)
	payload = appendU64(payload, uint64(int64(res.Iterations)))

	if res.Schedule == nil {
		payload = append(payload, 0)
	} else {
		payload = append(payload, 1)
		payload = appendU64(payload, uint64(len(res.Schedule.Order)))
		for _, id := range res.Schedule.Order {
			payload = appendU64(payload, uint64(int64(id)))
		}
		// Maps have no order; sort keys so the encoding is canonical
		// (byte-identical for equal results).
		keys := make([]int, 0, len(res.Schedule.Assignment))
		for k := range res.Schedule.Assignment {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		payload = appendU64(payload, uint64(len(keys)))
		for _, k := range keys {
			payload = appendU64(payload, uint64(int64(k)))
			payload = appendU64(payload, uint64(int64(res.Schedule.Assignment[k])))
		}
	}

	if res.Idle == nil {
		payload = append(payload, 0)
	} else {
		payload = append(payload, 1)
		payload = appendU64(payload, uint64(len(res.Idle.After)))
		for _, v := range res.Idle.After {
			payload = appendF64(payload, v)
		}
		payload = appendF64(payload, res.Idle.Cost)
		payload = appendF64(payload, res.Idle.BaseCost)
	}

	if res.Err == nil {
		payload = append(payload, 0)
	} else {
		payload = append(payload, 1)
		payload = appendString(payload, res.Err.Error())
	}

	out := make([]byte, headerSize, headerSize+len(payload))
	copy(out[0:4], entryMagic)
	binary.LittleEndian.PutUint32(out[4:8], entryVersion)
	binary.LittleEndian.PutUint64(out[8:16], uint64(len(payload)))
	binary.LittleEndian.PutUint32(out[16:20], crc32.ChecksumIEEE(payload))
	return append(out, payload...)
}

// decodeEntry validates and deserializes one complete entry. Every
// failure is ErrCorrupt; a successful decode returns a result whose
// pointer fields are freshly allocated (nothing aliases the input
// buffer or any other decode).
func decodeEntry(data []byte) (engine.Result, error) {
	var zero engine.Result
	if len(data) < headerSize {
		return zero, corruptf("truncated header: %d bytes", len(data))
	}
	if string(data[0:4]) != entryMagic {
		return zero, corruptf("bad magic %q", data[0:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != entryVersion {
		return zero, corruptf("unsupported version %d (want %d)", v, entryVersion)
	}
	payload := data[headerSize:]
	if n := binary.LittleEndian.Uint64(data[8:16]); n != uint64(len(payload)) {
		return zero, corruptf("payload length %d, header says %d", len(payload), n)
	}
	if c := binary.LittleEndian.Uint32(data[16:20]); c != crc32.ChecksumIEEE(payload) {
		return zero, corruptf("checksum mismatch")
	}

	d := decoder{buf: payload}
	var res engine.Result
	res.Strategy = d.str()
	res.Cost = d.f64()
	res.Duration = d.f64()
	res.Energy = d.f64()
	res.Iterations = int(int64(d.u64()))

	if d.flag() {
		s := &sched.Schedule{}
		n := d.count(8)
		s.Order = make([]int, n)
		for i := range s.Order {
			s.Order[i] = int(int64(d.u64()))
		}
		m := d.count(16)
		s.Assignment = make(map[int]int, m)
		for i := 0; i < m; i++ {
			k := int(int64(d.u64()))
			s.Assignment[k] = int(int64(d.u64()))
		}
		res.Schedule = s
	}

	if d.flag() {
		idle := &core.IdlePlan{}
		n := d.count(8)
		idle.After = make([]float64, n)
		for i := range idle.After {
			idle.After[i] = d.f64()
		}
		idle.Cost = d.f64()
		idle.BaseCost = d.f64()
		res.Idle = idle
	}

	if d.flag() {
		res.Err = errors.New(d.str())
	}

	if d.err != nil {
		return zero, d.err
	}
	if d.off != len(d.buf) {
		return zero, corruptf("%d trailing payload bytes", len(d.buf)-d.off)
	}
	return res, nil
}

// decoder is a bounds-checked little-endian reader; the first failure
// sticks and every later read returns zero values.
type decoder struct {
	buf []byte
	off int
	err error
}

// take returns the next n bytes, or nil after recording a corruption.
func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.buf)-d.off < n {
		d.err = corruptf("truncated payload at offset %d (want %d more bytes)", d.off, n)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

// flag reads a presence byte, rejecting anything but 0/1 so a bit flip
// that survives the checksum (or a hand-built payload) cannot smuggle
// in surprising control flow.
func (d *decoder) flag() bool {
	b := d.take(1)
	if b == nil {
		return false
	}
	switch b[0] {
	case 0:
		return false
	case 1:
		return true
	default:
		d.err = corruptf("invalid presence flag %d at offset %d", b[0], d.off-1)
		return false
	}
}

// count reads an element count and sanity-bounds it against the bytes
// actually remaining (each element is at least elemSize bytes), so a
// corrupt length field cannot force a huge allocation.
func (d *decoder) count(elemSize int) int {
	n := d.u64()
	if d.err != nil {
		return 0
	}
	if max := uint64(len(d.buf)-d.off) / uint64(elemSize); n > max {
		d.err = corruptf("count %d exceeds remaining payload (max %d)", n, max)
		return 0
	}
	return int(n)
}

// str reads a length-prefixed string.
func (d *decoder) str() string {
	n := d.count(1)
	return string(d.take(n))
}

func appendU64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

func appendF64(dst []byte, v float64) []byte {
	return appendU64(dst, math.Float64bits(v))
}

func appendString(dst []byte, s string) []byte {
	dst = appendU64(dst, uint64(len(s)))
	return append(dst, s...)
}

package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sched"
)

// fullResult exercises every encoded field, including the pointer ones.
func fullResult() engine.Result {
	return engine.Result{
		Strategy:   "withidle",
		Cost:       123.456,
		Duration:   78.9,
		Energy:     1011.12,
		Iterations: 7,
		Schedule: &sched.Schedule{
			Order:      []int{2, 0, 1, 3},
			Assignment: map[int]int{0: 1, 1: 0, 2: 4, 3: 2},
		},
		Idle: &core.IdlePlan{
			After:    []float64{0, 1.5, 0, 2.25},
			Cost:     120.5,
			BaseCost: 123.456,
		},
	}
}

// key returns a distinct valid 64-hex key per index.
func key(i int) string {
	return fmt.Sprintf("%064x", i+1)
}

func mustOpen(t *testing.T, dir string, maxBytes int64) (*Store, ScanReport) {
	t.Helper()
	s, rep, err := Open(dir, maxBytes)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s, rep
}

// resultsEqual compares results structurally, treating errors by
// message (decode reconstructs errors as opaque strings).
func resultsEqual(a, b engine.Result) bool {
	ae, be := "", ""
	if a.Err != nil {
		ae = a.Err.Error()
	}
	if b.Err != nil {
		be = b.Err.Error()
	}
	a.Err, b.Err = nil, nil
	return ae == be && reflect.DeepEqual(a, b)
}

func TestCodecRoundTrip(t *testing.T) {
	cases := map[string]engine.Result{
		"full":          fullResult(),
		"schedule-only": {Strategy: "iterative", Cost: 1, Duration: 2, Energy: 3, Iterations: 4, Schedule: &sched.Schedule{Order: []int{0}, Assignment: map[int]int{0: 0}}},
		"error":         {Strategy: "iterative", Err: errors.New("core: infeasible deadline")},
		"empty-maps": {Strategy: "iterative", Schedule: &sched.Schedule{
			Order: []int{}, Assignment: map[int]int{}}},
	}
	for name, want := range cases {
		t.Run(name, func(t *testing.T) {
			got, err := decodeEntry(encodeEntry(want))
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !resultsEqual(got, want) {
				t.Fatalf("round trip mismatch:\ngot:  %+v\nwant: %+v", got, want)
			}
		})
	}
}

// TestCodecDeterministic: encoding is canonical — equal results encode
// to identical bytes regardless of map iteration order.
func TestCodecDeterministic(t *testing.T) {
	first := encodeEntry(fullResult())
	for i := 0; i < 20; i++ {
		if got := encodeEntry(fullResult()); string(got) != string(first) {
			t.Fatalf("encoding differs between calls (iteration %d)", i)
		}
	}
}

// TestCodecNoAliasing: a decoded result owns its storage.
func TestCodecNoAliasing(t *testing.T) {
	data := encodeEntry(fullResult())
	a, err := decodeEntry(data)
	if err != nil {
		t.Fatal(err)
	}
	b, err := decodeEntry(data)
	if err != nil {
		t.Fatal(err)
	}
	a.Schedule.Order[0] = 99
	a.Schedule.Assignment[0] = 99
	a.Idle.After[0] = 99
	if b.Schedule.Order[0] == 99 || b.Schedule.Assignment[0] == 99 || b.Idle.After[0] == 99 {
		t.Fatal("two decodes of the same entry alias each other")
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s, rep := mustOpen(t, t.TempDir(), 0)
	if rep.Entries != 0 || rep.Corrupt != 0 {
		t.Fatalf("fresh dir scan: %+v", rep)
	}
	want := fullResult()
	if err := s.Put(key(0), want); err != nil {
		t.Fatal(err)
	}
	got, ok, _ := s.Get(key(0))
	if !ok {
		t.Fatal("stored entry missed")
	}
	if !resultsEqual(got, want) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	if _, ok, _ := s.Get(key(1)); ok {
		t.Fatal("hit for a key never stored")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes <= 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestReopenWarmStart: a second Open on the same dir sees every entry
// the first process stored — the headline restart property at the
// store level.
func TestReopenWarmStart(t *testing.T) {
	dir := t.TempDir()
	s1, _ := mustOpen(t, dir, 0)
	results := map[string]engine.Result{
		key(0): fullResult(),
		key(1): {Strategy: "iterative", Err: errors.New("infeasible")},
		key(2): {Strategy: "lowest-power", Cost: 9, Schedule: &sched.Schedule{Order: []int{0, 1}, Assignment: map[int]int{0: 0, 1: 1}}},
	}
	for k, r := range results {
		if err := s1.Put(k, r); err != nil {
			t.Fatal(err)
		}
	}

	s2, rep := mustOpen(t, dir, 0)
	if rep.Entries != len(results) || rep.Corrupt != 0 {
		t.Fatalf("warm scan: %+v, want %d entries", rep, len(results))
	}
	if rep.Bytes != s2.Bytes() {
		t.Fatalf("report bytes %d != store bytes %d", rep.Bytes, s2.Bytes())
	}
	for k, want := range results {
		got, ok, _ := s2.Get(k)
		if !ok || !resultsEqual(got, want) {
			t.Fatalf("key %s after reopen: ok=%v got %+v want %+v", k, ok, got, want)
		}
	}
}

// TestEvictionOldestFirst: the byte budget drops oldest-mtime entries;
// a Get refreshes recency.
func TestEvictionOldestFirst(t *testing.T) {
	small := engine.Result{Strategy: "iterative", Cost: 1,
		Schedule: &sched.Schedule{Order: []int{0}, Assignment: map[int]int{0: 0}}}
	entrySize := int64(len(encodeEntry(small)))

	// Budget for exactly 3 entries.
	s, _ := mustOpen(t, t.TempDir(), 3*entrySize)
	for i := 0; i < 3; i++ {
		if err := s.Put(key(i), small); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes even on coarse-grained filesystems.
		now := time.Now().Add(time.Duration(i-10) * time.Second)
		os.Chtimes(s.path(key(i)), now, now)
		s.mu.Lock()
		e := s.index[key(i)]
		e.mtime = now
		s.index[key(i)] = e
		s.mu.Unlock()
	}
	// Touch key(0) (the oldest) so key(1) becomes the eviction victim.
	if _, ok, _ := s.Get(key(0)); !ok {
		t.Fatal("key(0) missing before eviction")
	}
	if err := s.Put(key(3), small); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Stats().Evictions)
	}
	if _, ok, _ := s.Get(key(1)); ok {
		t.Fatal("oldest untouched entry survived eviction")
	}
	for _, k := range []string{key(0), key(2), key(3)} {
		if _, ok, _ := s.Get(k); !ok {
			t.Fatalf("entry %s evicted, want it retained", k)
		}
	}
	if got := s.Bytes(); got > 3*entrySize {
		t.Fatalf("bytes %d over budget %d", got, 3*entrySize)
	}
}

// TestReopenShrunkenBudgetEvicts: reopening with a smaller bound trims
// the surviving population and reports it.
func TestReopenShrunkenBudgetEvicts(t *testing.T) {
	dir := t.TempDir()
	s1, _ := mustOpen(t, dir, 0)
	small := engine.Result{Strategy: "iterative", Cost: 1,
		Schedule: &sched.Schedule{Order: []int{0}, Assignment: map[int]int{0: 0}}}
	entrySize := int64(len(encodeEntry(small)))
	for i := 0; i < 4; i++ {
		if err := s1.Put(key(i), small); err != nil {
			t.Fatal(err)
		}
	}
	s2, rep := mustOpen(t, dir, 2*entrySize)
	if rep.Entries != 4 || rep.Evicted != 2 {
		t.Fatalf("shrunken reopen: %+v, want 4 found / 2 evicted", rep)
	}
	if got := s2.Len(); got != 2 {
		t.Fatalf("%d entries after shrunken reopen, want 2", got)
	}
}

// TestOversizeEntrySkipped: an entry larger than the whole budget is
// not stored (and evicts nothing).
func TestOversizeEntrySkipped(t *testing.T) {
	s, _ := mustOpen(t, t.TempDir(), 64) // far below any real entry
	if err := s.Put(key(0), fullResult()); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatal("oversize entry was stored")
	}
	if _, ok, _ := s.Get(key(0)); ok {
		t.Fatal("oversize entry served")
	}
}

// TestInvalidKeys: non-hex or out-of-range keys are refused without
// touching the filesystem.
func TestInvalidKeys(t *testing.T) {
	s, _ := mustOpen(t, t.TempDir(), 0)
	for _, k := range []string{"", "ab", "../../../../etc/passwd", "ABCDEF12", "zzzz", "ab/cd"} {
		if err := s.Put(k, fullResult()); err == nil {
			t.Fatalf("Put(%q) accepted an invalid key", k)
		}
		if _, ok, _ := s.Get(k); ok {
			t.Fatalf("Get(%q) hit on an invalid key", k)
		}
	}
}

// TestScanSweepsTmpLeftovers: a crash mid-Put leaves a tmp file; Open
// removes it without counting it corrupt (it never was an entry).
func TestScanSweepsTmpLeftovers(t *testing.T) {
	dir := t.TempDir()
	s1, _ := mustOpen(t, dir, 0)
	if err := s1.Put(key(0), fullResult()); err != nil {
		t.Fatal(err)
	}
	fanout := filepath.Dir(s1.path(key(0)))
	tmp := filepath.Join(fanout, "put-123.tmp")
	if err := os.WriteFile(tmp, []byte("half-written"), 0o666); err != nil {
		t.Fatal(err)
	}
	_, rep := mustOpen(t, dir, 0)
	if rep.Entries != 1 || rep.Corrupt != 0 {
		t.Fatalf("scan with tmp leftover: %+v", rep)
	}
	if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("tmp leftover survived the scan")
	}
}

// Package server turns the scheduling library into an HTTP service: the
// request-handling layer behind cmd/battschedd. It decodes and validates
// wire.Job requests, bounds how many scheduling computations run at
// once, executes them through the cache-backed engine (repeat requests
// answer from memory, identical concurrent requests compute once) and
// encodes wire.Result responses.
//
// Endpoints (full wire schemas and curl examples in docs/API.md):
//
//	POST /v1/schedule   one job in, one result out (JSON)
//	POST /v1/batch      NDJSON job stream in, in-order NDJSON results out
//	GET  /v1/fixtures   the built-in benchmark graph registry
//	GET  /healthz       liveness probe
//	GET  /metrics       request/cache/in-flight counters (JSON)
//
// Everything on the hot path is deterministic, so the service inherits
// the engine's guarantee: a batch's result bytes do not depend on the
// worker count, the concurrency limit or the cache state.
//
// Scheduling work is request-scoped: each handler passes its request's
// context down through the cached engine into the per-window search, so
// a client that disconnects (or a timeout_ms / Config.RequestTimeout
// budget that expires, or a draining shutdown) stops burning cores
// mid-batch. Jobs that finished before the cancellation keep their
// results — bit-identical to an uncancelled run — and the rest carry
// the "canceled" result code; the /metrics `canceled` counter tallies
// them.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/battery"
	"repro/internal/cache"
	"repro/internal/engine"
	"repro/internal/queue"
	"repro/internal/store"
	"repro/internal/taskgraph"
	"repro/internal/wire"
)

// Config sizes a Server. The zero value is production-usable: GOMAXPROCS
// workers, 2×GOMAXPROCS in-flight requests, a cache.DefaultMaxEntries
// LRU and a 16 MB body limit.
type Config struct {
	// Workers bounds concurrent scheduling jobs inside one request
	// (batch fan-out); 0 means GOMAXPROCS(0).
	Workers int
	// MaxInFlight bounds how many requests may run scheduling work
	// concurrently; excess requests wait (or fail with 503 once their
	// context is done). 0 means 2×GOMAXPROCS(0).
	MaxInFlight int
	// CacheEntries bounds the result LRU; 0 means
	// cache.DefaultMaxEntries, negative disables caching.
	CacheEntries int
	// CacheStore, when non-nil, is the disk tier layered under the
	// result LRU (cmd/battschedd's -cache-dir flag): memory misses
	// consult it before computing, computed results are written through,
	// and a server restarted on the same store answers repeated requests
	// from disk with zero recomputation. Ignored when caching is
	// disabled (CacheEntries < 0). The caller opens the store
	// (store.Open) so startup owns the warm-start scan and its logging.
	CacheStore *store.Store
	// MaxBodyBytes caps a request body; 0 means 16 MB.
	MaxBodyBytes int64
	// MaxBatchJobs caps the job lines one /v1/batch request may carry,
	// bounding the work a single request can pin the host with (the
	// same threat the wire restart caps close); 0 means 10000.
	MaxBatchJobs int
	// RequestTimeout bounds the scheduling work of one request (the
	// whole batch, not per job); 0 means unbounded. When it fires,
	// unfinished jobs in the response carry the "canceled" code while
	// finished ones keep their results — the same behavior a client
	// disconnect triggers. Per-job budgets ride the wire instead
	// (wire.Job.TimeoutMS).
	RequestTimeout time.Duration
	// MaxQueued bounds the async job queue's waiting line; a POST
	// /v1/jobs beyond it is rejected with 429 + Retry-After. 0 means
	// queue.DefaultMaxQueued.
	MaxQueued int
	// QueueWorkers bounds concurrently executing async jobs (each still
	// takes compute through the shared gate, so this mostly overlaps
	// queue bookkeeping and cache hits with computation). 0 means
	// 2×GOMAXPROCS(0).
	QueueWorkers int
	// JobDefaultTTL bounds async jobs that submit no ttl_ms of their
	// own (queue wait + run, from submission); 0 means unbounded.
	JobDefaultTTL time.Duration
	// JobRetention is how long a finished async job stays pollable
	// before it is pruned; 0 means queue.DefaultRetention.
	JobRetention time.Duration
	// RetryAfter is the Retry-After hint (in seconds) sent with 429
	// queue-full and 503 capacity rejections; 0 means 1 second.
	RetryAfter int
	// DiskBreaker tunes the disk tier's circuit breaker (cmd/battschedd's
	// -disk-breaker-* flags): when the store returns Threshold errors
	// within Window, the cache degrades to memory-only serving until a
	// half-open probe after Probe succeeds. The zero value selects the
	// cache package defaults; Threshold < 0 disables the breaker. Ignored
	// without a CacheStore.
	DiskBreaker cache.BreakerConfig
	// DefaultBattery, when non-nil, is the battery spec applied to jobs
	// that select no battery of their own (neither a "battery" object
	// nor a "beta" shorthand) — cmd/battschedd's -battery flag. It must
	// be valid (New panics otherwise: a daemon misconfiguration should
	// fail at startup, not per request). Jobs that do name a battery
	// keep it; nil preserves the paper's default Rakhmatov
	// configuration.
	DefaultBattery *battery.Spec
	// AccessLog, when non-nil, receives one JSON line per request
	// (method, path, status, bytes, duration).
	AccessLog *log.Logger
}

// Server holds the handlers' shared state; create it with New and mount
// Handler on an http.Server. Call Close when draining so requests
// queued for capacity fail fast instead of stalling the shutdown.
type Server struct {
	cfg       Config
	cache     *cache.Cache // nil when caching is disabled
	engine    cache.Engine
	jobs      *queue.Queue
	sem       chan struct{}
	closed    chan struct{}
	closeOnce sync.Once
	start     time.Time
	metrics   metrics
}

// metrics are the /metrics counters; all fields are atomics so handlers
// never contend on them.
type metrics struct {
	schedule atomic.Uint64 // POST /v1/schedule requests
	batch    atomic.Uint64 // POST /v1/batch requests
	fixtures atomic.Uint64 // GET /v1/fixtures requests
	health   atomic.Uint64 // GET /healthz requests
	ready    atomic.Uint64 // GET /readyz requests
	metrics  atomic.Uint64 // GET /metrics requests
	jobsAPI  atomic.Uint64 // /v1/jobs* async-API requests, all verbs
	errors   atomic.Uint64 // responses with status >= 400
	rejected atomic.Uint64 // 503s from the in-flight limiter
	// rejectedQueue counts 429s (and per-line rejections) from the
	// async queue's admission control — deliberately distinct from
	// rejected: a full queue is backpressure, a drained/canceled slot
	// wait is a lifecycle event.
	rejectedQueue atomic.Uint64
	jobs          atomic.Uint64 // scheduling jobs executed or served from cache
	canceled      atomic.Uint64 // jobs cut short: disconnect, shutdown or timeout
	inFlight      atomic.Int64  // requests currently holding an in-flight slot
	// modelKinds counts served jobs per battery-model kind (the
	// /metrics "model_kinds" object), indexed parallel to specKinds
	// and sized from it in New, so a future kind cannot overflow it.
	// Jobs with a deprecated opaque model land in modelOpaque instead.
	modelKinds  []atomic.Uint64
	modelOpaque atomic.Uint64
}

// specKinds fixes the kind→counter index order once at startup (also
// sparing a battery.Kinds() allocation per served job).
var specKinds = battery.Kinds()

// countModelKind attributes one served job to its battery-model kind.
func (m *metrics) countModelKind(job engine.Job) {
	spec, ok := job.Options.BatterySpec()
	if !ok {
		m.modelOpaque.Add(1)
		return
	}
	for i, k := range specKinds {
		if k == spec.Kind {
			m.modelKinds[i].Add(1)
			return
		}
	}
}

// New builds a server from the config. It panics on an invalid
// Config.DefaultBattery — a misconfigured daemon must fail at startup,
// not answer every request with the same 400.
func New(cfg Config) *Server {
	if cfg.DefaultBattery != nil {
		if err := cfg.DefaultBattery.Validate(); err != nil {
			panic(fmt.Sprintf("server: invalid Config.DefaultBattery: %v", err))
		}
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 16 << 20
	}
	if cfg.MaxBatchJobs <= 0 {
		cfg.MaxBatchJobs = 10000
	}
	s := &Server{
		cfg:    cfg,
		sem:    make(chan struct{}, cfg.MaxInFlight),
		closed: make(chan struct{}),
		start:  time.Now(),
	}
	s.metrics.modelKinds = make([]atomic.Uint64, len(specKinds))
	if cfg.CacheEntries >= 0 {
		s.cache = cache.NewTiered(cfg.CacheEntries, cfg.CacheStore, cfg.DiskBreaker)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// One computation gate shared by every request: per-request pools
	// give a lone batch full parallelism, while the gate keeps total
	// scheduling concurrency at `workers` instead of
	// MaxInFlight × workers when many requests land at once (cache
	// hits bypass it).
	s.engine = cache.Engine{
		Cache:   s.cache,
		Workers: cfg.Workers,
		Gate:    make(chan struct{}, workers),
	}
	s.jobs = queue.New(queue.Config{
		MaxQueued:  cfg.MaxQueued,
		Workers:    cfg.QueueWorkers,
		DefaultTTL: cfg.JobDefaultTTL,
		Retention:  cfg.JobRetention,
	})
	return s
}

// Close marks the server as draining: requests waiting for an in-flight
// slot get an immediate 503 instead of blocking graceful shutdown until
// their clients give up, and in-flight scheduling work is canceled —
// each running request returns promptly, its unfinished jobs marked
// with the "canceled" code (its finished ones keep their results). The
// async queue drains too: queued jobs abort without running, running
// ones are canceled, and pollers/streamers observe the "aborted"
// terminal state. Safe to call more than once.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.closed)
		s.jobs.Close()
	})
}

// requestContext derives the context scheduling work runs under: the
// request's own (canceled when the client disconnects), bounded by
// Config.RequestTimeout when set, and canceled when the server starts
// draining. The returned cancel must be called when the request is
// done.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	var cancel context.CancelFunc
	if s.cfg.RequestTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	go func() {
		select {
		case <-s.closed:
			cancel()
		case <-ctx.Done():
		}
	}()
	return ctx, cancel
}

// Cache exposes the result cache (nil when disabled), mainly for tests
// and for embedding servers that want to inspect Stats.
func (s *Server) Cache() *cache.Cache { return s.cache }

// applyDefaultBattery fills Config.DefaultBattery into a job that
// selected no battery of its own. Jobs carrying a "battery" object or
// the "beta" shorthand (which resolves through Options.Beta) are left
// alone, as are deprecated opaque models (impossible over the wire).
func (s *Server) applyDefaultBattery(job *engine.Job) {
	if s.cfg.DefaultBattery == nil {
		return
	}
	if job.Options.Battery == nil && job.Options.Beta == 0 && job.Options.Model == nil {
		job.Options.Battery = s.cfg.DefaultBattery
	}
}

// Handler returns the routed handler, wrapped with the access logger.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/schedule", s.handleSchedule)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	mux.HandleFunc("POST /v1/jobs/batch", s.handleJobsBatch)
	mux.HandleFunc("POST /v1/jobs/stream", s.handleJobsBatchStream)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobAbort)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleJobStream)
	mux.HandleFunc("GET /v1/fixtures", s.handleFixtures)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s.accessLog(mux)
}

// acquire takes an in-flight slot, giving up when the request dies or
// the server starts draining first. It reports whether the slot was
// taken; the caller must release on true.
func (s *Server) acquire(r *http.Request) bool {
	select {
	case s.sem <- struct{}{}:
		s.metrics.inFlight.Add(1)
		return true
	case <-r.Context().Done():
		s.metrics.rejected.Add(1)
		return false
	case <-s.closed:
		s.metrics.rejected.Add(1)
		return false
	}
}

func (s *Server) release() {
	s.metrics.inFlight.Add(-1)
	<-s.sem
}

// handleSchedule runs one job: wire.Job body in, wire.Result body out.
// Decode and validation failures are 400s, scheduling failures
// (infeasible deadline, …) are 422s with the same error envelope, and a
// served result carries an X-Cache: hit|miss header.
func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	s.metrics.schedule.Add(1)
	body, err := s.readBody(w, r)
	if err != nil {
		s.writeError(w, bodyErrorStatus(err), err)
		return
	}
	job, err := wire.DecodeJob(body)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	ejob, err := job.ToEngine()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	s.applyDefaultBattery(&ejob)
	if !s.acquire(r) {
		s.writeRetryError(w, http.StatusServiceUnavailable, errors.New("server: shutting down or request cancelled while waiting for capacity"))
		return
	}
	defer s.release()

	ctx, cancel := s.requestContext(r)
	defer cancel()
	res, hit := s.engine.RunContext(ctx, ejob)
	s.metrics.jobs.Add(1)
	s.metrics.countModelKind(ejob)
	s.metrics.canceled.Add(countCanceled(res))
	out := wire.FromEngine(0, res)
	w.Header().Set("Content-Type", "application/json")
	if hit {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	if res.Err != nil {
		s.metrics.errors.Add(1)
		w.WriteHeader(http.StatusUnprocessableEntity)
	}
	json.NewEncoder(w).Encode(out)
}

// handleBatch streams NDJSON jobs in and NDJSON results out, in input
// order. Per-line failures (parse errors, infeasible jobs) land in that
// line's result; the response itself is always 200 once streaming
// starts — exactly battbatch's contract over HTTP.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.metrics.batch.Add(1)
	body, err := s.readBody(w, r)
	if err != nil {
		s.writeError(w, bodyErrorStatus(err), err)
		return
	}

	// One result slot per non-blank line; a line that fails to decode
	// keeps its slot and reports its own error (see wire.DecodeJobs).
	jobs, names, parseErrs, err := wire.DecodeJobs(bytes.NewReader(body))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(jobs) > s.cfg.MaxBatchJobs {
		s.writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("server: batch has %d jobs, limit is %d", len(jobs), s.cfg.MaxBatchJobs))
		return
	}
	for i := range jobs {
		if parseErrs[i] == nil {
			s.applyDefaultBattery(&jobs[i])
		}
	}
	if !s.acquire(r) {
		s.writeRetryError(w, http.StatusServiceUnavailable, errors.New("server: shutting down or request cancelled while waiting for capacity"))
		return
	}
	defer s.release()

	ctx, cancel := s.requestContext(r)
	defer cancel()
	results, hits := s.engine.RunBatchContext(ctx, jobs)
	s.metrics.jobs.Add(uint64(len(jobs)))
	// Count per-slot, skipping lines that failed to parse: their
	// placeholder jobs can land on ErrCanceled too, but the response
	// reports their parse error (wire.Results), so counting them would
	// make /metrics disagree with what the client was told.
	var canceledJobs uint64
	for i := range results {
		if parseErrs[i] == nil {
			canceledJobs += countCanceled(results[i])
			s.metrics.countModelKind(jobs[i])
		}
	}
	s.metrics.canceled.Add(canceledJobs)
	hitCount := 0
	for _, h := range hits {
		if h {
			hitCount++
		}
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Cache-Hits", fmt.Sprintf("%d/%d", hitCount, len(jobs)))
	enc := json.NewEncoder(w)
	for _, out := range wire.Results(results, names, parseErrs) {
		if err := enc.Encode(out); err != nil {
			return // client went away mid-stream; nothing to salvage
		}
	}
}

// countCanceled counts results cut short by cancellation (client
// disconnect, server drain or per-job timeout) for the metrics counter.
func countCanceled(results ...engine.Result) uint64 {
	var n uint64
	for _, res := range results {
		if errors.Is(res.Err, engine.ErrCanceled) {
			n++
		}
	}
	return n
}

// handleFixtures serves the shared built-in graph registry.
func (s *Server) handleFixtures(w http.ResponseWriter, r *http.Request) {
	s.metrics.fixtures.Add(1)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(taskgraph.FixtureInfos())
}

// handleHealthz is the liveness probe.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.metrics.health.Add(1)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

// draining reports whether Close has been called.
func (s *Server) draining() bool {
	select {
	case <-s.closed:
		return true
	default:
		return false
	}
}

// Ready computes the readiness verdict /readyz serves: "draining" once
// Close has been called (stop routing traffic here), "degraded" while
// the disk circuit breaker is not closed (the process serves, memory-
// only), "ok" otherwise — each with per-subsystem detail.
func (s *Server) Ready() wire.Ready {
	rep := wire.Ready{
		Status:     wire.ReadyOK,
		Subsystems: make(map[string]wire.ReadySubsystem),
	}

	disk := wire.ReadySubsystem{Status: wire.ReadyDisabled, Detail: "no disk tier attached"}
	if s.cache != nil && s.cache.HasDisk() {
		switch state := s.cache.DiskBreakerState(); state {
		case "closed":
			disk = wire.ReadySubsystem{Status: wire.ReadyOK}
		default: // open or half-open: the disk is out of rotation
			disk = wire.ReadySubsystem{
				Status: wire.ReadyDegraded,
				Detail: "disk circuit breaker " + state + "; serving memory-only",
			}
			rep.Status = wire.ReadyDegraded
		}
	}
	rep.Subsystems["disk"] = disk

	queueSub := wire.ReadySubsystem{Status: wire.ReadyOK}
	if s.draining() {
		queueSub = wire.ReadySubsystem{Status: wire.ReadyDraining, Detail: "shutdown in progress; queue closed"}
		rep.Status = wire.ReadyDraining
	}
	rep.Subsystems["queue"] = queueSub

	return rep
}

// handleReadyz serves the readiness probe: 200 for ok/degraded (the
// process accepts traffic either way — degraded only means the disk
// tier is bypassed), 503 + Retry-After for draining, so load balancers
// and orchestration pull the instance before its listener goes away.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.metrics.ready.Add(1)
	rep := s.Ready()
	w.Header().Set("Content-Type", "application/json")
	if rep.Status == wire.ReadyDraining {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(rep)
}

// MetricsSnapshot is the /metrics response body.
type MetricsSnapshot struct {
	UptimeSeconds float64           `json:"uptime_seconds"`
	Requests      map[string]uint64 `json:"requests"`
	ErrorCount    uint64            `json:"error_responses"`
	Rejected      uint64            `json:"rejected"`
	// RejectedQueue counts async submissions refused by the queue's
	// admission control (429s and per-line batch rejections) — distinct
	// from Rejected, which counts sync requests that lost their wait
	// for an in-flight slot.
	RejectedQueue uint64 `json:"rejected_queue"`
	JobsTotal     uint64 `json:"jobs_total"`
	Canceled      uint64 `json:"canceled"`
	// JobsAsync is the async queue's per-state census: queued/running
	// gauges plus cumulative submitted/coalesced/rejected and the
	// done/expired/aborted terminal counters.
	JobsAsync queue.Stats `json:"jobs_async"`
	// ModelKinds counts served jobs per battery-model kind (rakhmatov,
	// ideal, peukert, kibam, calibrated; "opaque" for deprecated
	// Options.Model jobs from embedding callers). Kinds never served
	// are omitted.
	ModelKinds  map[string]uint64 `json:"model_kinds,omitempty"`
	InFlight    int64             `json:"in_flight"`
	MaxInFlight int               `json:"max_in_flight"`
	Cache       *cache.Stats      `json:"cache,omitempty"`
}

// Metrics snapshots the counters (also what GET /metrics serves).
func (s *Server) Metrics() MetricsSnapshot {
	snap := MetricsSnapshot{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests: map[string]uint64{
			"schedule": s.metrics.schedule.Load(),
			"batch":    s.metrics.batch.Load(),
			"jobs":     s.metrics.jobsAPI.Load(),
			"fixtures": s.metrics.fixtures.Load(),
			"healthz":  s.metrics.health.Load(),
			"readyz":   s.metrics.ready.Load(),
			"metrics":  s.metrics.metrics.Load(),
		},
		ErrorCount:    s.metrics.errors.Load(),
		Rejected:      s.metrics.rejected.Load(),
		RejectedQueue: s.metrics.rejectedQueue.Load(),
		JobsTotal:     s.metrics.jobs.Load(),
		Canceled:      s.metrics.canceled.Load(),
		JobsAsync:     s.jobs.Stats(),
		InFlight:      s.metrics.inFlight.Load(),
		MaxInFlight:   s.cfg.MaxInFlight,
	}
	kinds := map[string]uint64{}
	for i, kind := range specKinds {
		if n := s.metrics.modelKinds[i].Load(); n > 0 {
			kinds[kind] = n
		}
	}
	if n := s.metrics.modelOpaque.Load(); n > 0 {
		kinds["opaque"] = n
	}
	if len(kinds) > 0 {
		snap.ModelKinds = kinds
	}
	if s.cache != nil {
		st := s.cache.Stats()
		snap.Cache = &st
	}
	return snap
}

// handleMetrics serves the counter snapshot.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.metrics.metrics.Add(1)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Metrics())
}

// bodyErrorStatus maps body-read failures to a status: an over-limit
// body is the client's fault in a specific way (413), everything else a
// plain 400.
func bodyErrorStatus(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// readBody reads a size-capped request body.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	defer r.Body.Close()
	return io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
}

// writeError sends the JSON error envelope shared by every endpoint.
func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	s.metrics.errors.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// retryAfterSeconds resolves the Retry-After hint.
func (s *Server) retryAfterSeconds() int {
	if s.cfg.RetryAfter > 0 {
		return s.cfg.RetryAfter
	}
	return 1
}

// writeRetryError is writeError plus a Retry-After header — the shape
// of every transient rejection (429 queue-full, 503 capacity), so
// well-behaved clients know these are back-off-and-retry conditions,
// not failures.
func (s *Server) writeRetryError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	s.writeError(w, status, err)
}

// statusWriter captures the status code and byte count for access logs.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += n
	return n, err
}

// Unwrap exposes the underlying writer so http.ResponseController can
// reach Flush through the access-log wrapper — without it the stream
// endpoints would silently stop streaming whenever access logs are on.
func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// accessLog wraps next with one structured (JSON) log line per request.
func (s *Server) accessLog(next http.Handler) http.Handler {
	if s.cfg.AccessLog == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		begin := time.Now()
		next.ServeHTTP(sw, r)
		line, _ := json.Marshal(map[string]any{
			"time":        begin.UTC().Format(time.RFC3339Nano),
			"method":      r.Method,
			"path":        r.URL.Path,
			"status":      sw.status,
			"bytes":       sw.bytes,
			"duration_ms": float64(time.Since(begin).Microseconds()) / 1000,
			"remote":      r.RemoteAddr,
		})
		s.cfg.AccessLog.Println(string(line))
	})
}

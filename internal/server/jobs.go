// The async job API: submit/poll/stream semantics over the admission-
// controlled queue (internal/queue), so a client running a Table-3-style
// sweep holds zero connections open while the server drains the backlog.
//
//	POST   /v1/jobs             submit one job, return its ID immediately
//	GET    /v1/jobs/{id}        poll status/result
//	DELETE /v1/jobs/{id}        abort (queued jobs never run; running ones cancel)
//	GET    /v1/jobs/{id}/stream block until terminal, emit the result line
//	POST   /v1/jobs/batch       submit an NDJSON batch, return statuses
//	POST   /v1/jobs/stream      submit an NDJSON batch, stream result lines
//	                            as jobs finish (out-of-order; ?ordered=1
//	                            for input order)
//
// A job's ID is its content-addressed cache key, so duplicate
// submissions — within a batch, across batches, even across async and
// sync clients via the engine's single-flight cache — coalesce onto one
// computation. Streamed result lines are byte-identical to what the
// sync endpoints would have produced for the same jobs; streams speak
// NDJSON by default and SSE when the request prefers text/event-stream.
//
// Admission control is synchronous: a full queue rejects the submission
// with 429 and a Retry-After hint (counted in the rejected_queue
// metric) instead of letting a backlog grow without bound.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/engine"
	"repro/internal/queue"
	"repro/internal/wire"
)

// submitJob admits one decoded job into the async queue and returns its
// snapshot. The returned error carries the HTTP status the caller
// should serve (429 full / 503 draining / 400 unaddressable).
func (s *Server) submitJob(job wire.Job, ejob engine.Job) (queue.Snapshot, int, error) {
	id, ok := cache.Key(ejob)
	if !ok {
		// Unreachable for wire-validated jobs (every field the key
		// refuses is refused harder by decode); kept for embedders.
		return queue.Snapshot{}, http.StatusBadRequest,
			errors.New("server: job has no canonical content address")
	}
	snap, err := s.jobs.Submit(queue.Submission{
		ID:       id,
		Priority: job.Priority,
		TTL:      time.Duration(job.TTLMS) * time.Millisecond,
		Run: func(ctx context.Context) engine.Result {
			res, _ := s.engine.RunContext(ctx, ejob)
			s.metrics.jobs.Add(1)
			s.metrics.countModelKind(ejob)
			s.metrics.canceled.Add(countCanceled(res))
			return res
		},
	})
	switch {
	case errors.Is(err, queue.ErrFull):
		s.metrics.rejectedQueue.Add(1)
		return queue.Snapshot{}, http.StatusTooManyRequests,
			fmt.Errorf("server: job queue full (max %d waiting); retry later", s.queueCapacity())
	case errors.Is(err, queue.ErrClosed):
		return queue.Snapshot{}, http.StatusServiceUnavailable,
			errors.New("server: shutting down; job not accepted")
	case err != nil:
		return queue.Snapshot{}, http.StatusInternalServerError, err
	}
	return snap, 0, nil
}

// queueCapacity reports the configured waiting-line bound.
func (s *Server) queueCapacity() int {
	if s.cfg.MaxQueued > 0 {
		return s.cfg.MaxQueued
	}
	return queue.DefaultMaxQueued
}

// jobStatus converts a queue snapshot to its wire form, re-attaching
// the submission's name (poll-by-id callers have none to attach — the
// label is per-submission metadata, not job content).
func jobStatus(snap queue.Snapshot, name string) wire.JobStatus {
	st := wire.JobStatus{
		ID:       snap.ID,
		State:    snap.State.String(),
		Priority: snap.Priority,
		Name:     name,
	}
	switch snap.State {
	case queue.StateDone:
		res := snap.Result
		res.Name = name
		r := wire.FromEngine(0, res)
		st.Result = &r
	case queue.StateExpired:
		st.Error = "job expired before completion (ttl_ms)"
	case queue.StateAborted:
		st.Error = "job aborted"
	}
	return st
}

// terminalResult converts a terminal snapshot to the stream-line form:
// a done job's line is byte-identical to the sync endpoints' result for
// the same job (same index/name attachment), while expired/aborted jobs
// carry their retryable code.
func terminalResult(snap queue.Snapshot, index int, name string) wire.Result {
	switch snap.State {
	case queue.StateDone:
		res := snap.Result
		res.Name = name
		return wire.FromEngine(index, res)
	case queue.StateExpired:
		return wire.Result{Index: index, Name: name,
			Error: "job expired before completion (ttl_ms)", Code: wire.CodeExpired}
	default:
		return wire.Result{Index: index, Name: name,
			Error: "job aborted", Code: wire.CodeAborted}
	}
}

// handleJobSubmit accepts one job: wire.Job body in, wire.JobStatus out.
// 202 for a job now queued/running, 200 when a retained result answered
// immediately, 429 + Retry-After when admission control refuses.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	s.metrics.jobsAPI.Add(1)
	body, err := s.readBody(w, r)
	if err != nil {
		s.writeError(w, bodyErrorStatus(err), err)
		return
	}
	job, err := wire.DecodeJob(body)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	ejob, err := job.ToEngine()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	s.applyDefaultBattery(&ejob)
	snap, status, err := s.submitJob(job, ejob)
	if err != nil {
		if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
			s.writeRetryError(w, status, err)
		} else {
			s.writeError(w, status, err)
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Location", "/v1/jobs/"+snap.ID)
	if snap.State.Terminal() {
		w.WriteHeader(http.StatusOK)
	} else {
		w.WriteHeader(http.StatusAccepted)
	}
	writeJSON(w, jobStatus(snap, job.Name))
}

// handleJobGet polls one job's status; the result rides along once the
// job is done.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	s.metrics.jobsAPI.Add(1)
	snap, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, errors.New("server: unknown job id (never submitted, or aged out of retention)"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, jobStatus(snap, ""))
}

// handleJobAbort aborts one job. Aborting an already-terminal job is a
// no-op that reports the state as it stands.
func (s *Server) handleJobAbort(w http.ResponseWriter, r *http.Request) {
	s.metrics.jobsAPI.Add(1)
	snap, ok := s.jobs.Abort(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, errors.New("server: unknown job id (never submitted, or aged out of retention)"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, jobStatus(snap, ""))
}

// handleJobStream blocks until the job is terminal and emits its result
// line (NDJSON by default, SSE on Accept: text/event-stream). A done
// job's body is byte-identical to the sync POST /v1/schedule response
// for the same (unnamed) job.
func (s *Server) handleJobStream(w http.ResponseWriter, r *http.Request) {
	s.metrics.jobsAPI.Add(1)
	id := r.PathValue("id")
	if _, ok := s.jobs.Get(id); !ok {
		s.writeError(w, http.StatusNotFound, errors.New("server: unknown job id (never submitted, or aged out of retention)"))
		return
	}
	emit := newStreamWriter(w, r)
	snap, ok, err := s.jobs.Wait(r.Context(), id)
	if err != nil || !ok {
		return // client gave up (or the job aged out mid-wait); nothing to salvage
	}
	emit(terminalResult(snap, 0, ""))
}

// batchSlot is one NDJSON line's fate in a jobs batch: an immediate
// error line (decode failure or admission rejection) or a submitted job
// to wait on.
type batchSlot struct {
	name     string
	id       string // submitted job id; "" when err is set
	err      error  // decode or admission failure
	terminal bool   // submission answered terminal immediately
	snap     queue.Snapshot
}

// decodeJobsBatch reads and admits an NDJSON jobs body, returning one
// slot per line. Admission rejections are per-line (the rest of the
// batch is unaffected) and counted in rejected_queue; if any line was
// rejected for capacity the caller should advertise Retry-After.
func (s *Server) decodeJobsBatch(w http.ResponseWriter, r *http.Request) ([]batchSlot, bool) {
	body, err := s.readBody(w, r)
	if err != nil {
		s.writeError(w, bodyErrorStatus(err), err)
		return nil, false
	}
	wjobs, ejobs, parseErrs, err := wire.DecodeJobsFull(bytes.NewReader(body))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return nil, false
	}
	if len(wjobs) > s.cfg.MaxBatchJobs {
		s.writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("server: batch has %d jobs, limit is %d", len(wjobs), s.cfg.MaxBatchJobs))
		return nil, false
	}
	slots := make([]batchSlot, len(wjobs))
	rejected := false
	for i := range wjobs {
		slots[i].name = wjobs[i].Name
		if parseErrs[i] != nil {
			slots[i].err = parseErrs[i]
			continue
		}
		s.applyDefaultBattery(&ejobs[i])
		snap, status, serr := s.submitJob(wjobs[i], ejobs[i])
		if serr != nil {
			slots[i].err = serr
			// Both transient rejections earn the Retry-After hint: 429
			// (queue full) and 503 (draining — retry lands on a healthy
			// replica). Leaving 503 out taught resilient clients that a
			// drain rejection was permanent.
			rejected = rejected || status == http.StatusTooManyRequests ||
				status == http.StatusServiceUnavailable
			continue
		}
		slots[i].id = snap.ID
		slots[i].snap = snap
		slots[i].terminal = snap.State.Terminal()
	}
	if rejected {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	}
	return slots, true
}

// handleJobsBatch submits an NDJSON batch and returns a JSON array with
// one wire.JobStatus per line — ids to poll or stream, immediate errors
// for lines that failed to decode or were refused admission. Always 202
// once the body decodes: per-line failures live in their slots, exactly
// the /v1/batch contract.
func (s *Server) handleJobsBatch(w http.ResponseWriter, r *http.Request) {
	s.metrics.jobsAPI.Add(1)
	slots, ok := s.decodeJobsBatch(w, r)
	if !ok {
		return
	}
	statuses := make([]wire.JobStatus, len(slots))
	for i, slot := range slots {
		if slot.err != nil {
			statuses[i] = wire.JobStatus{Name: slot.name, Error: slot.err.Error()}
			continue
		}
		statuses[i] = jobStatus(slot.snap, slot.name)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, statuses)
}

// handleJobsBatchStream submits an NDJSON batch and streams one result
// line per input line as jobs finish — out-of-order by default (a line's
// "index" says which input it answers), in input order with ?ordered=1.
// Lines that failed to decode or were refused admission are emitted as
// error lines without waiting. Completed lines are byte-identical to
// the sync POST /v1/batch lines for the same jobs.
func (s *Server) handleJobsBatchStream(w http.ResponseWriter, r *http.Request) {
	s.metrics.jobsAPI.Add(1)
	slots, ok := s.decodeJobsBatch(w, r)
	if !ok {
		return
	}
	emit := newStreamWriter(w, r)
	ctx := r.Context()

	if r.URL.Query().Get("ordered") == "1" {
		for i, slot := range slots {
			if slot.err != nil {
				if !emit(wire.ErrorResult(i, slot.name, slot.err)) {
					return
				}
				continue
			}
			snap, ok, err := s.jobs.Wait(ctx, slot.id)
			if err != nil {
				return // client gave up
			}
			if !ok {
				// Aged out of the queue mid-wait. The admission snapshot
				// is all we have, and unless it was already terminal at
				// submit time it says nothing about how the job ended —
				// the job may well have completed and been pruned.
				// Mirroring the out-of-order path: never dress a
				// non-terminal snapshot up as an outcome (terminalResult
				// would render it as a false "job aborted" line).
				snap = slot.snap
			}
			if !snap.State.Terminal() {
				return
			}
			if !emit(terminalResult(snap, i, slot.name)) {
				return
			}
		}
		return
	}

	// Out-of-order: emit failures now, then fan in completions as they
	// land. The channel is buffered to the fan-out, so waiter
	// goroutines can never block on a client that walked away.
	type finished struct {
		idx  int
		snap queue.Snapshot
	}
	done := make(chan finished, len(slots))
	waiting := 0
	for i, slot := range slots {
		if slot.err != nil {
			if !emit(wire.ErrorResult(i, slot.name, slot.err)) {
				return
			}
			continue
		}
		waiting++
		go func(idx int, slot batchSlot) {
			snap, ok, err := s.jobs.Wait(ctx, slot.id)
			if err != nil || !ok {
				snap = slot.snap
			}
			done <- finished{idx: idx, snap: snap}
		}(i, slot)
	}
	for ; waiting > 0; waiting-- {
		select {
		case f := <-done:
			if !f.snap.State.Terminal() {
				return // ctx died mid-wait; the client is gone anyway
			}
			if !emit(terminalResult(f.snap, f.idx, slots[f.idx].name)) {
				return
			}
		case <-ctx.Done():
			return
		}
	}
}

// newStreamWriter picks the stream framing — NDJSON lines by default,
// SSE "data:" events when the request prefers text/event-stream — sets
// the content type, and returns an emit function that reports whether
// the client is still there. Every emitted payload is flushed
// immediately (through wrapping middleware via http.ResponseController):
// the whole point of the stream endpoints is that results arrive as
// they finish, not when the response buffer fills.
func newStreamWriter(w http.ResponseWriter, r *http.Request) func(v any) bool {
	rc := http.NewResponseController(w)
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-store")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	enc := json.NewEncoder(w)
	return func(v any) bool {
		if sse {
			if _, err := io.WriteString(w, "data: "); err != nil {
				return false
			}
		}
		if err := enc.Encode(v); err != nil {
			return false
		}
		if sse {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return false
			}
		}
		rc.Flush()
		return true
	}
}

// writeJSON encodes v as the whole response body.
func writeJSON(w http.ResponseWriter, v any) {
	json.NewEncoder(w).Encode(v)
}

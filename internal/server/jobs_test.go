package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

// newJobsServer builds a server with an explicit config for the async
// tests and guarantees the queue drains at cleanup even when a test
// leaves slow jobs running.
func newJobsServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// slowJob is a request heavy enough (full multistart fan-in, serialized
// through a 1-worker gate in the tests that use it) to stay running or
// queued while the test acts on it.
func slowJob(seed int) string {
	return fmt.Sprintf(`{"fixture":"g3","deadline":230,"strategy":"multistart","restarts":4000,"seed":%d}`, seed)
}

func submitJob(t *testing.T, url, body string) (wire.JobStatus, *http.Response) {
	t.Helper()
	resp, data := post(t, url+"/v1/jobs", body)
	var st wire.JobStatus
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatalf("bad job status body %q: %v", data, err)
		}
		if st.ID == "" {
			t.Fatalf("accepted submission without an id: %s", data)
		}
	}
	return st, resp
}

// pollUntil polls the job until pred holds, failing the test at the
// deadline. It returns the matching status.
func pollUntil(t *testing.T, url, id string, pred func(wire.JobStatus) bool) wire.JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, data := get(t, url+"/v1/jobs/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll %s: status %d: %s", id, resp.StatusCode, data)
		}
		var st wire.JobStatus
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatalf("poll %s: bad body %q: %v", id, data, err)
		}
		if pred(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("poll %s: still %q at deadline", id, st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func terminal(st wire.JobStatus) bool {
	return st.State == wire.StateDone || st.State == wire.StateExpired || st.State == wire.StateAborted
}

// TestJobSubmitPollStreamByteIdentical is the async tier's core
// contract: submit → poll-to-done delivers the same result the sync
// endpoint computes, and the job's stream line is byte-identical to the
// sync POST /v1/schedule response body for the same job.
func TestJobSubmitPollStreamByteIdentical(t *testing.T) {
	_, ts := newJobsServer(t, Config{Workers: 2})
	const body = `{"fixture":"g3","deadline":230,"priority":5}`

	st, resp := submitJob(t, ts.URL, body)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Location"); got != "/v1/jobs/"+st.ID {
		t.Fatalf("Location = %q, want /v1/jobs/%s", got, st.ID)
	}
	final := pollUntil(t, ts.URL, st.ID, terminal)
	if final.State != wire.StateDone || final.Result == nil {
		t.Fatalf("final state %q (result %v), want done with result", final.State, final.Result)
	}

	// The sync answer for the identical job. The async run already
	// warmed the shared cache, which is the point: one computation,
	// bit-identical bytes on every path.
	syncResp, syncBody := post(t, ts.URL+"/v1/schedule", body)
	if syncResp.StatusCode != http.StatusOK {
		t.Fatalf("sync schedule status %d: %s", syncResp.StatusCode, syncBody)
	}

	polled, err := json.Marshal(final.Result)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := string(polled), strings.TrimSuffix(string(syncBody), "\n"); got != want {
		t.Fatalf("polled result differs from sync result:\npoll: %s\nsync: %s", got, want)
	}

	streamResp, streamBody := get(t, ts.URL+"/v1/jobs/"+st.ID+"/stream")
	if streamResp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d: %s", streamResp.StatusCode, streamBody)
	}
	if ct := streamResp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream Content-Type = %q", ct)
	}
	if !bytes.Equal(streamBody, syncBody) {
		t.Fatalf("stream line differs from sync body:\nstream: %s\nsync:   %s", streamBody, syncBody)
	}
}

// TestJobsBatchStreamOrderedByteIdentical pins the batch contract: the
// ordered async stream of a whole NDJSON batch is byte-for-byte the
// sync /v1/batch response for the same input.
func TestJobsBatchStreamOrderedByteIdentical(t *testing.T) {
	_, ts := newJobsServer(t, Config{Workers: 2})
	batch := `{"name":"a","fixture":"g3","deadline":230}
{"name":"b","fixture":"g2","deadline":75,"priority":9}
{"name":"c","fixture":"g3","deadline":150,"strategy":"multistart","restarts":3,"seed":4}
not json at all
{"name":"e","fixture":"g2","deadline":55,"battery":{"kind":"peukert","capacity":47500,"exponent":1.2,"rated_current":250}}
`
	asyncResp, asyncBody := post(t, ts.URL+"/v1/jobs/stream?ordered=1", batch)
	if asyncResp.StatusCode != http.StatusOK {
		t.Fatalf("async stream status %d: %s", asyncResp.StatusCode, asyncBody)
	}
	syncResp, syncBody := post(t, ts.URL+"/v1/batch", batch)
	if syncResp.StatusCode != http.StatusOK {
		t.Fatalf("sync batch status %d: %s", syncResp.StatusCode, syncBody)
	}
	if !bytes.Equal(asyncBody, syncBody) {
		t.Fatalf("ordered async stream differs from sync batch:\nasync: %s\nsync:  %s", asyncBody, syncBody)
	}
}

// TestJobsBatchStreamUnordered: every input line is answered exactly
// once (indexes cover the batch), whatever the completion order.
func TestJobsBatchStreamUnordered(t *testing.T) {
	_, ts := newJobsServer(t, Config{Workers: 2})
	var batch strings.Builder
	const n = 12
	for i := 0; i < n; i++ {
		fmt.Fprintf(&batch, `{"fixture":"g3","deadline":%d}`+"\n", 150+i)
	}
	resp, body := post(t, ts.URL+"/v1/jobs/stream", batch.String())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	seen := make([]int, n)
	for _, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
		var r wire.Result
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("bad line %q: %v", line, err)
		}
		if r.Index < 0 || r.Index >= n {
			t.Fatalf("line index %d out of range", r.Index)
		}
		seen[r.Index]++
		if r.Error != "" {
			t.Fatalf("job %d failed: %s", r.Index, r.Error)
		}
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("input %d answered %d times, want exactly once", i, c)
		}
	}
}

// TestJobsMultiClientExactlyOneTerminal is the satellite integration
// test: many concurrent clients submitting overlapping work, every
// submission reaching exactly one stable terminal state, with
// cross-client duplicates coalescing onto shared computations.
func TestJobsMultiClientExactlyOneTerminal(t *testing.T) {
	s, ts := newJobsServer(t, Config{Workers: 4})
	const clients, jobsPer = 16, 10

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{}
			for j := 0; j < jobsPer; j++ {
				// Half the deadlines collide across clients on purpose.
				deadline := 140 + (c*jobsPer+j)%20
				body := fmt.Sprintf(`{"fixture":"g3","deadline":%d,"priority":%d}`, deadline, j%10)
				resp, err := client.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				var st wire.JobStatus
				err = json.NewDecoder(resp.Body).Decode(&st)
				resp.Body.Close()
				if err != nil || st.ID == "" {
					errs <- fmt.Errorf("client %d: bad submit response (err %v)", c, err)
					return
				}
				// Poll to terminal, then confirm the state held.
				var final wire.JobStatus
				for deadline := time.Now().Add(30 * time.Second); ; {
					r2, err := client.Get(ts.URL + "/v1/jobs/" + st.ID)
					if err != nil {
						errs <- err
						return
					}
					err = json.NewDecoder(r2.Body).Decode(&final)
					r2.Body.Close()
					if err != nil {
						errs <- err
						return
					}
					if terminal(final) {
						break
					}
					if time.Now().After(deadline) {
						errs <- fmt.Errorf("client %d job %s: never terminal", c, st.ID)
						return
					}
					time.Sleep(time.Millisecond)
				}
				if final.State != wire.StateDone || final.Result == nil || final.Result.Error != "" {
					errs <- fmt.Errorf("client %d job %s: state %q result %+v", c, st.ID, final.State, final.Result)
					return
				}
				r3, err := client.Get(ts.URL + "/v1/jobs/" + st.ID)
				if err != nil {
					errs <- err
					return
				}
				var again wire.JobStatus
				err = json.NewDecoder(r3.Body).Decode(&again)
				r3.Body.Close()
				if err != nil || again.State != final.State {
					t.Errorf("job %s: terminal state changed %q -> %q (err %v)", st.ID, final.State, again.State, err)
				}
			}
			errs <- nil
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	stats := s.Metrics().JobsAsync
	if stats.Submitted != clients*jobsPer {
		t.Fatalf("submitted = %d, want %d", stats.Submitted, clients*jobsPer)
	}
	if stats.Coalesced == 0 {
		t.Fatal("overlapping submissions coalesced 0 times, expected sharing")
	}
	if stats.Expired != 0 || stats.Aborted != 0 || stats.Rejected != 0 {
		t.Fatalf("unexpected lifecycle events: %+v", stats)
	}
	// Every distinct job computed exactly once and stayed done.
	if got := stats.Done + stats.Coalesced; got != stats.Submitted {
		t.Fatalf("done(%d) + coalesced(%d) = %d, want submitted %d", stats.Done, stats.Coalesced, got, stats.Submitted)
	}
}

// TestJobQueueFullRejectsWithRetryAfter: admission control under a
// tiny queue — the overflow submission gets 429 + Retry-After and the
// rejection lands in the rejected_queue metric, not `rejected`.
func TestJobQueueFullRejectsWithRetryAfter(t *testing.T) {
	s, ts := newJobsServer(t, Config{Workers: 1, QueueWorkers: 1, MaxQueued: 1, RetryAfter: 7})

	// One slow job occupies the lone worker, one fills the lone queue
	// slot, then distinct submissions must start bouncing.
	if _, resp := submitJob(t, ts.URL, slowJob(1)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d", resp.StatusCode)
	}
	var rejected *http.Response
	for i := 2; i < 12; i++ {
		_, resp := submitJob(t, ts.URL, slowJob(i))
		if resp.StatusCode == http.StatusTooManyRequests {
			rejected = resp
			break
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
	}
	if rejected == nil {
		t.Fatal("queue of capacity 1 accepted 10 slow submissions without a 429")
	}
	if got := rejected.Header.Get("Retry-After"); got != "7" {
		t.Fatalf("429 Retry-After = %q, want %q", got, "7")
	}
	m := s.Metrics()
	if m.RejectedQueue == 0 {
		t.Fatal("rejected_queue metric is 0 after a 429")
	}
	if m.Rejected != 0 {
		t.Fatalf("queue rejection leaked into `rejected` (= %d)", m.Rejected)
	}
	if m.JobsAsync.Rejected == 0 {
		t.Fatal("queue stats rejected counter is 0 after a 429")
	}
}

// TestDrainRejectionHasRetryAfter is the satellite bugfix pin: the
// in-flight limiter's 503 carries a Retry-After header so clients know
// to back off and come back, and counts in `rejected` (never in
// `rejected_queue`, which is the async queue's).
func TestDrainRejectionHasRetryAfter(t *testing.T) {
	s := New(Config{MaxInFlight: 1, RetryAfter: 3})
	s.sem <- struct{}{} // saturate: the next request must queue for capacity
	s.Close()

	req := httptest.NewRequest(http.MethodPost, "/v1/schedule",
		strings.NewReader(`{"fixture":"g2","deadline":75}`))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "3" {
		t.Fatalf("503 Retry-After = %q, want %q", got, "3")
	}
	m := s.Metrics()
	if m.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", m.Rejected)
	}
	if m.RejectedQueue != 0 {
		t.Fatalf("capacity rejection leaked into rejected_queue (= %d)", m.RejectedQueue)
	}
}

// TestJobAbort: a queued job aborted over the API never runs; pollers
// and streamers both observe the aborted terminal state.
func TestJobAbort(t *testing.T) {
	s, ts := newJobsServer(t, Config{Workers: 1, QueueWorkers: 1})

	if _, resp := submitJob(t, ts.URL, slowJob(100)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("occupier: status %d", resp.StatusCode)
	}
	queued, resp := submitJob(t, ts.URL, slowJob(101))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queued submit: status %d", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var aborted wire.JobStatus
	if err := json.NewDecoder(dresp.Body).Decode(&aborted); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if aborted.State != wire.StateAborted {
		t.Fatalf("DELETE returned state %q, want aborted", aborted.State)
	}

	final := pollUntil(t, ts.URL, queued.ID, terminal)
	if final.State != wire.StateAborted || final.Error == "" || final.Result != nil {
		t.Fatalf("polled state %+v, want aborted with error and no result", final)
	}
	sresp, sbody := get(t, ts.URL+"/v1/jobs/"+queued.ID+"/stream")
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", sresp.StatusCode)
	}
	var line wire.Result
	if err := json.Unmarshal(bytes.TrimSpace(sbody), &line); err != nil {
		t.Fatalf("bad stream line %q: %v", sbody, err)
	}
	if line.Code != wire.CodeAborted {
		t.Fatalf("stream line code %q, want %q", line.Code, wire.CodeAborted)
	}
	if st := s.Metrics().JobsAsync; st.Aborted != 1 {
		t.Fatalf("aborted counter = %d, want 1", st.Aborted)
	}
}

// TestJobTTLExpires: a job whose ttl_ms lapses while stuck in the queue
// lands in the expired terminal state with the expired result code.
func TestJobTTLExpires(t *testing.T) {
	s, ts := newJobsServer(t, Config{Workers: 1, QueueWorkers: 1})

	if _, resp := submitJob(t, ts.URL, slowJob(200)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("occupier: status %d", resp.StatusCode)
	}
	ttlJob := `{"fixture":"g3","deadline":229,"strategy":"multistart","restarts":4000,"seed":201,"ttl_ms":25}`
	st, resp := submitJob(t, ts.URL, ttlJob)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ttl submit: status %d", resp.StatusCode)
	}
	final := pollUntil(t, ts.URL, st.ID, terminal)
	if final.State != wire.StateExpired || final.Error == "" {
		t.Fatalf("final = %+v, want expired with error", final)
	}
	sresp, sbody := get(t, ts.URL+"/v1/jobs/"+st.ID+"/stream")
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", sresp.StatusCode)
	}
	var line wire.Result
	if err := json.Unmarshal(bytes.TrimSpace(sbody), &line); err != nil {
		t.Fatal(err)
	}
	if line.Code != wire.CodeExpired {
		t.Fatalf("stream code %q, want %q", line.Code, wire.CodeExpired)
	}
	if stats := s.Metrics().JobsAsync; stats.Expired != 1 {
		t.Fatalf("expired counter = %d, want 1", stats.Expired)
	}
}

// TestCloseDrainsQueueMidBacklog is the clean-SIGTERM story: Close with
// a running job and a backlog aborts the queued jobs without running
// them, cancels the running one, and every concurrent streamer gets a
// terminal line instead of a hang.
func TestCloseDrainsQueueMidBacklog(t *testing.T) {
	s, ts := newJobsServer(t, Config{Workers: 1, QueueWorkers: 1})

	const backlog = 5
	ids := make([]string, 0, backlog+1)
	for i := 0; i <= backlog; i++ {
		st, resp := submitJob(t, ts.URL, slowJob(300+i))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
		ids = append(ids, st.ID)
	}

	// Concurrent streamers waiting on every job while we pull the plug.
	type streamed struct {
		id   string
		line wire.Result
		err  error
	}
	results := make(chan streamed, len(ids))
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/stream")
			if err != nil {
				results <- streamed{id: id, err: err}
				return
			}
			defer resp.Body.Close()
			var line wire.Result
			err = json.NewDecoder(resp.Body).Decode(&line)
			results <- streamed{id: id, line: line, err: err}
		}(id)
	}
	time.Sleep(20 * time.Millisecond) // let the streams attach
	s.Close()
	wg.Wait()
	close(results)

	for r := range results {
		if r.err != nil {
			t.Fatalf("stream %s: %v", r.id, r.err)
		}
		// The running job may have finished before the drain caught it;
		// everything else must be aborted. Nothing may hang or vanish.
		if r.line.Code != wire.CodeAborted && r.line.Error != "" {
			t.Fatalf("stream %s: unexpected line %+v", r.id, r.line)
		}
	}
	stats := s.Metrics().JobsAsync
	if got := stats.Done + stats.Aborted; got != uint64(len(ids)) {
		t.Fatalf("done(%d)+aborted(%d) = %d, want %d terminal jobs", stats.Done, stats.Aborted, got, len(ids))
	}
	if stats.Aborted < backlog {
		t.Fatalf("aborted = %d, want at least the %d queued jobs", stats.Aborted, backlog)
	}
	if stats.Queued != 0 || stats.Running != 0 {
		t.Fatalf("live population after drain: %+v", stats)
	}

	// And admission is closed: new submissions get 503 + Retry-After.
	_, resp := submitJob(t, ts.URL, slowJob(999))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("post-drain 503 without Retry-After")
	}
}

// TestJobStreamSSE: an Accept: text/event-stream client gets SSE
// framing — data:-prefixed payload, blank-line terminated, the SSE
// content type — carrying the same JSON the NDJSON framing sends.
func TestJobStreamSSE(t *testing.T) {
	_, ts := newJobsServer(t, Config{Workers: 2})
	st, _ := submitJob(t, ts.URL, `{"fixture":"g2","deadline":75}`)
	pollUntil(t, ts.URL, st.ID, terminal)

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+st.ID+"/stream", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := body.String()
	if !strings.HasPrefix(text, "data: {") || !strings.HasSuffix(text, "\n\n") {
		t.Fatalf("not SSE framed: %q", text)
	}
	var line wire.Result
	if err := json.Unmarshal([]byte(strings.TrimPrefix(strings.TrimSpace(text), "data: ")), &line); err != nil {
		t.Fatalf("SSE payload not a result: %v", err)
	}
	if line.Error != "" {
		t.Fatalf("unexpected result error: %s", line.Error)
	}
}

// TestJobSubmitCoalesces: identical submissions share one entry — the
// second submit returns the same id, and once done, resubmission
// answers 200 immediately from retention.
func TestJobSubmitCoalesces(t *testing.T) {
	s, ts := newJobsServer(t, Config{Workers: 1, QueueWorkers: 1})

	if _, resp := submitJob(t, ts.URL, slowJob(400)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("occupier: status %d", resp.StatusCode)
	}
	first, resp1 := submitJob(t, ts.URL, slowJob(401))
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("first: status %d", resp1.StatusCode)
	}
	second, resp2 := submitJob(t, ts.URL, slowJob(401))
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("duplicate: status %d", resp2.StatusCode)
	}
	if first.ID != second.ID {
		t.Fatalf("duplicate got id %s, want %s", second.ID, first.ID)
	}
	if st := s.Metrics().JobsAsync; st.Coalesced != 1 {
		t.Fatalf("coalesced = %d, want 1", st.Coalesced)
	}

	final := pollUntil(t, ts.URL, first.ID, terminal)
	if final.State != wire.StateDone {
		t.Fatalf("final state %q", final.State)
	}
	done, resp3 := submitJob(t, ts.URL, slowJob(401))
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("resubmit-after-done: status %d, want 200", resp3.StatusCode)
	}
	if done.State != wire.StateDone || done.Result == nil {
		t.Fatalf("resubmit answered %+v, want retained done result", done)
	}
}

// TestJobGetUnknown404: polling, aborting or streaming an unknown id is
// a 404, not a hang.
func TestJobGetUnknown404(t *testing.T) {
	_, ts := newJobsServer(t, Config{Workers: 1})
	for _, probe := range []struct{ method, path string }{
		{http.MethodGet, "/v1/jobs/deadbeef"},
		{http.MethodDelete, "/v1/jobs/deadbeef"},
		{http.MethodGet, "/v1/jobs/deadbeef/stream"},
	} {
		req, _ := http.NewRequest(probe.method, ts.URL+probe.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s %s: status %d, want 404", probe.method, probe.path, resp.StatusCode)
		}
	}
}

// TestJobsBatchSubmit: the non-streaming batch submit returns one
// status per line, bad lines carrying their error without sinking the
// rest.
func TestJobsBatchSubmit(t *testing.T) {
	_, ts := newJobsServer(t, Config{Workers: 2})
	batch := `{"fixture":"g3","deadline":230}
{"deadline":10}
{"fixture":"g2","deadline":75,"priority":11}
{"fixture":"g2","deadline":75}
`
	resp, body := post(t, ts.URL+"/v1/jobs/batch", batch)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var statuses []wire.JobStatus
	if err := json.Unmarshal(body, &statuses); err != nil {
		t.Fatalf("bad body %q: %v", body, err)
	}
	if len(statuses) != 4 {
		t.Fatalf("got %d statuses, want 4", len(statuses))
	}
	if statuses[0].ID == "" || statuses[0].Error != "" {
		t.Fatalf("line 0 should have been admitted: %+v", statuses[0])
	}
	if statuses[1].Error == "" || statuses[1].ID != "" {
		t.Fatalf("line 1 (no graph) should carry a decode error: %+v", statuses[1])
	}
	if statuses[2].Error == "" || !strings.Contains(statuses[2].Error, "priority") {
		t.Fatalf("line 2 (priority 11) should carry a validation error: %+v", statuses[2])
	}
	if statuses[3].ID == "" {
		t.Fatalf("line 3 should have been admitted: %+v", statuses[3])
	}
	// The good lines complete.
	pollUntil(t, ts.URL, statuses[0].ID, terminal)
	pollUntil(t, ts.URL, statuses[3].ID, terminal)
}

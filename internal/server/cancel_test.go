package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/wire"
)

// slowBatch builds an NDJSON batch of n multistart jobs with distinct
// seeds (so neither the cache nor single-flight collapses them), each
// worth roughly `restarts` × 0.2ms of sequential search.
func slowBatch(n, restarts int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, `{"name":"j%d","fixture":"g3","deadline":230,"strategy":"multistart","restarts":%d,"seed":%d}`+"\n", i, restarts, i+1)
	}
	return b.String()
}

// TestBatchClientDisconnectCancelsWork: a client that drops its
// /v1/batch request mid-computation must stop the engine — the
// instrumented `canceled` jobs counter moves long before the batch
// could have finished, and the in-flight slot frees promptly.
func TestBatchClientDisconnectCancelsWork(t *testing.T) {
	s := New(Config{Workers: 1, CacheEntries: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// ~100 jobs × 2048 restarts ≈ tens of seconds of sequential work —
	// far beyond this test's promptness windows, so completing the
	// batch cannot be mistaken for canceling it.
	body := slowBatch(100, 2048)
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/batch", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}

	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()

	// Let the engine sink its teeth into the batch, then vanish.
	time.Sleep(300 * time.Millisecond)
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("client request should fail once its context is canceled")
	}

	// The engine observes the disconnect: canceled jobs are counted and
	// the request releases its in-flight slot well within the batch's
	// multi-second natural runtime.
	deadline := time.Now().Add(10 * time.Second)
	for {
		m := s.Metrics()
		if m.Canceled > 0 && m.InFlight == 0 {
			if m.Canceled > uint64(100) {
				t.Fatalf("canceled = %d jobs, batch only had 100", m.Canceled)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("engine never observed the disconnect: %+v", m)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// And /metrics itself reports the counter.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap MetricsSnapshot
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Canceled == 0 {
		t.Fatalf("/metrics canceled counter not exported: %+v", snap)
	}
}

// TestScheduleTimeoutMS: a single job whose timeout_ms budget cannot
// cover its multistart search comes back 422 with the canceled code —
// and the aborted computation is not cached, so a budget-free retry
// succeeds.
func TestScheduleTimeoutMS(t *testing.T) {
	_, ts := newTestServer(t)
	resp, data := post(t, ts.URL+"/v1/schedule",
		`{"fixture":"g3","deadline":230,"strategy":"multistart","restarts":4096,"seed":9,"timeout_ms":5}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422 (%s)", resp.StatusCode, data)
	}
	var res wire.Result
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.Code != wire.CodeCanceled || res.Error == "" {
		t.Fatalf("want canceled code with an error, got %+v", res)
	}

	// Same job, no budget: must compute cleanly (nothing poisoned).
	resp, data = post(t, ts.URL+"/v1/schedule",
		`{"fixture":"g3","deadline":230,"strategy":"multistart","restarts":4096,"seed":9}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry status = %d (%s)", resp.StatusCode, data)
	}
	var retry wire.Result
	if err := json.Unmarshal(data, &retry); err != nil || retry.Code != "" || retry.Error != "" || retry.Cost <= 0 {
		t.Fatalf("retry should succeed: %+v (%v)", retry, err)
	}
}

// TestRequestTimeoutConfig: Config.RequestTimeout bounds a whole batch
// server-side; finished jobs keep results, unfinished ones carry the
// canceled code, and the response is still a complete NDJSON stream.
// Two malformed lines ride along: they must report their parse errors
// (not the canceled code) and stay out of the `canceled` metric, which
// must equal exactly the number of canceled-coded response lines.
func TestRequestTimeoutConfig(t *testing.T) {
	s := New(Config{Workers: 1, CacheEntries: -1, RequestTimeout: 250 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := "this is not json\n" + slowBatch(50, 1024) + "{\"also\":\"not a job\"}\n"
	resp, data := post(t, ts.URL+"/v1/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, data)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 52 {
		t.Fatalf("got %d result lines, want 52", len(lines))
	}
	completed, canceled, parseFailed := 0, 0, 0
	for i, l := range lines {
		var r wire.Result
		if err := json.Unmarshal([]byte(l), &r); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		switch {
		case r.Code == wire.CodeCanceled:
			canceled++
		case r.Error != "":
			parseFailed++
		default:
			completed++
		}
	}
	if parseFailed != 2 {
		t.Fatalf("the 2 malformed lines must carry parse errors without the canceled code (got %d)", parseFailed)
	}
	if canceled == 0 {
		t.Fatalf("the 250ms budget should cut a ~10s batch short (completed=%d canceled=%d)", completed, canceled)
	}
	if got := s.Metrics().Canceled; got != uint64(canceled) {
		t.Fatalf("metrics canceled = %d, response carried %d canceled lines", got, canceled)
	}
}

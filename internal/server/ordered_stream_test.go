package server

// Regression test: the ordered path of POST /v1/jobs/stream used to
// dress the admission snapshot up as an outcome when a job aged out of
// the queue mid-wait — terminalResult renders a non-terminal snapshot
// as a false "job aborted" line, for a job that in fact completed. The
// fix mirrors the out-of-order path: a non-terminal snapshot ends the
// stream instead of lying about the job.

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/wire"
)

func TestOrderedStreamDoesNotFakeAbortForPrunedJob(t *testing.T) {
	// Workers: 1 serializes real computations through a single engine
	// slot (cache hits bypass it); negative retention prunes terminal
	// jobs on the very next Submit — the aging-out the bug needs.
	s, ts := newJobsServer(t, Config{Workers: 1, JobRetention: -time.Nanosecond})

	const fast = `{"fixture":"g3","deadline":230,"strategy":"iterative"}`
	if resp, data := post(t, ts.URL+"/v1/schedule", fast); resp.StatusCode != http.StatusOK {
		t.Fatalf("warming the fast job: %d: %s", resp.StatusCode, data)
	}
	slow := slowJob(31)

	// Occupy the engine slot with the slow job, then run the fast one:
	// a cache hit, done immediately, retained until the next Submit.
	stSlow, _ := submitJob(t, ts.URL, slow)
	stFast, _ := submitJob(t, ts.URL, fast)
	pollUntil(t, ts.URL, stFast.ID, terminal)

	// Ordered stream [slow, fast]: admission coalesces onto the running
	// slow job (pruning the retained fast one) and re-submits the fast
	// job; the handler then blocks in Wait(slow) with the fast job's
	// line still owed.
	type streamOut struct {
		lines []string
		err   error
	}
	outc := make(chan streamOut, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/jobs/stream?ordered=1", "application/x-ndjson",
			strings.NewReader(slow+"\n"+fast+"\n"))
		if err != nil {
			outc <- streamOut{err: err}
			return
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		var lines []string
		for _, l := range strings.Split(string(data), "\n") {
			if strings.TrimSpace(l) != "" {
				lines = append(lines, l)
			}
		}
		outc <- streamOut{lines: lines, err: err}
	}()

	// Admission done = all four Submits counted (two direct, two from
	// the stream; Submitted includes coalesced ones).
	waitDeadline := time.Now().Add(30 * time.Second)
	for s.jobs.Stats().Submitted < 4 {
		if time.Now().After(waitDeadline) {
			t.Fatal("stream admission never happened")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The re-submitted fast job completes (cache hit again)…
	pollUntil(t, ts.URL, stFast.ID, terminal)
	// …and the next Submit prunes it out of the queue entirely.
	if _, resp := submitJob(t, ts.URL, slowJob(32)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("pruning submit: status %d", resp.StatusCode)
	}
	if resp, _ := get(t, ts.URL+"/v1/jobs/"+stFast.ID); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("fast job still pollable (status %d); prune did not happen", resp.StatusCode)
	}

	// Abort the slow job. The handler emits a genuine aborted line for
	// index 0, then finds the fast job unknown: the admission snapshot
	// is non-terminal, so the stream must end — one line total, not a
	// fabricated "job aborted" for a job that completed.
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+stSlow.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}

	var out streamOut
	select {
	case out = <-outc:
	case <-time.After(30 * time.Second):
		t.Fatal("stream never finished")
	}
	if out.err != nil {
		t.Fatalf("reading stream: %v", out.err)
	}
	if len(out.lines) != 1 {
		t.Fatalf("stream emitted %d lines, want exactly 1 (the aborted slow job):\n%s",
			len(out.lines), strings.Join(out.lines, "\n"))
	}
	var line wire.Result
	if err := json.Unmarshal([]byte(out.lines[0]), &line); err != nil {
		t.Fatalf("bad stream line %q: %v", out.lines[0], err)
	}
	if line.Index != 0 || line.Code != wire.CodeAborted {
		t.Fatalf("stream line = %+v, want the index-0 abort", line)
	}
}

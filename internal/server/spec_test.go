package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/battery"
	"repro/internal/wire"
)

// TestScheduleBatterySpecRoundTrip is the tentpole's acceptance proof
// over HTTP: a kibam-battery job schedules, the repeat answers from
// cache with a byte-identical body (X-Cache: hit), and the /metrics
// per-model-kind counters account for every served job.
func TestScheduleBatterySpecRoundTrip(t *testing.T) {
	s, ts := newTestServer(t)
	const body = `{"fixture":"g3","deadline":230,"battery":{"kind":"kibam","capacity":40000,"well_fraction":0.5,"rate_constant":0.1}}`

	resp1, data1 := post(t, ts.URL+"/v1/schedule", body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first request: status %d: %s", resp1.StatusCode, data1)
	}
	if got := resp1.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first request X-Cache = %q, want miss", got)
	}
	var r1 wire.Result
	if err := json.Unmarshal(data1, &r1); err != nil {
		t.Fatalf("bad result body %q: %v", data1, err)
	}
	if r1.Error != "" || r1.Cost <= 0 || len(r1.Order) != 15 {
		t.Fatalf("implausible kibam schedule: %+v", r1)
	}

	resp2, data2 := post(t, ts.URL+"/v1/schedule", body)
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("second request X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(data1, data2) {
		t.Fatalf("cached kibam body differs:\nmiss: %s\nhit:  %s", data1, data2)
	}

	// The kibam job landed on its own cache entry, not the default
	// Rakhmatov one: the same graph/deadline without the spec computes
	// (a miss), and under a different model.
	resp3, data3 := post(t, ts.URL+"/v1/schedule", `{"fixture":"g3","deadline":230}`)
	if got := resp3.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("default-model request X-Cache = %q, want miss (no false sharing)", got)
	}
	var r3 wire.Result
	if err := json.Unmarshal(data3, &r3); err != nil {
		t.Fatal(err)
	}
	if r3.Cost == r1.Cost {
		t.Fatalf("kibam and default costs both %g — the spec never reached the cost function", r1.Cost)
	}

	// Per-kind counters: 2 kibam jobs served (miss + hit), 1 rakhmatov.
	snap := s.Metrics()
	if snap.ModelKinds[battery.KindKiBaM] != 2 || snap.ModelKinds[battery.KindRakhmatov] != 1 {
		t.Fatalf("model_kinds = %v, want kibam:2 rakhmatov:1", snap.ModelKinds)
	}
	_, metricsBody := get(t, ts.URL+"/metrics")
	var served MetricsSnapshot
	if err := json.Unmarshal(metricsBody, &served); err != nil {
		t.Fatalf("bad /metrics body %q: %v", metricsBody, err)
	}
	if served.ModelKinds[battery.KindKiBaM] != 2 {
		t.Fatalf("/metrics model_kinds = %v, want kibam:2", served.ModelKinds)
	}
}

// TestBatchBatterySpecs: a mixed-model NDJSON batch over HTTP — every
// kind in one request, per-line errors for invalid specs, per-kind
// metrics matching what was served.
func TestBatchBatterySpecs(t *testing.T) {
	s, ts := newTestServer(t)
	lines := []string{
		`{"name":"rv","fixture":"g3","deadline":230}`,
		`{"name":"id","fixture":"g3","deadline":230,"battery":{"kind":"ideal"}}`,
		`{"name":"pk","fixture":"g3","deadline":230,"battery":{"kind":"peukert","exponent":1.2}}`,
		`{"name":"kb","fixture":"g3","deadline":230,"battery":{"kind":"kibam","capacity":40000,"well_fraction":0.5,"rate_constant":0.1}}`,
		`{"name":"cal","fixture":"g3","deadline":230,"battery":{"kind":"calibrated","observations":[{"current":100,"lifetime":478},{"current":200,"lifetime":228.9}]}}`,
		`{"name":"bad","fixture":"g3","deadline":230,"battery":{"kind":"kibam","capacity":-1,"well_fraction":0.5,"rate_constant":0.1}}`,
	}
	resp, data := post(t, ts.URL+"/v1/batch", strings.Join(lines, "\n"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d: %s", resp.StatusCode, data)
	}

	var results []wire.Result
	dec := json.NewDecoder(bytes.NewReader(data))
	for dec.More() {
		var r wire.Result
		if err := dec.Decode(&r); err != nil {
			t.Fatal(err)
		}
		results = append(results, r)
	}
	if len(results) != len(lines) {
		t.Fatalf("got %d results for %d lines", len(results), len(lines))
	}
	costs := map[string]float64{}
	for _, r := range results {
		if r.Name == "bad" {
			if r.Error == "" || !strings.Contains(r.Error, "capacity") {
				t.Fatalf("invalid spec line must carry its validation error, got %+v", r)
			}
			continue
		}
		if r.Error != "" {
			t.Fatalf("job %q failed: %s", r.Name, r.Error)
		}
		costs[r.Name] = r.Cost
	}
	// Each model kind produced its own cost on the same graph.
	seen := map[float64]string{}
	for name, c := range costs {
		if prev, dup := seen[c]; dup {
			t.Fatalf("jobs %q and %q share cost %g — models not distinguished", prev, name, c)
		}
		seen[c] = name
	}

	// The invalid line was counted as a request job but not attributed
	// to a model kind (it never resolved one); the five valid ones were.
	snap := s.Metrics()
	var kindTotal uint64
	for _, n := range snap.ModelKinds {
		kindTotal += n
	}
	if kindTotal != 5 {
		t.Fatalf("model_kinds total %d, want 5: %v", kindTotal, snap.ModelKinds)
	}
	for _, kind := range battery.Kinds() {
		if snap.ModelKinds[kind] != 1 {
			t.Fatalf("model_kinds[%s] = %d, want 1: %v", kind, snap.ModelKinds[kind], snap.ModelKinds)
		}
	}
}

// TestDefaultBatteryConfig: -battery on the daemon applies to jobs that
// choose no battery, and only to those.
func TestDefaultBatteryConfig(t *testing.T) {
	spec := battery.Spec{Kind: battery.KindKiBaM, Capacity: 40000, WellFraction: 0.5, RateConstant: 0.1}
	s := New(Config{Workers: 2, DefaultBattery: &spec})
	hts := httptest.NewServer(s.Handler())
	t.Cleanup(hts.Close)
	ts := hts.URL

	_, dataDefault := post(t, ts+"/v1/schedule", `{"fixture":"g3","deadline":230}`)
	var viaDefault wire.Result
	if err := json.Unmarshal(dataDefault, &viaDefault); err != nil || viaDefault.Error != "" {
		t.Fatalf("default-battery job: %v %s", err, dataDefault)
	}
	_, dataExplicit := post(t, ts+"/v1/schedule", `{"fixture":"g3","deadline":230,"battery":{"kind":"kibam","capacity":40000,"well_fraction":0.5,"rate_constant":0.1}}`)
	if !bytes.Equal(trimIndex(t, dataDefault), trimIndex(t, dataExplicit)) {
		t.Fatalf("daemon default battery must equal the explicit spec:\n%s\n%s", dataDefault, dataExplicit)
	}

	// A job naming its own battery keeps it.
	_, dataBeta := post(t, ts+"/v1/schedule", `{"fixture":"g3","deadline":230,"beta":0.5}`)
	var viaBeta wire.Result
	if err := json.Unmarshal(dataBeta, &viaBeta); err != nil || viaBeta.Error != "" {
		t.Fatalf("beta job under default battery: %v %s", err, dataBeta)
	}
	if viaBeta.Cost == viaDefault.Cost {
		t.Fatal("explicit beta job must not inherit the daemon default battery")
	}
	snap := s.Metrics()
	if snap.ModelKinds[battery.KindKiBaM] != 2 || snap.ModelKinds[battery.KindRakhmatov] != 1 {
		t.Fatalf("model_kinds = %v, want kibam:2 rakhmatov:1", snap.ModelKinds)
	}

	// Misconfiguration fails at startup, not per request.
	defer func() {
		if recover() == nil {
			t.Fatal("New with an invalid DefaultBattery must panic")
		}
	}()
	New(Config{DefaultBattery: &battery.Spec{Kind: "fluxcap"}})
}

// trimIndex strips result fields that legitimately differ between
// requests (none here — index is 0 for both — but decoding and
// re-encoding normalizes whitespace for the comparison).
func trimIndex(t *testing.T, data []byte) []byte {
	t.Helper()
	var r wire.Result
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatalf("bad body %q: %v", data, err)
	}
	out, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/taskgraph"
	"repro/internal/wire"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestScheduleCacheHit is the serving story end to end: the same
// request twice must yield byte-identical result payloads, with the
// second served from cache (X-Cache: hit, hit counter incremented).
func TestScheduleCacheHit(t *testing.T) {
	s, ts := newTestServer(t)
	const body = `{"fixture":"g3","deadline":230,"strategy":"multistart","restarts":4,"seed":7}`

	resp1, data1 := post(t, ts.URL+"/v1/schedule", body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first request: status %d: %s", resp1.StatusCode, data1)
	}
	if got := resp1.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first request X-Cache = %q, want miss", got)
	}

	resp2, data2 := post(t, ts.URL+"/v1/schedule", body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second request: status %d: %s", resp2.StatusCode, data2)
	}
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("second request X-Cache = %q, want hit", got)
	}

	// Cache status lives in headers only, so a hit returns exactly the
	// bytes a miss computed.
	if !bytes.Equal(data1, data2) {
		t.Fatalf("cached body differs:\nmiss: %s\nhit:  %s", data1, data2)
	}
	var r1 wire.Result
	if err := json.Unmarshal(data1, &r1); err != nil {
		t.Fatalf("bad result body %q: %v", data1, err)
	}
	if r1.Cost <= 0 || len(r1.Order) != 15 {
		t.Fatalf("implausible schedule: %+v", r1)
	}

	st := s.Cache().Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("cache stats = %+v, want 1 hit / 1 miss", st)
	}
}

// TestScheduleRejectsBadRequests is the decode-time gate over HTTP:
// malformed JSON, NaN deadlines and negative currents are 400s with an
// error envelope, infeasible-but-well-formed jobs are 422s.
func TestScheduleRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t)
	for _, tc := range []struct {
		name   string
		body   string
		status int
		want   string
	}{
		{"malformed json", `not json`, http.StatusBadRequest, "invalid character"},
		{"NaN deadline", `{"fixture":"g3","deadline":NaN}`, http.StatusBadRequest, "invalid character"},
		{"negative deadline", `{"fixture":"g3","deadline":-1}`, http.StatusBadRequest, "must be positive"},
		{"negative current", `{"graph":{"tasks":[{"id":1,"points":[{"current":-5,"time":1}]}]},"deadline":5}`, http.StatusBadRequest, "current"},
		{"unknown strategy", `{"fixture":"g3","deadline":230,"strategy":"nonsense"}`, http.StatusBadRequest, "unknown strategy"},
		{"unknown fixture", `{"fixture":"g9","deadline":230}`, http.StatusBadRequest, "unknown fixture"},
		{"both graph and fixture", `{"fixture":"g3","graph":{"tasks":[]},"deadline":230}`, http.StatusBadRequest, "both"},
		{"infeasible deadline", `{"fixture":"g3","deadline":1}`, http.StatusUnprocessableEntity, "deadline cannot be met"},
	} {
		resp, data := post(t, ts.URL+"/v1/schedule", tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status = %d, want %d (body %s)", tc.name, resp.StatusCode, tc.status, data)
			continue
		}
		var env struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(data, &env); err != nil || env.Error == "" {
			t.Errorf("%s: no error envelope in %q (%v)", tc.name, data, err)
			continue
		}
		if !strings.Contains(env.Error, tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, env.Error, tc.want)
		}
	}
}

// TestBatchNDJSON: the battbatch contract over HTTP — in-order results,
// per-line errors, blank lines skipped.
func TestBatchNDJSON(t *testing.T) {
	_, ts := newTestServer(t)
	body := strings.Join([]string{
		`{"name":"a","fixture":"g3","deadline":230}`,
		``,
		`not json`,
		`{"name":"c","fixture":"g2","deadline":75,"strategy":"rv-dp"}`,
		`{"name":"d","fixture":"g3","deadline":1}`,
	}, "\n")

	resp, data := post(t, ts.URL+"/v1/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d result lines, want 4:\n%s", len(lines), data)
	}
	var results []wire.Result
	for _, l := range lines {
		var r wire.Result
		if err := json.Unmarshal([]byte(l), &r); err != nil {
			t.Fatalf("bad line %q: %v", l, err)
		}
		results = append(results, r)
	}
	for i, r := range results {
		if r.Index != i {
			t.Fatalf("line %d has index %d", i, r.Index)
		}
	}
	if results[0].Error != "" || results[0].Name != "a" || results[0].Cost <= 0 {
		t.Fatalf("job a should succeed: %+v", results[0])
	}
	if results[1].Error == "" {
		t.Fatalf("unparseable line should carry its parse error: %+v", results[1])
	}
	if results[2].Error != "" || results[2].Strategy != "rv-dp" {
		t.Fatalf("job c should succeed under rv-dp: %+v", results[2])
	}
	if results[3].Error == "" || results[3].Order != nil {
		t.Fatalf("job d should be infeasible: %+v", results[3])
	}
}

// TestBatchDeterministicAndCached: a repeated batch answers entirely
// from cache with an identical scheduling payload.
func TestBatchDeterministicAndCached(t *testing.T) {
	s, ts := newTestServer(t)
	body := `{"fixture":"g2","deadline":55}
{"fixture":"g2","deadline":75,"strategy":"withidle"}
{"fixture":"g3","deadline":150,"strategy":"chowdhury"}`

	resp1, data1 := post(t, ts.URL+"/v1/batch", body)
	resp2, data2 := post(t, ts.URL+"/v1/batch", body)
	if !bytes.Equal(data1, data2) {
		t.Fatalf("repeated batch body differs:\n%s\n---\n%s", data1, data2)
	}
	if h := resp1.Header.Get("X-Cache-Hits"); h != "0/3" {
		t.Fatalf("first batch X-Cache-Hits = %q, want 0/3", h)
	}
	if h := resp2.Header.Get("X-Cache-Hits"); h != "3/3" {
		t.Fatalf("second batch X-Cache-Hits = %q, want 3/3", h)
	}
	if st := s.Cache().Stats(); st.Hits < 3 {
		t.Fatalf("repeated batch should hit 3 times, stats %+v", st)
	}
}

// TestBatchJobCap: a batch over the configured job limit is rejected
// outright (413), before any scheduling work.
func TestBatchJobCap(t *testing.T) {
	s := New(Config{MaxBatchJobs: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := strings.Repeat(`{"fixture":"g2","deadline":75}`+"\n", 3)
	resp, data := post(t, ts.URL+"/v1/batch", body)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413 (%s)", resp.StatusCode, data)
	}
	if !strings.Contains(string(data), "limit is 2") {
		t.Fatalf("error should name the limit: %s", data)
	}
	if s.Metrics().JobsTotal != 0 {
		t.Fatal("capped batch must not run any jobs")
	}
}

// TestFixturesEndpoint serves the shared registry.
func TestFixturesEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	resp, data := get(t, ts.URL+"/v1/fixtures")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var infos []taskgraph.FixtureInfo
	if err := json.Unmarshal(data, &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 || infos[0].Name != "g2" || infos[1].Name != "g3" {
		t.Fatalf("unexpected registry: %+v", infos)
	}
	if infos[1].Tasks != 15 || len(infos[1].Deadlines) != 3 {
		t.Fatalf("g3 info wrong: %+v", infos[1])
	}
}

// TestHealthzAndMetrics: liveness plus counter plumbing.
func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t)
	resp, data := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), `"ok"`) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, data)
	}

	post(t, ts.URL+"/v1/schedule", `{"fixture":"g2","deadline":75}`)
	post(t, ts.URL+"/v1/schedule", `{"fixture":"g2","deadline":75}`)

	_, data = get(t, ts.URL+"/metrics")
	var snap MetricsSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, data)
	}
	if snap.Requests["schedule"] != 2 || snap.Requests["healthz"] != 1 {
		t.Fatalf("request counters wrong: %+v", snap)
	}
	if snap.Cache == nil || snap.Cache.Hits != 1 || snap.Cache.Misses != 1 {
		t.Fatalf("cache counters wrong: %+v", snap.Cache)
	}
	if snap.JobsTotal != 2 || snap.InFlight != 0 {
		t.Fatalf("job/in-flight counters wrong: %+v", snap)
	}
}

// TestMethodNotAllowed: the method-scoped mux turns a GET on a POST
// route into a 405.
func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t)
	resp, _ := get(t, ts.URL+"/v1/schedule")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d, want 405", resp.StatusCode)
	}
}

// TestInFlightLimitRejectsDeadRequests: a request whose context is
// already done cannot take an in-flight slot and gets a 503.
func TestInFlightLimitRejectsDeadRequests(t *testing.T) {
	s := New(Config{MaxInFlight: 1})
	// Fill the only slot so acquire must wait, then offer a dead request.
	s.sem <- struct{}{}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/schedule",
		strings.NewReader(`{"fixture":"g2","deadline":75}`)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rec.Code)
	}
	if s.Metrics().Rejected != 1 {
		t.Fatalf("rejected counter = %d, want 1", s.Metrics().Rejected)
	}
}

// TestCloseFailsQueuedRequestsFast: once the server is draining, a
// request waiting for capacity gets an immediate 503 instead of
// blocking graceful shutdown.
func TestCloseFailsQueuedRequestsFast(t *testing.T) {
	s := New(Config{MaxInFlight: 1})
	s.sem <- struct{}{} // saturate: the next request must queue
	s.Close()
	s.Close() // idempotent

	req := httptest.NewRequest(http.MethodPost, "/v1/schedule",
		strings.NewReader(`{"fixture":"g2","deadline":75}`))
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		s.Handler().ServeHTTP(rec, req)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("queued request did not fail fast after Close")
	}
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rec.Code)
	}
}

// TestAccessLog emits one JSON line per request with the load-bearing
// fields.
func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	s := New(Config{AccessLog: log.New(&buf, "", 0)})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get(t, ts.URL+"/healthz")
	line := strings.TrimSpace(buf.String())
	var rec map[string]any
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("access log line not JSON: %v\n%s", err, line)
	}
	if rec["method"] != "GET" || rec["path"] != "/healthz" || rec["status"] != float64(200) {
		t.Fatalf("access log fields wrong: %v", rec)
	}
}

package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/fault"
	"repro/internal/store"
	"repro/internal/wire"
)

func decodeReady(t *testing.T, data []byte) wire.Ready {
	t.Helper()
	var rep wire.Ready
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("decode /readyz body %q: %v", data, err)
	}
	return rep
}

// TestReadyzOK: a healthy server with no disk tier is ok, with the disk
// subsystem reported disabled (not degraded).
func TestReadyzOK(t *testing.T) {
	_, ts := newTestServer(t)
	resp, data := get(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	rep := decodeReady(t, data)
	if rep.Status != wire.ReadyOK {
		t.Errorf("status = %q, want ok", rep.Status)
	}
	if got := rep.Subsystems["disk"].Status; got != wire.ReadyDisabled {
		t.Errorf("disk subsystem = %q, want disabled", got)
	}
	if got := rep.Subsystems["queue"].Status; got != wire.ReadyOK {
		t.Errorf("queue subsystem = %q, want ok", got)
	}
}

// TestReadyzDiskOK: with a healthy disk tier the disk subsystem is ok.
func TestReadyzDiskOK(t *testing.T) {
	st, _, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 2, CacheStore: st})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, data := get(t, ts.URL+"/readyz")
	rep := decodeReady(t, data)
	if resp.StatusCode != http.StatusOK || rep.Status != wire.ReadyOK {
		t.Fatalf("healthy disk: status=%d body status=%q, want 200/ok", resp.StatusCode, rep.Status)
	}
	if got := rep.Subsystems["disk"].Status; got != wire.ReadyOK {
		t.Errorf("disk subsystem = %q, want ok", got)
	}
}

// TestReadyzDegraded is the graceful-degradation story end to end: a
// disk failing every write trips the breaker; /readyz flips to degraded
// (still 200 — the process serves), /metrics exposes the breaker state,
// and scheduling requests keep answering.
func TestReadyzDegraded(t *testing.T) {
	in := fault.NewInjector(fault.OS,
		fault.Rule{Op: fault.OpSync, Every: 1, Err: syscall.EIO})
	st, _, err := store.OpenFS(t.TempDir(), 0, in)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{
		Workers:    2,
		CacheStore: st,
		DiskBreaker: cache.BreakerConfig{
			Threshold: 3, Window: time.Minute, Probe: time.Hour,
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Three distinct computations → three failed write-throughs → trip.
	for i := 0; i < 3; i++ {
		body := fmt.Sprintf(`{"fixture":"g3","deadline":%d,"strategy":"iterative"}`, 230+i)
		resp, _ := post(t, ts.URL+"/v1/schedule", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("schedule %d: status %d", i, resp.StatusCode)
		}
	}

	resp, data := get(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz while degraded: status %d, want 200 (degraded still serves)", resp.StatusCode)
	}
	rep := decodeReady(t, data)
	if rep.Status != wire.ReadyDegraded {
		t.Fatalf("status = %q, want degraded", rep.Status)
	}
	disk := rep.Subsystems["disk"]
	if disk.Status != wire.ReadyDegraded || !strings.Contains(disk.Detail, "breaker open") {
		t.Errorf("disk subsystem = %+v, want degraded with breaker detail", disk)
	}

	// /metrics shows the same story.
	var snap MetricsSnapshot
	_, mdata := get(t, ts.URL+"/metrics")
	if err := json.Unmarshal(mdata, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Cache == nil || snap.Cache.DiskBreakerState != "open" {
		t.Errorf("metrics disk_breaker_state = %v, want open", snap.Cache)
	}
	if snap.Cache.DiskBreakerOpen != 1 {
		t.Errorf("metrics disk_breaker_open = %d, want 1", snap.Cache.DiskBreakerOpen)
	}

	// Degraded serving: repeats hit memory, new work computes.
	resp, _ = post(t, ts.URL+"/v1/schedule", `{"fixture":"g3","deadline":230,"strategy":"iterative"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule while degraded: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("memory tier while degraded: X-Cache = %q, want hit", got)
	}
}

// TestReadyzDraining: a closed server reports draining with 503 +
// Retry-After so orchestration pulls it from rotation.
func TestReadyzDraining(t *testing.T) {
	s, ts := newTestServer(t)
	s.Close()

	resp, data := get(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining /readyz lacks Retry-After")
	}
	rep := decodeReady(t, data)
	if rep.Status != wire.ReadyDraining {
		t.Errorf("status = %q, want draining", rep.Status)
	}
	if got := rep.Subsystems["queue"].Status; got != wire.ReadyDraining {
		t.Errorf("queue subsystem = %q, want draining", got)
	}
}

// TestBatchDrainRetryAfter is the Retry-After sweep regression: a jobs
// batch submitted to a draining server gets per-line 503-shaped
// rejections AND the response-level Retry-After header — previously
// only 429 (queue full) earned the header, teaching clients that drain
// rejections were permanent.
func TestBatchDrainRetryAfter(t *testing.T) {
	s, ts := newTestServer(t)
	s.Close()

	body := `{"fixture":"g3","deadline":230,"strategy":"iterative"}` + "\n"
	resp, data := post(t, ts.URL+"/v1/jobs/batch", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, want 202 (per-line rejections)", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining batch rejection lacks Retry-After")
	}
	var statuses []wire.JobStatus
	if err := json.Unmarshal(data, &statuses); err != nil {
		t.Fatal(err)
	}
	if len(statuses) != 1 || !strings.Contains(statuses[0].Error, "shutting down") {
		t.Errorf("statuses = %+v, want one drain rejection", statuses)
	}
}

package server

// The headline persistence property, end to end over HTTP: populate a
// daemon whose cache has a disk tier, kill it, start a fresh daemon on
// the same directory, and the same requests answer byte-identical from
// disk with zero engine computations — corrupt files planted in the
// directory are skipped at scan, not served.

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/store"
)

// persistRequests are distinct cacheable requests covering a plain
// result, a different strategy, a multistart search, and a cached
// per-job error (infeasible deadline → 422 with an error envelope).
var persistRequests = []struct {
	body   string
	status int
}{
	{`{"fixture":"g3","deadline":230,"strategy":"iterative"}`, http.StatusOK},
	{`{"fixture":"g3","deadline":230,"strategy":"withidle"}`, http.StatusOK},
	{`{"fixture":"g3","deadline":230,"strategy":"multistart","restarts":8,"seed":7}`, http.StatusOK},
	{`{"fixture":"g3","deadline":1,"strategy":"iterative"}`, http.StatusUnprocessableEntity},
}

func openStore(t *testing.T, dir string) (*store.Store, store.ScanReport) {
	t.Helper()
	st, rep, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	return st, rep
}

func TestRestartServesFromDisk(t *testing.T) {
	dir := t.TempDir()

	// First life: populate through the full HTTP path.
	st1, _ := openStore(t, dir)
	s1 := New(Config{Workers: 2, CacheStore: st1})
	ts1 := httptest.NewServer(s1.Handler())
	bodies := make([][]byte, len(persistRequests))
	for i, req := range persistRequests {
		resp, data := post(t, ts1.URL+"/v1/schedule", req.body)
		if resp.StatusCode != req.status {
			t.Fatalf("populate %d: status %d, want %d: %s", i, resp.StatusCode, req.status, data)
		}
		if got := resp.Header.Get("X-Cache"); got != "miss" {
			t.Fatalf("populate %d: X-Cache = %q, want miss", i, got)
		}
		bodies[i] = data
	}
	ts1.Close()
	s1.Close()

	// Hostile restart conditions: plant corrupt files under keys the
	// daemon never stored — a truncated entry, garbage, and an empty
	// file. The scan must count and discard all three.
	for i, junk := range [][]byte{[]byte("not an entry"), {}, []byte("BSRS")} {
		key := strings.Repeat("bad"[i:i+1], 64)
		fanout := filepath.Join(dir, key[:2])
		if err := os.MkdirAll(fanout, 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(fanout, key+".res"), junk, 0o666); err != nil {
			t.Fatal(err)
		}
	}

	// Second life: fresh process state, same directory.
	st2, rep := openStore(t, dir)
	if rep.Entries != len(persistRequests) || rep.Corrupt != 3 {
		t.Fatalf("warm scan: %+v, want %d entries / 3 corrupt", rep, len(persistRequests))
	}
	s2 := New(Config{Workers: 2, CacheStore: st2})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	defer s2.Close()

	for i, req := range persistRequests {
		resp, data := post(t, ts2.URL+"/v1/schedule", req.body)
		if resp.StatusCode != req.status {
			t.Fatalf("replay %d: status %d, want %d: %s", i, resp.StatusCode, req.status, data)
		}
		if got := resp.Header.Get("X-Cache"); got != "hit" {
			t.Fatalf("replay %d: X-Cache = %q, want hit", i, got)
		}
		if !bytes.Equal(data, bodies[i]) {
			t.Fatalf("replay %d body differs across restart:\nbefore: %s\nafter:  %s", i, bodies[i], data)
		}
	}

	// "Zero engine computations": every replay was a disk hit, nothing
	// was a memory hit (fresh LRU), and nothing computed or bypassed.
	cs := s2.Cache().Stats()
	if cs.Misses != 0 || cs.Bypasses != 0 {
		t.Fatalf("restarted server computed: %+v", cs)
	}
	if cs.DiskHits != uint64(len(persistRequests)) {
		t.Fatalf("disk hits = %d, want %d: %+v", cs.DiskHits, len(persistRequests), cs)
	}
}

// Package experiments regenerates every table and figure of the paper's
// evaluation from the reproduction's own algorithms, embedding the paper's
// reported numbers for side-by-side comparison. The cmd/paperrepro binary
// is a thin front end over this package, and EXPERIMENTS.md records one
// captured run.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/baseline"
	"repro/internal/battery"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/taskgraph"
)

// Beta is the battery diffusion parameter every experiment uses (the
// paper sets 0.273 for G3 and leaves G2 unstated; see DESIGN.md §3).
const Beta = battery.DefaultBeta

func model() battery.Model { return battery.NewRakhmatov(Beta) }

// Table1 dumps the G3 task/design-point data (the paper's Table 1) from
// the fixture, so a reader can diff it against the paper directly.
func Table1() *report.Table {
	g := taskgraph.G3()
	t := &report.Table{
		Title:   "Table 1: data for example task graph G3",
		Headers: []string{"Task", "I1", "D1", "I2", "D2", "I3", "D3", "I4", "D4", "I5", "D5", "Parents"},
	}
	for _, id := range g.TaskIDs() {
		task := g.Task(id)
		cells := []interface{}{task.Name}
		for _, p := range task.Points {
			cells = append(cells, report.F0(p.Current), report.F1(p.Time))
		}
		parents := g.Parents(id)
		ps := make([]string, len(parents))
		for k, p := range parents {
			ps[k] = "T" + strconv.Itoa(p)
		}
		if len(ps) == 0 {
			cells = append(cells, "-")
		} else {
			cells = append(cells, strings.Join(ps, ","))
		}
		t.AddRow(cells...)
	}
	t.Notes = append(t.Notes, "transcribed from the paper; validated against its generation recipe by internal/dvs tests")
	return t
}

// Table2Result carries the per-iteration sequences behind Table 2.
type Table2Result struct {
	Table *report.Table
	Trace *core.Trace
}

// paperTable2 is the paper's printed Table 2 for annotation.
var paperTable2 = map[string]string{
	"S1":  "T1,T4,T5,T7,T3,T2,T6,T8,T10,T9,T13,T12,T11,T14,T15",
	"S1w": "T1,T3,T2,T4,T5,T6,T7,T8,T10,T9,T13,T12,T11,T14,T15",
	"S2w": "T1,T3,T2,T4,T5,T6,T7,T8,T9,T10,T13,T11,T12,T14,T15",
	"S3w": "T1,T2,T4,T5,T7,T3,T6,T8,T9,T10,T13,T11,T12,T14,T15",
}

// Table2 reruns the iterative algorithm on G3 at the paper's deadline and
// reports each iteration's sequence, chosen design points and weighted
// resequencing — the reproduction of Table 2.
func Table2() (*Table2Result, error) {
	s, err := core.New(taskgraph.G3(), taskgraph.G3Deadline, core.Options{RecordTrace: true})
	if err != nil {
		return nil, err
	}
	res, err := s.Run()
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "Table 2: task sequences of G3 per iteration (deadline 230, beta 0.273)",
		Headers: []string{"Iter", "Seq", "Tasks / design points", "Paper"},
	}
	for k, it := range res.Trace.Iterations {
		name := fmt.Sprintf("S%d", k+1)
		t.AddRow(k+1, name, report.Seq(it.Sequence), paperTable2[name])
		t.AddRow("", "DP", report.DPs(it.Sequence, it.Assignment), "")
		if it.WeightedSequence != nil {
			t.AddRow("", name+"w", report.Seq(it.WeightedSequence), paperTable2[name+"w"])
		}
	}
	t.Notes = append(t.Notes,
		"S1 matches the paper exactly; later sequences diverge where the ambiguous wide-window DPF details differ (see EXPERIMENTS.md)",
	)
	return &Table2Result{Table: t, Trace: res.Trace}, nil
}

// paperTable3 holds the paper's printed per-window sigmas for annotation:
// row label -> window start (1-based) -> sigma.
var paperTable3 = map[string]map[int]float64{
	"S1": {1: 17169, 2: 17837, 3: 17038, 4: 16353},
	"S2": {1: 14725, 2: 16126, 3: 15929, 4: 16235},
	"S3": {1: 13737, 2: 16033, 3: 16061, 4: 16677},
	"S4": {1: 13737, 2: 15866, 3: 16240},
}

// Table3 reports the per-window battery cost and duration per iteration —
// the reproduction of Table 3.
func Table3() (*report.Table, error) {
	s, err := core.New(taskgraph.G3(), taskgraph.G3Deadline, core.Options{RecordTrace: true})
	if err != nil {
		return nil, err
	}
	res, err := s.Run()
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title:   "Table 3: sigma (mA·min) and duration (min) per window per iteration, G3 @ 230",
		Headers: []string{"Seq", "Win 1:5", "Win 2:5", "Win 3:5", "Win 4:5", "Min", "Dur", "Paper Min"},
	}
	for k, it := range res.Trace.Iterations {
		name := fmt.Sprintf("S%d", k+1)
		cells := make([]interface{}, 0, 8)
		cells = append(cells, name)
		byStart := map[int]core.WindowTrace{}
		for _, w := range it.Windows {
			byStart[w.WindowStart] = w
		}
		for ws := 1; ws <= 4; ws++ {
			w, ok := byStart[ws]
			if !ok {
				cells = append(cells, "-")
				continue
			}
			if !w.Feasible {
				cells = append(cells, "inf")
				continue
			}
			annot := ""
			if p, ok := paperTable3[name][ws]; ok {
				annot = fmt.Sprintf(" (%s)", report.F0(p))
			}
			cells = append(cells, report.F0(w.Cost)+annot)
		}
		best := math.Inf(1)
		bestDur := 0.0
		for _, w := range it.Windows {
			if w.Feasible && w.Cost < best {
				best = w.Cost
				bestDur = w.Duration
			}
		}
		if it.WeightedCost > 0 && it.WeightedCost < best {
			best = it.WeightedCost
		}
		paperMin := ""
		if v, ok := paperTable3[name]; ok {
			pm := math.Inf(1)
			for _, x := range v {
				if x < pm {
					pm = x
				}
			}
			paperMin = report.F0(pm)
		}
		cells = append(cells, report.F0(best), report.F1(bestDur), paperMin)
		t.AddRow(cells...)
	}
	t.Notes = append(t.Notes,
		"parenthesized values are the paper's printed cells",
		"window 4:5 of iteration 1 reproduces the paper exactly (16353 @ 228.3); wider windows differ due to pseudocode ambiguity",
	)
	return t, nil
}

// ComparisonRow is one (graph, deadline) cell group of Table 4.
type ComparisonRow struct {
	Graph      string
	Deadline   float64
	Ours       float64
	Baseline   float64
	PctDiff    float64
	PaperOurs  float64
	PaperBase  float64
	PaperPct   float64
	OursDur    float64
	BaseDur    float64
	OursEnergy float64
	BaseEnergy float64
}

// paperTable4 holds the paper's printed comparison (ours, baseline [1]).
var paperTable4 = map[string]map[float64][2]float64{
	"G2": {55: {30913, 35739}, 75: {13751, 13885}, 95: {7961, 8517}},
	"G3": {100: {57429, 68120}, 150: {41801, 48650}, 230: {13737, 22686}},
}

// Table4 reruns the paper's comparison: the iterative heuristic versus the
// reference-[1] DP + Equation-5 baseline, on G2 and G3 across their
// deadlines.
func Table4() ([]ComparisonRow, *report.Table, error) {
	m := model()
	var rows []ComparisonRow
	for _, tc := range []struct {
		name string
		g    *taskgraph.Graph
		ds   []float64
	}{
		{"G2", taskgraph.G2(), taskgraph.G2Deadlines},
		{"G3", taskgraph.G3(), taskgraph.G3Deadlines},
	} {
		for _, d := range tc.ds {
			s, err := core.New(tc.g, d, core.Options{})
			if err != nil {
				return nil, nil, err
			}
			res, err := s.Run()
			if err != nil {
				return nil, nil, fmt.Errorf("%s@%g ours: %w", tc.name, d, err)
			}
			bs, err := baseline.RakhmatovSchedule(tc.g, d)
			if err != nil {
				return nil, nil, fmt.Errorf("%s@%g baseline: %w", tc.name, d, err)
			}
			bc := bs.Cost(tc.g, m)
			paper := paperTable4[tc.name][d]
			rows = append(rows, ComparisonRow{
				Graph:      tc.name,
				Deadline:   d,
				Ours:       res.Cost,
				Baseline:   bc,
				PctDiff:    (bc - res.Cost) / res.Cost * 100,
				PaperOurs:  paper[0],
				PaperBase:  paper[1],
				PaperPct:   (paper[1] - paper[0]) / paper[0] * 100,
				OursDur:    res.Duration,
				BaseDur:    bs.Duration(tc.g),
				OursEnergy: res.Energy,
				BaseEnergy: bs.Energy(tc.g),
			})
		}
	}
	t := &report.Table{
		Title:   "Table 4: battery capacity used, ours vs. algorithm [1] (mA·min)",
		Headers: []string{"Graph", "Deadline", "Ours", "Algo [1]", "% diff", "Paper ours", "Paper [1]", "Paper %"},
	}
	for _, r := range rows {
		t.AddRow(r.Graph, report.F0(r.Deadline), report.F0(r.Ours), report.F0(r.Baseline),
			report.Pct(r.PctDiff), report.F0(r.PaperOurs), report.F0(r.PaperBase), report.Pct(r.PaperPct))
	}
	t.Notes = append(t.Notes,
		"G3 baseline cells reproduce the paper exactly (68120 / 48650 / 22686); G2 uses the reconstructed edge set (DESIGN.md §3)",
	)
	return rows, t, nil
}

// ExtendedComparison runs every implemented scheduler on a graph/deadline
// and tabulates sigma, energy and duration — the repo's own extension of
// Table 4 to more baselines.
func ExtendedComparison(name string, g *taskgraph.Graph, deadline float64) (*report.Table, error) {
	m := model()
	t := &report.Table{
		Title:   fmt.Sprintf("Extended comparison on %s @ %g min", name, deadline),
		Headers: []string{"Algorithm", "sigma", "energy", "duration", "CIF"},
	}
	add := func(algo string, s *sched.Schedule, err error) error {
		if err != nil {
			t.AddRow(algo, "error: "+err.Error(), "", "", "")
			return nil
		}
		if verr := s.ValidateDeadline(g, deadline); verr != nil {
			return fmt.Errorf("%s produced an invalid schedule: %w", algo, verr)
		}
		t.AddRow(algo, report.F0(s.Cost(g, m)), report.F0(s.Energy(g)), report.F1(s.Duration(g)), report.Pct(s.CIF(g)))
		return nil
	}
	cs, err := core.New(g, deadline, core.Options{})
	if err != nil {
		return nil, err
	}
	res, err := cs.Run()
	if err != nil {
		return nil, err
	}
	if err := add("iterative (this paper)", res.Schedule, nil); err != nil {
		return nil, err
	}
	bs, err := baseline.RakhmatovSchedule(g, deadline)
	if err2 := add("DP+Eq5 [1]", bs, err); err2 != nil {
		return nil, err2
	}
	ch, err := baseline.ChowdhurySchedule(g, deadline, nil)
	if err2 := add("scale-down-from-last [7]", ch, err); err2 != nil {
		return nil, err2
	}
	af, err := baseline.AllFastest(g, deadline)
	if err2 := add("all-fastest", af, err); err2 != nil {
		return nil, err2
	}
	lp, err := baseline.LowestPowerFeasible(g, deadline)
	if err2 := add("lowest-power-feasible", lp, err); err2 != nil {
		return nil, err2
	}
	sa, _, err := baseline.Anneal(g, deadline, m, baseline.AnnealOptions{Seed: 1})
	if err2 := add("simulated annealing", sa, err); err2 != nil {
		return nil, err2
	}
	if searchable(g) {
		if opt, _, err := baseline.Optimal(g, deadline, m, baseline.OptimalOptions{MaxTasks: 9}); err == nil {
			if err2 := add("exhaustive optimum", opt, nil); err2 != nil {
				return nil, err2
			}
		}
	}
	return t, nil
}

// searchable estimates whether the exhaustive oracle can enumerate the
// instance quickly: few topological orders and a small assignment space.
func searchable(g *taskgraph.Graph) bool {
	if g.N() > 9 {
		return false
	}
	const orderCap = 64
	orders := baseline.CountTopoOrders(g, orderCap)
	if orders >= orderCap {
		return false
	}
	mPts, _ := g.UniformPointCount()
	space := float64(orders) * math.Pow(float64(mPts), float64(g.N()))
	return space <= 5e6
}

// Figure3 renders the window-masking illustration for n tasks and m design
// points (the paper draws n=5, m=4).
func Figure3(n, m int) *report.Table {
	t := &report.Table{
		Title:   fmt.Sprintf("Figure 3: windows over %d tasks x %d design points (x = masked out)", n, m),
		Headers: []string{"Window", "Columns considered"},
	}
	for ws := 1; ws < m; ws++ {
		var cols []string
		for j := 1; j <= m; j++ {
			if j >= ws {
				cols = append(cols, fmt.Sprintf("DP%d", j))
			} else {
				cols = append(cols, "x")
			}
		}
		t.AddRow(fmt.Sprintf("%d:%d", ws, m), strings.Join(cols, " "))
	}
	return t
}

// Figure4 narrates the DPF escalation worked example (the paper's Fig. 4)
// using the same synthetic instance the unit test pins: it reports the
// escalation steps and the resulting DPF = 1/3.
func Figure4() *report.Table {
	t := &report.Table{
		Title:   "Figure 4: DPF escalation worked example (5 tasks x 4 DPs, E = [3,4,5,1,2])",
		Headers: []string{"Step", "State"},
	}
	t.AddRow("(a)", "T5@DP4, T4@DP1 fixed; T3 tagged@DP2; free T1@DP4, T2@DP4 — deadline missed")
	t.AddRow("(b)", "first free task in E is T1 -> escalate to DP3 — deadline still missed")
	t.AddRow("(c)", "T1 -> DP2 — deadline met; free occupancy: DP2:{T1}, DP4:{T2}")
	t.AddRow("DPF", "f=1/3, x=2: (4-2)*f*1/2 = 1/3 (weights: DP1=1, DP2=2/3, DP3=1/3, DP4=0)")
	t.Notes = append(t.Notes, "reproduced programmatically by core.TestDPFWorkedExampleFig4")
	return t
}

// Figure5 dumps the G2 node data and the reconstructed edges, plus the
// graph in DOT for visual inspection.
func Figure5() (*report.Table, string) {
	g := taskgraph.G2()
	t := &report.Table{
		Title:   "Figure 5: task graph G2 (robotic arm controller) and design-point data",
		Headers: []string{"Node", "I1", "D1", "I2", "D2", "I3", "D3", "I4", "D4", "Parents"},
	}
	for _, id := range g.TaskIDs() {
		task := g.Task(id)
		cells := []interface{}{strconv.Itoa(id)}
		for _, p := range task.Points {
			cells = append(cells, report.F0(p.Current), report.F1(p.Time))
		}
		parents := g.Parents(id)
		if len(parents) == 0 {
			cells = append(cells, "ENTER")
		} else {
			ps := make([]string, len(parents))
			for k, p := range parents {
				ps[k] = strconv.Itoa(p)
			}
			cells = append(cells, strings.Join(ps, ","))
		}
		t.AddRow(cells...)
	}
	t.Notes = append(t.Notes, "edge set reconstructed (DESIGN.md §3): 1→{2,3,4,5}, 2→6, 3→7, 4→8, 5→9")
	var dot strings.Builder
	_ = g.WriteDOT(&dot, "G2")
	return t, dot.String()
}

// AblationRow is one configuration of the ablation study.
type AblationRow struct {
	Name string
	Cost float64
	Dur  float64
	Iter int
}

// Ablation measures what each design choice of the algorithm buys on a
// graph/deadline: initial-order weight, each suitability term, the window
// sweep, and the Equation-4 resequencing.
func Ablation(g *taskgraph.Graph, deadline float64) ([]AblationRow, *report.Table, error) {
	configs := []struct {
		name string
		opt  core.Options
	}{
		{"full algorithm (paper)", core.Options{}},
		{"initial order: avg energy", core.Options{InitialOrder: core.WeightAvgEnergy}},
		{"no SR term", core.Options{Factors: core.AllFactors &^ core.FactorSR}},
		{"no CR term", core.Options{Factors: core.AllFactors &^ core.FactorCR}},
		{"no ENR term", core.Options{Factors: core.AllFactors &^ core.FactorENR}},
		{"no CIF term", core.Options{Factors: core.AllFactors &^ core.FactorCIF}},
		{"no DPF term", core.Options{Factors: core.AllFactors &^ core.FactorDPF}},
		{"single window (first feasible)", core.Options{Windows: core.WindowFirstFeasible}},
		{"single window (full only)", core.Options{Windows: core.WindowFullOnly}},
		{"no resequencing", core.Options{DisableResequencing: true}},
		{"DPF absolute columns", core.Options{DPFColumns: core.DPFAbsolute}},
	}
	var rows []AblationRow
	t := &report.Table{
		Title:   fmt.Sprintf("Ablation on %d tasks @ %g min", g.N(), deadline),
		Headers: []string{"Configuration", "sigma", "duration", "iterations", "vs full"},
	}
	var full float64
	for k, c := range configs {
		s, err := core.New(g, deadline, c.opt)
		if err != nil {
			return nil, nil, err
		}
		res, err := s.Run()
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", c.name, err)
		}
		rows = append(rows, AblationRow{Name: c.name, Cost: res.Cost, Dur: res.Duration, Iter: res.Iterations})
		if k == 0 {
			full = res.Cost
		}
		delta := (res.Cost - full) / full * 100
		t.AddRow(c.name, report.F0(res.Cost), report.F1(res.Duration), res.Iterations,
			fmt.Sprintf("%+.1f%%", delta))
	}
	return rows, t, nil
}

// BatteryProperties demonstrates the Section 3 claims: rate-capacity
// effect, recovery effect, and the ordering property.
func BatteryProperties() *report.Table {
	m := battery.NewRakhmatov(Beta)
	t := &report.Table{
		Title:   "Section 3: battery model properties (beta 0.273)",
		Headers: []string{"Experiment", "Result"},
	}
	// Rate-capacity: lifetime at 100 vs 400 mA for alpha = 40000.
	alpha := 40000.0
	l1, _ := battery.ConstantLoadLifetime(m, 100, alpha)
	l4, _ := battery.ConstantLoadLifetime(m, 400, alpha)
	t.AddRow("lifetime @100 mA (ideal 400.0 min)", report.F1(l1)+" min")
	t.AddRow("lifetime @400 mA (ideal 100.0 min)", report.F1(l4)+" min")
	t.AddRow("rate-capacity penalty @400 vs @100", report.Pct((1-4*l4/l1)*100)+"%")
	// Recovery: pulsed vs continuous discharge of the same charge.
	cont := battery.Profile{{Current: 400, Duration: 40}}
	pulsed := battery.Profile{}
	for k := 0; k < 4; k++ {
		pulsed = append(pulsed, battery.Interval{Current: 400, Duration: 10}, battery.Interval{Current: 0, Duration: 10})
	}
	sc := m.ChargeLost(cont, cont.TotalTime())
	sp := m.ChargeLost(pulsed, pulsed.TotalTime())
	t.AddRow("sigma continuous 400mA x 40min", report.F0(sc)+" mA·min")
	t.AddRow("sigma pulsed (10 on / 10 off) x 4", report.F0(sp)+" mA·min")
	t.AddRow("recovery-effect saving", report.Pct((sc-sp)/sc*100)+"%")
	// Ordering property on a spread of currents.
	p := battery.Profile{
		{Current: 600, Duration: 10}, {Current: 100, Duration: 10},
		{Current: 400, Duration: 10}, {Current: 250, Duration: 10},
	}
	dec := p.SortedDescending()
	inc := dec.Reversed()
	T := p.TotalTime()
	t.AddRow("sigma decreasing-current order", report.F0(m.ChargeLost(dec, T))+" mA·min")
	t.AddRow("sigma increasing-current order", report.F0(m.ChargeLost(inc, T))+" mA·min")
	return t
}

// DeadlineSweep traces sigma versus deadline for ours and the [1]
// baseline over a dense grid — the data behind the repo's sensitivity
// example (and the crossover analysis Table 4 samples at three points).
func DeadlineSweep(g *taskgraph.Graph, from, to float64, steps int) (*report.Table, error) {
	if steps < 2 {
		return nil, fmt.Errorf("experiments: need at least 2 steps")
	}
	m := model()
	t := &report.Table{
		Title:   "Deadline sweep: sigma vs deadline",
		Headers: []string{"Deadline", "Ours", "Algo [1]", "Chowdhury [7]", "% ours vs [1]"},
	}
	for k := 0; k < steps; k++ {
		d := from + (to-from)*float64(k)/float64(steps-1)
		d = math.Round(d*10) / 10
		s, err := core.New(g, d, core.Options{})
		if err != nil {
			return nil, err
		}
		res, err := s.Run()
		if err != nil {
			t.AddRow(report.F1(d), "infeasible", "", "", "")
			continue
		}
		bs, err := baseline.RakhmatovSchedule(g, d)
		if err != nil {
			return nil, err
		}
		ch, err := baseline.ChowdhurySchedule(g, d, nil)
		if err != nil {
			return nil, err
		}
		bc := bs.Cost(g, m)
		t.AddRow(report.F1(d), report.F0(res.Cost), report.F0(bc), report.F0(ch.Cost(g, m)),
			report.Pct((bc-res.Cost)/res.Cost*100))
	}
	return t, nil
}

// IdleExtension runs the recovery-rest extension (core.RunWithIdle) over
// a deadline range: how much extra sigma the leftover slack buys when
// spent as interior rest. This goes beyond the paper (its Section 3
// motivates the recovery effect; its algorithm never inserts rest).
func IdleExtension(g *taskgraph.Graph, deadlines []float64) (*report.Table, error) {
	t := &report.Table{
		Title:   "Extension: spending deadline slack as recovery rest",
		Headers: []string{"Deadline", "sigma (no rest)", "sigma (with rest)", "rest placed", "saving"},
	}
	for _, d := range deadlines {
		res, plan, err := core.RunWithIdle(g, d, core.Options{})
		if err != nil {
			return nil, err
		}
		t.AddRow(report.F0(d), report.F0(plan.BaseCost), report.F0(plan.Cost),
			report.F1(plan.TotalIdle())+" min", report.Pct(core.IdleSavings(plan)*100)+"%")
		_ = res
	}
	t.Notes = append(t.Notes,
		"rest only between tasks (trailing rest would trivially help); padded completion always meets the deadline",
	)
	return t, nil
}

// ModelComparison schedules the same graph under each battery model and
// cross-evaluates every schedule under every model — showing how model
// choice changes both the chosen schedule and the predicted cost.
func ModelComparison(g *taskgraph.Graph, deadline float64) (*report.Table, error) {
	_, iMax := g.CurrentRange()
	models := []battery.Model{
		battery.NewRakhmatov(Beta),
		battery.Ideal{},
		battery.NewPeukert(1.2, iMax/4),
		battery.NewKiBaM(1e6, 0.6, 0.05),
	}
	t := &report.Table{
		Title:   fmt.Sprintf("Cross-model comparison @ %g min (rows: model optimized for; columns: model evaluated under)", deadline),
		Headers: []string{"Optimized under"},
	}
	for _, m := range models {
		t.Headers = append(t.Headers, m.Name())
	}
	for _, opt := range models {
		s, err := core.New(g, deadline, core.Options{Model: opt})
		if err != nil {
			return nil, err
		}
		res, err := s.Run()
		if err != nil {
			return nil, err
		}
		cells := []interface{}{opt.Name()}
		p := res.Schedule.Profile(g)
		for _, eval := range models {
			cells = append(cells, report.F0(eval.ChargeLost(p, p.TotalTime())))
		}
		t.AddRow(cells...)
	}
	return t, nil
}

// Names lists the experiment identifiers cmd/paperrepro accepts, sorted.
func Names() []string {
	names := []string{"table1", "table2", "table3", "table4", "figure3", "figure4", "figure5", "ablation", "battery", "sweep", "extended", "idle", "models", "synthetic"}
	sort.Strings(names)
	return names
}

package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dvs"
	"repro/internal/report"
	"repro/internal/taskgraph"
)

// The paper's Section 1 notes "We tested the algorithm using different
// task-graphs and design-points"; only G2 and G3 appear in print. This
// file generalizes Table 4 into a synthetic benchmark suite over random
// instances of the shapes the scheduling literature uses, reporting
// aggregate win rates and gap statistics rather than single cells.

// SyntheticConfig parameterizes the suite.
type SyntheticConfig struct {
	// Seed makes the whole suite reproducible.
	Seed int64
	// Instances is the number of random graphs per shape (default 10).
	Instances int
	// Tasks is the approximate task count per graph (default 15).
	Tasks int
	// Points is the design-point count per task (default 5).
	Points int
	// SlackLevels are the deadline positions within
	// [MinTime, MaxTime]: deadline = MinTime + s·(MaxTime−MinTime)
	// (default 0.25, 0.5, 0.9).
	SlackLevels []float64
}

func (c SyntheticConfig) withDefaults() SyntheticConfig {
	if c.Instances == 0 {
		c.Instances = 10
	}
	if c.Tasks == 0 {
		c.Tasks = 15
	}
	if c.Points == 0 {
		c.Points = 5
	}
	if len(c.SlackLevels) == 0 {
		c.SlackLevels = []float64{0.25, 0.5, 0.9}
	}
	return c
}

// SyntheticCell aggregates one (shape, slack) cell of the suite.
type SyntheticCell struct {
	Shape     string
	Slack     float64
	Instances int
	// WinsVsRV counts instances where ours <= the [1] baseline.
	WinsVsRV int
	// MeanGapRV is the mean of (baseline-ours)/ours in percent
	// (positive = we win on average).
	MeanGapRV float64
	// MaxGapRV / MinGapRV bound the per-instance gaps (percent).
	MaxGapRV, MinGapRV float64
	// MeanGapChowdhury is the mean gap versus the [7]-style heuristic.
	MeanGapChowdhury float64
}

// SyntheticSuite runs the suite and returns per-cell aggregates plus a
// rendered table.
func SyntheticSuite(cfg SyntheticConfig) ([]SyntheticCell, *report.Table, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := model()

	factors := make([]float64, cfg.Points)
	for j := 0; j < cfg.Points; j++ {
		if cfg.Points == 1 {
			factors[j] = 1
		} else {
			factors[j] = 1 - float64(j)/float64(cfg.Points-1)*(1-0.33)
		}
	}
	recipe := dvs.Recipe{Factors: factors, Rule: dvs.TimeReversedLinear, Round: 1}

	shapes := []struct {
		name string
		gen  func(points taskgraph.PointsFunc) (*taskgraph.Graph, error)
	}{
		{"chain", func(p taskgraph.PointsFunc) (*taskgraph.Graph, error) {
			return taskgraph.Chain(cfg.Tasks, p)
		}},
		{"fork-join", func(p taskgraph.PointsFunc) (*taskgraph.Graph, error) {
			width := 4
			tail := cfg.Tasks / 3
			depth := (cfg.Tasks - 1 - tail) / width
			if depth < 1 {
				depth = 1
			}
			return taskgraph.ForkJoin(width, depth, tail, p)
		}},
		{"layered", func(p taskgraph.PointsFunc) (*taskgraph.Graph, error) {
			width := 3
			layers := cfg.Tasks / width
			if layers < 2 {
				layers = 2
			}
			return taskgraph.Layered(rng, layers, width, 0.4, p)
		}},
		{"series-parallel", func(p taskgraph.PointsFunc) (*taskgraph.Graph, error) {
			return taskgraph.SeriesParallel(rng, cfg.Tasks, p)
		}},
		{"random", func(p taskgraph.PointsFunc) (*taskgraph.Graph, error) {
			return taskgraph.Random(rng, cfg.Tasks, 0.25, p)
		}},
	}

	var cells []SyntheticCell
	for _, shape := range shapes {
		for _, slack := range cfg.SlackLevels {
			cell := SyntheticCell{Shape: shape.name, Slack: slack, MinGapRV: math.Inf(1), MaxGapRV: math.Inf(-1)}
			var sumRV, sumCh float64
			for inst := 0; inst < cfg.Instances; inst++ {
				refs := dvs.RandomRefs(rng, cfg.Tasks+8, 200, 950, 2, 10)
				points, err := recipe.PointsFunc(refs)
				if err != nil {
					return nil, nil, err
				}
				g, err := shape.gen(points)
				if err != nil {
					return nil, nil, fmt.Errorf("synthetic %s: %w", shape.name, err)
				}
				deadline := g.MinTotalTime() + slack*(g.MaxTotalTime()-g.MinTotalTime())
				deadline = math.Round(deadline*10) / 10
				if deadline < g.MinTotalTime() {
					deadline = math.Ceil(g.MinTotalTime()*10) / 10
				}
				s, err := core.New(g, deadline, core.Options{})
				if err != nil {
					return nil, nil, err
				}
				res, err := s.Run()
				if err != nil {
					return nil, nil, fmt.Errorf("synthetic %s slack %.2f: %w", shape.name, slack, err)
				}
				rv, err := baseline.RakhmatovSchedule(g, deadline)
				if err != nil {
					return nil, nil, err
				}
				ch, err := baseline.ChowdhurySchedule(g, deadline, nil)
				if err != nil {
					return nil, nil, err
				}
				rvCost := rv.Cost(g, m)
				chCost := ch.Cost(g, m)
				gap := (rvCost - res.Cost) / res.Cost * 100
				sumRV += gap
				sumCh += (chCost - res.Cost) / res.Cost * 100
				if res.Cost <= rvCost+1e-9 {
					cell.WinsVsRV++
				}
				if gap > cell.MaxGapRV {
					cell.MaxGapRV = gap
				}
				if gap < cell.MinGapRV {
					cell.MinGapRV = gap
				}
				cell.Instances++
			}
			cell.MeanGapRV = sumRV / float64(cell.Instances)
			cell.MeanGapChowdhury = sumCh / float64(cell.Instances)
			cells = append(cells, cell)
		}
	}

	t := &report.Table{
		Title: fmt.Sprintf("Synthetic suite: %d instances per cell, ~%d tasks x %d points (seed %d)",
			cfg.Instances, cfg.Tasks, cfg.Points, cfg.Seed),
		Headers: []string{"Shape", "Slack", "Win vs [1]", "Mean gap [1]", "Gap range [1]", "Mean gap [7]"},
	}
	for _, c := range cells {
		t.AddRow(c.Shape, report.Pct(c.Slack*100)+"%",
			fmt.Sprintf("%d/%d", c.WinsVsRV, c.Instances),
			report.Pct(c.MeanGapRV)+"%",
			fmt.Sprintf("%s%% … %s%%", report.Pct(c.MinGapRV), report.Pct(c.MaxGapRV)),
			report.Pct(c.MeanGapChowdhury)+"%")
	}
	t.Notes = append(t.Notes, "gap = (other − ours)/ours; positive means the iterative algorithm wins")
	return cells, t, nil
}

package experiments

import (
	"testing"
)

func TestSyntheticSuiteSmall(t *testing.T) {
	cells, tab, err := SyntheticSuite(SyntheticConfig{
		Seed:        7,
		Instances:   2,
		Tasks:       10,
		Points:      3,
		SlackLevels: []float64{0.3, 0.8},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 5 shapes x 2 slack levels.
	if len(cells) != 10 {
		t.Fatalf("cells = %d, want 10", len(cells))
	}
	for _, c := range cells {
		if c.Instances != 2 {
			t.Fatalf("cell %s/%.1f ran %d instances", c.Shape, c.Slack, c.Instances)
		}
		if c.WinsVsRV < 0 || c.WinsVsRV > c.Instances {
			t.Fatalf("cell %s/%.1f wins = %d", c.Shape, c.Slack, c.WinsVsRV)
		}
		if c.MinGapRV > c.MeanGapRV || c.MeanGapRV > c.MaxGapRV {
			t.Fatalf("cell %s/%.1f gap stats inconsistent: %+v", c.Shape, c.Slack, c)
		}
	}
	if len(tab.Rows) != 10 {
		t.Fatalf("table rows = %d", len(tab.Rows))
	}
}

func TestSyntheticSuiteDeterministic(t *testing.T) {
	cfg := SyntheticConfig{Seed: 3, Instances: 2, Tasks: 8, Points: 3, SlackLevels: []float64{0.5}}
	a, _, err := SyntheticSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := SyntheticSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("cell %d differs across identical runs:\n%+v\n%+v", k, a[k], b[k])
		}
	}
}

// TestSyntheticTightSlackWins checks the suite-level version of the
// paper's claim on its home turf: at tight slack the iterative algorithm
// wins the large majority of instances against the min-energy baseline.
func TestSyntheticTightSlackWins(t *testing.T) {
	cells, _, err := SyntheticSuite(SyntheticConfig{
		Seed: 1, Instances: 6, Tasks: 14, Points: 5, SlackLevels: []float64{0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	wins, total := 0, 0
	for _, c := range cells {
		wins += c.WinsVsRV
		total += c.Instances
	}
	if float64(wins) < 0.7*float64(total) {
		t.Fatalf("tight-slack win rate %d/%d below 70%%", wins, total)
	}
}

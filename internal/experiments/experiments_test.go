package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/taskgraph"
)

func TestTable1(t *testing.T) {
	tab := Table1()
	if len(tab.Rows) != 15 {
		t.Fatalf("Table 1 has %d rows, want 15", len(tab.Rows))
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"917", "7.3", "T11,T12,T13"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("Table 1 missing %q", want)
		}
	}
}

func TestTable2(t *testing.T) {
	r, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Trace.Iterations) < 2 {
		t.Fatalf("expected at least 2 iterations, got %d", len(r.Trace.Iterations))
	}
	var buf bytes.Buffer
	if err := r.Table.Render(&buf); err != nil {
		t.Fatal(err)
	}
	// S1 row must carry the paper-exact sequence.
	if !strings.Contains(buf.String(), "T1,T4,T5,T7,T3,T2,T6,T8,T10,T9,T13,T12,T11,T14,T15") {
		t.Fatal("Table 2 missing the exact S1")
	}
}

func TestTable3Anchors(t *testing.T) {
	tab, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// The window-4:5 anchor and its paper annotation must both appear.
	if !strings.Contains(out, "16353 (16353)") {
		t.Fatalf("Table 3 lost the win-4:5 anchor:\n%s", out)
	}
}

func TestTable4ShapeAndAnchors(t *testing.T) {
	rows, tab, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("Table 4 has %d rows, want 6", len(rows))
	}
	for _, r := range rows {
		// The headline claim: ours within 2% of baseline or better,
		// everywhere (the one negative cell is G2@75 at -1.0%).
		if r.Baseline < r.Ours*0.97 {
			t.Errorf("%s@%g: baseline %0.f more than 3%% below ours %0.f", r.Graph, r.Deadline, r.Baseline, r.Ours)
		}
		if r.OursDur > r.Deadline+1e-6 || r.BaseDur > r.Deadline+1e-6 {
			t.Errorf("%s@%g: deadline violated", r.Graph, r.Deadline)
		}
	}
	// Bit-exact G3 anchors.
	anchors := map[float64][2]float64{100: {57429, 68120}, 150: {41801, 48650}, 230: {math.NaN(), 22686}}
	for _, r := range rows {
		if r.Graph != "G3" {
			continue
		}
		want := anchors[r.Deadline]
		if !math.IsNaN(want[0]) && math.Abs(r.Ours-want[0]) > 1 {
			t.Errorf("G3@%g ours = %.1f, want %.0f", r.Deadline, r.Ours, want[0])
		}
		if math.Abs(r.Baseline-want[1]) > 1 {
			t.Errorf("G3@%g baseline = %.1f, want %.0f", r.Deadline, r.Baseline, want[1])
		}
	}
	// G2@55 exact anchor.
	for _, r := range rows {
		if r.Graph == "G2" && r.Deadline == 55 && math.Abs(r.Ours-30913) > 1 {
			t.Errorf("G2@55 ours = %.1f, want 30913", r.Ours)
		}
	}
	if tab == nil || len(tab.Rows) != 6 {
		t.Fatal("rendered table malformed")
	}
}

func TestExtendedComparison(t *testing.T) {
	tab, err := ExtendedComparison("G2", taskgraph.G2(), 75)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 5 {
		t.Fatalf("extended comparison has %d rows", len(tab.Rows))
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"iterative", "DP+Eq5", "annealing"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("extended comparison missing %q", want)
		}
	}
}

func TestFigures(t *testing.T) {
	f3 := Figure3(5, 4)
	if len(f3.Rows) != 3 {
		t.Fatalf("Figure 3 rows = %d", len(f3.Rows))
	}
	f4 := Figure4()
	if len(f4.Rows) != 4 {
		t.Fatalf("Figure 4 rows = %d", len(f4.Rows))
	}
	f5, dot := Figure5()
	if len(f5.Rows) != 9 {
		t.Fatalf("Figure 5 rows = %d", len(f5.Rows))
	}
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "t1 -> t2") {
		t.Fatalf("Figure 5 DOT malformed:\n%s", dot)
	}
}

func TestAblation(t *testing.T) {
	rows, tab, err := Ablation(taskgraph.G3(), taskgraph.G3Deadline)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("ablation rows = %d", len(rows))
	}
	if rows[0].Name != "full algorithm (paper)" {
		t.Fatalf("first row = %q", rows[0].Name)
	}
	// The full algorithm should be at or near the best of all configs
	// (ablations remove information; small wins are possible but the
	// paper's claim is that the full set is near-best).
	full := rows[0].Cost
	for _, r := range rows[1:] {
		if r.Cost < full*0.95 {
			t.Errorf("config %q beats the full algorithm by >5%% (%.0f vs %.0f)", r.Name, r.Cost, full)
		}
	}
	if tab == nil {
		t.Fatal("no table")
	}
}

func TestBatteryProperties(t *testing.T) {
	tab := BatteryProperties()
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"lifetime @100", "recovery", "decreasing-current"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("battery properties missing %q:\n%s", want, buf.String())
		}
	}
}

func TestDeadlineSweep(t *testing.T) {
	g := taskgraph.G2()
	tab, err := DeadlineSweep(g, g.MinTotalTime()*1.05, g.MaxTotalTime(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("sweep rows = %d", len(tab.Rows))
	}
	if _, err := DeadlineSweep(g, 50, 100, 1); err == nil {
		t.Fatal("steps < 2 should error")
	}
}

func TestIdleExtension(t *testing.T) {
	g := taskgraph.G3()
	// Past the all-slowest completion time the leftover slack can only
	// be spent as rest, and it must help.
	tab, err := IdleExtension(g, []float64{g.MaxTotalTime() * 1.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[0][4] == "0.0%" {
		t.Fatalf("expected positive saving at a loose deadline: %v", tab.Rows[0])
	}
}

func TestModelComparison(t *testing.T) {
	tab, err := ModelComparison(taskgraph.G3(), taskgraph.G3Deadline)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 || len(tab.Headers) != 5 {
		t.Fatalf("table shape = %dx%d", len(tab.Rows), len(tab.Headers))
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"rakhmatov", "ideal", "peukert", "kibam"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("model comparison missing %q", want)
		}
	}
}

func TestNames(t *testing.T) {
	names := Names()
	if len(names) < 8 {
		t.Fatalf("names = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}

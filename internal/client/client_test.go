package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/server"
	"repro/internal/wire"
)

// newRealServer spins up the actual battschedd serving stack.
func newRealServer(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	s := server.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Close)
	return s, ts
}

func newClient(t *testing.T, cfg Config) *Client {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// fastBackoff keeps test retries in the milliseconds.
func fastBackoff(base string, httpc *http.Client) Config {
	return Config{
		BaseURL:     base,
		HTTPClient:  httpc,
		MaxAttempts: 5,
		BaseBackoff: 2 * time.Millisecond,
		MaxBackoff:  20 * time.Millisecond,
	}
}

func testJob() wire.Job {
	return wire.Job{Fixture: "g3", Deadline: 230, Strategy: "iterative"}
}

func TestJitterDeterministic(t *testing.T) {
	for attempt := 0; attempt < 5; attempt++ {
		a := jitter("somekey", attempt)
		b := jitter("somekey", attempt)
		if a != b {
			t.Fatalf("jitter(somekey,%d) varies: %v vs %v", attempt, a, b)
		}
		if a < 0.5 || a >= 1.0 {
			t.Fatalf("jitter(somekey,%d) = %v, want [0.5,1.0)", attempt, a)
		}
	}
	if jitter("a", 0) == jitter("b", 0) && jitter("a", 1) == jitter("b", 1) {
		t.Error("jitter does not spread across keys")
	}
}

// TestScheduleRetriesTransportFault: a connection-reset-shaped failure
// on the first attempt is absorbed; the second attempt answers.
func TestScheduleRetriesTransportFault(t *testing.T) {
	_, ts := newRealServer(t, server.Config{})
	in := fault.NewInjector(fault.OS,
		fault.Rule{Op: fault.OpRoundTrip, Nth: 1, Err: syscall.ECONNRESET})
	c := newClient(t, fastBackoff(ts.URL, &http.Client{Transport: &fault.Transport{Injector: in}}))

	res, err := c.Schedule(context.Background(), testJob())
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if res.Error != "" || len(res.Order) == 0 {
		t.Fatalf("result: %+v", res)
	}
	st := c.Stats()
	if st.Retries != 1 || st.Attempts != 2 {
		t.Errorf("stats = %+v, want 1 retry / 2 attempts", st)
	}
}

// TestScheduleRetries503And429: synthesized backpressure responses with
// Retry-After are retried and the header honored (counted).
func TestScheduleRetries503And429(t *testing.T) {
	_, ts := newRealServer(t, server.Config{})
	in := fault.NewInjector(fault.OS,
		fault.Rule{Op: fault.OpRoundTrip, Nth: 1, Status: 503},
		fault.Rule{Op: fault.OpRoundTrip, Nth: 2, Status: 429})
	c := newClient(t, fastBackoff(ts.URL, &http.Client{Transport: &fault.Transport{Injector: in}}))

	start := time.Now()
	res, err := c.Schedule(context.Background(), testJob())
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if len(res.Order) == 0 {
		t.Fatalf("result: %+v", res)
	}
	st := c.Stats()
	if st.Retries != 2 {
		t.Errorf("retries = %d, want 2", st.Retries)
	}
	if st.RetryAfter != 2 {
		t.Errorf("retry_after_honored = %d, want 2", st.RetryAfter)
	}
	// The injected Retry-After is 1s and must floor the wait: two
	// honored headers mean >= 2s of waiting.
	if d := time.Since(start); d < 2*time.Second {
		t.Errorf("call took %v, want >= 2s (Retry-After floors the backoff)", d)
	}
}

// TestNoRetryOn400: a malformed request fails once, immediately.
func TestNoRetryOn400(t *testing.T) {
	_, ts := newRealServer(t, server.Config{})
	c := newClient(t, fastBackoff(ts.URL, nil))

	_, err := c.Schedule(context.Background(), wire.Job{Fixture: "no-such-fixture", Deadline: 1, Strategy: "iterative"})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("err = %v, want StatusError 400", err)
	}
	if st := c.Stats(); st.Attempts != 1 || st.Retries != 0 {
		t.Errorf("stats = %+v, want exactly one attempt", st)
	}
}

// TestSchedule422IsResult: a deterministic scheduling failure (422)
// comes back as a result with an error field, not a client error, and
// is never retried (it would fail identically).
func TestSchedule422IsResult(t *testing.T) {
	_, ts := newRealServer(t, server.Config{})
	c := newClient(t, fastBackoff(ts.URL, nil))

	res, err := c.Schedule(context.Background(), wire.Job{Fixture: "g3", Deadline: 1, Strategy: "iterative"})
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if res.Error == "" {
		t.Fatalf("infeasible deadline produced no error: %+v", res)
	}
	if st := c.Stats(); st.Attempts != 1 {
		t.Errorf("attempts = %d, want 1 (422 is deterministic)", st.Attempts)
	}
}

// TestDoEndToEnd: the async path against the real server.
func TestDoEndToEnd(t *testing.T) {
	_, ts := newRealServer(t, server.Config{})
	c := newClient(t, fastBackoff(ts.URL, nil))

	res, err := c.Do(context.Background(), testJob())
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if res.Error != "" || len(res.Order) == 0 {
		t.Fatalf("result: %+v", res)
	}

	// Same job again: content addressing means the server answers from
	// its retained terminal (or cache) — still exactly one result.
	res2, err := c.Do(context.Background(), testJob())
	if err != nil {
		t.Fatalf("Do (repeat): %v", err)
	}
	a, _ := json.Marshal(res)
	b, _ := json.Marshal(res2)
	if string(a) != string(b) {
		t.Fatalf("repeat result differs:\n%s\n%s", a, b)
	}
}

// TestDoResubmitsOn404: a job that ages out of retention between polls
// is resubmitted under its content address instead of failing.
func TestDoResubmitsOn404(t *testing.T) {
	var polls atomic.Int64
	result := wire.Result{Index: 0, Cost: 42, Order: []int{0}, Assignment: map[int]int{0: 0}}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		st := wire.JobStatus{ID: "a1b2", State: wire.StateQueued}
		if polls.Load() > 0 { // the resubmission: answer terminal
			st.State = wire.StateDone
			st.Result = &result
			w.WriteHeader(http.StatusOK)
		} else {
			w.WriteHeader(http.StatusAccepted)
		}
		json.NewEncoder(w).Encode(st)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		polls.Add(1) // every poll: the job has aged out
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(map[string]string{"error": "unknown job id"})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := newClient(t, fastBackoff(ts.URL, nil))
	res, err := c.Do(context.Background(), testJob())
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if res.Cost != 42 {
		t.Fatalf("result: %+v", res)
	}
	if st := c.Stats(); st.Resubmits != 1 {
		t.Errorf("resubmits = %d, want 1", st.Resubmits)
	}
}

// TestDrainRejectionsRetryAndExhaust: a draining server answers 503 +
// Retry-After everywhere; the client retries (honoring the header
// absent a healthy replica to land on) and surfaces the 503 once
// attempts exhaust — never hangs, never mislabels it permanent.
func TestDrainRejectionsRetryAndExhaust(t *testing.T) {
	srv, ts := newRealServer(t, server.Config{RetryAfter: 1})
	srv.Close()

	c := newClient(t, Config{
		BaseURL:     ts.URL,
		MaxAttempts: 2,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  2 * time.Millisecond,
	})
	_, err := c.Submit(context.Background(), testJob())
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want wrapped 503", err)
	}
	st := c.Stats()
	if st.Attempts != 2 || st.Retries != 1 {
		t.Errorf("stats = %+v, want 2 attempts / 1 retry", st)
	}
	if st.RetryAfter != 1 {
		t.Errorf("retry_after_honored = %d, want 1 (drain 503 carries the header)", st.RetryAfter)
	}
}

// TestReadyAgainstDrain: the readiness probe decodes the draining
// verdict out of the 503 body.
func TestReadyAgainstDrain(t *testing.T) {
	srv, ts := newRealServer(t, server.Config{})
	c := newClient(t, Config{BaseURL: ts.URL, MaxAttempts: 1})

	rep, err := c.Ready(context.Background())
	if err != nil || rep.Status != wire.ReadyOK {
		t.Fatalf("healthy Ready: %+v, %v", rep, err)
	}

	srv.Close()
	rep, err = c.Ready(context.Background())
	if err != nil || rep.Status != wire.ReadyDraining {
		t.Fatalf("draining Ready: %+v, %v", rep, err)
	}
}

// TestDeadlinePropagation: a latency fault longer than the caller's
// deadline aborts the call at the deadline, not after the full wait.
func TestDeadlinePropagation(t *testing.T) {
	_, ts := newRealServer(t, server.Config{})
	in := fault.NewInjector(fault.OS,
		fault.Rule{Op: fault.OpRoundTrip, Every: 1, Delay: 2 * time.Second})
	c := newClient(t, fastBackoff(ts.URL, &http.Client{Transport: &fault.Transport{Injector: in}}))

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Schedule(ctx, testJob())
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("call took %v, want ~50ms (deadline must cut the injected delay short)", d)
	}
}

// TestQueueFullRetryAfter: the real server's 429 (queue full) carries
// Retry-After and the client honors it — the async-submit leg of the
// Retry-After sweep.
func TestQueueFullRetryAfter(t *testing.T) {
	// Workers=1 + a queue of 1: one slow multistart occupies the lone
	// worker, one fills the lone queue slot, then distinct submissions
	// start bouncing with 429.
	_, ts := newRealServer(t, server.Config{
		Workers: 1, QueueWorkers: 1, MaxQueued: 1, RetryAfter: 1,
	})
	c := newClient(t, Config{BaseURL: ts.URL, MaxAttempts: 1})

	slow := func(seed int) wire.Job {
		return wire.Job{Fixture: "g3", Deadline: 230, Strategy: "multistart", Restarts: 4000, Seed: int64(seed)}
	}
	var got429 bool
	for i := 1; i < 12 && !got429; i++ {
		_, err := c.Submit(context.Background(), slow(i))
		var se *StatusError
		if errors.As(err, &se) {
			if se.Code != http.StatusTooManyRequests {
				t.Fatalf("submit %d: err = %v, want 429", i, err)
			}
			got429 = true
		} else if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if !got429 {
		t.Fatal("queue of capacity 1 accepted 11 slow submissions without a 429")
	}

	// The queue is full right now; a retrying client's first attempt
	// bounces and the wait must honor the server's Retry-After: 1 floor
	// (the client's own backoff here is single-digit milliseconds).
	c2 := newClient(t, Config{BaseURL: ts.URL, MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})
	start := time.Now()
	c2.Submit(context.Background(), slow(99))
	if st := c2.Stats(); st.RetryAfter != 1 {
		t.Errorf("retry_after_honored = %d, want 1 (429 carries the header)", st.RetryAfter)
	}
	if d := time.Since(start); d < time.Second {
		t.Errorf("retried 429 took %v, want >= 1s (honoring Retry-After: 1)", d)
	}
}

// Package client is the resilient Go client for the battschedd HTTP
// API: the piece that turns the server's backpressure and fault
// contracts into something a caller can lean on without writing a retry
// loop of their own.
//
// The retry discipline:
//
//   - Only idempotent operations retry. Every one of this API's calls
//     is idempotent by construction — a job's identity is the SHA-256
//     content address of its canonical request, so resubmitting the
//     same job coalesces onto the same computation server-side, and
//     GET/DELETE are idempotent by HTTP semantics. A client for a
//     different API should not copy this blanket policy; it is earned
//     by the content addressing, not assumed.
//   - Transport errors (connection refused/reset — the shape of a
//     crashed or restarting server) and 429/503 rejections retry with
//     capped exponential backoff. A Retry-After header, when present,
//     is honored as the floor of the wait: the server knows its drain
//     and queue state better than any client-side guess.
//   - Backoff jitter is deterministic — an FNV-1a hash of (key,
//     attempt) spreads concurrent clients apart without a PRNG, the
//     same no-randomness discipline as the rest of the repository, so
//     a failing run replays exactly.
//   - Deadlines propagate: every request carries the caller's context,
//     and backoff sleeps abort the moment the context dies. The context
//     is the total budget across all attempts.
//   - 4xx responses other than 429 (and 404 where noted) never retry:
//     the request itself is wrong, and the same bytes will fail the
//     same way.
//
// Do is the high-level entry: submit async, poll with the same backoff
// discipline until terminal, and — because a job can finish and age out
// of the server's retention window between polls — resubmit on 404,
// which the content-addressed ID makes safe (the resubmission coalesces
// or replays deterministically; Stats.Resubmits counts how often).
//
//battlint:deterministic
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// Config tunes a Client. The zero value (plus a BaseURL) is usable.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080". Required.
	BaseURL string
	// HTTPClient performs the requests; nil means http.DefaultClient.
	// Fault tests inject a fault.Transport here.
	HTTPClient *http.Client
	// MaxAttempts bounds tries per logical call (first try + retries);
	// 0 means DefaultMaxAttempts. The caller's context deadline is the
	// other bound — whichever ends first.
	MaxAttempts int
	// BaseBackoff is the first retry's nominal wait; 0 means
	// DefaultBaseBackoff. Attempt k waits min(BaseBackoff<<k, MaxBackoff)
	// scaled by the deterministic jitter, or Retry-After when larger.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth; 0 means DefaultMaxBackoff.
	MaxBackoff time.Duration
	// PollInterval is Do's initial result-poll cadence; 0 means
	// DefaultPollInterval. Polling backs off exponentially to MaxBackoff.
	PollInterval time.Duration
}

// Client defaults: four attempts ride out a restart without stretching
// a genuinely-down server past ~1s of waiting; 100ms–5s spans the gap
// between a queue-full blip and a drain.
const (
	DefaultMaxAttempts  = 4
	DefaultBaseBackoff  = 100 * time.Millisecond
	DefaultMaxBackoff   = 5 * time.Second
	DefaultPollInterval = 20 * time.Millisecond
)

// Stats counts what the client absorbed so harnesses can prove the
// resilience was exercised, not just survived.
type Stats struct {
	// Attempts counts every HTTP request sent, including retries.
	Attempts uint64 `json:"attempts"`
	// Retries counts requests that were re-sent after a retryable
	// failure (transport error, 429, 503).
	Retries uint64 `json:"retries"`
	// RetryAfter counts retries whose wait honored a server Retry-After
	// header rather than the client's own backoff.
	RetryAfter uint64 `json:"retry_after_honored"`
	// Resubmits counts Do re-submissions after a poll 404 (the job aged
	// out of retention between polls).
	Resubmits uint64 `json:"resubmits"`
}

// Client is a resilient battschedd API client. Safe for concurrent use.
type Client struct {
	cfg Config

	attempts   atomic.Uint64
	retries    atomic.Uint64
	retryAfter atomic.Uint64
	resubmits  atomic.Uint64
}

// New builds a client; Config.BaseURL must be set.
func New(cfg Config) (*Client, error) {
	if cfg.BaseURL == "" {
		return nil, errors.New("client: Config.BaseURL is required")
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = DefaultMaxAttempts
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = DefaultBaseBackoff
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = DefaultMaxBackoff
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = DefaultPollInterval
	}
	return &Client{cfg: cfg}, nil
}

// Stats snapshots the resilience counters.
func (c *Client) Stats() Stats {
	return Stats{
		Attempts:   c.attempts.Load(),
		Retries:    c.retries.Load(),
		RetryAfter: c.retryAfter.Load(),
		Resubmits:  c.resubmits.Load(),
	}
}

// StatusError is a non-retryable (or retries-exhausted) HTTP failure:
// the status code plus the server's error envelope.
type StatusError struct {
	Code int
	Msg  string
	// Body is the raw response body — some failure statuses (422) carry
	// a full result payload, not just an error envelope.
	Body []byte
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("client: server returned %d: %s", e.Code, e.Msg)
}

// retryable reports whether a response status is worth another attempt.
func retryable(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// jitter maps (key, attempt) to a deterministic factor in [0.5, 1.0):
// enough spread to de-synchronize a fleet of clients retrying the same
// moment, with no PRNG — the same inputs always wait the same time.
func jitter(key string, attempt int) float64 {
	h := fnv.New64a()
	io.WriteString(h, key)
	fmt.Fprintf(h, "#%d", attempt)
	return 0.5 + float64(h.Sum64()%1024)/2048
}

// backoff computes attempt's wait (0-based: the wait before attempt+1).
func (c *Client) backoff(key string, attempt int) time.Duration {
	d := c.cfg.BaseBackoff << attempt
	if d > c.cfg.MaxBackoff || d <= 0 { // <<'s overflow guard
		d = c.cfg.MaxBackoff
	}
	return time.Duration(float64(d) * jitter(key, attempt))
}

// sleep waits for d or the context, whichever ends first.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryAfterOf parses a Retry-After header (seconds form) from resp;
// 0 when absent or unparsable.
func retryAfterOf(resp *http.Response) time.Duration {
	if resp == nil {
		return 0
	}
	s, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || s <= 0 {
		return 0
	}
	return time.Duration(s) * time.Second
}

// doRetry performs one logical call: up to MaxAttempts requests with
// backoff between them, honoring Retry-After, bounded by ctx. body may
// be nil (GET/DELETE); key seeds the deterministic jitter — callers
// pass the job's content address or the resource id, so identical
// retried work backs off identically. On success the decoded JSON body
// lands in out (when non-nil). Non-retryable statuses return a
// *StatusError immediately.
func (c *Client) doRetry(ctx context.Context, method, path, key string, body []byte, out any) error {
	httpc := c.cfg.HTTPClient
	if httpc == nil {
		httpc = http.DefaultClient
	}
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
		}
		// After the last attempt there is no retry to pace, so its
		// failure exits immediately — no sleep, no Retry-After honor.
		last := attempt == c.cfg.MaxAttempts-1
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.cfg.BaseURL+path, rd)
		if err != nil {
			return fmt.Errorf("client: %w", err)
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		c.attempts.Add(1)
		resp, err := httpc.Do(req)
		if err != nil {
			// Transport-level failure: the shape of a dead, restarting
			// or fault-injected server. Retry unless the caller's
			// context is the reason.
			if ctx.Err() != nil {
				return fmt.Errorf("client: %w", ctx.Err())
			}
			lastErr = fmt.Errorf("client: %w", err)
			if last {
				continue
			}
			if serr := sleep(ctx, c.backoff(key, attempt)); serr != nil {
				return fmt.Errorf("client: %w", serr)
			}
			continue
		}
		data, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			lastErr = fmt.Errorf("client: reading response: %w", rerr)
			if last {
				continue
			}
			if serr := sleep(ctx, c.backoff(key, attempt)); serr != nil {
				return fmt.Errorf("client: %w", serr)
			}
			continue
		}
		if retryable(resp.StatusCode) {
			lastErr = &StatusError{Code: resp.StatusCode, Msg: errorMsg(data), Body: data}
			if last {
				continue
			}
			wait := c.backoff(key, attempt)
			if ra := retryAfterOf(resp); ra > 0 {
				c.retryAfter.Add(1)
				if ra > wait {
					wait = ra
				}
			}
			if serr := sleep(ctx, wait); serr != nil {
				return fmt.Errorf("client: %w", serr)
			}
			continue
		}
		if resp.StatusCode >= 400 {
			return &StatusError{Code: resp.StatusCode, Msg: errorMsg(data), Body: data}
		}
		if out != nil {
			if err := json.Unmarshal(data, out); err != nil {
				return fmt.Errorf("client: decoding %s response: %w", path, err)
			}
		}
		return nil
	}
	return fmt.Errorf("client: %d attempts exhausted: %w", c.cfg.MaxAttempts, lastErr)
}

// errorMsg extracts the server's {"error": ...} envelope, falling back
// to the raw body.
func errorMsg(data []byte) string {
	var env struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &env) == nil && env.Error != "" {
		return env.Error
	}
	return string(data)
}

// jobKey derives the deterministic jitter key for a job: the canonical
// JSON bytes stand in for the content address (the server computes the
// true SHA-256 ID; equal jobs get equal keys either way, which is all
// the jitter needs).
func jobKey(body []byte) string { return string(body) }

// Schedule runs one job synchronously: POST /v1/schedule with the full
// retry discipline. Safe to retry because scheduling is deterministic
// and content-addressed — a replayed request returns the identical
// result (usually from cache).
func (c *Client) Schedule(ctx context.Context, job wire.Job) (wire.Result, error) {
	body, err := json.Marshal(job)
	if err != nil {
		return wire.Result{}, fmt.Errorf("client: %w", err)
	}
	var res wire.Result
	// A scheduling failure (infeasible deadline, …) arrives as 422 with
	// a result body; treat it as a result, not an error.
	err = c.doRetry(ctx, http.MethodPost, "/v1/schedule", jobKey(body), body, &res)
	var se *StatusError
	if errors.As(err, &se) && se.Code == http.StatusUnprocessableEntity {
		if jerr := json.Unmarshal(se.Body, &res); jerr == nil {
			return res, nil
		}
	}
	return res, err
}

// Submit enqueues one async job: POST /v1/jobs with retry. The returned
// status carries the job's content-addressed ID for polling.
func (c *Client) Submit(ctx context.Context, job wire.Job) (wire.JobStatus, error) {
	body, err := json.Marshal(job)
	if err != nil {
		return wire.JobStatus{}, fmt.Errorf("client: %w", err)
	}
	var st wire.JobStatus
	err = c.doRetry(ctx, http.MethodPost, "/v1/jobs", jobKey(body), body, &st)
	return st, err
}

// Status polls one job: GET /v1/jobs/{id} with retry. A 404 (unknown or
// aged-out job) returns a *StatusError with Code 404; Do turns that
// into a resubmission.
func (c *Client) Status(ctx context.Context, id string) (wire.JobStatus, error) {
	var st wire.JobStatus
	err := c.doRetry(ctx, http.MethodGet, "/v1/jobs/"+id, id, nil, &st)
	return st, err
}

// Abort cancels one job: DELETE /v1/jobs/{id} with retry (idempotent —
// aborting a terminal job reports its state unchanged).
func (c *Client) Abort(ctx context.Context, id string) (wire.JobStatus, error) {
	var st wire.JobStatus
	err := c.doRetry(ctx, http.MethodDelete, "/v1/jobs/"+id, id, nil, &st)
	return st, err
}

// Ready fetches the readiness verdict: GET /readyz. No retry beyond the
// standard discipline — note a draining server answers 503, which
// doRetry will wait out; callers probing state should bound ctx.
func (c *Client) Ready(ctx context.Context) (wire.Ready, error) {
	var rep wire.Ready
	err := c.doRetry(ctx, http.MethodGet, "/readyz", "readyz", nil, &rep)
	// A draining server's 503 still carries the verdict body.
	var se *StatusError
	if errors.As(err, &se) && se.Code == http.StatusServiceUnavailable {
		if jerr := json.Unmarshal(se.Body, &rep); jerr == nil && rep.Status != "" {
			return rep, nil
		}
	}
	return rep, err
}

// IsNotFound reports whether err is a 404 StatusError.
func IsNotFound(err error) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Code == http.StatusNotFound
}

// Do runs one job end to end through the async API: submit, poll until
// terminal, return the result line the stream endpoint would have
// produced. Survives everything the retry discipline covers, plus the
// two async-specific hazards: a job that ages out of retention between
// polls is resubmitted (content addressing makes that safe and cheap —
// the server answers from cache), and expired/aborted terminals are
// returned as their retryable wire codes for the caller to decide.
func (c *Client) Do(ctx context.Context, job wire.Job) (wire.Result, error) {
	st, err := c.Submit(ctx, job)
	if err != nil {
		return wire.Result{}, err
	}
	poll := c.cfg.PollInterval
	for {
		switch st.State {
		case wire.StateDone:
			if st.Result == nil {
				return wire.Result{}, fmt.Errorf("client: job %s done without result", st.ID)
			}
			res := *st.Result
			res.Name = job.Name
			return res, nil
		case wire.StateExpired:
			return wire.Result{Name: job.Name, Error: st.Error, Code: wire.CodeExpired}, nil
		case wire.StateAborted:
			return wire.Result{Name: job.Name, Error: st.Error, Code: wire.CodeAborted}, nil
		}
		if err := sleep(ctx, poll); err != nil {
			return wire.Result{}, fmt.Errorf("client: %w", err)
		}
		if poll *= 2; poll > c.cfg.MaxBackoff {
			poll = c.cfg.MaxBackoff
		}
		next, err := c.Status(ctx, st.ID)
		if IsNotFound(err) {
			// Finished and pruned between polls (or lost to a restart
			// with no persistent queue). The ID is the content address,
			// so resubmitting coalesces or replays — never double-runs.
			c.resubmits.Add(1)
			next, err = c.Submit(ctx, job)
		}
		if err != nil {
			return wire.Result{}, err
		}
		st = next
	}
}

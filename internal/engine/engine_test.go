package engine

import (
	"errors"
	"testing"

	"repro/internal/battery"
	"repro/internal/core"
	"repro/internal/taskgraph"
)

// paperJobs builds the six paper (graph, deadline) cells under the given
// strategy.
func paperJobs(strategy string) []Job {
	var jobs []Job
	for _, d := range taskgraph.G2Deadlines {
		jobs = append(jobs, Job{Name: "g2", Graph: taskgraph.G2(), Deadline: d, Strategy: strategy})
	}
	for _, d := range taskgraph.G3Deadlines {
		jobs = append(jobs, Job{Name: "g3", Graph: taskgraph.G3(), Deadline: d, Strategy: strategy})
	}
	return jobs
}

// TestRunBatchMatchesDirectRuns: batch results must equal running each
// job alone through core, for every worker count.
func TestRunBatchMatchesDirectRuns(t *testing.T) {
	jobs := paperJobs(StrategyIterative)
	want := make([]*core.Result, len(jobs))
	for i, j := range jobs {
		s, err := core.New(j.Graph, j.Deadline, j.Options)
		if err != nil {
			t.Fatal(err)
		}
		want[i], err = s.Run()
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{1, 2, 8} {
		results := RunBatch(jobs, workers)
		if len(results) != len(jobs) {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(results), len(jobs))
		}
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("workers=%d job %d: %v", workers, i, r.Err)
			}
			if r.Index != i || r.Name != jobs[i].Name || r.Strategy != StrategyIterative {
				t.Fatalf("workers=%d job %d: bad echo %+v", workers, i, r)
			}
			if r.Cost != want[i].Cost || r.Duration != want[i].Duration || r.Iterations != want[i].Iterations {
				t.Fatalf("workers=%d job %d: cost/duration/iterations %v/%v/%d, want %v/%v/%d",
					workers, i, r.Cost, r.Duration, r.Iterations, want[i].Cost, want[i].Duration, want[i].Iterations)
			}
			if err := r.Schedule.ValidateDeadline(jobs[i].Graph, jobs[i].Deadline); err != nil {
				t.Fatalf("workers=%d job %d: %v", workers, i, err)
			}
		}
	}
}

// TestRunBatchAllStrategies: every strategy produces a deadline-legal
// schedule on G3 at the paper deadline.
func TestRunBatchAllStrategies(t *testing.T) {
	g := taskgraph.G3()
	var jobs []Job
	for _, s := range Strategies() {
		jobs = append(jobs, Job{Name: s, Graph: g, Deadline: taskgraph.G3Deadline, Strategy: s})
	}
	for i, r := range RunBatch(jobs, 4) {
		if r.Err != nil {
			t.Fatalf("%s: %v", jobs[i].Strategy, r.Err)
		}
		if err := r.Schedule.ValidateDeadline(g, taskgraph.G3Deadline); err != nil {
			t.Fatalf("%s: %v", jobs[i].Strategy, err)
		}
		if r.Cost <= 0 || r.Duration <= 0 || r.Energy <= 0 {
			t.Fatalf("%s: non-positive stats %+v", jobs[i].Strategy, r)
		}
		if jobs[i].Strategy == StrategyWithIdle && r.Idle == nil {
			t.Fatalf("withidle: missing idle plan")
		}
	}
}

// TestRunBatchPerJobErrors: a bad job yields an error in its slot and
// leaves the rest of the batch intact.
func TestRunBatchPerJobErrors(t *testing.T) {
	g := taskgraph.G3()
	jobs := []Job{
		{Graph: g, Deadline: taskgraph.G3Deadline},
		{Graph: nil, Deadline: 100},
		{Graph: g, Deadline: 1}, // infeasible
		{Graph: g, Deadline: taskgraph.G3Deadline, Strategy: "no-such-algo"},
		{Graph: g, Deadline: taskgraph.G3Deadline, Strategy: "Multi-Start"}, // alias, case-insensitive
	}
	results := RunBatch(jobs, 3)
	if results[0].Err != nil || results[4].Err != nil {
		t.Fatalf("good jobs failed: %v / %v", results[0].Err, results[4].Err)
	}
	if !errors.Is(results[1].Err, ErrNilGraph) {
		t.Fatalf("nil graph: got %v", results[1].Err)
	}
	if !errors.Is(results[2].Err, core.ErrDeadlineInfeasible) {
		t.Fatalf("infeasible: got %v", results[2].Err)
	}
	if results[3].Err == nil || results[3].Schedule != nil {
		t.Fatalf("unknown strategy: got %+v", results[3])
	}
	if results[4].Strategy != StrategyMultiStart {
		t.Fatalf("alias not canonicalized: %q", results[4].Strategy)
	}
}

// panicModel is a battery model that panics, to prove job isolation.
type panicModel struct{}

func (panicModel) ChargeLost(battery.Profile, float64) float64 { panic("boom") }
func (panicModel) Name() string                                { return "panic" }

// TestRunBatchRecoversPanics: a panicking model fails only its own job.
func TestRunBatchRecoversPanics(t *testing.T) {
	g := taskgraph.G3()
	jobs := []Job{
		{Graph: g, Deadline: taskgraph.G3Deadline, Options: core.Options{Model: panicModel{}}},
		{Graph: g, Deadline: taskgraph.G3Deadline},
	}
	results := RunBatch(jobs, 2)
	if results[0].Err == nil {
		t.Fatal("panicking job should fail")
	}
	if results[1].Err != nil {
		t.Fatalf("sibling job failed: %v", results[1].Err)
	}
}

// TestRunBatchEmpty: an empty batch returns an empty, non-nil slice path
// without spinning workers.
func TestRunBatchEmpty(t *testing.T) {
	if got := RunBatch(nil, 8); len(got) != 0 {
		t.Fatalf("want empty, got %d", len(got))
	}
}

// TestCanonicalStrategy covers the alias table and its error path.
func TestCanonicalStrategy(t *testing.T) {
	for in, want := range map[string]string{
		"":            StrategyIterative,
		"  Iterative": StrategyIterative,
		"multi-start": StrategyMultiStart,
		"RVDP":        StrategyRVDP,
		"idle":        StrategyWithIdle,
	} {
		got, err := CanonicalStrategy(in)
		if err != nil || got != want {
			t.Fatalf("CanonicalStrategy(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	if _, err := CanonicalStrategy("exhaustive"); err == nil {
		t.Fatal("want error for unknown strategy")
	}
}

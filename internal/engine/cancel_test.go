package engine

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/battery"
	"repro/internal/core"
	"repro/internal/taskgraph"
)

// blockingModel is a battery model that parks the first ChargeLost call
// on a channel: the test learns exactly when a job is mid-computation
// (started closes) and decides when it may proceed (release). Every
// call delegates to the real Rakhmatov model, so jobs that complete
// produce real, comparable results.
type blockingModel struct {
	started chan struct{}
	release chan struct{}
	once    sync.Once
	inner   battery.Model
}

func newBlockingModel() *blockingModel {
	return &blockingModel{
		started: make(chan struct{}),
		release: make(chan struct{}),
		inner:   battery.NewRakhmatov(battery.DefaultBeta),
	}
}

func (m *blockingModel) ChargeLost(p battery.Profile, at float64) float64 {
	m.once.Do(func() {
		close(m.started)
		<-m.release
	})
	return m.inner.ChargeLost(p, at)
}

func (m *blockingModel) Name() string { return "blocking-test-model" }

// TestRunBatchContextCancelMidBatch is the cancellation contract in one
// scenario: with one worker, job 0 completes, job 1 blocks mid-search,
// and jobs 2+ wait their turn. Canceling then releasing the block must
// (a) return promptly, (b) keep job 0's result bit-identical to an
// uncancelled run's, (c) mark the mid-flight job 1 ErrCanceled, and
// (d) mark every unstarted job ErrCanceled without running it.
func TestRunBatchContextCancelMidBatch(t *testing.T) {
	model := newBlockingModel()
	jobs := []Job{
		{Name: "done", Graph: taskgraph.G2(), Deadline: 75},
		{Name: "mid-flight", Graph: taskgraph.G3(), Deadline: 230, Options: core.Options{Model: model}},
		{Name: "unstarted-1", Graph: taskgraph.G3(), Deadline: 230},
		{Name: "unstarted-2", Graph: taskgraph.G2(), Deadline: 55},
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	e := Engine{Workers: 1}
	resc := make(chan []Result, 1)
	go func() { resc <- e.RunBatchContext(ctx, jobs) }()

	// Job 1 signals it is inside ChargeLost — job 0 is already done
	// (one worker, in dispatch order) and jobs 2+ have not started.
	select {
	case <-model.started:
	case <-time.After(10 * time.Second):
		t.Fatal("job 1 never reached the battery model")
	}
	cancel()
	close(model.release)

	var results []Result
	select {
	case results = <-resc:
	case <-time.After(10 * time.Second):
		t.Fatal("RunBatchContext did not return promptly after cancel")
	}

	// (b) The completed job is exactly what an uncancelled run produces.
	want := RunBatch(jobs[:1], 1)[0]
	if results[0].Err != nil {
		t.Fatalf("completed job reported error %v", results[0].Err)
	}
	if !reflect.DeepEqual(want, results[0]) {
		t.Fatalf("completed job differs from uncancelled run:\nwant %+v\ngot  %+v", want, results[0])
	}

	// (c) and (d): everything else is ErrCanceled, with index and name
	// preserved so wire.Results can still line the batch up.
	for i := 1; i < len(results); i++ {
		if !errors.Is(results[i].Err, ErrCanceled) {
			t.Fatalf("job %d err = %v, want ErrCanceled", i, results[i].Err)
		}
		if results[i].Schedule != nil {
			t.Fatalf("job %d carries a schedule despite cancellation", i)
		}
		if results[i].Index != i || results[i].Name != jobs[i].Name {
			t.Fatalf("job %d lost its identity: %+v", i, results[i])
		}
	}
}

// TestRunBatchContextLiveCtxIdentical: with a context that never fires,
// RunBatchContext is RunBatch — byte-for-byte, for a mixed batch.
func TestRunBatchContextLiveCtxIdentical(t *testing.T) {
	jobs := []Job{
		{Name: "a", Graph: taskgraph.G3(), Deadline: 230},
		{Name: "ms", Graph: taskgraph.G2(), Deadline: 55, Strategy: "multistart", MultiStart: core.MultiStartOptions{Restarts: 4, Seed: 7}},
		{Name: "rv", Graph: taskgraph.G2(), Deadline: 75, Strategy: "rv-dp"},
		{Name: "bad", Graph: taskgraph.G2(), Deadline: 1},
	}
	want := RunBatch(jobs, 2)
	got := RunBatchContext(context.Background(), jobs, 2)
	for i := range want {
		if !reflect.DeepEqual(describeResult(want[i]), describeResult(got[i])) {
			t.Fatalf("job %d differs:\nwant %+v\ngot  %+v", i, want[i], got[i])
		}
	}
}

// describeResult normalizes error identity (fresh-but-equal error
// values) for comparison.
func describeResult(r Result) Result {
	if r.Err != nil {
		r.Err = errors.New(r.Err.Error())
	}
	return r
}

// TestJobTimeout: a per-job Timeout aborts only that job — it reports
// ErrCanceled with the deadline cause while the rest of the batch is
// untouched.
func TestJobTimeout(t *testing.T) {
	model := newBlockingModel()
	jobs := []Job{
		{Name: "slow", Graph: taskgraph.G3(), Deadline: 230, Options: core.Options{Model: model}, Timeout: 20 * time.Millisecond},
		{Name: "fine", Graph: taskgraph.G2(), Deadline: 75},
	}
	e := Engine{Workers: 1}
	resc := make(chan []Result, 1)
	go func() { resc <- e.RunBatchContext(context.Background(), jobs) }()

	select {
	case <-model.started:
	case <-time.After(10 * time.Second):
		t.Fatal("slow job never reached the battery model")
	}
	// Hold the job well past its 20ms budget, then let it observe the
	// expired context.
	time.Sleep(50 * time.Millisecond)
	close(model.release)

	var results []Result
	select {
	case results = <-resc:
	case <-time.After(10 * time.Second):
		t.Fatal("batch did not finish")
	}
	if !errors.Is(results[0].Err, ErrCanceled) {
		t.Fatalf("timed-out job err = %v, want ErrCanceled", results[0].Err)
	}
	if !strings.Contains(results[0].Err.Error(), "deadline") {
		t.Fatalf("timeout error should carry the deadline cause, got %q", results[0].Err)
	}
	if results[1].Err != nil || results[1].Schedule == nil {
		t.Fatalf("untimed job must complete normally: %+v", results[1])
	}
}

package engine

import (
	"sync"

	"repro/internal/core"
	"repro/internal/taskgraph"
)

// baseKey identifies the deadline-independent scheduler state a job
// needs: the graph (by identity — batch callers submit the same *Graph
// when they mean the same graph) and every Options field that feeds
// core.NewBase, at canonical defaults so a zero field and its explicit
// default share a base. The battery selection is keyed by its canonical
// spec bytes, exactly as the content-addressed cache hashes it.
type baseKey struct {
	graph               *taskgraph.Graph
	spec                string
	initialOrder        core.InitialWeight
	maxIterations       int
	factors             core.FactorSet
	windows             core.WindowPolicy
	dpfColumns          core.DPFColumnRule
	disableResequencing bool
	recordTrace         bool
	parallel            bool
	approx              float64
}

type baseEntry struct {
	once sync.Once
	base *core.SchedulerBase
	err  error
}

// baseCache deduplicates core.NewBase work across the jobs of one batch:
// deadline sweeps (many deadlines over one graph and option set) are the
// common batch shape, and everything but the deadline — battery model
// resolution, flat matrices, the Energy Vector, reachability bitsets,
// candidate pruning, lower-bound analysis — is identical across them.
// Construction runs inside the requesting worker under a per-key
// sync.Once, so distinct graphs still build in parallel while a sweep's
// jobs share one build.
type baseCache struct {
	mu sync.Mutex
	m  map[baseKey]*baseEntry
}

func newBaseCache() *baseCache { return &baseCache{m: make(map[baseKey]*baseEntry)} }

// get returns the shared SchedulerBase for (g, opt), building it at most
// once per batch. Jobs carrying an opaque Options.Model have no
// canonical identity to group on and fall back to a private build.
func (c *baseCache) get(g *taskgraph.Graph, opt core.Options) (*core.SchedulerBase, error) {
	spec, ok := opt.BatterySpec()
	if !ok {
		return core.NewBase(g, opt)
	}
	o := opt.Canonical()
	k := baseKey{
		graph:               g,
		spec:                string(spec.AppendCanonical(nil)),
		initialOrder:        o.InitialOrder,
		maxIterations:       o.MaxIterations,
		factors:             o.Factors,
		windows:             o.Windows,
		dpfColumns:          o.DPFColumns,
		disableResequencing: o.DisableResequencing,
		recordTrace:         o.RecordTrace,
		parallel:            o.Parallel,
		approx:              o.Approx,
	}
	c.mu.Lock()
	ent := c.m[k]
	if ent == nil {
		ent = &baseEntry{}
		c.m[k] = ent
	}
	c.mu.Unlock()
	ent.once.Do(func() {
		ent.base, ent.err = core.NewBase(g, opt)
	})
	return ent.base, ent.err
}

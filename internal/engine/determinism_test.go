package engine

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/taskgraph"
)

// encodeBatch serializes a batch result the way cmd/battbatch does, so
// byte equality here is byte equality on the wire.
func encodeBatch(t *testing.T, results []Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, r := range results {
		line := map[string]any{
			"index":    r.Index,
			"name":     r.Name,
			"strategy": r.Strategy,
		}
		if r.Err != nil {
			line["error"] = r.Err.Error()
		} else {
			line["cost"] = r.Cost
			line["duration"] = r.Duration
			line["energy"] = r.Energy
			line["order"] = r.Schedule.Order
			line["assignment"] = r.Schedule.Assignment
		}
		if err := enc.Encode(line); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestBatchDeterministic: the same batch must serialize byte-identically
// across repeated runs and across worker counts — including multi-start
// jobs whose restarts run concurrently. Run under -race this also proves
// the shared-Scheduler fan-out is race-free.
func TestBatchDeterministic(t *testing.T) {
	var jobs []Job
	for _, strategy := range []string{StrategyIterative, StrategyMultiStart, StrategyWithIdle, StrategyRVDP} {
		for _, d := range taskgraph.G2Deadlines {
			jobs = append(jobs, Job{Name: "g2", Graph: taskgraph.G2(), Deadline: d, Strategy: strategy,
				MultiStart: core.MultiStartOptions{Restarts: 5, Seed: 3}})
		}
		for _, d := range taskgraph.G3Deadlines {
			jobs = append(jobs, Job{Name: "g3", Graph: taskgraph.G3(), Deadline: d, Strategy: strategy,
				MultiStart: core.MultiStartOptions{Restarts: 5, Seed: 3}})
		}
	}
	// Include a failing job: its error text must be stable too.
	jobs = append(jobs, Job{Name: "bad", Graph: taskgraph.G3(), Deadline: 1})

	ref := encodeBatch(t, RunBatch(jobs, 1))
	for _, workers := range []int{1, 2, 4, 16} {
		for rep := 0; rep < 2; rep++ {
			got := encodeBatch(t, RunBatch(jobs, workers))
			if !bytes.Equal(got, ref) {
				t.Fatalf("workers=%d rep=%d: batch output differs from sequential reference\nref: %s\ngot: %s",
					workers, rep, ref, got)
			}
		}
	}
}

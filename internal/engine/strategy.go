package engine

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/sched"
)

// Canonical strategy names, matching cmd/battsched's -algo vocabulary
// plus the multi-start and recovery-rest extensions.
const (
	// StrategyIterative is the paper's iterative algorithm (default).
	StrategyIterative = "iterative"
	// StrategyMultiStart adds seeded random restarts, run concurrently.
	StrategyMultiStart = "multistart"
	// StrategyWithIdle runs the iterative algorithm and then spends the
	// leftover deadline slack as recovery rest.
	StrategyWithIdle = "withidle"
	// StrategyRVDP is the reference-[1] baseline: exact minimum-energy
	// design points (dynamic program) + Equation-5 greedy sequencing.
	StrategyRVDP = "rv-dp"
	// StrategyChowdhury is the reference-[7]-style slack-scaling
	// heuristic.
	StrategyChowdhury = "chowdhury"
	// StrategyAllFastest runs everything at the fastest design point.
	StrategyAllFastest = "all-fastest"
	// StrategyLowestPower is the deadline-aware lowest-power strawman.
	StrategyLowestPower = "lowest-power"
)

// strategyAliases maps every accepted spelling to its canonical name.
var strategyAliases = map[string]string{
	"":                  StrategyIterative,
	StrategyIterative:   StrategyIterative,
	StrategyMultiStart:  StrategyMultiStart,
	"multi-start":       StrategyMultiStart,
	StrategyWithIdle:    StrategyWithIdle,
	"with-idle":         StrategyWithIdle,
	"idle":              StrategyWithIdle,
	StrategyRVDP:        StrategyRVDP,
	"rvdp":              StrategyRVDP,
	StrategyChowdhury:   StrategyChowdhury,
	StrategyAllFastest:  StrategyAllFastest,
	StrategyLowestPower: StrategyLowestPower,
}

// Strategies returns the canonical strategy names, sorted.
func Strategies() []string {
	set := map[string]bool{}
	for _, v := range strategyAliases {
		set[v] = true
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// CanonicalStrategy normalizes a strategy name ("" means iterative) or
// returns an error naming the accepted values.
func CanonicalStrategy(name string) (string, error) {
	if s, ok := strategyAliases[strings.ToLower(strings.TrimSpace(name))]; ok {
		return s, nil
	}
	return "", fmt.Errorf("engine: unknown strategy %q (accepted: %s)", name, strings.Join(Strategies(), " | "))
}

// execute runs the canonical strategy for a job, filling res.
// restartWorkers is the default fan-out for multistart jobs that did
// not pin MultiStart.Workers themselves. ctx cancels the iterative
// strategies mid-search; the closed-form baselines run to completion
// (they are polynomial passes, orders of magnitude below one iterative
// window sweep) after an up-front ctx check.
func (e *Engine) execute(ctx context.Context, strategy string, job Job, res *Result, restartWorkers int, bases *baseCache) error {
	switch strategy {
	case StrategyIterative, StrategyMultiStart, StrategyWithIdle:
		// Batches routinely sweep one graph across many deadlines; the
		// deadline-independent construction is shared through the batch's
		// base cache, and the per-deadline mint below is O(1). The minted
		// scheduler is bit-identical to core.New's.
		base, err := bases.get(job.Graph, job.Options)
		if err != nil {
			return err
		}
		s, err := base.Scheduler(job.Deadline)
		if err != nil {
			return err
		}
		var r *core.Result
		switch strategy {
		case StrategyIterative:
			r, err = s.RunContext(ctx)
		case StrategyMultiStart:
			ms := job.MultiStart
			if ms.Workers == 0 {
				ms.Workers = restartWorkers
			}
			r, err = core.RunMultiStartContext(ctx, s, ms)
		case StrategyWithIdle:
			r, err = s.RunContext(ctx)
			if err == nil {
				res.Idle, err = core.OptimizeIdle(job.Graph, r.Schedule, job.Deadline, s.Model(), 0)
			}
		}
		if err != nil {
			return err
		}
		res.Schedule = r.Schedule
		res.Cost = r.Cost
		res.Duration = r.Duration
		res.Energy = r.Energy
		res.Iterations = r.Iterations
		return nil
	case StrategyRVDP, StrategyChowdhury, StrategyAllFastest, StrategyLowestPower:
		if err := ctx.Err(); err != nil {
			return err
		}
		// Resolve the battery spec up front so an invalid one is this
		// job's error (not a panic) and the costing below never fails.
		model, err := job.Options.ResolveModel()
		if err != nil {
			return err
		}
		var s *sched.Schedule
		switch strategy {
		case StrategyRVDP:
			s, err = baseline.RakhmatovSchedule(job.Graph, job.Deadline)
		case StrategyChowdhury:
			s, err = baseline.ChowdhurySchedule(job.Graph, job.Deadline, nil)
		case StrategyAllFastest:
			s, err = baseline.AllFastest(job.Graph, job.Deadline)
		case StrategyLowestPower:
			s, err = baseline.LowestPowerFeasible(job.Graph, job.Deadline)
		}
		if err != nil {
			return err
		}
		stats := s.Summarize(job.Graph, model, job.Deadline)
		res.Schedule = s
		res.Cost = stats.Cost
		res.Duration = stats.Duration
		res.Energy = stats.Energy
		return nil
	default:
		return fmt.Errorf("engine: unhandled strategy %q", strategy)
	}
}

package engine

import (
	"math"
	"testing"

	"repro/internal/battery"
	"repro/internal/core"
	"repro/internal/taskgraph"
)

// TestBaseCacheSharesSweeps proves the batch-level base sharing is
// result-neutral: a deadline sweep run as one batch — where every job
// shares one lazily-built SchedulerBase — is bit-identical to running
// each job through a fresh core.New, across strategies and worker
// counts.
func TestBaseCacheSharesSweeps(t *testing.T) {
	g := taskgraph.G3()
	lo, hi := g.MinTotalTime(), g.MaxTotalTime()
	var jobs []Job
	for i := 0; i <= 10; i++ {
		d := lo + float64(i)/10*(hi-lo)
		jobs = append(jobs,
			Job{Graph: g, Deadline: d, Strategy: StrategyIterative},
			Job{Graph: g, Deadline: d, Strategy: StrategyWithIdle},
			Job{Graph: g, Deadline: d, Strategy: StrategyMultiStart,
				MultiStart: core.MultiStartOptions{Restarts: 2, Seed: 7}},
		)
	}
	want := make([]Result, len(jobs))
	for i, j := range jobs {
		e := Engine{Workers: 1}
		// A fresh single-job batch gets a fresh cache: no sharing at all.
		want[i] = e.RunBatch([]Job{j})[0]
	}
	for _, workers := range []int{1, 4} {
		for i, r := range RunBatch(jobs, workers) {
			if (r.Err == nil) != (want[i].Err == nil) {
				t.Fatalf("workers=%d job %d: err %v, want %v", workers, i, r.Err, want[i].Err)
			}
			if r.Err != nil {
				continue
			}
			if math.Float64bits(r.Cost) != math.Float64bits(want[i].Cost) ||
				math.Float64bits(r.Duration) != math.Float64bits(want[i].Duration) ||
				math.Float64bits(r.Energy) != math.Float64bits(want[i].Energy) ||
				r.Iterations != want[i].Iterations {
				t.Fatalf("workers=%d job %d (%s d=%g): shared-base result %v/%v/%v/%d != solo %v/%v/%v/%d",
					workers, i, jobs[i].Strategy, jobs[i].Deadline,
					r.Cost, r.Duration, r.Energy, r.Iterations,
					want[i].Cost, want[i].Duration, want[i].Energy, want[i].Iterations)
			}
		}
	}
}

// TestBaseCacheDeduplicates checks, white-box, that the cache hands the
// same *SchedulerBase to every job of a sweep, distinct bases to
// distinct (graph, options) groups, and a private build to opaque-Model
// jobs.
func TestBaseCacheDeduplicates(t *testing.T) {
	g2, g3 := taskgraph.G2(), taskgraph.G3()
	c := newBaseCache()
	b1, err := c.get(g3, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if b2, _ := c.get(g3, core.Options{}); b2 != b1 {
		t.Fatal("same graph + options must share one base")
	}
	// A spelled-out default and the zero value canonicalize together.
	if b2, _ := c.get(g3, core.Options{Beta: battery.DefaultBeta}); b2 != b1 {
		t.Fatal("explicit default beta must share the zero-options base")
	}
	if b2, _ := c.get(g2, core.Options{}); b2 == b1 {
		t.Fatal("distinct graphs must not share a base")
	}
	if b2, _ := c.get(g3, core.Options{Approx: 0.5}); b2 == b1 {
		t.Fatal("distinct approx settings must not share a base")
	}
	if b2, _ := c.get(g3, core.Options{Beta: 0.35}); b2 == b1 {
		t.Fatal("distinct battery configurations must not share a base")
	}
	// Opaque models build privately — and never collide with spec jobs.
	m := battery.NewRakhmatov(battery.DefaultBeta)
	bm1, err := c.get(g3, core.Options{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	bm2, err := c.get(g3, core.Options{Model: m})
	if err != nil {
		t.Fatal(err)
	}
	if bm1 == bm2 || bm1 == b1 {
		t.Fatal("opaque-model jobs must get private bases")
	}
	// The fallback still works end to end.
	jobs := []Job{{Graph: g3, Deadline: taskgraph.G3Deadline,
		Options: core.Options{Model: m}}}
	if r := RunBatch(jobs, 1)[0]; r.Err != nil {
		t.Fatalf("opaque-model job: %v", r.Err)
	}
}

// Package engine executes batches of scheduling jobs over a bounded
// worker pool. It is the throughput layer of the reproduction: the
// paper's algorithm schedules one graph against one deadline, while a
// production host receives a stream of independent (graph, deadline,
// strategy) jobs and wants them finished as fast as the cores allow.
//
// Jobs are independent, so the engine fans them out across Workers
// goroutines; results come back in input order with per-job errors —
// one malformed or infeasible job never fails the batch. Inside a
// multi-start job the restarts themselves run concurrently (see
// core.MultiStartOptions.Workers); when a job leaves that fan-out
// unset the engine splits its worker bound between the two levels, so
// total concurrency stays near the bound for any batch shape.
package engine

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/taskgraph"
)

// Job is one scheduling request: a graph, a deadline and a strategy.
type Job struct {
	// Name optionally labels the job; it is echoed in the Result.
	Name string
	// Graph is the task graph to schedule (required).
	Graph *taskgraph.Graph
	// Deadline is the completion deadline in minutes (required, > 0).
	Deadline float64
	// Strategy selects the algorithm; "" means StrategyIterative. See
	// Strategies for the accepted names.
	Strategy string
	// Options configures the iterative strategies (the zero value is
	// the paper's configuration) and supplies the battery model used
	// to cost baseline schedules.
	Options core.Options
	// MultiStart configures StrategyMultiStart. A zero Workers shares
	// the engine's bound with the job level (a lone job fans its
	// restarts over the whole pool; a full batch keeps them
	// sequential), so total concurrency never exceeds roughly the
	// engine bound.
	MultiStart core.MultiStartOptions
}

// Result is the outcome of one Job. Exactly one of Schedule/Err is nil.
type Result struct {
	// Index is the job's position in the input batch.
	Index int
	// Name echoes Job.Name.
	Name string
	// Strategy is the canonical strategy name that ran.
	Strategy string
	// Schedule is the schedule found (nil on error).
	Schedule *sched.Schedule
	// Cost is sigma at completion under the job's battery model, mA·min.
	Cost float64
	// Duration is the schedule completion time, minutes.
	Duration float64
	// Energy is the delivered charge, mA·min.
	Energy float64
	// Iterations is the outer-loop iteration count (iterative
	// strategies only).
	Iterations int
	// Idle is the recovery-rest plan (StrategyWithIdle only).
	Idle *core.IdlePlan
	// Err is the per-job failure, nil on success.
	Err error
}

// Engine runs batches over a bounded worker pool. The zero value is
// ready to use and bounds the pool at GOMAXPROCS.
type Engine struct {
	// Workers bounds concurrent jobs; 0 means GOMAXPROCS(0).
	Workers int
}

// ErrNilGraph is returned for jobs without a graph.
var ErrNilGraph = errors.New("engine: job has a nil graph")

// workers resolves the pool bound.
func (e *Engine) workers() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// RunBatch executes every job and returns one Result per job, in input
// order. Job failures (bad strategy, infeasible deadline, nil graph, a
// panicking model) land in Result.Err; RunBatch itself never fails.
func RunBatch(jobs []Job, workers int) []Result {
	e := Engine{Workers: workers}
	return e.RunBatch(jobs)
}

// RunBatch executes every job over the engine's pool and returns one
// Result per job, in input order.
func (e *Engine) RunBatch(jobs []Job) []Result {
	results := make([]Result, len(jobs))
	e.RunEach(len(jobs), func(i, restartWorkers int) {
		results[i] = e.runJob(i, jobs[i], restartWorkers)
	})
	return results
}

// RunEach runs fn(i, restartWorkers) for every i in [0, n) over the
// engine's bounded pool. It owns the pool arithmetic every batch runner
// must agree on — exported so the cached engine (internal/cache) shares
// it instead of copying it:
//
// Multistart jobs that did not pin their own restart fan-out share the
// engine bound with the job level — restartWorkers is bound/workers, so
// a lone job gets the whole pool for its restarts while a full batch
// keeps restarts sequential, and total concurrency stays ~bound instead
// of bound².
func (e *Engine) RunEach(n int, fn func(i, restartWorkers int)) {
	bound := e.workers()
	workers := bound
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	restartWorkers := bound / workers
	if restartWorkers < 1 {
		restartWorkers = 1
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i, restartWorkers)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// runJob executes one job, converting panics into per-job errors so a
// misbehaving custom battery model cannot take the batch down.
func (e *Engine) runJob(i int, job Job, restartWorkers int) (res Result) {
	res = Result{Index: i, Name: job.Name}
	defer func() {
		if r := recover(); r != nil {
			res.Err = fmt.Errorf("engine: job %d panicked: %v", i, r)
			res.Schedule = nil
		}
	}()
	strategy, err := CanonicalStrategy(job.Strategy)
	if err != nil {
		res.Err = err
		return res
	}
	res.Strategy = strategy
	if job.Graph == nil {
		res.Err = ErrNilGraph
		return res
	}
	res.Err = e.execute(strategy, job, &res, restartWorkers)
	if res.Err != nil {
		res.Schedule = nil
	}
	return res
}

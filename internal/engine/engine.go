// Package engine executes batches of scheduling jobs over a bounded
// worker pool. It is the throughput layer of the reproduction: the
// paper's algorithm schedules one graph against one deadline, while a
// production host receives a stream of independent (graph, deadline,
// strategy) jobs and wants them finished as fast as the cores allow.
//
// Jobs are independent, so the engine fans them out across Workers
// goroutines; results come back in input order with per-job errors —
// one malformed or infeasible job never fails the batch. Inside a
// multi-start job the restarts themselves run concurrently (see
// core.MultiStartOptions.Workers); when a job leaves that fan-out
// unset the engine splits its worker bound between the two levels, so
// total concurrency stays near the bound for any batch shape. Workers
// share nothing mutable: every run in core carries its own scratch
// arena (see internal/core's runScratch), so per-job results are
// bit-identical for every pool size.
//
//battlint:deterministic
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/taskgraph"
)

// Job is one scheduling request: a graph, a deadline and a strategy.
type Job struct {
	// Name optionally labels the job; it is echoed in the Result.
	Name string
	// Graph is the task graph to schedule (required).
	Graph *taskgraph.Graph
	// Deadline is the completion deadline in minutes (required, > 0).
	Deadline float64
	// Strategy selects the algorithm; "" means StrategyIterative. See
	// Strategies for the accepted names.
	Strategy string
	// Options configures the iterative strategies (the zero value is
	// the paper's configuration) and supplies the battery model used
	// to cost baseline schedules.
	Options core.Options
	// MultiStart configures StrategyMultiStart. A zero Workers shares
	// the engine's bound with the job level (a lone job fans its
	// restarts over the whole pool; a full batch keeps them
	// sequential), so total concurrency never exceeds roughly the
	// engine bound.
	MultiStart core.MultiStartOptions
	// Timeout bounds this job's computation once it starts (0 = none).
	// A job that exceeds it fails with ErrCanceled; jobs that finish in
	// time are unaffected, so Timeout is result-neutral for completed
	// work and excluded from cache keys.
	Timeout time.Duration
}

// Result is the outcome of one Job. Exactly one of Schedule/Err is nil.
type Result struct {
	// Index is the job's position in the input batch.
	Index int
	// Name echoes Job.Name.
	Name string
	// Strategy is the canonical strategy name that ran.
	Strategy string
	// Schedule is the schedule found (nil on error).
	Schedule *sched.Schedule
	// Cost is sigma at completion under the job's battery model, mA·min.
	Cost float64
	// Duration is the schedule completion time, minutes.
	Duration float64
	// Energy is the delivered charge, mA·min.
	Energy float64
	// Iterations is the outer-loop iteration count (iterative
	// strategies only).
	Iterations int
	// Idle is the recovery-rest plan (StrategyWithIdle only).
	Idle *core.IdlePlan
	// Err is the per-job failure, nil on success.
	Err error
}

// Engine runs batches over a bounded worker pool. The zero value is
// ready to use and bounds the pool at GOMAXPROCS.
type Engine struct {
	// Workers bounds concurrent jobs; 0 means GOMAXPROCS(0).
	Workers int
}

// ErrNilGraph is returned for jobs without a graph.
var ErrNilGraph = errors.New("engine: job has a nil graph")

// ErrCanceled marks a job that did not complete because its context was
// canceled or its Timeout fired — whether it never started or was
// aborted mid-search. Match it with errors.Is; the error text carries
// the underlying context error when the job was aborted mid-run, so a
// disconnect ("context canceled") and a timeout ("context deadline
// exceeded") stay distinguishable.
var ErrCanceled = errors.New("engine: job canceled")

// CanceledError wraps a context's cause under ErrCanceled — the one
// shape every layer reports cancellation in, so front ends can rely on
// errors.Is(err, ErrCanceled) and a stable message format.
func CanceledError(cause error) error {
	if cause == nil {
		return ErrCanceled
	}
	return fmt.Errorf("%w: %v", ErrCanceled, cause)
}

// isContextErr reports whether err came from a canceled or expired
// context (directly or wrapped).
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// workers resolves the pool bound.
func (e *Engine) workers() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// RunBatch executes every job and returns one Result per job, in input
// order. Job failures (bad strategy, infeasible deadline, nil graph, a
// panicking model) land in Result.Err; RunBatch itself never fails.
func RunBatch(jobs []Job, workers int) []Result {
	e := Engine{Workers: workers}
	return e.RunBatch(jobs)
}

// RunBatchContext is RunBatch with request-scoped cancellation; see
// Engine.RunBatchContext.
func RunBatchContext(ctx context.Context, jobs []Job, workers int) []Result {
	e := Engine{Workers: workers}
	return e.RunBatchContext(ctx, jobs)
}

// RunBatch executes every job over the engine's pool and returns one
// Result per job, in input order.
func (e *Engine) RunBatch(jobs []Job) []Result {
	return e.RunBatchContext(context.Background(), jobs)
}

// RunBatchContext executes the batch until done or ctx is canceled.
// Cancellation is cooperative and prompt: jobs not yet started are
// marked ErrCanceled without running, and in-flight iterative searches
// abort at their next window-evaluation check, also landing on
// ErrCanceled. Jobs that completed before the cancellation keep their
// results, bit-identical to an uncancelled run's — cancellation never
// changes what finished, only how much finishes.
func (e *Engine) RunBatchContext(ctx context.Context, jobs []Job) []Result {
	results := make([]Result, len(jobs))
	for i := range results {
		// Pre-mark every slot canceled; dispatched jobs overwrite
		// theirs (possibly with the same error, via their own ctx
		// check), so whatever the dispatcher never reached reports
		// ErrCanceled instead of a zero value.
		results[i] = Result{Index: i, Name: jobs[i].Name, Err: ErrCanceled}
	}
	bases := newBaseCache()
	e.RunEachContext(ctx, len(jobs), func(i, restartWorkers int) {
		results[i] = e.runJob(ctx, i, jobs[i], restartWorkers, bases)
	})
	return results
}

// RunEach runs fn(i, restartWorkers) for every i in [0, n) over the
// engine's bounded pool. It owns the pool arithmetic every batch runner
// must agree on — exported so the cached engine (internal/cache) shares
// it instead of copying it:
//
// Multistart jobs that did not pin their own restart fan-out share the
// engine bound with the job level — restartWorkers is bound/workers, so
// a lone job gets the whole pool for its restarts while a full batch
// keeps restarts sequential, and total concurrency stays ~bound instead
// of bound².
func (e *Engine) RunEach(n int, fn func(i, restartWorkers int)) {
	e.RunEachContext(context.Background(), n, fn)
}

// RunEachContext is RunEach with request-scoped cancellation: once ctx
// is done the dispatcher stops handing out indices, so fn never starts
// for the remaining i (the caller decides what an undispatched slot
// means — the batch runners mark it ErrCanceled). Indices already
// dispatched run fn to completion; fn observes the same ctx and is
// expected to cut its own work short.
func (e *Engine) RunEachContext(ctx context.Context, n int, fn func(i, restartWorkers int)) {
	bound := e.workers()
	workers := bound
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	restartWorkers := bound / workers
	if restartWorkers < 1 {
		restartWorkers = 1
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i, restartWorkers)
			}
		}()
	}
	done := ctx.Done()
dispatch:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-done:
			break dispatch
		}
	}
	close(idx)
	wg.Wait()
}

// runJob executes one job, converting panics into per-job errors so a
// misbehaving custom battery model cannot take the batch down, and
// context errors into ErrCanceled so front ends report cancellation
// distinctly from scheduling failures.
func (e *Engine) runJob(ctx context.Context, i int, job Job, restartWorkers int, bases *baseCache) (res Result) {
	res = Result{Index: i, Name: job.Name}
	defer func() {
		if r := recover(); r != nil {
			res.Err = fmt.Errorf("engine: job %d panicked: %v", i, r)
			res.Schedule = nil
		}
	}()
	if job.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, job.Timeout)
		defer cancel()
	}
	if err := ctx.Err(); err != nil {
		// Dispatched in the same instant the batch was canceled.
		res.Err = CanceledError(err)
		return res
	}
	strategy, err := CanonicalStrategy(job.Strategy)
	if err != nil {
		res.Err = err
		return res
	}
	res.Strategy = strategy
	if job.Graph == nil {
		res.Err = ErrNilGraph
		return res
	}
	res.Err = e.execute(ctx, strategy, job, &res, restartWorkers, bases)
	if res.Err != nil {
		if isContextErr(res.Err) {
			res.Err = CanceledError(res.Err)
		}
		res.Schedule = nil
	}
	return res
}

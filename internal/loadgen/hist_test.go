package loadgen

import (
	"sync"
	"testing"
	"time"
)

// TestBucketRoundTrip: every value lands in a bucket whose upper edge
// is ≥ the value and within the advertised ~3.2% relative resolution.
func TestBucketRoundTrip(t *testing.T) {
	values := []int64{0, 1, 5, 31, 32, 33, 63, 64, 100, 1000, 12345,
		1 << 20, (1 << 20) + 7, 1e9, 123456789012, 1<<62 + 12345}
	for _, v := range values {
		b := bucketOf(v)
		if b < 0 || b >= numBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range [0,%d)", v, b, numBuckets)
		}
		hi := bucketHigh(b)
		if hi < v {
			t.Fatalf("bucketHigh(bucketOf(%d)) = %d < value", v, hi)
		}
		if slack := hi - v; slack > v/subCount+1 {
			t.Fatalf("bucket for %d overshoots by %d (> %d)", v, slack, v/subCount+1)
		}
	}
	// Monotonic: larger values never map to earlier buckets.
	prev := -1
	for v := int64(0); v < 5000; v++ {
		b := bucketOf(v)
		if b < prev {
			t.Fatalf("bucketOf(%d) = %d < bucketOf(%d) = %d", v, b, v-1, prev)
		}
		prev = b
	}
}

// TestHistQuantiles: known uniform samples produce quantiles within the
// bucket resolution, and mean/max are exact.
func TestHistQuantiles(t *testing.T) {
	var h Hist
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Max(); got != 1000*time.Microsecond {
		t.Fatalf("max = %v", got)
	}
	if got := h.Mean(); got != 500500*time.Nanosecond {
		t.Fatalf("mean = %v, want 500.5µs", got)
	}
	check := func(q float64, want time.Duration) {
		got := h.Quantile(q)
		if got < want || got > want+want/subCount+time.Microsecond {
			t.Fatalf("q%.2f = %v, want within resolution above %v", q, got, want)
		}
	}
	check(0.50, 500*time.Microsecond)
	check(0.95, 950*time.Microsecond)
	check(0.99, 990*time.Microsecond)
	if got := h.Quantile(1); got != 1000*time.Microsecond {
		t.Fatalf("q1.0 = %v, want exact max", got)
	}
}

// TestHistEmptyAndNegative: the zero histogram reports zeros; negative
// samples clamp instead of corrupting state.
func TestHistEmptyAndNegative(t *testing.T) {
	var h Hist
	if h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not all-zero")
	}
	h.Observe(-time.Second)
	if h.Count() != 1 || h.Quantile(0.5) != 0 {
		t.Fatalf("negative sample mishandled: count=%d q50=%v", h.Count(), h.Quantile(0.5))
	}
}

// TestHistConcurrent: parallel observers lose nothing (the whole point
// of the atomic buckets).
func TestHistConcurrent(t *testing.T) {
	var h Hist
	const workers, each = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(time.Duration(w*each+i) * time.Nanosecond)
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*each {
		t.Fatalf("count = %d, want %d", got, workers*each)
	}
}

// JobSpec: the standard deterministic submission generator. Load runs
// must be reproducible (the repo's determinism culture extends to its
// test harnesses), so nothing here draws randomness — deadlines spread
// over the configured range by a golden-ratio low-discrepancy walk,
// priorities follow the weighted mix cyclically, and duplicates recur
// on a fixed stride. Distinct deadlines mean distinct content addresses
// (real work per submission); duplicate submissions exercise the
// queue's coalescing on purpose.
package loadgen

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/wire"
)

// PriorityWeight is one entry of a priority mix.
type PriorityWeight struct {
	Priority int `json:"priority"`
	Weight   int `json:"weight"`
}

// ParsePriorityMix parses battload's "-priorities" syntax: a comma list
// of priority:weight pairs, e.g. "0:7,5:2,9:1". Empty means everything
// at priority 0.
func ParsePriorityMix(s string) ([]PriorityWeight, error) {
	if strings.TrimSpace(s) == "" {
		return []PriorityWeight{{Priority: 0, Weight: 1}}, nil
	}
	var mix []PriorityWeight
	for _, part := range strings.Split(s, ",") {
		p, w, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("loadgen: priority mix entry %q is not priority:weight", part)
		}
		prio, err := strconv.Atoi(p)
		if err != nil || prio < 0 || prio > wire.MaxPriority {
			return nil, fmt.Errorf("loadgen: priority %q must be an integer in [0, %d]", p, wire.MaxPriority)
		}
		weight, err := strconv.Atoi(w)
		if err != nil || weight <= 0 {
			return nil, fmt.Errorf("loadgen: weight %q must be a positive integer", w)
		}
		mix = append(mix, PriorityWeight{Priority: prio, Weight: weight})
	}
	return mix, nil
}

// JobSpec builds the i-th submission deterministically.
type JobSpec struct {
	// Fixture names the built-in graph every job schedules (distinct
	// deadlines keep the work distinct).
	Fixture string
	// DeadlineMin/Max bound the deadline spread. Equal values pin every
	// job to one deadline (maximal coalescing).
	DeadlineMin, DeadlineMax float64
	// DupEvery, when ≥ 2, makes every DupEvery-th submission repeat its
	// predecessor's deadline — same content address, so it coalesces
	// server-side (possibly at a different priority, exercising the
	// raise-on-coalesce path). 0 or 1 disables.
	DupEvery int
	// Priorities is the weighted mix, applied cyclically; empty means
	// all priority 0.
	Priorities []PriorityWeight
	// TTLMS / TimeoutMS ride each job unchanged (0 omits the field).
	TTLMS, TimeoutMS int64
}

// golden is the fractional golden ratio: successive multiples mod 1 are
// the lowest-discrepancy sequence there is, so deadlines cover the
// range evenly at any submission count without a PRNG.
const golden = 0.6180339887498949

// Job builds submission i.
func (js JobSpec) Job(i int) wire.Job {
	di := i
	if js.DupEvery >= 2 && i%js.DupEvery == js.DupEvery-1 {
		di = i - 1 // repeat the predecessor's content
	}
	frac := math.Mod(float64(di)*golden, 1)
	deadline := js.DeadlineMin + (js.DeadlineMax-js.DeadlineMin)*frac
	// Quantize so a deadline's identity survives any float formatting
	// round trip exactly (canonical encoding hashes the bits).
	deadline = math.Round(deadline*1e6) / 1e6
	return wire.Job{
		Fixture:   js.Fixture,
		Deadline:  deadline,
		Priority:  js.priorityFor(i),
		TTLMS:     js.TTLMS,
		TimeoutMS: js.TimeoutMS,
	}
}

// priorityFor walks the weighted mix cyclically.
func (js JobSpec) priorityFor(i int) int {
	total := 0
	for _, pw := range js.Priorities {
		total += pw.Weight
	}
	if total <= 0 {
		return 0
	}
	slot := i % total
	for _, pw := range js.Priorities {
		if slot < pw.Weight {
			return pw.Priority
		}
		slot -= pw.Weight
	}
	return 0
}

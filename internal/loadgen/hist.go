// Latency histogram: log-bucketed (HDR-style) with lock-free atomic
// recording, so a thousand concurrent virtual clients can feed one
// shared histogram without contending on a mutex and without each
// holding its own sample slice. Quantiles come from the bucket walk;
// the sub-bucket resolution bounds the relative error at ~3%, which is
// far below run-to-run load-test noise.
package loadgen

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Bucket layout: values below 2^subBits land in their own unit bucket;
// above that, each power-of-two octave is split into 2^subBits linear
// sub-buckets, so a bucket's width is at most value/2^subBits (~3.1%
// relative resolution at subBits=5). int64 nanoseconds need at most
// 63-subBits octaves on top of the linear range.
const (
	subBits    = 5
	subCount   = 1 << subBits
	numBuckets = subCount + (63-subBits)*subCount
)

// Hist is a fixed-size concurrent latency histogram. The zero value is
// ready to use.
type Hist struct {
	counts [numBuckets]atomic.Uint64
	total  atomic.Uint64
	sum    atomic.Int64 // nanoseconds; load tests cannot overflow this (2^63 ns ≈ 292 years of accumulated latency)
	max    atomic.Int64
}

// bucketOf maps a non-negative duration (ns) to its bucket index.
func bucketOf(v int64) int {
	u := uint64(v)
	if u < subCount {
		return int(u)
	}
	// Keep subBits+1 significant bits: the leading 1 selects the octave
	// (how far the value was shifted down), the rest the sub-bucket.
	shift := bits.Len64(u) - (subBits + 1)
	sub := int(u>>uint(shift)) - subCount
	return subCount + shift*subCount + sub
}

// bucketHigh is the largest value mapping to bucket i — the value
// quantiles report, so estimates err on the conservative (higher) side.
func bucketHigh(i int) int64 {
	if i < subCount {
		return int64(i)
	}
	rest := i - subCount
	octave := rest / subCount // the shift bucketOf applied
	sub := rest % subCount
	lo := int64(subCount+sub) << uint(octave)
	width := int64(1) << uint(octave)
	return lo + width - 1
}

// Observe records one latency sample. Negative samples (clock weirdness
// under load) clamp to zero rather than corrupting a bucket index.
func (h *Hist) Observe(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)].Add(1)
	h.total.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
}

// Count reports how many samples were observed.
func (h *Hist) Count() uint64 { return h.total.Load() }

// Mean reports the exact arithmetic mean of the observed samples.
func (h *Hist) Mean() time.Duration {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(uint64(h.sum.Load()) / n)
}

// Max reports the largest observed sample exactly.
func (h *Hist) Max() time.Duration { return time.Duration(h.max.Load()) }

// Quantile reports the q-th quantile (q in [0,1]) as the upper edge of
// the bucket holding that rank; the true sample is within ~3% below the
// reported value. Concurrent Observe calls may or may not be counted.
func (h *Hist) Quantile(q float64) time.Duration {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total-1))
	var seen uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		seen += c
		if seen > rank {
			hi := bucketHigh(i)
			if m := h.max.Load(); hi > m {
				hi = m // never report past the true max
			}
			return time.Duration(hi)
		}
	}
	return h.Max()
}

// Summary condenses the histogram into the report shape.
func (h *Hist) Summary() LatencySummary {
	return LatencySummary{
		Count:  h.Count(),
		MeanMS: ms(h.Mean()),
		P50MS:  ms(h.Quantile(0.50)),
		P95MS:  ms(h.Quantile(0.95)),
		P99MS:  ms(h.Quantile(0.99)),
		MaxMS:  ms(h.Max()),
	}
}

// LatencySummary is the JSON form of one histogram: milliseconds as
// floats, because the snapshots are read by humans comparing runs.
type LatencySummary struct {
	Count  uint64  `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// ms converts a duration to float milliseconds with microsecond
// granularity — enough for load-test latencies, stable to diff.
func ms(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}

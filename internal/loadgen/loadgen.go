// Package loadgen is the load-generation and SLO-verification harness
// behind cmd/battload: it drives a live battschedd's async job API with
// a configurable fleet of virtual clients (closed-loop concurrency or
// open-loop arrival rate, mixed priorities, optional duplicate
// submissions to exercise coalescing), records latency histograms for
// the submit, poll and end-to-end phases, and verifies the serving
// contract under load — every accepted job reaches exactly one terminal
// state, none are lost, none complete twice.
//
// The harness is deliberately client-shaped: it talks to the server
// over real HTTP (no shortcuts through internal state), so what it
// measures is what a user sees, and what it verifies is the wire
// contract. Results condense into a Result that can be checked against
// an SLO, serialized as JSON, or emitted in `go test -bench` format for
// scripts/benchjson — the same snapshot pipeline the compute
// benchmarks use (BENCH_*.json).
package loadgen

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/wire"
)

// Mode selects how virtual clients consume job results.
type Mode string

const (
	// ModePoll submits then polls GET /v1/jobs/{id} until terminal —
	// the REST-idiomatic path, and the one that measures poll latency.
	ModePoll Mode = "poll"
	// ModeStream submits then blocks on GET /v1/jobs/{id}/stream — one
	// long-poll connection per job instead of a poll loop.
	ModeStream Mode = "stream"
)

// Config parameterizes one load run.
type Config struct {
	// BaseURL roots the target server, e.g. "http://127.0.0.1:8347".
	BaseURL string
	// Client is the HTTP client; nil builds one sized for Concurrency
	// (idle connection pool large enough that virtual clients do not
	// fight over two keep-alive sockets, the net/http default).
	Client *http.Client
	// Mode is poll (default) or stream.
	Mode Mode
	// Jobs is how many submissions the run makes in total. Required.
	Jobs int
	// Concurrency is the virtual-client fleet size. Required.
	Concurrency int
	// Rate, when positive, paces submissions to an open-loop target
	// arrival rate (submissions/second) across the whole fleet; 0 runs
	// closed-loop (each client submits as soon as its previous job
	// finished).
	Rate float64
	// PollInterval is the first poll's delay in ModePoll; subsequent
	// polls back off 1.5x up to MaxPollInterval. Defaults 2ms / 50ms.
	PollInterval    time.Duration
	MaxPollInterval time.Duration
	// NoRetry429 disables resubmitting admission-rejected jobs. By
	// default a 429/503 submission waits the server's Retry-After hint
	// (capped at 1s) and tries again, so backpressure sheds load
	// without losing it — the rejection still counts in the report.
	NoRetry429 bool
	// VerifyTerminal re-polls each job once after observing a terminal
	// state and counts a state change as a double completion. Cheap
	// (terminal polls are lookups) and on by default in battload's
	// assert mode; leave false for pure-throughput measurement.
	VerifyTerminal bool
	// VerifyBytes records each done job's result JSON keyed by job ID
	// and counts any later observation of the same ID whose bytes differ
	// — the determinism half of the serving contract. Duplicate
	// submissions (DupEvery) and chaos-driven resubmissions both
	// re-observe IDs, so this is what proves "byte-identical results"
	// under faults rather than assuming it.
	VerifyBytes bool
	// Resilient routes submissions and polls through internal/client's
	// retrying Client instead of raw HTTP: transport errors (a killed or
	// restarting server) and 429/503 rejections are absorbed with capped
	// deterministic backoff, and a job that vanishes mid-poll (a restart
	// wiped the in-memory queue) is resubmitted under its content
	// address. This is the mode chaos runs use — the contract should
	// hold through faults *because* the client is resilient.
	Resilient bool
	// ResilientAttempts / ResilientBackoff tune the embedded client
	// (defaults 8 attempts from 50ms: ~6s of cumulative patience, enough
	// to ride out a SIGKILL + restart).
	ResilientAttempts int
	ResilientBackoff  time.Duration
	// NewJob builds the i-th submission (0-based). Required. See
	// JobSpec for the standard deterministic generator.
	NewJob func(i int) wire.Job
	// SLO, when non-nil, is checked after the run; violations land in
	// Result.Violations.
	SLO *SLO
}

// runState is the shared accounting one run's workers feed.
type runState struct {
	submit, poll, e2e Hist

	attempted      atomic.Int64 // submissions started
	unsent         atomic.Int64 // ctx ended before the submission was attempted
	accepted       atomic.Int64 // submissions the queue admitted (or answered from retention)
	rejected       atomic.Int64 // 429 responses observed (incl. retried ones)
	unavailable    atomic.Int64 // 503 responses observed
	rejectedFinal  atomic.Int64 // submissions that gave up unadmitted (NoRetry429 or ctx ended mid-backoff)
	errorsFinal    atomic.Int64 // submissions that ended in a non-backpressure error
	done           atomic.Int64 // terminal: result delivered
	doneWithError  atomic.Int64 // subset of done whose result carries a scheduling error
	expired        atomic.Int64 // terminal: ttl_ms lapsed
	aborted        atomic.Int64 // terminal: aborted (drain or DELETE)
	lost           atomic.Int64 // accepted but no terminal state observed — the invariant violation
	doubleTerminal atomic.Int64 // terminal state changed after first observation — the other violation
	polls          atomic.Int64 // GET /v1/jobs/{id} requests issued
	resubmits      atomic.Int64 // resilient-mode resubmissions after a poll 404

	byteMismatch atomic.Int64 // same job ID observed with differing result bytes
	results      sync.Map     // job ID -> first observed result JSON (VerifyBytes)
}

// Run executes one load run and reports. The error is only for
// unusable configuration; server-side misbehavior is data, not an
// error — it lands in the Result for Verify and the SLO check.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.BaseURL == "" {
		return nil, errors.New("loadgen: Config.BaseURL required")
	}
	if cfg.NewJob == nil {
		return nil, errors.New("loadgen: Config.NewJob required")
	}
	if cfg.Jobs <= 0 || cfg.Concurrency <= 0 {
		return nil, fmt.Errorf("loadgen: Jobs (%d) and Concurrency (%d) must be positive", cfg.Jobs, cfg.Concurrency)
	}
	if cfg.Mode == "" {
		cfg.Mode = ModePoll
	}
	if cfg.Mode != ModePoll && cfg.Mode != ModeStream {
		return nil, fmt.Errorf("loadgen: unknown mode %q", cfg.Mode)
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 2 * time.Millisecond
	}
	if cfg.MaxPollInterval < cfg.PollInterval {
		cfg.MaxPollInterval = 25 * cfg.PollInterval
	}
	httpc := cfg.Client
	if httpc == nil {
		httpc = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        2 * cfg.Concurrency,
			MaxIdleConnsPerHost: 2 * cfg.Concurrency,
			IdleConnTimeout:     30 * time.Second,
		}}
	}

	var rc *client.Client
	if cfg.Resilient {
		attempts := cfg.ResilientAttempts
		if attempts <= 0 {
			attempts = 8
		}
		backoff := cfg.ResilientBackoff
		if backoff <= 0 {
			backoff = 50 * time.Millisecond
		}
		var err error
		rc, err = client.New(client.Config{
			BaseURL:     cfg.BaseURL,
			HTTPClient:  httpc,
			MaxAttempts: attempts,
			BaseBackoff: backoff,
		})
		if err != nil {
			return nil, fmt.Errorf("loadgen: %w", err)
		}
	}

	st := &runState{}
	var pace chan struct{}
	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	if cfg.Rate > 0 {
		pace = make(chan struct{}, cfg.Concurrency)
		go pacer(pctx, cfg.Rate, pace)
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	begin := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= cfg.Jobs {
					return
				}
				if pace != nil {
					select {
					case <-pace:
					case <-ctx.Done():
						st.unsent.Add(1)
						continue // drain the remaining indexes as unsent
					}
				} else if ctx.Err() != nil {
					st.unsent.Add(1)
					continue
				}
				runOne(ctx, httpc, rc, cfg, st, i)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(begin)

	res := &Result{
		Mode:           string(cfg.Mode),
		Concurrency:    cfg.Concurrency,
		RateTarget:     cfg.Rate,
		Jobs:           cfg.Jobs,
		DurationMS:     ms(elapsed),
		Attempted:      st.attempted.Load(),
		Unsent:         st.unsent.Load(),
		Accepted:       st.accepted.Load(),
		Rejected:       st.rejected.Load(),
		Unavailable:    st.unavailable.Load(),
		RejectedFinal:  st.rejectedFinal.Load(),
		Errors:         st.errorsFinal.Load(),
		Done:           st.done.Load(),
		DoneWithError:  st.doneWithError.Load(),
		Expired:        st.expired.Load(),
		Aborted:        st.aborted.Load(),
		Lost:           st.lost.Load(),
		DoubleTerminal: st.doubleTerminal.Load(),
		ByteMismatch:   st.byteMismatch.Load(),
		Resubmits:      st.resubmits.Load(),
		Polls:          st.polls.Load(),
		Submit:         st.submit.Summary(),
		Poll:           st.poll.Summary(),
		E2E:            st.e2e.Summary(),
	}
	if rc != nil {
		cs := rc.Stats()
		res.Client = &cs
	}
	if secs := elapsed.Seconds(); secs > 0 {
		res.ThroughputJPS = float64(res.Done) / secs
	}
	if cfg.SLO != nil {
		res.Violations = cfg.SLO.check(res)
	}
	return res, nil
}

// pacer feeds tokens at the target rate. A millisecond tick with
// fractional accumulation holds rates from well under one to hundreds
// of thousands per second; tokens beyond the fleet's buffer are dropped
// (a fully busy closed fleet cannot absorb a higher arrival rate — the
// backlog would just hide in the channel).
func pacer(ctx context.Context, rate float64, out chan<- struct{}) {
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	acc := 0.0
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			acc += rate / 1000
			for ; acc >= 1; acc-- {
				select {
				case out <- struct{}{}:
				default:
				}
			}
		}
	}
}

// runOne drives one submission through its whole lifecycle.
func runOne(ctx context.Context, httpc *http.Client, rc *client.Client, cfg Config, st *runState, i int) {
	st.attempted.Add(1)
	job := cfg.NewJob(i)
	if rc != nil {
		runOneResilient(ctx, rc, cfg, st, job)
		return
	}
	body, err := json.Marshal(job)
	if err != nil {
		st.errorsFinal.Add(1)
		return
	}
	begin := time.Now()
	status, ok := submit(ctx, httpc, cfg, st, body)
	if !ok {
		return // accounting already done
	}
	st.accepted.Add(1)

	if terminalState(status.State) {
		// Answered from retention (or raced to done): the submit round
		// trip was the whole journey.
		st.e2e.Observe(time.Since(begin))
		recordTerminal(ctx, rawStatus(httpc, cfg, st), cfg, st, status.ID, status.State, status.Result)
		return
	}
	switch cfg.Mode {
	case ModeStream:
		streamOne(ctx, httpc, cfg, st, status.ID, begin)
	default:
		pollOne(ctx, httpc, cfg, st, status.ID, begin)
	}
}

// runOneResilient is runOne on top of internal/client: the retrying
// client absorbs transport faults and backpressure; this loop only has
// to handle what retries cannot — a job ID the server no longer knows,
// which the content address makes safe to resubmit.
func runOneResilient(ctx context.Context, rc *client.Client, cfg Config, st *runState, job wire.Job) {
	begin := time.Now()
	t0 := time.Now()
	status, err := rc.Submit(ctx, job)
	if err != nil {
		var se *client.StatusError
		switch {
		case errors.As(err, &se) && se.Code == http.StatusTooManyRequests:
			st.rejected.Add(1)
			st.rejectedFinal.Add(1)
		case errors.As(err, &se) && se.Code == http.StatusServiceUnavailable:
			st.unavailable.Add(1)
			st.rejectedFinal.Add(1)
		default:
			st.errorsFinal.Add(1)
		}
		return
	}
	st.submit.Observe(time.Since(t0))
	st.accepted.Add(1)

	sf := resilientStatus(rc)
	if terminalState(status.State) {
		st.e2e.Observe(time.Since(begin))
		recordTerminal(ctx, sf, cfg, st, status.ID, status.State, status.Result)
		return
	}
	interval := cfg.PollInterval
	for {
		if !sleepCtx(ctx, interval) {
			st.lost.Add(1)
			return
		}
		p0 := time.Now()
		next, err := rc.Status(ctx, status.ID)
		st.polls.Add(1)
		st.poll.Observe(time.Since(p0))
		if client.IsNotFound(err) {
			// The server forgot the job: a restart wiped the in-memory
			// queue, or retention aged the terminal out between polls.
			// Resubmitting under the content address coalesces or
			// replays — never double-runs.
			st.resubmits.Add(1)
			next, err = rc.Submit(ctx, job)
		}
		if err != nil {
			// Retries are already spent inside the client; a submission
			// that still cannot reach the server is lost from where this
			// client stands.
			st.lost.Add(1)
			return
		}
		if terminalState(next.State) {
			st.e2e.Observe(time.Since(begin))
			recordTerminal(ctx, sf, cfg, st, status.ID, next.State, next.Result)
			return
		}
		if interval = interval * 3 / 2; interval > cfg.MaxPollInterval {
			interval = cfg.MaxPollInterval
		}
	}
}

// resilientStatus adapts the retrying client to the statusFunc shape
// recordTerminal's verification poll wants.
func resilientStatus(rc *client.Client) statusFunc {
	return func(ctx context.Context, id string) (wire.JobStatus, int, error) {
		status, err := rc.Status(ctx, id)
		if err != nil {
			var se *client.StatusError
			if errors.As(err, &se) {
				return status, se.Code, nil
			}
			return status, 0, err
		}
		return status, http.StatusOK, nil
	}
}

// submit POSTs the job until accepted, retrying backpressure rejections
// unless configured not to. ok=false means the submission ended here
// (already accounted).
func submit(ctx context.Context, httpc *http.Client, cfg Config, st *runState, body []byte) (wire.JobStatus, bool) {
	url := strings.TrimRight(cfg.BaseURL, "/") + "/v1/jobs"
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			st.errorsFinal.Add(1)
			return wire.JobStatus{}, false
		}
		req.Header.Set("Content-Type", "application/json")
		t0 := time.Now()
		resp, err := httpc.Do(req)
		if err != nil {
			st.errorsFinal.Add(1)
			return wire.JobStatus{}, false
		}
		rb, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK, http.StatusAccepted:
			st.submit.Observe(time.Since(t0))
			var status wire.JobStatus
			if rerr != nil || json.Unmarshal(rb, &status) != nil || status.ID == "" {
				st.errorsFinal.Add(1)
				return wire.JobStatus{}, false
			}
			return status, true
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			if resp.StatusCode == http.StatusTooManyRequests {
				st.rejected.Add(1)
			} else {
				st.unavailable.Add(1)
			}
			if cfg.NoRetry429 {
				st.rejectedFinal.Add(1)
				return wire.JobStatus{}, false
			}
			if !sleepCtx(ctx, retryAfter(resp)) {
				st.rejectedFinal.Add(1)
				return wire.JobStatus{}, false
			}
		default:
			st.errorsFinal.Add(1)
			return wire.JobStatus{}, false
		}
	}
}

// retryAfter reads the server's backoff hint, capped to keep a stuck
// header from stalling the run.
func retryAfter(resp *http.Response) time.Duration {
	if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
		d := time.Duration(s) * time.Second
		if d > time.Second {
			d = time.Second
		}
		return d
	}
	return 50 * time.Millisecond
}

// sleepCtx sleeps d or until ctx ends, reporting whether it slept.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// pollOne polls the job until a terminal state, with backoff.
func pollOne(ctx context.Context, httpc *http.Client, cfg Config, st *runState, id string, begin time.Time) {
	interval := cfg.PollInterval
	for {
		if !sleepCtx(ctx, interval) {
			st.lost.Add(1)
			return
		}
		status, code, err := getStatus(ctx, httpc, cfg, st, id)
		if err != nil || code == http.StatusNotFound {
			// A job the server no longer knows (or a transport failure
			// that outlives one retry-at-next-interval) is a lost job
			// from where the client stands.
			if ctx.Err() != nil || code == http.StatusNotFound {
				st.lost.Add(1)
				return
			}
		} else if terminalState(status.State) {
			st.e2e.Observe(time.Since(begin))
			recordTerminal(ctx, rawStatus(httpc, cfg, st), cfg, st, id, status.State, status.Result)
			return
		}
		if interval = interval * 3 / 2; interval > cfg.MaxPollInterval {
			interval = cfg.MaxPollInterval
		}
	}
}

// getStatus is one poll round trip.
func getStatus(ctx context.Context, httpc *http.Client, cfg Config, st *runState, id string) (wire.JobStatus, int, error) {
	url := strings.TrimRight(cfg.BaseURL, "/") + "/v1/jobs/" + id
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return wire.JobStatus{}, 0, err
	}
	t0 := time.Now()
	resp, err := httpc.Do(req)
	if err != nil {
		return wire.JobStatus{}, 0, err
	}
	defer resp.Body.Close()
	st.polls.Add(1)
	st.poll.Observe(time.Since(t0))
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return wire.JobStatus{}, resp.StatusCode, nil
	}
	var status wire.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		return wire.JobStatus{}, resp.StatusCode, err
	}
	return status, resp.StatusCode, nil
}

// streamOne blocks on the job's stream endpoint until its single
// terminal line arrives. More than one line is a double completion.
func streamOne(ctx context.Context, httpc *http.Client, cfg Config, st *runState, id string, begin time.Time) {
	url := strings.TrimRight(cfg.BaseURL, "/") + "/v1/jobs/" + id + "/stream"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		st.lost.Add(1)
		return
	}
	resp, err := httpc.Do(req)
	if err != nil {
		st.lost.Add(1)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		st.lost.Add(1)
		return
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1<<24)
	lines := 0
	var line wire.Result
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		if lines == 0 {
			if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
				st.errorsFinal.Add(1)
				return
			}
		}
		lines++
	}
	if lines == 0 {
		st.lost.Add(1)
		return
	}
	if lines > 1 {
		st.doubleTerminal.Add(1)
	}
	st.e2e.Observe(time.Since(begin))
	state := wire.StateDone
	switch line.Code {
	case wire.CodeExpired:
		state = wire.StateExpired
	case wire.CodeAborted:
		state = wire.StateAborted
	}
	var res *wire.Result
	if state == wire.StateDone {
		res = &line
	}
	recordTerminal(ctx, rawStatus(httpc, cfg, st), cfg, st, id, state, res)
}

// statusFunc is one status lookup: the raw poll or the resilient
// client's, so recordTerminal's verification re-poll works in both
// modes.
type statusFunc func(ctx context.Context, id string) (wire.JobStatus, int, error)

// rawStatus adapts getStatus to the statusFunc shape.
func rawStatus(httpc *http.Client, cfg Config, st *runState) statusFunc {
	return func(ctx context.Context, id string) (wire.JobStatus, int, error) {
		return getStatus(ctx, httpc, cfg, st, id)
	}
}

// recordTerminal counts a terminal observation and, when verification
// is on, confirms the state held: a job observed done must still be
// done one poll later — anything else is a second completion. With
// VerifyBytes it also pins the result bytes per job ID: a second
// observation of the same ID (a duplicate submission, a chaos
// resubmission) must carry byte-identical JSON.
func recordTerminal(ctx context.Context, sf statusFunc, cfg Config, st *runState, id, state string, res *wire.Result) {
	switch state {
	case wire.StateDone:
		st.done.Add(1)
		if res != nil && res.Error != "" {
			st.doneWithError.Add(1)
		}
		if cfg.VerifyBytes && res != nil {
			b, err := json.Marshal(res)
			if err == nil {
				if prev, loaded := st.results.LoadOrStore(id, string(b)); loaded && prev.(string) != string(b) {
					st.byteMismatch.Add(1)
				}
			}
		}
	case wire.StateExpired:
		st.expired.Add(1)
	case wire.StateAborted:
		st.aborted.Add(1)
	default:
		st.doubleTerminal.Add(1) // a "terminal" we do not recognize is corrupt state
		return
	}
	if !cfg.VerifyTerminal {
		return
	}
	again, code, err := sf(ctx, id)
	if err != nil || code != http.StatusOK {
		return // retention pruning or shutdown; absence is not a second state
	}
	if again.State != state {
		st.doubleTerminal.Add(1)
	}
}

// terminalState mirrors wire's terminal set.
func terminalState(s string) bool {
	return s == wire.StateDone || s == wire.StateExpired || s == wire.StateAborted
}

// Sweep runs the same load at each concurrency level in turn — the
// saturation curve. Levels run sequentially so each measures a quiet
// server warmed by the previous stage (the cache is content-addressed;
// distinct deadlines stay distinct work across stages).
func Sweep(ctx context.Context, cfg Config, levels []int) ([]*Result, error) {
	results := make([]*Result, 0, len(levels))
	for _, c := range levels {
		cfg.Concurrency = c
		res, err := Run(ctx, cfg)
		if err != nil {
			return results, err
		}
		results = append(results, res)
	}
	return results, nil
}

package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/server"
	"repro/internal/wire"
)

// newTarget stands up a real battschedd handler stack over HTTP — the
// harness is client-shaped, so its tests exercise the wire, not mocks.
func newTarget(t *testing.T, cfg server.Config) string {
	t.Helper()
	s := server.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts.URL
}

func baseSpec() JobSpec {
	return JobSpec{Fixture: "g3", DeadlineMin: 100, DeadlineMax: 230}
}

// TestRunPoll: a closed-loop poll-mode run against a live server holds
// the serving contract — all jobs done, none lost, none doubled.
func TestRunPoll(t *testing.T) {
	base := newTarget(t, server.Config{})
	spec := baseSpec()
	spec.DupEvery = 5
	spec.Priorities = []PriorityWeight{{0, 3}, {5, 2}, {9, 1}}
	res, err := Run(context.Background(), Config{
		BaseURL:        base,
		Mode:           ModePoll,
		Jobs:           80,
		Concurrency:    16,
		VerifyTerminal: true,
		NewJob:         spec.Job,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
	if res.Done != 80 || res.Accepted != 80 || res.DoneWithError != 0 {
		t.Fatalf("done=%d accepted=%d doneWithError=%d, want 80/80/0", res.Done, res.Accepted, res.DoneWithError)
	}
	if res.ThroughputJPS <= 0 || res.E2E.Count != 80 || res.Polls == 0 {
		t.Fatalf("missing measurements: jps=%v e2eCount=%d polls=%d", res.ThroughputJPS, res.E2E.Count, res.Polls)
	}
	if res.E2E.P99MS < res.E2E.P50MS || res.E2E.MaxMS < res.E2E.P99MS {
		t.Fatalf("quantiles out of order: %+v", res.E2E)
	}
}

// TestRunStream: stream mode delivers exactly one terminal line per job.
func TestRunStream(t *testing.T) {
	base := newTarget(t, server.Config{})
	spec := baseSpec()
	res, err := Run(context.Background(), Config{
		BaseURL:        base,
		Mode:           ModeStream,
		Jobs:           40,
		Concurrency:    8,
		VerifyTerminal: true,
		NewJob:         spec.Job,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
	if res.Done != 40 || res.Polls == 0 {
		// Polls > 0: the verify re-poll still runs in stream mode.
		t.Fatalf("done=%d polls=%d, want 40 and >0", res.Done, res.Polls)
	}
}

// TestRunSLOViolation: an unmeetable SLO is reported as a violation,
// not an error — the run itself stays healthy.
func TestRunSLOViolation(t *testing.T) {
	base := newTarget(t, server.Config{})
	spec := baseSpec()
	res, err := Run(context.Background(), Config{
		BaseURL:     base,
		Jobs:        10,
		Concurrency: 4,
		NewJob:      spec.Job,
		SLO:         &SLO{E2EP99: time.Nanosecond, MaxErrorRate: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 1 || !strings.Contains(res.Violations[0], "e2e p99") {
		t.Fatalf("violations = %q, want exactly the e2e clause", res.Violations)
	}
}

// TestRunBackpressure: a one-slot queue under a burst rejects with 429;
// with retries disabled the rejections are final, and the accounting
// still closes (attempted = accepted + rejectedFinal + errors).
func TestRunBackpressure(t *testing.T) {
	base := newTarget(t, server.Config{MaxQueued: 1, QueueWorkers: 1, Workers: 1})
	res, err := Run(context.Background(), Config{
		BaseURL:     base,
		Jobs:        24,
		Concurrency: 12,
		NoRetry429:  true,
		NewJob: func(i int) wire.Job {
			// Slow, distinct jobs so the queue actually fills.
			return wire.Job{Fixture: "g3", Deadline: 230, Strategy: "multistart",
				Restarts: 3000, Seed: int64(i + 1)}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
	if res.Rejected == 0 || res.RejectedFinal != res.Rejected {
		t.Fatalf("rejected=%d final=%d, want >0 and equal (NoRetry429)", res.Rejected, res.RejectedFinal)
	}
	if got := res.Accepted + res.RejectedFinal + res.Errors; got != res.Attempted {
		t.Fatalf("submission accounting leaks: attempted=%d but accepted+rejectedFinal+errors=%d", res.Attempted, got)
	}
}

// TestRunResilientThroughFaults: with the retrying client underneath,
// a run whose transport periodically resets connections and injects a
// synthesized 503 still completes every job, byte-identically — the
// chaos-mode contract in miniature.
func TestRunResilientThroughFaults(t *testing.T) {
	base := newTarget(t, server.Config{})
	in := fault.NewInjector(fault.OS,
		fault.Rule{Op: fault.OpRoundTrip, Every: 9, Err: syscall.ECONNRESET},
		fault.Rule{Op: fault.OpRoundTrip, Nth: 5, Status: 503})
	spec := baseSpec()
	spec.DupEvery = 4 // duplicate IDs so VerifyBytes has re-observations
	res, err := Run(context.Background(), Config{
		BaseURL:          base,
		Client:           &http.Client{Transport: &fault.Transport{Injector: in}},
		Jobs:             60,
		Concurrency:      12,
		Resilient:        true,
		ResilientBackoff: time.Millisecond,
		VerifyTerminal:   true,
		VerifyBytes:      true,
		NewJob:           spec.Job,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
	if res.Done != 60 || res.Lost != 0 || res.ByteMismatch != 0 {
		t.Fatalf("done=%d lost=%d byteMismatch=%d, want 60/0/0", res.Done, res.Lost, res.ByteMismatch)
	}
	if in.Injected() == 0 {
		t.Fatal("no faults injected — the chaos leg tested nothing")
	}
	if res.Client == nil || res.Client.Retries == 0 {
		t.Fatalf("client stats = %+v, want retries > 0 (faults were absorbed, not avoided)", res.Client)
	}
}

// TestRunOpenLoop: a paced run cannot finish faster than its arrival
// rate allows.
func TestRunOpenLoop(t *testing.T) {
	base := newTarget(t, server.Config{})
	spec := baseSpec()
	begin := time.Now()
	res, err := Run(context.Background(), Config{
		BaseURL:     base,
		Jobs:        30,
		Concurrency: 8,
		Rate:        200, // 30 jobs at 200/s ≥ 145ms of pacing
		NewJob:      spec.Job,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(begin); elapsed < 100*time.Millisecond {
		t.Fatalf("open-loop run finished in %v, faster than the 200/s pace allows", elapsed)
	}
}

// TestSweep runs the saturation curve and checks each level reports
// independently.
func TestSweep(t *testing.T) {
	base := newTarget(t, server.Config{})
	spec := baseSpec()
	results, err := Sweep(context.Background(), Config{
		BaseURL:        base,
		Jobs:           30,
		VerifyTerminal: true,
		NewJob:         spec.Job,
	}, []int{4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Concurrency != 4 || results[1].Concurrency != 16 {
		t.Fatalf("sweep levels wrong: %+v", results)
	}
	for _, r := range results {
		if err := r.Verify(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRunConfigErrors: unusable configuration is an error, not a run.
func TestRunConfigErrors(t *testing.T) {
	spec := baseSpec()
	cases := []Config{
		{Jobs: 1, Concurrency: 1, NewJob: spec.Job},                                        // no BaseURL
		{BaseURL: "http://x", Jobs: 1, Concurrency: 1},                                     // no NewJob
		{BaseURL: "http://x", Jobs: 0, Concurrency: 1, NewJob: spec.Job},                   // no jobs
		{BaseURL: "http://x", Jobs: 1, Concurrency: 1, NewJob: spec.Job, Mode: Mode("ws")}, // bad mode
	}
	for i, cfg := range cases {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Fatalf("case %d: config error not reported", i)
		}
	}
}

// TestParsePriorityMix covers the battload flag syntax.
func TestParsePriorityMix(t *testing.T) {
	mix, err := ParsePriorityMix("0:7,5:2,9:1")
	if err != nil {
		t.Fatal(err)
	}
	want := []PriorityWeight{{0, 7}, {5, 2}, {9, 1}}
	if len(mix) != len(want) {
		t.Fatalf("mix = %+v", mix)
	}
	for i := range want {
		if mix[i] != want[i] {
			t.Fatalf("mix[%d] = %+v, want %+v", i, mix[i], want[i])
		}
	}
	if mix, err = ParsePriorityMix("  "); err != nil || len(mix) != 1 || mix[0] != (PriorityWeight{0, 1}) {
		t.Fatalf("empty mix: %+v, %v", mix, err)
	}
	for _, bad := range []string{"5", "x:1", "5:x", "-1:1", "10:1", "5:0", "5:-2"} {
		if _, err := ParsePriorityMix(bad); err == nil {
			t.Fatalf("mix %q accepted", bad)
		}
	}
}

// TestJobSpecDeterminism: the generator is a pure function of the index
// — the repo's determinism culture extends to load runs.
func TestJobSpecDeterminism(t *testing.T) {
	spec := baseSpec()
	spec.DupEvery = 4
	spec.Priorities = []PriorityWeight{{0, 2}, {9, 1}}
	spec.TTLMS = 60000
	seen := map[float64]bool{}
	for i := 0; i < 64; i++ {
		a, b := spec.Job(i), spec.Job(i)
		if a != b {
			t.Fatalf("Job(%d) not deterministic: %+v vs %+v", i, a, b)
		}
		if a.Deadline < spec.DeadlineMin || a.Deadline > spec.DeadlineMax {
			t.Fatalf("Job(%d) deadline %v outside [%v, %v]", i, a.Deadline, spec.DeadlineMin, spec.DeadlineMax)
		}
		if a.TTLMS != 60000 {
			t.Fatalf("Job(%d) ttl = %d", i, a.TTLMS)
		}
		seen[a.Deadline] = true
	}
	// DupEvery=4: indexes 3,7,11,... repeat their predecessor, so 64
	// submissions carry 48 distinct deadlines.
	if len(seen) != 48 {
		t.Fatalf("distinct deadlines = %d, want 48", len(seen))
	}
	if d3, d2 := spec.Job(3).Deadline, spec.Job(2).Deadline; d3 != d2 {
		t.Fatalf("dup index 3 deadline %v != predecessor %v", d3, d2)
	}
	// Priority mix 2:1 over a cycle of 3.
	if p := [3]int{spec.Job(0).Priority, spec.Job(1).Priority, spec.Job(2).Priority}; p != [3]int{0, 0, 9} {
		t.Fatalf("priority cycle = %v, want [0 0 9]", p)
	}
}

// TestWriteBench: the -bench emission carries the pkg header and one
// parseable line per metric — the shape scripts/benchjson consumes.
func TestWriteBench(t *testing.T) {
	var sb strings.Builder
	r := &Result{Mode: "poll", Concurrency: 16, ThroughputJPS: 500,
		Submit: LatencySummary{P50MS: 1, P99MS: 2},
		Poll:   LatencySummary{P50MS: 1, P99MS: 2},
		E2E:    LatencySummary{P50MS: 3, P95MS: 4, P99MS: 5}}
	if err := WriteBench(&sb, r); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "pkg: battload\n") {
		t.Fatalf("missing pkg header:\n%s", out)
	}
	for _, want := range []string{
		"BenchmarkLoad/mode=poll/c=16/e2e_p99 \t1\t5000000 ns/op",
		"BenchmarkLoad/mode=poll/c=16/ns_per_done_job \t1\t2000000 ns/op",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

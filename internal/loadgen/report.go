// Result, SLO checking and snapshot emission: a load run condenses to
// one Result; a sweep to a slice of them. Results serialize two ways —
// a full JSON report (battload -o) and `go test -bench`-shaped lines
// (battload -bench) that pipe through scripts/benchjson into the same
// BENCH_*.json snapshot format the compute benchmarks use, so the load
// trajectory and the kernel trajectory live in one format.
package loadgen

import (
	"fmt"
	"io"
	"time"

	"repro/internal/client"
)

// Result is the outcome of one load run at one concurrency level.
type Result struct {
	Mode        string  `json:"mode"`
	Concurrency int     `json:"concurrency"`
	RateTarget  float64 `json:"rate_target,omitempty"`
	Jobs        int     `json:"jobs"`
	DurationMS  float64 `json:"duration_ms"`

	// Submission accounting. Attempted = Accepted + RejectedFinal +
	// Errors; Attempted + Unsent = Jobs.
	Attempted     int64 `json:"attempted"`
	Unsent        int64 `json:"unsent,omitempty"`
	Accepted      int64 `json:"accepted"`
	Rejected      int64 `json:"rejected_429,omitempty"`
	Unavailable   int64 `json:"unavailable_503,omitempty"`
	RejectedFinal int64 `json:"rejected_final,omitempty"`
	Errors        int64 `json:"errors,omitempty"`

	// Terminal accounting. Accepted = Done + Expired + Aborted + Lost.
	Done          int64 `json:"done"`
	DoneWithError int64 `json:"done_with_error,omitempty"`
	Expired       int64 `json:"expired,omitempty"`
	Aborted       int64 `json:"aborted,omitempty"`

	// The invariant violations a correct server never produces.
	// ByteMismatch is only counted when Config.VerifyBytes is on: two
	// observations of the same job ID whose result JSON differs.
	Lost           int64 `json:"lost"`
	DoubleTerminal int64 `json:"double_terminal"`
	ByteMismatch   int64 `json:"byte_mismatch"`

	// Resubmits counts resilient-mode re-submissions after the server
	// forgot a job ID (restart or retention ageout).
	Resubmits int64 `json:"resubmits,omitempty"`

	Polls         int64   `json:"polls,omitempty"`
	ThroughputJPS float64 `json:"throughput_jobs_per_sec"`

	Submit LatencySummary `json:"submit"`
	Poll   LatencySummary `json:"poll"`
	E2E    LatencySummary `json:"e2e"`

	// Client carries the resilient client's own counters (attempts,
	// retries, Retry-After honors) when the run was Resilient — the
	// proof the resilience was exercised, not just configured.
	Client *client.Stats `json:"client,omitempty"`

	// Violations lists failed SLO clauses (empty/omitted when the run
	// had no SLO or passed it).
	Violations []string `json:"violations,omitempty"`
}

// Verify checks the serving contract the run observed: every accepted
// job reached exactly one terminal state. It returns nil when the
// contract held and a single describing error otherwise.
func (r *Result) Verify() error {
	var probs []string
	if r.Lost > 0 {
		probs = append(probs, fmt.Sprintf("%d job(s) lost (accepted but no terminal state observed)", r.Lost))
	}
	if r.DoubleTerminal > 0 {
		probs = append(probs, fmt.Sprintf("%d double completion(s) (terminal state changed after first observation)", r.DoubleTerminal))
	}
	if r.ByteMismatch > 0 {
		probs = append(probs, fmt.Sprintf("%d byte-divergent result(s) (same job ID, different result JSON)", r.ByteMismatch))
	}
	if got := r.Done + r.Expired + r.Aborted + r.Lost; got != r.Accepted {
		probs = append(probs, fmt.Sprintf("terminal accounting mismatch: accepted %d but done+expired+aborted+lost = %d", r.Accepted, got))
	}
	if len(probs) == 0 {
		return nil
	}
	return fmt.Errorf("loadgen: contract violated at c=%d: %s", r.Concurrency, join(probs))
}

// join is strings.Join without importing strings here for two words.
func join(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += "; "
		}
		out += s
	}
	return out
}

// SLO is the service-level objective a run is held to. Zero durations
// disable their clause; MaxErrorRate < 0 disables the rate clause
// (0 means "no errors allowed").
type SLO struct {
	// SubmitP99 bounds the 99th-percentile accepted-submission latency.
	SubmitP99 time.Duration `json:"submit_p99,omitempty"`
	// PollP99 bounds the 99th-percentile status-poll latency.
	PollP99 time.Duration `json:"poll_p99,omitempty"`
	// E2EP99 bounds the 99th-percentile submit-to-done latency.
	E2EP99 time.Duration `json:"e2e_p99,omitempty"`
	// MaxErrorRate bounds Errors/Attempted.
	MaxErrorRate float64 `json:"max_error_rate,omitempty"`
}

// check evaluates the SLO against a finished run.
func (s *SLO) check(r *Result) []string {
	var v []string
	clause := func(name string, gotMS float64, want time.Duration) {
		if want > 0 && gotMS > ms(want) {
			v = append(v, fmt.Sprintf("%s %.3fms exceeds SLO %s", name, gotMS, want))
		}
	}
	clause("submit p99", r.Submit.P99MS, s.SubmitP99)
	clause("poll p99", r.Poll.P99MS, s.PollP99)
	clause("e2e p99", r.E2E.P99MS, s.E2EP99)
	if s.MaxErrorRate >= 0 && r.Attempted > 0 {
		if rate := float64(r.Errors) / float64(r.Attempted); rate > s.MaxErrorRate {
			v = append(v, fmt.Sprintf("error rate %.4f exceeds SLO %.4f", rate, s.MaxErrorRate))
		}
	}
	return v
}

// WriteBench emits the results as `go test -bench`-shaped lines, one
// per metric, prefixed by a pkg header so scripts/benchjson keys them
// "battload:BenchmarkLoad/...". Latency metrics are the histogram
// quantiles; throughput is inverted to ns-per-completed-job so every
// line is an ns/op a bench-snapshot consumer already understands.
func WriteBench(w io.Writer, results ...*Result) error {
	if _, err := fmt.Fprintln(w, "pkg: battload"); err != nil {
		return err
	}
	for _, r := range results {
		base := fmt.Sprintf("BenchmarkLoad/mode=%s/c=%d", r.Mode, r.Concurrency)
		line := func(metric string, valueMS float64) error {
			_, err := fmt.Fprintf(w, "%s/%s \t1\t%.0f ns/op\n", base, metric, valueMS*1e6)
			return err
		}
		for _, m := range []struct {
			name string
			val  float64
		}{
			{"submit_p50", r.Submit.P50MS},
			{"submit_p99", r.Submit.P99MS},
			{"poll_p50", r.Poll.P50MS},
			{"poll_p99", r.Poll.P99MS},
			{"e2e_p50", r.E2E.P50MS},
			{"e2e_p95", r.E2E.P95MS},
			{"e2e_p99", r.E2E.P99MS},
		} {
			if err := line(m.name, m.val); err != nil {
				return err
			}
		}
		if r.ThroughputJPS > 0 {
			if err := line("ns_per_done_job", 1e3/r.ThroughputJPS); err != nil {
				return err
			}
		}
	}
	return nil
}

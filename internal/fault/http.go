// The HTTP round-trip fault seam: a wrapping http.RoundTripper driven
// by the same deterministic schedule as the FS seam, for testing the
// resilient client (internal/client) against transport failures,
// synthesized 429/503 backpressure and latency — without a server that
// actually misbehaves.
package fault

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Transport is an http.RoundTripper that fires OpRoundTrip rules before
// delegating to Base. Rules with Err fail the request at the transport
// layer (the shape of a connection reset or a died server); rules with
// Status synthesize a complete HTTP response with that code — 429 and
// 503 carry a "Retry-After: 1" header, matching the server's
// backpressure contract — without the request ever leaving the process.
type Transport struct {
	// Base performs the non-injected round trips; nil means
	// http.DefaultTransport.
	Base http.RoundTripper
	// Injector drives the schedule; it may be shared with an FS seam
	// (the counters are per-op, so HTTP and disk schedules do not
	// interfere). Required.
	Injector *Injector
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	out := t.Injector.step(OpRoundTrip)
	if out.delay > 0 {
		// Wait context-aware: a request deadline must cut an injected
		// latency short, exactly as it would a real slow network.
		timer := time.NewTimer(out.delay)
		select {
		case <-req.Context().Done():
			timer.Stop()
			return nil, fmt.Errorf("fault: injected delay interrupted: %w", req.Context().Err())
		case <-timer.C:
		}
	}
	if out.err != nil {
		return nil, out.err
	}
	if out.status != 0 {
		resp := &http.Response{
			StatusCode: out.status,
			Status:     http.StatusText(out.status),
			Proto:      "HTTP/1.1",
			ProtoMajor: 1,
			ProtoMinor: 1,
			Header:     make(http.Header),
			Body:       io.NopCloser(strings.NewReader(`{"error":"fault: injected backpressure"}`)),
			Request:    req,
		}
		if out.status == http.StatusTooManyRequests || out.status == http.StatusServiceUnavailable {
			resp.Header.Set("Retry-After", "1")
		}
		resp.Header.Set("Content-Type", "application/json")
		return resp, nil
	}
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	return base.RoundTrip(req)
}

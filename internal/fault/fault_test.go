package fault

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestParseRules(t *testing.T) {
	good := map[string]Rule{
		"write:nth=3:eio":              {Op: OpWrite, Nth: 3, Err: syscall.EIO},
		"sync:every=5:enospc":          {Op: OpSync, Every: 5, Err: syscall.ENOSPC},
		"write:nth=7:torn@128":         {Op: OpWrite, Nth: 7, Torn: true, TruncateAt: 128},
		"write:nth=1:torn@0":           {Op: OpWrite, Nth: 1, Torn: true, TruncateAt: 0},
		"rename:nth=1:delay@50ms":      {Op: OpRename, Nth: 1, Delay: 50 * time.Millisecond},
		"roundtrip:every=4:status@503": {Op: OpRoundTrip, Every: 4, Status: 503},
	}
	for s, want := range good {
		rules, err := ParseRules(s)
		if err != nil {
			t.Fatalf("ParseRules(%q): %v", s, err)
		}
		if len(rules) != 1 || rules[0] != want {
			t.Errorf("ParseRules(%q) = %+v, want %+v", s, rules, want)
		}
	}

	multi, err := ParseRules("write:nth=3:eio, sync:every=5:enospc")
	if err != nil || len(multi) != 2 {
		t.Fatalf("comma list: rules=%v err=%v", multi, err)
	}

	if rules, err := ParseRules("  "); err != nil || rules != nil {
		t.Errorf("blank schedule: rules=%v err=%v, want nil,nil", rules, err)
	}

	bad := []string{
		"write:nth=3",              // missing effect
		"write:nth=3:eio:extra",    // too many fields
		"frobnicate:nth=1:eio",     // unknown op
		"write:always:eio",         // unknown trigger
		"write:nth=0:eio",          // zero count
		"write:nth=x:eio",          // non-numeric
		"write:nth=1:explode",      // unknown effect
		"sync:nth=1:torn@10",       // torn on non-write
		"write:nth=1:torn",         // torn missing bytes
		"write:nth=1:torn@-1",      // negative bytes
		"write:nth=1:delay@zzz",    // bad duration
		"write:nth=1:delay@-1s",    // non-positive duration
		"write:nth=1:status@503",   // status on non-roundtrip
		"roundtrip:nth=1:status@9", // out-of-range code
		"roundtrip:nth=1:status",   // status missing code
	}
	for _, s := range bad {
		if _, err := ParseRules(s); err == nil {
			t.Errorf("ParseRules(%q): want error, got nil", s)
		}
	}
}

func TestInjectorNthAndEvery(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS,
		Rule{Op: OpReadFile, Nth: 2, Err: syscall.EIO},
		Rule{Op: OpRemove, Every: 2, Err: syscall.ENOSPC},
	)

	path := filepath.Join(dir, "f")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	// nth=2 on read: 1st ok, 2nd fails, 3rd ok again (nth fires once).
	if _, err := in.ReadFile(path); err != nil {
		t.Fatalf("read 1: %v", err)
	}
	if _, err := in.ReadFile(path); !errors.Is(err, syscall.EIO) {
		t.Fatalf("read 2: want EIO, got %v", err)
	}
	if _, err := in.ReadFile(path); err != nil {
		t.Fatalf("read 3: %v", err)
	}

	// every=2 on remove: odd attempts pass, even attempts fail.
	for i := 1; i <= 4; i++ {
		os.WriteFile(path, []byte("x"), 0o644)
		err := in.Remove(path)
		if i%2 == 0 {
			if !errors.Is(err, syscall.ENOSPC) {
				t.Fatalf("remove %d: want ENOSPC, got %v", i, err)
			}
		} else if err != nil {
			t.Fatalf("remove %d: %v", i, err)
		}
	}

	if got := in.Count(OpReadFile); got != 3 {
		t.Errorf("Count(read) = %d, want 3", got)
	}
	if got := in.Injected(); got != 3 {
		t.Errorf("Injected() = %d, want 3 (1 read + 2 removes)", got)
	}
	if got := in.InjectedOn(OpRemove); got != 2 {
		t.Errorf("InjectedOn(remove) = %d, want 2", got)
	}
}

func TestInjectedErrorIdentity(t *testing.T) {
	in := NewInjector(OS, Rule{Op: OpSyncDir, Nth: 1, Err: syscall.EIO})
	err := in.SyncDir(t.TempDir())
	if !errors.Is(err, ErrInjected) {
		t.Errorf("injected error does not match ErrInjected: %v", err)
	}
	if !errors.Is(err, syscall.EIO) {
		t.Errorf("injected error does not unwrap to EIO: %v", err)
	}
	if !strings.Contains(err.Error(), "syncdir") {
		t.Errorf("error text %q does not name the op", err)
	}
}

func TestTornWrite(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(OS, Rule{Op: OpWrite, Nth: 1, Torn: true, TruncateAt: 4})

	f, err := in.CreateTemp(dir, "torn-*.tmp")
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("hello world"))
	if !errors.Is(err, syscall.EIO) || !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write: want injected EIO, got n=%d err=%v", n, err)
	}
	if n != 4 {
		t.Fatalf("torn write reported %d bytes, want 4", n)
	}
	f.Close()

	// The crash-shaped artifact is real: exactly 4 bytes on disk.
	got, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hell" {
		t.Fatalf("file holds %q, want %q", got, "hell")
	}

	// A second write on a fresh file is past nth=1 and goes through whole.
	f2, err := in.CreateTemp(dir, "ok-*.tmp")
	if err != nil {
		t.Fatal(err)
	}
	if n, err := f2.Write([]byte("hello world")); err != nil || n != 11 {
		t.Fatalf("write 2: n=%d err=%v", n, err)
	}
	if err := f2.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestInjectorDelay(t *testing.T) {
	in := NewInjector(OS, Rule{Op: OpReadDir, Nth: 1, Delay: 30 * time.Millisecond})
	start := time.Now()
	if _, err := in.ReadDir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("delayed op took %v, want >= 30ms", d)
	}
	// Delay alone injects nothing — the op succeeded.
	if got := in.Injected(); got != 0 {
		t.Errorf("Injected() = %d after pure delay, want 0", got)
	}
}

func TestOSRoundTripThroughSeam(t *testing.T) {
	// A rule-free injector over OS behaves exactly like the filesystem,
	// while still counting ops.
	dir := t.TempDir()
	in := NewInjector(OS)

	sub := filepath.Join(dir, "aa")
	if err := in.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := in.CreateTemp(dir, "x-*.tmp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(sub, "entry")
	if err := in.Rename(f.Name(), dst); err != nil {
		t.Fatal(err)
	}
	if err := in.SyncDir(sub); err != nil {
		t.Fatal(err)
	}
	if err := in.Chtimes(dst, time.Now(), time.Now()); err != nil {
		t.Fatal(err)
	}
	got, err := in.ReadFile(dst)
	if err != nil || string(got) != "payload" {
		t.Fatalf("read back: %q, %v", got, err)
	}
	ents, err := in.ReadDir(sub)
	if err != nil || len(ents) != 1 {
		t.Fatalf("readdir: %v, %v", ents, err)
	}
	if err := in.Remove(dst); err != nil {
		t.Fatal(err)
	}

	for _, op := range []Op{OpMkdirAll, OpCreate, OpWrite, OpSync, OpClose, OpRename, OpSyncDir, OpChtimes, OpReadFile, OpReadDir, OpRemove} {
		if got := in.Count(op); got != 1 {
			t.Errorf("Count(%s) = %d, want 1", op, got)
		}
	}
}

func TestTransportFaults(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "real")
	}))
	defer srv.Close()

	in := NewInjector(OS,
		Rule{Op: OpRoundTrip, Nth: 1, Err: syscall.ECONNRESET},
		Rule{Op: OpRoundTrip, Nth: 2, Status: 503},
		Rule{Op: OpRoundTrip, Nth: 3, Status: 429},
		Rule{Op: OpRoundTrip, Nth: 4, Status: 500},
	)
	client := &http.Client{Transport: &Transport{Injector: in}}

	// 1st: transport-level failure.
	if _, err := client.Get(srv.URL); err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("request 1: want injected transport error, got %v", err)
	}

	// 2nd + 3rd: synthesized 503/429 with Retry-After.
	for i, want := range []int{503, 429} {
		resp, err := client.Get(srv.URL)
		if err != nil {
			t.Fatalf("request %d: %v", i+2, err)
		}
		if resp.StatusCode != want {
			t.Fatalf("request %d: status %d, want %d", i+2, resp.StatusCode, want)
		}
		if ra := resp.Header.Get("Retry-After"); ra != "1" {
			t.Errorf("request %d: Retry-After = %q, want \"1\"", i+2, ra)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !strings.Contains(string(body), "injected") {
			t.Errorf("request %d: body %q lacks the injected marker", i+2, body)
		}
	}

	// 4th: synthesized 500 has no Retry-After.
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 500 {
		t.Fatalf("request 4: status %d, want 500", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		t.Errorf("request 4: unexpected Retry-After %q", ra)
	}
	resp.Body.Close()

	// 5th: past the schedule, the real server answers.
	resp, err = client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "real" {
		t.Fatalf("request 5: body %q, want \"real\"", body)
	}

	if got := in.Injected(); got != 4 {
		t.Errorf("Injected() = %d, want 4", got)
	}
}

// The deterministic injector: a wrapping FS (and http.RoundTripper —
// see http.go) that fails operations on a counter/stride schedule.
package fault

import (
	"errors"
	"fmt"
	"io/fs"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Op names one interceptable operation kind. Each op kind has its own
// 1-based counter in the injector, so a schedule like "fail the 3rd
// rename" is independent of how many reads happened around it.
type Op string

const (
	OpMkdirAll  Op = "mkdir"
	OpReadDir   Op = "readdir"
	OpReadFile  Op = "read"
	OpRemove    Op = "remove"
	OpRename    Op = "rename"
	OpCreate    Op = "create"
	OpWrite     Op = "write"
	OpSync      Op = "sync"
	OpClose     Op = "close"
	OpChtimes   Op = "chtimes"
	OpSyncDir   Op = "syncdir"
	OpRoundTrip Op = "roundtrip"
)

// ops is the closed vocabulary ParseRules accepts.
var ops = map[Op]bool{
	OpMkdirAll: true, OpReadDir: true, OpReadFile: true, OpRemove: true,
	OpRename: true, OpCreate: true, OpWrite: true, OpSync: true,
	OpClose: true, OpChtimes: true, OpSyncDir: true, OpRoundTrip: true,
}

// ErrInjected marks every error the injector produces: errors.Is(err,
// fault.ErrInjected) distinguishes a scheduled fault from the real
// world's. Injected errors also unwrap to their errno (syscall.EIO,
// syscall.ENOSPC), so the code under test cannot tell the difference —
// only the harness can.
var ErrInjected = errors.New("fault: injected")

// injectedError carries the op and the errno of one fired fault.
type injectedError struct {
	op  Op
	err error
}

func (e *injectedError) Error() string { return fmt.Sprintf("fault: injected %s on %s", e.err, e.op) }
func (e *injectedError) Is(target error) bool {
	return target == ErrInjected || errors.Is(e.err, target)
}
func (e *injectedError) Unwrap() error { return e.err }

// Rule is one schedule entry: when the trigger matches an op's counter,
// the effect fires. Exactly one trigger (Nth or Every) and one effect
// (Err, TruncateAt, Delay or Status) should be set; ParseRules enforces
// this for the string form.
type Rule struct {
	// Op selects which operation counter this rule watches.
	Op Op
	// Nth fires on exactly the Nth op of the kind (1-based), once.
	Nth uint64
	// Every fires on every Every-th op of the kind (count%Every == 0).
	Every uint64
	// Err is the error to inject — typically syscall.EIO or
	// syscall.ENOSPC (see ParseRules's "eio"/"enospc").
	Err error
	// Torn, for OpWrite rules, makes the write tear: only the first
	// TruncateAt bytes reach the file, then the write fails with EIO —
	// a torn write at a deterministic byte offset.
	Torn       bool
	TruncateAt int
	// Delay stalls the op before it runs (the op itself then proceeds
	// normally unless another effect is set). Models a slow disk or a
	// congested network without failing anything.
	Delay time.Duration
	// Status, for OpRoundTrip rules, synthesizes an HTTP response with
	// this status code (plus a Retry-After: 1 header on 429/503)
	// instead of performing the round trip.
	Status int
}

// matches reports whether the rule fires on the count-th op.
func (r Rule) matches(op Op, count uint64) bool {
	if r.Op != op {
		return false
	}
	if r.Nth > 0 {
		return count == r.Nth
	}
	return r.Every > 0 && count%r.Every == 0
}

// ParseRules parses the battload/-test schedule syntax: a comma list of
// rules, each "op:trigger:effect".
//
//	write:nth=3:eio        the 3rd write fails with EIO
//	sync:every=5:enospc    every 5th fsync fails with ENOSPC
//	write:nth=7:torn@128   the 7th write tears after 128 bytes (then EIO)
//	rename:nth=1:delay@50ms  the 1st rename is delayed 50ms
//	roundtrip:every=4:status@503  every 4th HTTP request answers 503
//
// Ops: mkdir readdir read remove rename create write sync close chtimes
// syncdir roundtrip. Triggers: nth=N (once) or every=K (stride).
// Effects: eio, enospc, torn@BYTES (write only), delay@DURATION,
// status@CODE (roundtrip only).
func ParseRules(s string) ([]Rule, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var rules []Rule
	for _, part := range strings.Split(s, ",") {
		r, err := parseRule(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	return rules, nil
}

func parseRule(s string) (Rule, error) {
	var r Rule
	fields := strings.Split(s, ":")
	if len(fields) != 3 {
		return r, fmt.Errorf("fault: rule %q is not op:trigger:effect", s)
	}
	r.Op = Op(fields[0])
	if !ops[r.Op] {
		return r, fmt.Errorf("fault: rule %q: unknown op %q", s, fields[0])
	}

	trig, val, ok := strings.Cut(fields[1], "=")
	n, err := strconv.ParseUint(val, 10, 64)
	if !ok || err != nil || n == 0 {
		return r, fmt.Errorf("fault: rule %q: trigger must be nth=N or every=K with positive N", s)
	}
	switch trig {
	case "nth":
		r.Nth = n
	case "every":
		r.Every = n
	default:
		return r, fmt.Errorf("fault: rule %q: unknown trigger %q", s, trig)
	}

	effect, arg, hasArg := strings.Cut(fields[2], "@")
	switch effect {
	case "eio":
		r.Err = syscall.EIO
	case "enospc":
		r.Err = syscall.ENOSPC
	case "torn":
		if r.Op != OpWrite {
			return r, fmt.Errorf("fault: rule %q: torn applies to write only", s)
		}
		at, err := strconv.Atoi(arg)
		if !hasArg || err != nil || at < 0 {
			return r, fmt.Errorf("fault: rule %q: torn needs @BYTES", s)
		}
		r.Torn, r.TruncateAt = true, at
	case "delay":
		d, err := time.ParseDuration(arg)
		if !hasArg || err != nil || d <= 0 {
			return r, fmt.Errorf("fault: rule %q: delay needs @DURATION", s)
		}
		r.Delay = d
	case "status":
		if r.Op != OpRoundTrip {
			return r, fmt.Errorf("fault: rule %q: status applies to roundtrip only", s)
		}
		code, err := strconv.Atoi(arg)
		if !hasArg || err != nil || code < 100 || code > 599 {
			return r, fmt.Errorf("fault: rule %q: status needs @CODE in [100,599]", s)
		}
		r.Status = code
	default:
		return r, fmt.Errorf("fault: rule %q: unknown effect %q", s, effect)
	}
	return r, nil
}

// Injector wraps an FS, firing the scheduled faults. Safe for
// concurrent use; the per-op counters are a single serialized sequence,
// so a schedule's meaning does not depend on goroutine interleaving
// beyond the op order itself.
type Injector struct {
	fs    FS
	rules []Rule

	mu       sync.Mutex
	counts   map[Op]uint64
	injected uint64
	byOp     map[Op]uint64
}

// NewInjector wraps fsys with the scheduled rules. A rule-free injector
// is a transparent pass-through that still counts ops — which is
// exactly what the sync-counting regression tests want.
func NewInjector(fsys FS, rules ...Rule) *Injector {
	return &Injector{
		fs:     fsys,
		rules:  rules,
		counts: make(map[Op]uint64),
		byOp:   make(map[Op]uint64),
	}
}

// outcome is what the schedule resolved for one op: at most one of err,
// torn (with its offset) or status fires; delay composes with any.
type outcome struct {
	err    error
	torn   bool
	tornAt int
	status int
	delay  time.Duration
}

// step advances op's counter and resolves the schedule without pausing —
// the caller owns the delay (the HTTP seam waits context-aware, the FS
// seam plain-sleeps via stepWait).
func (in *Injector) step(op Op) outcome {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.counts[op]++
	count := in.counts[op]
	var out outcome
	for _, r := range in.rules {
		if !r.matches(op, count) {
			continue
		}
		if r.Delay > 0 {
			out.delay += r.Delay
		}
		if r.Err != nil && out.err == nil {
			out.err = &injectedError{op: op, err: r.Err}
		}
		if r.Torn && !out.torn {
			out.torn, out.tornAt = true, r.TruncateAt
			if out.err == nil {
				out.err = &injectedError{op: op, err: syscall.EIO}
			}
		}
		if r.Status != 0 && out.status == 0 {
			out.status = r.Status
		}
	}
	if out.err != nil || out.status != 0 {
		in.injected++
		in.byOp[op]++
	}
	return out
}

// stepWait is step plus the resolved delay, slept in place — the slow
// disk. Filesystem calls have no context to interrupt them, exactly
// like the real syscalls.
func (in *Injector) stepWait(op Op) outcome {
	out := in.step(op)
	if out.delay > 0 {
		time.Sleep(out.delay)
	}
	return out
}

// Count returns how many ops of the kind have been attempted (fired or
// not) — the observability hook for "the store fsyncs the directory
// exactly twice per write" style assertions.
func (in *Injector) Count(op Op) uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts[op]
}

// Injected returns how many faults have fired in total.
func (in *Injector) Injected() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.injected
}

// InjectedOn returns how many faults have fired on one op kind.
func (in *Injector) InjectedOn(op Op) uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.byOp[op]
}

// InjectedByOp returns a copy of the per-op fired-fault counts — the
// chaos harness's ledger of what actually happened.
func (in *Injector) InjectedByOp() map[Op]uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Op]uint64, len(in.byOp))
	for op, n := range in.byOp {
		out[op] = n
	}
	return out
}

// FS seam implementation: every method steps the schedule, then either
// fails with the injected error or passes through.

func (in *Injector) MkdirAll(path string, perm fs.FileMode) error {
	if out := in.stepWait(OpMkdirAll); out.err != nil {
		return out.err
	}
	return in.fs.MkdirAll(path, perm)
}

func (in *Injector) ReadDir(name string) ([]fs.DirEntry, error) {
	if out := in.stepWait(OpReadDir); out.err != nil {
		return nil, out.err
	}
	return in.fs.ReadDir(name)
}

func (in *Injector) ReadFile(name string) ([]byte, error) {
	if out := in.stepWait(OpReadFile); out.err != nil {
		return nil, out.err
	}
	return in.fs.ReadFile(name)
}

func (in *Injector) Remove(name string) error {
	if out := in.stepWait(OpRemove); out.err != nil {
		return out.err
	}
	return in.fs.Remove(name)
}

func (in *Injector) Rename(oldpath, newpath string) error {
	if out := in.stepWait(OpRename); out.err != nil {
		return out.err
	}
	return in.fs.Rename(oldpath, newpath)
}

func (in *Injector) Chtimes(name string, atime, mtime time.Time) error {
	if out := in.stepWait(OpChtimes); out.err != nil {
		return out.err
	}
	return in.fs.Chtimes(name, atime, mtime)
}

func (in *Injector) SyncDir(name string) error {
	if out := in.stepWait(OpSyncDir); out.err != nil {
		return out.err
	}
	return in.fs.SyncDir(name)
}

func (in *Injector) CreateTemp(dir, pattern string) (File, error) {
	if out := in.stepWait(OpCreate); out.err != nil {
		return nil, out.err
	}
	f, err := in.fs.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &injectFile{File: f, in: in}, nil
}

// injectFile threads the write/sync/close ops of a created file through
// the schedule — this is where torn writes happen.
type injectFile struct {
	File
	in *Injector
}

func (f *injectFile) Write(p []byte) (int, error) {
	out := f.in.stepWait(OpWrite)
	if out.torn {
		// The torn write: the first tornAt bytes land, the rest never
		// do. The underlying short write is real — a crash-shaped
		// artifact on the actual file.
		n := out.tornAt
		if n > len(p) {
			n = len(p)
		}
		wrote, werr := f.File.Write(p[:n])
		if werr != nil {
			return wrote, werr
		}
		return wrote, out.err
	}
	if out.err != nil {
		return 0, out.err
	}
	return f.File.Write(p)
}

func (f *injectFile) Sync() error {
	if out := f.in.stepWait(OpSync); out.err != nil {
		return out.err
	}
	return f.File.Sync()
}

func (f *injectFile) Close() error {
	if out := f.in.stepWait(OpClose); out.err != nil {
		f.File.Close() // release the descriptor regardless
		return out.err
	}
	return f.File.Close()
}

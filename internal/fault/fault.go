// Package fault is the repository's deterministic fault-injection
// layer: the seams through which I/O reaches the outside world, plus an
// injector that makes those seams fail on a reproducible schedule.
//
// A fleet's steady state is partial failure — disks return EIO and
// ENOSPC mid-write, writes tear at arbitrary byte offsets, processes
// die between rename and directory sync — so the serving stack treats
// I/O faults as ordinary inputs with defined, tested behavior. That is
// only testable if faults can be produced on demand and reproduced
// bit-for-bit, which rules out probability-based chaos: everything here
// is counter- and stride-driven (fail the Nth op, fail every k-th op),
// the same no-PRNG discipline as internal/loadgen.
//
// Two seams:
//
//   - FS: the filesystem operations internal/store performs. The store
//     is written against this interface; production passes OS (the real
//     filesystem), tests pass an *Injector wrapping it.
//   - Transport: an http.RoundTripper wrapper for client-side testing —
//     fail the Nth request, synthesize a 503, add latency.
//
// Injected errors unwrap to the real errno (syscall.EIO, syscall.ENOSPC)
// so code under test cannot tell them from the disk's own, and they all
// wrap ErrInjected so harnesses can count what they caused.
//
//battlint:deterministic
package fault

import (
	"io/fs"
	"os"
	"time"
)

// File is the writable-file surface the store needs from CreateTemp:
// write, durability, close, and the name to rename from.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
	Name() string
}

// FS is the filesystem seam: every operation internal/store performs on
// its directory tree, and nothing more. Implementations must be safe
// for concurrent use (the real filesystem is; injectors serialize their
// schedule internally).
type FS interface {
	// MkdirAll creates a directory path, like os.MkdirAll.
	MkdirAll(path string, perm fs.FileMode) error
	// ReadDir lists a directory, like os.ReadDir.
	ReadDir(name string) ([]fs.DirEntry, error)
	// ReadFile reads a whole file, like os.ReadFile.
	ReadFile(name string) ([]byte, error)
	// Remove deletes a file, like os.Remove.
	Remove(name string) error
	// Rename atomically replaces newpath with oldpath, like os.Rename.
	Rename(oldpath, newpath string) error
	// CreateTemp creates a unique temp file in dir, like os.CreateTemp.
	CreateTemp(dir, pattern string) (File, error)
	// Chtimes sets a file's access and modification times, like
	// os.Chtimes.
	Chtimes(name string, atime, mtime time.Time) error
	// SyncDir fsyncs a directory, making the entries it holds (renames
	// into it, removals from it) durable. There is no os.SyncDir; the
	// real implementation opens the directory and calls Fsync on it —
	// the step POSIX requires between "the rename returned" and "the
	// rename survives a power cut".
	SyncDir(name string) error
}

// OS is the real filesystem: the production FS every seam defaults to.
var OS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Chtimes(name string, a, m time.Time) error    { return os.Chtimes(name, a, m) }
func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// SyncDir opens the directory read-only and fsyncs it. Platforms where
// directory fsync is unsupported surface their error to the caller,
// which treats durability failures as counted, degradable events.
func (osFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

package analysis

import (
	"go/token"
	"sort"
	"strconv"
	"strings"
)

// SuppressionDirective is the comment vocabulary that acknowledges a
// finding in place: //battlint:allow <analyzer> <reason>. It applies to
// diagnostics on its own line and on the line directly below it, so it
// works both as a trailing comment and as a line of its own above the
// reported statement.
const SuppressionDirective = "battlint:allow"

// MetaAnalyzer names the pseudo-analyzer that reports problems with the
// suppression comments themselves. It cannot be suppressed.
const MetaAnalyzer = "battlint"

// suppression is one parsed //battlint:allow comment.
type suppression struct {
	file     string
	line     int
	analyzer string
	pos      token.Pos
}

// Filter applies the package's //battlint:allow comments to findings: a
// finding whose analyzer is named by a suppression on the same line (or
// the line directly below the suppression) is dropped. Problems in the
// suppressions themselves come back as MetaAnalyzer findings, so a
// typo'd or unjustified allow can never silently disable a check:
//
//   - an analyzer name not in known (the full battlint vocabulary),
//   - a missing reason,
//   - a suppression that matches no finding of an analyzer that ran
//     (ran nil means every known analyzer ran) — stale allows only
//     mislead.
//
// The returned slice is sorted.
func Filter(findings []Finding, pkg *Package, known, ran map[string]bool) []Finding {
	if ran == nil {
		ran = known
	}
	var sups []suppression
	var out []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//"+SuppressionDirective)
				if !ok {
					continue
				}
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				name, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
				reason = strings.TrimSpace(reason)
				switch {
				case name == "":
					out = append(out, Finding{
						Analyzer: MetaAnalyzer, Pos: pos,
						Message: "battlint:allow needs an analyzer name and a reason: //battlint:allow <analyzer> <reason>",
					})
					continue
				case !known[name]:
					out = append(out, Finding{
						Analyzer: MetaAnalyzer, Pos: pos,
						Message: "battlint:allow names unknown analyzer " + strconv.Quote(name) + " (known: " + strings.Join(sortedKeys(known), ", ") + ")",
					})
					continue
				case reason == "":
					out = append(out, Finding{
						Analyzer: MetaAnalyzer, Pos: pos,
						Message: "battlint:allow " + name + " needs a reason explaining why the finding is acceptable",
					})
					continue
				}
				sups = append(sups, suppression{
					file: pos.Filename, line: pos.Line,
					analyzer: name, pos: c.Pos(),
				})
			}
		}
	}

	used := make([]bool, len(sups))
findings:
	for _, f := range findings {
		for i, s := range sups {
			if s.analyzer == f.Analyzer && s.file == f.Pos.Filename &&
				(s.line == f.Pos.Line || s.line+1 == f.Pos.Line) {
				used[i] = true
				continue findings
			}
		}
		out = append(out, f)
	}
	for i, s := range sups {
		if !used[i] && ran[s.analyzer] {
			out = append(out, Finding{
				Analyzer: MetaAnalyzer, Pos: pkg.Fset.Position(s.pos),
				Message: "battlint:allow " + s.analyzer + " suppresses nothing here; remove it",
			})
		}
	}
	SortFindings(out)
	return out
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

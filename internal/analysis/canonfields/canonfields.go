// Package canonfields verifies that every exported field of a struct
// with a canonical byte encoding is actually written by that encoding —
// the invariant behind the content-addressed cache: two jobs that
// differ in any result-affecting field must hash differently, so a
// field the encoder forgets is a latent silent cache collision
// (battery.Spec.AppendCanonical), and a field it drops on a conversion
// boundary is a silently ignored request knob (wire.Job.ToEngine).
//
// An encoder is either
//
//   - a method named AppendCanonical, which implicitly covers its
//     receiver struct, or
//
//   - any function carrying one or more doc directives
//
//     //battlint:canonical <Type> [-Field ...]
//     //battlint:canonical <pkg>.<Type> [-Field ...]
//
//     naming the struct(s) it canonically encodes. <pkg> is the name of
//     an imported package (so cache.Key can claim core.Options).
//
// Coverage is computed over the encoder's body plus every same-package
// function it (transitively) calls: a field counts as written when a
// selector on a value of the target type reaches it. Fields that are
// deliberately not part of the encoding — result-neutral knobs like
// core.Options.Parallel — must be listed as -Field exclusions on the
// directive, which is the point: adding a field forces a conscious
// decision at the encoder, never a silent default. A -Field entry that
// names a missing field, or one the encoder does write, is itself
// reported so exclusions cannot go stale.
package canonfields

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the canonfields check.
var Analyzer = &analysis.Analyzer{
	Name: "canonfields",
	Doc:  "every exported field of a canonically encoded struct is written by its encoder (or consciously excluded)",
	Run:  run,
}

// encoderClaim binds one function to one struct type it must cover.
type encoderClaim struct {
	fn       *ast.FuncDecl
	target   *types.Named
	excluded map[string]bool
	pos      token.Pos // directive (or function name) position for reports
}

func run(pass *analysis.Pass) error {
	decls := funcDecls(pass)

	var claims []encoderClaim
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			// Explicit: //battlint:canonical directives. Reports anchor
			// at the function name, not the comment line, so fixture
			// `// want` assertions (and editors) have a code line to
			// attach to.
			explicit := map[*types.Named]bool{}
			args, _ := analysis.FuncDirectives(fn, "battlint:canonical")
			for _, arg := range args {
				claim, errMsg := parseDirective(pass, fn, arg)
				claim.pos = fn.Name.Pos()
				if errMsg != "" {
					pass.Reportf(fn.Name.Pos(), "%s", errMsg)
					continue
				}
				explicit[claim.target] = true
				claims = append(claims, claim)
			}
			// Implicit: AppendCanonical methods cover their receiver —
			// unless a directive on the same method already claims it
			// (the way to attach exclusions to an AppendCanonical).
			if fn.Name.Name == "AppendCanonical" && fn.Recv != nil && len(fn.Recv.List) == 1 {
				if named := analysis.NamedBase(pass.TypesInfo.TypeOf(fn.Recv.List[0].Type)); named != nil && !explicit[named] {
					if _, isStruct := named.Underlying().(*types.Struct); isStruct {
						claims = append(claims, encoderClaim{
							fn: fn, target: named,
							excluded: map[string]bool{},
							pos:      fn.Name.Pos(),
						})
					}
				}
			}
		}
	}

	for _, c := range claims {
		checkClaim(pass, decls, c)
	}
	return nil
}

// parseDirective resolves "<ref> [-Field ...]" against the package's
// type information.
func parseDirective(pass *analysis.Pass, fn *ast.FuncDecl, arg string) (encoderClaim, string) {
	fields := strings.Fields(arg)
	if len(fields) == 0 {
		return encoderClaim{}, "battlint:canonical needs a type: //battlint:canonical <Type|pkg.Type> [-Field ...]"
	}
	ref := fields[0]
	excluded := map[string]bool{}
	for _, f := range fields[1:] {
		name, ok := strings.CutPrefix(f, "-")
		if !ok || name == "" {
			return encoderClaim{}, "battlint:canonical: field exclusions must look like -FieldName, got " + quote(f)
		}
		excluded[name] = true
	}

	var obj types.Object
	if pkgName, typeName, qualified := strings.Cut(ref, "."); qualified {
		var scope *types.Scope
		for _, imp := range pass.Pkg.Imports() {
			if imp.Name() == pkgName {
				scope = imp.Scope()
				break
			}
		}
		if scope == nil {
			return encoderClaim{}, "battlint:canonical: no imported package named " + quote(pkgName)
		}
		obj = scope.Lookup(typeName)
	} else {
		obj = pass.Pkg.Scope().Lookup(ref)
	}
	if obj == nil {
		return encoderClaim{}, "battlint:canonical: cannot resolve type " + quote(ref)
	}
	named := analysis.NamedBase(obj.Type())
	if named == nil {
		return encoderClaim{}, "battlint:canonical: " + quote(ref) + " is not a named type"
	}
	if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
		return encoderClaim{}, "battlint:canonical: " + quote(ref) + " is not a struct type"
	}
	return encoderClaim{fn: fn, target: named, excluded: excluded}, ""
}

// checkClaim computes field coverage for one claim and reports gaps.
func checkClaim(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, c encoderClaim) {
	covered := coverage(pass, decls, c.fn, c.target)
	st := c.target.Underlying().(*types.Struct)
	typeName := types.TypeString(c.target, types.RelativeTo(pass.Pkg))

	fieldNames := map[string]bool{}
	for i := 0; i < st.NumFields(); i++ {
		field := st.Field(i)
		fieldNames[field.Name()] = true
		if !field.Exported() {
			continue
		}
		switch {
		case c.excluded[field.Name()] && covered[field.Name()]:
			pass.Reportf(c.pos, "stale exclusion: %s.%s is listed as -%s but the encoder writes it",
				typeName, field.Name(), field.Name())
		case !c.excluded[field.Name()] && !covered[field.Name()]:
			pass.Reportf(c.pos, "%s does not canonicalize exported field %s.%s: encode it or exclude it with -%s and a comment saying why it cannot affect the result",
				c.fn.Name.Name, typeName, field.Name(), field.Name())
		}
	}
	for name := range c.excluded {
		if !fieldNames[name] {
			pass.Reportf(c.pos, "exclusion -%s names no field of %s", name, typeName)
		}
	}
}

// coverage returns the set of target-struct fields selected anywhere in
// fn's body or in the body of any same-package function it transitively
// calls.
func coverage(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, fn *ast.FuncDecl, target *types.Named) map[string]bool {
	covered := map[string]bool{}
	seen := map[*ast.FuncDecl]bool{}
	queue := []*ast.FuncDecl{fn}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == nil || seen[cur] || cur.Body == nil {
			continue
		}
		seen[cur] = true
		ast.Inspect(cur.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				sel := pass.TypesInfo.Selections[n]
				if sel == nil || sel.Kind() != types.FieldVal {
					return true
				}
				if analysis.NamedBase(sel.Recv()) == target {
					// Index()[0] is the field of the target itself even
					// when the access is promoted through embedding.
					st := target.Underlying().(*types.Struct)
					covered[st.Field(sel.Index()[0]).Name()] = true
				}
			case *ast.CallExpr:
				if callee := analysis.CalleeFunc(pass.TypesInfo, n); callee != nil && callee.Pkg() == pass.Pkg {
					if d, ok := decls[callee]; ok {
						queue = append(queue, d)
					}
				}
			}
			return true
		})
	}
	return covered
}

// funcDecls indexes this package's function declarations by their
// types.Func objects.
func funcDecls(pass *analysis.Pass) map[*types.Func]*ast.FuncDecl {
	out := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok {
				if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
					out[obj] = fn
				}
			}
		}
	}
	return out
}

func quote(s string) string { return `"` + s + `"` }

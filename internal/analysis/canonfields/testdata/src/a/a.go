package a

// Spec mirrors battery.Spec: a struct with an AppendCanonical encoder.
// Omitted is the seeded violation — a field added without a matching
// canonical write.
type Spec struct {
	Kind    string
	Beta    float64
	Omitted float64
	note    string // unexported: not part of the contract
}

func (s Spec) AppendCanonical(dst []byte) []byte { // want `AppendCanonical does not canonicalize exported field Spec\.Omitted`
	dst = appendStr(dst, s.Kind)
	dst = appendF64(dst, s.Beta)
	return dst
}

// Pair's encoder covers its fields only through same-package helpers:
// coverage must follow the local call graph.
type Pair struct {
	A int
	B int
}

func (p Pair) AppendCanonical(dst []byte) []byte {
	return p.encodeB(p.encodeA(dst))
}

func (p Pair) encodeA(dst []byte) []byte { return appendI64(dst, int64(p.A)) }
func (p Pair) encodeB(dst []byte) []byte { return appendI64(dst, int64(p.B)) }

// Options is canonicalized by an annotated free function, the
// cache.Key shape: Z is consciously excluded.
type Options struct {
	X int
	Y int
	Z int
}

//battlint:canonical Options -Z
func hashOptions(o Options) int {
	return o.X + o.Y
}

//battlint:canonical Options -Y
func hashStale(o Options) int { // want `hashStale does not canonicalize exported field Options\.Z` `stale exclusion: Options\.Y is listed as -Y but the encoder writes it`
	return o.X + o.Y
}

//battlint:canonical Options -Q
func hashTypo(o Options) int { // want `exclusion -Q names no field of Options`
	return o.X + o.Y + o.Z
}

// hashAllowed leaves Z unencoded and acknowledges the finding in place
// rather than excluding the field — the suppression path.
//
//battlint:canonical Options
//battlint:allow canonfields Z is hashed by a separate digest in this fixture
func hashAllowed(o Options) int { // want `hashAllowed does not canonicalize exported field Options\.Z`
	return o.X + o.Y
}

//battlint:canonical NoSuchType
func hashUnresolved() int { // want `battlint:canonical: cannot resolve type "NoSuchType"`
	return 0
}

func appendStr(dst []byte, s string) []byte  { return append(dst, s...) }
func appendF64(dst []byte, v float64) []byte { return append(dst, byte(int(v))) }
func appendI64(dst []byte, v int64) []byte   { return append(dst, byte(v)) }

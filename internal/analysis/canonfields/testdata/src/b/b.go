// Package b exercises cross-package claims: the cache.Key shape, where
// the encoder lives in a different package than the struct it hashes.
package b

import "a"

//battlint:canonical a.Options -Z
func Hash(o a.Options) int {
	return o.X + o.Y
}

//battlint:canonical nosuchpkg.Options
func HashBadPkg(o a.Options) int { // want `battlint:canonical: no imported package named "nosuchpkg"`
	return o.X
}

//battlint:canonical a.Options
func HashMissing(o a.Options) int { // want `HashMissing does not canonicalize exported field a\.Options\.Z`
	return o.X + o.Y
}

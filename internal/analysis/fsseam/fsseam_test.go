package fsseam_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/fsseam"
)

func TestFSSeam(t *testing.T) {
	analysistest.Run(t, "testdata", fsseam.Analyzer, "a", "b")
}

// TestSuppression proves the //battlint:allow fsseam in fixture a
// drops exactly its one finding, with no battlint meta-findings.
func TestSuppression(t *testing.T) {
	raw, filtered := analysistest.RunFiltered(t, "testdata", fsseam.Analyzer, "a")
	if want := len(raw) - 1; len(filtered) != want {
		t.Errorf("filtered findings = %d, want %d (one suppressed)", len(filtered), want)
	}
	for _, f := range filtered {
		if f.Analyzer == analysis.MetaAnalyzer {
			t.Errorf("unexpected meta-finding: %v", f)
		}
	}
}

// Package b is not marked fsseam: direct os calls are legal here (the
// fault seam's own production implementation lives in such a package).
package b

import "os"

func writeThrough(path string, data []byte) error {
	return os.WriteFile(path, data, 0o666)
}

func clean(path string) error {
	return os.Remove(path)
}

//battlint:fsseam

// Package a seeds fault-seam violations: it is marked fsseam, so every
// filesystem touch must go through an injectable FS, never os directly.
package a

import (
	"os"
	"path/filepath"
)

func writeEntry(dir, key string, data []byte) error {
	if err := os.MkdirAll(filepath.Join(dir, key[:2]), 0o777); err != nil { // want `direct os.MkdirAll in an fsseam package`
		return err
	}
	f, err := os.CreateTemp(dir, "entry-*.tmp") // want `direct os.CreateTemp in an fsseam package`
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(f.Name()) // want `direct os.Remove in an fsseam package`
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(f.Name(), filepath.Join(dir, key[:2], key)) // want `direct os.Rename in an fsseam package`
}

func readEntry(dir, key string) ([]byte, error) {
	return os.ReadFile(filepath.Join(dir, key[:2], key)) // want `direct os.ReadFile in an fsseam package`
}

func sweep(dir string) error {
	//battlint:allow fsseam fixture: a consciously unfaultable cleanup path
	return os.RemoveAll(dir) // want `direct os.RemoveAll in an fsseam package`
}

// stat-shaped metadata reads carry no modeled fault surface and stay
// legal.
func exists(path string) bool {
	_, err := os.Stat(path)
	return !os.IsNotExist(err)
}

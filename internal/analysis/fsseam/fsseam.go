// Package fsseam guards the fault-injection seam: in a package marked
//
//	//battlint:fsseam
//
// (internal/store — everything whose disk I/O must be interceptable by
// the deterministic fault injector), calling the os package's
// filesystem functions directly is reported. Such a call works fine in
// production and silently escapes every fault schedule: the injector
// wraps fault.FS, so an os.Rename beside it is a code path the chaos
// harness can never fail, which means a durability bug there ships
// untested. PR 9's dir-fsync-after-rename fix is exactly the class of
// bug this rule keeps visible — it was only testable because the
// rename went through the seam.
//
// The deny list covers the operations the seam provides (MkdirAll,
// ReadDir, ReadFile, Remove, Rename, CreateTemp, Chtimes) plus the
// near-misses that would bypass it just as well (Create, Open,
// OpenFile, WriteFile, Mkdir, RemoveAll, Truncate, Symlink, Link).
// Metadata reads (os.Stat, os.IsNotExist) stay legal — they carry no
// fault surface the schedules model. A deliberate exception (none
// exist today) is acknowledged in place with
// //battlint:allow fsseam <reason>. Test files are outside battlint's
// load, so tests may keep corrupting files behind the seam's back —
// that is their job.
package fsseam

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Directive is the package marker that activates this analyzer.
const Directive = "battlint:fsseam"

// Analyzer is the fsseam check.
var Analyzer = &analysis.Analyzer{
	Name: "fsseam",
	Doc:  "//battlint:fsseam packages route filesystem calls through fault.FS, never direct os.*",
	Run:  run,
}

// forbidden is the os functions a seam package must not call directly.
var forbidden = map[string]bool{
	"Mkdir": true, "MkdirAll": true,
	"ReadDir": true, "ReadFile": true, "WriteFile": true,
	"Remove": true, "RemoveAll": true, "Rename": true,
	"Create": true, "CreateTemp": true, "Open": true, "OpenFile": true,
	"Chtimes": true, "Truncate": true, "Symlink": true, "Link": true,
}

func run(pass *analysis.Pass) error {
	if !analysis.HasPackageDirective(pass.Files, Directive) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !forbidden[sel.Sel.Name] {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok || pkgName.Imported().Path() != "os" {
				return true
			}
			pass.Reportf(sel.Pos(), "direct os.%s in an fsseam package bypasses the fault.FS seam — no fault schedule can reach it", sel.Sel.Name)
			return true
		})
	}
	return nil
}

package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// parse builds the minimal Package Filter consults: parsed files and
// their fset. No type checking needed.
func parse(t *testing.T, src string) *analysis.Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	return &analysis.Package{PkgPath: "fix", Fset: fset, Files: []*ast.File{f}}
}

// finding fabricates a detrange finding at fix.go:line.
func finding(line int) analysis.Finding {
	return analysis.Finding{
		Analyzer: "detrange",
		Pos:      token.Position{Filename: "fix.go", Line: line, Column: 2},
		Message:  "range over map in a deterministic package",
	}
}

var known = map[string]bool{"detrange": true, "hotpath": true}

func metaMessages(fs []analysis.Finding) []string {
	var out []string
	for _, f := range fs {
		if f.Analyzer == analysis.MetaAnalyzer {
			out = append(out, f.Message)
		}
	}
	return out
}

func TestFilterSuppressesSameLine(t *testing.T) {
	pkg := parse(t, `package fix

func f() {
	//battlint:allow detrange the fold is commutative
	var _ = 0
}
`)
	// The directive is on line 4; a suppression covers its own line and
	// the line below.
	for _, line := range []int{4, 5} {
		got := analysis.Filter([]analysis.Finding{finding(line)}, pkg, known, nil)
		if len(got) != 0 {
			t.Errorf("finding on line %d not suppressed: %v", line, got)
		}
	}
	// Two lines below is out of range: the finding survives and the
	// allow is reported as stale.
	got := analysis.Filter([]analysis.Finding{finding(6)}, pkg, known, nil)
	if len(got) != 2 {
		t.Fatalf("got %d findings, want 2 (survivor + stale allow): %v", len(got), got)
	}
	if metas := metaMessages(got); len(metas) != 1 || !strings.Contains(metas[0], "suppresses nothing") {
		t.Errorf("stale allow not reported: %v", got)
	}
}

func TestFilterWrongAnalyzerDoesNotSuppress(t *testing.T) {
	pkg := parse(t, `package fix

func f() {
	//battlint:allow hotpath benchmarked, the alloc is amortized
	var _ = 0
}
`)
	got := analysis.Filter([]analysis.Finding{finding(5)}, pkg, known, nil)
	// The detrange finding survives, and the hotpath allow (matching
	// nothing) is stale.
	if len(got) != 2 {
		t.Fatalf("got %d findings, want 2: %v", len(got), got)
	}
}

func TestFilterUnknownAnalyzer(t *testing.T) {
	pkg := parse(t, `package fix

//battlint:allow detrnge typo'd analyzer name
func f() {}
`)
	got := analysis.Filter(nil, pkg, known, nil)
	metas := metaMessages(got)
	if len(metas) != 1 {
		t.Fatalf("got %d meta-findings, want 1: %v", len(metas), got)
	}
	if !strings.Contains(metas[0], `unknown analyzer "detrnge"`) ||
		!strings.Contains(metas[0], "detrange, hotpath") {
		t.Errorf("unknown-analyzer message should name the typo and list the vocabulary, got %q", metas[0])
	}
}

func TestFilterMissingNameAndReason(t *testing.T) {
	pkg := parse(t, `package fix

//battlint:allow
func f() {}

//battlint:allow detrange
func g() {}
`)
	got := analysis.Filter(nil, pkg, known, nil)
	metas := metaMessages(got)
	if len(metas) != 2 {
		t.Fatalf("got %d meta-findings, want 2: %v", len(metas), got)
	}
	if !strings.Contains(metas[0], "needs an analyzer name and a reason") {
		t.Errorf("bare allow: got %q", metas[0])
	}
	if !strings.Contains(metas[1], "needs a reason") {
		t.Errorf("reasonless allow: got %q", metas[1])
	}
}

func TestFilterStaleSkippedWhenAnalyzerDidNotRun(t *testing.T) {
	pkg := parse(t, `package fix

//battlint:allow hotpath the alloc is amortized across windows
func f() {}
`)
	// Only detrange ran: the unmatched hotpath allow cannot be declared
	// stale — its analyzer produced no findings to match.
	got := analysis.Filter(nil, pkg, known, map[string]bool{"detrange": true})
	if len(got) != 0 {
		t.Errorf("allow for a non-run analyzer reported stale: %v", got)
	}
	// With the full vocabulary run, the same allow IS stale.
	got = analysis.Filter(nil, pkg, known, nil)
	if metas := metaMessages(got); len(metas) != 1 || !strings.Contains(metas[0], "suppresses nothing") {
		t.Errorf("stale allow not reported under full run: %v", got)
	}
}

func TestFilterLongerDirectiveNameNotConfused(t *testing.T) {
	// //battlint:allowance must not parse as an allow.
	pkg := parse(t, `package fix

//battlint:allowance detrange not a suppression
func f() {}
`)
	got := analysis.Filter([]analysis.Finding{finding(4)}, pkg, known, nil)
	if len(got) != 1 || got[0].Analyzer != "detrange" {
		t.Errorf("battlint:allowance treated as a suppression: %v", got)
	}
}

// Package analysis is battlint's analyzer framework: a deliberately
// small, stdlib-only mirror of the golang.org/x/tools/go/analysis API
// (Analyzer, Pass, Diagnostic) plus the package loader and the
// //battlint:allow suppression layer the cmd/battlint driver runs them
// through.
//
// The repository's correctness guarantees — bit-identical results
// across every optimization, content-addressed cache keys that never
// silently collide or split, cancellation that reaches the innermost
// loop, a 0 allocs/op hot path — were previously enforced only by tests
// and reviewer vigilance. The analyzers under internal/analysis/...
// machine-check them:
//
//	canonfields  every exported field feeding a canonical encoding is
//	             written by it (or consciously excluded)
//	ctxflow      a function that receives a ctx threads it: no
//	             context.Background/TODO, no dropping ctx by calling
//	             Run when RunContext exists
//	detrange     no map iteration order can leak into byte-deterministic
//	             outputs of //battlint:deterministic packages
//	fsseam       //battlint:fsseam packages route filesystem calls
//	             through fault.FS, never direct os.*
//	hotpath      //battsched:hotpath functions stay free of
//	             fmt/time.Now/math-rand calls and defer-in-loop
//	unusedwrite  a conservative, block-local dead-store check
//
// The API shape intentionally tracks x/tools so that, if the real
// go/analysis module ever becomes vendorable here, each analyzer ports
// by changing one import line. The one extension is the suppression
// vocabulary: a finding can be acknowledged in place with
//
//	//battlint:allow <analyzer> <reason>
//
// on the reported line or the line above it. Suppressions are
// themselves checked — an unknown analyzer name or a missing reason is
// a finding.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one named invariant check. The fields mirror
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in findings and in
	// //battlint:allow suppressions. It must be a valid Go
	// identifier.
	Name string
	// Doc is the one-paragraph description -list prints.
	Doc string
	// Run applies the analyzer to one package, reporting findings
	// through the pass.
	Run func(*Pass) error
}

// A Pass connects one analyzer run to one loaded package. The fields
// mirror golang.org/x/tools/go/analysis.Pass.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps every token.Pos in Files.
	Fset *token.FileSet
	// Files are the package's parsed, comment-bearing syntax trees.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's expression, definition, use
	// and selection maps for Files.
	TypesInfo *types.Info
	// report collects findings; use Reportf.
	report func(Diagnostic)
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding inside a pass, positioned by token.Pos.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Finding is a driver-level diagnostic: resolved to a file position
// and tagged with the analyzer that produced it. The driver prints
// findings as "file:line:col: [analyzer] message".
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// RunAnalyzers applies every analyzer to pkg and returns the findings
// sorted by position. A panicking or erroring analyzer aborts the run —
// an analyzer bug must fail loudly, not silently pass a package.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	var out []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		name := a.Name
		pass.report = func(d Diagnostic) {
			out = append(out, Finding{
				Analyzer: name,
				Pos:      pkg.Fset.Position(d.Pos),
				Message:  d.Message,
			})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.PkgPath, err)
		}
	}
	SortFindings(out)
	return out, nil
}

// SortFindings orders findings by file, line, column, analyzer.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// Directive comments. Like the go toolchain's //go: directives these
// are machine-readable comment lines with no space after the slashes:
//
//	//battlint:deterministic          (package marker, any file)
//	//battsched:hotpath               (function doc marker)
//	//battlint:canonical <type> [-F]  (function doc marker, with args)
//	//battlint:allow <analyzer> <why> (suppression; see suppress.go)

// HasPackageDirective reports whether any comment line in any of the
// files is exactly //<name> — the placement-insensitive form used for
// package-wide markers like //battlint:deterministic.
func HasPackageDirective(files []*ast.File, name string) bool {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.TrimSpace(c.Text) == "//"+name {
					return true
				}
			}
		}
	}
	return false
}

// FuncDirectives returns the argument remainder of every doc-comment
// line of fn that starts with //<name>: the marker //battsched:hotpath
// yields one "" entry, //battlint:canonical core.Options -Parallel
// yields "core.Options -Parallel". The second result carries each
// directive's position for reporting.
func FuncDirectives(fn *ast.FuncDecl, name string) (args []string, poss []token.Pos) {
	if fn.Doc == nil {
		return nil, nil
	}
	for _, c := range fn.Doc.List {
		rest, ok := strings.CutPrefix(c.Text, "//"+name)
		if !ok {
			continue
		}
		if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
			continue // e.g. //battlint:canonicalize is a different word
		}
		args = append(args, strings.TrimSpace(rest))
		poss = append(poss, c.Pos())
	}
	return args, poss
}

// CalleeFunc resolves the function or method a call expression invokes,
// or nil when the callee is not a declared *types.Func (a func-typed
// variable, a conversion, a builtin).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// NamedBase unwraps pointers and aliases down to the *types.Named type,
// or nil if t has none.
func NamedBase(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

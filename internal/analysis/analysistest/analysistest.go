// Package analysistest runs a battlint analyzer over seeded-violation
// fixture packages and checks its findings against expectations written
// in the fixture source, mirroring golang.org/x/tools/go/analysis/
// analysistest: a line that should be reported carries a comment
//
//	// want "regexp"
//
// (one or more Go string literals, each matched against one finding's
// message on that line). Every finding must be wanted and every want
// must be found. Fixtures live under the analyzer's
// testdata/src/<pkg>/ directory; sibling fixture packages are
// importable by their path under testdata/src.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run loads each fixture package from dir/src/<pkgpath>, applies the
// analyzer, and reports any mismatch between its findings and the
// fixtures' // want comments as test errors. It returns the raw
// (unfiltered) findings of the last package, so callers can feed them
// through analysis.Filter for suppression tests.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgpaths ...string) []analysis.Finding {
	t.Helper()
	var last []analysis.Finding
	for _, pkgpath := range pkgpaths {
		pkg, err := analysis.LoadFixtureDir(dir+"/src", pkgpath)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", pkgpath, err)
		}
		findings, err := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, pkgpath, err)
		}
		check(t, pkg, findings)
		last = findings
	}
	return last
}

// RunFiltered loads one fixture package, applies the analyzer, and
// returns its findings both raw and after //battlint:allow suppression
// (with the analyzer as the entire known vocabulary). Unlike Run it
// checks nothing itself: tests assert on the difference — typically
// that exactly the fixture's allowed findings disappeared and no
// battlint meta-findings took their place.
func RunFiltered(t *testing.T, dir string, a *analysis.Analyzer, pkgpath string) (raw, filtered []analysis.Finding) {
	t.Helper()
	pkg, err := analysis.LoadFixtureDir(dir+"/src", pkgpath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgpath, err)
	}
	raw, err = analysis.RunAnalyzers(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkgpath, err)
	}
	filtered = analysis.Filter(raw, pkg, map[string]bool{a.Name: true}, nil)
	return raw, filtered
}

// expectation is one parsed // want entry.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	text string
	met  bool
}

func check(t *testing.T, pkg *analysis.Package, findings []analysis.Finding) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				wants = append(wants, parseWants(t, pkg.Fset, c)...)
			}
		}
	}
	for _, got := range findings {
		matched := false
		for _, w := range wants {
			if w.met || w.file != got.Pos.Filename || w.line != got.Pos.Line {
				continue
			}
			if w.re.MatchString(got.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %v", got)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.text)
		}
	}
}

// parseWants extracts the expectations of one comment. The comment must
// read `// want` followed by one or more Go string literals (quoted or
// backquoted), each a regexp.
func parseWants(t *testing.T, fset *token.FileSet, c *ast.Comment) []*expectation {
	t.Helper()
	text, ok := strings.CutPrefix(c.Text, "// want ")
	if !ok {
		if text, ok = strings.CutPrefix(c.Text, "//want "); !ok {
			return nil
		}
	}
	pos := fset.Position(c.Pos())
	var out []*expectation
	rest := strings.TrimSpace(text)
	for rest != "" {
		lit, remainder, err := cutStringLit(rest)
		if err != nil {
			t.Fatalf("%s: malformed want comment: %v", pos, err)
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			t.Fatalf("%s: want pattern %q: %v", pos, lit, err)
		}
		out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, text: lit})
		rest = strings.TrimSpace(remainder)
	}
	if len(out) == 0 {
		t.Fatalf("%s: want comment has no patterns", pos)
	}
	return out
}

// cutStringLit splits one leading Go string literal off s.
func cutStringLit(s string) (lit, rest string, err error) {
	if s == "" {
		return "", "", fmt.Errorf("empty pattern")
	}
	quote := s[0]
	if quote != '"' && quote != '`' {
		return "", "", fmt.Errorf("pattern must be a quoted or backquoted string, got %q", s)
	}
	for i := 1; i < len(s); i++ {
		switch {
		case s[i] == '\\' && quote == '"':
			i++
		case s[i] == quote:
			lit, err := strconv.Unquote(s[:i+1])
			if err != nil {
				return "", "", err
			}
			return lit, s[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated pattern %q", s)
}

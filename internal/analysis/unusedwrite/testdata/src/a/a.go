package a

func f() int  { return 1 }
func g() int  { return 2 }
func use(int) {}

func deadStore() int {
	x := f() // want `this value of x is never used: it is overwritten at line 9 before any read`
	x = g()
	return x
}

func selfAssigned() int {
	x := f()
	x = x // want `self-assignment of x`
	return x
}

func readBetween() int {
	x := f()
	use(x)
	x = g()
	return x
}

func branchBetween(cond bool) int {
	x := f()
	if cond {
		return 0
	}
	x = g() // the branch could have observed... nothing, but we stay conservative
	return x
}

func escaped() int {
	x := f()
	p := &x
	x = g()
	return *p
}

func captured() func() int {
	x := f()
	probe := func() int { return x }
	x = g()
	return probe
}

func compound() int {
	x := f()
	x += g() // reads x: not a dead store
	return x
}

func blanked() {
	_ = f()
	_ = g()
}

func namedResult() (x int) {
	x = f()
	x = g() // named results feed bare returns and defers: never tracked
	return
}

func allowed() int {
	//battlint:allow unusedwrite keeping the call for its side effect while the rewrite lands
	x := f() // want `this value of x is never used: it is overwritten at line \d+ before any read`
	x = g()
	return x
}

// Package unusedwrite is a conservative, block-local dead-store check —
// the battlint stand-in for x/tools' SSA-based unusedwrite pass, which
// needs golang.org/x/tools and so cannot be vendored here. It reports a
// value assigned to a local variable that is provably overwritten
// before any read:
//
//	x = f()   // reported: never read
//	x = g()
//
// To keep every report true it only fires when nothing can observe the
// first write: the variable's address is never taken, no closure in the
// function captures it, both writes are single-assignments in the same
// statement list, and no intervening statement mentions the variable or
// branches (if/for/switch/select/return/goto/defer/go all end the
// window). Self-assignment x = x is reported under the same contract.
//
// A dead store is usually a refactoring leftover — and occasionally the
// symptom of a real bug where the second write was meant to use the
// first. Either way the code misleads; delete the store or use it.
package unusedwrite

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the unusedwrite check.
var Analyzer = &analysis.Analyzer{
	Name: "unusedwrite",
	Doc:  "a value assigned to a local variable must not be overwritten before any read (block-local, alias-free cases only)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
				checkFunc(pass, fn)
			}
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	escaped := escapedVars(pass, fn)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if list := stmtList(n); list != nil {
			checkList(pass, fn, escaped, list)
		}
		return true
	})
}

// stmtList returns the statement list a node directly holds, if any.
func stmtList(n ast.Node) []ast.Stmt {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return n.List
	case *ast.CaseClause:
		return n.Body
	case *ast.CommClause:
		return n.Body
	}
	return nil
}

// pendingWrite is an unobserved store awaiting a read or an overwrite.
type pendingWrite struct {
	pos token.Pos
	rhs ast.Expr
}

// checkList scans one straight statement list, tracking the last
// unread write per local variable. Any statement that could transfer
// control or observe memory indirectly clears all pending writes.
func checkList(pass *analysis.Pass, fn *ast.FuncDecl, escaped map[types.Object]bool, list []ast.Stmt) {
	pending := map[types.Object]pendingWrite{}
	for _, stmt := range list {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 ||
			(as.Tok != token.ASSIGN && as.Tok != token.DEFINE) {
			// Not a single plain write: anything this statement mentions
			// counts as a read, and control flow ends every window.
			if branches(stmt) {
				clear(pending)
			} else {
				markReads(pass, stmt, pending)
			}
			continue
		}

		obj := localTarget(pass, fn, escaped, as.Lhs[0])

		// Reads on the RHS come first (x = x+1 reads x), and a write
		// through any OTHER lvalue shape (x.f = v, a[i] = v) is an
		// opaque read of everything it mentions.
		markReads(pass, as.Rhs[0], pending)
		if obj == nil {
			markReads(pass, as.Lhs[0], pending)
			continue
		}

		if prev, ok := pending[obj]; ok {
			pass.Reportf(prev.pos, "this value of %s is never used: it is overwritten at line %d before any read",
				obj.Name(), pass.Fset.Position(as.Pos()).Line)
		}
		if selfAssign(pass, as) {
			pass.Reportf(as.Pos(), "self-assignment of %s", obj.Name())
		}
		pending[obj] = pendingWrite{pos: as.Pos(), rhs: as.Rhs[0]}
	}
}

// localTarget resolves an assignment target to a trackable local
// variable: a plain ident whose object is a non-escaping local var.
func localTarget(pass *analysis.Pass, fn *ast.FuncDecl, escaped map[types.Object]bool, lhs ast.Expr) types.Object {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	obj := pass.TypesInfo.ObjectOf(id)
	v, ok := obj.(*types.Var)
	if !ok || escaped[obj] || v.IsField() {
		return nil
	}
	// Only variables declared inside this function: package-level vars
	// are observable by anything.
	if obj.Pos() < fn.Pos() || obj.Pos() > fn.End() {
		return nil
	}
	// Named results are read by every return (including bare returns)
	// and by deferred functions.
	if isNamedResult(pass, fn, obj) {
		return nil
	}
	return obj
}

// branches reports whether the statement can transfer control (ending
// the straight-line window) — or detach work that may run later.
func branches(stmt ast.Stmt) bool {
	switch stmt.(type) {
	case *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt,
		*ast.TypeSwitchStmt, *ast.SelectStmt, *ast.BranchStmt,
		*ast.LabeledStmt, *ast.ReturnStmt, *ast.DeferStmt, *ast.GoStmt,
		*ast.BlockStmt:
		return true
	}
	return false
}

// markReads clears the pending write of every variable the node
// mentions.
func markReads(pass *analysis.Pass, n ast.Node, pending map[types.Object]pendingWrite) {
	if n == nil || len(pending) == 0 {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
				delete(pending, obj)
			}
		}
		return true
	})
}

// selfAssign reports x = x.
func selfAssign(pass *analysis.Pass, as *ast.AssignStmt) bool {
	if as.Tok != token.ASSIGN {
		return false
	}
	l, lok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
	r, rok := ast.Unparen(as.Rhs[0]).(*ast.Ident)
	return lok && rok &&
		pass.TypesInfo.ObjectOf(l) != nil &&
		pass.TypesInfo.ObjectOf(l) == pass.TypesInfo.ObjectOf(r)
}

// escapedVars collects every variable whose address is taken or that is
// referenced from a closure anywhere in the function — those can be
// read between any two statements, so they are never tracked.
func escapedVars(pass *analysis.Pass, fn *ast.FuncDecl) map[types.Object]bool {
	escaped := map[types.Object]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
					if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
						escaped[obj] = true
					}
				}
			}
		case *ast.FuncLit:
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
						escaped[obj] = true
					}
				}
				return true
			})
		}
		return true
	})
	return escaped
}

// isNamedResult reports whether obj is one of fn's named results.
func isNamedResult(pass *analysis.Pass, fn *ast.FuncDecl, obj types.Object) bool {
	if fn.Type.Results == nil {
		return false
	}
	for _, field := range fn.Type.Results.List {
		for _, name := range field.Names {
			if pass.TypesInfo.ObjectOf(name) == obj {
				return true
			}
		}
	}
	return false
}

package unusedwrite_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/unusedwrite"
)

func TestUnusedWrite(t *testing.T) {
	analysistest.Run(t, "testdata", unusedwrite.Analyzer, "a")
}

// TestSuppression proves the //battlint:allow unusedwrite in allowed()
// drops exactly its one finding, with no battlint meta-findings.
func TestSuppression(t *testing.T) {
	raw, filtered := analysistest.RunFiltered(t, "testdata", unusedwrite.Analyzer, "a")
	if want := len(raw) - 1; len(filtered) != want {
		t.Errorf("filtered findings = %d, want %d (one suppressed)", len(filtered), want)
	}
	for _, f := range filtered {
		if f.Analyzer == analysis.MetaAnalyzer {
			t.Errorf("unexpected meta-finding: %v", f)
		}
	}
}

// Package detrange guards byte-determinism: in a package marked
//
//	//battlint:deterministic
//
// (battery, cache, wire, core, taskgraph, engine, sched — everything
// whose output feeds canonical encodings, cache keys or cached result
// bodies), ranging over a map is reported unless the loop is one of the
// shapes whose result provably cannot depend on Go's randomized
// iteration order:
//
//   - sorted-keys collection: `for k := range m { s = append(s, k) }`
//     followed, later in the same block, by a sort of s
//     (sort.Ints/Strings/Float64s/Sort/Slice/Stable or slices.Sort*);
//   - order-free writes: a body consisting only of single-assignments
//     into other maps, `dst[k] = v` (distinct keys write distinct
//     entries) or `dst[v] = <constant>` (duplicate values rewrite the
//     same entry with the same constant), and/or `delete(m2, k)`;
//
// Anything else — appending values, folding a float sum, building an
// output line — can leak iteration order into bytes that PR 2/4/5
// promise are identical across runs, which silently splits
// content-addressed cache entries or flips bit-exactness. A loop that
// is order-independent for a deeper reason (a max over values, a
// commutative integer fold) is acknowledged in place with
// //battlint:allow detrange <reason>.
package detrange

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Directive is the package marker that activates this analyzer.
const Directive = "battlint:deterministic"

// Analyzer is the detrange check.
var Analyzer = &analysis.Analyzer{
	Name: "detrange",
	Doc:  "no map iteration order can reach the outputs of //battlint:deterministic packages",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !analysis.HasPackageDirective(pass.Files, Directive) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if list := stmtList(n); list != nil {
				checkList(pass, list)
			}
			return true
		})
	}
	return nil
}

// stmtList returns the statement list a node directly holds, if any.
// Every statement lives in exactly one such list, so visiting lists
// visits every range statement once — with its block tail in hand for
// the collect-then-sort idiom.
func stmtList(n ast.Node) []ast.Stmt {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return n.List
	case *ast.CaseClause:
		return n.Body
	case *ast.CommClause:
		return n.Body
	}
	return nil
}

// checkList examines every map-range statement in one statement list,
// with the list's tail available for the collect-then-sort idiom.
func checkList(pass *analysis.Pass, list []ast.Stmt) {
	for i, stmt := range list {
		for {
			ls, ok := stmt.(*ast.LabeledStmt)
			if !ok {
				break
			}
			stmt = ls.Stmt
		}
		rs, ok := stmt.(*ast.RangeStmt)
		if !ok {
			continue
		}
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			continue
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			continue
		}
		if orderFreeWrites(pass, rs) || collectThenSort(pass, rs, list[i+1:]) {
			continue
		}
		pass.Reportf(rs.For, "range over map in a deterministic package: iteration order is randomized; collect keys and sort, write key-to-key into another map, or //battlint:allow detrange <why order cannot reach the output>")
	}
}

// rangeVars returns the key and value loop variables as idents (nil
// when absent or blank).
func rangeVars(rs *ast.RangeStmt) (key, value *ast.Ident) {
	asIdent := func(e ast.Expr) *ast.Ident {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			return id
		}
		return nil
	}
	if rs.Key != nil {
		key = asIdent(rs.Key)
	}
	if rs.Value != nil {
		value = asIdent(rs.Value)
	}
	return key, value
}

// orderFreeWrites reports whether every statement of the body is an
// order-independent map write or delete.
func orderFreeWrites(pass *analysis.Pass, rs *ast.RangeStmt) bool {
	key, value := rangeVars(rs)
	if len(rs.Body.List) == 0 {
		return true // an empty body observes nothing
	}
	for _, stmt := range rs.Body.List {
		switch stmt := stmt.(type) {
		case *ast.AssignStmt:
			if !orderFreeAssign(pass, stmt, key, value) {
				return false
			}
		case *ast.ExprStmt:
			if !deleteByKey(pass, stmt.X, key) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// orderFreeAssign recognizes `dst[k] = v` and `dst[v] = <constant>`.
func orderFreeAssign(pass *analysis.Pass, as *ast.AssignStmt, key, value *ast.Ident) bool {
	if as.Tok.String() != "=" || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	idx, ok := as.Lhs[0].(*ast.IndexExpr)
	if !ok {
		return false
	}
	if xt := pass.TypesInfo.TypeOf(idx.X); xt == nil {
		return false
	} else if _, isMap := xt.Underlying().(*types.Map); !isMap {
		return false
	}
	switch {
	case isUse(pass, idx.Index, key):
		// Distinct keys address distinct entries: the RHS may be the
		// key, the value, or any constant.
		rhs := ast.Unparen(as.Rhs[0])
		return isUse(pass, rhs, key) || isUse(pass, rhs, value) || isConst(pass, rhs)
	case isUse(pass, idx.Index, value):
		// Duplicate values collide on one entry, so the write must be
		// idempotent: a constant RHS only.
		return isConst(pass, as.Rhs[0])
	}
	return false
}

// deleteByKey recognizes `delete(m, k)`.
func deleteByKey(pass *analysis.Pass, e ast.Expr, key *ast.Ident) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "delete" {
		return false
	}
	return isUse(pass, call.Args[1], key)
}

// collectThenSort recognizes the sorted-keys idiom: a body that only
// appends the key to a slice, with that slice sorted later in the
// enclosing block.
func collectThenSort(pass *analysis.Pass, rs *ast.RangeStmt, tail []ast.Stmt) bool {
	key, value := rangeVars(rs)
	if value != nil || key == nil {
		return false // collecting (k, v) pairs is already order-dependent
	}
	if len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || as.Tok.String() != "=" || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	dst, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	if fid, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok {
		return false
	} else if b, ok := pass.TypesInfo.Uses[fid].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	if !isUse(pass, call.Args[0], dst) || !isUse(pass, call.Args[1], key) {
		return false
	}
	// The collected slice must be sorted before the block ends.
	for _, stmt := range tail {
		es, ok := stmt.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			continue
		}
		if pkg := fn.Pkg().Path(); pkg != "sort" && pkg != "slices" {
			continue
		}
		if isUse(pass, call.Args[0], dst) {
			return true
		}
	}
	return false
}

// isUse reports whether e is a use of exactly the variable target
// denotes.
func isUse(pass *analysis.Pass, e ast.Expr, target *ast.Ident) bool {
	if target == nil {
		return false
	}
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	want := pass.TypesInfo.ObjectOf(target)
	return want != nil && pass.TypesInfo.ObjectOf(id) == want
}

// isConst reports whether e is a compile-time constant (true, 0, "x").
func isConst(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(e)]
	return ok && tv.Value != nil
}

// Package b is NOT marked //battlint:deterministic: detrange must stay
// silent however order-dependent the loops are.
package b

func foldValues(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func joinKeys(m map[string]bool) string {
	s := ""
	for k := range m {
		s += k
	}
	return s
}

//battlint:deterministic

// Package a seeds determinism violations: it is marked deterministic,
// so map ranges must use an order-independent idiom.
package a

import (
	"slices"
	"sort"
)

func foldValues(m map[string]int) int {
	total := 0
	for _, v := range m { // want `range over map in a deterministic package`
		total += v
	}
	return total
}

func collectNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want `range over map in a deterministic package`
		keys = append(keys, k)
	}
	return keys
}

func collectValues(m map[string]int) []int {
	var vals []int
	for _, v := range m { // want `range over map in a deterministic package`
		vals = append(vals, v)
	}
	sort.Ints(vals)
	return vals
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedKeysSlices(m map[int]bool) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

func copyMap(dst, src map[string]int) {
	for k, v := range src {
		dst[k] = v
	}
}

func valueSet(src map[string]string) map[string]bool {
	set := map[string]bool{}
	for _, v := range src {
		set[v] = true
	}
	return set
}

func valueIndex(src map[string]string) map[string]string {
	idx := map[string]string{}
	for k, v := range src { // want `range over map in a deterministic package`
		idx[v] = k // duplicate values collide: last writer wins by order
	}
	return idx
}

func purge(m map[string]int, doomed map[string]bool) {
	for k := range doomed {
		delete(m, k)
	}
}

func allowed(m map[string]int) int {
	max := 0
	//battlint:allow detrange max is commutative; order cannot reach the result
	for _, v := range m { // want `range over map in a deterministic package`
		if v > max {
			max = v
		}
	}
	return max
}

package a

import "context"

// Run is the compatibility-wrapper shape: no ctx parameter, so the
// Background here is exactly where it belongs.
func Run() error { return RunContext(context.Background()) }

func RunContext(ctx context.Context) error {
	_ = ctx
	return nil
}

func leak(ctx context.Context) error {
	_ = context.Background() // want `context\.Background\(\) inside a function that already has a ctx`
	_ = context.TODO()       // want `context\.TODO\(\) inside a function that already has a ctx`
	err := Run()             // want `call to Run drops the in-scope ctx: use RunContext`
	if err != nil {
		return err
	}
	return RunContext(ctx)
}

type Engine struct{}

func (e *Engine) Do()                           {}
func (e *Engine) DoContext(ctx context.Context) { _ = ctx }
func (e *Engine) Close()                        {}

func methods(ctx context.Context, e *Engine) {
	e.Do() // want `call to Do drops the in-scope ctx: use DoContext`
	e.DoContext(ctx)
	e.Close() // fine: no CloseContext exists
}

// Closures inherit the enclosing ctx lexically.
func closures(ctx context.Context) func() {
	return func() {
		_ = context.TODO() // want `context\.TODO\(\)`
	}
}

// And a closure can introduce its own ctx.
var hook = func(ctx context.Context) {
	_ = context.Background() // want `context\.Background\(\)`
}

// spawnAudit detaches deliberately: the audit record must outlive the
// request, and says so in place.
func spawnAudit(ctx context.Context) {
	_ = ctx
	//battlint:allow ctxflow the audit record must outlive request cancellation
	bg := context.Background() // want `context\.Background\(\) inside a function that already has a ctx`
	_ = bg
}

func noCtxAnywhere() {
	_ = context.Background() // fine: nothing to thread
	_ = Run()                // fine: no ctx in scope
}

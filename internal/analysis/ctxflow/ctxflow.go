// Package ctxflow keeps the request-scoped cancellation plumbing from
// regressing: once a function has been handed a context.Context, the
// context must keep flowing. Inside any function (or closure) with a
// ctx parameter in scope it reports
//
//   - calls to context.Background() or context.TODO(), which detach the
//     callee from the caller's cancellation, and
//   - calls to a function or method Run when a RunContext sibling
//     exists (same package for functions, same receiver type for
//     methods, first parameter context.Context) — the call silently
//     drops the in-scope ctx that the ...Context variant would carry.
//
// Exported no-ctx compatibility wrappers (Run calling
// RunContext(context.Background())) are exactly the place Background
// belongs, and they are not flagged: the wrapper itself has no ctx
// parameter. Deliberate detachment inside a ctx-bearing function — a
// background task that must outlive the request — is acknowledged with
// //battlint:allow ctxflow <reason>.
package ctxflow

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the ctxflow check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "a function that receives a context must thread it: no context.Background/TODO, no dropping ctx when a ...Context variant of the callee exists",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					walk(pass, d.Body, hasCtxParam(pass, d.Type))
				}
			case *ast.GenDecl:
				// Function literals in var initializers.
				walk(pass, d, false)
			}
		}
	}
	return nil
}

// walk visits body; inCtx reports whether a context parameter is
// lexically in scope (own parameter or an enclosing function's).
func walk(pass *analysis.Pass, n ast.Node, inCtx bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			walk(pass, n.Body, inCtx || hasCtxParam(pass, n.Type))
			return false // the recursive walk owns this subtree
		case *ast.CallExpr:
			if inCtx {
				checkCall(pass, n)
			}
		}
		return true
	})
}

// checkCall reports ctx-dropping calls; ctx is known to be in scope.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if fn.Pkg().Path() == "context" && (fn.Name() == "Background" || fn.Name() == "TODO") {
		pass.Reportf(call.Pos(), "context.%s() inside a function that already has a ctx: thread the caller's ctx (or //battlint:allow ctxflow <reason> if this work must outlive it)", fn.Name())
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || takesCtxFirst(sig) {
		return // already the context-aware variant
	}
	variant := fn.Name() + "Context"
	if found := lookupVariant(fn, sig, variant); found != nil {
		pass.Reportf(call.Pos(), "call to %s drops the in-scope ctx: use %s", fn.Name(), variant)
	}
}

// lookupVariant finds <name>Context with a leading context.Context
// parameter — among the methods of fn's receiver type for methods, in
// fn's package scope for package-level functions.
func lookupVariant(fn *types.Func, sig *types.Signature, variant string) *types.Func {
	if recv := sig.Recv(); recv != nil {
		obj, _, _ := types.LookupFieldOrMethod(recv.Type(), true, fn.Pkg(), variant)
		if m, ok := obj.(*types.Func); ok {
			if msig, ok := m.Type().(*types.Signature); ok && takesCtxFirst(msig) {
				return m
			}
		}
		return nil
	}
	if m, ok := fn.Pkg().Scope().Lookup(variant).(*types.Func); ok {
		if msig, ok := m.Type().(*types.Signature); ok && takesCtxFirst(msig) {
			return m
		}
	}
	return nil
}

// hasCtxParam reports whether the function type declares a
// context.Context parameter.
func hasCtxParam(pass *analysis.Pass, ft *ast.FuncType) bool {
	if ft == nil || ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if isCtxType(pass.TypesInfo.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

func takesCtxFirst(sig *types.Signature) bool {
	return sig.Params().Len() > 0 && isCtxType(sig.Params().At(0).Type())
}

func isCtxType(t types.Type) bool {
	named := analysis.NamedBase(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

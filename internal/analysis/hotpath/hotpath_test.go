package hotpath_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/hotpath"
)

func TestHotPath(t *testing.T) {
	analysistest.Run(t, "testdata", hotpath.Analyzer, "a")
}

// TestSuppression proves the //battlint:allow hotpath in setup() drops
// exactly its one finding, with no battlint meta-findings.
func TestSuppression(t *testing.T) {
	raw, filtered := analysistest.RunFiltered(t, "testdata", hotpath.Analyzer, "a")
	if want := len(raw) - 1; len(filtered) != want {
		t.Errorf("filtered findings = %d, want %d (one suppressed)", len(filtered), want)
	}
	for _, f := range filtered {
		if f.Analyzer == analysis.MetaAnalyzer {
			t.Errorf("unexpected meta-finding: %v", f)
		}
	}
}

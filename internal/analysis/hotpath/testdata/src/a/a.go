package a

import (
	"fmt"
	"math/rand"
	"time"
)

// hot is annotated and clean: plain arithmetic and local appends.
//
//battsched:hotpath
func hot(xs []float64) float64 {
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total
}

// bad is annotated and seeds every violation class.
//
//battsched:hotpath
func bad(xs []float64) string {
	t0 := time.Now() // want `bad is a hot-path function: time\.Now reads the wall clock per call`
	for range xs {
		defer trace() // want `bad is a hot-path function: defer inside a loop allocates per iteration`
	}
	jitter := rand.Float64()                // want `bad is a hot-path function: the search is deterministic; math/rand belongs only in multistart seeding`
	return fmt.Sprintf("%v %v", t0, jitter) // want `bad is a hot-path function: fmt\.Sprintf allocates`
}

// cold is NOT annotated: the same calls are fine here.
func cold(xs []float64) string {
	t0 := time.Now()
	defer trace()
	return fmt.Sprintf("%v %v", t0, rand.Float64())
}

// closureDefer's defer runs per closure call, not per loop iteration.
//
//battsched:hotpath
func closureDefer(xs []float64) {
	for range xs {
		fn := func() {
			defer trace()
		}
		fn()
	}
}

// setup is annotated but times itself once at entry, acknowledged in
// place.
//
//battsched:hotpath
func setup(xs []float64) time.Time {
	//battlint:allow hotpath one wall-clock read at entry, outside the per-window loop
	t0 := time.Now() // want `setup is a hot-path function: time\.Now reads the wall clock per call`
	for _, x := range xs {
		_ = x
	}
	return t0
}

func trace() {}

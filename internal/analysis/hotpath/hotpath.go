// Package hotpath protects the scratch-arena search path's 0 allocs/op
// steady state (PR 4): a function whose doc comment carries the
// directive
//
//	//battsched:hotpath
//
// must stay free of the cheap-looking calls that would silently put
// allocations or wall-clock reads back on the per-window path:
//
//   - any call into package fmt (Sprintf/Errorf/… all allocate),
//   - time.Now / time.Since / time.Until (a vDSO call per window adds
//     up, and wall-clock reads do not belong in a deterministic search),
//   - anything from math/rand or math/rand/v2 (the search is
//     deterministic; randomness belongs to multistart seeding only),
//   - defer inside a loop (each iteration allocates a deferred frame
//     that only runs at function exit).
//
// The check is on direct calls in the annotated function (closures
// included): annotate the functions BenchmarkTable3WindowSweep proves
// allocation-free, and the analyzer keeps them that way. An
// intentional exception is acknowledged with
// //battlint:allow hotpath <reason>.
package hotpath

import (
	"go/ast"

	"repro/internal/analysis"
)

// Directive marks a function as part of the allocation-free hot path.
const Directive = "battsched:hotpath"

// Analyzer is the hotpath check.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "//battsched:hotpath functions must not call fmt, time.Now, or math/rand, or defer inside a loop",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if args, _ := analysis.FuncDirectives(fn, Directive); len(args) == 0 {
				continue
			}
			check(pass, fn)
		}
	}
	return nil
}

func check(pass *analysis.Pass, fn *ast.FuncDecl) {
	// loopDepth tracks lexical loop nesting to catch defer-in-loop.
	var visit func(n ast.Node, loopDepth int)
	visit = func(n ast.Node, loopDepth int) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt:
				visit(n.Body, loopDepth+1)
				if n.Init != nil {
					visit(n.Init, loopDepth)
				}
				if n.Cond != nil {
					visit(n.Cond, loopDepth)
				}
				if n.Post != nil {
					visit(n.Post, loopDepth)
				}
				return false
			case *ast.RangeStmt:
				visit(n.Body, loopDepth+1)
				if n.X != nil {
					visit(n.X, loopDepth)
				}
				return false
			case *ast.FuncLit:
				// A closure's defers run per closure call, not per
				// enclosing-loop iteration: reset the depth.
				visit(n.Body, 0)
				return false
			case *ast.DeferStmt:
				if loopDepth > 0 {
					pass.Reportf(n.Pos(), "%s is a hot-path function: defer inside a loop allocates per iteration and runs only at return", fn.Name.Name)
				}
			case *ast.CallExpr:
				checkCall(pass, fn, n)
			}
			return true
		})
	}
	visit(fn.Body, 0)
}

func checkCall(pass *analysis.Pass, fn *ast.FuncDecl, call *ast.CallExpr) {
	callee := analysis.CalleeFunc(pass.TypesInfo, call)
	if callee == nil || callee.Pkg() == nil {
		return
	}
	switch callee.Pkg().Path() {
	case "fmt":
		pass.Reportf(call.Pos(), "%s is a hot-path function: fmt.%s allocates; format off the hot path or build bytes by hand", fn.Name.Name, callee.Name())
	case "time":
		switch callee.Name() {
		case "Now", "Since", "Until":
			pass.Reportf(call.Pos(), "%s is a hot-path function: time.%s reads the wall clock per call; hoist timing out of the search", fn.Name.Name, callee.Name())
		}
	case "math/rand", "math/rand/v2":
		pass.Reportf(call.Pos(), "%s is a hot-path function: the search is deterministic; math/rand belongs only in multistart seeding", fn.Name.Name)
	}
}

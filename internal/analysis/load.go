package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// A Package is the unit an analyzer runs on: parsed syntax plus full
// type information for one Go package.
type Package struct {
	// PkgPath is the package's import path.
	PkgPath string
	// Fset maps the positions of Files.
	Fset *token.FileSet
	// Files are the non-test source files, parsed with comments.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// TypesInfo holds the checker's maps for Files.
	TypesInfo *types.Info
}

// newInfo allocates every Info map the analyzers consult.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	ImportMap  map[string]string
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves patterns ("./...", "repro/internal/cache", …) with the
// go toolchain and returns the matched packages parsed and
// type-checked. Module dependencies and the standard library are
// imported from compiler export data (`go list -export`) rather than
// re-checked from source, so loading stays proportional to the target
// packages — the same shape as x/tools' go/packages NeedExportFile
// mode, built on the stdlib gc importer.
//
// dir is the working directory for go list (the module root or any
// directory inside it). Test files are excluded, like go vet's
// non-test pass.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Name,Dir,GoFiles,CgoFiles,ImportMap,Export,DepOnly,Error",
		"--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.Bytes())
	}

	exports := map[string]string{}
	importMap := map[string]string{}
	var targets []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		for from, to := range p.ImportMap {
			importMap[from] = to
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports, importMap)
	var pkgs []*Package
	for _, t := range targets {
		if len(t.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: battlint cannot analyze cgo packages", t.ImportPath)
		}
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := newInfo()
		conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", runtime.GOARCH)}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			PkgPath:   t.ImportPath,
			Fset:      fset,
			Files:     files,
			Types:     tpkg,
			TypesInfo: info,
		})
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].PkgPath < pkgs[j].PkgPath })
	return pkgs, nil
}

// exportImporter builds a gc-export-data importer over the path ->
// export-file map that `go list -export` produced. importMap rewrites
// vendored import paths (empty in this repository, carried for
// correctness).
func exportImporter(fset *token.FileSet, exports, importMap map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if to, ok := importMap[path]; ok {
			path = to
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// LoadVetUnit type-checks one package from the explicit file list and
// export-data maps a `go vet -vettool` unit config carries, so battlint
// can run inside the vet driver without shelling back out to go list.
func LoadVetUnit(importPath string, goFiles []string, packageFile, importMap map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("%s: no Go files in vet unit", importPath)
	}
	info := newInfo()
	conf := types.Config{
		Importer: exportImporter(fset, packageFile, importMap),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", importPath, err)
	}
	return &Package{PkgPath: importPath, Fset: fset, Files: files, Types: tpkg, TypesInfo: info}, nil
}

// LoadFixtureDir loads one analyzer-test fixture package from an
// analysistest-style tree: srcRoot/<pkgpath>/*.go, where a fixture may
// import a sibling fixture package (resolved under srcRoot) or the
// standard library (type-checked from GOROOT source via the stdlib
// source importer, so tests never shell out to the go tool).
func LoadFixtureDir(srcRoot, pkgpath string) (*Package, error) {
	fset := token.NewFileSet()
	ld := &fixtureLoader{
		srcRoot: srcRoot,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		loaded:  map[string]*Package{},
	}
	return ld.load(pkgpath)
}

type fixtureLoader struct {
	srcRoot string
	fset    *token.FileSet
	std     types.Importer
	loaded  map[string]*Package
	loading []string // cycle detection
}

func (l *fixtureLoader) load(pkgpath string) (*Package, error) {
	if p, ok := l.loaded[pkgpath]; ok {
		return p, nil
	}
	for _, in := range l.loading {
		if in == pkgpath {
			return nil, fmt.Errorf("fixture import cycle through %q", pkgpath)
		}
	}
	l.loading = append(l.loading, pkgpath)
	defer func() { l.loading = l.loading[:len(l.loading)-1] }()

	dir := filepath.Join(l.srcRoot, filepath.FromSlash(pkgpath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fixture package %q: %w", pkgpath, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture package %q: no .go files in %s", pkgpath, dir)
	}
	info := newInfo()
	conf := types.Config{Importer: importerFunc(l.importPkg), Sizes: types.SizesFor("gc", runtime.GOARCH)}
	tpkg, err := conf.Check(pkgpath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck fixture %s: %w", pkgpath, err)
	}
	p := &Package{PkgPath: pkgpath, Fset: l.fset, Files: files, Types: tpkg, TypesInfo: info}
	l.loaded[pkgpath] = p
	return p, nil
}

// importPkg resolves a fixture import: sibling fixture packages first,
// then the standard library.
func (l *fixtureLoader) importPkg(path string) (*types.Package, error) {
	if st, err := os.Stat(filepath.Join(l.srcRoot, filepath.FromSlash(path))); err == nil && st.IsDir() {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return stdImport(l.std, path)
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// stdImport serializes stdlib source imports: the source importer keeps
// per-instance state, and fixture loads can share one across parallel
// subtests.
func stdImport(imp types.Importer, path string) (*types.Package, error) {
	stdMu.Lock()
	defer stdMu.Unlock()
	return imp.Import(path)
}

var stdMu sync.Mutex

package queue

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
)

// okResult is a distinguishable successful outcome.
func okResult(cost float64) engine.Result {
	return engine.Result{Strategy: "iterative", Cost: cost}
}

// instantRun completes immediately with cost.
func instantRun(cost float64) func(context.Context) engine.Result {
	return func(context.Context) engine.Result { return okResult(cost) }
}

// blockingRun blocks until release is closed or ctx ends; a canceled
// ctx yields an engine.ErrCanceled result, mirroring the real engine.
func blockingRun(release <-chan struct{}, cost float64) func(context.Context) engine.Result {
	return func(ctx context.Context) engine.Result {
		select {
		case <-release:
			return okResult(cost)
		case <-ctx.Done():
			return engine.Result{Err: engine.CanceledError(ctx.Err())}
		}
	}
}

// waitState polls until the job reaches want or the deadline passes.
func waitState(t *testing.T, q *Queue, id string, want State) Snapshot {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap, ok := q.Get(id)
		if ok && snap.State == want {
			return snap
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached %v (last: %+v, ok=%v)", id, want, snap, ok)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRunsAndRetains: a submitted job runs, lands on StateDone with its
// result, and stays pollable.
func TestRunsAndRetains(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Close()
	snap, err := q.Submit(Submission{ID: "a", Run: instantRun(42)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if snap.State.Terminal() {
		t.Fatalf("fresh submission already terminal: %+v", snap)
	}
	got := waitState(t, q, "a", StateDone)
	if got.Result.Cost != 42 {
		t.Fatalf("result cost = %g, want 42", got.Result.Cost)
	}
	st := q.Stats()
	if st.Done != 1 || st.Submitted != 1 || st.Tracked != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestPriorityOrder: with one worker pinned, higher-priority jobs jump
// the line and equal priorities stay FIFO.
func TestPriorityOrder(t *testing.T) {
	q := New(Config{Workers: 1, MaxQueued: 16})
	defer q.Close()

	var mu sync.Mutex
	var order []string
	record := func(id string) func(context.Context) engine.Result {
		return func(context.Context) engine.Result {
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
			return okResult(1)
		}
	}

	// Pin the lone worker so the rest queue up behind it.
	release := make(chan struct{})
	if _, err := q.Submit(Submission{ID: "pin", Run: blockingRun(release, 0)}); err != nil {
		t.Fatalf("Submit pin: %v", err)
	}
	waitState(t, q, "pin", StateRunning)

	for _, s := range []struct {
		id  string
		pri int
	}{{"low-1", 0}, {"low-2", 0}, {"high", 5}, {"mid", 3}} {
		if _, err := q.Submit(Submission{ID: s.id, Priority: s.pri, Run: record(s.id)}); err != nil {
			t.Fatalf("Submit %s: %v", s.id, err)
		}
	}
	close(release)
	for _, id := range []string{"high", "mid", "low-1", "low-2"} {
		waitState(t, q, id, StateDone)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []string{"high", "mid", "low-1", "low-2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order = %v, want %v", order, want)
		}
	}
}

// TestAdmissionControl: the MaxQueued bound rejects with ErrFull and
// counts the rejection; capacity freed by a drain admits again.
func TestAdmissionControl(t *testing.T) {
	q := New(Config{Workers: 1, MaxQueued: 2})
	defer q.Close()

	release := make(chan struct{})
	defer close(release)
	if _, err := q.Submit(Submission{ID: "pin", Run: blockingRun(release, 0)}); err != nil {
		t.Fatalf("Submit pin: %v", err)
	}
	waitState(t, q, "pin", StateRunning)

	for i := 0; i < 2; i++ {
		if _, err := q.Submit(Submission{ID: fmt.Sprintf("q%d", i), Run: instantRun(1)}); err != nil {
			t.Fatalf("Submit q%d: %v", i, err)
		}
	}
	if _, err := q.Submit(Submission{ID: "overflow", Run: instantRun(1)}); !errors.Is(err, ErrFull) {
		t.Fatalf("over-capacity Submit err = %v, want ErrFull", err)
	}
	if st := q.Stats(); st.Rejected != 1 || st.Queued != 2 {
		t.Fatalf("stats = %+v, want Rejected=1 Queued=2", st)
	}
	// A duplicate of a queued job coalesces instead of being rejected,
	// even at capacity.
	if _, err := q.Submit(Submission{ID: "q0", Run: instantRun(1)}); err != nil {
		t.Fatalf("coalescing Submit at capacity: %v", err)
	}
	if st := q.Stats(); st.Coalesced != 1 {
		t.Fatalf("stats = %+v, want Coalesced=1", st)
	}
}

// TestCoalesceRaisesPriority: a duplicate submission bumps the queued
// job to the higher priority.
func TestCoalesceRaisesPriority(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Close()
	release := make(chan struct{})
	defer close(release)
	q.Submit(Submission{ID: "pin", Run: blockingRun(release, 0)})
	waitState(t, q, "pin", StateRunning)

	q.Submit(Submission{ID: "j", Priority: 1, Run: instantRun(1)})
	snap, err := q.Submit(Submission{ID: "j", Priority: 7, Run: instantRun(1)})
	if err != nil {
		t.Fatalf("duplicate Submit: %v", err)
	}
	if snap.Priority != 7 {
		t.Fatalf("coalesced priority = %d, want 7", snap.Priority)
	}
	// A lower-priority duplicate does not demote.
	snap, _ = q.Submit(Submission{ID: "j", Priority: 2, Run: instantRun(1)})
	if snap.Priority != 7 {
		t.Fatalf("priority after low-priority duplicate = %d, want 7", snap.Priority)
	}
}

// TestTTLExpiresQueuedJob: a job whose TTL lapses while waiting lands
// on StateExpired without running.
func TestTTLExpiresQueuedJob(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Close()
	release := make(chan struct{})
	defer close(release)
	q.Submit(Submission{ID: "pin", Run: blockingRun(release, 0)})
	waitState(t, q, "pin", StateRunning)

	ran := atomic.Bool{}
	q.Submit(Submission{ID: "e", TTL: 10 * time.Millisecond, Run: func(context.Context) engine.Result {
		ran.Store(true)
		return okResult(1)
	}})
	waitState(t, q, "e", StateExpired)
	if ran.Load() {
		t.Fatal("expired job ran anyway")
	}
	if st := q.Stats(); st.Expired != 1 {
		t.Fatalf("stats = %+v, want Expired=1", st)
	}
}

// TestTTLExpiresRunningJob: a TTL firing mid-computation cancels the
// run's context and the job lands on StateExpired.
func TestTTLExpiresRunningJob(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Close()
	never := make(chan struct{})
	defer close(never)
	q.Submit(Submission{ID: "e", TTL: 10 * time.Millisecond, Run: blockingRun(never, 0)})
	waitState(t, q, "e", StateExpired)
}

// TestAbort covers both abort paths: queued (never runs) and running
// (context canceled), plus abort of an unknown id.
func TestAbort(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Close()
	never := make(chan struct{})
	defer close(never)
	q.Submit(Submission{ID: "running", Run: blockingRun(never, 0)})
	waitState(t, q, "running", StateRunning)
	q.Submit(Submission{ID: "queued", Run: instantRun(1)})

	if snap, ok := q.Abort("queued"); !ok || snap.State != StateAborted {
		t.Fatalf("Abort(queued) = %+v, %v", snap, ok)
	}
	if _, ok := q.Abort("running"); !ok {
		t.Fatal("Abort(running) reported unknown")
	}
	waitState(t, q, "running", StateAborted)
	if _, ok := q.Abort("ghost"); ok {
		t.Fatal("Abort(ghost) reported known")
	}
	if st := q.Stats(); st.Aborted != 2 {
		t.Fatalf("stats = %+v, want Aborted=2", st)
	}
	// Abort of a terminal job is a no-op that reports the state as-is.
	q.Submit(Submission{ID: "done", Run: instantRun(1)})
	waitState(t, q, "done", StateDone)
	if snap, ok := q.Abort("done"); !ok || snap.State != StateDone {
		t.Fatalf("Abort(done) = %+v, %v", snap, ok)
	}
}

// TestResubmitAfterAbort: an aborted job is not a cached failure — a
// fresh submission runs it.
func TestResubmitAfterAbort(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Close()
	release := make(chan struct{})
	defer close(release)
	q.Submit(Submission{ID: "pin", Run: blockingRun(release, 0)})
	waitState(t, q, "pin", StateRunning)
	q.Submit(Submission{ID: "j", Run: instantRun(9)})
	q.Abort("j")

	snap, err := q.Submit(Submission{ID: "j", Run: instantRun(9)})
	if err != nil {
		t.Fatalf("resubmit after abort: %v", err)
	}
	if snap.State.Terminal() {
		t.Fatalf("resubmitted job stillborn: %+v", snap)
	}
	q.Abort("pin")
	if got := waitState(t, q, "j", StateDone); got.Result.Cost != 9 {
		t.Fatalf("resubmitted result = %+v", got.Result)
	}
}

// TestDoneCoalescesResubmission: a job that finished with a result
// answers duplicates from retention instead of re-running.
func TestDoneCoalescesResubmission(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Close()
	var runs atomic.Int64
	run := func(context.Context) engine.Result { runs.Add(1); return okResult(3) }
	q.Submit(Submission{ID: "j", Run: run})
	waitState(t, q, "j", StateDone)
	snap, err := q.Submit(Submission{ID: "j", Run: run})
	if err != nil || snap.State != StateDone || snap.Result.Cost != 3 {
		t.Fatalf("resubmit of done job = %+v, %v", snap, err)
	}
	if runs.Load() != 1 {
		t.Fatalf("job ran %d times, want 1", runs.Load())
	}
}

// TestJobOwnTimeoutIsDone: a run that returns ErrCanceled on its own
// (the job's timeout_ms, not a queue kill) is a completed outcome —
// StateDone carrying the canceled result, exactly what the sync path
// would have returned.
func TestJobOwnTimeoutIsDone(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Close()
	q.Submit(Submission{ID: "j", Run: func(context.Context) engine.Result {
		return engine.Result{Err: engine.CanceledError(context.DeadlineExceeded)}
	}})
	snap := waitState(t, q, "j", StateDone)
	if !errors.Is(snap.Result.Err, engine.ErrCanceled) {
		t.Fatalf("result err = %v, want ErrCanceled", snap.Result.Err)
	}
}

// TestCloseDrains: Close aborts the backlog, cancels running work, and
// unblocks every waiter with a terminal state; later submissions are
// refused with ErrClosed.
func TestCloseDrains(t *testing.T) {
	q := New(Config{Workers: 2})
	never := make(chan struct{})
	defer close(never)
	ids := []string{"r1", "r2", "q1", "q2", "q3"}
	for _, id := range ids {
		q.Submit(Submission{ID: id, Run: blockingRun(never, 0)})
	}
	waitState(t, q, "r1", StateRunning)
	waitState(t, q, "r2", StateRunning)

	waitErr := make(chan error, 1)
	go func() {
		snap, ok, err := q.Wait(context.Background(), "q1")
		if err != nil || !ok || !snap.State.Terminal() {
			waitErr <- fmt.Errorf("Wait(q1) = %+v, %v, %v", snap, ok, err)
			return
		}
		waitErr <- nil
	}()

	q.Close()
	for _, id := range ids {
		snap, ok := q.Get(id)
		if !ok || snap.State != StateAborted {
			t.Fatalf("after Close, %s = %+v, ok=%v; want aborted", id, snap, ok)
		}
	}
	if err := <-waitErr; err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(Submission{ID: "late", Run: instantRun(1)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close err = %v, want ErrClosed", err)
	}
	if st := q.Stats(); st.Aborted != uint64(len(ids)) || st.Running != 0 || st.Queued != 0 {
		t.Fatalf("stats after Close = %+v", st)
	}
	q.Close() // idempotent
}

// TestRetentionPrunes: terminal jobs age out of the tracked set after
// the retention window (forced to a negative window for eagerness).
func TestRetentionPrunes(t *testing.T) {
	q := New(Config{Workers: 1, Retention: -time.Second})
	defer q.Close()
	q.Submit(Submission{ID: "old", Run: instantRun(1)})
	waitState(t, q, "old", StateDone)
	// Any later submission triggers the prune.
	q.Submit(Submission{ID: "new", Run: instantRun(1)})
	if _, ok := q.Get("old"); ok {
		t.Fatal("terminal job survived a lapsed retention window")
	}
}

// TestMaxTrackedEvictsTerminal: the tracked-population bound evicts the
// oldest terminal jobs to make room rather than rejecting.
func TestMaxTrackedEvictsTerminal(t *testing.T) {
	q := New(Config{Workers: 1, MaxQueued: 1, MaxTracked: 2})
	defer q.Close()
	q.Submit(Submission{ID: "a", Run: instantRun(1)})
	waitState(t, q, "a", StateDone)
	q.Submit(Submission{ID: "b", Run: instantRun(1)})
	waitState(t, q, "b", StateDone)
	// Tracked is now 2 (both terminal); "c" must evict "a".
	q.Submit(Submission{ID: "c", Run: instantRun(1)})
	waitState(t, q, "c", StateDone)
	if _, ok := q.Get("a"); ok {
		t.Fatal("oldest terminal job not evicted at MaxTracked")
	}
	if _, ok := q.Get("b"); !ok {
		t.Fatal("newer terminal job evicted out of order")
	}
}

// TestWaitUnknownAndCanceled: Wait distinguishes an unknown id from a
// caller that gave up.
func TestWaitUnknownAndCanceled(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Close()
	if _, ok, err := q.Wait(context.Background(), "ghost"); ok || err != nil {
		t.Fatalf("Wait(ghost) ok=%v err=%v, want false,nil", ok, err)
	}
	never := make(chan struct{})
	defer close(never)
	q.Submit(Submission{ID: "slow", Run: blockingRun(never, 0)})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, ok, err := q.Wait(ctx, "slow"); !ok || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait(slow) ok=%v err=%v, want true,DeadlineExceeded", ok, err)
	}
}

// TestStressConcurrentLifecycle hammers every transition concurrently —
// submit (with duplicate ids forcing coalesce paths), abort, tiny TTLs
// expiring queued and running jobs, polls, waits, and a mid-storm Close —
// and then checks the books balance. Run under -race this is the
// package's data-race oracle; the single-terminal-transition invariant
// is additionally self-enforcing (a second transition would close a
// closed channel and panic).
func TestStressConcurrentLifecycle(t *testing.T) {
	q := New(Config{Workers: 4, MaxQueued: 64, Retention: 50 * time.Millisecond})
	const (
		goroutines = 8
		opsEach    = 300
		idSpace    = 40 // small enough to force constant collisions
	)
	var accepted atomic.Int64
	var rejected atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsEach; i++ {
				id := fmt.Sprintf("job-%d", rng.Intn(idSpace))
				switch rng.Intn(10) {
				case 0, 1, 2, 3, 4: // submit, mixed shapes
					sub := Submission{ID: id, Priority: rng.Intn(10)}
					switch rng.Intn(3) {
					case 0:
						sub.Run = instantRun(float64(rng.Intn(100)))
					case 1:
						sub.TTL = time.Duration(1+rng.Intn(3)) * time.Millisecond
						never := make(chan struct{}) // expires mid-run
						sub.Run = blockingRun(never, 0)
					case 2:
						d := time.Duration(rng.Intn(2)) * time.Millisecond
						sub.Run = func(ctx context.Context) engine.Result {
							select {
							case <-time.After(d):
								return okResult(1)
							case <-ctx.Done():
								return engine.Result{Err: engine.CanceledError(ctx.Err())}
							}
						}
					}
					_, err := q.Submit(sub)
					switch {
					case err == nil:
						accepted.Add(1)
					case errors.Is(err, ErrFull):
						rejected.Add(1)
					case errors.Is(err, ErrClosed):
						// the closer got there first; fine
					default:
						t.Errorf("Submit: %v", err)
					}
				case 5, 6:
					q.Abort(id)
				case 7, 8:
					q.Get(id)
				case 9:
					ctx, cancel := context.WithTimeout(context.Background(), time.Duration(rng.Intn(3))*time.Millisecond)
					q.Wait(ctx, id)
					cancel()
				}
			}
		}(int64(g))
	}
	wg.Wait()
	q.Close()

	st := q.Stats()
	if st.Queued != 0 || st.Running != 0 {
		t.Fatalf("live jobs after Close: %+v", st)
	}
	if got := st.Submitted; got != uint64(accepted.Load()) {
		t.Fatalf("Submitted = %d, accepted Submits = %d", got, accepted.Load())
	}
	if got := st.Rejected; got != uint64(rejected.Load()) {
		t.Fatalf("Rejected = %d, ErrFull Submits = %d", got, rejected.Load())
	}
	// Every distinct job that entered the queue left through exactly
	// one terminal door.
	distinct := st.Submitted - st.Coalesced
	if terminals := st.Done + st.Expired + st.Aborted; terminals != distinct {
		t.Fatalf("terminal transitions = %d (done=%d expired=%d aborted=%d), distinct jobs = %d",
			terminals, st.Done, st.Expired, st.Aborted, distinct)
	}
}

package queue

// Regression tests for two lifecycle bugs:
//
//   - A TTL timer that fired before a coalescing submission extended
//     the deadline, but acquired q.mu after, used to kill the freshly
//     extended job: the callback trusted the moment it fired instead of
//     the deadline under the lock.
//   - task.snapshot used to shallow-copy the retained engine.Result, so
//     every poller of a terminal job shared the same Schedule/Idle
//     pointers — one caller's mutation reached all the others and the
//     queue's own canon.

import (
	"context"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/sched"
)

// TestExpireAfterExtensionKeepsJob reproduces the race deterministically
// by holding q.mu across the moment the short TTL elapses: the timer
// callback fires and blocks on the lock, the extension lands first
// (coalesceLocked, exactly what a duplicate Submit does), and the stale
// callback must then honor the extended deadline instead of expiring
// the job.
func TestExpireAfterExtensionKeepsJob(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Close()

	// Occupy the only worker so the victim stays queued (an expirable
	// state) for the whole dance.
	release := make(chan struct{})
	if _, err := q.Submit(Submission{ID: "blocker", Run: blockingRun(release, 1)}); err != nil {
		t.Fatal(err)
	}
	waitState(t, q, "blocker", StateRunning)

	const shortTTL = 30 * time.Millisecond
	if _, err := q.Submit(Submission{ID: "victim", TTL: shortTTL, Run: instantRun(2)}); err != nil {
		t.Fatal(err)
	}

	q.mu.Lock()
	victim := q.tasks["victim"]
	// Let the short TTL elapse while we hold the lock: the timer
	// callback is now blocked on q.mu with a stale deadline.
	time.Sleep(2 * shortTTL)
	// The extension wins the lock race, exactly as a coalescing Submit
	// would.
	q.coalesceLocked(victim, Submission{ID: "victim", TTL: 10 * time.Second}, time.Now())
	q.mu.Unlock()

	// Give the stale callback time to run; it must not kill the job.
	time.Sleep(5 * shortTTL)
	snap, ok := q.Get("victim")
	if !ok {
		t.Fatal("victim vanished")
	}
	if snap.State == StateExpired {
		t.Fatal("stale TTL timer expired a job whose deadline had been extended")
	}

	// The extended job still completes normally once a worker frees up.
	close(release)
	waitState(t, q, "victim", StateDone)
}

// TestSnapshotResultIsDeepCopy: pollers of a terminal job own their
// result storage — mutating one snapshot must not leak into the next.
func TestSnapshotResultIsDeepCopy(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Close()

	res := engine.Result{
		Strategy: "iterative",
		Cost:     5,
		Schedule: &sched.Schedule{Order: []int{1, 0}, Assignment: map[int]int{0: 0, 1: 1}},
	}
	if _, err := q.Submit(Submission{ID: "a", Run: func(context.Context) engine.Result { return res }}); err != nil {
		t.Fatal(err)
	}
	first := waitState(t, q, "a", StateDone)
	if first.Result.Schedule == nil {
		t.Fatal("terminal result lost its schedule")
	}

	// Vandalize the first poller's copy.
	first.Result.Schedule.Order[0] = -99
	first.Result.Schedule.Assignment[0] = -99

	second, ok := q.Get("a")
	if !ok {
		t.Fatal("terminal job not pollable")
	}
	if second.Result.Schedule.Order[0] == -99 || second.Result.Schedule.Assignment[0] == -99 {
		t.Fatal("two snapshots of one terminal job alias the same Schedule")
	}
	// And the producer's own result must be untouched as well.
	if res.Schedule.Order[0] == -99 || res.Schedule.Assignment[0] == -99 {
		t.Fatal("a poller's mutation reached the stored canon")
	}
}

// Package queue is the admission-controlled job queue behind the async
// endpoints of battschedd (POST /v1/jobs and friends): submissions are
// accepted or rejected immediately, ordered by priority, executed by a
// bounded worker pool, and their terminal results retained for polling —
// so a client submitting a thousand-job sweep holds zero connections
// open while the fleet of workers drains the backlog.
//
// The queue is deliberately small-surfaced:
//
//   - Submit admits a job or rejects it synchronously (ErrFull when the
//     waiting line is at capacity — the backpressure signal the server
//     turns into 429 + Retry-After, ErrClosed when draining).
//   - Jobs are identified by their content-addressed cache key, so
//     duplicate submissions coalesce onto one queue entry and one
//     computation; a coalesced submission can only improve the job's
//     lot (priority rises to the highest requested, the TTL extends to
//     the most generous).
//   - A job's lifecycle is Queued → Running → Done, with two
//     early-terminal exits built on the repository's cancellation
//     plumbing: Expired (its ttl_ms elapsed — queue wait included) and
//     Aborted (DELETE /v1/jobs/{id} or server drain). Exactly one
//     terminal transition happens per job, guarded by the queue lock.
//   - Terminal jobs stay pollable for a retention window, then age out;
//     the total tracked-job population is bounded, so an abandoned
//     poller cannot grow the server without limit.
//
// Close drains: queued jobs abort without running, running jobs are
// canceled through their contexts, and every waiter unblocks with a
// terminal snapshot — the clean-SIGTERM-mid-queue story the integration
// suite pins down.
package queue

import (
	"container/heap"
	"container/list"
	"context"
	"errors"
	"runtime"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/engine"
)

// State is a job's lifecycle state.
type State int

const (
	// StateQueued: admitted, waiting for a worker.
	StateQueued State = iota
	// StateRunning: a worker is computing it.
	StateRunning
	// StateDone: terminal; Result holds the outcome (which may be a
	// deterministic scheduling failure — "done" means the computation
	// got its answer, not that the answer is a schedule).
	StateDone
	// StateExpired: terminal; the job's TTL elapsed before completion.
	StateExpired
	// StateAborted: terminal; explicitly aborted or the queue closed.
	StateAborted
)

// String returns the wire spelling of the state.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateExpired:
		return "expired"
	case StateAborted:
		return "aborted"
	}
	return "invalid"
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateExpired || s == StateAborted
}

// Sizing defaults; see Config.
const (
	DefaultMaxQueued  = 4096
	DefaultRetention  = 5 * time.Minute
	DefaultMaxTracked = 16384
)

// Config sizes a Queue. The zero value is production-usable.
type Config struct {
	// MaxQueued bounds jobs waiting for a worker; a Submit beyond it
	// fails with ErrFull. 0 means DefaultMaxQueued.
	MaxQueued int
	// Workers bounds concurrently running jobs; 0 means 2×GOMAXPROCS(0)
	// (the computation itself is additionally bounded by the engine's
	// shared gate, so workers mostly overlap queue bookkeeping and
	// cache hits with computation).
	Workers int
	// DefaultTTL is applied to submissions that carry none; 0 means no
	// bound.
	DefaultTTL time.Duration
	// Retention is how long a terminal job stays pollable before it is
	// pruned. 0 means DefaultRetention; negative prunes eagerly.
	Retention time.Duration
	// MaxTracked bounds the total tracked population (queued + running +
	// retained terminal). When a Submit would exceed it, the oldest
	// terminal jobs are evicted early; if none are evictable the Submit
	// fails with ErrFull. 0 means DefaultMaxTracked (raised to fit
	// MaxQueued + Workers if those are configured larger).
	MaxTracked int
}

// Submission is one job offered to the queue.
type Submission struct {
	// ID is the job's content-addressed identity (the cache key);
	// submissions sharing an ID coalesce onto one entry. Required.
	ID string
	// Priority orders the waiting line: higher runs earlier, FIFO
	// within a level. A coalesced submission raises the job to the
	// highest priority requested so far.
	Priority int
	// TTL bounds the job's remaining lifetime from this submission
	// (queue wait + run); 0 means Config.DefaultTTL, negative means
	// explicitly unbounded. A coalesced submission extends the
	// deadline to the most generous requested (an unbounded
	// submission clears it).
	TTL time.Duration
	// Run computes the job under ctx; it must honor cancellation
	// promptly and return an engine.ErrCanceled result when cut short.
	// Coalesced submissions keep the first Run (by construction of the
	// ID they are computationally identical). Required.
	Run func(ctx context.Context) engine.Result
}

// Snapshot is a point-in-time copy of one job's lifecycle.
type Snapshot struct {
	ID       string
	State    State
	Priority int
	// Result is the outcome; meaningful only in StateDone.
	Result engine.Result
}

// Errors Submit can return.
var (
	// ErrFull rejects a submission because the waiting line (or the
	// tracked population) is at capacity — the admission-control
	// signal; retry after backing off.
	ErrFull = errors.New("queue: full")
	// ErrClosed rejects a submission because the queue is draining.
	ErrClosed = errors.New("queue: closed")
)

// task is one tracked job. All fields are guarded by Queue.mu except
// done (closed exactly once, under mu) and res/finish fields (written
// before the close, read after it).
type task struct {
	id       string
	priority int
	seq      uint64
	heapIdx  int // index in Queue.ready, -1 when not queued
	state    State

	expiresAt time.Time   // zero = unbounded
	timer     *time.Timer // armed while expiresAt is set and state is non-terminal

	run    func(ctx context.Context) engine.Result
	cancel context.CancelCauseFunc // set while running
	killed bool                    // a kill (abort/expire/drain) was requested mid-run
	kill   State                   // the terminal state the kill asked for

	res        engine.Result // valid in StateDone
	finishedAt time.Time
	elem       *list.Element // position in Queue.terminal once finished
	done       chan struct{} // closed on the terminal transition
}

// Queue is the admission-controlled priority job queue. Create it with
// New; it is safe for concurrent use.
type Queue struct {
	cfg Config

	mu       sync.Mutex
	cond     *sync.Cond // signals workers: ready job or closing
	ready    taskHeap
	tasks    map[string]*task
	terminal *list.List // finished tasks, oldest first
	running  int
	seq      uint64
	closed   bool

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	stats statsCounters
}

// statsCounters are the cumulative counters behind Stats; guarded by mu
// (they are only touched on state transitions, which hold it anyway).
type statsCounters struct {
	submitted uint64
	coalesced uint64
	rejected  uint64
	done      uint64
	expired   uint64
	aborted   uint64
}

// Stats is a point-in-time snapshot of the queue counters: two gauges
// for the live population and cumulative counters for everything that
// ever flowed through.
type Stats struct {
	// Queued and Running are the live population.
	Queued  int `json:"queued"`
	Running int `json:"running"`
	// Submitted counts every accepted Submit (including coalesced ones);
	// Coalesced counts the subset that joined an existing entry.
	Submitted uint64 `json:"submitted"`
	Coalesced uint64 `json:"coalesced"`
	// Rejected counts submissions refused with ErrFull.
	Rejected uint64 `json:"rejected"`
	// Done/Expired/Aborted count terminal transitions by kind.
	Done    uint64 `json:"done"`
	Expired uint64 `json:"expired"`
	Aborted uint64 `json:"aborted"`
	// Tracked is the current tracked population (live + retained
	// terminal).
	Tracked int `json:"tracked"`
}

// New builds a queue and starts its workers.
func New(cfg Config) *Queue {
	if cfg.MaxQueued <= 0 {
		cfg.MaxQueued = DefaultMaxQueued
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.Retention == 0 {
		cfg.Retention = DefaultRetention
	}
	if cfg.MaxTracked <= 0 {
		cfg.MaxTracked = DefaultMaxTracked
	}
	if min := cfg.MaxQueued + cfg.Workers; cfg.MaxTracked < min {
		cfg.MaxTracked = min
	}
	q := &Queue{
		cfg:      cfg,
		tasks:    make(map[string]*task),
		terminal: list.New(),
	}
	q.cond = sync.NewCond(&q.mu)
	q.baseCtx, q.baseCancel = context.WithCancel(context.Background())
	for i := 0; i < cfg.Workers; i++ {
		q.wg.Add(1)
		go q.worker()
	}
	return q
}

// Submit admits sub (or coalesces it onto the identically addressed job
// already tracked) and returns the job's current snapshot. It never
// blocks: a full queue fails fast with ErrFull, a draining one with
// ErrClosed — admission control is the whole point.
func (q *Queue) Submit(sub Submission) (Snapshot, error) {
	now := time.Now()
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return Snapshot{}, ErrClosed
	}
	q.pruneLocked(now)

	if t, ok := q.tasks[sub.ID]; ok {
		// A finished-with-result job answers resubmissions from its
		// retained result; a job that expired or was aborted gets a
		// fresh run (drop the stale terminal entry and fall through).
		if t.state == StateDone {
			q.stats.submitted++
			q.stats.coalesced++
			return t.snapshot(), nil
		}
		if t.state.Terminal() {
			q.dropTerminalLocked(t)
		} else {
			q.coalesceLocked(t, sub, now)
			return t.snapshot(), nil
		}
	}

	if len(q.ready) >= q.cfg.MaxQueued {
		q.stats.rejected++
		return Snapshot{}, ErrFull
	}
	for len(q.tasks) >= q.cfg.MaxTracked {
		oldest := q.terminal.Front()
		if oldest == nil {
			q.stats.rejected++
			return Snapshot{}, ErrFull
		}
		q.dropTerminalLocked(oldest.Value.(*task))
	}

	t := &task{
		id:       sub.ID,
		priority: sub.Priority,
		seq:      q.seq,
		state:    StateQueued,
		run:      sub.Run,
		done:     make(chan struct{}),
	}
	q.seq++
	if ttl := q.effectiveTTL(sub.TTL); ttl > 0 {
		t.expiresAt = now.Add(ttl)
		t.timer = time.AfterFunc(ttl, func() { q.expire(t) })
	}
	q.tasks[t.id] = t
	heap.Push(&q.ready, t)
	q.stats.submitted++
	q.cond.Signal()
	return t.snapshot(), nil
}

// effectiveTTL resolves a submission's TTL: 0 inherits the default,
// negative means explicitly unbounded.
func (q *Queue) effectiveTTL(ttl time.Duration) time.Duration {
	if ttl == 0 {
		return q.cfg.DefaultTTL
	}
	if ttl < 0 {
		return 0
	}
	return ttl
}

// coalesceLocked merges a duplicate submission into the live task it
// addresses: priority only ever rises, the expiry only ever recedes.
func (q *Queue) coalesceLocked(t *task, sub Submission, now time.Time) {
	q.stats.submitted++
	q.stats.coalesced++
	if sub.Priority > t.priority {
		t.priority = sub.Priority
		if t.heapIdx >= 0 {
			heap.Fix(&q.ready, t.heapIdx)
		}
	}
	ttl := q.effectiveTTL(sub.TTL)
	switch {
	case ttl == 0:
		// The most generous request wins: unbounded clears the clock.
		if t.timer != nil {
			t.timer.Stop()
			t.timer = nil
		}
		t.expiresAt = time.Time{}
	case !t.expiresAt.IsZero():
		if at := now.Add(ttl); at.After(t.expiresAt) {
			t.expiresAt = at
			if t.timer != nil {
				t.timer.Stop()
			}
			t.timer = time.AfterFunc(ttl, func() { q.expire(t) })
		}
	}
	// A bounded TTL never tightens an already-unbounded job.
}

// Get returns the job's snapshot.
func (q *Queue) Get(id string) (Snapshot, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	t, ok := q.tasks[id]
	if !ok {
		return Snapshot{}, false
	}
	return t.snapshot(), true
}

// Wait blocks until the job reaches a terminal state (returning its
// snapshot), ctx ends (returning ctx.Err()), or reports ok=false for an
// unknown id.
func (q *Queue) Wait(ctx context.Context, id string) (Snapshot, bool, error) {
	q.mu.Lock()
	t, ok := q.tasks[id]
	q.mu.Unlock()
	if !ok {
		return Snapshot{}, false, nil
	}
	select {
	case <-t.done:
	case <-ctx.Done():
		return Snapshot{}, true, ctx.Err()
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return t.snapshot(), true, nil
}

// Abort moves the job to StateAborted: a queued job never runs, a
// running one is canceled through its context. Terminal jobs are left
// as they are (abort is not retroactive); unknown ids report ok=false.
func (q *Queue) Abort(id string) (Snapshot, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	t, ok := q.tasks[id]
	if !ok {
		return Snapshot{}, false
	}
	q.killLocked(t, StateAborted)
	return t.snapshot(), true
}

// Cancellation causes for killed runs, visible through
// context.Cause for anyone debugging a canceled computation.
var (
	errExpired = errors.New("queue: job ttl expired")
	errAborted = errors.New("queue: job aborted")
)

// killCause maps a kill's target state to its cancellation cause.
func killCause(s State) error {
	if s == StateExpired {
		return errExpired
	}
	return errAborted
}

// expire is the TTL timer callback. The timer fires without holding
// q.mu, so by the time it acquires the lock the deadline it was armed
// for may be stale: a coalescing submission can have extended
// expiresAt (or cleared it) while this callback was blocked on the
// lock. The deadline under the lock is the truth — re-check it, and
// re-arm for the remainder instead of killing a job whose extended TTL
// has not elapsed. (Re-arming can leave two timers pointed at the same
// task; that is benign, because every path through here re-validates.)
func (q *Queue) expire(t *task) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if t.state.Terminal() || t.expiresAt.IsZero() {
		return
	}
	if remain := time.Until(t.expiresAt); remain > 0 {
		t.timer = time.AfterFunc(remain, func() { q.expire(t) })
		return
	}
	q.killLocked(t, StateExpired)
}

// killLocked requests the terminal state s for a live task: a queued
// task finishes immediately, a running one is canceled and its worker
// completes the transition. Terminal tasks are untouched.
func (q *Queue) killLocked(t *task, s State) {
	switch t.state {
	case StateQueued:
		heap.Remove(&q.ready, t.heapIdx)
		q.finishLocked(t, s, engine.Result{})
	case StateRunning:
		if !t.killed {
			t.killed, t.kill = true, s
		}
		if t.cancel != nil {
			t.cancel(killCause(s))
		}
	}
}

// finishLocked performs the job's single terminal transition.
func (q *Queue) finishLocked(t *task, s State, res engine.Result) {
	if t.state.Terminal() {
		return
	}
	if t.timer != nil {
		t.timer.Stop()
		t.timer = nil
	}
	t.state = s
	t.res = res
	t.finishedAt = time.Now()
	t.elem = q.terminal.PushBack(t)
	switch s {
	case StateDone:
		q.stats.done++
	case StateExpired:
		q.stats.expired++
	case StateAborted:
		q.stats.aborted++
	}
	close(t.done)
}

// dropTerminalLocked forgets a finished task.
func (q *Queue) dropTerminalLocked(t *task) {
	q.terminal.Remove(t.elem)
	delete(q.tasks, t.id)
}

// pruneLocked ages out terminal tasks past the retention window.
func (q *Queue) pruneLocked(now time.Time) {
	for {
		front := q.terminal.Front()
		if front == nil {
			return
		}
		t := front.Value.(*task)
		if now.Sub(t.finishedAt) < q.cfg.Retention {
			return
		}
		q.dropTerminalLocked(t)
	}
}

// worker pops ready tasks and runs them until the queue closes.
func (q *Queue) worker() {
	defer q.wg.Done()
	for {
		t, ctx := q.next()
		if t == nil {
			return
		}
		res := t.run(ctx)
		t.cancel(nil) // release the context's resources
		// The stored canon is request-neutral, like the cache's: every
		// waiter re-attaches its own index and name.
		res.Index, res.Name = 0, ""

		q.mu.Lock()
		q.running--
		if t.killed && errors.Is(res.Err, engine.ErrCanceled) {
			// The cancellation we requested: land on the state the kill
			// asked for. A job whose own timeout_ms fired takes the
			// other branch — that canceled result is its real outcome.
			q.finishLocked(t, t.kill, engine.Result{})
		} else {
			q.finishLocked(t, StateDone, res)
		}
		q.mu.Unlock()
	}
}

// next blocks for the highest-priority ready task, marking it running,
// or returns nil when the queue is closing.
func (q *Queue) next() (*task, context.Context) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.closed {
			return nil, nil
		}
		if len(q.ready) > 0 {
			t := heap.Pop(&q.ready).(*task)
			t.state = StateRunning
			q.running++
			// The TTL timer keeps ticking through the run and cancels
			// this context via killLocked if it fires mid-computation.
			ctx, cancel := context.WithCancelCause(q.baseCtx)
			t.cancel = cancel
			return t, ctx
		}
		q.cond.Wait()
	}
}

// Close drains the queue: queued jobs abort without running, running
// jobs are canceled, workers exit once their current job returns, and
// every Wait unblocks with a terminal snapshot. Jobs stay pollable
// until their retention lapses. Safe to call more than once.
func (q *Queue) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	for len(q.ready) > 0 {
		t := heap.Pop(&q.ready).(*task)
		q.finishLocked(t, StateAborted, engine.Result{})
	}
	for _, t := range q.tasks {
		if t.state == StateRunning && !t.killed {
			t.killed, t.kill = true, StateAborted
		}
	}
	q.cond.Broadcast()
	q.mu.Unlock()
	q.baseCancel() // cancels every running job's context
	q.wg.Wait()
}

// Stats snapshots the counters.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return Stats{
		Queued:    len(q.ready),
		Running:   q.running,
		Submitted: q.stats.submitted,
		Coalesced: q.stats.coalesced,
		Rejected:  q.stats.rejected,
		Done:      q.stats.done,
		Expired:   q.stats.expired,
		Aborted:   q.stats.aborted,
		Tracked:   len(q.tasks),
	}
}

// snapshot copies the task's externally visible state; caller holds mu
// (or the task is terminal, whose fields are frozen). The retained
// result's pointer fields (Schedule, Idle) are deep-copied with the
// cache's clone so every poller owns its storage: a terminal result is
// handed out many times, and a caller mutating its copy must never
// reach back into the queue's canon or into another poller's snapshot.
func (t *task) snapshot() Snapshot {
	return Snapshot{ID: t.id, State: t.state, Priority: t.priority, Result: cache.CloneResult(t.res)}
}

// taskHeap orders ready tasks by priority (higher first), FIFO within a
// level via the submission sequence number.
type taskHeap []*task

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h taskHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx, h[j].heapIdx = i, j
}
func (h *taskHeap) Push(x any) {
	t := x.(*task)
	t.heapIdx = len(*h)
	*h = append(*h, t)
}
func (h *taskHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.heapIdx = -1
	*h = old[:n-1]
	return t
}

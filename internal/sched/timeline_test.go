package sched

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteTimeline(t *testing.T) {
	g := chain(t)
	s := &Schedule{Order: []int{1, 2}, Assignment: map[int]int{1: 0, 2: 1}}
	var buf bytes.Buffer
	if err := s.WriteTimeline(&buf, g, 60); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Task band + 5 sparkline rows + axis.
	if len(lines) != 7 {
		t.Fatalf("timeline has %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "T1") || !strings.Contains(lines[0], "T2") {
		t.Fatalf("task band missing labels: %q", lines[0])
	}
	if !strings.Contains(out, "#") {
		t.Fatal("sparkline empty")
	}
	if !strings.Contains(lines[1], "mA") {
		t.Fatalf("peak annotation missing: %q", lines[1])
	}
	if !strings.Contains(lines[6], "min") {
		t.Fatalf("axis missing: %q", lines[6])
	}
	// The high-current task (T1 at 100 mA) must show a taller bar than
	// the low-current tail (T2 at 20 mA): the first sparkline row has a
	// '#' early but not late.
	top := lines[1]
	if !strings.Contains(top[:10], "#") {
		t.Fatalf("tall bar missing at start: %q", top)
	}
	if strings.Contains(top[40:60], "#") {
		t.Fatalf("tail should be short bars: %q", top)
	}
}

func TestWriteTimelineValidates(t *testing.T) {
	g := chain(t)
	bad := &Schedule{Order: []int{2, 1}, Assignment: map[int]int{1: 0, 2: 0}}
	var buf bytes.Buffer
	if err := bad.WriteTimeline(&buf, g, 60); err == nil {
		t.Fatal("invalid schedule should be rejected")
	}
}

func TestWriteTimelineDefaultWidth(t *testing.T) {
	g := chain(t)
	s := &Schedule{Order: []int{1, 2}, Assignment: map[int]int{1: 0, 2: 0}}
	var buf bytes.Buffer
	if err := s.WriteTimeline(&buf, g, 0); err != nil {
		t.Fatal(err)
	}
	first := strings.SplitN(buf.String(), "\n", 2)[0]
	if len(first) != 72 {
		t.Fatalf("default width = %d, want 72", len(first))
	}
}

// Package sched defines the schedule produced by the battery-aware
// algorithms: a sequential execution order for the task graph plus a design
// point chosen for every task. It provides legality checks (precedence,
// deadline, assignment bounds), conversion to a battery discharge profile,
// and the summary statistics the paper reports (duration, energy, CIF,
// slack ratio).
//
//battlint:deterministic
package sched

import (
	"fmt"
	"strings"

	"repro/internal/battery"
	"repro/internal/taskgraph"
)

// Schedule is a sequential schedule: tasks run back to back in Order, each
// using the design point Assignment[taskID] (0-based index into the task's
// Points, so 0 is the fastest/highest-current point).
type Schedule struct {
	// Order lists task IDs in execution order; it must be a topological
	// order of the graph.
	Order []int
	// Assignment maps task ID to the 0-based design point index.
	Assignment map[int]int
}

// Clone returns a deep copy.
func (s *Schedule) Clone() *Schedule {
	out := &Schedule{
		Order:      append([]int(nil), s.Order...),
		Assignment: make(map[int]int, len(s.Assignment)),
	}
	for k, v := range s.Assignment {
		out.Assignment[k] = v
	}
	return out
}

// Validate checks the schedule against the graph: the order must be a
// topological order covering every task exactly once, and every task must
// be assigned an in-range design point.
func (s *Schedule) Validate(g *taskgraph.Graph) error {
	if !g.IsTopoOrder(s.Order) {
		return fmt.Errorf("sched: order is not a topological order of the graph")
	}
	for _, id := range s.Order {
		j, ok := s.Assignment[id]
		if !ok {
			return fmt.Errorf("sched: task %d has no design point assigned", id)
		}
		if j < 0 || j >= len(g.Task(id).Points) {
			return fmt.Errorf("sched: task %d assigned out-of-range design point %d", id, j)
		}
	}
	return nil
}

// ValidateDeadline runs Validate and additionally checks the completion
// time against the deadline (with a tiny tolerance for float accumulation).
func (s *Schedule) ValidateDeadline(g *taskgraph.Graph, deadline float64) error {
	if err := s.Validate(g); err != nil {
		return err
	}
	d := s.Duration(g)
	const eps = 1e-9
	if d > deadline*(1+eps)+eps {
		return fmt.Errorf("sched: duration %.6g exceeds deadline %.6g", d, deadline)
	}
	return nil
}

// point returns the assigned design point of task id.
func (s *Schedule) point(g *taskgraph.Graph, id int) taskgraph.DesignPoint {
	return g.Task(id).Points[s.Assignment[id]]
}

// Duration returns the completion time: the sum of assigned execution
// times (tasks execute sequentially on one processing element).
func (s *Schedule) Duration(g *taskgraph.Graph) float64 {
	var t float64
	for _, id := range s.Order {
		t += s.point(g, id).Time
	}
	return t
}

// Energy returns the total charge-energy of the schedule: the sum of
// I·t over assigned design points (mA·min). This is the quantity baseline
// [1]'s dynamic program minimizes.
func (s *Schedule) Energy(g *taskgraph.Graph) float64 {
	var e float64
	for _, id := range s.Order {
		e += s.point(g, id).Energy()
	}
	return e
}

// Profile converts the schedule into the battery discharge profile the
// cost function evaluates: one constant-current interval per task, in
// execution order.
func (s *Schedule) Profile(g *taskgraph.Graph) battery.Profile {
	p := make(battery.Profile, 0, len(s.Order))
	for _, id := range s.Order {
		pt := s.point(g, id)
		p = append(p, battery.Interval{Current: pt.Current, Duration: pt.Time})
	}
	return p
}

// Cost evaluates the schedule's battery cost: sigma at the completion time
// under the given model (the paper's CalculateBatteryCost).
func (s *Schedule) Cost(g *taskgraph.Graph, m battery.Model) float64 {
	p := s.Profile(g)
	return m.ChargeLost(p, p.TotalTime())
}

// CIF returns the schedule's Current Increase Fraction (see
// battery.Profile.CIF).
func (s *Schedule) CIF(g *taskgraph.Graph) float64 { return s.Profile(g).CIF() }

// SlackRatio returns (deadline − duration)/deadline, the paper's SR for the
// whole schedule. Negative values mean the deadline is violated.
func (s *Schedule) SlackRatio(g *taskgraph.Graph, deadline float64) float64 {
	if deadline == 0 {
		return 0
	}
	return (deadline - s.Duration(g)) / deadline
}

// String renders the schedule compactly: "T1@DP5 T4@DP5 …".
func (s *Schedule) String() string {
	var b strings.Builder
	for k, id := range s.Order {
		if k > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "T%d@DP%d", id, s.Assignment[id]+1)
	}
	return b.String()
}

// Stats bundles the summary numbers reports print for a schedule.
type Stats struct {
	Duration  float64 // completion time, min
	Energy    float64 // delivered charge, mA·min
	Cost      float64 // sigma at completion under the model, mA·min
	CIF       float64 // current increase fraction
	Slack     float64 // deadline − duration, min
	PeakI     float64 // peak current, mA
	MeanI     float64 // time-weighted mean current, mA
	Feasible  bool    // duration <= deadline
	Deadline  float64
	ModelName string
}

// Summarize computes Stats for the schedule under the model and deadline.
func (s *Schedule) Summarize(g *taskgraph.Graph, m battery.Model, deadline float64) Stats {
	p := s.Profile(g)
	dur := p.TotalTime()
	return Stats{
		Duration:  dur,
		Energy:    p.DeliveredCharge(dur),
		Cost:      m.ChargeLost(p, dur),
		CIF:       p.CIF(),
		Slack:     deadline - dur,
		PeakI:     p.PeakCurrent(),
		MeanI:     p.MeanCurrent(),
		Feasible:  dur <= deadline+1e-9,
		Deadline:  deadline,
		ModelName: m.Name(),
	}
}

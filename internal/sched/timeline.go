package sched

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/taskgraph"
)

// WriteTimeline renders the schedule as a text Gantt chart with a current
// profile sparkline, width columns wide. Each task occupies a horizontal
// span proportional to its execution time; the bottom rows bin the
// platform current into a coarse vertical bar chart so the discharge
// shape (ideally non-increasing) is visible at a glance.
func (s *Schedule) WriteTimeline(w io.Writer, g *taskgraph.Graph, width int) error {
	if err := s.Validate(g); err != nil {
		return err
	}
	if width < 20 {
		width = 72
	}
	total := s.Duration(g)
	if total <= 0 {
		return fmt.Errorf("sched: empty schedule")
	}
	col := func(t float64) int {
		c := int(t / total * float64(width))
		if c >= width {
			c = width - 1
		}
		return c
	}

	var b strings.Builder
	// Task band: one row of labeled spans. Short spans degrade to '|'.
	band := make([]byte, width)
	for i := range band {
		band[i] = ' '
	}
	var t float64
	type span struct {
		from, to int
		label    string
	}
	var spans []span
	for _, id := range s.Order {
		pt := g.Task(id).Points[s.Assignment[id]]
		from := col(t)
		t += pt.Time
		to := col(t)
		spans = append(spans, span{from, to, fmt.Sprintf("T%d", id)})
	}
	for _, sp := range spans {
		for c := sp.from; c <= sp.to && c < width; c++ {
			band[c] = '-'
		}
		band[sp.from] = '|'
		for k := 0; k < len(sp.label) && sp.from+1+k <= sp.to; k++ {
			band[sp.from+1+k] = sp.label[k]
		}
	}
	b.Write(band)
	b.WriteByte('\n')

	// Current sparkline: 5 rows, tallest bar = peak current.
	const rows = 5
	p := s.Profile(g)
	peak := p.PeakCurrent()
	if peak <= 0 {
		peak = 1
	}
	heights := make([]int, width)
	for c := 0; c < width; c++ {
		at := (float64(c) + 0.5) / float64(width) * total
		cur := p.CurrentAt(at)
		h := int(cur / peak * rows)
		if cur > 0 && h == 0 {
			h = 1
		}
		heights[c] = h
	}
	for r := rows; r >= 1; r-- {
		line := make([]byte, width)
		for c := 0; c < width; c++ {
			if heights[c] >= r {
				line[c] = '#'
			} else {
				line[c] = ' '
			}
		}
		b.Write(line)
		if r == rows {
			fmt.Fprintf(&b, " %.0f mA", peak)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "0%smin %.1f\n", strings.Repeat(" ", width-10), total)
	_, err := io.WriteString(w, b.String())
	return err
}

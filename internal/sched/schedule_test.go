package sched

import (
	"math"
	"strings"
	"testing"

	"repro/internal/battery"
	"repro/internal/taskgraph"
)

func chain(t *testing.T) *taskgraph.Graph {
	t.Helper()
	var b taskgraph.Builder
	b.AddTask(1, "", taskgraph.DesignPoint{Current: 100, Time: 1}, taskgraph.DesignPoint{Current: 10, Time: 3})
	b.AddTask(2, "", taskgraph.DesignPoint{Current: 200, Time: 2}, taskgraph.DesignPoint{Current: 20, Time: 5})
	b.AddEdge(1, 2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestScheduleValidate(t *testing.T) {
	g := chain(t)
	good := &Schedule{Order: []int{1, 2}, Assignment: map[int]int{1: 0, 2: 1}}
	if err := good.Validate(g); err != nil {
		t.Fatalf("good schedule rejected: %v", err)
	}
	bad := []*Schedule{
		{Order: []int{2, 1}, Assignment: map[int]int{1: 0, 2: 0}},  // precedence
		{Order: []int{1}, Assignment: map[int]int{1: 0}},           // incomplete
		{Order: []int{1, 2}, Assignment: map[int]int{1: 0}},        // missing assignment
		{Order: []int{1, 2}, Assignment: map[int]int{1: 0, 2: 5}},  // out of range
		{Order: []int{1, 2}, Assignment: map[int]int{1: -1, 2: 0}}, // negative
		{Order: []int{1, 1}, Assignment: map[int]int{1: 0, 2: 0}},  // duplicate
	}
	for k, s := range bad {
		if err := s.Validate(g); err == nil {
			t.Errorf("bad schedule %d accepted", k)
		}
	}
}

func TestScheduleDurationEnergy(t *testing.T) {
	g := chain(t)
	s := &Schedule{Order: []int{1, 2}, Assignment: map[int]int{1: 0, 2: 1}}
	if got := s.Duration(g); got != 6 {
		t.Fatalf("Duration = %g", got)
	}
	if got := s.Energy(g); got != 100+100 {
		t.Fatalf("Energy = %g", got)
	}
}

func TestScheduleValidateDeadline(t *testing.T) {
	g := chain(t)
	s := &Schedule{Order: []int{1, 2}, Assignment: map[int]int{1: 0, 2: 1}}
	if err := s.ValidateDeadline(g, 6); err != nil {
		t.Fatalf("deadline 6 should pass: %v", err)
	}
	if err := s.ValidateDeadline(g, 5.9); err == nil {
		t.Fatal("deadline 5.9 should fail")
	}
}

func TestScheduleProfileOrderMatters(t *testing.T) {
	g := chain(t)
	s := &Schedule{Order: []int{1, 2}, Assignment: map[int]int{1: 0, 2: 0}}
	p := s.Profile(g)
	if len(p) != 2 || p[0].Current != 100 || p[1].Current != 200 {
		t.Fatalf("Profile = %v", p)
	}
	if p[0].Duration != 1 || p[1].Duration != 2 {
		t.Fatalf("Profile durations = %v", p)
	}
}

func TestScheduleCostMatchesModel(t *testing.T) {
	g := chain(t)
	s := &Schedule{Order: []int{1, 2}, Assignment: map[int]int{1: 0, 2: 0}}
	m := battery.NewRakhmatov(0.273)
	p := s.Profile(g)
	want := m.ChargeLost(p, p.TotalTime())
	if got := s.Cost(g, m); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Cost = %g, want %g", got, want)
	}
	// Ideal cost equals energy.
	if got := s.Cost(g, battery.Ideal{}); math.Abs(got-s.Energy(g)) > 1e-12 {
		t.Fatalf("ideal cost %g != energy %g", got, s.Energy(g))
	}
}

func TestScheduleCIFAndSlack(t *testing.T) {
	g := chain(t)
	inc := &Schedule{Order: []int{1, 2}, Assignment: map[int]int{1: 0, 2: 0}} // 100 then 200
	if got := inc.CIF(g); got != 1 {
		t.Fatalf("CIF = %g", got)
	}
	dec := &Schedule{Order: []int{1, 2}, Assignment: map[int]int{1: 0, 2: 1}} // 100 then 20
	if got := dec.CIF(g); got != 0 {
		t.Fatalf("CIF = %g", got)
	}
	if got := dec.SlackRatio(g, 12); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("SlackRatio = %g", got)
	}
}

func TestScheduleClone(t *testing.T) {
	s := &Schedule{Order: []int{1, 2}, Assignment: map[int]int{1: 0, 2: 1}}
	c := s.Clone()
	c.Order[0] = 99
	c.Assignment[1] = 99
	if s.Order[0] != 1 || s.Assignment[1] != 0 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestScheduleString(t *testing.T) {
	s := &Schedule{Order: []int{2, 1}, Assignment: map[int]int{1: 0, 2: 4}}
	got := s.String()
	if !strings.Contains(got, "T2@DP5") || !strings.Contains(got, "T1@DP1") {
		t.Fatalf("String = %q", got)
	}
}

func TestSummarize(t *testing.T) {
	g := chain(t)
	s := &Schedule{Order: []int{1, 2}, Assignment: map[int]int{1: 0, 2: 0}}
	m := battery.NewRakhmatov(0.273)
	st := s.Summarize(g, m, 10)
	if st.Duration != 3 || !st.Feasible {
		t.Fatalf("stats = %+v", st)
	}
	if st.Energy != 500 {
		t.Fatalf("stats energy = %g", st.Energy)
	}
	if st.Cost < st.Energy {
		t.Fatalf("sigma %g below delivered %g", st.Cost, st.Energy)
	}
	if st.PeakI != 200 || math.Abs(st.MeanI-500.0/3) > 1e-9 {
		t.Fatalf("peak/mean = %g/%g", st.PeakI, st.MeanI)
	}
	if st.Slack != 7 {
		t.Fatalf("slack = %g", st.Slack)
	}
	tight := s.Summarize(g, m, 2)
	if tight.Feasible {
		t.Fatal("deadline 2 should be infeasible")
	}
}

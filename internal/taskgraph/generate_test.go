package taskgraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func twoPoints(i int) []DesignPoint {
	base := float64(i%7 + 1)
	return []DesignPoint{
		{Current: 100 * base, Time: base},
		{Current: 10 * base, Time: 3 * base},
	}
}

func TestChain(t *testing.T) {
	g, err := Chain(5, twoPoints)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 5 || g.EdgeCount() != 4 {
		t.Fatalf("chain: n=%d e=%d", g.N(), g.EdgeCount())
	}
	order := g.TopoOrder()
	for k, id := range order {
		if id != k+1 {
			t.Fatalf("chain topo order = %v", order)
		}
	}
	if _, err := Chain(0, twoPoints); err == nil {
		t.Fatal("Chain(0) should error")
	}
}

func TestForkJoin(t *testing.T) {
	g, err := ForkJoin(3, 2, 2, twoPoints)
	if err != nil {
		t.Fatal(err)
	}
	wantN := 1 + 3*2 + 2
	if g.N() != wantN {
		t.Fatalf("forkjoin n=%d want %d", g.N(), wantN)
	}
	if got := g.Roots(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("forkjoin roots = %v", got)
	}
	if got := g.Leaves(); len(got) != 1 {
		t.Fatalf("forkjoin leaves = %v", got)
	}
	// The join task has one parent per branch.
	join := 2 + 3*2
	if got := g.Parents(join); len(got) != 3 {
		t.Fatalf("join parents = %v", got)
	}
	if _, err := ForkJoin(0, 1, 1, twoPoints); err == nil {
		t.Fatal("ForkJoin(0,...) should error")
	}
}

func TestLayered(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g, err := Layered(rng, 4, 3, 0.5, twoPoints)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 12 {
		t.Fatalf("layered n=%d", g.N())
	}
	// Every non-first-layer task has at least one parent.
	for id := 4; id <= 12; id++ {
		if len(g.Parents(id)) == 0 {
			t.Fatalf("task %d has no parent", id)
		}
	}
	if !g.IsTopoOrder(g.TopoOrder()) {
		t.Fatal("layered topo order invalid")
	}
	if _, err := Layered(rng, 1, 1, 2.0, twoPoints); err == nil {
		t.Fatal("density > 1 should error")
	}
}

func TestSeriesParallel(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g, err := SeriesParallel(rng, 12, twoPoints)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if g.N() < 2 {
			t.Fatalf("seed %d: too few tasks (%d)", seed, g.N())
		}
		if !g.IsTopoOrder(g.TopoOrder()) {
			t.Fatalf("seed %d: invalid topo order", seed)
		}
	}
}

func TestRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g, err := Random(rng, 10, 0.3, twoPoints)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 10 {
		t.Fatalf("random n=%d", g.N())
	}
	// IDs ascending must be a valid order by construction.
	seq := make([]int, 10)
	for k := range seq {
		seq[k] = k + 1
	}
	if !g.IsTopoOrder(seq) {
		t.Fatal("ascending IDs should be a topological order of Random output")
	}
}

// TestRandomGraphInvariants property-tests structural invariants over many
// random DAGs: topological order validity, reachability reflexivity and
// transitivity, and ancestor/descendant duality.
func TestRandomGraphInvariants(t *testing.T) {
	check := func(seed int64, nRaw uint8, pRaw uint8) bool {
		n := int(nRaw%12) + 1
		p := float64(pRaw%100) / 100
		rng := rand.New(rand.NewSource(seed))
		g, err := Random(rng, n, p, twoPoints)
		if err != nil {
			return false
		}
		if !g.IsTopoOrder(g.TopoOrder()) {
			return false
		}
		for _, id := range g.TaskIDs() {
			reach := g.Reachable(id)
			// Reflexive.
			found := false
			for _, r := range reach {
				if r == id {
					found = true
				}
			}
			if !found {
				return false
			}
			// Transitive: everything reachable from a child is
			// reachable from the parent.
			for _, c := range g.Children(id) {
				for _, r := range g.Reachable(c) {
					ok := false
					for _, rr := range reach {
						if rr == r {
							ok = true
							break
						}
					}
					if !ok {
						return false
					}
				}
			}
			// Duality: id is an ancestor of each strict descendant.
			for _, r := range reach {
				if r == id {
					continue
				}
				anc := g.Ancestors(r)
				ok := false
				for _, a := range anc {
					if a == id {
						ok = true
						break
					}
				}
				if !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

package taskgraph

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the graph in Graphviz DOT form. Each node is labeled
// with its name and the time range across design points, which makes the
// trade-off space visible when the drawing is inspected.
func (g *Graph) WriteDOT(w io.Writer, name string) error {
	if name == "" {
		name = "taskgraph"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=TB;\n  node [shape=box, fontname=\"Helvetica\"];\n")
	for i := 0; i < g.N(); i++ {
		t := g.TaskAt(i)
		fast, slow := t.FastestTime(), t.SlowestTime()
		fmt.Fprintf(&b, "  t%d [label=\"%s\\n%d pts, %.1f–%.1f min\"];\n",
			t.ID, t.Name, len(t.Points), fast, slow)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  t%d -> t%d;\n", e[0], e[1])
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

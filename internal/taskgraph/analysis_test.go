package taskgraph

import (
	"math"
	"strings"
	"testing"
)

func TestAnalyzeDiamond(t *testing.T) {
	var b Builder
	for id := 1; id <= 4; id++ {
		b.AddTask(id, "", pt(100, 1), pt(10, 2))
	}
	b.AddEdge(1, 2).AddEdge(1, 3).AddEdge(2, 4).AddEdge(3, 4)
	g := b.MustBuild()
	a := g.Analyze(0)
	if a.Tasks != 4 || a.Edges != 4 || a.Points != 2 {
		t.Fatalf("analysis = %+v", a)
	}
	if a.Depth != 3 {
		t.Fatalf("depth = %d, want 3 (1→2→4)", a.Depth)
	}
	if a.MaxWidth != 2 {
		t.Fatalf("max width = %d, want 2 ({2,3})", a.MaxWidth)
	}
	if a.Orders != 2 {
		t.Fatalf("orders = %d, want 2", a.Orders)
	}
	if a.MinTime != 4 || a.MaxTime != 8 || a.TimeSpread != 2 {
		t.Fatalf("times = %+v", a)
	}
	if a.CurrentSpread != 10 {
		t.Fatalf("current spread = %g", a.CurrentSpread)
	}
	if s := a.String(); !strings.Contains(s, "depth 3") || !strings.Contains(s, "2 orders") {
		t.Fatalf("String = %q", s)
	}
}

func TestAnalyzeG3(t *testing.T) {
	a := G3().Analyze(0)
	// G3's layers: T1 | T2..T5 | T6,T7 | T8 | T9,T10 | T11,T12,T13 |
	// T14 | T15 → depth 8, max width 4.
	if a.Depth != 8 {
		t.Fatalf("G3 depth = %d, want 8", a.Depth)
	}
	if a.MaxWidth != 4 {
		t.Fatalf("G3 max width = %d, want 4", a.MaxWidth)
	}
	if a.Orders <= 1 {
		t.Fatalf("G3 orders = %d", a.Orders)
	}
}

func TestAnalyzeOrdersCap(t *testing.T) {
	var b Builder
	for id := 1; id <= 10; id++ {
		b.AddTask(id, "", pt(1, 1))
	}
	g := b.MustBuild() // 10 independent tasks: 10! orders
	a := g.Analyze(500)
	if a.Orders != 500 {
		t.Fatalf("orders = %d, want capped 500", a.Orders)
	}
	if s := a.String(); !strings.Contains(s, ">500 orders") {
		t.Fatalf("String = %q", s)
	}
}

func TestCriticalPathTime(t *testing.T) {
	var b Builder
	for id := 1; id <= 4; id++ {
		b.AddTask(id, "", pt(100, float64(id))) // times 1,2,3,4
	}
	b.AddEdge(1, 2).AddEdge(1, 3).AddEdge(2, 4).AddEdge(3, 4)
	g := b.MustBuild()
	// Longest path 1→3→4 = 1+3+4 = 8.
	cp, err := g.CriticalPathTime(0)
	if err != nil || math.Abs(cp-8) > 1e-12 {
		t.Fatalf("critical path = %g, %v; want 8", cp, err)
	}
	if _, err := g.CriticalPathTime(5); err == nil {
		t.Fatal("bad column should error")
	}
	// Single-PE makespan (column sum 10) exceeds the critical path —
	// the parallelism the platform cannot use.
	ct, _ := g.ColumnTime(0)
	if ct <= cp {
		t.Fatalf("column time %g should exceed critical path %g here", ct, cp)
	}
	// On a chain they coincide.
	chain, err := Chain(3, func(int) []DesignPoint { return []DesignPoint{pt(1, 2)} })
	if err != nil {
		t.Fatal(err)
	}
	ccp, _ := chain.CriticalPathTime(0)
	cct, _ := chain.ColumnTime(0)
	if ccp != cct {
		t.Fatalf("chain: cp %g != column %g", ccp, cct)
	}
}

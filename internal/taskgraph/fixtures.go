package taskgraph

import (
	"fmt"
	"strconv"
	"strings"
)

// This file hard-codes the two benchmark task graphs the paper evaluates.
//
// G3 (Table 1): a 15-task fork-join graph with five design points per task.
// The numbers below are transcribed verbatim from Table 1 of the paper and
// cross-checked against its stated generation rule (currents proportional to
// the cube of the voltage scaling factors 1, 0.85, 0.68, 0.51, 0.33 of DP1;
// durations proportional to the reversed factor list — see internal/dvs).
//
// G2 (Figure 5): the 9-task robotic arm controller case study with four
// design points per task. The node data table is transcribed verbatim. The
// figure's edge drawing is not recoverable from the paper text, so the edge
// set below is a reconstruction chosen from twelve candidates for best
// agreement with the paper's Table 4 (see the g2Edges comment and
// DESIGN.md §3).

// g3Row is one task row of Table 1: currents (mA) and durations (min) for
// design points 1..5, plus parent task IDs.
type g3Row struct {
	id      int
	i       [5]float64
	d       [5]float64
	parents []int
}

var g3Data = []g3Row{
	{1, [5]float64{917, 563, 288, 122, 33}, [5]float64{7.3, 11.2, 15.0, 18.7, 22.0}, nil},
	{2, [5]float64{519, 319, 163, 69, 19}, [5]float64{11.2, 17.3, 23.1, 28.9, 34.0}, []int{1}},
	{3, [5]float64{611, 375, 192, 81, 22}, [5]float64{5.9, 9.2, 12.2, 15.3, 18.0}, []int{1}},
	{4, [5]float64{938, 576, 295, 124, 34}, [5]float64{5.3, 8.2, 10.9, 13.6, 16.0}, []int{1}},
	{5, [5]float64{781, 480, 246, 104, 28}, [5]float64{4.0, 6.1, 8.2, 10.2, 12.0}, []int{1}},
	{6, [5]float64{800, 491, 252, 106, 29}, [5]float64{4.6, 7.1, 9.5, 11.9, 14.0}, []int{2, 3}},
	{7, [5]float64{720, 442, 226, 96, 26}, [5]float64{7.3, 11.2, 15.0, 18.7, 22.0}, []int{4, 5}},
	{8, [5]float64{600, 368, 189, 80, 22}, [5]float64{5.3, 8.2, 10.9, 13.6, 16.0}, []int{6, 7}},
	{9, [5]float64{650, 399, 204, 86, 23}, [5]float64{4.6, 7.1, 9.5, 11.9, 14.0}, []int{8}},
	{10, [5]float64{710, 436, 223, 94, 26}, [5]float64{5.9, 9.2, 12.2, 15.3, 18.0}, []int{8}},
	{11, [5]float64{500, 307, 157, 66, 18}, [5]float64{6.6, 10.2, 13.6, 17.0, 20.0}, []int{9}},
	{12, [5]float64{510, 313, 160, 68, 18}, [5]float64{4.6, 7.1, 9.5, 11.9, 14.0}, []int{10}},
	{13, [5]float64{700, 430, 220, 93, 25}, [5]float64{4.0, 6.1, 8.2, 10.2, 12.0}, []int{9}},
	{14, [5]float64{400, 246, 126, 53, 14}, [5]float64{5.3, 8.2, 10.9, 13.6, 16.0}, []int{11, 12, 13}},
	{15, [5]float64{380, 233, 119, 50, 14}, [5]float64{3.3, 5.1, 6.8, 8.5, 10.0}, []int{14}},
}

// G3 returns the paper's 15-task, 5-design-point fork-join example graph
// (Table 1). The paper's illustrative run uses deadline 230 minutes and
// battery parameter beta = 0.273.
func G3() *Graph {
	var b Builder
	for _, r := range g3Data {
		pts := make([]DesignPoint, 5)
		for j := 0; j < 5; j++ {
			pts[j] = DesignPoint{Current: r.i[j], Time: r.d[j], Name: dpName(j)}
		}
		b.AddTask(r.id, taskName(r.id), pts...)
	}
	for _, r := range g3Data {
		for _, p := range r.parents {
			b.AddEdge(p, r.id)
		}
	}
	return b.MustBuild()
}

// G3Deadline is the deadline the paper uses for the illustrative G3 run.
const G3Deadline = 230.0

// G2 node data from Figure 5: currents (mA) and durations (min) for design
// points 1..4.
type g2Row struct {
	id int
	i  [4]float64
	d  [4]float64
}

var g2Data = []g2Row{
	{1, [4]float64{938, 278, 117, 60}, [4]float64{8.8, 13.2, 17.6, 22.0}},
	{2, [4]float64{781, 231, 98, 50}, [4]float64{1.2, 1.9, 2.5, 3.1}},
	{3, [4]float64{781, 231, 98, 50}, [4]float64{8.1, 12.1, 16.2, 20.2}},
	{4, [4]float64{656, 194, 82, 42}, [4]float64{3.6, 5.4, 7.2, 9.0}},
	{5, [4]float64{781, 231, 98, 50}, [4]float64{6.5, 9.8, 13.0, 16.3}},
	{6, [4]float64{531, 157, 66, 34}, [4]float64{3.5, 5.3, 7.0, 8.8}},
	{7, [4]float64{531, 157, 66, 34}, [4]float64{3.5, 5.3, 7.0, 8.8}},
	{8, [4]float64{531, 157, 66, 34}, [4]float64{3.5, 5.3, 7.0, 8.8}},
	{9, [4]float64{531, 157, 66, 34}, [4]float64{3.5, 5.3, 7.0, 8.8}},
}

// g2Edges is the reconstructed precedence structure of the robotic arm
// controller: a two-level fork (task 1 fans out to 2..5, each feeding one
// of 6..9, which exit the graph). Among the candidate structures consistent
// with the Figure 5 layout, this one reproduces the paper's Table 4 shape
// best — including the near-zero ours-vs-baseline gap at deadline 75 — see
// DESIGN.md §3 and EXPERIMENTS.md.
var g2Edges = [][2]int{
	{1, 2}, {1, 3}, {1, 4}, {1, 5},
	{2, 6}, {3, 7}, {4, 8}, {5, 9},
}

// G2 returns the robotic arm controller case-study graph (Figure 5): nine
// tasks with four design points each. The paper evaluates it at deadlines
// 55, 75 and 95 minutes.
func G2() *Graph {
	var b Builder
	for _, r := range g2Data {
		pts := make([]DesignPoint, 4)
		for j := 0; j < 4; j++ {
			pts[j] = DesignPoint{Current: r.i[j], Time: r.d[j], Name: dpName(j)}
		}
		b.AddTask(r.id, taskName(r.id), pts...)
	}
	for _, e := range g2Edges {
		b.AddEdge(e[0], e[1])
	}
	return b.MustBuild()
}

// Fixture returns the built-in paper graph with the given name ("g2" or
// "g3", case-insensitive) and the canonical spelling of the name. It is
// the single registry every CLI resolves fixture names through.
func Fixture(name string) (*Graph, string, error) {
	switch strings.ToLower(name) {
	case "g2":
		return G2(), "g2", nil
	case "g3":
		return G3(), "g3", nil
	default:
		return nil, "", fmt.Errorf("taskgraph: unknown fixture %q (want g2 or g3)", name)
	}
}

// FixtureInfo describes one built-in benchmark graph for discovery
// surfaces (battschedd's GET /v1/fixtures, CLI help).
type FixtureInfo struct {
	// Name is the canonical fixture name accepted wherever a job takes
	// a "fixture" field.
	Name string `json:"name"`
	// Tasks and DesignPoints give the graph's size (every task has the
	// same number of design points).
	Tasks        int `json:"tasks"`
	DesignPoints int `json:"design_points"`
	// Deadlines are the deadlines (minutes) the paper evaluates the
	// graph at.
	Deadlines []float64 `json:"deadlines"`
	// Description says where in the paper the graph comes from.
	Description string `json:"description"`
}

// FixtureInfos returns the registry of built-in graphs, in canonical
// name order. The Deadlines slices are fresh copies.
func FixtureInfos() []FixtureInfo {
	return []FixtureInfo{
		{
			Name:         "g2",
			Tasks:        len(g2Data),
			DesignPoints: 4,
			Deadlines:    append([]float64(nil), G2Deadlines...),
			Description:  "robotic arm controller case study (Figure 5)",
		},
		{
			Name:         "g3",
			Tasks:        len(g3Data),
			DesignPoints: 5,
			Deadlines:    append([]float64(nil), G3Deadlines...),
			Description:  "15-task fork-join illustrative example (Table 1)",
		},
	}
}

// G2Deadlines are the deadlines (minutes) Table 4 evaluates G2 at.
var G2Deadlines = []float64{55, 75, 95}

// G3Deadlines are the deadlines (minutes) Table 4 evaluates G3 at.
var G3Deadlines = []float64{100, 150, 230}

func dpName(j int) string    { return "DP" + itoa(j+1) }
func taskName(id int) string { return "T" + itoa(id) }

// itoa formats any int (FuzzReadJSON found the previous hand-rolled
// 8-byte version overflowing on 9-digit task IDs from hostile specs).
func itoa(v int) string { return strconv.Itoa(v) }

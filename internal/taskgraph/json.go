package taskgraph

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Spec is the JSON interchange form of a task graph. It mirrors the paper's
// application specification: tasks with design points and parent lists.
type Spec struct {
	// Name optionally labels the graph.
	Name string `json:"name,omitempty"`
	// Tasks lists every task with its design points and parents.
	Tasks []TaskSpec `json:"tasks"`
}

// TaskSpec is the JSON form of one task.
type TaskSpec struct {
	ID      int         `json:"id"`
	Name    string      `json:"name,omitempty"`
	Points  []PointSpec `json:"points"`
	Parents []int       `json:"parents,omitempty"`
}

// PointSpec is the JSON form of one design point.
type PointSpec struct {
	Current float64 `json:"current"`
	Time    float64 `json:"time"`
	Voltage float64 `json:"voltage,omitempty"`
	Name    string  `json:"name,omitempty"`
}

// ToSpec converts a graph to its interchange form with the given name.
func (g *Graph) ToSpec(name string) Spec {
	spec := Spec{Name: name}
	for i := range g.tasks {
		t := &g.tasks[i]
		ts := TaskSpec{ID: t.ID, Name: t.Name, Parents: g.Parents(t.ID)}
		for _, p := range t.Points {
			ts.Points = append(ts.Points, PointSpec{Current: p.Current, Time: p.Time, Voltage: p.Voltage, Name: p.Name})
		}
		spec.Tasks = append(spec.Tasks, ts)
	}
	sort.Slice(spec.Tasks, func(a, b int) bool { return spec.Tasks[a].ID < spec.Tasks[b].ID })
	return spec
}

// FromSpec builds and validates a graph from its interchange form.
func FromSpec(spec Spec) (*Graph, error) {
	if len(spec.Tasks) == 0 {
		return nil, fmt.Errorf("taskgraph: spec %q has no tasks", spec.Name)
	}
	var b Builder
	for _, ts := range spec.Tasks {
		pts := make([]DesignPoint, len(ts.Points))
		for j, p := range ts.Points {
			pts[j] = DesignPoint{Current: p.Current, Time: p.Time, Voltage: p.Voltage, Name: p.Name}
		}
		name := ts.Name
		if name == "" {
			name = taskName(ts.ID)
		}
		b.AddTask(ts.ID, name, pts...)
	}
	for _, ts := range spec.Tasks {
		for _, p := range ts.Parents {
			b.AddEdge(p, ts.ID)
		}
	}
	return b.Build()
}

// WriteJSON encodes the graph as indented JSON.
func (g *Graph) WriteJSON(w io.Writer, name string) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(g.ToSpec(name))
}

// ReadJSON decodes a graph from JSON produced by WriteJSON (or hand-written
// in the same schema) and validates it.
func ReadJSON(r io.Reader) (*Graph, error) {
	var spec Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("taskgraph: decoding spec: %w", err)
	}
	return FromSpec(spec)
}

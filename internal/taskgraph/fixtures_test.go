package taskgraph

import (
	"math"
	"testing"
)

func TestG3Shape(t *testing.T) {
	g := G3()
	if g.N() != 15 {
		t.Fatalf("G3 has %d tasks, want 15", g.N())
	}
	if m, ok := g.UniformPointCount(); !ok || m != 5 {
		t.Fatalf("G3 point count = %d,%v want 5,true", m, ok)
	}
	// Spot-check the parent lists against Table 1.
	wantParents := map[int][]int{
		1: {}, 2: {1}, 6: {2, 3}, 7: {4, 5}, 8: {6, 7},
		14: {11, 12, 13}, 15: {14},
	}
	for id, want := range wantParents {
		got := g.Parents(id)
		if len(got) != len(want) {
			t.Fatalf("Parents(%d) = %v, want %v", id, got, want)
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("Parents(%d) = %v, want %v", id, got, want)
			}
		}
	}
	if got := g.Roots(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("G3 roots = %v", got)
	}
	if got := g.Leaves(); len(got) != 1 || got[0] != 15 {
		t.Fatalf("G3 leaves = %v", got)
	}
}

// TestG3ColumnTimes pins the column completion times the window search
// depends on: CT(5) = 258 > 230 >= CT(4) = 219.3, which is why the paper's
// run evaluates exactly windows 4:5 through 1:5.
func TestG3ColumnTimes(t *testing.T) {
	g := G3()
	want := []float64{85.2, 131.5, 175.5, 219.3, 258.0}
	for j, w := range want {
		ct, err := g.ColumnTime(j)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ct-w) > 1e-9 {
			t.Errorf("CT(%d) = %.4f, want %.1f", j+1, ct, w)
		}
	}
	if g.MinTotalTime() > G3Deadline {
		t.Fatal("G3 must be feasible at deadline 230")
	}
}

// TestG3DerivationRule verifies the fixture against the paper's stated
// generation recipe: currents scale with the cube of the DP1-relative
// voltage factors and durations stretch along the reversed factor list
// (Table 1 carries integer currents and 0.1-minute times, so we check to
// that rounding).
func TestG3DerivationRule(t *testing.T) {
	g := G3()
	factors := []float64{1, 0.85, 0.68, 0.51, 0.33}
	for _, id := range g.TaskIDs() {
		pts := g.Task(id).Points
		i1 := pts[0].Current
		d5 := pts[4].Time
		for j := 0; j < 5; j++ {
			wantI := math.Round(i1 * math.Pow(factors[j], 3))
			if math.Abs(pts[j].Current-wantI) > 1 {
				t.Errorf("T%d DP%d current %g, recipe %g", id, j+1, pts[j].Current, wantI)
			}
			wantD := math.Round(d5*factors[4-j]*10) / 10
			if math.Abs(pts[j].Time-wantD) > 0.11 {
				t.Errorf("T%d DP%d time %g, recipe %g", id, j+1, pts[j].Time, wantD)
			}
		}
	}
}

func TestG2Shape(t *testing.T) {
	g := G2()
	if g.N() != 9 {
		t.Fatalf("G2 has %d tasks, want 9", g.N())
	}
	if m, ok := g.UniformPointCount(); !ok || m != 4 {
		t.Fatalf("G2 point count = %d,%v want 4,true", m, ok)
	}
	if got := g.Roots(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("G2 roots = %v", got)
	}
	if got := g.Leaves(); len(got) != 4 {
		t.Fatalf("G2 leaves = %v, want the four second-level tasks", got)
	}
	// All three Table 4 deadlines must be feasible, and the loosest must
	// not be trivially satisfiable by the all-slowest assignment for the
	// problem to be interesting at 55.
	if g.MinTotalTime() > G2Deadlines[0] {
		t.Fatalf("G2 min time %.1f exceeds tightest deadline %g", g.MinTotalTime(), G2Deadlines[0])
	}
	if g.MaxTotalTime() <= G2Deadlines[0] {
		t.Fatalf("G2 max time %.1f should exceed the tightest deadline", g.MaxTotalTime())
	}
}

// TestG2DerivationRule verifies the fixture against the paper's recipe for
// G2: factors relative to the slowest point DP4 (the printed "1.66" is
// actually 5/3 — 60·1.66³ rounds to 274, but the table says 278 = 60·(5/3)³),
// currents cubed, durations inverse.
func TestG2DerivationRule(t *testing.T) {
	g := G2()
	factors := []float64{2.5, 5.0 / 3.0, 1.25, 1}
	for _, id := range g.TaskIDs() {
		pts := g.Task(id).Points
		i4 := pts[3].Current
		d4 := pts[3].Time
		for j := 0; j < 4; j++ {
			wantI := math.Round(i4 * math.Pow(factors[j], 3))
			if math.Abs(pts[j].Current-wantI) > 1 {
				t.Errorf("N%d DP%d current %g, recipe %g", id, j+1, pts[j].Current, wantI)
			}
			wantD := math.Round(d4/factors[j]*10) / 10
			if math.Abs(pts[j].Time-wantD) > 0.11 {
				t.Errorf("N%d DP%d time %g, recipe %g", id, j+1, pts[j].Time, wantD)
			}
		}
	}
}

// TestG3EnergyRange pins the ENR normalization constants (hand-computed
// from Table 1): Emin = 6044, Emax = 55321.6 mA·min.
func TestG3EnergyRange(t *testing.T) {
	g := G3()
	eMin, eMax := g.EnergyRange()
	if math.Abs(eMin-6044) > 1 {
		t.Errorf("Emin = %.1f, want 6044", eMin)
	}
	if math.Abs(eMax-55321.6) > 1 {
		t.Errorf("Emax = %.1f, want 55321.6", eMax)
	}
	lo, hi := g.CurrentRange()
	if lo != 14 || hi != 938 {
		t.Errorf("CurrentRange = %g..%g, want 14..938", lo, hi)
	}
}

func TestFixtureRegistry(t *testing.T) {
	for name, wantN := range map[string]int{"g2": 9, "G2": 9, "g3": 15, "G3": 15} {
		g, canonical, err := Fixture(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.N() != wantN {
			t.Fatalf("%s: %d tasks, want %d", name, g.N(), wantN)
		}
		if canonical != "g2" && canonical != "g3" {
			t.Fatalf("%s: canonical name %q", name, canonical)
		}
	}
	if _, _, err := Fixture("g9"); err == nil {
		t.Fatal("unknown fixture should error")
	}
}

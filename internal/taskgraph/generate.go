package taskgraph

import (
	"fmt"
	"math/rand"
)

// PointsFunc produces the design points for the task at the given dense
// index. Generators call it once per task, letting callers plug in the
// voltage-scaling recipes from internal/dvs or any synthetic model.
type PointsFunc func(taskIndex int) []DesignPoint

// Chain returns a linear task chain 1→2→…→n.
func Chain(n int, points PointsFunc) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("taskgraph: chain needs n >= 1, got %d", n)
	}
	var b Builder
	for i := 0; i < n; i++ {
		b.AddTask(i+1, taskName(i+1), points(i)...)
	}
	for i := 1; i < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

// ForkJoin returns a fork-join graph in the style the paper uses for G3:
// a source task fans out to `width` parallel branches each `depth` tasks
// long, which join into a sink chain of `tailLen` tasks. Total task count
// is 1 + width*depth + tailLen.
func ForkJoin(width, depth, tailLen int, points PointsFunc) (*Graph, error) {
	if width < 1 || depth < 1 || tailLen < 1 {
		return nil, fmt.Errorf("taskgraph: fork-join needs width, depth, tailLen >= 1 (got %d, %d, %d)", width, depth, tailLen)
	}
	var b Builder
	n := 1 + width*depth + tailLen
	for i := 0; i < n; i++ {
		b.AddTask(i+1, taskName(i+1), points(i)...)
	}
	// Source is task 1. Branch w (0-based) occupies IDs
	// 2+w*depth .. 1+(w+1)*depth. The join task is 2+width*depth.
	join := 2 + width*depth
	for w := 0; w < width; w++ {
		first := 2 + w*depth
		b.AddEdge(1, first)
		for k := 1; k < depth; k++ {
			b.AddEdge(first+k-1, first+k)
		}
		b.AddEdge(first+depth-1, join)
	}
	for k := 1; k < tailLen; k++ {
		b.AddEdge(join+k-1, join+k)
	}
	return b.Build()
}

// Layered returns a random layered DAG: `layers` layers of `width` tasks
// each; every task in layer l>0 gets at least one parent from layer l-1,
// plus extra layer-(l-1)→l edges added with probability density. The rng
// must be non-nil; results are deterministic for a given seed.
func Layered(rng *rand.Rand, layers, width int, density float64, points PointsFunc) (*Graph, error) {
	if layers < 1 || width < 1 {
		return nil, fmt.Errorf("taskgraph: layered needs layers, width >= 1 (got %d, %d)", layers, width)
	}
	if density < 0 || density > 1 {
		return nil, fmt.Errorf("taskgraph: density must be in [0,1], got %g", density)
	}
	var b Builder
	id := func(layer, k int) int { return layer*width + k + 1 }
	n := layers * width
	for i := 0; i < n; i++ {
		b.AddTask(i+1, taskName(i+1), points(i)...)
	}
	for l := 1; l < layers; l++ {
		for k := 0; k < width; k++ {
			child := id(l, k)
			// Guaranteed parent keeps the graph connected layer to layer.
			b.AddEdge(id(l-1, rng.Intn(width)), child)
			for p := 0; p < width; p++ {
				if rng.Float64() < density {
					b.AddEdge(id(l-1, p), child)
				}
			}
		}
	}
	return b.Build()
}

// SeriesParallel returns a random series-parallel DAG built by recursive
// series/parallel composition until roughly n tasks exist. Series-parallel
// graphs model the structured parallel programs the multiprocessor
// scheduling literature uses (the paper cites fork-join as such a class).
func SeriesParallel(rng *rand.Rand, n int, points PointsFunc) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("taskgraph: series-parallel needs n >= 1, got %d", n)
	}
	var b Builder
	next := 0
	newTask := func() int {
		next++
		b.AddTask(next, taskName(next), points(next-1)...)
		return next
	}
	// build returns (entry, exit) of a series-parallel block of ~size tasks.
	var build func(size int) (int, int)
	build = func(size int) (int, int) {
		if size <= 1 {
			t := newTask()
			return t, t
		}
		if rng.Intn(2) == 0 { // series composition
			left := size / 2
			e1, x1 := build(left)
			e2, x2 := build(size - left)
			b.AddEdge(x1, e2)
			return e1, x2
		}
		// parallel composition needs distinct entry and exit tasks.
		entry := newTask()
		branches := 2 + rng.Intn(2)
		inner := size - 2
		if inner < branches {
			branches = inner
		}
		if branches < 1 {
			branches = 1
		}
		exits := make([]int, 0, branches)
		for i := 0; i < branches; i++ {
			share := inner / branches
			if i < inner%branches {
				share++
			}
			if share < 1 {
				share = 1
			}
			e, x := build(share)
			b.AddEdge(entry, e)
			exits = append(exits, x)
		}
		exit := newTask()
		for _, x := range exits {
			b.AddEdge(x, exit)
		}
		return entry, exit
	}
	build(n)
	return b.Build()
}

// Random returns a random DAG over n tasks where each ordered pair (i, j)
// with i < j becomes an edge with probability edgeProb. Task IDs 1..n are a
// valid topological order by construction.
func Random(rng *rand.Rand, n int, edgeProb float64, points PointsFunc) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("taskgraph: random needs n >= 1, got %d", n)
	}
	if edgeProb < 0 || edgeProb > 1 {
		return nil, fmt.Errorf("taskgraph: edgeProb must be in [0,1], got %g", edgeProb)
	}
	var b Builder
	for i := 0; i < n; i++ {
		b.AddTask(i+1, taskName(i+1), points(i)...)
	}
	for i := 1; i <= n; i++ {
		for j := i + 1; j <= n; j++ {
			if rng.Float64() < edgeProb {
				b.AddEdge(i, j)
			}
		}
	}
	return b.Build()
}

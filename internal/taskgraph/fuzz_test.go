package taskgraph

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzReadJSON hammers the graph decoder with arbitrary bytes. A graph
// that decodes cleanly must actually satisfy the Builder's invariants —
// non-empty, uniform-or-not point counts reported consistently, finite
// positive times — and must survive a write/read round trip with its
// content intact, because testdata fixtures and wire requests both
// travel through exactly this path.
func FuzzReadJSON(f *testing.F) {
	for _, name := range []string{"g2.json", "g3.json"} {
		if data, err := os.ReadFile(filepath.Join("..", "..", "testdata", name)); err == nil {
			f.Add(data)
		}
	}
	f.Add([]byte(`{"tasks":[{"id":1,"points":[{"current":10,"time":1}]}]}`))
	f.Add([]byte(`{"name":"x","tasks":[{"id":1,"points":[{"current":10,"time":1}]},{"id":2,"points":[{"current":5,"time":2}],"parents":[1]}]}`))
	f.Add([]byte(`{"tasks":[]}`))
	f.Add([]byte(`{"tasks":[{"id":1,"points":[{"current":-1,"time":0}]}]}`))
	f.Add([]byte(`{"tasks":[{"id":1,"points":[{"current":1,"time":1}],"parents":[1]}]}`)) // self-cycle
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Cap the spec size (just above the g3 fixture's): building a
		// graph computes an O(n³)-worst-case reachability closure, so
		// unbounded dense specs turn the fuzzer into a benchmark
		// instead of a bug hunt.
		if len(data) > 16<<10 {
			return
		}
		g, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		if g == nil || g.N() == 0 {
			t.Fatal("clean decode produced an empty graph")
		}
		for i := 0; i < g.N(); i++ {
			task := g.TaskAt(i)
			if len(task.Points) == 0 {
				t.Fatalf("task %d has no design points", task.ID)
			}
			for _, p := range task.Points {
				if !(p.Time > 0) || !(p.Current >= 0) {
					t.Fatalf("task %d carries an invalid point %+v past validation", task.ID, p)
				}
			}
		}

		// Round trip: what the graph writes, the reader accepts, and the
		// two graphs have identical canonical specs.
		var buf bytes.Buffer
		if err := g.WriteJSON(&buf, "roundtrip"); err != nil {
			t.Fatalf("WriteJSON on a valid graph: %v", err)
		}
		g2, err := ReadJSON(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		var buf2 bytes.Buffer
		if err := g2.WriteJSON(&buf2, "roundtrip"); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("round trip not stable:\n%s\n---\n%s", buf.Bytes(), buf2.Bytes())
		}
	})
}

package taskgraph

import (
	"math"
	"strings"
	"testing"
)

func pt(i, t float64) DesignPoint { return DesignPoint{Current: i, Time: t} }

// diamond returns 1→{2,3}→4 with two design points per task.
func diamond(t *testing.T) *Graph {
	t.Helper()
	var b Builder
	for id := 1; id <= 4; id++ {
		b.AddTask(id, "", pt(100, 1), pt(10, 2))
	}
	b.AddEdge(1, 2).AddEdge(1, 3).AddEdge(2, 4).AddEdge(3, 4)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("diamond build: %v", err)
	}
	return g
}

func TestBuildRejectsEmptyGraph(t *testing.T) {
	var b Builder
	if _, err := b.Build(); err == nil {
		t.Fatal("want error for empty graph")
	}
}

func TestBuildRejectsDuplicateIDs(t *testing.T) {
	var b Builder
	b.AddTask(1, "", pt(1, 1)).AddTask(1, "", pt(1, 1))
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("want duplicate-ID error, got %v", err)
	}
}

func TestBuildRejectsNoPoints(t *testing.T) {
	var b Builder
	b.AddTask(1, "")
	if _, err := b.Build(); err == nil {
		t.Fatal("want error for task without design points")
	}
}

func TestBuildRejectsNonPositiveTime(t *testing.T) {
	for _, bad := range []float64{0, -1} {
		var b Builder
		b.AddTask(1, "", pt(5, bad))
		if _, err := b.Build(); err == nil {
			t.Errorf("want error for time %g", bad)
		}
	}
}

func TestBuildRejectsNegativeCurrent(t *testing.T) {
	var b Builder
	b.AddTask(1, "", pt(-5, 1))
	if _, err := b.Build(); err == nil {
		t.Fatal("want error for negative current")
	}
}

func TestBuildRejectsIncreasingCurrentWithTime(t *testing.T) {
	// Slower point drawing MORE current violates the monotone layout.
	var b Builder
	b.AddTask(1, "", pt(10, 1), pt(20, 2))
	if _, err := b.Build(); err == nil {
		t.Fatal("want error for current increasing with time")
	}
}

func TestBuildSortsPointsByTime(t *testing.T) {
	var b Builder
	b.AddTask(1, "", pt(10, 3), pt(100, 1), pt(50, 2))
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	pts := g.Task(1).Points
	for j := 1; j < len(pts); j++ {
		if pts[j].Time < pts[j-1].Time {
			t.Fatalf("points not time-sorted: %v", pts)
		}
	}
	if pts[0].Current != 100 || pts[2].Current != 10 {
		t.Fatalf("expected fastest-first layout, got %v", pts)
	}
}

func TestBuildRejectsUnknownEdgeEndpoints(t *testing.T) {
	var b Builder
	b.AddTask(1, "", pt(1, 1)).AddEdge(1, 99)
	if _, err := b.Build(); err == nil {
		t.Fatal("want error for unknown child")
	}
	var b2 Builder
	b2.AddTask(1, "", pt(1, 1)).AddEdge(99, 1)
	if _, err := b2.Build(); err == nil {
		t.Fatal("want error for unknown parent")
	}
}

func TestBuildRejectsSelfEdge(t *testing.T) {
	var b Builder
	b.AddTask(1, "", pt(1, 1)).AddEdge(1, 1)
	if _, err := b.Build(); err == nil {
		t.Fatal("want error for self edge")
	}
}

func TestBuildRejectsCycle(t *testing.T) {
	var b Builder
	b.AddTask(1, "", pt(1, 1)).AddTask(2, "", pt(1, 1)).AddTask(3, "", pt(1, 1))
	b.AddEdge(1, 2).AddEdge(2, 3).AddEdge(3, 1)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("want cycle error, got %v", err)
	}
}

func TestBuildToleratesDuplicateEdges(t *testing.T) {
	var b Builder
	b.AddTask(1, "", pt(1, 1)).AddTask(2, "", pt(1, 1))
	b.AddEdge(1, 2).AddEdge(1, 2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.EdgeCount() != 1 {
		t.Fatalf("want 1 edge after dedup, got %d", g.EdgeCount())
	}
}

func TestAccessors(t *testing.T) {
	g := diamond(t)
	if g.N() != 4 {
		t.Fatalf("N = %d, want 4", g.N())
	}
	if m, ok := g.UniformPointCount(); !ok || m != 2 {
		t.Fatalf("UniformPointCount = %d,%v want 2,true", m, ok)
	}
	if got := g.Parents(4); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("Parents(4) = %v", got)
	}
	if got := g.Children(1); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("Children(1) = %v", got)
	}
	if got := g.Roots(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Roots = %v", got)
	}
	if got := g.Leaves(); len(got) != 1 || got[0] != 4 {
		t.Fatalf("Leaves = %v", got)
	}
	if g.Task(99) != nil {
		t.Fatal("Task(99) should be nil")
	}
	if g.HasTask(99) || !g.HasTask(2) {
		t.Fatal("HasTask wrong")
	}
	if id := g.IDAt(0); id != 1 {
		t.Fatalf("IDAt(0) = %d", id)
	}
	if i, ok := g.Index(3); !ok || g.IDAt(i) != 3 {
		t.Fatalf("Index(3) = %d,%v", i, ok)
	}
}

func TestNonUniformPointCount(t *testing.T) {
	var b Builder
	b.AddTask(1, "", pt(1, 1)).AddTask(2, "", pt(2, 1), pt(1, 2))
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.UniformPointCount(); ok {
		t.Fatal("UniformPointCount should report false")
	}
}

func TestTopoOrder(t *testing.T) {
	g := diamond(t)
	order := g.TopoOrder()
	if !g.IsTopoOrder(order) {
		t.Fatalf("TopoOrder %v is not a topological order", order)
	}
	if order[0] != 1 || order[3] != 4 {
		t.Fatalf("diamond topo order = %v", order)
	}
}

func TestIsTopoOrderRejects(t *testing.T) {
	g := diamond(t)
	cases := [][]int{
		{4, 2, 3, 1},  // reversed
		{1, 2, 3},     // missing task
		{1, 2, 3, 3},  // duplicate
		{1, 2, 3, 99}, // unknown
		{2, 1, 3, 4},  // violates 1→2
		{1, 2, 4, 3},  // violates 3→4
	}
	for _, seq := range cases {
		if g.IsTopoOrder(seq) {
			t.Errorf("IsTopoOrder(%v) = true, want false", seq)
		}
	}
	if !g.IsTopoOrder([]int{1, 3, 2, 4}) {
		t.Error("1,3,2,4 should be a valid order")
	}
}

func TestReachableAndAncestors(t *testing.T) {
	g := diamond(t)
	if got := g.Reachable(1); len(got) != 4 {
		t.Fatalf("Reachable(1) = %v", got)
	}
	if got := g.Reachable(2); len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Fatalf("Reachable(2) = %v", got)
	}
	if got := g.Reachable(4); len(got) != 1 || got[0] != 4 {
		t.Fatalf("Reachable(4) = %v", got)
	}
	if got := g.Ancestors(4); len(got) != 3 {
		t.Fatalf("Ancestors(4) = %v", got)
	}
	if got := g.Ancestors(1); len(got) != 0 {
		t.Fatalf("Ancestors(1) = %v", got)
	}
}

func TestEdges(t *testing.T) {
	g := diamond(t)
	edges := g.Edges()
	want := [][2]int{{1, 2}, {1, 3}, {2, 4}, {3, 4}}
	if len(edges) != len(want) {
		t.Fatalf("Edges = %v", edges)
	}
	for k := range want {
		if edges[k] != want[k] {
			t.Fatalf("Edges = %v, want %v", edges, want)
		}
	}
}

func TestColumnTimeAndRanges(t *testing.T) {
	g := diamond(t)
	ct0, err := g.ColumnTime(0)
	if err != nil || ct0 != 4 {
		t.Fatalf("ColumnTime(0) = %g, %v", ct0, err)
	}
	ct1, err := g.ColumnTime(1)
	if err != nil || ct1 != 8 {
		t.Fatalf("ColumnTime(1) = %g, %v", ct1, err)
	}
	if _, err := g.ColumnTime(2); err == nil {
		t.Fatal("ColumnTime(2) should error")
	}
	if g.MinTotalTime() != 4 || g.MaxTotalTime() != 8 {
		t.Fatalf("Min/MaxTotalTime = %g/%g", g.MinTotalTime(), g.MaxTotalTime())
	}
	lo, hi := g.CurrentRange()
	if lo != 10 || hi != 100 {
		t.Fatalf("CurrentRange = %g..%g", lo, hi)
	}
	eMin, eMax := g.EnergyRange()
	if eMin != 4*20 || eMax != 4*100 {
		t.Fatalf("EnergyRange = %g..%g", eMin, eMax)
	}
}

func TestTaskAverages(t *testing.T) {
	var b Builder
	b.AddTask(1, "", pt(100, 1), pt(10, 4))
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	task := g.Task(1)
	if got := task.AvgCurrent(); got != 55 {
		t.Fatalf("AvgCurrent = %g", got)
	}
	if got := task.AvgEnergy(); got != (100+40)/2 {
		t.Fatalf("AvgEnergy = %g", got)
	}
	if task.FastestTime() != 1 || task.SlowestTime() != 4 {
		t.Fatalf("Fastest/Slowest = %g/%g", task.FastestTime(), task.SlowestTime())
	}
}

func TestDesignPointEnergy(t *testing.T) {
	if e := pt(10, 2.5).Energy(); math.Abs(e-25) > 1e-12 {
		t.Fatalf("Energy = %g, want 25", e)
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild should panic on invalid input")
		}
	}()
	var b Builder
	b.MustBuild()
}

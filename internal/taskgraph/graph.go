// Package taskgraph models applications as directed acyclic task graphs in
// which every task offers several alternative implementations called design
// points, following the application model of Khan & Vemuri (DATE 2005).
//
// A design point pairs an execution time with the average current the whole
// portable platform draws while the task runs using that implementation
// (different voltage/frequency settings on a DVS processor, or different
// bitstreams on an FPGA). Edges express data/control dependencies; tasks
// execute sequentially on a single processing element, so a schedule is a
// topological order of the graph plus one design point per task.
//
//battlint:deterministic
package taskgraph

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// DesignPoint is one implementation option for a task: the average current
// the platform draws while executing it and the time it takes. Units are by
// convention milliamperes and minutes (the paper's units); any consistent
// pair works as long as the battery model's parameters use the same base.
type DesignPoint struct {
	// Current is the average total platform current draw in mA while the
	// task executes with this implementation.
	Current float64
	// Time is the execution time in minutes.
	Time float64
	// Voltage is the supply voltage in volts for DVS-generated points.
	// It is informational; the scheduling cost uses charge (I·t). Zero
	// means unknown/not applicable (e.g. FPGA bitstreams).
	Voltage float64
	// Name optionally labels the point ("DP1", "1.2V@400MHz", "bs-small").
	Name string
}

// Energy returns the charge-energy of the design point: Current·Time
// (mA·min). The paper's data tables carry no voltage column, so all energy
// accounting in the algorithms is charge-based.
func (dp DesignPoint) Energy() float64 { return dp.Current * dp.Time }

// Task is a node of the task graph.
type Task struct {
	// ID is the caller-chosen unique identifier (paper uses 1..n).
	ID int
	// Name optionally labels the task ("T1", "fir-filter").
	Name string
	// Points holds the design points sorted fastest-first: execution
	// times ascending, currents non-increasing (the paper's D and I
	// matrix layout). Builder.Build sorts and validates this.
	Points []DesignPoint
}

// FastestTime returns the execution time of the fastest design point.
func (t *Task) FastestTime() float64 { return t.Points[0].Time }

// SlowestTime returns the execution time of the slowest design point.
func (t *Task) SlowestTime() float64 { return t.Points[len(t.Points)-1].Time }

// AvgCurrent returns the mean current over the task's design points. The
// paper's initial list schedule ranks ready tasks by this weight.
func (t *Task) AvgCurrent() float64 {
	var s float64
	for _, p := range t.Points {
		s += p.Current
	}
	return s / float64(len(t.Points))
}

// AvgEnergy returns the mean charge-energy (I·t) over the task's design
// points; the paper's Energy Vector E sorts tasks by this value ascending.
func (t *Task) AvgEnergy() float64 {
	var s float64
	for _, p := range t.Points {
		s += p.Energy()
	}
	return s / float64(len(t.Points))
}

// Graph is an immutable directed acyclic task graph. Build one with a
// Builder. All slice-returning accessors return copies unless documented
// otherwise; the graph itself is safe for concurrent readers.
type Graph struct {
	tasks []Task      // in insertion order
	byID  map[int]int // task ID -> index in tasks
	preds [][]int     // predecessor indices per task index
	succs [][]int     // successor indices per task index
	topo  []int       // one valid topological order (indices)
	reach [][]int     // reachable set (descendants incl. self), indices, sorted
}

// Builder accumulates tasks and edges and produces a validated Graph.
// The zero value is ready to use.
type Builder struct {
	tasks []Task
	edges [][2]int // parent ID, child ID
	err   error
}

// AddTask registers a task with the given unique ID, display name and
// design points. Points may be given in any order; Build sorts them by
// ascending execution time. At least one point is required.
func (b *Builder) AddTask(id int, name string, points ...DesignPoint) *Builder {
	b.tasks = append(b.tasks, Task{ID: id, Name: name, Points: append([]DesignPoint(nil), points...)})
	return b
}

// AddEdge records a precedence constraint: parent must complete before
// child starts. Both IDs must be added via AddTask before Build.
func (b *Builder) AddEdge(parentID, childID int) *Builder {
	b.edges = append(b.edges, [2]int{parentID, childID})
	return b
}

// Build validates the accumulated tasks and edges and returns the graph.
// Validation enforces: at least one task; unique task IDs; every task has
// at least one design point with finite positive time and finite
// non-negative current (NaN and ±Inf are rejected);
// points sortable into ascending-time order with non-increasing currents;
// edge endpoints exist; no self-edges; no cycles.
func (b *Builder) Build() (*Graph, error) {
	if len(b.tasks) == 0 {
		return nil, errors.New("taskgraph: no tasks")
	}
	g := &Graph{
		tasks: make([]Task, len(b.tasks)),
		byID:  make(map[int]int, len(b.tasks)),
	}
	copy(g.tasks, b.tasks)
	for i := range g.tasks {
		t := &g.tasks[i]
		if _, dup := g.byID[t.ID]; dup {
			return nil, fmt.Errorf("taskgraph: duplicate task ID %d", t.ID)
		}
		g.byID[t.ID] = i
		if len(t.Points) == 0 {
			return nil, fmt.Errorf("taskgraph: task %d has no design points", t.ID)
		}
		pts := append([]DesignPoint(nil), t.Points...)
		sort.SliceStable(pts, func(a, c int) bool { return pts[a].Time < pts[c].Time })
		for j, p := range pts {
			// The comparisons below are written so NaN fails them too
			// (NaN <= 0 and NaN < 0 are both false, so `p.Time <= 0`
			// alone would wave NaN through).
			if !(p.Time > 0) || math.IsInf(p.Time, 0) {
				return nil, fmt.Errorf("taskgraph: task %d point %d: time must be finite and positive, got %g", t.ID, j, p.Time)
			}
			if !(p.Current >= 0) || math.IsInf(p.Current, 0) {
				return nil, fmt.Errorf("taskgraph: task %d point %d: current must be finite and non-negative, got %g", t.ID, j, p.Current)
			}
			if j > 0 && pts[j].Current > pts[j-1].Current {
				return nil, fmt.Errorf("taskgraph: task %d: currents not non-increasing with time (point %d: %g mA after %g mA)",
					t.ID, j, pts[j].Current, pts[j-1].Current)
			}
		}
		t.Points = pts
	}
	n := len(g.tasks)
	g.preds = make([][]int, n)
	g.succs = make([][]int, n)
	seen := make(map[[2]int]bool, len(b.edges))
	for _, e := range b.edges {
		pi, ok := g.byID[e[0]]
		if !ok {
			return nil, fmt.Errorf("taskgraph: edge references unknown parent task %d", e[0])
		}
		ci, ok := g.byID[e[1]]
		if !ok {
			return nil, fmt.Errorf("taskgraph: edge references unknown child task %d", e[1])
		}
		if pi == ci {
			return nil, fmt.Errorf("taskgraph: self-edge on task %d", e[0])
		}
		if seen[[2]int{pi, ci}] {
			continue // tolerate duplicate edges
		}
		seen[[2]int{pi, ci}] = true
		g.succs[pi] = append(g.succs[pi], ci)
		g.preds[ci] = append(g.preds[ci], pi)
	}
	topo, err := topoSort(n, g.preds, g.succs)
	if err != nil {
		return nil, err
	}
	g.topo = topo
	g.reach = reachability(n, g.succs, topo)
	return g, nil
}

// MustBuild is Build that panics on error; intended for fixtures and tests.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// topoSort returns a topological order of indices (Kahn's algorithm with a
// deterministic smallest-index-first tie break) or an error naming a task
// on a cycle.
func topoSort(n int, preds, succs [][]int) ([]int, error) {
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		indeg[i] = len(preds[i])
	}
	// Min-heap by index for determinism; n is small in this domain, so a
	// sorted slice scan is fine and allocation-free enough.
	ready := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	order := make([]int, 0, n)
	for len(ready) > 0 {
		// Pick the smallest index for stable output.
		mi := 0
		for k := 1; k < len(ready); k++ {
			if ready[k] < ready[mi] {
				mi = k
			}
		}
		u := ready[mi]
		ready = append(ready[:mi], ready[mi+1:]...)
		order = append(order, u)
		for _, v := range succs[u] {
			indeg[v]--
			if indeg[v] == 0 {
				ready = append(ready, v)
			}
		}
	}
	if len(order) != n {
		for i := 0; i < n; i++ {
			if indeg[i] > 0 {
				return nil, fmt.Errorf("taskgraph: cycle detected involving task index %d", i)
			}
		}
		return nil, errors.New("taskgraph: cycle detected")
	}
	return order, nil
}

// reachability computes, for every node, the sorted set of node indices
// reachable from it (including itself), by sweeping a topological order in
// reverse and merging successor sets.
func reachability(n int, succs [][]int, topo []int) [][]int {
	sets := make([]map[int]bool, n)
	for k := n - 1; k >= 0; k-- {
		u := topo[k]
		set := map[int]bool{u: true}
		for _, v := range succs[u] {
			for w := range sets[v] {
				set[w] = true
			}
		}
		sets[u] = set
	}
	out := make([][]int, n)
	for i := 0; i < n; i++ {
		s := make([]int, 0, len(sets[i]))
		for w := range sets[i] {
			s = append(s, w)
		}
		sort.Ints(s)
		out[i] = s
	}
	return out
}

// N returns the number of tasks.
func (g *Graph) N() int { return len(g.tasks) }

// UniformPointCount reports the number of design points per task if every
// task has the same count (the paper's model), and whether that holds.
func (g *Graph) UniformPointCount() (int, bool) {
	m := len(g.tasks[0].Points)
	for i := 1; i < len(g.tasks); i++ {
		if len(g.tasks[i].Points) != m {
			return 0, false
		}
	}
	return m, true
}

// TaskIDs returns all task IDs in insertion order.
func (g *Graph) TaskIDs() []int {
	ids := make([]int, len(g.tasks))
	for i := range g.tasks {
		ids[i] = g.tasks[i].ID
	}
	return ids
}

// Task returns the task with the given ID, or nil if absent. The returned
// pointer references the graph's internal storage; treat it as read-only.
func (g *Graph) Task(id int) *Task {
	i, ok := g.byID[id]
	if !ok {
		return nil
	}
	return &g.tasks[i]
}

// HasTask reports whether a task with the given ID exists.
func (g *Graph) HasTask(id int) bool { _, ok := g.byID[id]; return ok }

// Index returns the dense index (0..N-1, insertion order) of the task with
// the given ID, and whether it exists. Algorithms that keep per-task arrays
// index them by this value.
func (g *Graph) Index(id int) (int, bool) { i, ok := g.byID[id]; return i, ok }

// TaskAt returns the task at dense index i (insertion order).
func (g *Graph) TaskAt(i int) *Task { return &g.tasks[i] }

// IDAt returns the ID of the task at dense index i.
func (g *Graph) IDAt(i int) int { return g.tasks[i].ID }

// Parents returns the IDs of the immediate predecessors of the given task.
func (g *Graph) Parents(id int) []int {
	i, ok := g.byID[id]
	if !ok {
		return nil
	}
	return g.idsOf(g.preds[i])
}

// Children returns the IDs of the immediate successors of the given task.
func (g *Graph) Children(id int) []int {
	i, ok := g.byID[id]
	if !ok {
		return nil
	}
	return g.idsOf(g.succs[i])
}

// ParentIndices returns the dense indices of predecessors of the task at
// dense index i. The returned slice aliases internal storage; do not modify.
func (g *Graph) ParentIndices(i int) []int { return g.preds[i] }

// ChildIndices returns the dense indices of successors of the task at dense
// index i. The returned slice aliases internal storage; do not modify.
func (g *Graph) ChildIndices(i int) []int { return g.succs[i] }

func (g *Graph) idsOf(idx []int) []int {
	out := make([]int, len(idx))
	for k, i := range idx {
		out[k] = g.tasks[i].ID
	}
	sort.Ints(out)
	return out
}

// Roots returns the IDs of tasks with no predecessors.
func (g *Graph) Roots() []int {
	var out []int
	for i := range g.tasks {
		if len(g.preds[i]) == 0 {
			out = append(out, g.tasks[i].ID)
		}
	}
	sort.Ints(out)
	return out
}

// Leaves returns the IDs of tasks with no successors.
func (g *Graph) Leaves() []int {
	var out []int
	for i := range g.tasks {
		if len(g.succs[i]) == 0 {
			out = append(out, g.tasks[i].ID)
		}
	}
	sort.Ints(out)
	return out
}

// EdgeCount returns the number of (deduplicated) edges.
func (g *Graph) EdgeCount() int {
	var e int
	for i := range g.succs {
		e += len(g.succs[i])
	}
	return e
}

// Edges returns all edges as (parentID, childID) pairs in a deterministic
// order.
func (g *Graph) Edges() [][2]int {
	var out [][2]int
	for i := range g.tasks {
		for _, j := range g.succs[i] {
			out = append(out, [2]int{g.tasks[i].ID, g.tasks[j].ID})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a][0] != out[b][0] {
			return out[a][0] < out[b][0]
		}
		return out[a][1] < out[b][1]
	})
	return out
}

// TopoOrder returns one valid topological order of task IDs (deterministic:
// smallest-index-first Kahn order).
func (g *Graph) TopoOrder() []int {
	return g.idsOfOrdered(g.topo)
}

func (g *Graph) idsOfOrdered(idx []int) []int {
	out := make([]int, len(idx))
	for k, i := range idx {
		out[k] = g.tasks[i].ID
	}
	return out
}

// IsTopoOrder reports whether seq is a permutation of all task IDs that
// respects every precedence edge.
func (g *Graph) IsTopoOrder(seq []int) bool {
	if len(seq) != len(g.tasks) {
		return false
	}
	pos := make([]int, len(g.tasks))
	for i := range pos {
		pos[i] = -1
	}
	for p, id := range seq {
		i, ok := g.byID[id]
		if !ok || pos[i] != -1 {
			return false
		}
		pos[i] = p
	}
	for i := range g.tasks {
		for _, j := range g.succs[i] {
			if pos[i] >= pos[j] {
				return false
			}
		}
	}
	return true
}

// Reachable returns the IDs of all tasks reachable from id, including id
// itself — the paper's "subgraph G_v rooted at node v".
func (g *Graph) Reachable(id int) []int {
	i, ok := g.byID[id]
	if !ok {
		return nil
	}
	return g.idsOf(g.reach[i])
}

// ReachableIndices returns the dense indices reachable from dense index i
// (including i), sorted. The returned slice aliases internal storage; do
// not modify.
func (g *Graph) ReachableIndices(i int) []int { return g.reach[i] }

// Ancestors returns the IDs of all tasks from which id is reachable,
// excluding id itself.
func (g *Graph) Ancestors(id int) []int {
	i, ok := g.byID[id]
	if !ok {
		return nil
	}
	var out []int
	for j := range g.tasks {
		if j == i {
			continue
		}
		for _, r := range g.reach[j] {
			if r == i {
				out = append(out, g.tasks[j].ID)
				break
			}
		}
	}
	sort.Ints(out)
	return out
}

// ColumnTime returns CT(j): the total execution time if every task uses its
// design point at column j (0-based). This is the paper's CT used by the
// window search. It returns an error if some task has fewer points.
func (g *Graph) ColumnTime(j int) (float64, error) {
	var s float64
	for i := range g.tasks {
		if j < 0 || j >= len(g.tasks[i].Points) {
			return 0, fmt.Errorf("taskgraph: task %d has no design point %d", g.tasks[i].ID, j)
		}
		s += g.tasks[i].Points[j].Time
	}
	return s, nil
}

// MinTotalTime returns the completion time with every task at its fastest
// point — the minimum sequential makespan, and so the feasibility bound for
// any deadline.
func (g *Graph) MinTotalTime() float64 {
	var s float64
	for i := range g.tasks {
		s += g.tasks[i].Points[0].Time
	}
	return s
}

// MaxTotalTime returns the completion time with every task at its slowest
// point.
func (g *Graph) MaxTotalTime() float64 {
	var s float64
	for i := range g.tasks {
		s += g.tasks[i].Points[len(g.tasks[i].Points)-1].Time
	}
	return s
}

// CurrentRange returns the minimum and maximum current over all design
// points of all tasks (the paper's Imin and Imax used to normalize CR).
func (g *Graph) CurrentRange() (min, max float64) {
	first := true
	for i := range g.tasks {
		for _, p := range g.tasks[i].Points {
			if first {
				min, max = p.Current, p.Current
				first = false
				continue
			}
			if p.Current < min {
				min = p.Current
			}
			if p.Current > max {
				max = p.Current
			}
		}
	}
	return min, max
}

// EnergyRange returns (Emin, Emax): total charge-energy with every task at
// its lowest-power point and at its highest-power point respectively — the
// paper's ENR normalization constants.
func (g *Graph) EnergyRange() (min, max float64) {
	for i := range g.tasks {
		pts := g.tasks[i].Points
		min += pts[len(pts)-1].Energy()
		max += pts[0].Energy()
	}
	return min, max
}

package taskgraph

import (
	"fmt"
	"strings"
)

// Analysis summarizes the structural and workload properties of a graph —
// the numbers that determine how hard an instance is for the scheduler
// (parallelism shrinks the set of legal orders the sequencer can exploit;
// the time spread bounds what design-point selection can trade).
type Analysis struct {
	Tasks  int
	Edges  int
	Points int // design points per task (0 if non-uniform)

	// Depth is the longest path length in tasks (chain length).
	Depth int
	// MaxWidth is the largest antichain of the layered decomposition —
	// the peak nominal parallelism.
	MaxWidth int
	// Orders estimates the number of topological orders, capped at
	// OrdersCap (exact below the cap).
	Orders    int64
	OrdersCap int64

	// MinTime/MaxTime are the all-fastest and all-slowest completion
	// times; deadlines outside [MinTime, MaxTime] make the instance
	// trivial (infeasible or all-lowest-power).
	MinTime float64
	MaxTime float64
	// TimeSpread is MaxTime/MinTime — the dynamic range design-point
	// selection can exploit.
	TimeSpread float64
	// CurrentSpread is Imax/Imin over all design points (0 if Imin=0).
	CurrentSpread float64
}

// Analyze computes the analysis. ordersCap bounds the topological-order
// count (0 means 100000).
func (g *Graph) Analyze(ordersCap int64) Analysis {
	if ordersCap <= 0 {
		ordersCap = 100000
	}
	a := Analysis{
		Tasks:     g.N(),
		Edges:     g.EdgeCount(),
		OrdersCap: ordersCap,
		MinTime:   g.MinTotalTime(),
		MaxTime:   g.MaxTotalTime(),
	}
	if m, ok := g.UniformPointCount(); ok {
		a.Points = m
	}
	if a.MinTime > 0 {
		a.TimeSpread = a.MaxTime / a.MinTime
	}
	iMin, iMax := g.CurrentRange()
	if iMin > 0 {
		a.CurrentSpread = iMax / iMin
	}

	// Longest path (depth) and layer widths by topological sweep.
	n := g.N()
	level := make([]int, n)
	for _, u := range g.topo {
		for _, p := range g.preds[u] {
			if level[p]+1 > level[u] {
				level[u] = level[p] + 1
			}
		}
	}
	for i := 0; i < n; i++ {
		if level[i]+1 > a.Depth {
			a.Depth = level[i] + 1
		}
	}
	// Levels are dense (a node at level k has a predecessor at level
	// k-1), so widths index directly by level.
	widths := make([]int, a.Depth)
	for i := 0; i < n; i++ {
		widths[level[i]]++
	}
	for _, w := range widths {
		if w > a.MaxWidth {
			a.MaxWidth = w
		}
	}
	a.Orders = countOrders(g, ordersCap)
	return a
}

// countOrders counts topological orders up to the cap (mirrors
// baseline.CountTopoOrders; duplicated here to keep taskgraph
// dependency-free).
func countOrders(g *Graph, limit int64) int64 {
	n := g.N()
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		indeg[i] = len(g.preds[i])
	}
	var count int64
	var walk func(placed int)
	walk = func(placed int) {
		if count >= limit {
			return
		}
		if placed == n {
			count++
			return
		}
		for i := 0; i < n; i++ {
			if indeg[i] != 0 {
				continue
			}
			indeg[i] = -1
			for _, v := range g.succs[i] {
				indeg[v]--
			}
			walk(placed + 1)
			for _, v := range g.succs[i] {
				indeg[v]++
			}
			indeg[i] = 0
			if count >= limit {
				return
			}
		}
	}
	walk(0)
	return count
}

// CriticalPathTime returns the longest path length through the graph when
// every task uses design-point column j — the lower bound a parallel
// machine could reach; on the paper's single-PE platform the makespan is
// the column sum instead, so the ratio column-sum/critical-path measures
// how much parallelism the platform leaves unexploited.
func (g *Graph) CriticalPathTime(j int) (float64, error) {
	n := g.N()
	finish := make([]float64, n)
	var best float64
	for _, u := range g.topo {
		if j < 0 || j >= len(g.tasks[u].Points) {
			return 0, fmt.Errorf("taskgraph: task %d has no design point %d", g.tasks[u].ID, j)
		}
		start := 0.0
		for _, p := range g.preds[u] {
			if finish[p] > start {
				start = finish[p]
			}
		}
		finish[u] = start + g.tasks[u].Points[j].Time
		if finish[u] > best {
			best = finish[u]
		}
	}
	return best, nil
}

// String renders the analysis compactly.
func (a Analysis) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d tasks, %d edges", a.Tasks, a.Edges)
	if a.Points > 0 {
		fmt.Fprintf(&b, ", %d points/task", a.Points)
	}
	fmt.Fprintf(&b, "; depth %d, max width %d", a.Depth, a.MaxWidth)
	if a.Orders >= a.OrdersCap {
		fmt.Fprintf(&b, ", >%d orders", a.OrdersCap)
	} else {
		fmt.Fprintf(&b, ", %d orders", a.Orders)
	}
	fmt.Fprintf(&b, "; time %.1f–%.1f min (%.2fx)", a.MinTime, a.MaxTime, a.TimeSpread)
	return b.String()
}

package taskgraph

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	g := G3()
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf, "g3"); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != g.N() || back.EdgeCount() != g.EdgeCount() {
		t.Fatalf("round trip changed shape: n %d→%d, e %d→%d", g.N(), back.N(), g.EdgeCount(), back.EdgeCount())
	}
	for _, id := range g.TaskIDs() {
		a, b := g.Task(id), back.Task(id)
		if b == nil {
			t.Fatalf("task %d lost", id)
		}
		if len(a.Points) != len(b.Points) {
			t.Fatalf("task %d point count changed", id)
		}
		for j := range a.Points {
			if math.Abs(a.Points[j].Current-b.Points[j].Current) > 1e-12 ||
				math.Abs(a.Points[j].Time-b.Points[j].Time) > 1e-12 {
				t.Fatalf("task %d point %d changed: %v vs %v", id, j, a.Points[j], b.Points[j])
			}
		}
		ap, bp := g.Parents(id), back.Parents(id)
		if len(ap) != len(bp) {
			t.Fatalf("task %d parents changed: %v vs %v", id, ap, bp)
		}
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("want decode error")
	}
	if _, err := ReadJSON(strings.NewReader(`{"tasks":[]}`)); err == nil {
		t.Fatal("want empty-spec error")
	}
	// Unknown fields are rejected to catch schema typos early.
	if _, err := ReadJSON(strings.NewReader(`{"tasks":[{"id":1,"pointz":[]}]}`)); err == nil {
		t.Fatal("want unknown-field error")
	}
	// Structural validation still applies.
	bad := `{"tasks":[{"id":1,"points":[{"current":1,"time":1}],"parents":[1]}]}`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Fatal("want self-edge error")
	}
}

// TestReadJSONRejectsBadStructure covers the remaining ReadJSON failure
// paths: truncated documents, edges naming tasks that do not exist,
// tasks with no design points, duplicate IDs and precedence cycles.
func TestReadJSONRejectsBadStructure(t *testing.T) {
	for name, doc := range map[string]string{
		"truncated":        `{"tasks":[{"id":1,`,
		"wrong type":       `{"tasks":[{"id":"one","points":[{"current":1,"time":1}]}]}`,
		"unknown parent":   `{"tasks":[{"id":1,"points":[{"current":1,"time":1}]},{"id":2,"points":[{"current":1,"time":1}],"parents":[99]}]}`,
		"no points":        `{"tasks":[{"id":1,"points":[]}]}`,
		"missing points":   `{"tasks":[{"id":1}]}`,
		"duplicate id":     `{"tasks":[{"id":1,"points":[{"current":1,"time":1}]},{"id":1,"points":[{"current":1,"time":1}]}]}`,
		"cycle":            `{"tasks":[{"id":1,"points":[{"current":1,"time":1}],"parents":[2]},{"id":2,"points":[{"current":1,"time":1}],"parents":[1]}]}`,
		"negative current": `{"tasks":[{"id":1,"points":[{"current":-5,"time":1}]}]}`,
		"zero time":        `{"tasks":[{"id":1,"points":[{"current":5,"time":0}]}]}`,
	} {
		if _, err := ReadJSON(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: want error, got none", name)
		}
	}
}

func TestFromSpecNamesDefault(t *testing.T) {
	g, err := FromSpec(Spec{Tasks: []TaskSpec{{ID: 7, Points: []PointSpec{{Current: 1, Time: 1}}}}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Task(7).Name != "T7" {
		t.Fatalf("default name = %q", g.Task(7).Name)
	}
}

func TestWriteDOT(t *testing.T) {
	g := G2()
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf, "g2"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", "t1 ->", "t8", "t9"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
	// One arrow per edge.
	if got := strings.Count(out, "->"); got != g.EdgeCount() {
		t.Fatalf("DOT has %d arrows, want %d", got, g.EdgeCount())
	}
}

package core

import (
	"math"
	"math/rand"
	"sync"
)

// This file adds two engineering extensions around the paper's algorithm:
// parallel window evaluation (the per-iteration windows are independent,
// so a desktop host can fan them out across cores — the embedded target
// the paper envisions would keep the sequential path) and multi-start
// search over randomized initial sequences (the algorithm is greedy in
// its first sequence; restarts recover some of the gap to heavier
// searches at a controlled cost).

// evaluateWindowsParallel is evaluateWindows with each window's backward
// pass running in its own goroutine. Results are identical to the
// sequential path (windows are independent and the merge is
// deterministic); only wall-clock changes.
func (s *Scheduler) evaluateWindowsParallel(L []int) (bestAssign []int, bestCost float64, windows []WindowTrace) {
	start := s.m - 2
	if start < 0 {
		start = 0
	}
	for s.columnTime(start) > s.deadline+timeEps {
		if start == 0 {
			return nil, math.Inf(1), nil
		}
		start--
	}
	lo := 0
	switch s.opt.Windows {
	case WindowFirstFeasible:
		lo = start
	case WindowFullOnly:
		start = 0
	}
	count := start - lo + 1
	type slot struct {
		trace  WindowTrace
		assign []int
	}
	slots := make([]slot, count)
	var wg sync.WaitGroup
	for k := 0; k < count; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			ws := start - k
			assign, ok := s.chooseDesignPoints(L, ws)
			wt := WindowTrace{WindowStart: ws + 1, Feasible: ok, Cost: math.Inf(1)}
			if ok {
				wt.Cost = s.costOf(L, assign)
				wt.Duration = s.totalTime(assign)
				if s.opt.RecordTrace {
					wt.Assignment = s.assignmentMap(assign)
				}
			}
			slots[k] = slot{trace: wt, assign: assign}
		}(k)
	}
	wg.Wait()
	bestCost = math.Inf(1)
	for k := range slots {
		windows = append(windows, slots[k].trace)
		if slots[k].trace.Feasible && slots[k].trace.Cost < bestCost {
			bestCost = slots[k].trace.Cost
			bestAssign = slots[k].assign
		}
	}
	return bestAssign, bestCost, windows
}

// MultiStartOptions configures RunMultiStart.
type MultiStartOptions struct {
	// Restarts is the number of additional runs from randomized
	// initial sequences (default 8). The deterministic paper run is
	// always included, so the result can never be worse than Run's.
	Restarts int
	// Seed makes the randomized starts reproducible.
	Seed int64
}

// RunMultiStart runs the paper's algorithm once from its deterministic
// initial sequence and again from `Restarts` random topological orders,
// returning the best result. Randomization perturbs only the initial
// list-scheduling weights; everything downstream is the unmodified
// algorithm.
func RunMultiStart(s *Scheduler, opts MultiStartOptions) (*Result, error) {
	if opts.Restarts <= 0 {
		opts.Restarts = 8
	}
	best, err := s.Run()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	for r := 0; r < opts.Restarts; r++ {
		w := make([]float64, s.n)
		for i := range w {
			w[i] = rng.Float64()
		}
		L := s.listSchedule(w)
		res, err := s.runFrom(L)
		if err != nil {
			return nil, err
		}
		if res.Cost < best.Cost {
			best = res
		}
	}
	return best, nil
}

// runFrom executes the iterative loop starting from an explicit initial
// sequence (dense indices) instead of SequenceDecEnergy's.
func (s *Scheduler) runFrom(initial []int) (*Result, error) {
	if s.g.MinTotalTime() > s.deadline+timeEps {
		return nil, ErrDeadlineInfeasible
	}
	L := append([]int(nil), initial...)
	bestCost := math.Inf(1)
	var bestOrder, bestAssign []int
	prev := math.Inf(1)
	iterations := 0
	for iter := 0; iter < s.opt.MaxIterations; iter++ {
		iterations++
		wAssign, wCost, _ := s.windows(L)
		if wAssign == nil {
			wAssign = make([]int, s.n)
			wCost = s.costOf(L, wAssign)
		}
		iterCost := wCost
		iterOrder := L
		if !s.opt.DisableResequencing {
			Lw := s.weightedSequence(wAssign)
			if cw := s.costOf(Lw, wAssign); cw < iterCost {
				iterCost = cw
				iterOrder = Lw
			}
			L = Lw
		}
		if iterCost < bestCost {
			bestCost = iterCost
			bestOrder = append(bestOrder[:0], iterOrder...)
			bestAssign = append(bestAssign[:0], wAssign...)
		}
		if iterCost >= prev || s.opt.DisableResequencing {
			break
		}
		prev = iterCost
	}
	schedule := s.scheduleFrom(bestOrder, bestAssign)
	p := schedule.Profile(s.g)
	dur := p.TotalTime()
	return &Result{
		Schedule:   schedule,
		Cost:       bestCost,
		Duration:   dur,
		Energy:     p.DeliveredCharge(dur),
		Iterations: iterations,
	}, nil
}

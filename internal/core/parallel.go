package core

import (
	"context"
	"math"
	"math/rand"
	"sync"
)

// This file adds two engineering extensions around the paper's algorithm:
// parallel window evaluation (the per-iteration windows are independent,
// so a desktop host can fan them out across cores — the embedded target
// the paper envisions would keep the sequential path) and multi-start
// search over randomized initial sequences (the algorithm is greedy in
// its first sequence; restarts recover some of the gap to heavier
// searches at a controlled cost).

// evaluateWindowsParallel is evaluateWindows with each window's backward
// pass running in its own goroutine. Results are identical to the
// sequential path (windows are independent and the merge is
// deterministic); only wall-clock changes. A canceled ctx makes every
// window's pass bail out, so the wait below stays short; the merged
// result is then meaningless and callers must check ctx.
func (s *Scheduler) evaluateWindowsParallel(ctx context.Context, L []int) (bestAssign []int, bestCost float64, windows []WindowTrace) {
	start := s.m - 2
	if start < 0 {
		start = 0
	}
	for s.columnTime(start) > s.deadline+timeEps {
		if start == 0 {
			return nil, math.Inf(1), nil
		}
		start--
	}
	lo := 0
	switch s.opt.Windows {
	case WindowFirstFeasible:
		lo = start
	case WindowFullOnly:
		start = 0
	}
	count := start - lo + 1
	type slot struct {
		trace  WindowTrace
		assign []int
	}
	slots := make([]slot, count)
	var wg sync.WaitGroup
	for k := 0; k < count; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			ws := start - k
			assign, ok := s.chooseDesignPoints(ctx, L, ws)
			wt := WindowTrace{WindowStart: ws + 1, Feasible: ok, Cost: math.Inf(1)}
			if ok {
				wt.Cost = s.costOf(L, assign)
				wt.Duration = s.totalTime(assign)
				if s.opt.RecordTrace {
					wt.Assignment = s.assignmentMap(assign)
				}
			}
			slots[k] = slot{trace: wt, assign: assign}
		}(k)
	}
	wg.Wait()
	bestCost = math.Inf(1)
	for k := range slots {
		windows = append(windows, slots[k].trace)
		if slots[k].trace.Feasible && slots[k].trace.Cost < bestCost {
			bestCost = slots[k].trace.Cost
			bestAssign = slots[k].assign
		}
	}
	return bestAssign, bestCost, windows
}

// DefaultRestarts is the restart count used when
// MultiStartOptions.Restarts is zero or negative.
const DefaultRestarts = 8

// MultiStartOptions configures RunMultiStart.
type MultiStartOptions struct {
	// Restarts is the number of additional runs from randomized
	// initial sequences (default DefaultRestarts). The deterministic
	// paper run is always included, so the result can never be worse
	// than Run's.
	Restarts int
	// Seed makes the randomized starts reproducible.
	Seed int64
	// Workers bounds how many restarts run concurrently. 0 or 1 keeps
	// the sequential path; larger values fan the restarts out over
	// goroutines sharing the (read-only during a run) Scheduler, which
	// requires the battery model to tolerate concurrent ChargeLost
	// calls (all internal/battery models do; a stateful custom
	// Options.Model must synchronize itself or keep Workers <= 1).
	// The result is bit-identical for every Workers value: the restart
	// weight vectors are pre-drawn from one RNG stream and the winner
	// is reduced over seed index, never completion order.
	Workers int
}

// RunMultiStart runs the paper's algorithm once from its deterministic
// initial sequence and again from `Restarts` random topological orders,
// returning the best result. Randomization perturbs only the initial
// list-scheduling weights; everything downstream is the unmodified
// algorithm.
func RunMultiStart(s *Scheduler, opts MultiStartOptions) (*Result, error) {
	return RunMultiStartContext(context.Background(), s, opts)
}

// RunMultiStartContext is RunMultiStart with cooperative cancellation:
// ctx is checked between restarts (and inside each restart's window
// evaluation), so a multi-start search stops promptly mid-restart once
// the caller gives up. On cancellation it returns ctx.Err() and no
// partial best; a search that completes is bit-identical to
// RunMultiStart's for every Workers value.
func RunMultiStartContext(ctx context.Context, s *Scheduler, opts MultiStartOptions) (*Result, error) {
	if opts.Restarts <= 0 {
		opts.Restarts = DefaultRestarts
	}
	// Pre-draw every restart's weight vector from a single stream so the
	// restart set does not depend on Workers or on goroutine timing.
	rng := rand.New(rand.NewSource(opts.Seed))
	weights := make([][]float64, opts.Restarts)
	for r := range weights {
		w := make([]float64, s.n)
		for i := range w {
			w[i] = rng.Float64()
		}
		weights[r] = w
	}

	if opts.Workers <= 1 {
		best, err := s.RunContext(ctx)
		if err != nil {
			return nil, err
		}
		for _, w := range weights {
			res, err := s.runFromContext(ctx, s.listSchedule(w))
			if err != nil {
				return nil, err
			}
			if res.Cost < best.Cost {
				best = res
			}
		}
		return best, nil
	}

	// Slot 0 is the deterministic run; slot r+1 is restart r. All runs
	// share s, which is immutable while running — every run clones its
	// mutable state (sequence, best-so-far, DPF scratch) locally.
	results := make([]*Result, opts.Restarts+1)
	errs := make([]error, opts.Restarts+1)
	sem := make(chan struct{}, opts.Workers)
	var wg sync.WaitGroup
	for slot := 0; slot < len(results); slot++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(slot int) {
			defer func() { <-sem; wg.Done() }()
			if slot == 0 {
				results[0], errs[0] = s.RunContext(ctx)
				return
			}
			results[slot], errs[slot] = s.runFromContext(ctx, s.listSchedule(weights[slot-1]))
		}(slot)
	}
	wg.Wait()
	// Cancellation first: once ctx is done some slots hold ctx errors in
	// nondeterministic positions, so report the cancellation itself
	// rather than whichever slot happened to observe it first.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Deterministic reduction: first error by slot, else first
	// strict improvement by slot — exactly the sequential loop's
	// selection.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	best := results[0]
	for _, res := range results[1:] {
		if res.Cost < best.Cost {
			best = res
		}
	}
	return best, nil
}

// runFromContext executes the iterative loop starting from an explicit
// initial sequence (dense indices) instead of SequenceDecEnergy's,
// checking ctx between iterations and inside window evaluation.
func (s *Scheduler) runFromContext(ctx context.Context, initial []int) (*Result, error) {
	if s.g.MinTotalTime() > s.deadline+timeEps {
		return nil, ErrDeadlineInfeasible
	}
	L := append([]int(nil), initial...)
	bestCost := math.Inf(1)
	var bestOrder, bestAssign []int
	prev := math.Inf(1)
	iterations := 0
	for iter := 0; iter < s.opt.MaxIterations; iter++ {
		iterations++
		wAssign, wCost, _ := s.windows(ctx, L)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if wAssign == nil {
			wAssign = make([]int, s.n)
			wCost = s.costOf(L, wAssign)
		}
		iterCost := wCost
		iterOrder := L
		if !s.opt.DisableResequencing {
			Lw := s.weightedSequence(wAssign)
			if cw := s.costOf(Lw, wAssign); cw < iterCost {
				iterCost = cw
				iterOrder = Lw
			}
			L = Lw
		}
		if iterCost < bestCost {
			bestCost = iterCost
			bestOrder = append(bestOrder[:0], iterOrder...)
			bestAssign = append(bestAssign[:0], wAssign...)
		}
		if iterCost >= prev || s.opt.DisableResequencing {
			break
		}
		prev = iterCost
	}
	schedule := s.scheduleFrom(bestOrder, bestAssign)
	p := schedule.Profile(s.g)
	dur := p.TotalTime()
	return &Result{
		Schedule:   schedule,
		Cost:       bestCost,
		Duration:   dur,
		Energy:     p.DeliveredCharge(dur),
		Iterations: iterations,
	}, nil
}

package core

import (
	"context"
	"math"
	"math/rand"
	"sync"
)

// This file adds two engineering extensions around the paper's algorithm:
// parallel window evaluation (the per-iteration windows are independent,
// so a desktop host can fan them out across cores — the embedded target
// the paper envisions would keep the sequential path) and multi-start
// search over randomized initial sequences (the algorithm is greedy in
// its first sequence; restarts recover some of the gap to heavier
// searches at a controlled cost).

// evaluateWindowsParallel is evaluateWindows with each window's backward
// pass running in its own goroutine. Each window slot owns a runScratch of
// its own (kept in scr.slots and reused across iterations), so the passes
// share no mutable state. Results are identical to the sequential path
// (windows are independent and the merge walks the slots in the sweep's
// order with the same strict-improvement rule); only wall-clock changes.
// A canceled ctx makes every window's pass bail out, so the wait below
// stays short; the merged result is then meaningless and callers must
// check ctx.
func (s *Scheduler) evaluateWindowsParallel(ctx context.Context, L []int, scr *runScratch) (bestAssign []int, bestCost float64, windows []WindowTrace) {
	start := s.m - 2
	if start < 0 {
		start = 0
	}
	for s.columnTime(start) > s.deadline+timeEps {
		if start == 0 {
			return nil, math.Inf(1), nil
		}
		start--
	}
	lo := 0
	switch s.opt.Windows {
	case WindowFirstFeasible:
		lo = start
	case WindowFullOnly:
		start = 0
	}
	count := start - lo + 1
	for len(scr.slots) < count {
		scr.slots = append(scr.slots, s.newScratch())
	}
	if cap(scr.slotCost) < count {
		scr.slotCost = make([]float64, count)
		scr.slotOK = make([]bool, count)
		scr.slotWT = make([]WindowTrace, count)
	}
	slotCost := scr.slotCost[:count]
	slotOK := scr.slotOK[:count]
	slotWT := scr.slotWT[:count]
	var wg sync.WaitGroup
	for k := 0; k < count; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			ws := start - k
			sc := scr.slots[k]
			assign, ok := s.chooseDesignPoints(ctx, L, ws, sc)
			cost := math.Inf(1)
			if ok {
				cost = s.costOfInto(L, assign, sc.profile[:0])
			}
			slotOK[k] = ok
			slotCost[k] = cost
			if s.opt.RecordTrace {
				wt := WindowTrace{WindowStart: ws + 1, Feasible: ok, Cost: cost}
				if ok {
					wt.Duration = s.totalTime(assign)
					wt.Assignment = s.assignmentMap(assign)
				}
				slotWT[k] = wt
			}
		}(k)
	}
	wg.Wait()
	// Deterministic merge: walk the slots in sweep order with the same
	// strict-improvement rule as the sequential loop, then copy the
	// winner into the parent scratch (slot buffers are reused next
	// iteration).
	bestCost = math.Inf(1)
	bestSlot := -1
	for k := 0; k < count; k++ {
		if slotOK[k] && slotCost[k] < bestCost {
			bestCost = slotCost[k]
			bestSlot = k
		}
	}
	if bestSlot >= 0 {
		copy(scr.winAssign, scr.slots[bestSlot].assign)
		bestAssign = scr.winAssign
	}
	if s.opt.RecordTrace {
		windows = append(windows, slotWT...)
	}
	return bestAssign, bestCost, windows
}

// DefaultRestarts is the restart count used when
// MultiStartOptions.Restarts is zero or negative.
const DefaultRestarts = 8

// MultiStartOptions configures RunMultiStart.
type MultiStartOptions struct {
	// Restarts is the number of additional runs from randomized
	// initial sequences (default DefaultRestarts). The deterministic
	// paper run is always included, so the result can never be worse
	// than Run's.
	Restarts int
	// Seed makes the randomized starts reproducible.
	Seed int64
	// Workers bounds how many restarts run concurrently. 0 or 1 keeps
	// the sequential path; larger values fan the restarts out over
	// goroutines sharing the (read-only during a run) Scheduler, which
	// requires the battery model to tolerate concurrent ChargeLost
	// calls (all internal/battery models do; a stateful custom
	// Options.Model must synchronize itself or keep Workers <= 1).
	// Every restart carries its own scratch arena, so workers share no
	// mutable state. The result is bit-identical for every Workers
	// value: the restart weight vectors are pre-drawn from one RNG
	// stream and the winner is reduced over seed index, never
	// completion order.
	Workers int
}

// RunMultiStart runs the paper's algorithm once from its deterministic
// initial sequence and again from `Restarts` random topological orders,
// returning the best result. Randomization perturbs only the initial
// list-scheduling weights; everything downstream is the unmodified
// algorithm.
func RunMultiStart(s *Scheduler, opts MultiStartOptions) (*Result, error) {
	return RunMultiStartContext(context.Background(), s, opts)
}

// RunMultiStartContext is RunMultiStart with cooperative cancellation:
// ctx is checked between restarts (and inside each restart's window
// evaluation), so a multi-start search stops promptly mid-restart once
// the caller gives up. On cancellation it returns ctx.Err() and no
// partial best; a search that completes is bit-identical to
// RunMultiStart's for every Workers value.
func RunMultiStartContext(ctx context.Context, s *Scheduler, opts MultiStartOptions) (*Result, error) {
	if opts.Restarts <= 0 {
		opts.Restarts = DefaultRestarts
	}
	// Pre-draw every restart's weight vector from a single stream so the
	// restart set does not depend on Workers or on goroutine timing.
	rng := rand.New(rand.NewSource(opts.Seed))
	weights := make([][]float64, opts.Restarts)
	for r := range weights {
		w := make([]float64, s.n)
		for i := range w {
			w[i] = rng.Float64()
		}
		weights[r] = w
	}

	if opts.Workers <= 1 {
		best, err := s.RunContext(ctx)
		if err != nil {
			return nil, err
		}
		for _, w := range weights {
			res, err := s.runFromContext(ctx, s.listSchedule(w))
			if err != nil {
				return nil, err
			}
			if res.Cost < best.Cost {
				best = res
			}
		}
		return best, nil
	}

	// Slot 0 is the deterministic run; slot r+1 is restart r. All runs
	// share s, which is immutable while running — every run owns a
	// scratch arena for its mutable state (sequences, best-so-far, the
	// DPF escalation buffers).
	results := make([]*Result, opts.Restarts+1)
	errs := make([]error, opts.Restarts+1)
	sem := make(chan struct{}, opts.Workers)
	var wg sync.WaitGroup
	for slot := 0; slot < len(results); slot++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(slot int) {
			defer func() { <-sem; wg.Done() }()
			if slot == 0 {
				results[0], errs[0] = s.RunContext(ctx)
				return
			}
			results[slot], errs[slot] = s.runFromContext(ctx, s.listSchedule(weights[slot-1]))
		}(slot)
	}
	wg.Wait()
	// Cancellation first: once ctx is done some slots hold ctx errors in
	// nondeterministic positions, so report the cancellation itself
	// rather than whichever slot happened to observe it first.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Deterministic reduction: first error by slot, else first
	// strict improvement by slot — exactly the sequential loop's
	// selection.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	best := results[0]
	for _, res := range results[1:] {
		if res.Cost < best.Cost {
			best = res
		}
	}
	return best, nil
}

// runFromContext executes the iterative loop starting from an explicit
// initial sequence (dense indices) instead of SequenceDecEnergy's, with
// its own scratch arena, checking ctx between iterations and inside
// window evaluation.
func (s *Scheduler) runFromContext(ctx context.Context, initial []int) (*Result, error) {
	if s.g.MinTotalTime() > s.deadline+timeEps {
		return nil, ErrDeadlineInfeasible
	}
	scr := s.newScratch()
	L := scr.seqA[:0]
	L = append(L, initial...)
	bestOrder, bestAssign, bestCost, iterations, err := s.runLoop(ctx, scr, L, nil)
	if err != nil {
		return nil, err
	}
	schedule := s.scheduleFrom(bestOrder, bestAssign)
	p := schedule.Profile(s.g)
	dur := p.TotalTime()
	return &Result{
		Schedule:   schedule,
		Cost:       bestCost,
		Duration:   dur,
		Energy:     p.DeliveredCharge(dur),
		Iterations: iterations,
	}, nil
}

package core

import (
	"context"
	"testing"

	"repro/internal/taskgraph"
)

// TestParallelMatchesSequential: the concurrent window evaluator must
// produce bit-identical results to the sequential one.
func TestParallelMatchesSequential(t *testing.T) {
	for _, g := range []*taskgraph.Graph{taskgraph.G2(), taskgraph.G3()} {
		deadline := g.MinTotalTime() + 0.7*(g.MaxTotalTime()-g.MinTotalTime())
		seq := mustScheduler(t, g, deadline, Options{RecordTrace: true})
		par := mustScheduler(t, g, deadline, Options{RecordTrace: true, Parallel: true})
		rs, err := seq.Run()
		if err != nil {
			t.Fatal(err)
		}
		rp, err := par.Run()
		if err != nil {
			t.Fatal(err)
		}
		if rs.Cost != rp.Cost {
			t.Fatalf("parallel cost %.6f != sequential %.6f", rp.Cost, rs.Cost)
		}
		if !seqEqual(rs.Schedule.Order, rp.Schedule.Order) {
			t.Fatalf("parallel order %v != sequential %v", rp.Schedule.Order, rs.Schedule.Order)
		}
		if len(rs.Trace.Iterations) != len(rp.Trace.Iterations) {
			t.Fatalf("iteration counts differ: %d vs %d", len(rs.Trace.Iterations), len(rp.Trace.Iterations))
		}
		for k := range rs.Trace.Iterations {
			ws, wp := rs.Trace.Iterations[k].Windows, rp.Trace.Iterations[k].Windows
			if len(ws) != len(wp) {
				t.Fatalf("iteration %d window counts differ", k)
			}
			for j := range ws {
				if ws[j].WindowStart != wp[j].WindowStart || ws[j].Cost != wp[j].Cost {
					t.Fatalf("iteration %d window %d differs: %+v vs %+v", k, j, ws[j], wp[j])
				}
			}
		}
	}
}

// TestMultiStartNeverWorse: the deterministic run is included, so
// multi-start can only match or improve it — and it must stay feasible.
func TestMultiStartNeverWorse(t *testing.T) {
	for _, tc := range []struct {
		g *taskgraph.Graph
		d float64
	}{
		{taskgraph.G2(), 75},
		{taskgraph.G3(), taskgraph.G3Deadline},
	} {
		s := mustScheduler(t, tc.g, tc.d, Options{})
		base, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		multi, err := RunMultiStart(s, MultiStartOptions{Restarts: 6, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		if multi.Cost > base.Cost+1e-9 {
			t.Fatalf("multi-start %.2f worse than base %.2f", multi.Cost, base.Cost)
		}
		if err := multi.Schedule.ValidateDeadline(tc.g, tc.d); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMultiStartDeterministic(t *testing.T) {
	g := taskgraph.G3()
	s := mustScheduler(t, g, taskgraph.G3Deadline, Options{})
	a, err := RunMultiStart(s, MultiStartOptions{Restarts: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMultiStart(s, MultiStartOptions{Restarts: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost || !seqEqual(a.Schedule.Order, b.Schedule.Order) {
		t.Fatal("multi-start not deterministic for a fixed seed")
	}
}

// TestMultiStartParallelMatchesSequential: Workers > 1 must return a
// bit-identical Result (cost, order, assignment) to the sequential path
// on both paper graphs at every paper deadline.
func TestMultiStartParallelMatchesSequential(t *testing.T) {
	cases := []struct {
		g         *taskgraph.Graph
		deadlines []float64
	}{
		{taskgraph.G2(), taskgraph.G2Deadlines},
		{taskgraph.G3(), taskgraph.G3Deadlines},
	}
	for _, tc := range cases {
		for _, d := range tc.deadlines {
			s := mustScheduler(t, tc.g, d, Options{})
			seq, err := RunMultiStart(s, MultiStartOptions{Restarts: 6, Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 4, 16} {
				par, err := RunMultiStart(s, MultiStartOptions{Restarts: 6, Seed: 11, Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				if par.Cost != seq.Cost || par.Duration != seq.Duration || par.Energy != seq.Energy {
					t.Fatalf("deadline %g workers %d: cost/duration/energy %v/%v/%v != sequential %v/%v/%v",
						d, workers, par.Cost, par.Duration, par.Energy, seq.Cost, seq.Duration, seq.Energy)
				}
				if !seqEqual(par.Schedule.Order, seq.Schedule.Order) {
					t.Fatalf("deadline %g workers %d: order %v != %v", d, workers, par.Schedule.Order, seq.Schedule.Order)
				}
				for id, j := range seq.Schedule.Assignment {
					if par.Schedule.Assignment[id] != j {
						t.Fatalf("deadline %g workers %d: task %d assigned %d, want %d",
							d, workers, id, par.Schedule.Assignment[id], j)
					}
				}
			}
		}
	}
}

// TestMultiStartParallelInfeasible: errors surface identically from the
// concurrent path.
func TestMultiStartParallelInfeasible(t *testing.T) {
	g := taskgraph.G3()
	s := mustScheduler(t, g, taskgraph.G3Deadline, Options{})
	s.deadline = 1
	if _, err := RunMultiStart(s, MultiStartOptions{Restarts: 3, Workers: 4}); err == nil {
		t.Fatal("want infeasible error")
	}
}

func TestRunFromInfeasible(t *testing.T) {
	g := taskgraph.G3()
	s := mustScheduler(t, g, taskgraph.G3Deadline, Options{})
	s.deadline = 1 // force infeasible after construction
	if _, err := s.runFromContext(context.Background(), s.initialSequence()); err == nil {
		t.Fatal("want infeasible error")
	}
}

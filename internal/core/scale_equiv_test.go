package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/dvs"
	"repro/internal/taskgraph"
)

// scaleGraph builds the benchmark-shaped fork-join graph used by
// BenchmarkScalingTasks: n tasks across 4 branches, 5 paper-style design
// points each, seeded by n so the instance is stable across runs.
func scaleGraph(t testing.TB, n int) *taskgraph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(n)))
	recipe := dvs.Recipe{Factors: dvs.G3Factors, Rule: dvs.TimeReversedLinear, Round: 1}
	points, err := recipe.PointsFunc(dvs.RandomRefs(rng, n, 300, 900, 2, 8))
	if err != nil {
		t.Fatal(err)
	}
	g, err := taskgraph.ForkJoin(4, (n-6)/4, 5, points)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestEquivalenceLargeGraphs proves the scaled-up hot path — trajectory
// materialization, closed-form escalation state, incAtRank increase
// counts, bound skips — still reproduces the naive reference evaluator
// bit-for-bit on instances an order of magnitude past the paper's sizes
// (n = 160 and 320 tasks), at tight, medium and loose deadlines. This is
// the acceptance gate of the scaling work: exact mode means exact at
// every n, not just on the fixtures.
func TestEquivalenceLargeGraphs(t *testing.T) {
	if testing.Short() {
		t.Skip("large-graph reference sweeps are slow; skipped with -short")
	}
	for _, n := range []int{160, 320} {
		g := scaleGraph(t, n)
		lo, hi := g.MinTotalTime(), g.MaxTotalTime()
		for _, slack := range []float64{0.15, 0.5, 0.9} {
			d := lo + slack*(hi-lo)
			label := fmt.Sprintf("n=%d/slack=%g", n, slack)
			s := mustScheduler(t, g, d, Options{})
			ref, err := s.refRunContext(context.Background())
			if err != nil {
				t.Fatalf("%s: reference: %v", label, err)
			}
			got, err := s.Run()
			if err != nil {
				t.Fatalf("%s: optimized: %v", label, err)
			}
			requireSameResult(t, label, ref, got)
		}
	}
}

// TestApproxZeroIsExact pins the contract that Approx: 0 — however it is
// spelled — is exact mode: bit-identical to the reference evaluator and
// to the default options on random instances.
func TestApproxZeroIsExact(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomEquivGraph(t, rng, 6+rng.Intn(18), 3)
		d := g.MinTotalTime() + 0.5*(g.MaxTotalTime()-g.MinTotalTime())
		want, err := mustScheduler(t, g, d, Options{}).Run()
		if err != nil {
			t.Fatal(err)
		}
		got, err := mustScheduler(t, g, d, Options{Approx: 0}).Run()
		if err != nil {
			t.Fatal(err)
		}
		requireSameResult(t, fmt.Sprintf("seed=%d", seed), want, got)
	}
}

// TestApproxEpsilonBound is the white-box quality proof of the documented
// approximation mode. The skipAudit hook receives every bound-skipped
// candidate with its certified lower bound (slack already subtracted),
// the running best suitability at skip time and the candidate's exact
// suitability, evaluated through the same batch folds. Three invariants
// must hold for every skip, at every epsilon:
//
//  1. soundness — the certified bound really is a lower bound:
//     exactB >= lb;
//  2. justification — the skip rule fired: lb >= bestB - eps;
//  3. quality — together, exactB >= bestB - eps: a skipped candidate can
//     beat the running minimum by at most eps, so the point chosen for
//     the position has suitability within eps of the position's true
//     minimum. This is Options.Approx's documented per-decision bound.
//
// At eps = 0 invariant 3 degenerates to exactB >= bestB — skips are
// provably behavior-preserving, which is what the bit-identity suites
// above observe from the outside.
func TestApproxEpsilonBound(t *testing.T) {
	for _, eps := range []float64{0, 0.01, 0.1, 1} {
		eps := eps
		t.Run(fmt.Sprintf("eps=%g", eps), func(t *testing.T) {
			skips := 0
			for seed := int64(1); seed <= 15; seed++ {
				rng := rand.New(rand.NewSource(seed))
				g := randomEquivGraph(t, rng, 8+rng.Intn(20), 2+rng.Intn(4))
				for _, slack := range []float64{0.2, 0.6} {
					d := g.MinTotalTime() + slack*(g.MaxTotalTime()-g.MinTotalTime())
					s := mustScheduler(t, g, d, Options{Approx: eps})
					s.skipAudit = func(pos, j int, lb, bestB, exactB float64) {
						skips++
						if exactB < lb {
							t.Fatalf("seed=%d d=%g pos=%d j=%d: unsound bound: exact B %v < certified lb %v",
								seed, d, pos, j, exactB, lb)
						}
						if lb < bestB-eps {
							t.Fatalf("seed=%d d=%g pos=%d j=%d: unjustified skip: lb %v < bestB %v - eps %v",
								seed, d, pos, j, lb, bestB, eps)
						}
						if exactB < bestB-eps {
							t.Fatalf("seed=%d d=%g pos=%d j=%d: quality violation: exact B %v < bestB %v - eps %v",
								seed, d, pos, j, exactB, bestB, eps)
						}
					}
					if _, err := s.Run(); err != nil {
						t.Fatalf("seed=%d d=%g: %v", seed, d, err)
					}
				}
			}
			if skips == 0 {
				t.Fatalf("eps=%g: no candidate was ever bound-skipped; the audit proved nothing", eps)
			}
		})
	}
}

// TestApproxEpsilonBoundLargeGraphs re-proves the per-skip invariants of
// TestApproxEpsilonBound on the large-graph corpus (the same n = 160 and
// 320 instances TestEquivalenceLargeGraphs pins bit-identical in exact
// mode), at the same three slack levels: soundness (exactB >= lb),
// justification (lb >= bestB - eps) and quality (exactB >= bestB - eps)
// must hold for every bound-skipped candidate at scale, where the skip
// machinery does its real work.
func TestApproxEpsilonBoundLargeGraphs(t *testing.T) {
	if testing.Short() {
		t.Skip("large-graph audit sweeps are slow; skipped with -short")
	}
	for _, n := range []int{160, 320} {
		g := scaleGraph(t, n)
		lo, hi := g.MinTotalTime(), g.MaxTotalTime()
		for _, eps := range []float64{0, 0.1} {
			eps := eps
			skips := 0
			for _, slack := range []float64{0.15, 0.5, 0.9} {
				d := lo + slack*(hi-lo)
				label := fmt.Sprintf("n=%d/eps=%g/slack=%g", n, eps, slack)
				s := mustScheduler(t, g, d, Options{Approx: eps})
				s.skipAudit = func(pos, j int, lb, bestB, exactB float64) {
					skips++
					if exactB < lb {
						t.Fatalf("%s pos=%d j=%d: unsound bound: exact B %v < certified lb %v",
							label, pos, j, exactB, lb)
					}
					if exactB < bestB-eps {
						t.Fatalf("%s pos=%d j=%d: quality violation: exact B %v < bestB %v - eps %v",
							label, pos, j, exactB, bestB, eps)
					}
				}
				if _, err := s.Run(); err != nil {
					t.Fatalf("%s: %v", label, err)
				}
			}
			if skips == 0 {
				t.Fatalf("n=%d eps=%g: no candidate was ever bound-skipped", n, eps)
			}
		}
	}
}

// TestApproxNeverWorseThanBound checks the end-to-end quality of the
// approximation mode on the benchmark-shaped instance: the approximate
// run must complete, stay deadline-feasible, and its final cost must stay
// finite and within a sane factor of the exact run's (the per-decision
// bound does not compose into a global additive one, but an approx run
// drifting far from exact would mean the mode is mis-wired, not merely
// approximate).
func TestApproxNeverWorseThanBound(t *testing.T) {
	g := scaleGraph(t, 80)
	d := g.MinTotalTime() + 0.6*(g.MaxTotalTime()-g.MinTotalTime())
	exact, err := mustScheduler(t, g, d, Options{}).Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{0.01, 0.1, 1} {
		res, err := mustScheduler(t, g, d, Options{Approx: eps}).Run()
		if err != nil {
			t.Fatalf("eps=%g: %v", eps, err)
		}
		if res.Duration > d+timeEps {
			t.Fatalf("eps=%g: approx schedule misses the deadline: %v > %v", eps, res.Duration, d)
		}
		if math.IsInf(res.Cost, 0) || math.IsNaN(res.Cost) || res.Cost <= 0 {
			t.Fatalf("eps=%g: approx cost is not a sane number: %v", eps, res.Cost)
		}
		if res.Cost > exact.Cost*1.5 {
			t.Fatalf("eps=%g: approx cost %v is wildly worse than exact %v", eps, res.Cost, exact.Cost)
		}
	}
}

// TestSweepRunnerMatchesNew proves the deadline-sweep reuse path: for
// every deadline in a dense sweep, SweepRunner.Run is bit-identical to
// constructing a fresh scheduler with New and calling Run — including
// when the sweep revisits a deadline after others mutated the shared
// scratch, and across infeasible deadlines mid-sweep.
func TestSweepRunnerMatchesNew(t *testing.T) {
	graphs := []struct {
		name string
		g    *taskgraph.Graph
	}{
		{"G2", taskgraph.G2()},
		{"G3", taskgraph.G3()},
	}
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		graphs = append(graphs, struct {
			name string
			g    *taskgraph.Graph
		}{fmt.Sprintf("rand%d", seed), randomEquivGraph(t, rng, 8+rng.Intn(16), 3)})
	}
	for _, opt := range []Options{{}, {Approx: 0.05}} {
		for _, gc := range graphs {
			sr, err := NewSweepRunner(gc.g, opt)
			if err != nil {
				t.Fatalf("%s: NewSweepRunner: %v", gc.name, err)
			}
			lo, hi := gc.g.MinTotalTime(), gc.g.MaxTotalTime()
			var deadlines []float64
			for i := 0; i <= 12; i++ {
				deadlines = append(deadlines, lo+float64(i)/12*(hi-lo))
			}
			// Revisit an early deadline at the end: the runner's reused
			// state must not have drifted.
			deadlines = append(deadlines, lo+0.25*(hi-lo), lo*0.5 /* infeasible */, hi*1.2)
			for _, d := range deadlines {
				label := fmt.Sprintf("%s/approx=%g/d=%g", gc.name, opt.Approx, d)
				want, wantErr := func() (*Result, error) {
					s, err := New(gc.g, d, opt)
					if err != nil {
						return nil, err
					}
					return s.Run()
				}()
				got, gotErr := sr.Run(d)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("%s: error mismatch: New+Run %v, SweepRunner %v", label, wantErr, gotErr)
				}
				if wantErr != nil {
					if wantErr.Error() != gotErr.Error() {
						t.Fatalf("%s: error text mismatch: %q vs %q", label, wantErr, gotErr)
					}
					continue
				}
				requireSameResult(t, label, want, got)
			}
		}
	}
}

//go:build race

package core

// raceEnabled reports whether the race detector instruments this build;
// allocation-count assertions are skipped under it (instrumentation
// allocates).
const raceEnabled = true

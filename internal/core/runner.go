package core

import (
	"context"

	"repro/internal/sched"
)

// Runner executes one Scheduler repeatedly while reusing every piece of
// mutable run state: the scratch arena, the result struct, the schedule's
// order slice and assignment map, and the profile used to derive duration
// and energy. After a warm-up run, the steady state allocates nothing
// (with Options.RecordTrace off — traces are per-run history and are
// allocated when requested).
//
// The Result returned by Run/RunContext is owned by the Runner and
// overwritten by the next call; callers that need to keep one must copy it
// (Result.Schedule.Clone for the schedule). A Runner is not safe for
// concurrent use — it is exactly one worker's arena. Create one Runner per
// goroutine; the Scheduler itself stays shared and immutable.
//
// Results are bit-identical to Scheduler.Run's for the same inputs.
type Runner struct {
	s     *Scheduler
	scr   *runScratch
	sched sched.Schedule
	res   Result
}

// NewRunner returns a Runner with a freshly sized arena for s.
func (s *Scheduler) NewRunner() *Runner {
	return &Runner{s: s, scr: s.newScratch()}
}

// Run executes the iterative algorithm, reusing the Runner's storage.
func (r *Runner) Run() (*Result, error) {
	return r.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation (see
// Scheduler.RunContext for the semantics).
func (r *Runner) RunContext(ctx context.Context) (*Result, error) {
	s := r.s
	if s.g.MinTotalTime() > s.deadline+timeEps {
		return nil, ErrDeadlineInfeasible
	}
	L := s.initialSequenceInto(r.scr, r.scr.seqA)
	var trace *Trace
	if s.opt.RecordTrace {
		trace = &Trace{InitialSequence: s.idsOf(L)}
	}
	bestOrder, bestAssign, bestCost, iterations, err := s.runLoop(ctx, r.scr, L, trace)
	if err != nil {
		return nil, err
	}
	r.sched.Order = s.idsInto(bestOrder, r.sched.Order[:0])
	if r.sched.Assignment == nil {
		r.sched.Assignment = make(map[int]int, s.n)
	}
	for i := 0; i < s.n; i++ {
		// The key set is the graph's task IDs on every run, so the
		// map never rehashes after the first.
		r.sched.Assignment[s.g.IDAt(i)] = bestAssign[i]
	}
	p := s.profileInto(bestOrder, bestAssign, r.scr.profile[:0])
	dur := p.TotalTime()
	r.res = Result{
		Schedule:   &r.sched,
		Cost:       bestCost,
		Duration:   dur,
		Energy:     p.DeliveredCharge(dur),
		Iterations: iterations,
		Trace:      trace,
	}
	return &r.res, nil
}

package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/taskgraph"
)

// TestDeepChainNoBlowup: a 300-task chain must schedule quickly and
// correctly (the DPF escalation is O(n·m) per tagged point; this guards
// against accidental exponential behavior).
func TestDeepChainNoBlowup(t *testing.T) {
	n := 300
	g, err := taskgraph.Chain(n, func(i int) []taskgraph.DesignPoint {
		base := float64(i%9+1) * 50
		return []taskgraph.DesignPoint{
			{Current: base * 8, Time: 1},
			{Current: base * 2, Time: 2},
			{Current: base, Time: 3},
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := g.MinTotalTime() + 0.5*(g.MaxTotalTime()-g.MinTotalTime())
	s := mustScheduler(t, g, deadline, Options{})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.ValidateDeadline(g, deadline); err != nil {
		t.Fatal(err)
	}
}

// TestExtremeMagnitudes: currents spanning six orders of magnitude and
// sub-millisecond durations must not break normalization or feasibility.
func TestExtremeMagnitudes(t *testing.T) {
	var b taskgraph.Builder
	b.AddTask(1, "", taskgraph.DesignPoint{Current: 1e6, Time: 1e-3}, taskgraph.DesignPoint{Current: 1, Time: 2e-3})
	b.AddTask(2, "", taskgraph.DesignPoint{Current: 5e5, Time: 5e-3}, taskgraph.DesignPoint{Current: 0.5, Time: 9e-3})
	b.AddTask(3, "", taskgraph.DesignPoint{Current: 100, Time: 4e-3}, taskgraph.DesignPoint{Current: 0.1, Time: 8e-3})
	b.AddEdge(1, 2).AddEdge(2, 3)
	g := b.MustBuild()
	deadline := g.MinTotalTime() + 0.5*(g.MaxTotalTime()-g.MinTotalTime())
	s := mustScheduler(t, g, deadline, Options{})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.ValidateDeadline(g, deadline); err != nil {
		t.Fatal(err)
	}
	if res.Cost <= 0 || res.Cost != res.Cost { // NaN guard
		t.Fatalf("cost = %v", res.Cost)
	}
}

// TestZeroCurrentDesignPoints: a task whose lowest-power point draws zero
// current (e.g. gated-off accelerator) is legal and must not divide by
// zero anywhere.
func TestZeroCurrentDesignPoints(t *testing.T) {
	var b taskgraph.Builder
	b.AddTask(1, "", taskgraph.DesignPoint{Current: 100, Time: 1}, taskgraph.DesignPoint{Current: 0, Time: 3})
	b.AddTask(2, "", taskgraph.DesignPoint{Current: 80, Time: 2}, taskgraph.DesignPoint{Current: 0, Time: 5})
	b.AddEdge(1, 2)
	g := b.MustBuild()
	s := mustScheduler(t, g, 8, Options{})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Assignment[1] != 1 || res.Schedule.Assignment[2] != 1 {
		t.Fatalf("free-power points should win: %v", res.Schedule.Assignment)
	}
}

// TestIdenticalTasks: symmetric instances exercise every tie-break path;
// the result must be deterministic and feasible.
func TestIdenticalTasks(t *testing.T) {
	var b taskgraph.Builder
	for id := 1; id <= 8; id++ {
		b.AddTask(id, "", taskgraph.DesignPoint{Current: 400, Time: 2}, taskgraph.DesignPoint{Current: 50, Time: 5})
	}
	g := b.MustBuild()
	s1 := mustScheduler(t, g, 30, Options{})
	r1, err := s1.Run()
	if err != nil {
		t.Fatal(err)
	}
	s2 := mustScheduler(t, g, 30, Options{})
	r2, err := s2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cost != r2.Cost || !seqEqual(r1.Schedule.Order, r2.Schedule.Order) {
		t.Fatal("symmetric instance not deterministic")
	}
	// IDs must appear in ascending order under pure ties.
	for k, id := range r1.Schedule.Order {
		if id != k+1 {
			t.Fatalf("tie-break order = %v", r1.Schedule.Order)
		}
	}
}

// TestRandomizedParallelEquivalence: quick-checks that the parallel and
// sequential evaluators agree on random instances.
func TestRandomizedParallelEquivalence(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(8) + 3
		m := rng.Intn(3) + 2
		points := func(i int) []taskgraph.DesignPoint {
			base := rng.Float64()*500 + 50
			tb := rng.Float64()*4 + 0.5
			pts := make([]taskgraph.DesignPoint, m)
			for j := 0; j < m; j++ {
				f := 1 + 0.8*float64(j)
				pts[j] = taskgraph.DesignPoint{Current: base / (f * f), Time: tb * f}
			}
			return pts
		}
		g, err := taskgraph.Random(rng, n, 0.3, points)
		if err != nil {
			return false
		}
		deadline := g.MinTotalTime() + rng.Float64()*(g.MaxTotalTime()-g.MinTotalTime())
		a, err := New(g, deadline, Options{})
		if err != nil {
			return false
		}
		ra, err := a.Run()
		if err != nil {
			return false
		}
		b, err := New(g, deadline, Options{Parallel: true})
		if err != nil {
			return false
		}
		rb, err := b.Run()
		if err != nil {
			return false
		}
		return ra.Cost == rb.Cost && seqEqual(ra.Schedule.Order, rb.Schedule.Order)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

package core

import (
	"repro/internal/battery"
)

// runScratch is the per-run arena behind the scheduler's hot path. One is
// created per RunContext / runFromContext call (and one per worker in the
// parallel window and multi-start fan-outs), so a Scheduler stays immutable
// and safe for concurrent runs while the inner loops never allocate.
//
// The buffers fall into four groups, mirroring the call tree:
//
//   - backward pass (chooseDesignPoints / calculateDPF): the working
//     assignment, the free-task rank structure and lazily generated
//     trajectory, and the incremental-evaluation base state (see the
//     invariants on chooseDesignPoints);
//   - window sweep: the best-so-far assignment across windows and the
//     all-fastest fallback;
//   - sequencing (listSchedule / weightedSequence): weights, in-degrees and
//     the ready max-heap, plus double-buffered sequence storage;
//   - cost evaluation: one reusable battery profile.
//
// A scratch is single-goroutine state; the parallel window sweep keeps one
// per window slot (slots), lazily built and reused across iterations.
type runScratch struct {
	// backward pass
	assign  []int // per-task column: free tasks at m-1, fixed tasks at chosen
	posOf   []int // task index -> sequence position (valid during one pass)
	incBase int   // current-increase count (CIF numerator) of the base state
	// The free tasks in Energy-Vector order as a compact array (ranks
	// 0..nFree-1) plus its inverse. The rank structure fully determines
	// every escalated trajectory state (see trajCur), so escalated
	// columns are read closed-form instead of from walked mirrors.
	// Fixing a position splices one task out (O(nFree)).
	evSeq  []int
	rankOf []int
	nFree  int
	// The window's escalation trajectory: the completion-time delta of
	// move k (rank r's span-block at teDelta[r*span:(r+1)*span], filled
	// once per window and spliced as tasks leave the free set — see
	// fillTrajectory) and the untagged current-increase count after each
	// full rank escalation (incAtRank, rebuilt per position — see
	// preparePosition). nMoves is the current position's move count;
	// the move order itself is a pure function of the move index and
	// evSeq. enPrefixK/enPrefixVal memoize the charge-energy fold prefix
	// over the free positions at stop index enPrefixK, and
	// stateFull/stateRem track which escalation state the enPos overlay
	// currently shows (see syncEnState).
	teDelta     []float64
	incAtRank   []int
	jumpOf      []int
	nMoves      int
	enPrefixK   int
	enPrefixVal float64
	stateFull   int
	stateRem    int
	// Candidate batch state for one sequence position: the surviving
	// candidate columns, their certified lower bounds and skip flags
	// (see lowerBound), and the stop point / final completion time /
	// exhaustion flag recorded by the shared batchStops pass.
	candJ    []int
	candLB   []float64
	candTe   []float64
	candStop []int
	candExh  []bool
	candSkip []bool
	// Running inputs to the candidate lower bound: the minimum
	// current-increase count along the generated trajectory, the summed
	// window-minimum charge-energy of the free tasks, and the summed
	// charge-energy of the fixed suffix.
	incMin     int
	sminFree   float64
	fixedEfSum float64
	// Flat value mirrors kept in lockstep by fixTask so the hot loops
	// scan contiguous float64s: current and charge-energy by sequence
	// position, execution time by task index. curPos and teNow describe
	// the BASE state (free tasks at m-1) — exact for the tagged position
	// and the fixed suffix in every trajectory state, with free
	// positions' escalated currents read closed-form (trajCur). enPos
	// additionally carries a per-rank escalation overlay walked to the
	// current stop point (syncEnState), so the charge-energy prefix fold
	// stays a contiguous scan.
	curPos []float64
	enPos  []float64
	teNow  []float64

	// window sweep
	winAssign []int
	fallback  []int

	// sequencing
	weights    []float64
	indeg      []int
	heap       []int
	seqA, seqB []int
	ordBest    []int
	asgBest    []int

	// cost evaluation
	profile battery.Profile

	// parallel window sweep (lazily sized to the sweep width)
	slots    []*runScratch
	slotCost []float64
	slotOK   []bool
	slotWT   []WindowTrace
}

// newScratch builds an arena sized for the scheduler's n tasks and m design
// points. Every slice is at its final capacity, so steady-state runs that
// reuse the scratch (see Runner) perform no allocation.
func (s *Scheduler) newScratch() *runScratch {
	n, m := s.n, s.m
	return &runScratch{
		assign:    make([]int, n),
		posOf:     make([]int, n),
		evSeq:     make([]int, n),
		rankOf:    make([]int, n),
		teDelta:   make([]float64, n*m),
		incAtRank: make([]int, n+1),
		jumpOf:    make([]int, n),
		candJ:     make([]int, m),
		candLB:    make([]float64, m),
		candTe:    make([]float64, m),
		candStop:  make([]int, m),
		candExh:   make([]bool, m),
		candSkip:  make([]bool, m),
		curPos:    make([]float64, n),
		enPos:     make([]float64, n),
		teNow:     make([]float64, n),
		winAssign: make([]int, n),
		fallback:  make([]int, n),
		weights:   make([]float64, n),
		indeg:     make([]int, n),
		heap:      make([]int, 0, n),
		seqA:      make([]int, n),
		seqB:      make([]int, n),
		ordBest:   make([]int, 0, n),
		asgBest:   make([]int, 0, n),
		profile:   make(battery.Profile, 0, n),
	}
}

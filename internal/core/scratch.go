package core

import (
	"repro/internal/battery"
)

// runScratch is the per-run arena behind the scheduler's hot path. One is
// created per RunContext / runFromContext call (and one per worker in the
// parallel window and multi-start fan-outs), so a Scheduler stays immutable
// and safe for concurrent runs while the inner loops never allocate.
//
// The buffers fall into four groups, mirroring the call tree:
//
//   - backward pass (chooseDesignPoints / calculateDPF): the working
//     assignment, the hypothetical escalated state and its undo logs, and
//     the incremental-evaluation base state (see the invariants on
//     chooseDesignPoints);
//   - window sweep: the best-so-far assignment across windows and the
//     all-fastest fallback;
//   - sequencing (listSchedule / weightedSequence): weights, in-degrees and
//     the ready max-heap, plus double-buffered sequence storage;
//   - cost evaluation: one reusable battery profile.
//
// A scratch is single-goroutine state; the parallel window sweep keeps one
// per window slot (slots), lazily built and reused across iterations.
type runScratch struct {
	// backward pass
	assign  []int // per-task column: free tasks at m-1, fixed tasks at chosen
	posOf   []int // task index -> sequence position (valid during one pass)
	tmp     []int // hypothetical escalated state; == assign between positions
	freeEV  []int // free tasks (positions < pos) in Energy-Vector order
	colCnt  []int // column -> free tasks currently at it in tmp
	incBase int   // current-increase count (CIF numerator) of the base state
	// The position's escalation trajectory (see buildTrajectory): the
	// task moved at step k, the completion-time delta of that move, and
	// the current-increase count after k moves. walkK is how many moves
	// the state mirrors currently have applied.
	moveQ    []int
	teDelta  []float64
	incAfter []int
	nMoves   int
	walkK    int
	// Flat mirrors of tmp's derived values, kept in lockstep by
	// setTmpCol/rewindTo so the hot loops scan contiguous float64s:
	// current and charge-energy by sequence position; teNow is the BASE
	// state's execution time by task index (it tracks assign, not the
	// trajectory walk).
	curPos []float64
	enPos  []float64
	teNow  []float64

	// window sweep
	winAssign []int
	fallback  []int

	// sequencing
	weights    []float64
	indeg      []int
	heap       []int
	seqA, seqB []int
	ordBest    []int
	asgBest    []int

	// cost evaluation
	profile battery.Profile

	// parallel window sweep (lazily sized to the sweep width)
	slots    []*runScratch
	slotCost []float64
	slotOK   []bool
	slotWT   []WindowTrace
}

// newScratch builds an arena sized for the scheduler's n tasks and m design
// points. Every slice is at its final capacity, so steady-state runs that
// reuse the scratch (see Runner) perform no allocation.
func (s *Scheduler) newScratch() *runScratch {
	n, m := s.n, s.m
	return &runScratch{
		assign:    make([]int, n),
		posOf:     make([]int, n),
		tmp:       make([]int, n),
		freeEV:    make([]int, 0, n),
		colCnt:    make([]int, m),
		moveQ:     make([]int, n*m),
		teDelta:   make([]float64, n*m),
		incAfter:  make([]int, n*m+1),
		curPos:    make([]float64, n),
		enPos:     make([]float64, n),
		teNow:     make([]float64, n),
		winAssign: make([]int, n),
		fallback:  make([]int, n),
		weights:   make([]float64, n),
		indeg:     make([]int, n),
		heap:      make([]int, 0, n),
		seqA:      make([]int, n),
		seqB:      make([]int, n),
		ordBest:   make([]int, 0, n),
		asgBest:   make([]int, 0, n),
		profile:   make(battery.Profile, 0, n),
	}
}

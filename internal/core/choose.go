package core

import (
	"context"
	"math"
)

// evaluateWindows is the paper's EvaluateWindows: find the narrowest
// feasible window start, then run the backward design-point selection for
// every window from there down to the full design space, keeping the
// minimum-sigma assignment. It returns (nil, +Inf, traces) when no window
// yields a feasible assignment.
//
// CT(k) — the completion time if every task used column k — decreases as k
// decreases (columns are time-sorted), so the start search widens the
// window until CT fits the deadline.
//
// Cancellation: the sweep checks ctx before each window (and
// chooseDesignPoints checks it between sequence positions), returning
// early with whatever it has evaluated so far. Callers that care must
// check ctx themselves afterwards — a partially swept result is only
// used by RunContext when the context is still live.
func (s *Scheduler) evaluateWindows(ctx context.Context, L []int) (bestAssign []int, bestCost float64, windows []WindowTrace) {
	start := s.m - 2
	if start < 0 {
		start = 0
	}
	for s.columnTime(start) > s.deadline+timeEps {
		if start == 0 {
			// Unreachable when Run's feasibility pre-check passed,
			// but kept for direct callers.
			return nil, math.Inf(1), nil
		}
		start--
	}
	lo := 0
	switch s.opt.Windows {
	case WindowFirstFeasible:
		lo = start
	case WindowFullOnly:
		start = 0
	}
	bestCost = math.Inf(1)
	for ws := start; ws >= lo; ws-- {
		if ctx.Err() != nil {
			return bestAssign, bestCost, windows
		}
		assign, ok := s.chooseDesignPoints(ctx, L, ws)
		wt := WindowTrace{WindowStart: ws + 1, Feasible: ok, Cost: math.Inf(1)}
		if ok {
			wt.Cost = s.costOf(L, assign)
			wt.Duration = s.totalTime(assign)
			if s.opt.RecordTrace {
				wt.Assignment = s.assignmentMap(assign)
			}
			if wt.Cost < bestCost {
				bestCost = wt.Cost
				bestAssign = assign
			}
		}
		windows = append(windows, wt)
	}
	return bestAssign, bestCost, windows
}

// columnTime returns CT(j) for 0-based column j.
func (s *Scheduler) columnTime(j int) float64 {
	var t float64
	for i := 0; i < s.n; i++ {
		t += s.d[i][j]
	}
	return t
}

// totalTime returns the completion time of an assignment.
func (s *Scheduler) totalTime(assign []int) float64 {
	var t float64
	for i := 0; i < s.n; i++ {
		t += s.d[i][assign[i]]
	}
	return t
}

// chooseDesignPoints is the paper's ChooseDesignPoints: fix the last task
// in the sequence to its lowest-power point, then walk backwards through
// the sequence; for every task, tag each design point within the window
// [ws..m-1], score it with the suitability B = SR+CR+ENR+CIF+DPF, and fix
// the task at the minimum-B point. Free (not yet processed) tasks are held
// at their lowest-power points; the DPF computation escalates them
// hypothetically to test deadline feasibility.
//
// It returns the per-task-index assignment and whether a deadline-feasible
// assignment was found (a finite B for the first sequence position implies
// feasibility, because no free tasks remain there). A canceled ctx makes
// it bail out between sequence positions with (nil, false) — each
// position costs O(m²·n) suitability work, so this is the finest
// cancellation grain that stays off the arithmetic hot path.
func (s *Scheduler) chooseDesignPoints(ctx context.Context, L []int, ws int) ([]int, bool) {
	n, m := s.n, s.m
	assign := make([]int, n)
	for i := range assign {
		assign[i] = m - 1
	}
	// posOf lets the DPF escalation find a task's sequence position.
	posOf := make([]int, n)
	for p, ti := range L {
		posOf[ti] = p
	}

	// The last task is fixed to the lowest-power design point (the
	// paper's S(n,m) = 1); Tsum tracks the total time of fixed tasks.
	tsum := s.d[L[n-1]][m-1]
	if n == 1 {
		return assign, tsum <= s.deadline+timeEps
	}

	scratch := newDPFScratch(n)
	for pos := n - 2; pos >= 0; pos-- {
		if ctx.Err() != nil {
			return nil, false
		}
		ti := L[pos]
		bestB := math.Inf(1)
		bestJ := -1
		for j := m - 1; j >= ws; j-- {
			b := s.suitability(L, posOf, assign, tsum, pos, ti, j, ws, scratch)
			if b < bestB {
				bestB = b
				bestJ = j
			}
		}
		if bestJ < 0 || math.IsInf(bestB, 1) {
			return nil, false
		}
		assign[ti] = bestJ
		tsum += s.d[ti][bestJ]
	}
	return assign, s.totalTime(assign) <= s.deadline+timeEps
}

// suitability computes B = SR + CR + ENR + CIF + DPF for tagging task ti
// (at sequence position pos) with design point j, given the fixed-task
// assignment so far (assign; free tasks at lowest power) and the fixed
// time sum tsum. A +Inf result marks a deadline-violating choice.
func (s *Scheduler) suitability(L, posOf, assign []int, tsum float64, pos, ti, j, ws int, scratch *dpfScratch) float64 {
	d := s.deadline
	sr := (d - (tsum + s.d[ti][j])) / d
	cr := 0.0
	if s.iMax > s.iMin {
		cr = (s.cur[ti][j] - s.iMin) / (s.iMax - s.iMin)
	}
	enr, cif, dpf := s.calculateDPF(L, posOf, assign, pos, ti, j, ws, scratch)
	if math.IsInf(dpf, 1) {
		return math.Inf(1)
	}
	var b float64
	f := s.opt.Factors
	if f.Has(FactorSR) {
		b += sr
	}
	if f.Has(FactorCR) {
		b += cr
	}
	if f.Has(FactorENR) {
		b += enr
	}
	if f.Has(FactorCIF) {
		b += cif
	}
	if f.Has(FactorDPF) {
		b += dpf
	}
	return b
}

// dpfScratch holds the reusable buffers of calculateDPF so the inner loop
// of chooseDesignPoints does not allocate per tagged point.
type dpfScratch struct {
	tmp    []int
	frozen []bool
}

func newDPFScratch(n int) *dpfScratch {
	return &dpfScratch{tmp: make([]int, n), frozen: make([]bool, n)}
}

// calculateDPF is the paper's CalculateDPF plus CalculateFactors: starting
// from the tagged state (fixed tasks at their chosen points, task ti tagged
// at j, free tasks at lowest power), escalate free tasks one design-point
// step at a time — always the free task with the smallest average energy —
// until the deadline is met or no free task can move. Tasks reaching the
// window's highest-power column are frozen. The returned DPF is the
// design-point fraction of the escalated state (+Inf when the deadline
// cannot be met); ENR and CIF are computed on the same escalated state.
func (s *Scheduler) calculateDPF(L, posOf, assign []int, pos, ti, j, ws int, scratch *dpfScratch) (enr, cif, dpf float64) {
	n, m := s.n, s.m
	tmp := scratch.tmp[:n]
	copy(tmp, assign)
	tmp[ti] = j
	frozen := scratch.frozen[:n]
	for i := range frozen {
		frozen[i] = false
	}

	te := s.totalTime(tmp)
	d := s.deadline
	for te > d+timeEps {
		// First free task in the Energy Vector: smallest average
		// energy among unprocessed (position < pos), unfrozen tasks.
		q := -1
		for _, cand := range s.energyOrder {
			if posOf[cand] < pos && !frozen[cand] {
				q = cand
				break
			}
		}
		if q < 0 {
			enr, cif = s.factorsOf(L, tmp)
			return enr, cif, math.Inf(1)
		}
		p := tmp[q]
		if p <= ws {
			// Already at the window's highest-power column; freeze
			// without moving (degenerate m==1 windows).
			frozen[q] = true
			continue
		}
		tmp[q] = p - 1
		te += s.d[q][p-1] - s.d[q][p]
		if p-1 == ws {
			frozen[q] = true
		}
	}

	if pos == 0 {
		// Processing the first task in the sequence: no free tasks
		// remain, so the paper replaces DPF with the slack ratio to
		// emphasize using up the slack.
		dpf = (d - te) / d
	} else {
		// Weighted column occupancy of the free tasks. Columns are
		// weighted window-relative: the window's highest-power column
		// ws weighs 1, decreasing linearly to 0 at the lowest-power
		// column m-1 (Equation 2 when ws = 0; see DESIGN.md §2).
		ufac := m - 1 - ws
		if ufac > 0 {
			f := 1.0 / float64(ufac)
			x := float64(pos)
			for w := 0; w < ufac; w++ {
				col := w // DPFAbsolute: literal columns 0..ufac-1
				if s.opt.DPFColumns == DPFWindowRelative {
					col = ws + w
				}
				cnt := 0
				for y := 0; y < pos; y++ {
					if tmp[L[y]] == col {
						cnt++
					}
				}
				if cnt > 0 {
					dpf += float64(ufac-w) * f * float64(cnt) / x
				}
			}
		}
	}
	enr, cif = s.factorsOf(L, tmp)
	return enr, cif, dpf
}

// factorsOf is the paper's CalculateFactors: the current-increase fraction
// and normalized energy ratio of executing the tasks in order L with the
// assignment tmp.
func (s *Scheduler) factorsOf(L []int, tmp []int) (enr, cif float64) {
	var en float64
	inc := 0
	prev := 0.0
	for k, ti := range L {
		c := s.cur[ti][tmp[ti]]
		en += c * s.d[ti][tmp[ti]]
		if k > 0 && prev < c {
			inc++
		}
		prev = c
	}
	if s.n > 1 {
		cif = float64(inc) / float64(s.n-1)
	}
	if s.eMax > s.eMin {
		enr = (en - s.eMin) / (s.eMax - s.eMin)
	}
	return enr, cif
}

package core

import (
	"context"
	"math"
)

// evaluateWindows is the paper's EvaluateWindows: find the narrowest
// feasible window start, then run the backward design-point selection for
// every window from there down to the full design space, keeping the
// minimum-sigma assignment. It returns (nil, +Inf, nil) when no window
// yields a feasible assignment.
//
// CT(k) — the completion time if every task used column k — decreases as k
// decreases (columns are time-sorted), so the start search widens the
// window until CT fits the deadline.
//
// The returned assignment aliases scr.winAssign and is overwritten by the
// next sweep on the same scratch. WindowTrace rows are built only when
// Options.RecordTrace is set — with tracing off the sweep performs no
// trace-only work (no per-window duration sums, no assignment maps, no
// slice growth) and returns a nil trace.
//
// Cancellation: the sweep checks ctx before each window (and
// chooseDesignPoints checks it between sequence positions), returning
// early with whatever it has evaluated so far. Callers that care must
// check ctx themselves afterwards — a partially swept result is only
// used by RunContext when the context is still live.
//
//battsched:hotpath
func (s *Scheduler) evaluateWindows(ctx context.Context, L []int, scr *runScratch) (bestAssign []int, bestCost float64, windows []WindowTrace) {
	start := s.m - 2
	if start < 0 {
		start = 0
	}
	for s.columnTime(start) > s.deadline+timeEps {
		if start == 0 {
			// Unreachable when Run's feasibility pre-check passed,
			// but kept for direct callers.
			return nil, math.Inf(1), nil
		}
		start--
	}
	lo := 0
	switch s.opt.Windows {
	case WindowFirstFeasible:
		lo = start
	case WindowFullOnly:
		start = 0
	}
	bestCost = math.Inf(1)
	for ws := start; ws >= lo; ws-- {
		if ctx.Err() != nil {
			return bestAssign, bestCost, windows
		}
		assign, ok := s.chooseDesignPoints(ctx, L, ws, scr)
		cost := math.Inf(1)
		if ok {
			cost = s.costOfInto(L, assign, scr.profile[:0])
			if cost < bestCost {
				bestCost = cost
				copy(scr.winAssign, assign)
				bestAssign = scr.winAssign
			}
		}
		if s.opt.RecordTrace {
			wt := WindowTrace{WindowStart: ws + 1, Feasible: ok, Cost: cost}
			if ok {
				wt.Duration = s.totalTime(assign)
				wt.Assignment = s.assignmentMap(assign)
			}
			windows = append(windows, wt)
		}
	}
	return bestAssign, bestCost, windows
}

// columnTime returns CT(j) for 0-based column j.
//
//battsched:hotpath
func (s *Scheduler) columnTime(j int) float64 {
	var t float64
	for i := 0; i < s.n; i++ {
		t += s.d[i][j]
	}
	return t
}

// totalTime returns the completion time of an assignment.
//
//battsched:hotpath
func (s *Scheduler) totalTime(assign []int) float64 {
	var t float64
	for i := 0; i < s.n; i++ {
		t += s.d[i][assign[i]]
	}
	return t
}

// chooseDesignPoints is the paper's ChooseDesignPoints: fix the last task
// in the sequence to its lowest-power point, then walk backwards through
// the sequence; for every task, tag each design point within the window
// [ws..m-1], score it with the suitability B = SR+CR+ENR+CIF+DPF, and fix
// the task at the minimum-B point. Free (not yet processed) tasks are held
// at their lowest-power points; the DPF computation escalates them
// hypothetically to test deadline feasibility.
//
// The reference pass (refChooseDesignPoints) re-escalates from scratch for
// every tagged design point, rescanning the full Energy Vector per
// escalation step and re-deriving ENR/CIF over the whole sequence. This
// pass exploits two structural facts instead:
//
//  1. The escalation move sequence is candidate-independent. Free tasks
//     escalate strictly in Energy Vector order, each from the lowest-power
//     column m-1 up to the window start ws, so every candidate's escalated
//     state is a prefix of one fixed trajectory; candidates differ only in
//     where along it they stop. The trajectory is built once per sequence
//     position (buildTrajectory) with per-move te deltas and
//     current-increase counts.
//
//  2. The stop point is monotone. Tagging a faster design point lowers the
//     starting completion time, and IEEE addition is monotone, so as the
//     candidate loop walks j from m-1 down to ws the stop indices never
//     increase. The scratch's state mirrors (tmp, colCnt, curPos, enPos)
//     therefore only ever rewind (rewindTo), amortizing to O(1) mirror
//     updates per candidate.
//
// Float quantities are never carried by running deltas across candidates,
// because float deltas round differently than fresh sums and the
// equivalence contract (bit-identical Results, equivalence_test.go) must
// hold even for inputs where a one-ULP difference is amplified (e.g.
// ENR's normalization when Emax−Emin is tiny). Each candidate computes
// its starting completion time and escalated charge-energy as fresh
// left-to-right folds with the reference's exact operation order, and
// replays the trajectory's te deltas exactly as the reference adds them —
// so every comparison the reference makes is reproduced bit-for-bit.
// Integer state (the column occupancy counts behind DPF, the
// current-increase count behind CIF) is maintained incrementally, which
// is exact by nature.
//
// Per candidate the cost is O(n + stop index + m) — two linear folds, the
// te replay and the O(m) occupancy read — instead of the reference's
// Θ(n·m + steps·n). The returned assignment aliases scr.assign.
//
// It returns the per-task-index assignment and whether a deadline-feasible
// assignment was found (a finite B for the first sequence position implies
// feasibility, because no free tasks remain there). A canceled ctx makes
// it bail out between sequence positions with (nil, false) — each
// position is the finest cancellation grain that stays off the
// arithmetic hot path.
//
//battsched:hotpath
func (s *Scheduler) chooseDesignPoints(ctx context.Context, L []int, ws int, scr *runScratch) ([]int, bool) {
	n, m := s.n, s.m
	assign := scr.assign
	for i := range assign {
		assign[i] = m - 1
	}
	// posOf lets the trajectory walk find a task's sequence position.
	posOf := scr.posOf
	for p, ti := range L {
		posOf[ti] = p
	}

	// The last task is fixed to the lowest-power design point (the
	// paper's S(n,m) = 1); Tsum tracks the total time of fixed tasks.
	tsum := s.d[L[n-1]][m-1]
	if n == 1 {
		return assign, tsum <= s.deadline+timeEps
	}

	s.primeScratch(L, assign, scr)
	for pos := n - 2; pos >= 0; pos-- {
		if ctx.Err() != nil {
			return nil, false
		}
		ti := L[pos]
		// Compact the position's free tasks (sequence positions before
		// pos) out of the Energy Vector; they all sit at column m-1.
		scr.freeEV = scr.freeEV[:0]
		for _, cand := range s.energyOrder {
			if posOf[cand] < pos {
				scr.freeEV = append(scr.freeEV, cand)
			}
		}
		scr.colCnt[m-1] = pos
		s.buildTrajectory(posOf, ws, scr)
		bestB := math.Inf(1)
		bestJ := -1
		for j := m - 1; j >= ws; j-- {
			b := s.suitability(posOf, tsum, pos, ti, j, ws, scr)
			if b < bestB {
				bestB = b
				bestJ = j
			}
		}
		s.rewindTo(0, posOf, scr)
		if bestJ < 0 || math.IsInf(bestB, 1) {
			return nil, false
		}
		s.fixTask(pos, ti, bestJ, scr)
		tsum += s.d[ti][bestJ]
	}
	return assign, s.totalTime(assign) <= s.deadline+timeEps
}

// primeScratch establishes the incremental-evaluation invariants for a
// backward pass over the base state in assign: tmp mirrors assign, colCnt
// is empty (each position sets its own free count), incBase is the
// current-increase count of assign, and the curPos/enPos/teNow value
// mirrors describe assign.
//
//battsched:hotpath
func (s *Scheduler) primeScratch(L, assign []int, scr *runScratch) {
	m := s.m
	copy(scr.tmp, assign)
	for c := range scr.colCnt {
		scr.colCnt[c] = 0
	}
	scr.incBase = s.incOf(L, assign)
	for p, ti := range L {
		scr.curPos[p] = s.cf[ti*m+assign[ti]]
		scr.enPos[p] = s.ef[ti*m+assign[ti]]
	}
	for i := 0; i < s.n; i++ {
		scr.teNow[i] = s.df[i*m+assign[i]]
	}
	scr.nMoves, scr.walkK = 0, 0
}

// incOf returns the number of adjacent sequence pairs at which current
// strictly increases (the CIF numerator) for order L under assign.
//
//battsched:hotpath
func (s *Scheduler) incOf(L, assign []int) int {
	inc := 0
	prev := 0.0
	for k, ti := range L {
		c := s.cur[ti][assign[ti]]
		if k > 0 && prev < c {
			inc++
		}
		prev = c
	}
	return inc
}

// buildTrajectory materializes the position's full escalation trajectory:
// every free task of scr.freeEV, in Energy Vector order, moved one column
// at a time from the lowest-power column m-1 up to the window start ws.
// For each move k it records the task (moveQ), the completion-time delta
// exactly as the reference computes it (teDelta), and the sequence's
// current-increase count after the move (incAfter[k+1]; incAfter[0] is the
// unescalated base). The state mirrors are walked along, ending at the
// fully escalated state with walkK == nMoves.
//
//battsched:hotpath
func (s *Scheduler) buildTrajectory(posOf []int, ws int, scr *runScratch) {
	m := s.m
	k := 0
	inc := scr.incBase
	scr.incAfter[0] = inc
	for _, q := range scr.freeEV {
		pq := posOf[q]
		for p := m - 1; p > ws; p-- {
			scr.moveQ[k] = q
			scr.teDelta[k] = s.df[q*m+p-1] - s.df[q*m+p]
			inc += s.setTmpCol(pq, q, p-1, scr, true)
			k++
			scr.incAfter[k] = inc
		}
	}
	scr.nMoves, scr.walkK = k, k
}

// rewindTo walks the state mirrors backwards along the trajectory until
// only the first k moves remain applied. Stops are monotone within a
// candidate loop (see chooseDesignPoints), so mirrors never need to walk
// forward again before the next buildTrajectory. Mirror entries are
// overwritten from the precomputed flats (never incremented), so nothing
// drifts across candidates.
//
//battsched:hotpath
func (s *Scheduler) rewindTo(k int, posOf []int, scr *runScratch) {
	m := s.m
	tmp := scr.tmp
	for scr.walkK > k {
		scr.walkK--
		q := scr.moveQ[scr.walkK]
		p := tmp[q] + 1 // the column the move left
		scr.colCnt[p-1]--
		scr.colCnt[p]++
		tmp[q] = p
		pq := posOf[q]
		scr.curPos[pq] = s.cf[q*m+p]
		scr.enPos[pq] = s.ef[q*m+p]
	}
}

// setTmpCol moves task q (at sequence position pq) to column c in scr.tmp,
// keeping the curPos/enPos value mirrors in lockstep, and returns the
// resulting change to the current-increase count. Only the two sequence
// pairs adjacent to pq can change, so the update is O(1). When trackCnt is
// set, q is a free task and its colCnt bucket moves too.
//
//battsched:hotpath
func (s *Scheduler) setTmpCol(pq, q, c int, scr *runScratch, trackCnt bool) int {
	base := q*s.m + c
	oldC := scr.curPos[pq]
	newC := s.cf[base]
	delta := 0
	if pq > 0 {
		left := scr.curPos[pq-1]
		if left < oldC {
			delta--
		}
		if left < newC {
			delta++
		}
	}
	if pq < s.n-1 {
		right := scr.curPos[pq+1]
		if oldC < right {
			delta--
		}
		if newC < right {
			delta++
		}
	}
	if trackCnt {
		scr.colCnt[scr.tmp[q]]--
		scr.colCnt[c]++
	}
	scr.tmp[q] = c
	scr.curPos[pq] = newC
	scr.enPos[pq] = s.ef[base]
	return delta
}

// fixTask commits task ti (sequence position pos) to column j: the working
// assignment, the tmp and value mirrors, and the increase-count base
// absorb the change in O(1). ti leaves the free set as pos decreases, so
// colCnt is untouched (each position re-seeds its own free count).
//
//battsched:hotpath
func (s *Scheduler) fixTask(pos, ti, j int, scr *runScratch) {
	scr.incBase += s.setTmpCol(pos, ti, j, scr, false)
	scr.teNow[ti] = s.df[ti*s.m+j]
	scr.assign[ti] = j
}

// suitability computes B = SR + CR + ENR + CIF + DPF for tagging task ti
// (at sequence position pos) with design point j, given the fixed time sum
// tsum and the position's trajectory in scr. A +Inf result marks a
// deadline-violating choice.
//
//battsched:hotpath
func (s *Scheduler) suitability(posOf []int, tsum float64, pos, ti, j, ws int, scr *runScratch) float64 {
	d := s.deadline
	sr := (d - (tsum + s.df[ti*s.m+j])) / d
	cr := 0.0
	if s.iMax > s.iMin {
		cr = (s.cf[ti*s.m+j] - s.iMin) / (s.iMax - s.iMin)
	}
	enr, cif, dpf := s.calculateDPF(posOf, pos, ti, j, ws, scr)
	if math.IsInf(dpf, 1) {
		return math.Inf(1)
	}
	var b float64
	f := s.opt.Factors
	if f.Has(FactorSR) {
		b += sr
	}
	if f.Has(FactorCR) {
		b += cr
	}
	if f.Has(FactorENR) {
		b += enr
	}
	if f.Has(FactorCIF) {
		b += cif
	}
	if f.Has(FactorDPF) {
		b += dpf
	}
	return b
}

// calculateDPF is the paper's CalculateDPF plus CalculateFactors: starting
// from the tagged state (fixed tasks at their chosen points, task ti tagged
// at j, free tasks at lowest power), escalate free tasks one design-point
// step at a time — always the free task with the smallest average energy —
// until the deadline is met or no free task can move. Tasks reaching the
// window's highest-power column are frozen. The returned DPF is the
// design-point fraction of the escalated state (+Inf when the deadline
// cannot be met); ENR and CIF are computed on the same escalated state.
//
// The escalation itself is a replay of the position's precomputed
// trajectory (see chooseDesignPoints): the starting completion time is a
// fresh task-index-order fold with ti substituted to j — the reference's
// exact operation sequence — and the per-move deltas are added exactly as
// the reference adds them, so the stop point falls on the same move for
// the same reasons, bit for bit. Freeze bookkeeping needs no replay: a
// frozen task never changes the state the factors read, only the probe
// order, which the trajectory already encodes.
//
//battsched:hotpath
func (s *Scheduler) calculateDPF(posOf []int, pos, ti, j, ws int, scr *runScratch) (enr, cif, dpf float64) {
	m := s.m
	d := s.deadline

	// Starting completion time of the tagged state.
	teNow := scr.teNow
	saved := teNow[ti]
	teNow[ti] = s.df[ti*m+j]
	te := sumFloats(teNow)
	teNow[ti] = saved

	// Replay the trajectory's deltas to the candidate's stop point.
	k := 0
	deltas := scr.teDelta[:scr.nMoves]
	exhausted := false
	for te > d+timeEps {
		if k == len(deltas) {
			// No free task can move: the deadline cannot be met.
			exhausted = true
			break
		}
		te += deltas[k]
		k++
	}
	s.rewindTo(k, posOf, scr)

	// Factors of the escalated, tagged state: the charge-energy fold
	// substitutes the tag into the sequence-order mirror; the increase
	// count adds the tag's two adjacent pairs onto the trajectory's
	// precomputed count.
	enPos := scr.enPos
	savedEn := enPos[pos]
	enPos[pos] = s.ef[ti*m+j]
	en := sumFloats(enPos)
	enPos[pos] = savedEn
	inc := scr.incAfter[k] + s.tagIncDelta(pos, ti, j, scr)
	enr, cif = s.factorsFrom(en, inc)
	if exhausted {
		return enr, cif, math.Inf(1)
	}

	if pos == 0 {
		// Processing the first task in the sequence: no free tasks
		// remain, so the paper replaces DPF with the slack ratio to
		// emphasize using up the slack.
		dpf = (d - te) / d
	} else {
		// Weighted column occupancy of the free tasks, read off the
		// maintained per-column counts. Columns are weighted
		// window-relative: the window's highest-power column ws weighs
		// 1, decreasing linearly to 0 at the lowest-power column m-1
		// (Equation 2 when ws = 0; see DESIGN.md §2).
		ufac := m - 1 - ws
		if ufac > 0 {
			f := 1.0 / float64(ufac)
			x := float64(pos)
			for w := 0; w < ufac; w++ {
				col := w // DPFAbsolute: literal columns 0..ufac-1
				if s.opt.DPFColumns == DPFWindowRelative {
					col = ws + w
				}
				if cnt := scr.colCnt[col]; cnt > 0 {
					dpf += float64(ufac-w) * f * float64(cnt) / x
				}
			}
		}
	}
	return enr, cif, dpf
}

// tagIncDelta returns the change to the current-increase count from
// tagging task ti (sequence position pos) at column j, relative to its
// base column m-1, against the mirrors' current (untagged) state.
//
//battsched:hotpath
func (s *Scheduler) tagIncDelta(pos, ti, j int, scr *runScratch) int {
	m := s.m
	oldC := s.cf[ti*m+m-1]
	newC := s.cf[ti*m+j]
	delta := 0
	if pos > 0 {
		left := scr.curPos[pos-1]
		if left < oldC {
			delta--
		}
		if left < newC {
			delta++
		}
	}
	if pos < s.n-1 {
		right := scr.curPos[pos+1]
		if oldC < right {
			delta--
		}
		if newC < right {
			delta++
		}
	}
	return delta
}

// sumFloats folds the slice left to right. The hot path sums the teNow
// (task-index order, matching totalTime) and enPos (sequence order,
// matching refFactorsOf) mirrors through it, so both sums are bit-exact
// replicas of the reference's.
//
//battsched:hotpath
func sumFloats(xs []float64) float64 {
	var t float64
	for _, x := range xs {
		t += x
	}
	return t
}

// factorsFrom finishes the paper's CalculateFactors from the escalated
// state's charge-energy sum and the incrementally maintained
// current-increase count.
//
//battsched:hotpath
func (s *Scheduler) factorsFrom(en float64, inc int) (enr, cif float64) {
	if s.n > 1 {
		cif = float64(inc) / float64(s.n-1)
	}
	if s.eMax > s.eMin {
		enr = (en - s.eMin) / (s.eMax - s.eMin)
	}
	return enr, cif
}

package core

import (
	"context"
	"math"
)

// evaluateWindows is the paper's EvaluateWindows: find the narrowest
// feasible window start, then run the backward design-point selection for
// every window from there down to the full design space, keeping the
// minimum-sigma assignment. It returns (nil, +Inf, nil) when no window
// yields a feasible assignment.
//
// CT(k) — the completion time if every task used column k — decreases as k
// decreases (columns are time-sorted), so the start search widens the
// window until CT fits the deadline.
//
// The returned assignment aliases scr.winAssign and is overwritten by the
// next sweep on the same scratch. WindowTrace rows are built only when
// Options.RecordTrace is set — with tracing off the sweep performs no
// trace-only work (no per-window duration sums, no assignment maps, no
// slice growth) and returns a nil trace.
//
// Cancellation: the sweep checks ctx before each window (and
// chooseDesignPoints checks it between sequence positions), returning
// early with whatever it has evaluated so far. Callers that care must
// check ctx themselves afterwards — a partially swept result is only
// used by RunContext when the context is still live.
//
//battsched:hotpath
func (s *Scheduler) evaluateWindows(ctx context.Context, L []int, scr *runScratch) (bestAssign []int, bestCost float64, windows []WindowTrace) {
	start := s.m - 2
	if start < 0 {
		start = 0
	}
	for s.columnTime(start) > s.deadline+timeEps {
		if start == 0 {
			// Unreachable when Run's feasibility pre-check passed,
			// but kept for direct callers.
			return nil, math.Inf(1), nil
		}
		start--
	}
	lo := 0
	switch s.opt.Windows {
	case WindowFirstFeasible:
		lo = start
	case WindowFullOnly:
		start = 0
	}
	bestCost = math.Inf(1)
	for ws := start; ws >= lo; ws-- {
		if ctx.Err() != nil {
			return bestAssign, bestCost, windows
		}
		assign, ok := s.chooseDesignPoints(ctx, L, ws, scr)
		cost := math.Inf(1)
		if ok {
			cost = s.costOfInto(L, assign, scr.profile[:0])
			if cost < bestCost {
				bestCost = cost
				copy(scr.winAssign, assign)
				bestAssign = scr.winAssign
			}
		}
		if s.opt.RecordTrace {
			wt := WindowTrace{WindowStart: ws + 1, Feasible: ok, Cost: cost}
			if ok {
				wt.Duration = s.totalTime(assign)
				wt.Assignment = s.assignmentMap(assign)
			}
			windows = append(windows, wt)
		}
	}
	return bestAssign, bestCost, windows
}

// columnTime returns CT(j) for 0-based column j.
//
//battsched:hotpath
func (s *Scheduler) columnTime(j int) float64 {
	var t float64
	for i := 0; i < s.n; i++ {
		t += s.d[i][j]
	}
	return t
}

// totalTime returns the completion time of an assignment.
//
//battsched:hotpath
func (s *Scheduler) totalTime(assign []int) float64 {
	var t float64
	for i := 0; i < s.n; i++ {
		t += s.d[i][assign[i]]
	}
	return t
}

// chooseDesignPoints is the paper's ChooseDesignPoints: fix the last task
// in the sequence to its lowest-power point, then walk backwards through
// the sequence; for every task, tag each design point within the window
// [ws..m-1], score it with the suitability B = SR+CR+ENR+CIF+DPF, and fix
// the task at the minimum-B point. Free (not yet processed) tasks are held
// at their lowest-power points; the DPF computation escalates them
// hypothetically to test deadline feasibility.
//
// The reference pass (refChooseDesignPoints) re-escalates from scratch for
// every tagged design point, rescanning the full Energy Vector per
// escalation step and re-deriving ENR/CIF over the whole sequence. This
// pass exploits two structural facts instead:
//
//  1. The escalation move sequence is candidate-independent. Free tasks
//     escalate strictly in Energy Vector order, each from the lowest-power
//     column m-1 up to the window start ws, so every candidate's escalated
//     state is a prefix of one fixed trajectory; candidates differ only in
//     where along it they stop. The trajectory's completion-time deltas
//     depend only on each moving task's own row, so they are materialized
//     once per window and spliced as tasks leave the free set
//     (fillTrajectory); a candidate evaluation replays them with one
//     register add per move.
//
//  2. The escalation state after k moves is a pure function of k. With
//     span = m-1-ws, ranks below k/span sit at the window start, rank
//     k/span sits k%span columns up from m-1, and higher ranks still sit
//     at m-1 — so a candidate's stop state is read closed-form from its
//     stop index (trajCur, factorsAt) instead of from walked state
//     mirrors. Only the enPos charge-energy mirror carries an escalation
//     overlay, synced per-rank to the stop point (syncEnState) so the
//     prefix fold stays a contiguous scan; the stop points are monotone
//     in j (tagging a faster point lowers the starting time, and IEEE
//     addition is monotone), so consecutive syncs touch few ranks.
//
// On top of the replay, two candidate-pruning rules cut how many
// candidates are evaluated at all:
//
//   - Dominance pruning: the per-task candidate lists (Scheduler.cands,
//     precomputed in NewBase) carry only one representative of every run
//     of exact-duplicate (time, current) columns. Duplicates score
//     bit-identical suitability, and strict `b < bestB` keeps the
//     first-scanned one, so the argmin is unchanged.
//
//   - Bound skip: once a finite bestB exists, a candidate whose cheap
//     lower bound LB = SR + CR (its only terms that can be meaningfully
//     negative; see lowerBound) satisfies LB - lbSlack >= bestB - Approx
//     is skipped without evaluation. With Approx == 0 (exact mode) the
//     slack makes this provably behavior-preserving: B >= LB - lbSlack,
//     so a skipped candidate could never have passed `b < bestB`. With
//     Approx = eps > 0 every skipped candidate is within eps of the
//     running minimum, which bounds the chosen point's suitability to
//     min B + eps for the position.
//
// Float quantities are never carried by running deltas across candidates,
// because float deltas round differently than fresh sums and the
// equivalence contract (bit-identical Results, equivalence_test.go) must
// hold even for inputs where a one-ULP difference is amplified (e.g.
// ENR's normalization when Emax−Emin is tiny). Each candidate computes
// its starting completion time and escalated charge-energy as fresh
// left-to-right folds with the reference's exact operation order, and
// replays the trajectory's te deltas exactly as the reference adds them —
// so every comparison the reference makes is reproduced bit-for-bit.
// Integer state (the column occupancy counts behind DPF, the
// current-increase count behind CIF) is maintained incrementally, which
// is exact by nature.
//
// Per candidate the cost is O(n + stop index + m) — two linear folds, the
// te replay and the O(m) occupancy read — instead of the reference's
// Θ(n·m + steps·n). The returned assignment aliases scr.assign.
//
// It returns the per-task-index assignment and whether a deadline-feasible
// assignment was found (a finite B for the first sequence position implies
// feasibility, because no free tasks remain there). A canceled ctx makes
// it bail out between sequence positions with (nil, false) — each
// position is the finest cancellation grain that stays off the
// arithmetic hot path.
//
//battsched:hotpath
func (s *Scheduler) chooseDesignPoints(ctx context.Context, L []int, ws int, scr *runScratch) ([]int, bool) {
	n, m := s.n, s.m
	assign := scr.assign
	for i := range assign {
		assign[i] = m - 1
	}
	// posOf lets the trajectory walk find a task's sequence position.
	posOf := scr.posOf
	for p, ti := range L {
		posOf[ti] = p
	}

	// The last task is fixed to the lowest-power design point (the
	// paper's S(n,m) = 1); Tsum tracks the total time of fixed tasks.
	tsum := s.d[L[n-1]][m-1]
	if n == 1 {
		return assign, tsum <= s.deadline+timeEps
	}

	s.primeScratch(L, assign, scr)
	// The free tasks (sequence positions before the first processed
	// position n-2) in Energy-Vector order, as a compact array plus its
	// inverse. evSeq fully determines every escalated state: free tasks
	// escalate strictly in this order, each exactly span = m-1-ws
	// columns, so after k moves ranks below k/span sit at the window
	// start, rank k/span sits k%span columns up, and the rest still sit
	// at m-1 — the closed form every state read below uses in place of
	// walked mirrors.
	scr.nFree = 0
	for _, q := range s.energyOrder {
		if posOf[q] >= n-2 {
			continue
		}
		scr.rankOf[q] = scr.nFree
		scr.evSeq[scr.nFree] = q
		scr.nFree++
	}
	// Running state behind the candidate lower bound (see lowerBound):
	// the charge-energy of the already-fixed suffix, and the sum of
	// each free task's minimum charge-energy over the window's columns.
	scr.fixedEfSum = s.ef[L[n-1]*m+m-1]
	scr.sminFree = 0
	for _, q := range scr.evSeq[:scr.nFree] {
		scr.sminFree += s.minEfFrom[q*m+ws]
	}
	s.fillTrajectory(ws, scr)
	span := m - 1 - ws
	// Per-task full-escalation jump deltas for incAtRank (preparePosition).
	// A jump delta depends only on the task's neighbors' status — frozen
	// ranks below it, base above, fixed suffix — which splices preserve
	// (relative rank order is stable), so the cache stays valid except for
	// the one task whose sequence neighbor just became the tag; that entry
	// is refreshed each position.
	if span > 0 {
		for r := 0; r < scr.nFree; r++ {
			scr.jumpOf[scr.evSeq[r]] = s.rankMoveDelta(L, posOf, n-2, ws, r, ws, scr)
		}
	}
	eps := s.opt.Approx
	audit := s.skipAudit != nil
	for pos := n - 2; pos >= 0; pos-- {
		if ctx.Err() != nil {
			return nil, false
		}
		ti := L[pos]
		s.preparePosition(L, posOf, pos, ws, scr)
		// The completion-time fold's prefix before ti is candidate-
		// independent (teNow only changes between positions), so fold it
		// once here; each candidate folds only the substituted entry and
		// the suffix, with the reference's exact operation order.
		tePre := sumFloats(scr.teNow[:ti])
		nc := 0
		for _, jj := range s.cands[ti] {
			j := int(jj)
			if j < ws {
				break
			}
			scr.candJ[nc] = j
			nc++
		}
		bestB := math.Inf(1)
		bestJ := -1
		// The first candidate (always column m-1, the largest starting
		// completion time) evaluates solo: its replay generates the
		// position's trajectory, and — stop points being monotone —
		// every later candidate stops at or before its stop, so no move
		// is ever generated again this position.
		if b := s.suitability(L, posOf, tsum, tePre, pos, ti, scr.candJ[0], ws, scr); b < bestB {
			bestB = b
			bestJ = scr.candJ[0]
		}
		// Bound-skip pass: drop candidates certified unable to beat
		// bestB (by more than the approximation epsilon, if set). With
		// the audit hook armed, skipped candidates stay in the batch
		// (flagged) so the hook can score them exactly; batching extra
		// candidates never changes the others' folds.
		nb := 1
		for c := 1; c < nc; c++ {
			j := scr.candJ[c]
			lb := s.lowerBound(tsum, pos, ti, j, scr)
			skipNow := bestJ >= 0 && lb <= lbGuardMax && lb-s.lbSlack >= bestB-eps
			if skipNow && !audit {
				continue
			}
			scr.candJ[nb] = j
			scr.candLB[nb] = lb
			scr.candSkip[nb] = skipNow
			nb++
		}
		// One pass over the cache-hot trajectory computes every surviving
		// candidate's stop point and completion time bit-exactly.
		if nb > 1 {
			s.batchStops(tePre, ti, nb, scr)
		}
		for c := 1; c < nb; c++ {
			j := scr.candJ[c]
			lb := scr.candLB[c]
			// Re-check the bound against the updated bestB: a candidate
			// that survived the pass above may be provably beaten now.
			if scr.candSkip[c] || (bestJ >= 0 && lb <= lbGuardMax && lb-s.lbSlack >= bestB-eps) {
				if audit {
					s.skipAudit(pos, j, lb-s.lbSlack, bestB,
						s.suitabilityAt(L, posOf, tsum, pos, ti, ws, c, scr))
				}
				continue
			}
			if b := s.suitabilityAt(L, posOf, tsum, pos, ti, ws, c, scr); b < bestB {
				bestB = b
				bestJ = j
			}
		}
		// Rewind the enPos escalation overlay to the base before the next
		// position (the free set shrinks and the frozen task's entry is
		// rewritten by fixTask).
		s.syncEnState(posOf, ws, 0, scr)
		if bestJ < 0 || math.IsInf(bestB, 1) {
			return nil, false
		}
		s.fixTask(pos, ti, bestJ, scr)
		tsum += s.d[ti][bestJ]
		if pos > 0 {
			// Drop L[pos-1] from the free set: splice it out of evSeq and
			// the trajectory (its span-block of deltas) and shift the
			// later ranks down.
			q := L[pos-1]
			r := scr.rankOf[q]
			copy(scr.evSeq[r:scr.nFree-1], scr.evSeq[r+1:scr.nFree])
			if span > 0 {
				copy(scr.teDelta[r*span:(scr.nFree-1)*span], scr.teDelta[(r+1)*span:scr.nFree*span])
			}
			scr.nFree--
			for x := r; x < scr.nFree; x++ {
				scr.rankOf[scr.evSeq[x]]--
			}
			scr.sminFree -= s.minEfFrom[q*m+ws]
		}
	}
	return assign, s.totalTime(assign) <= s.deadline+timeEps
}

// lbGuardMax guards the bound skip against pathological inputs: the
// B >= LB - lbSlack argument budgets the fold-rounding slack for partial
// sums of magnitude up to 16 (each normalized suitability term spans
// about [0,1], so real inputs sit far below it); candidates with a
// larger LB are simply always evaluated.
const lbGuardMax = 16

// lowerBound computes a certified lower bound on a candidate's
// suitability B from O(1) state:
//
//   - SR and CR use the exact expressions and accumulation order
//     suitability uses;
//   - ENR is bounded through the escalated charge-energy: whatever the
//     stop point, every free task sits somewhere in the window's
//     columns, so en >= sminFree + the tag's energy + the fixed
//     suffix's energy (in real arithmetic; lbSlack budgets the fold
//     rounding). The bound term may be negative — it is added
//     unclamped, which only weakens LB and never unsoundly strengthens
//     it;
//   - CIF is bounded through incMin, a certified lower bound on the
//     current-increase count at every trajectory state (see
//     preparePosition): inc >= incMin - 2 (the tag flips at most two
//     adjacent pairs), and integer-to-float conversion and division by
//     the same positive constant are monotone, so the bound is exact
//     with no slack. The count is non-negative, so the term is clamped
//     at zero;
//   - DPF is non-negative except at pos == 0, covered by lbSlack.
//
// B >= LB - lbSlack holds for every candidate the reference scores (see
// SchedulerBase.Scheduler for the slack budget), which is what makes
// skipping on LB - lbSlack >= bestB - eps exact for eps == 0 and
// eps-bounded otherwise.
//
//battsched:hotpath
func (s *Scheduler) lowerBound(tsum float64, pos, ti, j int, scr *runScratch) float64 {
	d := s.deadline
	var b float64
	f := s.opt.Factors
	if f.Has(FactorSR) {
		b += (d - (tsum + s.df[ti*s.m+j])) / d
	}
	if f.Has(FactorCR) {
		cr := 0.0
		if s.iMax > s.iMin {
			cr = (s.cf[ti*s.m+j] - s.iMin) / (s.iMax - s.iMin)
		}
		b += cr
	}
	if f.Has(FactorENR) && s.eMax > s.eMin {
		en := scr.sminFree + s.ef[ti*s.m+j] + scr.fixedEfSum
		b += (en - s.eMin) / (s.eMax - s.eMin)
	}
	if f.Has(FactorCIF) && s.n > 1 {
		if inc := scr.incMin - 2; inc > 0 {
			b += float64(inc) / float64(s.n-1)
		}
	}
	return b
}

// batchStops computes the stop point, final completion time and
// exhaustion flag for candidates candJ[1..nb) by replaying each against
// the position's trajectory deltas (cache-hot after the solo candidate's
// replay, which has the largest stop). Each candidate's completion time
// is exactly the fold the reference performs — fresh start fold, then
// the per-move deltas in order, accumulated in a register — so the
// recorded stops and times are bit-identical to the reference's
// escalation.
//
//battsched:hotpath
func (s *Scheduler) batchStops(tePre float64, ti, nb int, scr *runScratch) {
	d := s.deadline
	m := s.m
	deltas := scr.teDelta
	nm := scr.nMoves
	for c := 1; c < nb; c++ {
		te := tePre
		te += s.df[ti*m+scr.candJ[c]]
		for _, x := range scr.teNow[ti+1:] {
			te += x
		}
		k := 0
		exh := false
		for te > d+timeEps {
			if k == nm {
				exh = true
				break
			}
			te += deltas[k]
			k++
		}
		scr.candTe[c] = te
		scr.candStop[c] = k
		scr.candExh[c] = exh
	}
}

// primeScratch establishes the incremental-evaluation invariants for a
// backward pass over the base state in assign: incBase is the current-
// increase count of assign, and the curPos/enPos/teNow value mirrors
// describe assign (free tasks at m-1, fixed at chosen — they track the
// base state only; escalated states are read closed-form, see trajCur).
//
//battsched:hotpath
func (s *Scheduler) primeScratch(L, assign []int, scr *runScratch) {
	m := s.m
	scr.incBase = s.incOf(L, assign)
	for p, ti := range L {
		scr.curPos[p] = s.cf[ti*m+assign[ti]]
		scr.enPos[p] = s.ef[ti*m+assign[ti]]
	}
	for i := 0; i < s.n; i++ {
		scr.teNow[i] = s.df[i*m+assign[i]]
	}
	scr.nMoves = 0
	scr.stateFull = 0
	scr.stateRem = 0
}

// incOf returns the number of adjacent sequence pairs at which current
// strictly increases (the CIF numerator) for order L under assign.
//
//battsched:hotpath
func (s *Scheduler) incOf(L, assign []int) int {
	inc := 0
	prev := 0.0
	for k, ti := range L {
		c := s.cur[ti][assign[ti]]
		if k > 0 && prev < c {
			inc++
		}
		prev = c
	}
	return inc
}

// fillTrajectory materializes the window's full escalation trajectory
// for the current free set: rank r's span = m-1-ws moves occupy
// teDelta[r*span:(r+1)*span], move i leaving column m-1-i, each delta
// exactly the completion-time change the reference adds. The deltas
// depend only on the moving task's own row — never on neighbors — so
// between positions the trajectory is maintained by splicing the newly
// fixed task's block out (see chooseDesignPoints) and this fill runs
// once per window.
//
//battsched:hotpath
func (s *Scheduler) fillTrajectory(ws int, scr *runScratch) {
	m := s.m
	span := m - 1 - ws
	if span <= 0 {
		return
	}
	k := 0
	for r := 0; r < scr.nFree; r++ {
		q := scr.evSeq[r]
		dfRow := s.df[q*m : q*m+m]
		oldD := dfRow[m-1]
		for p := m - 1; p > ws; p-- {
			newD := dfRow[p-1]
			scr.teDelta[k] = newD - oldD
			oldD = newD
			k++
		}
	}
}

// preparePosition arms the per-position trajectory state: the position's
// move count (every one of its pos free ranks escalates exactly span
// columns), the invalidated charge-energy memo, and the untagged
// current-increase count after each full rank escalation (incAtRank).
// The jump delta of a full escalation needs only the rank's endpoint
// columns: the escalating task's sequence neighbors hold still for its
// whole span — lower ranks are already frozen at the window start,
// higher ranks have not moved — so only the task's two adjacent pairs
// change, and intermediate columns cancel out. incMin is a sound lower
// bound on the increase count at every trajectory state, full or
// partial: a partially escalated rank differs from its incAtRank state
// in at most its own two pairs, hence the -2.
//
//battsched:hotpath
func (s *Scheduler) preparePosition(L, posOf []int, pos, ws int, scr *runScratch) {
	span := s.m - 1 - ws
	if span < 0 {
		span = 0
	}
	scr.nMoves = pos * span
	scr.enPrefixK = -1
	inc := scr.incBase
	scr.incAtRank[0] = inc
	minInc := inc
	if span > 0 && pos > 0 {
		// The last free task's right neighbor just became the tag (read
		// at its base column); every other cached jump delta is still
		// valid — splices preserve relative rank order and no other
		// neighbor changed status.
		qLast := L[pos-1]
		scr.jumpOf[qLast] = s.rankMoveDelta(L, posOf, pos, ws, scr.rankOf[qLast], ws, scr)
		for r := 0; r < pos; r++ {
			inc += scr.jumpOf[scr.evSeq[r]]
			scr.incAtRank[r+1] = inc
			if inc < minInc {
				minInc = inc
			}
		}
	}
	scr.incMin = minInc - 2
}

// rankMoveDelta returns the change to the untagged current-increase
// count from rank r's task moving from its base column m-1 to toCol,
// with ranks below r frozen at the window start and higher ranks at the
// base — the state in which the trajectory escalates rank r. Only the
// task's two adjacent sequence pairs can change; the neighbor currents
// are read closed-form (trajCur).
//
//battsched:hotpath
func (s *Scheduler) rankMoveDelta(L, posOf []int, pos, ws, r, toCol int, scr *runScratch) int {
	m := s.m
	q := scr.evSeq[r]
	oldC := s.cf[q*m+m-1]
	newC := s.cf[q*m+toCol]
	delta := 0
	pq := posOf[q]
	if pq > 0 {
		left := s.trajCur(L, pos, ws, r, m-1, pq-1, scr)
		if left < oldC {
			delta--
		}
		if left < newC {
			delta++
		}
	}
	if pq < s.n-1 {
		right := s.trajCur(L, pos, ws, r, m-1, pq+1, scr)
		if oldC < right {
			delta--
		}
		if newC < right {
			delta++
		}
	}
	return delta
}

// trajCur returns the current draw of the task at sequence position p2
// in the untagged trajectory state where ranks below r are fully
// escalated to the window start, rank r sits at column pcol, and higher
// ranks still sit at m-1. Positions at or after pos (the tagged task at
// its base column and the fixed suffix) read the base mirror, which is
// exact for them in every trajectory state.
//
//battsched:hotpath
func (s *Scheduler) trajCur(L []int, pos, ws, r, pcol, p2 int, scr *runScratch) float64 {
	if p2 >= pos {
		return scr.curPos[p2]
	}
	u := L[p2]
	ru := scr.rankOf[u]
	switch {
	case ru < r:
		return s.cf[u*s.m+ws]
	case ru > r:
		return s.cf[u*s.m+s.m-1]
	default:
		return s.cf[u*s.m+pcol]
	}
}

// fixTask commits task ti (sequence position pos) to column j: the working
// assignment, the value mirrors, and the increase-count base absorb the
// change in O(1) (only the two sequence pairs adjacent to pos can change
// the increase count).
//
//battsched:hotpath
func (s *Scheduler) fixTask(pos, ti, j int, scr *runScratch) {
	base := ti*s.m + j
	oldC := scr.curPos[pos]
	newC := s.cf[base]
	delta := 0
	if pos > 0 {
		left := scr.curPos[pos-1]
		if left < oldC {
			delta--
		}
		if left < newC {
			delta++
		}
	}
	if pos < s.n-1 {
		right := scr.curPos[pos+1]
		if oldC < right {
			delta--
		}
		if newC < right {
			delta++
		}
	}
	scr.incBase += delta
	scr.curPos[pos] = newC
	scr.enPos[pos] = s.ef[base]
	scr.teNow[ti] = s.df[base]
	scr.assign[ti] = j
}

// suitability computes B = SR + CR + ENR + CIF + DPF for tagging task ti
// (at sequence position pos) with design point j, given the fixed time sum
// tsum and the position's trajectory in scr. A +Inf result marks a
// deadline-violating choice.
//
//battsched:hotpath
func (s *Scheduler) suitability(L, posOf []int, tsum, tePre float64, pos, ti, j, ws int, scr *runScratch) float64 {
	enr, cif, dpf := s.calculateDPF(L, posOf, tePre, pos, ti, j, ws, scr)
	return s.combineB(tsum, ti, j, enr, cif, dpf)
}

// suitabilityAt computes the same B as suitability for candidate index c,
// reading its stop point, completion time and exhaustion flag from the
// batchStops pass instead of replaying the trajectory.
//
//battsched:hotpath
func (s *Scheduler) suitabilityAt(L, posOf []int, tsum float64, pos, ti, ws, c int, scr *runScratch) float64 {
	j := scr.candJ[c]
	enr, cif, dpf := s.factorsAt(L, posOf, scr.candTe[c], pos, ti, j, ws, scr.candStop[c], scr.candExh[c], scr)
	return s.combineB(tsum, ti, j, enr, cif, dpf)
}

// combineB folds the suitability terms in the reference's order, gating
// each on the active factor set. A +Inf DPF (deadline unreachable) makes
// the whole score +Inf regardless of the factor set, exactly as the
// reference treats infeasible candidates.
//
//battsched:hotpath
func (s *Scheduler) combineB(tsum float64, ti, j int, enr, cif, dpf float64) float64 {
	if math.IsInf(dpf, 1) {
		return math.Inf(1)
	}
	d := s.deadline
	sr := (d - (tsum + s.df[ti*s.m+j])) / d
	cr := 0.0
	if s.iMax > s.iMin {
		cr = (s.cf[ti*s.m+j] - s.iMin) / (s.iMax - s.iMin)
	}
	var b float64
	f := s.opt.Factors
	if f.Has(FactorSR) {
		b += sr
	}
	if f.Has(FactorCR) {
		b += cr
	}
	if f.Has(FactorENR) {
		b += enr
	}
	if f.Has(FactorCIF) {
		b += cif
	}
	if f.Has(FactorDPF) {
		b += dpf
	}
	return b
}

// calculateDPF is the paper's CalculateDPF plus CalculateFactors: starting
// from the tagged state (fixed tasks at their chosen points, task ti tagged
// at j, free tasks at lowest power), escalate free tasks one design-point
// step at a time — always the free task with the smallest average energy —
// until the deadline is met or no free task can move. Tasks reaching the
// window's highest-power column are frozen. The returned DPF is the
// design-point fraction of the escalated state (+Inf when the deadline
// cannot be met); ENR and CIF are computed on the same escalated state.
//
// The escalation itself is a replay of the position's lazily generated
// trajectory (see chooseDesignPoints): the starting completion time is a
// fresh task-index-order fold with ti substituted to j — the reference's
// exact operation sequence, with the candidate-independent prefix before
// ti folded once per position (tePre) — and the per-move deltas are
// added exactly as the reference adds them, generating new moves only
// when the replay outruns the trajectory so far, so the stop point falls
// on the same move for the same reasons, bit for bit. Freeze bookkeeping
// needs no replay: a frozen task never changes the state the factors
// read, only the probe order, which the trajectory already encodes.
//
//battsched:hotpath
func (s *Scheduler) calculateDPF(L, posOf []int, tePre float64, pos, ti, j, ws int, scr *runScratch) (enr, cif, dpf float64) {
	m := s.m
	d := s.deadline

	// Starting completion time of the tagged state: prefix fold, the
	// substituted tag, then the suffix — the same left-to-right
	// operation sequence as folding the whole substituted mirror.
	te := tePre
	te += s.df[ti*m+j]
	for _, x := range scr.teNow[ti+1:] {
		te += x
	}

	// Replay the trajectory's deltas to the candidate's stop point.
	k := 0
	nm := scr.nMoves
	deltas := scr.teDelta
	exhausted := false
	for te > d+timeEps {
		if k == nm {
			// No free task can move: the deadline cannot be met.
			exhausted = true
			break
		}
		te += deltas[k]
		k++
	}
	return s.factorsAt(L, posOf, te, pos, ti, j, ws, k, exhausted, scr)
}

// syncEnState walks the enPos escalation overlay to trajectory state k:
// ranks below k/span sit at the window start, rank k/span sits k%span
// columns up from the base, the rest at the base column m-1. Consecutive
// candidates' stop points are close, so the walk touches only the ranks
// between the two states — O(|Δ| + 1) per call — and the charge-energy
// prefix fold stays a contiguous scan of enPos.
//
//battsched:hotpath
func (s *Scheduler) syncEnState(posOf []int, ws, k int, scr *runScratch) {
	span := s.m - 1 - ws
	full, rem := 0, 0
	if span > 0 {
		full, rem = k/span, k%span
	}
	if scr.stateFull == full && scr.stateRem == rem {
		return
	}
	m := s.m
	F := scr.stateFull
	if scr.stateRem > 0 {
		// Reset the old partial rank to its base column first, leaving a
		// clean "ranks below F at ws, rest at base" state to walk from.
		q := scr.evSeq[F]
		scr.enPos[posOf[q]] = s.ef[q*m+m-1]
	}
	for F < full {
		q := scr.evSeq[F]
		scr.enPos[posOf[q]] = s.ef[q*m+ws]
		F++
	}
	for F > full {
		F--
		q := scr.evSeq[F]
		scr.enPos[posOf[q]] = s.ef[q*m+m-1]
	}
	if rem > 0 {
		q := scr.evSeq[full]
		scr.enPos[posOf[q]] = s.ef[q*m+m-1-rem]
	}
	scr.stateFull = full
	scr.stateRem = rem
}

// factorsAt computes ENR, CIF and DPF for tagging (ti at pos) with j when
// the escalation stops after k trajectory moves with final completion time
// te (exhausted marks a trajectory that ran dry above the deadline). The
// escalated state is read closed-form from the stop point: with
// span = m-1-ws, ranks below k/span sit at the window start, rank k/span
// sits k%span columns up from m-1, higher ranks at m-1. The charge-energy
// fold substitutes the tag into the sequence-order fold; the increase
// count adds the tag's two adjacent pairs onto the trajectory's
// precomputed count. The fold's prefix over the free positions (before
// pos) depends only on the stop point k, so it is memoized per
// (position, k) and computed as a contiguous scan of the enPos overlay
// after an O(|Δ|) sync (syncEnState); the substituted tag and the fixed
// suffix are folded fresh, preserving the reference's operation order.
//
//battsched:hotpath
func (s *Scheduler) factorsAt(L, posOf []int, te float64, pos, ti, j, ws, k int, exhausted bool, scr *runScratch) (enr, cif, dpf float64) {
	m := s.m
	d := s.deadline
	span := m - 1 - ws
	full, rem := 0, 0
	if span > 0 {
		full, rem = k/span, k%span
	}
	pcol := m - 1 - rem // the partially escalated rank's column

	if scr.enPrefixK != k {
		s.syncEnState(posOf, ws, k, scr)
		scr.enPrefixVal = sumFloats(scr.enPos[:pos])
		scr.enPrefixK = k
	}
	en := scr.enPrefixVal
	en += s.ef[ti*m+j]
	for _, x := range scr.enPos[pos+1:] {
		en += x
	}
	// The untagged increase count at the stop state: full rank jumps are
	// precomputed (incAtRank); a partially escalated rank adjusts by its
	// own two pairs, exactly as if it had jumped straight to pcol —
	// intermediate columns cancel.
	inc := scr.incAtRank[full]
	if rem > 0 {
		inc += s.rankMoveDelta(L, posOf, pos, ws, full, pcol, scr)
	}
	inc += s.tagIncDelta(L, pos, ti, j, ws, full, pcol, scr)
	enr, cif = s.factorsFrom(en, inc)
	if exhausted {
		return enr, cif, math.Inf(1)
	}

	if pos == 0 {
		// Processing the first task in the sequence: no free tasks
		// remain, so the paper replaces DPF with the slack ratio to
		// emphasize using up the slack.
		dpf = (d - te) / d
	} else {
		// Weighted column occupancy of the free tasks, read closed-form
		// from (full, rem): full tasks at the window start, one at pcol
		// when rem > 0, the rest at m-1 (weight zero, outside the loop's
		// column range). Columns are weighted window-relative: the
		// window's highest-power column ws weighs 1, decreasing linearly
		// to 0 at the lowest-power column m-1 (Equation 2 when ws = 0;
		// see DESIGN.md §2).
		ufac := span
		if ufac > 0 {
			f := 1.0 / float64(ufac)
			x := float64(pos)
			for w := 0; w < ufac; w++ {
				col := w // DPFAbsolute: literal columns 0..ufac-1
				if s.opt.DPFColumns == DPFWindowRelative {
					col = ws + w
				}
				cnt := 0
				if col == ws {
					cnt += full
				}
				if rem > 0 && col == pcol {
					cnt++
				}
				if cnt > 0 {
					dpf += float64(ufac-w) * f * float64(cnt) / x
				}
			}
		}
	}
	return enr, cif, dpf
}

// tagIncDelta returns the change to the current-increase count from
// tagging task ti (sequence position pos) at column j, relative to its
// base column m-1, against the untagged escalated state where ranks
// below full sit at the window start and rank full at pcol (closed-form,
// see trajCur). The right neighbor is always fixed, so it reads the base
// mirror directly.
//
//battsched:hotpath
func (s *Scheduler) tagIncDelta(L []int, pos, ti, j, ws, full, pcol int, scr *runScratch) int {
	m := s.m
	oldC := s.cf[ti*m+m-1]
	newC := s.cf[ti*m+j]
	delta := 0
	if pos > 0 {
		left := s.trajCur(L, pos, ws, full, pcol, pos-1, scr)
		if left < oldC {
			delta--
		}
		if left < newC {
			delta++
		}
	}
	if pos < s.n-1 {
		right := scr.curPos[pos+1]
		if oldC < right {
			delta--
		}
		if newC < right {
			delta++
		}
	}
	return delta
}

// sumFloats folds the slice left to right. The hot path sums the teNow
// (task-index order, matching totalTime) and enPos (sequence order,
// matching refFactorsOf) mirrors through it, so both sums are bit-exact
// replicas of the reference's.
//
//battsched:hotpath
func sumFloats(xs []float64) float64 {
	var t float64
	for _, x := range xs {
		t += x
	}
	return t
}

// factorsFrom finishes the paper's CalculateFactors from the escalated
// state's charge-energy sum and the incrementally maintained
// current-increase count.
//
//battsched:hotpath
func (s *Scheduler) factorsFrom(en float64, inc int) (enr, cif float64) {
	if s.n > 1 {
		cif = float64(inc) / float64(s.n-1)
	}
	if s.eMax > s.eMin {
		enr = (en - s.eMin) / (s.eMax - s.eMin)
	}
	return enr, cif
}

package core

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/taskgraph"
)

// TestRunContextCanceledBeforeStart: a dead context yields ctx.Err()
// without any scheduling work.
func TestRunContextCanceledBeforeStart(t *testing.T) {
	s, err := New(taskgraph.G3(), 230, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext on dead ctx = %v, want context.Canceled", err)
	}
	if _, err := RunMultiStartContext(ctx, s, MultiStartOptions{Restarts: 4, Seed: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunMultiStartContext on dead ctx = %v, want context.Canceled", err)
	}
}

// TestRunContextMatchesRun: a live context changes nothing — the result
// is bit-identical to the context-free path, for the plain run and the
// multi-start search, sequential and parallel alike.
func TestRunContextMatchesRun(t *testing.T) {
	for _, g := range []*taskgraph.Graph{taskgraph.G2(), taskgraph.G3()} {
		s, err := New(g, g.MinTotalTime()*1.8, Options{})
		if err != nil {
			t.Fatal(err)
		}
		plain, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		withCtx, err := s.RunContext(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain, withCtx) {
			t.Fatalf("RunContext differs from Run:\n%+v\n%+v", plain, withCtx)
		}

		ms := MultiStartOptions{Restarts: 6, Seed: 11}
		seq, err := RunMultiStart(s, ms)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			opts := ms
			opts.Workers = workers
			got, err := RunMultiStartContext(context.Background(), s, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seq, got) {
				t.Fatalf("workers=%d: RunMultiStartContext differs from RunMultiStart", workers)
			}
		}
	}
}

// TestRunContextAbortsMidSearch: cancellation during the search (forced
// by a deadline that expires almost immediately on a multi-start run
// with a large restart budget) surfaces the context error promptly
// instead of computing the remaining restarts.
func TestRunContextAbortsMidSearch(t *testing.T) {
	s, err := New(taskgraph.G3(), 230, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()

	start := time.Now()
	// ~4096 restarts ≈ 1s of sequential work; the 2ms deadline must cut
	// it far shorter than that.
	_, err = RunMultiStartContext(ctx, s, MultiStartOptions{Restarts: 4096, Seed: 3})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v, want prompt abort", elapsed)
	}
}

// Package core implements the paper's contribution: the iterative
// battery-aware task sequencing and design-point allocation algorithm
// (BatteryAwareSQNDPAllocation, Figures 1–2 of Khan & Vemuri, DATE 2005).
//
// Each iteration (a) runs a window-masked backward pass that assigns every
// task a design point by minimizing the suitability score
// B = SR + CR + ENR + CIF + DPF, (b) evaluates the battery cost of the
// resulting schedule with the Rakhmatov–Vrudhula model, and (c) re-sequences
// the tasks by the subgraph current weights of Equation 4. The loop stops
// as soon as an iteration fails to improve on the previous one, so a valid
// schedule is available after every iteration — the property the paper
// emphasizes for on-device use.
//
//battlint:deterministic
package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/battery"
)

// InitialWeight selects the priority used by the initial list schedule
// (the paper's SequenceDecEnergy).
type InitialWeight int

const (
	// WeightAvgCurrent ranks ready tasks by mean current over their
	// design points. The paper's text says "average energy", but its
	// printed first sequence S1 for G3 is reproduced exactly by average
	// current (and not by average energy), so this is the default. See
	// DESIGN.md §2.
	WeightAvgCurrent InitialWeight = iota
	// WeightAvgEnergy ranks ready tasks by mean charge-energy (I·t)
	// over their design points — the paper's literal wording, kept for
	// ablation.
	WeightAvgEnergy
)

func (w InitialWeight) String() string {
	switch w {
	case WeightAvgCurrent:
		return "avg-current"
	case WeightAvgEnergy:
		return "avg-energy"
	default:
		return fmt.Sprintf("InitialWeight(%d)", int(w))
	}
}

// FactorSet is a bitmask of suitability terms, used by ablation studies to
// switch individual terms of B off.
type FactorSet uint8

// Suitability terms of B = SR + CR + ENR + CIF + DPF.
const (
	FactorSR FactorSet = 1 << iota
	FactorCR
	FactorENR
	FactorCIF
	FactorDPF

	// AllFactors enables every term (the paper's configuration).
	AllFactors = FactorSR | FactorCR | FactorENR | FactorCIF | FactorDPF
)

// Has reports whether f includes t.
func (f FactorSet) Has(t FactorSet) bool { return f&t != 0 }

// WindowPolicy selects which windows the per-iteration search evaluates.
type WindowPolicy int

const (
	// WindowSweepAll evaluates every window from the first feasible
	// start down to the full design space (the paper's EvaluateWindows).
	WindowSweepAll WindowPolicy = iota
	// WindowFirstFeasible evaluates only the narrowest feasible window;
	// used by ablations to measure what the sweep buys.
	WindowFirstFeasible
	// WindowFullOnly evaluates only the full window (all design
	// points); used by ablations.
	WindowFullOnly
)

func (w WindowPolicy) String() string {
	switch w {
	case WindowSweepAll:
		return "sweep-all"
	case WindowFirstFeasible:
		return "first-feasible"
	case WindowFullOnly:
		return "full-only"
	default:
		return fmt.Sprintf("WindowPolicy(%d)", int(w))
	}
}

// Options configures the scheduler. The zero value reproduces the paper's
// configuration (beta 0.273, ten series terms, average-current initial
// order, full window sweep, all suitability terms, resequencing on).
type Options struct {
	// Beta is the Rakhmatov–Vrudhula diffusion parameter
	// (min^-1/2); 0 selects the paper's 0.273. Ignored if Model or
	// Battery is set.
	Beta float64
	// SeriesTerms is the number of Equation-1 series terms; 0 selects
	// the paper's 10. Ignored if Model or Battery is set.
	SeriesTerms int
	// Battery declaratively selects the battery model used as the cost
	// function: a validated (kind, parameters) spec resolved exactly
	// once per scheduler construction, never per window. Unlike Model
	// it has canonical content, so spec-based jobs stay fully cacheable
	// and can travel over the wire (the "battery" JSON object). Nil
	// falls back to the Rakhmatov model from Beta/SeriesTerms — the
	// default spec is bit-identical to that path. Setting both Battery
	// and Model is an error.
	Battery *battery.Spec
	// Model overrides the battery model used as the cost function with
	// an opaque interface value.
	//
	// Deprecated: prefer Battery. A Model has no canonical content, so
	// jobs carrying one cannot be cached or serialized; the field is
	// kept working for callers with hand-written Model implementations.
	Model battery.Model
	// InitialOrder selects the first-iteration sequencing weight.
	InitialOrder InitialWeight
	// MaxIterations caps the improvement loop as a safety net; 0 means
	// 100. The paper's loop terminates on its own (costs strictly
	// decrease while it continues), so the cap is rarely reached.
	MaxIterations int
	// RecordTrace attaches a full per-iteration trace (sequences,
	// per-window costs, assignments) to the result — the data behind
	// the paper's Tables 2 and 3.
	RecordTrace bool
	// Factors selects the active suitability terms; 0 means all.
	Factors FactorSet
	// Windows selects the window evaluation policy.
	Windows WindowPolicy
	// DisableResequencing skips the Equation-4 weighted resequencing,
	// reducing the algorithm to a single window-search pass (ablation).
	DisableResequencing bool
	// DPFColumns selects how the Fig. 2 pseudocode's DPF column loop is
	// read (the paper is ambiguous for windows narrower than the full
	// design space; see DESIGN.md §2).
	DPFColumns DPFColumnRule
	// Parallel evaluates the per-iteration windows concurrently. The
	// result is identical to the sequential path; only wall-clock time
	// changes (useful on desktop hosts for large graphs — the paper's
	// embedded target would keep this off).
	Parallel bool
	// Approx enables the documented approximation mode: a non-negative
	// epsilon that relaxes the backward pass's candidate bound-skip.
	// With Approx = eps > 0, a candidate design point is skipped without
	// full evaluation when a conservative lower bound on its suitability
	// proves it cannot beat the running minimum by more than eps; the
	// design point chosen at every sequence position is therefore
	// guaranteed to score within eps of that position's true minimum
	// suitability B (the per-decision quality bound — see
	// ARCHITECTURE.md "Performance" for why the greedy outer loop keeps
	// this a per-decision, not whole-schedule, bound). Zero (the
	// default) is exact mode: the same bound skips only candidates
	// provably unable to win at all, and results stay bit-identical to
	// the reference evaluators. Approx changes results, so it is hashed
	// into the content-addressed cache key — approximate and exact runs
	// never share a cache entry. Suitability terms are O(1)-normalized
	// (each spans about [0,1]), so useful epsilons are small fractions;
	// values above MaxApprox are rejected.
	Approx float64
}

// MaxApprox bounds Options.Approx. The five suitability terms are each
// normalized to about [0,1], so an epsilon of 16 already out-scores any
// candidate gap — larger values are almost certainly a units mistake.
const MaxApprox = 16

// DPFColumnRule selects the DPF column-weight interpretation.
type DPFColumnRule int

const (
	// DPFWindowRelative weights the window's highest-power column 1,
	// decreasing linearly to 0 at the lowest-power column. It reduces
	// to the paper's Equation 2 for the full window and keeps the
	// stated intent for narrower ones (default).
	DPFWindowRelative DPFColumnRule = iota
	// DPFAbsolute reads the Fig. 2 loop literally: absolute columns
	// 1..(m−WindowStart) carry the decreasing weights, even though the
	// columns below WindowStart are masked out and always empty.
	DPFAbsolute
)

func (r DPFColumnRule) String() string {
	switch r {
	case DPFWindowRelative:
		return "window-relative"
	case DPFAbsolute:
		return "absolute"
	default:
		return fmt.Sprintf("DPFColumnRule(%d)", int(r))
	}
}

// DefaultMaxIterations is the improvement-loop safety cap used when
// Options.MaxIterations is zero.
const DefaultMaxIterations = 100

// ResolveModel returns the battery model the scheduler will cost
// schedules with after defaulting: Model if set (deprecated path),
// otherwise the resolved Battery spec, otherwise a Rakhmatov model from
// Beta/SeriesTerms (paper values when zero) — itself built through the
// spec path, so a negative or NaN Beta is an error here exactly as it
// would be on the wire or in the cache key. Callers costing schedules
// outside the scheduler (baselines, reports) should use this so their
// numbers cannot drift from the iterative run's. It fails when the
// battery selection is invalid or when both Battery and Model are set.
func (o Options) ResolveModel() (battery.Model, error) {
	if o.Model != nil {
		if o.Battery != nil {
			return nil, errors.New("core: set at most one of Options.Battery and Options.Model")
		}
		return o.Model, nil
	}
	spec, _ := o.BatterySpec()
	return spec.Resolve()
}

// BatterySpec returns the canonical declarative spec of the cost
// function a run with these options uses, and ok=false when the model
// is an opaque Options.Model value no spec describes. It is what
// content-addressed caches hash: a job spelling {"beta":0.35} and one
// spelling {"battery":{"kind":"rakhmatov","beta":0.35}} canonicalize to
// the same spec and therefore share a cache entry.
func (o Options) BatterySpec() (spec battery.Spec, ok bool) {
	if o.Model != nil {
		return battery.Spec{}, false
	}
	if o.Battery != nil {
		return o.Battery.Canonical(), true
	}
	o = o.Canonical()
	return battery.Spec{Kind: battery.KindRakhmatov, Beta: o.Beta, Terms: o.SeriesTerms}, true
}

// Canonical returns a copy of o with every result-affecting scalar
// field resolved to the value the scheduler will actually use (Beta,
// SeriesTerms, MaxIterations, Factors), leaving Model and Battery
// untouched (caches hash the battery through BatterySpec instead). It
// is the form content-addressed caches hash, so a zero field and its
// explicit default produce the same key.
func (o Options) Canonical() Options {
	if o.Beta == 0 {
		o.Beta = battery.DefaultBeta
	}
	if o.SeriesTerms == 0 {
		o.SeriesTerms = battery.DefaultTerms
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = DefaultMaxIterations
	}
	if o.Factors == 0 {
		o.Factors = AllFactors
	}
	return o
}

// withDefaults resolves every default including the battery model;
// NewBase is the only caller (it surfaces the error to its caller).
func (o Options) withDefaults() (Options, error) {
	if o.Approx < 0 || o.Approx > MaxApprox || math.IsNaN(o.Approx) {
		return o, fmt.Errorf("core: Options.Approx must be in [0, %d], got %g", MaxApprox, o.Approx)
	}
	model, err := o.ResolveModel()
	if err != nil {
		return o, err
	}
	o = o.Canonical()
	// Materialize the resolved model and drop the spec so the stored
	// options carry exactly one model source.
	o.Model = model
	o.Battery = nil
	return o, nil
}

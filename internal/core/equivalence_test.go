package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/taskgraph"
)

// The equivalence suite proves the acceptance criterion of the scratch-arena
// rebuild: the optimized hot path (choose.go, scheduler.go, parallel.go)
// produces Results bit-identical to the straightforward reference
// evaluators (reference.go) on every paper fixture at every paper deadline
// and on seeded random graphs — cost, duration and energy compared as raw
// float64 bits, order, assignment and iteration count compared exactly.

// requireSameResult fails the test unless a and b are bit-identical.
func requireSameResult(t *testing.T, label string, ref, got *Result) {
	t.Helper()
	if math.Float64bits(ref.Cost) != math.Float64bits(got.Cost) {
		t.Fatalf("%s: cost %v (bits %x) != reference %v (bits %x)",
			label, got.Cost, math.Float64bits(got.Cost), ref.Cost, math.Float64bits(ref.Cost))
	}
	if math.Float64bits(ref.Duration) != math.Float64bits(got.Duration) {
		t.Fatalf("%s: duration %v != reference %v", label, got.Duration, ref.Duration)
	}
	if math.Float64bits(ref.Energy) != math.Float64bits(got.Energy) {
		t.Fatalf("%s: energy %v != reference %v", label, got.Energy, ref.Energy)
	}
	if ref.Iterations != got.Iterations {
		t.Fatalf("%s: iterations %d != reference %d", label, got.Iterations, ref.Iterations)
	}
	if len(ref.Schedule.Order) != len(got.Schedule.Order) {
		t.Fatalf("%s: order length %d != reference %d", label, len(got.Schedule.Order), len(ref.Schedule.Order))
	}
	for k := range ref.Schedule.Order {
		if ref.Schedule.Order[k] != got.Schedule.Order[k] {
			t.Fatalf("%s: order %v != reference %v", label, got.Schedule.Order, ref.Schedule.Order)
		}
	}
	if len(ref.Schedule.Assignment) != len(got.Schedule.Assignment) {
		t.Fatalf("%s: assignment size %d != reference %d", label, len(got.Schedule.Assignment), len(ref.Schedule.Assignment))
	}
	for id, j := range ref.Schedule.Assignment {
		if got.Schedule.Assignment[id] != j {
			t.Fatalf("%s: task %d assigned %d, reference %d", label, id, got.Schedule.Assignment[id], j)
		}
	}
}

// equivalenceVariants are the option sets the fixture sweep runs under —
// the paper configuration plus every knob that routes through a different
// arm of the hot path.
func equivalenceVariants() map[string]Options {
	return map[string]Options{
		"default":         {},
		"first-feasible":  {Windows: WindowFirstFeasible},
		"full-only":       {Windows: WindowFullOnly},
		"no-reseq":        {DisableResequencing: true},
		"dpf-absolute":    {DPFColumns: DPFAbsolute},
		"avg-energy-init": {InitialOrder: WeightAvgEnergy},
		"no-dpf":          {Factors: AllFactors &^ FactorDPF},
		"dpf-only":        {Factors: FactorDPF},
		"parallel":        {Parallel: true},
	}
}

// TestEquivalenceFixtures sweeps both paper graphs across all their paper
// deadlines and every option variant.
func TestEquivalenceFixtures(t *testing.T) {
	cases := []struct {
		name      string
		graph     *taskgraph.Graph
		deadlines []float64
	}{
		{"G2", taskgraph.G2(), taskgraph.G2Deadlines},
		{"G3", taskgraph.G3(), taskgraph.G3Deadlines},
	}
	for _, c := range cases {
		for _, d := range c.deadlines {
			for name, opt := range equivalenceVariants() {
				label := fmt.Sprintf("%s/d=%g/%s", c.name, d, name)
				s := mustScheduler(t, c.graph, d, opt)
				ref, err := s.refRunContext(context.Background())
				if err != nil {
					t.Fatalf("%s: reference: %v", label, err)
				}
				got, err := s.Run()
				if err != nil {
					t.Fatalf("%s: optimized: %v", label, err)
				}
				requireSameResult(t, label, ref, got)
			}
		}
	}
}

// randomEquivGraph builds a seeded random DAG with n tasks, m design
// points per task and random currents/times shaped like the paper's data.
func randomEquivGraph(t *testing.T, rng *rand.Rand, n, m int) *taskgraph.Graph {
	t.Helper()
	points := func(int) []taskgraph.DesignPoint {
		base := float64(rng.Intn(600)+100) / (1 + rng.Float64())
		tb := float64(rng.Intn(40)+5) / 10
		pts := make([]taskgraph.DesignPoint, m)
		for j := 0; j < m; j++ {
			f := 1 + float64(j)*(0.5+rng.Float64())
			pts[j] = taskgraph.DesignPoint{Current: base / f, Time: tb * f}
		}
		return pts
	}
	g, err := taskgraph.Random(rng, n, 0.15+0.5*rng.Float64(), points)
	if err != nil {
		t.Fatalf("random graph: %v", err)
	}
	return g
}

// TestEquivalenceRandomGraphs runs the old-vs-new comparison over 60
// seeded random instances at three slack levels each.
func TestEquivalenceRandomGraphs(t *testing.T) {
	variants := equivalenceVariants()
	variantNames := []string{"default", "first-feasible", "no-reseq", "dpf-absolute", "avg-energy-init", "parallel"}
	for seed := int64(1); seed <= 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(21) // 4..24 tasks
		m := 2 + rng.Intn(4)  // 2..5 design points
		g := randomEquivGraph(t, rng, n, m)
		for _, slack := range []float64{0.15, 0.5, 0.9} {
			d := g.MinTotalTime() + slack*(g.MaxTotalTime()-g.MinTotalTime())
			// The default configuration everywhere, plus one rotating
			// non-default variant per seed so every arm sees random
			// inputs too.
			names := []string{"default", variantNames[int(seed)%len(variantNames)]}
			for _, name := range names {
				label := fmt.Sprintf("seed=%d/n=%d/m=%d/slack=%g/%s", seed, n, m, slack, name)
				s := mustScheduler(t, g, d, variants[name])
				ref, err := s.refRunContext(context.Background())
				if err != nil {
					t.Fatalf("%s: reference: %v", label, err)
				}
				got, err := s.Run()
				if err != nil {
					t.Fatalf("%s: optimized: %v", label, err)
				}
				requireSameResult(t, label, ref, got)
			}
		}
	}
}

// TestEquivalenceRunFrom checks the explicit-initial-sequence entry point
// (the multi-start restart path) against its reference on randomized
// initial orders.
func TestEquivalenceRunFrom(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomEquivGraph(t, rng, 6+rng.Intn(12), 3)
		d := g.MinTotalTime() + 0.5*(g.MaxTotalTime()-g.MinTotalTime())
		s := mustScheduler(t, g, d, Options{})
		for restart := 0; restart < 4; restart++ {
			w := make([]float64, s.n)
			for i := range w {
				w[i] = rng.Float64()
			}
			initial := s.listSchedule(w)
			label := fmt.Sprintf("seed=%d/restart=%d", seed, restart)
			ref, err := s.refRunFrom(context.Background(), initial)
			if err != nil {
				t.Fatalf("%s: reference: %v", label, err)
			}
			got, err := s.runFromContext(context.Background(), initial)
			if err != nil {
				t.Fatalf("%s: optimized: %v", label, err)
			}
			requireSameResult(t, label, ref, got)
		}
	}
}

// TestEquivalenceRunner checks that the storage-reusing Runner matches
// Scheduler.Run bit-for-bit, including on its second and later runs (the
// steady state the zero-alloc benchmark measures).
func TestEquivalenceRunner(t *testing.T) {
	for _, c := range []struct {
		name  string
		graph *taskgraph.Graph
		d     float64
	}{
		{"G2", taskgraph.G2(), 75},
		{"G3", taskgraph.G3(), taskgraph.G3Deadline},
	} {
		s := mustScheduler(t, c.graph, c.d, Options{})
		want, err := s.Run()
		if err != nil {
			t.Fatalf("%s: Run: %v", c.name, err)
		}
		r := s.NewRunner()
		for pass := 1; pass <= 3; pass++ {
			got, err := r.Run()
			if err != nil {
				t.Fatalf("%s: Runner pass %d: %v", c.name, pass, err)
			}
			requireSameResult(t, fmt.Sprintf("%s/pass=%d", c.name, pass), want, got)
		}
	}
}

// TestEquivalenceTrace checks the traced run (the Tables 2/3 machinery)
// stays identical window for window.
func TestEquivalenceTrace(t *testing.T) {
	g := taskgraph.G3()
	s := mustScheduler(t, g, taskgraph.G3Deadline, Options{RecordTrace: true})
	ref, err := s.refRunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "G3 traced", ref, got)
	if ref.Trace.String() != got.Trace.String() {
		t.Fatalf("trace mismatch:\nreference:\n%s\noptimized:\n%s", ref.Trace, got.Trace)
	}
}

// TestListScheduleHeapTieBreak proves the heap-based list scheduler emits
// exactly the reference scan's order — larger weight first, ties to the
// smaller task ID — including under heavy ties, where a heap that leaked
// its internal layout would diverge.
func TestListScheduleHeapTieBreak(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomEquivGraph(t, rng, 5+rng.Intn(20), 3)
		s := mustScheduler(t, g, g.MaxTotalTime(), Options{})
		weights := make([]float64, s.n)
		// Draw from a tiny value set so most comparisons tie.
		vals := []float64{0, 1, 1, 2}
		for i := range weights {
			weights[i] = vals[rng.Intn(len(vals))]
		}
		want := s.refListSchedule(weights)
		got := s.listSchedule(weights)
		if len(want) != len(got) {
			t.Fatalf("seed %d: length %d != %d", seed, len(got), len(want))
		}
		for k := range want {
			if want[k] != got[k] {
				t.Fatalf("seed %d: heap order %v != reference %v (weights %v)", seed, got, want, weights)
			}
		}
	}
	// And the all-equal-weights case: emission must follow ready order by
	// ascending task ID exactly.
	g := taskgraph.G3()
	s := mustScheduler(t, g, taskgraph.G3Deadline, Options{})
	flat := make([]float64, s.n)
	want := s.refListSchedule(flat)
	got := s.listSchedule(flat)
	for k := range want {
		if want[k] != got[k] {
			t.Fatalf("flat weights: heap order %v != reference %v", got, want)
		}
	}
}

// TestWeightedSequenceBitsets checks the reachability-bitset Equation-4
// weights against the reference reachable-slice walk.
func TestWeightedSequenceBitsets(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomEquivGraph(t, rng, 4+rng.Intn(30), 3)
		s := mustScheduler(t, g, g.MaxTotalTime(), Options{})
		assign := make([]int, s.n)
		for i := range assign {
			assign[i] = rng.Intn(s.m)
		}
		want := s.refWeightedSequence(assign)
		scr := s.newScratch()
		got := s.weightedSequenceInto(assign, scr, scr.seqA)
		for k := range want {
			if want[k] != got[k] {
				t.Fatalf("seed %d: bitset order %v != reference %v", seed, got, want)
			}
		}
	}
}

package core

import (
	"fmt"
	"strings"
)

// WindowTrace records the outcome of one window evaluation within an
// iteration — one cell of the paper's Table 3.
type WindowTrace struct {
	// WindowStart is the 1-based first allowed design-point column, so
	// the window is "WindowStart:m" in the paper's notation.
	WindowStart int
	// Feasible reports whether the backward pass found a
	// deadline-feasible assignment in this window.
	Feasible bool
	// Cost is sigma at completion (mA·min) of the window's schedule
	// (+Inf when infeasible).
	Cost float64
	// Duration is the schedule completion time in minutes.
	Duration float64
	// Assignment maps task ID to the chosen 0-based design point.
	Assignment map[int]int
}

// IterationTrace records one iteration of the outer loop — one row group of
// the paper's Tables 2 and 3.
type IterationTrace struct {
	// Sequence is the task order (task IDs) this iteration evaluated
	// windows for (S1, S2, … in the paper).
	Sequence []int
	// Windows holds the per-window outcomes, narrowest window first
	// (the order they are evaluated in).
	Windows []WindowTrace
	// BestWindow indexes Windows at the minimum cost (-1 if none
	// feasible).
	BestWindow int
	// WindowCost is the minimum cost over windows (the paper's
	// MinBCost before resequencing).
	WindowCost float64
	// Assignment is the minimum-cost window's assignment.
	Assignment map[int]int
	// WeightedSequence is the Equation-4 resequenced order (S1w, …);
	// nil when resequencing is disabled.
	WeightedSequence []int
	// WeightedCost is the cost of the weighted sequence under this
	// iteration's assignment.
	WeightedCost float64
	// IterationCost is min(WindowCost, WeightedCost) — the value the
	// termination test compares across iterations.
	IterationCost float64
}

// Trace is the complete run history attached to a Result when
// Options.RecordTrace is set.
type Trace struct {
	// InitialSequence is the SequenceDecEnergy output the first
	// iteration starts from.
	InitialSequence []int
	// Iterations holds one entry per outer-loop iteration, in order.
	Iterations []IterationTrace
}

// String renders the trace in a compact Tables-2/3 flavored text form.
func (t *Trace) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "initial sequence: %s\n", seqString(t.InitialSequence))
	for k, it := range t.Iterations {
		fmt.Fprintf(&b, "iteration %d\n", k+1)
		fmt.Fprintf(&b, "  S%-3d %s\n", k+1, seqString(it.Sequence))
		for _, w := range it.Windows {
			if !w.Feasible {
				fmt.Fprintf(&b, "    win %d: infeasible\n", w.WindowStart)
				continue
			}
			fmt.Fprintf(&b, "    win %d: sigma=%.1f dur=%.1f\n", w.WindowStart, w.Cost, w.Duration)
		}
		if it.WeightedSequence != nil {
			fmt.Fprintf(&b, "  S%dw %s (sigma=%.1f)\n", k+1, seqString(it.WeightedSequence), it.WeightedCost)
		}
		fmt.Fprintf(&b, "  iteration best sigma=%.1f\n", it.IterationCost)
	}
	return b.String()
}

func seqString(ids []int) string {
	parts := make([]string, len(ids))
	for k, id := range ids {
		parts[k] = fmt.Sprintf("T%d", id)
	}
	return strings.Join(parts, ",")
}

package core

import (
	"context"

	"repro/internal/sched"
	"repro/internal/taskgraph"
)

// SweepRunner evaluates one graph + options across many deadlines while
// reusing every deadline-independent artifact: the SchedulerBase (battery
// model resolution, flat matrices, Energy Vector, reachability bitsets,
// pruned candidate lists, lower-bound analysis), one scratch arena, the
// memoized initial sequence (list scheduling by static weights — it does
// not depend on the deadline), and the result storage. A deadline sweep
// through it costs one NewBase plus O(1) setup per deadline, against
// full scheduler construction per deadline when calling New in a loop.
//
// Results are bit-identical to New(graph, deadline, opt) followed by
// Run, for every deadline (see TestSweepRunnerMatchesNew).
//
// Like Runner, a SweepRunner is one worker's arena: the Result returned
// by Run/RunContext is owned by the runner and overwritten by the next
// call, and a SweepRunner is not safe for concurrent use. Mint one per
// goroutine from a shared SchedulerBase (SchedulerBase.SweepRunner);
// the base itself is immutable and safe to share.
type SweepRunner struct {
	base    *SchedulerBase
	scr     *runScratch
	initSeq []int
	sched   sched.Schedule
	res     Result
}

// NewSweepRunner validates the graph and options once and returns a
// runner for sweeping deadlines over them.
func NewSweepRunner(g *taskgraph.Graph, opt Options) (*SweepRunner, error) {
	base, err := NewBase(g, opt)
	if err != nil {
		return nil, err
	}
	return base.SweepRunner(), nil
}

// SweepRunner mints a deadline-sweep runner over the shared base.
func (b *SchedulerBase) SweepRunner() *SweepRunner {
	s := &b.proto
	scr := s.newScratch()
	sr := &SweepRunner{base: b, scr: scr}
	// The initial sequence depends only on the graph and the initial
	// weight rule, never on the deadline — compute it once.
	sr.initSeq = append([]int(nil), s.initialSequenceInto(scr, scr.seqA)...)
	return sr
}

// Base returns the shared deadline-independent scheduler state.
func (sr *SweepRunner) Base() *SchedulerBase { return sr.base }

// Run executes the iterative algorithm for one deadline, reusing the
// runner's storage.
func (sr *SweepRunner) Run(deadline float64) (*Result, error) {
	return sr.RunContext(context.Background(), deadline)
}

// RunContext is Run with cooperative cancellation (see
// Scheduler.RunContext for the semantics).
func (sr *SweepRunner) RunContext(ctx context.Context, deadline float64) (*Result, error) {
	s, err := sr.base.Scheduler(deadline)
	if err != nil {
		return nil, err
	}
	if s.g.MinTotalTime() > s.deadline+timeEps {
		return nil, ErrDeadlineInfeasible
	}
	L := append(sr.scr.seqA[:0], sr.initSeq...)
	var trace *Trace
	if s.opt.RecordTrace {
		trace = &Trace{InitialSequence: s.idsOf(L)}
	}
	bestOrder, bestAssign, bestCost, iterations, err := s.runLoop(ctx, sr.scr, L, trace)
	if err != nil {
		return nil, err
	}
	sr.sched.Order = s.idsInto(bestOrder, sr.sched.Order[:0])
	if sr.sched.Assignment == nil {
		sr.sched.Assignment = make(map[int]int, s.n)
	}
	for i := 0; i < s.n; i++ {
		sr.sched.Assignment[s.g.IDAt(i)] = bestAssign[i]
	}
	p := s.profileInto(bestOrder, bestAssign, sr.scr.profile[:0])
	dur := p.TotalTime()
	sr.res = Result{
		Schedule:   &sr.sched,
		Cost:       bestCost,
		Duration:   dur,
		Energy:     p.DeliveredCharge(dur),
		Iterations: iterations,
		Trace:      trace,
	}
	return &sr.res, nil
}

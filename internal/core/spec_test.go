package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/battery"
	"repro/internal/taskgraph"
)

// TestBatterySpecOptionsBitIdentical proves the declarative path is a
// pure refactor of the model path: for every kind, scheduling with
// Options.Battery produces a Result bit-identical (float bits, exact
// order/assignment/iterations) to scheduling with the equivalent
// Options.Model — and the default spec is bit-identical to zero
// options, the pre-refactor configuration.
func TestBatterySpecOptionsBitIdentical(t *testing.T) {
	g := taskgraph.G3()
	cases := []struct {
		name  string
		spec  battery.Spec
		model battery.Model
	}{
		{"default-vs-zero-options", battery.DefaultSpec(), nil},
		{"rakhmatov-beta", battery.Spec{Kind: battery.KindRakhmatov, Beta: 0.5}, battery.NewRakhmatov(0.5)},
		{"ideal", battery.Spec{Kind: battery.KindIdeal}, battery.Ideal{}},
		{"peukert", battery.Spec{Kind: battery.KindPeukert, Exponent: 1.2, RefCurrent: 100}, battery.NewPeukert(1.2, 100)},
		{"kibam", battery.Spec{Kind: battery.KindKiBaM, Capacity: 40000, WellFraction: 0.5, RateConstant: 0.1}, battery.NewKiBaM(40000, 0.5, 0.1)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			spec := c.spec
			sSpec := mustScheduler(t, g, taskgraph.G3Deadline, Options{Battery: &spec})
			sModel := mustScheduler(t, g, taskgraph.G3Deadline, Options{Model: c.model})
			got, err := sSpec.Run()
			if err != nil {
				t.Fatal(err)
			}
			want, err := sModel.Run()
			if err != nil {
				t.Fatal(err)
			}
			requireBitIdentical(t, got, want)
		})
	}
}

// requireBitIdentical compares two results the equivalence suite's way:
// float fields as raw bits, structures exactly.
func requireBitIdentical(t *testing.T, got, want *Result) {
	t.Helper()
	if math.Float64bits(got.Cost) != math.Float64bits(want.Cost) ||
		math.Float64bits(got.Duration) != math.Float64bits(want.Duration) ||
		math.Float64bits(got.Energy) != math.Float64bits(want.Energy) ||
		got.Iterations != want.Iterations {
		t.Fatalf("scalar mismatch: got (%x, %x, %x, %d), want (%x, %x, %x, %d)",
			math.Float64bits(got.Cost), math.Float64bits(got.Duration), math.Float64bits(got.Energy), got.Iterations,
			math.Float64bits(want.Cost), math.Float64bits(want.Duration), math.Float64bits(want.Energy), want.Iterations)
	}
	if len(got.Schedule.Order) != len(want.Schedule.Order) {
		t.Fatalf("order length mismatch")
	}
	for k := range got.Schedule.Order {
		if got.Schedule.Order[k] != want.Schedule.Order[k] {
			t.Fatalf("order mismatch at %d: %v vs %v", k, got.Schedule.Order, want.Schedule.Order)
		}
	}
	for id, j := range want.Schedule.Assignment {
		if got.Schedule.Assignment[id] != j {
			t.Fatalf("assignment mismatch for task %d: %d vs %d", id, got.Schedule.Assignment[id], j)
		}
	}
}

func TestBatterySpecOptionErrors(t *testing.T) {
	g := taskgraph.G3()

	// Invalid spec: New fails with the battery package's field-naming
	// error instead of panicking deep in a window sweep.
	bad := battery.Spec{Kind: battery.KindKiBaM, Capacity: 100, WellFraction: 0.5, RateConstant: -1}
	if _, err := New(g, taskgraph.G3Deadline, Options{Battery: &bad}); err == nil || !strings.Contains(err.Error(), "rate_constant") {
		t.Fatalf("New with invalid spec: %v", err)
	}

	// The Beta shorthand routes through the same validated spec path,
	// so a non-physical Beta is an error, not a silently-squared sign.
	if _, err := New(g, taskgraph.G3Deadline, Options{Beta: -0.273}); err == nil || !strings.Contains(err.Error(), "\"beta\"") {
		t.Fatalf("New with negative Beta: %v", err)
	}
	if _, err := (Options{Beta: math.NaN()}).ResolveModel(); err == nil {
		t.Fatal("ResolveModel with NaN Beta should error")
	}

	// Battery and Model together are ambiguous.
	spec := battery.DefaultSpec()
	both := Options{Battery: &spec, Model: battery.Ideal{}}
	if _, err := New(g, taskgraph.G3Deadline, both); err == nil || !strings.Contains(err.Error(), "at most one") {
		t.Fatalf("New with Battery and Model: %v", err)
	}
	if _, err := both.ResolveModel(); err == nil {
		t.Fatal("ResolveModel with Battery and Model should error")
	}
}

func TestOptionsBatterySpec(t *testing.T) {
	// The zero options' spec is the default battery.
	spec, ok := Options{}.BatterySpec()
	if !ok || string(spec.AppendCanonical(nil)) != string(battery.DefaultSpec().AppendCanonical(nil)) {
		t.Fatalf("zero options spec = %+v, %v", spec, ok)
	}
	// Beta shorthand and the equivalent rakhmatov spec canonicalize
	// identically — the property that makes them share a cache entry.
	viaBeta, _ := Options{Beta: 0.35}.BatterySpec()
	viaSpec, _ := Options{Battery: &battery.Spec{Kind: battery.KindRakhmatov, Beta: 0.35}}.BatterySpec()
	if string(viaBeta.AppendCanonical(nil)) != string(viaSpec.AppendCanonical(nil)) {
		t.Fatalf("beta shorthand %+v and spec %+v canonicalize differently", viaBeta, viaSpec)
	}
	// Opaque models have no spec.
	if _, ok := (Options{Model: battery.Ideal{}}).BatterySpec(); ok {
		t.Fatal("opaque Model must not report a spec")
	}
}

// TestRunnerSteadyStateZeroAllocWithSpec extends the zero-alloc
// guarantee to spec-based options: resolution happens once in New, so
// the steady state stays allocation-free exactly as for the default
// configuration.
func TestRunnerSteadyStateZeroAllocWithSpec(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc counts are meaningless")
	}
	spec := battery.Spec{Kind: battery.KindKiBaM, Capacity: 40000, WellFraction: 0.5, RateConstant: 0.1}
	s := mustScheduler(t, taskgraph.G3(), taskgraph.G3Deadline, Options{Battery: &spec})
	r := s.NewRunner()
	if _, err := r.Run(); err != nil {
		t.Fatalf("warm-up: %v", err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := r.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Runner.Run with a battery spec allocates %v per run, want 0", allocs)
	}
}

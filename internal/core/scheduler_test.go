package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/taskgraph"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func seqEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if a[k] != b[k] {
			return false
		}
	}
	return true
}

func mustScheduler(t *testing.T, g *taskgraph.Graph, d float64, opt Options) *Scheduler {
	t.Helper()
	s, err := New(g, d, opt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestInitialSequenceMatchesPaperS1 pins the paper's first sequence for G3
// exactly (Table 2, S1). This is what fixes the "average energy vs average
// current" ambiguity: only average current reproduces it.
func TestInitialSequenceMatchesPaperS1(t *testing.T) {
	s := mustScheduler(t, taskgraph.G3(), taskgraph.G3Deadline, Options{})
	want := []int{1, 4, 5, 7, 3, 2, 6, 8, 10, 9, 13, 12, 11, 14, 15}
	if got := s.InitialSequence(); !seqEqual(got, want) {
		t.Fatalf("S1 = %v\nwant %v", got, want)
	}
	// And average energy does NOT reproduce it (it ranks T2 before T4).
	se := mustScheduler(t, taskgraph.G3(), taskgraph.G3Deadline, Options{InitialOrder: WeightAvgEnergy})
	if got := se.InitialSequence(); seqEqual(got, want) {
		t.Fatal("avg-energy weight unexpectedly reproduced S1 — anchor lost")
	}
}

// TestG3Window45MatchesPaper pins iteration 1's narrowest window against
// Table 3: windows evaluated are exactly 4:5, 3:5, 2:5, 1:5, and window
// 4:5 yields sigma = 16353 mA·min at duration 228.3 min.
func TestG3Window45MatchesPaper(t *testing.T) {
	s := mustScheduler(t, taskgraph.G3(), taskgraph.G3Deadline, Options{RecordTrace: true})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace.Iterations) == 0 {
		t.Fatal("no iterations traced")
	}
	it := res.Trace.Iterations[0]
	if len(it.Windows) != 4 {
		t.Fatalf("iteration 1 evaluated %d windows, want 4 (paper Table 3)", len(it.Windows))
	}
	wantStarts := []int{4, 3, 2, 1}
	for k, w := range it.Windows {
		if w.WindowStart != wantStarts[k] {
			t.Fatalf("window order = %v", it.Windows)
		}
	}
	w45 := it.Windows[0]
	if !w45.Feasible {
		t.Fatal("window 4:5 must be feasible")
	}
	if !almost(w45.Cost, 16353, 1.0) {
		t.Errorf("window 4:5 sigma = %.2f, want 16353 ± 1 (Table 3)", w45.Cost)
	}
	if !almost(w45.Duration, 228.3, 1e-6) {
		t.Errorf("window 4:5 duration = %.4f, want 228.3 (Table 3)", w45.Duration)
	}
}

// TestG3FinalResultShape checks the end-to-end run against the paper's
// Table 3 bottom line: final sigma 13737 at 229.8 min after 4 iterations.
// Individual wide-window cells differ from the paper's (its Fig. 2
// pseudocode is ambiguous; see EXPERIMENTS.md), so we assert the shape:
// monotone improvement, termination, and a final cost within 2% of the
// paper's.
func TestG3FinalResultShape(t *testing.T) {
	s := mustScheduler(t, taskgraph.G3(), taskgraph.G3Deadline, Options{RecordTrace: true})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.ValidateDeadline(s.Graph(), taskgraph.G3Deadline); err != nil {
		t.Fatalf("result schedule invalid: %v", err)
	}
	if res.Cost > 13737*1.02 {
		t.Errorf("final sigma %.1f more than 2%% above the paper's 13737", res.Cost)
	}
	if res.Cost < 13135 {
		// The paper's best has delivered charge 13135; sigma can
		// never be below delivered charge for any feasible schedule
		// close to this one, so this catches cost-function bugs.
		t.Errorf("final sigma %.1f is implausibly low", res.Cost)
	}
	// Iteration costs must be non-increasing until the terminating one.
	iters := res.Trace.Iterations
	for k := 1; k < len(iters)-1; k++ {
		if iters[k].IterationCost > iters[k-1].IterationCost {
			t.Errorf("iteration %d cost rose: %.1f -> %.1f", k+1, iters[k-1].IterationCost, iters[k].IterationCost)
		}
	}
	// The loop stops because the last iteration failed to improve.
	if len(iters) >= 2 {
		last, prev := iters[len(iters)-1], iters[len(iters)-2]
		if last.IterationCost < prev.IterationCost {
			t.Error("run terminated while still improving")
		}
	}
}

// TestWeightedSequenceMatchesPaperS2w drives Equation 4 with the paper's
// printed iteration-2 state (Table 2: sequence S2 and its design points)
// and expects the printed S2w exactly.
func TestWeightedSequenceMatchesPaperS2w(t *testing.T) {
	s := mustScheduler(t, taskgraph.G3(), taskgraph.G3Deadline, Options{})
	// S2 = T1,T3,T2,T4,T5,T6,T7,T8,T10,T9,T13,T12,T11,T14,T15 with
	// DPs   P5,P1,P2,P5,P5,P5,P5,P5,P5, P5,P5, P5, P5, P5, P5.
	assign := map[int]int{
		1: 4, 3: 0, 2: 1, 4: 4, 5: 4, 6: 4, 7: 4, 8: 4,
		10: 4, 9: 4, 13: 4, 12: 4, 11: 4, 14: 4, 15: 4,
	}
	got, err := s.WeightedSequence(assign)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 3, 2, 4, 5, 6, 7, 8, 9, 10, 13, 11, 12, 14, 15}
	if !seqEqual(got, want) {
		t.Fatalf("S2w = %v\nwant  %v", got, want)
	}
}

// TestWeightedSequenceMatchesPaperS3w does the same for iteration 3's
// printed state, which also pins the convergence of the paper's run: the
// weighted sequence of S3's assignment equals S4 = S4w.
func TestWeightedSequenceMatchesPaperS3w(t *testing.T) {
	s := mustScheduler(t, taskgraph.G3(), taskgraph.G3Deadline, Options{})
	// S3 = T1,T3,T2,T4,T5,T6,T7,T8,T9,T10,T13,T11,T12,T14,T15 with
	// DPs   P5,P5,P1,P5,P5,P5,P4,P5,P4,P5, P5, P5, P5, P5, P5.
	assign := map[int]int{
		1: 4, 3: 4, 2: 0, 4: 4, 5: 4, 6: 4, 7: 3, 8: 4,
		9: 3, 10: 4, 13: 4, 11: 4, 12: 4, 14: 4, 15: 4,
	}
	got, err := s.WeightedSequence(assign)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 4, 5, 7, 3, 6, 8, 9, 10, 13, 11, 12, 14, 15}
	if !seqEqual(got, want) {
		t.Fatalf("S3w = %v\nwant  %v", got, want)
	}
}

// TestCostOfPaperSchedules pins CalculateBatteryCost against every sigma
// the paper prints alongside a full schedule: S1/min (16353 @ 228.3),
// S2/min (14725 @ 229.2) and S3=S4/min (13737 @ 229.8).
func TestCostOfPaperSchedules(t *testing.T) {
	s := mustScheduler(t, taskgraph.G3(), taskgraph.G3Deadline, Options{})
	cases := []struct {
		name  string
		order []int
		dps   []int // 1-based design points, positional
		sigma float64
		dur   float64
	}{
		{
			"S1-win45", []int{1, 4, 5, 7, 3, 2, 6, 8, 10, 9, 13, 12, 11, 14, 15},
			[]int{5, 5, 5, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 4, 5}, 16353, 228.3,
		},
		{
			"S2-win15", []int{1, 3, 2, 4, 5, 6, 7, 8, 10, 9, 13, 12, 11, 14, 15},
			[]int{5, 1, 2, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5}, 14725, 229.2,
		},
		{
			"S3-win15", []int{1, 3, 2, 4, 5, 6, 7, 8, 9, 10, 13, 11, 12, 14, 15},
			[]int{5, 5, 1, 5, 5, 5, 4, 5, 4, 5, 5, 5, 5, 5, 5}, 13737, 229.8,
		},
		{
			"S4-win15", []int{1, 2, 4, 5, 7, 3, 6, 8, 9, 10, 13, 11, 12, 14, 15},
			[]int{5, 1, 5, 5, 4, 5, 5, 5, 4, 5, 5, 5, 5, 5, 5}, 13737, 229.8,
		},
	}
	g := s.Graph()
	for _, tc := range cases {
		assign := make(map[int]int, len(tc.order))
		var dur float64
		for k, id := range tc.order {
			assign[id] = tc.dps[k] - 1
			dur += g.Task(id).Points[tc.dps[k]-1].Time
		}
		if !almost(dur, tc.dur, 1e-6) {
			t.Errorf("%s: duration %.4f, want %.1f", tc.name, dur, tc.dur)
		}
		got, err := s.CostOf(tc.order, assign)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(got, tc.sigma, 1.0) {
			t.Errorf("%s: sigma %.2f, want %.0f ± 1", tc.name, got, tc.sigma)
		}
	}
}

func TestNewValidation(t *testing.T) {
	g := taskgraph.G3()
	if _, err := New(nil, 100, Options{}); err == nil {
		t.Error("nil graph should error")
	}
	for _, d := range []float64{0, -5, math.NaN(), math.Inf(1)} {
		if _, err := New(g, d, Options{}); err == nil {
			t.Errorf("deadline %g should error", d)
		}
	}
	var b taskgraph.Builder
	b.AddTask(1, "", taskgraph.DesignPoint{Current: 1, Time: 1})
	b.AddTask(2, "", taskgraph.DesignPoint{Current: 2, Time: 1}, taskgraph.DesignPoint{Current: 1, Time: 2})
	nonUniform := b.MustBuild()
	if _, err := New(nonUniform, 100, Options{}); err == nil {
		t.Error("non-uniform point counts should error")
	}
}

func TestInfeasibleDeadline(t *testing.T) {
	g := taskgraph.G3()
	s := mustScheduler(t, g, g.MinTotalTime()-1, Options{})
	if _, err := s.Run(); !errors.Is(err, ErrDeadlineInfeasible) {
		t.Fatalf("want ErrDeadlineInfeasible, got %v", err)
	}
}

func TestTightestFeasibleDeadline(t *testing.T) {
	g := taskgraph.G3()
	s := mustScheduler(t, g, g.MinTotalTime(), Options{})
	res, err := s.Run()
	if err != nil {
		t.Fatalf("deadline == fastest time must be schedulable: %v", err)
	}
	if !almost(res.Duration, g.MinTotalTime(), 1e-9) {
		t.Fatalf("duration %.4f, want %.4f", res.Duration, g.MinTotalTime())
	}
	for id, j := range res.Schedule.Assignment {
		if j != 0 {
			t.Fatalf("task %d not at fastest point under the tightest deadline", id)
		}
	}
}

func TestSingleTaskGraph(t *testing.T) {
	var b taskgraph.Builder
	b.AddTask(1, "", taskgraph.DesignPoint{Current: 100, Time: 2}, taskgraph.DesignPoint{Current: 10, Time: 6})
	g := b.MustBuild()
	// Loose deadline: lowest-power point.
	s := mustScheduler(t, g, 10, Options{})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Assignment[1] != 1 {
		t.Fatalf("single task should use its lowest-power point, got %d", res.Schedule.Assignment[1])
	}
	// Tight deadline: must fall back to the fast point.
	s2 := mustScheduler(t, g, 3, Options{})
	res2, err := s2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Schedule.Assignment[1] != 0 {
		t.Fatalf("single task under tight deadline should use the fast point, got %d", res2.Schedule.Assignment[1])
	}
}

func TestSinglePointPerTask(t *testing.T) {
	// m == 1 degenerates the window machinery; the only assignment must
	// come back when feasible.
	var b taskgraph.Builder
	b.AddTask(1, "", taskgraph.DesignPoint{Current: 50, Time: 1})
	b.AddTask(2, "", taskgraph.DesignPoint{Current: 70, Time: 2})
	b.AddEdge(1, 2)
	g := b.MustBuild()
	s := mustScheduler(t, g, 4, Options{})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Duration != 3 {
		t.Fatalf("duration = %g", res.Duration)
	}
	s2 := mustScheduler(t, g, 2, Options{})
	if _, err := s2.Run(); !errors.Is(err, ErrDeadlineInfeasible) {
		t.Fatalf("want infeasible, got %v", err)
	}
}

// TestDeadlineFeasibilityProperty property-tests the headline contract:
// for random graphs and any deadline at or above the fastest completion
// time, Run returns a precedence-legal schedule meeting the deadline.
func TestDeadlineFeasibilityProperty(t *testing.T) {
	check := func(seed int64, nRaw, mRaw uint8, slackRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%10) + 2
		m := int(mRaw%4) + 2
		pointsFor := func(i int) []taskgraph.DesignPoint {
			base := rng.Float64()*400 + 50
			tbase := rng.Float64()*5 + 0.5
			pts := make([]taskgraph.DesignPoint, m)
			for j := 0; j < m; j++ {
				f := 1 + float64(j)*0.7
				pts[j] = taskgraph.DesignPoint{Current: base / (f * f), Time: tbase * f}
			}
			return pts
		}
		g, err := taskgraph.Random(rng, n, 0.3, pointsFor)
		if err != nil {
			return false
		}
		slack := 1 + float64(slackRaw%200)/100 // 1.0x .. 3.0x fastest time
		deadline := g.MinTotalTime() * slack
		s, err := New(g, deadline, Options{})
		if err != nil {
			return false
		}
		res, err := s.Run()
		if err != nil {
			return false
		}
		return res.Schedule.ValidateDeadline(g, deadline) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestLooserDeadlineNeverHurts: more slack can only reduce (or keep) the
// best cost the heuristic finds on the paper's graphs.
func TestLooserDeadlineNeverHurts(t *testing.T) {
	for _, tc := range []struct {
		g  *taskgraph.Graph
		ds []float64
	}{
		{taskgraph.G2(), taskgraph.G2Deadlines},
		{taskgraph.G3(), taskgraph.G3Deadlines},
	} {
		prev := math.Inf(1)
		for k := len(tc.ds) - 1; k >= 0; k-- { // tightest last
			s := mustScheduler(t, tc.g, tc.ds[k], Options{})
			res, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			if k < len(tc.ds)-1 && res.Cost < prev {
				t.Errorf("deadline %g gave lower cost %f than looser deadline's %f",
					tc.ds[k], res.Cost, prev)
			}
			prev = res.Cost
		}
	}
}

func TestRunIsDeterministic(t *testing.T) {
	g := taskgraph.G3()
	a := mustScheduler(t, g, 230, Options{})
	b := mustScheduler(t, g, 230, Options{})
	ra, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ra.Cost != rb.Cost || !seqEqual(ra.Schedule.Order, rb.Schedule.Order) {
		t.Fatal("two identical runs disagreed")
	}
}

func TestResultFieldsConsistent(t *testing.T) {
	g := taskgraph.G2()
	s := mustScheduler(t, g, 75, Options{})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.Duration, res.Schedule.Duration(g), 1e-9) {
		t.Errorf("Duration %.6f != schedule duration %.6f", res.Duration, res.Schedule.Duration(g))
	}
	if !almost(res.Energy, res.Schedule.Energy(g), 1e-9) {
		t.Errorf("Energy %.6f != schedule energy %.6f", res.Energy, res.Schedule.Energy(g))
	}
	if got := res.Schedule.Cost(g, s.Model()); !almost(got, res.Cost, 1e-9) {
		t.Errorf("Cost %.6f != schedule cost %.6f", res.Cost, got)
	}
	if res.Cost < res.Energy {
		t.Errorf("sigma %.1f below delivered charge %.1f", res.Cost, res.Energy)
	}
	if res.Iterations < 1 {
		t.Error("Iterations must be at least 1")
	}
}

func TestCostOfValidation(t *testing.T) {
	s := mustScheduler(t, taskgraph.G2(), 75, Options{})
	if _, err := s.CostOf([]int{1, 2}, map[int]int{1: 0}); err == nil {
		t.Error("short order should error")
	}
	full := taskgraph.G2().TopoOrder()
	if _, err := s.CostOf(full, map[int]int{1: 0}); err == nil {
		t.Error("missing assignment should error")
	}
	assign := make(map[int]int)
	for _, id := range full {
		assign[id] = 9
	}
	if _, err := s.CostOf(full, assign); err == nil {
		t.Error("out-of-range assignment should error")
	}
	bad := append([]int(nil), full...)
	bad[0] = 99
	for _, id := range full {
		assign[id] = 0
	}
	if _, err := s.CostOf(bad, assign); err == nil {
		t.Error("unknown task should error")
	}
}

func TestOptionStrings(t *testing.T) {
	for _, s := range []string{
		WeightAvgCurrent.String(), WeightAvgEnergy.String(), InitialWeight(9).String(),
		WindowSweepAll.String(), WindowFirstFeasible.String(), WindowFullOnly.String(), WindowPolicy(9).String(),
		DPFWindowRelative.String(), DPFAbsolute.String(), DPFColumnRule(9).String(),
	} {
		if s == "" {
			t.Fatal("stringers must be non-empty")
		}
	}
	if !AllFactors.Has(FactorCIF) || FactorSR.Has(FactorCR) {
		t.Fatal("FactorSet.Has wrong")
	}
}

package core

import (
	"testing"

	"repro/internal/taskgraph"
)

// TestRunnerSteadyStateZeroAlloc pins the scratch-arena guarantee the
// window-sweep benchmark measures: after the warm-up run, a Runner's
// full iterative run — initial sequencing, every window's backward pass,
// cost evaluation, Equation-4 resequencing and result materialization —
// performs zero heap allocations (with tracing off).
func TestRunnerSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc counts are meaningless")
	}
	for _, c := range []struct {
		name  string
		graph *taskgraph.Graph
		d     float64
	}{
		{"G2", taskgraph.G2(), 75},
		{"G3", taskgraph.G3(), taskgraph.G3Deadline},
	} {
		s := mustScheduler(t, c.graph, c.d, Options{})
		r := s.NewRunner()
		if _, err := r.Run(); err != nil {
			t.Fatalf("%s: warm-up: %v", c.name, err)
		}
		allocs := testing.AllocsPerRun(50, func() {
			if _, err := r.Run(); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("%s: steady-state Runner.Run allocates %v per run, want 0", c.name, allocs)
		}
	}
}

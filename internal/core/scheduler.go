package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/battery"
	"repro/internal/sched"
	"repro/internal/taskgraph"
)

// timeEps absorbs float accumulation noise in deadline comparisons (the
// paper's data carries 0.1-minute granularity; 1e-9 is far below it).
const timeEps = 1e-9

// ErrDeadlineInfeasible is returned when even the all-fastest assignment
// misses the deadline — the paper's "the deadline cannot be met" exit.
var ErrDeadlineInfeasible = errors.New("core: deadline cannot be met even with the fastest design points")

// Result is the outcome of a scheduler run.
type Result struct {
	// Schedule is the best schedule found: a topological task order
	// plus per-task design points. It always satisfies the deadline.
	Schedule *sched.Schedule
	// Cost is the schedule's battery cost: sigma at completion, mA·min.
	Cost float64
	// Duration is the schedule completion time in minutes.
	Duration float64
	// Energy is the delivered charge, mA·min (the ideal-model cost).
	Energy float64
	// Iterations is how many outer-loop iterations ran (including the
	// terminating non-improving one).
	Iterations int
	// Trace is the per-iteration history (nil unless requested).
	Trace *Trace
}

// Scheduler runs the paper's algorithm for one task graph and deadline.
// Create it with New. All Scheduler state is immutable after New, so a
// Scheduler is safe for repeated and for concurrent Run calls (the
// restart fan-out of RunMultiStart relies on this) — provided the
// battery model is safe for concurrent ChargeLost calls, which every
// model in internal/battery is (they are stateless values).
type Scheduler struct {
	g        *taskgraph.Graph
	deadline float64
	opt      Options
	model    battery.Model

	n, m int
	// d and cur are the paper's D and I matrices indexed
	// [taskIndex][column]: times ascending, currents non-increasing.
	d, cur [][]float64
	avgCur []float64
	avgEn  []float64
	iMin   float64
	iMax   float64
	eMin   float64
	eMax   float64
	// energyOrder is the paper's Energy Vector E: task indices sorted
	// by ascending average energy (ties by smaller ID).
	energyOrder []int
}

// New validates the inputs and prepares a scheduler. The graph must give
// every task the same number of design points (the paper's model); the
// deadline must be positive and reachable with the fastest points.
func New(g *taskgraph.Graph, deadline float64, opt Options) (*Scheduler, error) {
	if g == nil {
		return nil, errors.New("core: nil graph")
	}
	if deadline <= 0 || math.IsNaN(deadline) || math.IsInf(deadline, 0) {
		return nil, fmt.Errorf("core: deadline must be positive and finite, got %g", deadline)
	}
	m, uniform := g.UniformPointCount()
	if !uniform {
		return nil, errors.New("core: every task must have the same number of design points")
	}
	opt = opt.withDefaults()
	n := g.N()
	s := &Scheduler{
		g:        g,
		deadline: deadline,
		opt:      opt,
		model:    opt.Model,
		n:        n,
		m:        m,
		d:        make([][]float64, n),
		cur:      make([][]float64, n),
		avgCur:   make([]float64, n),
		avgEn:    make([]float64, n),
	}
	for i := 0; i < n; i++ {
		t := g.TaskAt(i)
		s.d[i] = make([]float64, m)
		s.cur[i] = make([]float64, m)
		for j := 0; j < m; j++ {
			s.d[i][j] = t.Points[j].Time
			s.cur[i][j] = t.Points[j].Current
		}
		s.avgCur[i] = t.AvgCurrent()
		s.avgEn[i] = t.AvgEnergy()
	}
	s.iMin, s.iMax = g.CurrentRange()
	s.eMin, s.eMax = g.EnergyRange()
	s.energyOrder = make([]int, n)
	for i := range s.energyOrder {
		s.energyOrder[i] = i
	}
	sort.SliceStable(s.energyOrder, func(a, b int) bool {
		ia, ib := s.energyOrder[a], s.energyOrder[b]
		if s.avgEn[ia] != s.avgEn[ib] {
			return s.avgEn[ia] < s.avgEn[ib]
		}
		return g.IDAt(ia) < g.IDAt(ib)
	})
	return s, nil
}

// Graph returns the graph the scheduler was built for.
func (s *Scheduler) Graph() *taskgraph.Graph { return s.g }

// Deadline returns the deadline the scheduler was built for.
func (s *Scheduler) Deadline() float64 { return s.deadline }

// Model returns the battery model used as the cost function.
func (s *Scheduler) Model() battery.Model { return s.model }

// Run executes the iterative algorithm and returns the best schedule
// found. It fails with ErrDeadlineInfeasible when no assignment can meet
// the deadline.
func (s *Scheduler) Run() (*Result, error) {
	return s.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation: the search checks ctx
// between iterations, between windows and between sequence positions
// inside the backward design-point pass, so even a single large job
// stops promptly once the caller gives up. On cancellation it returns
// ctx.Err() (context.Canceled or context.DeadlineExceeded) and no
// partial result — a run that completes is bit-identical to one executed
// without a context.
func (s *Scheduler) RunContext(ctx context.Context) (*Result, error) {
	if s.g.MinTotalTime() > s.deadline+timeEps {
		return nil, ErrDeadlineInfeasible
	}
	var trace *Trace
	L := s.initialSequence()
	if s.opt.RecordTrace {
		trace = &Trace{InitialSequence: s.idsOf(L)}
	}

	bestCost := math.Inf(1)
	var bestOrder []int
	var bestAssign []int
	prevIterCost := math.Inf(1)
	iterations := 0

	for iter := 0; iter < s.opt.MaxIterations; iter++ {
		iterations++
		wBestAssign, wBestCost, windows := s.windows(ctx, L)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		it := IterationTrace{WindowCost: wBestCost, BestWindow: -1}
		if s.opt.RecordTrace {
			it.Sequence = s.idsOf(L)
			it.Windows = windows
			for k := range windows {
				if windows[k].Feasible && (it.BestWindow < 0 || windows[k].Cost < windows[it.BestWindow].Cost) {
					it.BestWindow = k
				}
			}
		}
		if wBestAssign == nil {
			// No window produced a feasible assignment. The paper's
			// pseudocode does not reach this state for its inputs;
			// we fall back to the always-feasible all-fastest
			// assignment so a caller with a met-able deadline never
			// gets an error (see DESIGN.md §2).
			wBestAssign = make([]int, s.n)
			wBestCost = s.costOf(L, wBestAssign)
		}

		iterCost := wBestCost
		iterOrder := L
		if !s.opt.DisableResequencing {
			Lw := s.weightedSequence(wBestAssign)
			cw := s.costOf(Lw, wBestAssign)
			if s.opt.RecordTrace {
				it.WeightedSequence = s.idsOf(Lw)
				it.WeightedCost = cw
			}
			if cw < iterCost {
				iterCost = cw
				iterOrder = Lw
			}
			L = Lw
		}
		it.IterationCost = iterCost
		if s.opt.RecordTrace {
			it.Assignment = s.assignmentMap(wBestAssign)
			trace.Iterations = append(trace.Iterations, it)
		}

		if iterCost < bestCost {
			bestCost = iterCost
			bestOrder = append([]int(nil), iterOrder...)
			bestAssign = append([]int(nil), wBestAssign...)
		}
		if iterCost >= prevIterCost || s.opt.DisableResequencing {
			break
		}
		prevIterCost = iterCost
	}

	schedule := &sched.Schedule{
		Order:      s.idsOf(bestOrder),
		Assignment: s.assignmentMap(bestAssign),
	}
	p := schedule.Profile(s.g)
	dur := p.TotalTime()
	return &Result{
		Schedule:   schedule,
		Cost:       bestCost,
		Duration:   dur,
		Energy:     p.DeliveredCharge(dur),
		Iterations: iterations,
		Trace:      trace,
	}, nil
}

// initialSequence is the paper's SequenceDecEnergy: list scheduling with a
// static per-task weight (average current by default; see InitialWeight),
// larger weights scheduled earlier among ready tasks.
func (s *Scheduler) initialSequence() []int {
	w := s.avgCur
	if s.opt.InitialOrder == WeightAvgEnergy {
		w = s.avgEn
	}
	return s.listSchedule(w)
}

// InitialSequence exposes the first-iteration order as task IDs (used by
// tests and the experiment harness).
func (s *Scheduler) InitialSequence() []int { return s.idsOf(s.initialSequence()) }

// weightedSequence is the paper's FindWeightedSequence: Equation 4 assigns
// every task the sum of the assigned-design-point currents over the
// subgraph rooted at it, then list-schedules by decreasing weight.
func (s *Scheduler) weightedSequence(assign []int) []int {
	w := make([]float64, s.n)
	for i := 0; i < s.n; i++ {
		var sum float64
		for _, u := range s.g.ReachableIndices(i) {
			sum += s.cur[u][assign[u]]
		}
		w[i] = sum
	}
	return s.listSchedule(w)
}

// WeightedSequence exposes Equation-4 resequencing for a given assignment
// (task ID → 0-based design point), returning task IDs.
func (s *Scheduler) WeightedSequence(assignment map[int]int) ([]int, error) {
	assign, err := s.assignmentArray(assignment)
	if err != nil {
		return nil, err
	}
	return s.idsOf(s.weightedSequence(assign)), nil
}

// listSchedule runs the modified list scheduler both sequencers share:
// repeatedly emit the ready task with the largest weight (ties broken by
// smaller task ID). The result is a topological order by construction.
func (s *Scheduler) listSchedule(weight []float64) []int {
	indeg := make([]int, s.n)
	for i := 0; i < s.n; i++ {
		indeg[i] = len(s.g.ParentIndices(i))
	}
	ready := make([]int, 0, s.n)
	for i := 0; i < s.n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	order := make([]int, 0, s.n)
	for len(ready) > 0 {
		pick := 0
		for k := 1; k < len(ready); k++ {
			a, b := ready[k], ready[pick]
			if weight[a] > weight[b] || (weight[a] == weight[b] && s.g.IDAt(a) < s.g.IDAt(b)) {
				pick = k
			}
		}
		u := ready[pick]
		ready = append(ready[:pick], ready[pick+1:]...)
		order = append(order, u)
		for _, v := range s.g.ChildIndices(u) {
			indeg[v]--
			if indeg[v] == 0 {
				ready = append(ready, v)
			}
		}
	}
	return order
}

// costOf evaluates the battery cost (sigma at completion) of executing the
// tasks in order L (indices) with the given assignment (indexed by task).
func (s *Scheduler) costOf(L []int, assign []int) float64 {
	p := make(battery.Profile, 0, len(L))
	for _, ti := range L {
		p = append(p, battery.Interval{Current: s.cur[ti][assign[ti]], Duration: s.d[ti][assign[ti]]})
	}
	return s.model.ChargeLost(p, p.TotalTime())
}

// CostOf evaluates sigma at completion for an explicit order (task IDs)
// and assignment (task ID → 0-based design point), exposed for the
// experiment harness and tests.
func (s *Scheduler) CostOf(order []int, assignment map[int]int) (float64, error) {
	assign, err := s.assignmentArray(assignment)
	if err != nil {
		return 0, err
	}
	if len(order) != s.n {
		return 0, fmt.Errorf("core: order has %d tasks, graph has %d", len(order), s.n)
	}
	L := make([]int, len(order))
	for k, id := range order {
		i, ok := s.g.Index(id)
		if !ok {
			return 0, fmt.Errorf("core: unknown task %d in order", id)
		}
		L[k] = i
	}
	return s.costOf(L, assign), nil
}

// scheduleFrom materializes a Schedule from dense-index order/assignment.
func (s *Scheduler) scheduleFrom(order, assign []int) *sched.Schedule {
	return &sched.Schedule{Order: s.idsOf(order), Assignment: s.assignmentMap(assign)}
}

// windows dispatches to the sequential or parallel window evaluator.
// A canceled ctx makes it return early with whatever it has; callers
// must check ctx before trusting the result.
func (s *Scheduler) windows(ctx context.Context, L []int) ([]int, float64, []WindowTrace) {
	if s.opt.Parallel {
		return s.evaluateWindowsParallel(ctx, L)
	}
	return s.evaluateWindows(ctx, L)
}

func (s *Scheduler) idsOf(L []int) []int {
	out := make([]int, len(L))
	for k, i := range L {
		out[k] = s.g.IDAt(i)
	}
	return out
}

func (s *Scheduler) assignmentMap(assign []int) map[int]int {
	out := make(map[int]int, s.n)
	for i := 0; i < s.n; i++ {
		out[s.g.IDAt(i)] = assign[i]
	}
	return out
}

func (s *Scheduler) assignmentArray(assignment map[int]int) ([]int, error) {
	assign := make([]int, s.n)
	for i := 0; i < s.n; i++ {
		id := s.g.IDAt(i)
		j, ok := assignment[id]
		if !ok {
			return nil, fmt.Errorf("core: assignment missing task %d", id)
		}
		if j < 0 || j >= s.m {
			return nil, fmt.Errorf("core: task %d assigned out-of-range design point %d", id, j)
		}
		assign[i] = j
	}
	return assign, nil
}

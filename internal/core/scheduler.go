package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sort"

	"repro/internal/battery"
	"repro/internal/sched"
	"repro/internal/taskgraph"
)

// timeEps absorbs float accumulation noise in deadline comparisons (the
// paper's data carries 0.1-minute granularity; 1e-9 is far below it).
const timeEps = 1e-9

// ErrDeadlineInfeasible is returned when even the all-fastest assignment
// misses the deadline — the paper's "the deadline cannot be met" exit.
var ErrDeadlineInfeasible = errors.New("core: deadline cannot be met even with the fastest design points")

// Result is the outcome of a scheduler run.
type Result struct {
	// Schedule is the best schedule found: a topological task order
	// plus per-task design points. It always satisfies the deadline.
	Schedule *sched.Schedule
	// Cost is the schedule's battery cost: sigma at completion, mA·min.
	Cost float64
	// Duration is the schedule completion time in minutes.
	Duration float64
	// Energy is the delivered charge, mA·min (the ideal-model cost).
	Energy float64
	// Iterations is how many outer-loop iterations ran (including the
	// terminating non-improving one).
	Iterations int
	// Trace is the per-iteration history (nil unless requested).
	Trace *Trace
}

// Scheduler runs the paper's algorithm for one task graph and deadline.
// Create it with New. All Scheduler state is immutable after New, so a
// Scheduler is safe for repeated and for concurrent Run calls (the
// restart fan-out of RunMultiStart relies on this) — provided the
// battery model is safe for concurrent ChargeLost calls, which every
// model in internal/battery is (they are stateless values). Every run
// carries its own scratch arena (see runScratch), so concurrent runs
// never share mutable state.
type Scheduler struct {
	g        *taskgraph.Graph
	deadline float64
	opt      Options
	model    battery.Model

	n, m int
	// d and cur are the paper's D and I matrices indexed
	// [taskIndex][column]: times ascending, currents non-increasing.
	// The reference evaluators (reference.go, deliberately kept in the
	// pre-optimization shape) and the cold paths read these; the hot
	// path reads the flat mirrors below.
	d, cur [][]float64
	// df, cf and ef are the same matrices flattened row-major
	// ([task*m+column]) plus the per-point charge-energy I·t — the hot
	// path reads these to stay on contiguous memory. The duplication is
	// n·m float64s per matrix, filled once in New and immutable after.
	df, cf, ef []float64
	avgCur     []float64
	avgEn      []float64
	iMin       float64
	iMax       float64
	eMin       float64
	eMax       float64
	// energyOrder is the paper's Energy Vector E: task indices sorted
	// by ascending average energy (ties by smaller ID).
	energyOrder []int
	// reachBits[i] is the reachable set of task i (descendants including
	// i) as a bitset over dense task indices — the Equation-4 weights
	// iterate it without touching the graph's per-task index slices.
	reachBits [][]uint64
	// cands[i] holds task i's design-point columns in the backward
	// pass's scan order (descending), with exact-duplicate columns
	// pruned: two columns with bit-equal (time, current) produce
	// bit-identical suitability in any context, and the reference's
	// strict `b < bestB` keeps the first-scanned (larger) column on a
	// tie, so dropping every duplicate but the first-scanned one is the
	// one candidate-dominance rule that provably preserves the argmin.
	// (Broader (time, energy) Pareto pruning is NOT argmin-preserving
	// here: CIF compares a candidate's current against its sequence
	// neighbors, so a dominated point can still score a strictly lower
	// B. See ARCHITECTURE.md "Performance".)
	cands [][]int32
	// minEfFrom[i*m+c] is task i's minimum charge-energy over columns
	// [c..m-1] — the tightest per-task contribution to the candidate
	// lower bound's ENR term for a window starting at c (see lowerBound).
	minEfFrom []float64
	// enrSlack bounds the total float rounding the lower bound's ENR
	// term can accumulate (deadline-independent; see analyzeLowerBound),
	// and lbSlack is the full conservative slack of the candidate lower
	// bound used by the bound-skip in chooseDesignPoints
	// (deadline-dependent; see the Scheduler method on SchedulerBase for
	// the derivation).
	enrSlack float64
	lbSlack  float64
	// skipAudit, when non-nil (white-box tests only), receives every
	// candidate the bound skip discards together with the exact
	// suitability it would have scored. Exact evaluation of a skipped
	// candidate is safe mid-loop: candidate stop points are monotone, so
	// the extra replay/rewind lands the mirrors exactly where a
	// non-audited run would leave them.
	skipAudit func(pos, j int, lb, bestB, exactB float64)
}

// SchedulerBase is the deadline-independent part of a Scheduler: the
// validated graph and options, the resolved battery model, the flat
// matrices, the Energy Vector, the reachability bitsets and the pruned
// candidate lists. Everything a deadline sweep re-derives per deadline
// today except the deadline itself lives here, built once by NewBase and
// shared — a SchedulerBase is immutable and safe for concurrent
// Scheduler calls, and the Schedulers it mints share its slices.
type SchedulerBase struct {
	proto Scheduler
}

// New validates the inputs and prepares a scheduler. The graph must give
// every task the same number of design points (the paper's model); the
// deadline must be positive and reachable with the fastest points.
func New(g *taskgraph.Graph, deadline float64, opt Options) (*Scheduler, error) {
	if err := validDeadline(deadline); err != nil {
		return nil, err
	}
	base, err := NewBase(g, opt)
	if err != nil {
		return nil, err
	}
	return base.Scheduler(deadline)
}

func validDeadline(deadline float64) error {
	if deadline <= 0 || math.IsNaN(deadline) || math.IsInf(deadline, 0) {
		return fmt.Errorf("core: deadline must be positive and finite, got %g", deadline)
	}
	return nil
}

// NewBase validates the graph and options and performs every piece of
// scheduler construction that does not depend on the deadline: battery
// model resolution (a calibrated spec runs a whole beta-fit here),
// matrix flattening, the Energy Vector sort, reachability bitsets,
// candidate dominance pruning and the lower-bound slack analysis.
// Deadline sweeps (SweepRunner, the engine's batch grouping) build one
// base and mint per-deadline Schedulers from it with Scheduler — each
// mint is a shallow copy, so the per-deadline cost collapses to O(1).
func NewBase(g *taskgraph.Graph, opt Options) (*SchedulerBase, error) {
	if g == nil {
		return nil, errors.New("core: nil graph")
	}
	m, uniform := g.UniformPointCount()
	if !uniform {
		return nil, errors.New("core: every task must have the same number of design points")
	}
	// Resolve the battery model exactly once per base — so the
	// per-window hot path only ever sees a ready Model value. Invalid
	// specs fail construction, before any scheduling work.
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	n := g.N()
	s := &Scheduler{
		g:      g,
		opt:    opt,
		model:  opt.Model,
		n:      n,
		m:      m,
		d:      make([][]float64, n),
		cur:    make([][]float64, n),
		df:     make([]float64, n*m),
		cf:     make([]float64, n*m),
		ef:     make([]float64, n*m),
		avgCur: make([]float64, n),
		avgEn:  make([]float64, n),
	}
	for i := 0; i < n; i++ {
		t := g.TaskAt(i)
		s.d[i] = make([]float64, m)
		s.cur[i] = make([]float64, m)
		for j := 0; j < m; j++ {
			s.d[i][j] = t.Points[j].Time
			s.cur[i][j] = t.Points[j].Current
			s.df[i*m+j] = t.Points[j].Time
			s.cf[i*m+j] = t.Points[j].Current
			s.ef[i*m+j] = t.Points[j].Current * t.Points[j].Time
		}
		s.avgCur[i] = t.AvgCurrent()
		s.avgEn[i] = t.AvgEnergy()
	}
	s.iMin, s.iMax = g.CurrentRange()
	s.eMin, s.eMax = g.EnergyRange()
	s.energyOrder = make([]int, n)
	for i := range s.energyOrder {
		s.energyOrder[i] = i
	}
	sort.SliceStable(s.energyOrder, func(a, b int) bool {
		ia, ib := s.energyOrder[a], s.energyOrder[b]
		if s.avgEn[ia] != s.avgEn[ib] {
			return s.avgEn[ia] < s.avgEn[ib]
		}
		return g.IDAt(ia) < g.IDAt(ib)
	})
	words := (n + 63) / 64
	backing := make([]uint64, n*words)
	s.reachBits = make([][]uint64, n)
	for i := 0; i < n; i++ {
		row := backing[i*words : (i+1)*words]
		for _, u := range g.ReachableIndices(i) {
			row[u/64] |= 1 << uint(u%64)
		}
		s.reachBits[i] = row
	}
	s.buildCandidates()
	s.analyzeLowerBound()
	return &SchedulerBase{proto: *s}, nil
}

// Scheduler mints a scheduler for one deadline from the shared base.
// The result is bit-identical to New(base.Graph(), deadline, opt) — the
// only per-deadline state is the deadline itself and the bound-skip
// slack derived from it; everything else is shared with the base.
func (b *SchedulerBase) Scheduler(deadline float64) (*Scheduler, error) {
	if err := validDeadline(deadline); err != nil {
		return nil, err
	}
	s := b.proto
	s.deadline = deadline
	// Conservative slack of the candidate lower bound (see lowerBound
	// for the per-term bounds). The terms can undercut LB only by
	// bounded amounts: SR and CR are bit-equal to B's; CIF's bound is
	// exact by integer monotonicity; DPF is a fold of non-negative
	// products except at pos == 0, where (d-te)/d >= -timeEps/d by the
	// replay's exit condition; ENR's real-arithmetic bound leaves only
	// fold rounding, budgeted by enrSlack (see analyzeLowerBound). The
	// trailing 1e-12 absorbs the rounding of folding <= 5 terms of
	// magnitude <= lbGuardMax into B and LB (bounded by ~128 ULP at that
	// magnitude, orders below 1e-12), so B >= LB - lbSlack holds for
	// every candidate the reference scores.
	s.lbSlack = 2*timeEps/deadline + s.enrSlack + 1e-12
	return &s, nil
}

// Graph returns the graph the base was built for.
func (b *SchedulerBase) Graph() *taskgraph.Graph { return b.proto.g }

// buildCandidates precomputes the per-task pruned candidate lists (see
// the cands field). Columns are time-ascending and current
// non-increasing, so exact-duplicate (time, current) columns are always
// adjacent and one comparison against the last survivor finds them all.
func (s *Scheduler) buildCandidates() {
	n, m := s.n, s.m
	backing := make([]int32, 0, n*m)
	s.cands = make([][]int32, n)
	for i := 0; i < n; i++ {
		start := len(backing)
		prev := -1
		for j := m - 1; j >= 0; j-- {
			if prev >= 0 && s.df[i*m+j] == s.df[i*m+prev] && s.cf[i*m+j] == s.cf[i*m+prev] {
				continue
			}
			backing = append(backing, int32(j))
			prev = j
		}
		s.cands[i] = backing[start:len(backing):len(backing)]
	}
}

// analyzeLowerBound precomputes the inputs of the candidate lower
// bound's ENR term (see lowerBound): per-task suffix minima of the
// charge-energy row (minEfFrom) and the fold-rounding budget enrSlack.
//
// The bound compares two float quantities standing in for real sums: the
// suitability's en (a left-to-right fold of n non-negative stored
// energies) and the bound's en (two adds over incrementally maintained
// partial sums, each touched O(n) times per pass). Every intermediate
// magnitude is bounded by the sum of per-task maximum energies, so the
// total divergence between the float expressions and the real sums they
// bound is below gamma_n times that magnitude per fold. gamma here is
// ~10x the combined worst-case constant of the ~4n float operations
// involved (each contributing u/(1-4n·u), u = 2^-53), so the budget is
// safely conservative while still ~1e-12-scale for realistic inputs —
// it never eats real pruning power.
func (s *Scheduler) analyzeLowerBound() {
	n, m := s.n, s.m
	s.minEfFrom = make([]float64, n*m)
	var sumMaxEf float64
	for i := 0; i < n; i++ {
		hi := s.ef[i*m]
		lo := s.ef[i*m+m-1]
		s.minEfFrom[i*m+m-1] = lo
		for j := m - 2; j >= 0; j-- {
			v := s.ef[i*m+j]
			if v > hi {
				hi = v
			}
			if v < lo {
				lo = v
			}
			s.minEfFrom[i*m+j] = lo
		}
		sumMaxEf += hi
	}
	if s.eMax <= s.eMin {
		return // ENR is identically zero (factorsFrom guards the division)
	}
	gamma := 4e-15 * float64(n+16)
	s.enrSlack = gamma * (sumMaxEf + s.eMin + s.eMax) / (s.eMax - s.eMin)
}

// Graph returns the graph the scheduler was built for.
func (s *Scheduler) Graph() *taskgraph.Graph { return s.g }

// Deadline returns the deadline the scheduler was built for.
func (s *Scheduler) Deadline() float64 { return s.deadline }

// Model returns the battery model used as the cost function.
func (s *Scheduler) Model() battery.Model { return s.model }

// Run executes the iterative algorithm and returns the best schedule
// found. It fails with ErrDeadlineInfeasible when no assignment can meet
// the deadline.
func (s *Scheduler) Run() (*Result, error) {
	return s.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation: the search checks ctx
// between iterations, between windows and between sequence positions
// inside the backward design-point pass, so even a single large job
// stops promptly once the caller gives up. On cancellation it returns
// ctx.Err() (context.Canceled or context.DeadlineExceeded) and no
// partial result — a run that completes is bit-identical to one executed
// without a context.
func (s *Scheduler) RunContext(ctx context.Context) (*Result, error) {
	if s.g.MinTotalTime() > s.deadline+timeEps {
		return nil, ErrDeadlineInfeasible
	}
	scr := s.newScratch()
	L := s.initialSequenceInto(scr, scr.seqA)
	var trace *Trace
	if s.opt.RecordTrace {
		trace = &Trace{InitialSequence: s.idsOf(L)}
	}
	bestOrder, bestAssign, bestCost, iterations, err := s.runLoop(ctx, scr, L, trace)
	if err != nil {
		return nil, err
	}
	schedule := s.scheduleFrom(bestOrder, bestAssign)
	p := schedule.Profile(s.g)
	dur := p.TotalTime()
	return &Result{
		Schedule:   schedule,
		Cost:       bestCost,
		Duration:   dur,
		Energy:     p.DeliveredCharge(dur),
		Iterations: iterations,
		Trace:      trace,
	}, nil
}

// runLoop is the paper's outer improvement loop, shared by every entry
// point (RunContext, runFromContext, Runner): evaluate the window sweep
// for the current sequence, fall back to the always-feasible all-fastest
// assignment if no window was feasible, resequence by Equation 4, keep the
// best, and stop at the first non-improving iteration.
//
// L must alias scr.seqA (or be a slice written into it); trace is nil
// unless the caller wants per-iteration history. The returned order and
// assignment alias scr.ordBest/scr.asgBest — callers materialize them
// before reusing the scratch.
func (s *Scheduler) runLoop(ctx context.Context, scr *runScratch, L []int, trace *Trace) (bestOrder, bestAssign []int, bestCost float64, iterations int, err error) {
	bestCost = math.Inf(1)
	prevIterCost := math.Inf(1)
	cur, next := L, scr.seqB

	for iter := 0; iter < s.opt.MaxIterations; iter++ {
		iterations++
		wAssign, wCost, windows := s.windows(ctx, cur, scr)
		if err = ctx.Err(); err != nil {
			return nil, nil, 0, 0, err
		}
		it := IterationTrace{WindowCost: wCost, BestWindow: -1}
		if trace != nil {
			it.Sequence = s.idsOf(cur)
			it.Windows = windows
			for k := range windows {
				if windows[k].Feasible && (it.BestWindow < 0 || windows[k].Cost < windows[it.BestWindow].Cost) {
					it.BestWindow = k
				}
			}
		}
		if wAssign == nil {
			// No window produced a feasible assignment. The paper's
			// pseudocode does not reach this state for its inputs;
			// we fall back to the always-feasible all-fastest
			// assignment so a caller with a met-able deadline never
			// gets an error (see DESIGN.md §2).
			wAssign = scr.fallback
			for i := range wAssign {
				wAssign[i] = 0
			}
			wCost = s.costOfInto(cur, wAssign, scr.profile[:0])
		}

		iterCost := wCost
		iterOrder := cur
		if !s.opt.DisableResequencing {
			Lw := s.weightedSequenceInto(wAssign, scr, next)
			cw := s.costOfInto(Lw, wAssign, scr.profile[:0])
			if trace != nil {
				it.WeightedSequence = s.idsOf(Lw)
				it.WeightedCost = cw
			}
			if cw < iterCost {
				iterCost = cw
				iterOrder = Lw
			}
			// Double-buffer swap: Lw drives the next iteration; the
			// old sequence buffer becomes the next resequencing
			// target (after iterOrder is consumed below).
			cur, next = Lw, cur
		}
		it.IterationCost = iterCost
		if trace != nil {
			it.Assignment = s.assignmentMap(wAssign)
			trace.Iterations = append(trace.Iterations, it)
		}

		if iterCost < bestCost {
			bestCost = iterCost
			scr.ordBest = append(scr.ordBest[:0], iterOrder...)
			scr.asgBest = append(scr.asgBest[:0], wAssign...)
		}
		if iterCost >= prevIterCost || s.opt.DisableResequencing {
			break
		}
		prevIterCost = iterCost
	}
	return scr.ordBest, scr.asgBest, bestCost, iterations, nil
}

// initialSequence is the paper's SequenceDecEnergy: list scheduling with a
// static per-task weight (average current by default; see InitialWeight),
// larger weights scheduled earlier among ready tasks.
func (s *Scheduler) initialSequence() []int {
	w := s.avgCur
	if s.opt.InitialOrder == WeightAvgEnergy {
		w = s.avgEn
	}
	return s.listSchedule(w)
}

// initialSequenceInto is initialSequence writing into the scratch-backed
// buffer out.
//
//battsched:hotpath
func (s *Scheduler) initialSequenceInto(scr *runScratch, out []int) []int {
	w := s.avgCur
	if s.opt.InitialOrder == WeightAvgEnergy {
		w = s.avgEn
	}
	return s.listScheduleCore(w, scr.indeg, scr.heap[:0], out[:0])
}

// InitialSequence exposes the first-iteration order as task IDs (used by
// tests and the experiment harness).
func (s *Scheduler) InitialSequence() []int { return s.idsOf(s.initialSequence()) }

// weightedSequenceInto is the paper's FindWeightedSequence: Equation 4
// assigns every task the sum of the assigned-design-point currents over
// the subgraph rooted at it (read off the precomputed reachability
// bitsets), then list-schedules by decreasing weight into out.
//
//battsched:hotpath
func (s *Scheduler) weightedSequenceInto(assign []int, scr *runScratch, out []int) []int {
	w := scr.weights
	for i := 0; i < s.n; i++ {
		var sum float64
		for wi, word := range s.reachBits[i] {
			base := wi * 64
			for word != 0 {
				u := base + bits.TrailingZeros64(word)
				sum += s.cur[u][assign[u]]
				word &= word - 1
			}
		}
		w[i] = sum
	}
	return s.listScheduleCore(w, scr.indeg, scr.heap[:0], out[:0])
}

// WeightedSequence exposes Equation-4 resequencing for a given assignment
// (task ID → 0-based design point), returning task IDs.
func (s *Scheduler) WeightedSequence(assignment map[int]int) ([]int, error) {
	assign, err := s.assignmentArray(assignment)
	if err != nil {
		return nil, err
	}
	scr := s.newScratch()
	return s.idsOf(s.weightedSequenceInto(assign, scr, scr.seqA)), nil
}

// listSchedule runs the modified list scheduler both sequencers share:
// repeatedly emit the ready task with the largest weight (ties broken by
// smaller task ID). The result is a topological order by construction.
func (s *Scheduler) listSchedule(weight []float64) []int {
	return s.listScheduleCore(weight, make([]int, s.n), make([]int, 0, s.n), make([]int, 0, s.n))
}

// listScheduleCore is the shared list-scheduling kernel: ready tasks live
// in a max-heap keyed on (weight, -taskID), so each emission costs
// O(log n) instead of the former linear scan plus slice-shift removal.
// The heap's selection rule is exactly the scan's ("largest weight, ties
// to the smaller task ID") and that ordering is total over distinct tasks,
// so the emitted order is identical. indeg, h and out are caller-supplied
// buffers (h and out are appended to from length zero).
//
//battsched:hotpath
func (s *Scheduler) listScheduleCore(weight []float64, indeg, h, out []int) []int {
	for i := 0; i < s.n; i++ {
		indeg[i] = len(s.g.ParentIndices(i))
	}
	for i := 0; i < s.n; i++ {
		if indeg[i] == 0 {
			h = s.heapPush(h, weight, i)
		}
	}
	for len(h) > 0 {
		var u int
		u, h = s.heapPop(h, weight)
		out = append(out, u)
		for _, v := range s.g.ChildIndices(u) {
			indeg[v]--
			if indeg[v] == 0 {
				h = s.heapPush(h, weight, v)
			}
		}
	}
	return out
}

// heapBefore reports whether task a should be emitted before task b:
// larger weight first, ties to the smaller task ID. IDs are unique, so
// the order is total and heap-internal layout can never leak into the
// emitted sequence.
//
//battsched:hotpath
func (s *Scheduler) heapBefore(weight []float64, a, b int) bool {
	if weight[a] != weight[b] {
		return weight[a] > weight[b]
	}
	return s.g.IDAt(a) < s.g.IDAt(b)
}

// heapPush adds x to the ready max-heap.
//
//battsched:hotpath
func (s *Scheduler) heapPush(h []int, weight []float64, x int) []int {
	h = append(h, x)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.heapBefore(weight, h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	return h
}

// heapPop removes and returns the highest-priority ready task.
//
//battsched:hotpath
func (s *Scheduler) heapPop(h []int, weight []float64) (int, []int) {
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(h) && s.heapBefore(weight, h[l], h[best]) {
			best = l
		}
		if r < len(h) && s.heapBefore(weight, h[r], h[best]) {
			best = r
		}
		if best == i {
			break
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
	return top, h
}

// profileInto appends the discharge profile of executing the tasks in
// order L (indices) with the given assignment onto p (one constant-current
// interval per task, the same construction as sched.Schedule.Profile).
//
//battsched:hotpath
func (s *Scheduler) profileInto(L, assign []int, p battery.Profile) battery.Profile {
	for _, ti := range L {
		p = append(p, battery.Interval{Current: s.cur[ti][assign[ti]], Duration: s.d[ti][assign[ti]]})
	}
	return p
}

// costOfInto evaluates the battery cost (sigma at completion) of executing
// the tasks in order L (indices) with the given assignment (indexed by
// task), building the profile into the caller's buffer p.
//
//battsched:hotpath
func (s *Scheduler) costOfInto(L, assign []int, p battery.Profile) float64 {
	p = s.profileInto(L, assign, p)
	return s.model.ChargeLost(p, p.TotalTime())
}

// costOf is costOfInto with a fresh profile, for callers without a scratch.
func (s *Scheduler) costOf(L, assign []int) float64 {
	return s.costOfInto(L, assign, make(battery.Profile, 0, len(L)))
}

// CostOf evaluates sigma at completion for an explicit order (task IDs)
// and assignment (task ID → 0-based design point), exposed for the
// experiment harness and tests.
func (s *Scheduler) CostOf(order []int, assignment map[int]int) (float64, error) {
	assign, err := s.assignmentArray(assignment)
	if err != nil {
		return 0, err
	}
	if len(order) != s.n {
		return 0, fmt.Errorf("core: order has %d tasks, graph has %d", len(order), s.n)
	}
	L := make([]int, len(order))
	for k, id := range order {
		i, ok := s.g.Index(id)
		if !ok {
			return 0, fmt.Errorf("core: unknown task %d in order", id)
		}
		L[k] = i
	}
	return s.costOf(L, assign), nil
}

// scheduleFrom materializes a Schedule from dense-index order/assignment.
func (s *Scheduler) scheduleFrom(order, assign []int) *sched.Schedule {
	return &sched.Schedule{Order: s.idsOf(order), Assignment: s.assignmentMap(assign)}
}

// windows dispatches to the sequential or parallel window evaluator.
// A canceled ctx makes it return early with whatever it has; callers
// must check ctx before trusting the result.
func (s *Scheduler) windows(ctx context.Context, L []int, scr *runScratch) ([]int, float64, []WindowTrace) {
	if s.opt.Parallel {
		return s.evaluateWindowsParallel(ctx, L, scr)
	}
	return s.evaluateWindows(ctx, L, scr)
}

func (s *Scheduler) idsOf(L []int) []int {
	out := make([]int, len(L))
	for k, i := range L {
		out[k] = s.g.IDAt(i)
	}
	return out
}

// idsInto appends the task IDs of the dense indices in L onto out.
//
//battsched:hotpath
func (s *Scheduler) idsInto(L, out []int) []int {
	for _, i := range L {
		out = append(out, s.g.IDAt(i))
	}
	return out
}

func (s *Scheduler) assignmentMap(assign []int) map[int]int {
	out := make(map[int]int, s.n)
	for i := 0; i < s.n; i++ {
		out[s.g.IDAt(i)] = assign[i]
	}
	return out
}

func (s *Scheduler) assignmentArray(assignment map[int]int) ([]int, error) {
	assign := make([]int, s.n)
	for i := 0; i < s.n; i++ {
		id := s.g.IDAt(i)
		j, ok := assignment[id]
		if !ok {
			return nil, fmt.Errorf("core: assignment missing task %d", id)
		}
		if j < 0 || j >= s.m {
			return nil, fmt.Errorf("core: task %d assigned out-of-range design point %d", id, j)
		}
		assign[i] = j
	}
	return assign, nil
}

package core

import (
	"context"
	"math"

	"repro/internal/battery"
)

// This file preserves the straightforward evaluators the scheduler shipped
// with before the hot path was rebuilt around per-run scratch arenas and
// incremental evaluation (see scratch.go and ARCHITECTURE.md §Performance).
// They recompute every quantity from scratch — totalTime per tagged design
// point, a full Energy Vector rescan per escalation step, ENR/CIF over the
// whole sequence — which makes them easy to audit against the paper's
// pseudocode but Θ(n)–Θ(n·m) more expensive per inner-loop evaluation.
//
// They are kept as the reference semantics of the algorithm: the
// equivalence suite (equivalence_test.go) requires the optimized path to
// produce bit-identical Results on every fixture and on seeded random
// graphs. Nothing outside tests calls them. No build tag guards them — a
// tag would let the two paths drift apart unnoticed on builds that never
// set it.

// refDPFScratch is the reference calculateDPF's reusable buffer pair.
type refDPFScratch struct {
	tmp    []int
	frozen []bool
}

func newRefDPFScratch(n int) *refDPFScratch {
	return &refDPFScratch{tmp: make([]int, n), frozen: make([]bool, n)}
}

// refRunContext is the pre-optimization RunContext: the same outer loop,
// window sweep and resequencing, built on the naive evaluators.
func (s *Scheduler) refRunContext(ctx context.Context) (*Result, error) {
	if s.g.MinTotalTime() > s.deadline+timeEps {
		return nil, ErrDeadlineInfeasible
	}
	var trace *Trace
	L := s.refInitialSequence()
	if s.opt.RecordTrace {
		trace = &Trace{InitialSequence: s.idsOf(L)}
	}

	bestCost := math.Inf(1)
	var bestOrder []int
	var bestAssign []int
	prevIterCost := math.Inf(1)
	iterations := 0

	for iter := 0; iter < s.opt.MaxIterations; iter++ {
		iterations++
		wBestAssign, wBestCost, windows := s.refEvaluateWindows(ctx, L)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		it := IterationTrace{WindowCost: wBestCost, BestWindow: -1}
		if s.opt.RecordTrace {
			it.Sequence = s.idsOf(L)
			it.Windows = windows
			for k := range windows {
				if windows[k].Feasible && (it.BestWindow < 0 || windows[k].Cost < windows[it.BestWindow].Cost) {
					it.BestWindow = k
				}
			}
		}
		if wBestAssign == nil {
			wBestAssign = make([]int, s.n)
			wBestCost = s.refCostOf(L, wBestAssign)
		}

		iterCost := wBestCost
		iterOrder := L
		if !s.opt.DisableResequencing {
			Lw := s.refWeightedSequence(wBestAssign)
			cw := s.refCostOf(Lw, wBestAssign)
			if s.opt.RecordTrace {
				it.WeightedSequence = s.idsOf(Lw)
				it.WeightedCost = cw
			}
			if cw < iterCost {
				iterCost = cw
				iterOrder = Lw
			}
			L = Lw
		}
		it.IterationCost = iterCost
		if s.opt.RecordTrace {
			it.Assignment = s.assignmentMap(wBestAssign)
			trace.Iterations = append(trace.Iterations, it)
		}

		if iterCost < bestCost {
			bestCost = iterCost
			bestOrder = append([]int(nil), iterOrder...)
			bestAssign = append([]int(nil), wBestAssign...)
		}
		if iterCost >= prevIterCost || s.opt.DisableResequencing {
			break
		}
		prevIterCost = iterCost
	}

	schedule := s.scheduleFrom(bestOrder, bestAssign)
	p := schedule.Profile(s.g)
	dur := p.TotalTime()
	return &Result{
		Schedule:   schedule,
		Cost:       bestCost,
		Duration:   dur,
		Energy:     p.DeliveredCharge(dur),
		Iterations: iterations,
		Trace:      trace,
	}, nil
}

// refRunFrom is the pre-optimization runFromContext: the iterative loop
// from an explicit initial sequence, without tracing.
func (s *Scheduler) refRunFrom(ctx context.Context, initial []int) (*Result, error) {
	if s.g.MinTotalTime() > s.deadline+timeEps {
		return nil, ErrDeadlineInfeasible
	}
	L := append([]int(nil), initial...)
	bestCost := math.Inf(1)
	var bestOrder, bestAssign []int
	prev := math.Inf(1)
	iterations := 0
	for iter := 0; iter < s.opt.MaxIterations; iter++ {
		iterations++
		wAssign, wCost, _ := s.refEvaluateWindows(ctx, L)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if wAssign == nil {
			wAssign = make([]int, s.n)
			wCost = s.refCostOf(L, wAssign)
		}
		iterCost := wCost
		iterOrder := L
		if !s.opt.DisableResequencing {
			Lw := s.refWeightedSequence(wAssign)
			if cw := s.refCostOf(Lw, wAssign); cw < iterCost {
				iterCost = cw
				iterOrder = Lw
			}
			L = Lw
		}
		if iterCost < bestCost {
			bestCost = iterCost
			bestOrder = append(bestOrder[:0], iterOrder...)
			bestAssign = append(bestAssign[:0], wAssign...)
		}
		if iterCost >= prev || s.opt.DisableResequencing {
			break
		}
		prev = iterCost
	}
	schedule := s.scheduleFrom(bestOrder, bestAssign)
	p := schedule.Profile(s.g)
	dur := p.TotalTime()
	return &Result{
		Schedule:   schedule,
		Cost:       bestCost,
		Duration:   dur,
		Energy:     p.DeliveredCharge(dur),
		Iterations: iterations,
	}, nil
}

// refEvaluateWindows is the naive window sweep: every window's assignment
// re-evaluated independently, WindowTrace rows built unconditionally.
func (s *Scheduler) refEvaluateWindows(ctx context.Context, L []int) (bestAssign []int, bestCost float64, windows []WindowTrace) {
	start := s.m - 2
	if start < 0 {
		start = 0
	}
	for s.columnTime(start) > s.deadline+timeEps {
		if start == 0 {
			return nil, math.Inf(1), nil
		}
		start--
	}
	lo := 0
	switch s.opt.Windows {
	case WindowFirstFeasible:
		lo = start
	case WindowFullOnly:
		start = 0
	}
	bestCost = math.Inf(1)
	for ws := start; ws >= lo; ws-- {
		if ctx.Err() != nil {
			return bestAssign, bestCost, windows
		}
		assign, ok := s.refChooseDesignPoints(ctx, L, ws)
		wt := WindowTrace{WindowStart: ws + 1, Feasible: ok, Cost: math.Inf(1)}
		if ok {
			wt.Cost = s.refCostOf(L, assign)
			wt.Duration = s.totalTime(assign)
			if s.opt.RecordTrace {
				wt.Assignment = s.assignmentMap(assign)
			}
			if wt.Cost < bestCost {
				bestCost = wt.Cost
				bestAssign = assign
			}
		}
		windows = append(windows, wt)
	}
	return bestAssign, bestCost, windows
}

// refChooseDesignPoints is the naive backward pass: a fresh assignment
// slice per call, full suitability recomputation per tagged point.
func (s *Scheduler) refChooseDesignPoints(ctx context.Context, L []int, ws int) ([]int, bool) {
	n, m := s.n, s.m
	assign := make([]int, n)
	for i := range assign {
		assign[i] = m - 1
	}
	posOf := make([]int, n)
	for p, ti := range L {
		posOf[ti] = p
	}

	tsum := s.d[L[n-1]][m-1]
	if n == 1 {
		return assign, tsum <= s.deadline+timeEps
	}

	scratch := newRefDPFScratch(n)
	for pos := n - 2; pos >= 0; pos-- {
		if ctx.Err() != nil {
			return nil, false
		}
		ti := L[pos]
		bestB := math.Inf(1)
		bestJ := -1
		for j := m - 1; j >= ws; j-- {
			b := s.refSuitability(L, posOf, assign, tsum, pos, ti, j, ws, scratch)
			if b < bestB {
				bestB = b
				bestJ = j
			}
		}
		if bestJ < 0 || math.IsInf(bestB, 1) {
			return nil, false
		}
		assign[ti] = bestJ
		tsum += s.d[ti][bestJ]
	}
	return assign, s.totalTime(assign) <= s.deadline+timeEps
}

// refSuitability computes B = SR + CR + ENR + CIF + DPF from the naive
// factor evaluators.
func (s *Scheduler) refSuitability(L, posOf, assign []int, tsum float64, pos, ti, j, ws int, scratch *refDPFScratch) float64 {
	d := s.deadline
	sr := (d - (tsum + s.d[ti][j])) / d
	cr := 0.0
	if s.iMax > s.iMin {
		cr = (s.cur[ti][j] - s.iMin) / (s.iMax - s.iMin)
	}
	enr, cif, dpf := s.refCalculateDPF(L, posOf, assign, pos, ti, j, ws, scratch)
	if math.IsInf(dpf, 1) {
		return math.Inf(1)
	}
	var b float64
	f := s.opt.Factors
	if f.Has(FactorSR) {
		b += sr
	}
	if f.Has(FactorCR) {
		b += cr
	}
	if f.Has(FactorENR) {
		b += enr
	}
	if f.Has(FactorCIF) {
		b += cif
	}
	if f.Has(FactorDPF) {
		b += dpf
	}
	return b
}

// refCalculateDPF is the naive escalation: copy the tagged state, rescan
// the full Energy Vector for every escalation step, recount the column
// occupancy per column, and re-derive ENR/CIF over the whole sequence.
func (s *Scheduler) refCalculateDPF(L, posOf, assign []int, pos, ti, j, ws int, scratch *refDPFScratch) (enr, cif, dpf float64) {
	n, m := s.n, s.m
	tmp := scratch.tmp[:n]
	copy(tmp, assign)
	tmp[ti] = j
	frozen := scratch.frozen[:n]
	for i := range frozen {
		frozen[i] = false
	}

	te := s.totalTime(tmp)
	d := s.deadline
	for te > d+timeEps {
		q := -1
		for _, cand := range s.energyOrder {
			if posOf[cand] < pos && !frozen[cand] {
				q = cand
				break
			}
		}
		if q < 0 {
			enr, cif = s.refFactorsOf(L, tmp)
			return enr, cif, math.Inf(1)
		}
		p := tmp[q]
		if p <= ws {
			frozen[q] = true
			continue
		}
		tmp[q] = p - 1
		te += s.d[q][p-1] - s.d[q][p]
		if p-1 == ws {
			frozen[q] = true
		}
	}

	if pos == 0 {
		dpf = (d - te) / d
	} else {
		ufac := m - 1 - ws
		if ufac > 0 {
			f := 1.0 / float64(ufac)
			x := float64(pos)
			for w := 0; w < ufac; w++ {
				col := w
				if s.opt.DPFColumns == DPFWindowRelative {
					col = ws + w
				}
				cnt := 0
				for y := 0; y < pos; y++ {
					if tmp[L[y]] == col {
						cnt++
					}
				}
				if cnt > 0 {
					dpf += float64(ufac-w) * f * float64(cnt) / x
				}
			}
		}
	}
	enr, cif = s.refFactorsOf(L, tmp)
	return enr, cif, dpf
}

// refFactorsOf re-derives ENR and CIF over the whole sequence.
func (s *Scheduler) refFactorsOf(L []int, tmp []int) (enr, cif float64) {
	var en float64
	inc := 0
	prev := 0.0
	for k, ti := range L {
		c := s.cur[ti][tmp[ti]]
		en += c * s.d[ti][tmp[ti]]
		if k > 0 && prev < c {
			inc++
		}
		prev = c
	}
	if s.n > 1 {
		cif = float64(inc) / float64(s.n-1)
	}
	if s.eMax > s.eMin {
		enr = (en - s.eMin) / (s.eMax - s.eMin)
	}
	return enr, cif
}

// refInitialSequence is SequenceDecEnergy over the naive list scheduler.
func (s *Scheduler) refInitialSequence() []int {
	w := s.avgCur
	if s.opt.InitialOrder == WeightAvgEnergy {
		w = s.avgEn
	}
	return s.refListSchedule(w)
}

// refWeightedSequence is Equation-4 resequencing over the graph's
// reachable-index slices.
func (s *Scheduler) refWeightedSequence(assign []int) []int {
	w := make([]float64, s.n)
	for i := 0; i < s.n; i++ {
		var sum float64
		for _, u := range s.g.ReachableIndices(i) {
			sum += s.cur[u][assign[u]]
		}
		w[i] = sum
	}
	return s.refListSchedule(w)
}

// refListSchedule is the O(n²) ready-list scheduler: linear max scan per
// emitted task plus slice-shift removal.
func (s *Scheduler) refListSchedule(weight []float64) []int {
	indeg := make([]int, s.n)
	for i := 0; i < s.n; i++ {
		indeg[i] = len(s.g.ParentIndices(i))
	}
	ready := make([]int, 0, s.n)
	for i := 0; i < s.n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	order := make([]int, 0, s.n)
	for len(ready) > 0 {
		pick := 0
		for k := 1; k < len(ready); k++ {
			a, b := ready[k], ready[pick]
			if weight[a] > weight[b] || (weight[a] == weight[b] && s.g.IDAt(a) < s.g.IDAt(b)) {
				pick = k
			}
		}
		u := ready[pick]
		ready = append(ready[:pick], ready[pick+1:]...)
		order = append(order, u)
		for _, v := range s.g.ChildIndices(u) {
			indeg[v]--
			if indeg[v] == 0 {
				ready = append(ready, v)
			}
		}
	}
	return order
}

// refCostOf allocates a fresh profile per evaluation.
func (s *Scheduler) refCostOf(L []int, assign []int) float64 {
	p := make(battery.Profile, 0, len(L))
	for _, ti := range L {
		p = append(p, battery.Interval{Current: s.cur[ti][assign[ti]], Duration: s.d[ti][assign[ti]]})
	}
	return s.model.ChargeLost(p, p.TotalTime())
}

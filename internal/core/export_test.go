package core

// dpfForTest drives one calculateDPF candidate evaluation from an explicit
// state, for the worked-example tests: it primes a fresh scratch with the
// base state implied by (L, posOf, assign) — the free tasks and the tagged
// task must sit at the lowest-power column m-1, as they do inside
// chooseDesignPoints — then evaluates tagging the task at sequence
// position pos with design point j and reconstructs the escalated
// hypothetical state closed-form from the stop point so it can be
// inspected.
func (s *Scheduler) dpfForTest(L, posOf, assign []int, pos, ti, j, ws int) (enr, cif, dpf float64, escalated []int) {
	scr := s.newScratch()
	copy(scr.assign, assign)
	copy(scr.posOf, posOf)
	s.primeScratch(L, assign, scr)
	scr.nFree = 0
	for _, cand := range s.energyOrder {
		if posOf[cand] >= pos {
			continue
		}
		scr.rankOf[cand] = scr.nFree
		scr.evSeq[scr.nFree] = cand
		scr.nFree++
	}
	s.fillTrajectory(ws, scr)
	if span := s.m - 1 - ws; span > 0 {
		for r := 0; r < scr.nFree; r++ {
			scr.jumpOf[scr.evSeq[r]] = s.rankMoveDelta(L, posOf, pos, ws, r, ws, scr)
		}
	}
	s.preparePosition(L, posOf, pos, ws, scr)
	tePre := sumFloats(scr.teNow[:ti])
	enr, cif, dpf = s.calculateDPF(L, posOf, tePre, pos, ti, j, ws, scr)
	// factorsAt leaves the candidate's stop point in the prefix memo key;
	// rebuild the escalated column state it implies, tag included.
	k := scr.enPrefixK
	span := s.m - 1 - ws
	full, rem := 0, 0
	if span > 0 {
		full, rem = k/span, k%span
	}
	escalated = append([]int(nil), assign...)
	for r := 0; r < full; r++ {
		escalated[scr.evSeq[r]] = ws
	}
	if rem > 0 {
		escalated[scr.evSeq[full]] = s.m - 1 - rem
	}
	escalated[ti] = j
	return enr, cif, dpf, escalated
}

package core

// dpfForTest drives one calculateDPF candidate evaluation from an explicit
// state, for the worked-example tests: it primes a fresh scratch with the
// base state implied by (L, posOf, assign) — the free tasks and the tagged
// task must sit at the lowest-power column m-1, as they do inside
// chooseDesignPoints — then evaluates tagging the task at sequence
// position pos with design point j WITHOUT undoing the escalation, so the
// escalated hypothetical state can be inspected.
func (s *Scheduler) dpfForTest(L, posOf, assign []int, pos, ti, j, ws int) (enr, cif, dpf float64, escalated []int) {
	scr := s.newScratch()
	copy(scr.assign, assign)
	copy(scr.posOf, posOf)
	s.primeScratch(L, assign, scr)
	for _, cand := range s.energyOrder {
		if posOf[cand] < pos {
			scr.freeEV = append(scr.freeEV, cand)
		}
	}
	for _, f := range L[:pos] {
		scr.colCnt[assign[f]]++
	}
	s.buildTrajectory(posOf, ws, scr)
	enr, cif, dpf = s.calculateDPF(posOf, pos, ti, j, ws, scr)
	// calculateDPF rewinds the mirrors to the candidate's stop point and
	// leaves the tag out of them; reapply it for inspection.
	escalated = append([]int(nil), scr.tmp...)
	escalated[ti] = j
	return enr, cif, dpf, escalated
}

package core

import (
	"testing"

	"repro/internal/battery"
	"repro/internal/sched"
	"repro/internal/taskgraph"
)

// burstGraph is a two-task graph with one hot burst and one cool task —
// the shape where rest between tasks pays off most.
func burstGraph(t *testing.T) *taskgraph.Graph {
	t.Helper()
	var b taskgraph.Builder
	b.AddTask(1, "hot", taskgraph.DesignPoint{Current: 900, Time: 10})
	b.AddTask(2, "cool", taskgraph.DesignPoint{Current: 50, Time: 10})
	b.AddEdge(1, 2)
	return b.MustBuild()
}

func TestOptimizeIdleImprovesBurstSchedule(t *testing.T) {
	g := burstGraph(t)
	s := &sched.Schedule{Order: []int{1, 2}, Assignment: map[int]int{1: 0, 2: 0}}
	m := battery.NewRakhmatov(battery.DefaultBeta)
	plan, err := OptimizeIdle(g, s, 60, m, 16)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Cost >= plan.BaseCost {
		t.Fatalf("idle insertion did not help: %.1f vs %.1f", plan.Cost, plan.BaseCost)
	}
	if plan.TotalIdle() <= 0 {
		t.Fatal("no idle placed despite improvement")
	}
	// The padded profile must stay within the deadline and reproduce
	// the reported cost.
	p := plan.Apply(g, s)
	if p.TotalTime() > 60+1e-9 {
		t.Fatalf("padded profile exceeds deadline: %.2f", p.TotalTime())
	}
	if got := m.ChargeLost(p, p.TotalTime()); almost(got, plan.Cost, 1e-6) == false {
		t.Fatalf("applied profile cost %.4f != plan cost %.4f", got, plan.Cost)
	}
	if IdleSavings(plan) <= 0 {
		t.Fatal("savings should be positive")
	}
}

func TestOptimizeIdleNeverHurts(t *testing.T) {
	// Ideal battery: rest cannot help; the plan must stay all-zero.
	g := burstGraph(t)
	s := &sched.Schedule{Order: []int{1, 2}, Assignment: map[int]int{1: 0, 2: 0}}
	plan, err := OptimizeIdle(g, s, 60, battery.Ideal{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if plan.TotalIdle() != 0 || plan.Cost != plan.BaseCost {
		t.Fatalf("ideal battery should get no idle: %+v", plan)
	}
	if IdleSavings(plan) != 0 {
		t.Fatal("savings should be zero")
	}
}

func TestOptimizeIdleNoSlack(t *testing.T) {
	g := burstGraph(t)
	s := &sched.Schedule{Order: []int{1, 2}, Assignment: map[int]int{1: 0, 2: 0}}
	plan, err := OptimizeIdle(g, s, 20, nil, 0) // deadline == duration
	if err != nil {
		t.Fatal(err)
	}
	if plan.TotalIdle() != 0 {
		t.Fatal("no slack should mean no idle")
	}
}

func TestOptimizeIdleValidates(t *testing.T) {
	g := burstGraph(t)
	s := &sched.Schedule{Order: []int{2, 1}, Assignment: map[int]int{1: 0, 2: 0}}
	if _, err := OptimizeIdle(g, s, 60, nil, 0); err == nil {
		t.Fatal("invalid schedule should be rejected")
	}
	ok := &sched.Schedule{Order: []int{1, 2}, Assignment: map[int]int{1: 0, 2: 0}}
	if _, err := OptimizeIdle(g, ok, 19, nil, 0); err == nil {
		t.Fatal("deadline below duration should be rejected")
	}
}

func TestRunWithIdleOnG3(t *testing.T) {
	g := taskgraph.G3()
	res, plan, err := RunWithIdle(g, taskgraph.G3Deadline, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.BaseCost != res.Cost {
		t.Fatalf("plan base %.1f != run cost %.1f", plan.BaseCost, res.Cost)
	}
	if plan.Cost > plan.BaseCost {
		t.Fatalf("idle increased cost: %.1f > %.1f", plan.Cost, plan.BaseCost)
	}
	// Padded completion must respect the deadline.
	p := plan.Apply(g, res.Schedule)
	if p.TotalTime() > taskgraph.G3Deadline+1e-9 {
		t.Fatalf("padded profile exceeds deadline: %.2f", p.TotalTime())
	}
}

func TestIdlePlacementPrefersAfterBurst(t *testing.T) {
	// Three tasks: cool, hot, cool, with slack. Rest should concentrate
	// after the hot task (position 1), where recovery pays most.
	var b taskgraph.Builder
	b.AddTask(1, "", taskgraph.DesignPoint{Current: 50, Time: 5})
	b.AddTask(2, "", taskgraph.DesignPoint{Current: 900, Time: 5})
	b.AddTask(3, "", taskgraph.DesignPoint{Current: 50, Time: 5})
	b.AddEdge(1, 2).AddEdge(2, 3)
	g := b.MustBuild()
	s := &sched.Schedule{Order: []int{1, 2, 3}, Assignment: map[int]int{1: 0, 2: 0, 3: 0}}
	plan, err := OptimizeIdle(g, s, 35, battery.NewRakhmatov(battery.DefaultBeta), 10)
	if err != nil {
		t.Fatal(err)
	}
	if plan.TotalIdle() == 0 {
		t.Fatal("expected idle to be placed")
	}
	if plan.After[1] < plan.After[0] || plan.After[1] < plan.After[2] {
		t.Fatalf("rest not concentrated after the burst: %v", plan.After)
	}
}

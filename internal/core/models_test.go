package core

import (
	"testing"

	"repro/internal/battery"
	"repro/internal/taskgraph"
)

// TestSchedulerWithAlternativeModels runs the full algorithm with every
// battery model plugged in through the Options.Model seam. All must yield
// valid deadline-feasible schedules; the relative quality ordering is
// model-dependent and not asserted.
func TestSchedulerWithAlternativeModels(t *testing.T) {
	g := taskgraph.G3()
	models := []battery.Model{
		battery.NewRakhmatov(0.273),
		battery.Ideal{},
		battery.NewPeukert(1.2, 100),
		battery.NewKiBaM(200000, 0.6, 0.05),
	}
	for _, m := range models {
		s, err := New(g, taskgraph.G3Deadline, Options{Model: m})
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if err := res.Schedule.ValidateDeadline(g, taskgraph.G3Deadline); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if res.Cost < 0 {
			t.Fatalf("%s: negative cost %g", m.Name(), res.Cost)
		}
	}
}

// TestIdealModelReducesToEnergyMinimization: with the ideal battery the
// cost is just the delivered charge, so the result can never beat the
// exact minimum-energy assignment's energy — and should land close to it.
func TestIdealModelReducesToEnergyMinimization(t *testing.T) {
	g := taskgraph.G3()
	s, err := New(g, taskgraph.G3Deadline, Options{Model: battery.Ideal{}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The DP optimum energy at 230 is 11797 (verified in the baseline
	// tests against the paper's Table 4 machinery).
	const optimalEnergy = 11797
	if res.Cost < optimalEnergy-1 {
		t.Fatalf("ideal-model cost %.1f beats the provable energy optimum %d", res.Cost, optimalEnergy)
	}
	if res.Cost > optimalEnergy*1.25 {
		t.Fatalf("ideal-model cost %.1f more than 25%% above the energy optimum %d", res.Cost, optimalEnergy)
	}
}

// TestG2Deadline55Anchor pins the facade-level Table 4 anchor: ours on
// G2 at the tight deadline reproduces the paper's 30913 exactly.
func TestG2Deadline55Anchor(t *testing.T) {
	g := taskgraph.G2()
	s, err := New(g, 55, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(res.Cost, 30913, 1.0) {
		t.Fatalf("G2@55 sigma = %.2f, want 30913 ± 1 (Table 4)", res.Cost)
	}
}

// TestNeverBeatsExhaustiveOptimum: on random small instances the
// heuristic must never report a cost below the branch-and-bound optimum
// (that would mean the two disagree about the cost function).
func TestNeverBeatsExhaustiveOptimum(t *testing.T) {
	// Import cycle prevents using internal/baseline here; replicate a
	// tiny exhaustive search over this fixed 4-task diamond instead.
	var b taskgraph.Builder
	b.AddTask(1, "", taskgraph.DesignPoint{Current: 500, Time: 2}, taskgraph.DesignPoint{Current: 120, Time: 4})
	b.AddTask(2, "", taskgraph.DesignPoint{Current: 700, Time: 1}, taskgraph.DesignPoint{Current: 150, Time: 2.5})
	b.AddTask(3, "", taskgraph.DesignPoint{Current: 400, Time: 1.5}, taskgraph.DesignPoint{Current: 90, Time: 3})
	b.AddTask(4, "", taskgraph.DesignPoint{Current: 600, Time: 2}, taskgraph.DesignPoint{Current: 130, Time: 4.5})
	b.AddEdge(1, 2).AddEdge(1, 3).AddEdge(2, 4).AddEdge(3, 4)
	g := b.MustBuild()
	const deadline = 12.0
	model := battery.NewRakhmatov(0.273)

	best := 1e18
	orders := [][]int{{1, 2, 3, 4}, {1, 3, 2, 4}}
	for _, order := range orders {
		for mask := 0; mask < 16; mask++ {
			var p battery.Profile
			var dur float64
			for k, id := range order {
				j := (mask >> uint(k)) & 1
				pt := g.Task(id).Points[j]
				p = append(p, battery.Interval{Current: pt.Current, Duration: pt.Time})
				dur += pt.Time
			}
			if dur > deadline {
				continue
			}
			if c := model.ChargeLost(p, dur); c < best {
				best = c
			}
		}
	}
	s, err := New(g, deadline, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost < best-1e-6 {
		t.Fatalf("heuristic cost %.4f below exhaustive optimum %.4f — cost functions disagree", res.Cost, best)
	}
	if res.Cost > best*1.25 {
		t.Logf("note: heuristic %.1f vs optimum %.1f (%.1f%% gap) on this tiny instance", res.Cost, best, (res.Cost/best-1)*100)
	}
}

package core

import (
	"fmt"
	"math"

	"repro/internal/battery"
	"repro/internal/sched"
	"repro/internal/taskgraph"
)

// This file extends the paper: its Section 3 motivates the recovery
// effect (rest periods let the battery regain charge) but the algorithm
// never *inserts* rest — it only reorders and rescales work. When a
// schedule finishes before the deadline, the leftover slack can be spent
// as idle intervals placed between tasks, where the battery model rewards
// them most. IdlePlan computes such a placement greedily.

// IdlePlan is a slack-as-rest assignment for a schedule: After[k] minutes
// of idle time are inserted after the k-th task of the order.
type IdlePlan struct {
	// After[k] is the rest inserted after position k (minutes, >= 0).
	After []float64
	// Cost is sigma at the padded schedule's completion time.
	Cost float64
	// BaseCost is sigma of the unpadded schedule, for comparison.
	BaseCost float64
}

// TotalIdle returns the summed rest time.
func (p *IdlePlan) TotalIdle() float64 {
	var s float64
	for _, v := range p.After {
		s += v
	}
	return s
}

// Apply converts the plan into a discharge profile: task intervals with
// the planned rests interleaved (zero-length rests are skipped).
func (p *IdlePlan) Apply(g *taskgraph.Graph, s *sched.Schedule) battery.Profile {
	out := make(battery.Profile, 0, 2*len(s.Order))
	for k, id := range s.Order {
		pt := g.Task(id).Points[s.Assignment[id]]
		out = append(out, battery.Interval{Current: pt.Current, Duration: pt.Time})
		if k < len(p.After) && p.After[k] > 0 {
			out = append(out, battery.Interval{Current: 0, Duration: p.After[k]})
		}
	}
	return out
}

// OptimizeIdle distributes the schedule's deadline slack as rest periods,
// greedily placing one chunk at a time at the position that lowers sigma
// (evaluated at the padded completion time) the most, until the slack is
// exhausted or no placement helps. chunks controls the granularity
// (default 16 chunks of slack). The returned plan never increases cost:
// if no rest helps, all After entries are zero and Cost == BaseCost.
//
// Only interior positions (after tasks 1..n-1) receive rest: sigma decays
// monotonically once the last task ends, so trailing rest would "improve"
// every schedule for free without changing the battery state at the end
// of useful work. Interior rest is the genuine trade-off — it delays the
// remaining tasks toward the evaluation horizon but lets earlier bursts
// recover — and is the mechanism behind the paper's Section 3
// recovery-effect discussion.
func OptimizeIdle(g *taskgraph.Graph, s *sched.Schedule, deadline float64, m battery.Model, chunks int) (*IdlePlan, error) {
	if err := s.ValidateDeadline(g, deadline); err != nil {
		return nil, err
	}
	if m == nil {
		m = battery.NewRakhmatov(battery.DefaultBeta)
	}
	if chunks <= 0 {
		chunks = 16
	}
	n := len(s.Order)
	plan := &IdlePlan{After: make([]float64, n)}
	base := s.Profile(g)
	plan.BaseCost = m.ChargeLost(base, base.TotalTime())
	plan.Cost = plan.BaseCost

	slack := deadline - s.Duration(g)
	if slack <= 0 {
		return plan, nil
	}
	chunk := slack / float64(chunks)

	evalWith := func(after []float64) float64 {
		p := make(battery.Profile, 0, 2*n)
		for k, id := range s.Order {
			pt := g.Task(id).Points[s.Assignment[id]]
			p = append(p, battery.Interval{Current: pt.Current, Duration: pt.Time})
			if after[k] > 0 {
				p = append(p, battery.Interval{Current: 0, Duration: after[k]})
			}
		}
		return m.ChargeLost(p, p.TotalTime())
	}

	trial := make([]float64, n)
	for remaining := slack; remaining > chunk/2; remaining -= chunk {
		bestPos := -1
		bestCost := plan.Cost
		for k := 0; k < n-1; k++ {
			copy(trial, plan.After)
			trial[k] += chunk
			if c := evalWith(trial); c < bestCost-1e-12 {
				bestCost = c
				bestPos = k
			}
		}
		if bestPos < 0 {
			break // no placement helps; stop spending slack
		}
		plan.After[bestPos] += chunk
		plan.Cost = bestCost
	}
	return plan, nil
}

// RunWithIdle runs the full iterative algorithm and then spends the
// remaining deadline slack as recovery rest. It returns the scheduler
// result and the idle plan (which may be all-zero when rest cannot help).
func RunWithIdle(g *taskgraph.Graph, deadline float64, opt Options) (*Result, *IdlePlan, error) {
	s, err := New(g, deadline, opt)
	if err != nil {
		return nil, nil, err
	}
	res, err := s.Run()
	if err != nil {
		return nil, nil, err
	}
	plan, err := OptimizeIdle(g, res.Schedule, deadline, s.Model(), 0)
	if err != nil {
		return nil, nil, fmt.Errorf("core: idle optimization: %w", err)
	}
	return res, plan, nil
}

// IdleSavings reports the relative sigma reduction of a plan (0 when rest
// does not help).
func IdleSavings(p *IdlePlan) float64 {
	if p.BaseCost == 0 {
		return 0
	}
	return math.Max(0, (p.BaseCost-p.Cost)/p.BaseCost)
}

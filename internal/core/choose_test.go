package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/taskgraph"
)

// fig4Graph reconstructs the paper's Figure 4 worked example: five tasks
// with four design points, energy vector E = [3,4,5,1,2]. Durations are
// chosen so that, with T5@DP4 and T4@DP1 fixed and T3 tagged at DP2, the
// deadline is met exactly after the first free task (T1) escalates
// DP4 → DP3 → DP2, leaving T1@DP2 and T2@DP4 — the state the paper
// evaluates to DPF = 1/3.
func fig4Graph(t *testing.T) *taskgraph.Graph {
	t.Helper()
	var b taskgraph.Builder
	// Per-task current scale fixes the average-energy order:
	// avgE(T3) < avgE(T4) < avgE(T5) < avgE(T1) < avgE(T2).
	scale := map[int]float64{3: 1, 4: 2, 5: 3, 1: 4, 2: 5}
	for id := 1; id <= 5; id++ {
		c := scale[id]
		b.AddTask(id, "",
			taskgraph.DesignPoint{Current: 8 * c, Time: 1},
			taskgraph.DesignPoint{Current: 4 * c, Time: 2},
			taskgraph.DesignPoint{Current: 2 * c, Time: 3},
			taskgraph.DesignPoint{Current: 1 * c, Time: 4},
		)
	}
	return b.MustBuild()
}

// TestDPFWorkedExampleFig4 drives calculateDPF with the exact state of the
// paper's Figure 4 and requires DPF = 1/3 (the paper's hand computation:
// f = 1/3, x = 2 free nodes, F4 = 1/2, F3 = 0, F2 = 1/2, F1 = 0).
func TestDPFWorkedExampleFig4(t *testing.T) {
	g := fig4Graph(t)
	// Deadline 13: with T5@DP4 (4), T4@DP1 (1), T3 tagged DP2 (2) and
	// free T1, T2 at DP4 (4+4), Te = 15 > 13; T1→DP3 gives 14 > 13;
	// T1→DP2 gives 13 ≤ 13. Exactly the paper's two escalation steps.
	s := mustScheduler(t, g, 13, Options{})

	// Verify the energy vector is the paper's E = [3,4,5,1,2].
	wantE := []int{3, 4, 5, 1, 2}
	for k, ti := range s.energyOrder {
		if g.IDAt(ti) != wantE[k] {
			got := make([]int, len(s.energyOrder))
			for i, x := range s.energyOrder {
				got[i] = g.IDAt(x)
			}
			t.Fatalf("energy vector = %v, want %v", got, wantE)
		}
	}

	// Sequence positions: T1,T2,T3,T4,T5 (IDs are already a topological
	// order; there are no edges). T3 is at position 2, so positions 0
	// and 1 (T1, T2) are free.
	L := []int{0, 1, 2, 3, 4} // dense indices == ID-1 here
	posOf := []int{0, 1, 2, 3, 4}
	assign := []int{3, 3, 3, 0, 3} // T4@DP1 fixed, T5@DP4 fixed, free at DP4
	pos := 2                       // T3 tagged
	tagged := 2                    // dense index of T3
	j := 1                         // DP2 (0-based 1)
	ws := 0                        // full window

	enr, cif, dpf, escalated := s.dpfForTest(L, posOf, assign, pos, tagged, j, ws)
	if !almost(dpf, 1.0/3.0, 1e-12) {
		t.Fatalf("DPF = %v, want 1/3", dpf)
	}
	if math.IsInf(enr, 0) || enr < 0 || enr > 1 {
		t.Fatalf("ENR out of range: %v", enr)
	}
	if cif < 0 || cif > 1 {
		t.Fatalf("CIF out of range: %v", cif)
	}
	// The escalated hypothetical state leaves T1 at DP2 and T2 at DP4.
	if escalated[0] != 1 || escalated[1] != 3 {
		t.Fatalf("escalated state = %v, want T1@DP2(1), T2@DP4(3)", escalated[:2])
	}
}

// TestDPFInfiniteWhenNoFreeTasks: when escalation runs out of free tasks
// before the deadline fits, DPF must be +Inf so the tagged point is never
// chosen.
func TestDPFInfiniteWhenNoFreeTasks(t *testing.T) {
	g := fig4Graph(t)
	s := mustScheduler(t, g, 13, Options{})
	L := []int{0, 1, 2, 3, 4}
	posOf := []int{0, 1, 2, 3, 4}
	// Same state as Fig. 4 but a deadline so tight that even both free
	// tasks at DP1 cannot fit: fixed+tagged = 4+1+2 = 7, free minimum
	// 1+1 = 2, so anything below 9 is hopeless.
	s.deadline = 8
	assign := []int{3, 3, 3, 0, 3}
	_, _, dpf, _ := s.dpfForTest(L, posOf, assign, 2, 2, 1, 0)
	if !math.IsInf(dpf, 1) {
		t.Fatalf("DPF = %v, want +Inf", dpf)
	}
}

// TestDPFLastTaskUsesSlackRatio: at sequence position 0 there are no free
// tasks and DPF becomes (d − Te)/d.
func TestDPFLastTaskUsesSlackRatio(t *testing.T) {
	g := fig4Graph(t)
	s := mustScheduler(t, g, 20, Options{})
	L := []int{0, 1, 2, 3, 4}
	posOf := []int{0, 1, 2, 3, 4}
	// Everything fixed except position 0 (T1), tagged at DP1 (time 1).
	assign := []int{3, 2, 2, 1, 3} // others: 3+3+2+4 = 12
	_, _, dpf, _ := s.dpfForTest(L, posOf, assign, 0, 0, 0, 0)
	te := 1.0 + 3 + 3 + 2 + 4
	want := (20 - te) / 20
	if !almost(dpf, want, 1e-12) {
		t.Fatalf("DPF = %v, want slack ratio %v", dpf, want)
	}
}

// TestEscalationOrderFollowsEnergyVector: the first escalated task must be
// the free task with the smallest average energy (T1 in Fig. 4 — not T2,
// which sits earlier in the sequence but has higher average energy).
func TestEscalationOrderFollowsEnergyVector(t *testing.T) {
	g := fig4Graph(t)
	s := mustScheduler(t, g, 14, Options{}) // one escalation step suffices
	L := []int{0, 1, 2, 3, 4}
	posOf := []int{0, 1, 2, 3, 4}
	assign := []int{3, 3, 3, 0, 3}
	_, _, _, escalated := s.dpfForTest(L, posOf, assign, 2, 2, 1, 0)
	if escalated[0] != 2 || escalated[1] != 3 {
		t.Fatalf("escalation should move T1 first: state %v", escalated[:2])
	}
}

// TestChooseDesignPointsRespectsWindow: no task may be assigned a design
// point faster than the window start.
func TestChooseDesignPointsRespectsWindow(t *testing.T) {
	g := taskgraph.G3()
	s := mustScheduler(t, g, taskgraph.G3Deadline, Options{})
	L := s.initialSequence()
	scr := s.newScratch()
	for ws := 0; ws <= s.m-2; ws++ {
		assign, ok := s.chooseDesignPoints(context.Background(), L, ws, scr)
		if !ok {
			continue
		}
		for i, j := range assign {
			if j < ws {
				t.Fatalf("window %d: task %d assigned column %d", ws+1, g.IDAt(i), j+1)
			}
		}
		if got := s.totalTime(assign); got > s.deadline+1e-9 {
			t.Fatalf("window %d: deadline violated (%.4f)", ws+1, got)
		}
	}
}

// TestChooseDesignPointsLastTaskLowestPower pins the paper's S(n,m)=1 rule.
func TestChooseDesignPointsLastTaskLowestPower(t *testing.T) {
	g := taskgraph.G3()
	s := mustScheduler(t, g, taskgraph.G3Deadline, Options{})
	L := s.initialSequence()
	assign, ok := s.chooseDesignPoints(context.Background(), L, s.m-2, s.newScratch())
	if !ok {
		t.Fatal("window m-1 should be feasible at the paper's deadline")
	}
	last := L[len(L)-1]
	if assign[last] != s.m-1 {
		t.Fatalf("last task assigned column %d, want lowest power %d", assign[last]+1, s.m)
	}
}

// TestEvaluateWindowsWidensUntilFeasible: at deadline 180 (< CT(4) = 219.3,
// >= CT(3) = 175.5) the start window must be 3:5 and the sweep must
// evaluate windows 3, 2, 1.
func TestEvaluateWindowsWidensUntilFeasible(t *testing.T) {
	g := taskgraph.G3()
	s := mustScheduler(t, g, 180, Options{RecordTrace: true})
	L := s.initialSequence()
	_, _, windows := s.evaluateWindows(context.Background(), L, s.newScratch())
	if len(windows) != 3 {
		t.Fatalf("evaluated %d windows, want 3", len(windows))
	}
	for k, want := range []int{3, 2, 1} {
		if windows[k].WindowStart != want {
			t.Fatalf("window starts = %v", windows)
		}
	}
}

// TestWindowPolicies: the ablation policies restrict the sweep as
// documented.
func TestWindowPolicies(t *testing.T) {
	g := taskgraph.G3()
	first := mustScheduler(t, g, taskgraph.G3Deadline, Options{Windows: WindowFirstFeasible, RecordTrace: true})
	_, _, w1 := first.evaluateWindows(context.Background(), first.initialSequence(), first.newScratch())
	if len(w1) != 1 || w1[0].WindowStart != 4 {
		t.Fatalf("first-feasible windows = %v", w1)
	}
	full := mustScheduler(t, g, taskgraph.G3Deadline, Options{Windows: WindowFullOnly, RecordTrace: true})
	_, _, w2 := full.evaluateWindows(context.Background(), full.initialSequence(), full.newScratch())
	if len(w2) != 1 || w2[0].WindowStart != 1 {
		t.Fatalf("full-only windows = %v", w2)
	}
}

// TestFactorAblationsRun: every single-factor configuration must still
// produce valid schedules (they are the ablation benchmarks).
func TestFactorAblationsRun(t *testing.T) {
	g := taskgraph.G3()
	for _, f := range []FactorSet{
		AllFactors &^ FactorSR, AllFactors &^ FactorCR, AllFactors &^ FactorENR,
		AllFactors &^ FactorCIF, AllFactors &^ FactorDPF, FactorDPF,
	} {
		s := mustScheduler(t, g, taskgraph.G3Deadline, Options{Factors: f})
		res, err := s.Run()
		if err != nil {
			t.Fatalf("factors %05b: %v", f, err)
		}
		if err := res.Schedule.ValidateDeadline(g, taskgraph.G3Deadline); err != nil {
			t.Fatalf("factors %05b: %v", f, err)
		}
	}
}

// TestDisableResequencing reduces the run to one iteration.
func TestDisableResequencing(t *testing.T) {
	g := taskgraph.G3()
	s := mustScheduler(t, g, taskgraph.G3Deadline, Options{DisableResequencing: true, RecordTrace: true})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 1 {
		t.Fatalf("iterations = %d, want 1", res.Iterations)
	}
	if res.Trace.Iterations[0].WeightedSequence != nil {
		t.Fatal("resequencing trace present despite being disabled")
	}
	// And the full algorithm must do at least as well.
	full := mustScheduler(t, g, taskgraph.G3Deadline, Options{})
	fres, err := full.Run()
	if err != nil {
		t.Fatal(err)
	}
	if fres.Cost > res.Cost+1e-9 {
		t.Fatalf("resequencing hurt: %.1f vs %.1f", fres.Cost, res.Cost)
	}
}

// TestTraceAssignmentsConsistent: every traced window assignment must be
// deadline-feasible and respect its window.
func TestTraceAssignmentsConsistent(t *testing.T) {
	g := taskgraph.G3()
	s := mustScheduler(t, g, taskgraph.G3Deadline, Options{RecordTrace: true})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range res.Trace.Iterations {
		if !g.IsTopoOrder(it.Sequence) {
			t.Fatalf("traced sequence not topological: %v", it.Sequence)
		}
		for _, w := range it.Windows {
			if !w.Feasible {
				continue
			}
			var dur float64
			for id, j := range w.Assignment {
				if j+1 < w.WindowStart {
					t.Fatalf("window %d assigned column %d to task %d", w.WindowStart, j+1, id)
				}
				dur += g.Task(id).Points[j].Time
			}
			if !almost(dur, w.Duration, 1e-6) {
				t.Fatalf("window duration mismatch: %.4f vs %.4f", dur, w.Duration)
			}
			if dur > taskgraph.G3Deadline+1e-9 {
				t.Fatalf("traced window violates deadline: %.4f", dur)
			}
		}
	}
	if res.Trace.String() == "" {
		t.Fatal("trace should render")
	}
}

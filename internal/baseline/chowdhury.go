package baseline

import (
	"fmt"

	"repro/internal/sched"
	"repro/internal/taskgraph"
)

// ChowdhurySchedule implements the simplified heuristic of reference [7]
// (Chowdhury & Chakrabarti) as the paper characterizes it: start from the
// fastest design points and, walking from the LAST task in the schedule
// toward the first, lower each task's voltage level as far as the deadline
// slack allows. Reference [7]'s own result — slack is better spent on later
// tasks than earlier ones — is exactly why the walk starts at the back.
//
// The order defaults to the graph's deterministic topological order; pass a
// non-nil order to control it (it must be a topological order).
func ChowdhurySchedule(g *taskgraph.Graph, deadline float64, order []int) (*sched.Schedule, error) {
	if order == nil {
		order = g.TopoOrder()
	}
	if !g.IsTopoOrder(order) {
		return nil, fmt.Errorf("baseline: order is not a topological order")
	}
	assign := make(map[int]int, g.N())
	total := 0.0
	for _, id := range order {
		assign[id] = 0
		total += g.Task(id).Points[0].Time
	}
	const eps = 1e-9
	if total > deadline+eps {
		return nil, ErrInfeasible
	}
	for k := len(order) - 1; k >= 0; k-- {
		id := order[k]
		pts := g.Task(id).Points
		for assign[id]+1 < len(pts) {
			grow := pts[assign[id]+1].Time - pts[assign[id]].Time
			if total+grow > deadline+eps {
				break
			}
			assign[id]++
			total += grow
		}
	}
	return &sched.Schedule{Order: append([]int(nil), order...), Assignment: assign}, nil
}

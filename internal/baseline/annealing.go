package baseline

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/battery"
	"repro/internal/sched"
	"repro/internal/taskgraph"
)

// AnnealOptions configures the simulated-annealing comparator. The zero
// value selects moderate defaults.
type AnnealOptions struct {
	// Iterations is the number of proposed moves (default 20000).
	Iterations int
	// StartTemp and EndTemp bound the geometric cooling schedule as
	// fractions of the initial cost (defaults 0.05 and 1e-4).
	StartTemp, EndTemp float64
	// Seed makes the run reproducible.
	Seed int64
	// DeadlinePenalty scales the per-minute penalty for deadline
	// violations during the walk (default: the graph's peak current, so
	// violations always cost more than any recoverable charge).
	DeadlinePenalty float64
}

func (o AnnealOptions) withDefaults(g *taskgraph.Graph) AnnealOptions {
	if o.Iterations == 0 {
		o.Iterations = 20000
	}
	if o.StartTemp == 0 {
		o.StartTemp = 0.05
	}
	if o.EndTemp == 0 {
		o.EndTemp = 1e-4
	}
	if o.DeadlinePenalty == 0 {
		_, iMax := g.CurrentRange()
		o.DeadlinePenalty = 10 * iMax
	}
	return o
}

// Anneal searches (order, assignment) space with simulated annealing. The
// paper dismisses SA as too heavy for on-device use; it is implemented here
// as an off-line quality yardstick for the iterative heuristic. Moves are
// (a) reassigning a random task to a random design point and (b) swapping
// two adjacent sequence entries when precedence allows. Infeasible states
// are admitted with a steep per-minute deadline penalty so the walk can
// cross feasibility boundaries; the returned schedule is always feasible.
func Anneal(g *taskgraph.Graph, deadline float64, m battery.Model, opts AnnealOptions) (*sched.Schedule, float64, error) {
	o := opts.withDefaults(g)
	rng := rand.New(rand.NewSource(o.Seed))
	n := g.N()

	// Start from a feasible schedule: lowest-power-feasible greedy.
	start, err := LowestPowerFeasible(g, deadline)
	if err != nil {
		return nil, 0, err
	}
	order := make([]int, n) // dense indices
	for k, id := range start.Order {
		i, _ := g.Index(id)
		order[k] = i
	}
	assign := make([]int, n)
	for id, j := range start.Assignment {
		i, _ := g.Index(id)
		assign[i] = j
	}

	profile := make(battery.Profile, n)
	evalCost := func(order, assign []int) float64 {
		var total float64
		for k, i := range order {
			p := g.TaskAt(i).Points[assign[i]]
			profile[k] = battery.Interval{Current: p.Current, Duration: p.Time}
			total += p.Time
		}
		c := m.ChargeLost(profile, total)
		if total > deadline {
			c += o.DeadlinePenalty * (total - deadline)
		}
		return c
	}

	cur := evalCost(order, assign)
	bestOrder := append([]int(nil), order...)
	bestAssign := append([]int(nil), assign...)
	bestCost := cur
	t0 := o.StartTemp * cur
	t1 := o.EndTemp * cur
	if t0 <= 0 || t1 <= 0 || t1 > t0 {
		return nil, 0, fmt.Errorf("baseline: bad annealing temperatures start=%g end=%g", t0, t1)
	}
	cool := math.Pow(t1/t0, 1/float64(o.Iterations))

	// Precedence test for adjacent swaps: swapping order[k] and
	// order[k+1] is legal iff there is no edge order[k] -> order[k+1].
	hasEdge := func(a, b int) bool {
		for _, v := range g.ChildIndices(a) {
			if v == b {
				return true
			}
		}
		return false
	}

	temp := t0
	for it := 0; it < o.Iterations; it++ {
		var undo func()
		if n > 1 && rng.Intn(2) == 0 {
			k := rng.Intn(n - 1)
			if hasEdge(order[k], order[k+1]) {
				temp *= cool
				continue
			}
			order[k], order[k+1] = order[k+1], order[k]
			undo = func() { order[k], order[k+1] = order[k+1], order[k] }
		} else {
			i := rng.Intn(n)
			pts := g.TaskAt(i).Points
			if len(pts) == 1 {
				temp *= cool
				continue
			}
			j := rng.Intn(len(pts))
			if j == assign[i] {
				j = (j + 1) % len(pts)
			}
			old := assign[i]
			assign[i] = j
			undo = func() { assign[i] = old }
		}
		cand := evalCost(order, assign)
		if cand <= cur || rng.Float64() < math.Exp((cur-cand)/temp) {
			cur = cand
			if cand < bestCost && feasible(g, order, assign, deadline) {
				bestCost = cand
				copy(bestOrder, order)
				copy(bestAssign, assign)
			}
		} else {
			undo()
		}
		temp *= cool
	}

	out := &sched.Schedule{Order: make([]int, n), Assignment: make(map[int]int, n)}
	for k, i := range bestOrder {
		out.Order[k] = g.IDAt(i)
	}
	for i, j := range bestAssign {
		out.Assignment[g.IDAt(i)] = j
	}
	return out, bestCost, nil
}

func feasible(g *taskgraph.Graph, order, assign []int, deadline float64) bool {
	var total float64
	for _, i := range order {
		total += g.TaskAt(i).Points[assign[i]].Time
	}
	return total <= deadline+1e-9
}

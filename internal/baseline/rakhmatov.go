// Package baseline implements the comparison algorithms the paper measures
// its heuristic against, plus validation oracles:
//
//   - The Rakhmatov–Vrudhula approach of reference [1]: a dynamic program
//     that picks design points minimizing total energy under the deadline,
//     followed by a greedy sequencing using Equation 5 weights.
//   - The Chowdhury–Chakrabarti-style heuristic of reference [7]: scale
//     tasks down as far as possible starting from the last task in the
//     schedule.
//   - A branch-and-bound exhaustive search over (sequence, assignment)
//     pairs that yields the true sigma-optimal schedule on small instances.
//   - Naive baselines (all-fastest; lowest-power-feasible).
//   - Simulated annealing, the kind of heavier search the paper argues is
//     impractical on an embedded platform, included as a quality yardstick.
package baseline

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/battery"
	"repro/internal/sched"
	"repro/internal/taskgraph"
)

// ErrInfeasible is returned when no assignment meets the deadline.
var ErrInfeasible = errors.New("baseline: deadline cannot be met even with the fastest design points")

// timeScale finds an integer grid for the dynamic program: the smallest
// power of ten that makes every design-point time (and the deadline) an
// integer within tolerance. The paper's tables use a 0.1-minute grid. If no
// grid up to maxScale fits exactly, the coarsest safe rounding is used:
// times round UP and the deadline rounds DOWN, so the DP never reports an
// infeasible schedule as feasible.
func timeScale(g *taskgraph.Graph, deadline float64, maxScale int) int {
	const tol = 1e-6
	scale := 1
	for scale <= maxScale {
		ok := true
		check := func(v float64) bool {
			sv := v * float64(scale)
			return math.Abs(sv-math.Round(sv)) < tol
		}
		for i := 0; i < g.N() && ok; i++ {
			for _, p := range g.TaskAt(i).Points {
				if !check(p.Time) {
					ok = false
					break
				}
			}
		}
		if ok && check(deadline) {
			return scale
		}
		scale *= 10
	}
	return maxScale
}

// MinEnergyAssignment solves the design-point selection problem of
// reference [1] exactly: choose one design point per task so that the total
// execution time fits the deadline and the total charge-energy (sum of I·t)
// is minimal. It is a multiple-choice knapsack solved by dynamic
// programming over a discretized time axis (exact for the paper's
// 0.1-minute data). The returned map is task ID → 0-based design point.
func MinEnergyAssignment(g *taskgraph.Graph, deadline float64) (map[int]int, error) {
	if deadline <= 0 {
		return nil, fmt.Errorf("baseline: deadline must be positive, got %g", deadline)
	}
	n := g.N()
	scale := timeScale(g, deadline, 1000)
	budget := int(math.Floor(deadline*float64(scale) + 1e-9))
	// Integer durations, rounded up so feasibility is never overstated.
	dur := make([][]int, n)
	for i := 0; i < n; i++ {
		pts := g.TaskAt(i).Points
		dur[i] = make([]int, len(pts))
		for j, p := range pts {
			dur[i][j] = int(math.Ceil(p.Time*float64(scale) - 1e-9))
		}
	}

	const inf = math.MaxFloat64
	// best[t] = minimal energy of the tasks processed so far finishing
	// within t grid units; choice[i][t] = design point picked for task i
	// at budget t on an optimal path.
	best := make([]float64, budget+1)
	next := make([]float64, budget+1)
	choice := make([][]int16, n)
	for i := range choice {
		choice[i] = make([]int16, budget+1)
	}
	for t := range best {
		best[t] = 0
	}
	for i := 0; i < n; i++ {
		pts := g.TaskAt(i).Points
		for t := 0; t <= budget; t++ {
			next[t] = inf
			choice[i][t] = -1
			for j := range pts {
				d := dur[i][j]
				if d > t {
					continue
				}
				if prev := best[t-d]; prev < inf {
					if e := prev + pts[j].Energy(); e < next[t] {
						next[t] = e
						choice[i][t] = int16(j)
					}
				}
			}
		}
		best, next = next, best
	}
	if best[budget] >= inf {
		return nil, ErrInfeasible
	}
	// Reconstruct the optimal choices from the last task backwards.
	assign := make(map[int]int, n)
	t := budget
	// The DP used best[t] non-increasing in t, but we tracked exact
	// budgets; walk down to the tightest achieving budget first.
	for tt := 0; tt <= budget; tt++ {
		if best[tt] <= best[t] {
			t = tt
			break
		}
	}
	for i := n - 1; i >= 0; i-- {
		j := int(choice[i][t])
		if j < 0 {
			return nil, fmt.Errorf("baseline: internal error reconstructing DP solution at task index %d", i)
		}
		assign[g.IDAt(i)] = j
		t -= dur[i][j]
	}
	return assign, nil
}

// Eq5Sequence is the greedy sequencing of reference [1] as the paper
// describes it: each task v gets weight w(v) = max{I_v, MeanI(G_v)} where
// I_v is the assigned design point's current and MeanI averages the
// assigned currents over the subgraph rooted at v; ready tasks are emitted
// largest weight first (ties by smaller ID).
func Eq5Sequence(g *taskgraph.Graph, assignment map[int]int) ([]int, error) {
	n := g.N()
	cur := make([]float64, n)
	for i := 0; i < n; i++ {
		id := g.IDAt(i)
		j, ok := assignment[id]
		if !ok {
			return nil, fmt.Errorf("baseline: assignment missing task %d", id)
		}
		pts := g.TaskAt(i).Points
		if j < 0 || j >= len(pts) {
			return nil, fmt.Errorf("baseline: task %d assigned out-of-range design point %d", id, j)
		}
		cur[i] = pts[j].Current
	}
	w := make([]float64, n)
	for i := 0; i < n; i++ {
		reach := g.ReachableIndices(i)
		var sum float64
		for _, u := range reach {
			sum += cur[u]
		}
		mean := sum / float64(len(reach))
		w[i] = math.Max(cur[i], mean)
	}
	return listScheduleByWeight(g, w), nil
}

// RakhmatovSchedule runs the full baseline of reference [1] as compared in
// the paper's Table 4: exact minimum-energy design-point selection under
// the deadline, then Equation-5 greedy sequencing.
func RakhmatovSchedule(g *taskgraph.Graph, deadline float64) (*sched.Schedule, error) {
	assign, err := MinEnergyAssignment(g, deadline)
	if err != nil {
		return nil, err
	}
	order, err := Eq5Sequence(g, assign)
	if err != nil {
		return nil, err
	}
	return &sched.Schedule{Order: order, Assignment: assign}, nil
}

// listScheduleByWeight emits ready tasks largest-weight-first (ties by
// smaller task ID), producing a topological order.
func listScheduleByWeight(g *taskgraph.Graph, weight []float64) []int {
	n := g.N()
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		indeg[i] = len(g.ParentIndices(i))
	}
	ready := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	order := make([]int, 0, n)
	for len(ready) > 0 {
		pick := 0
		for k := 1; k < len(ready); k++ {
			a, b := ready[k], ready[pick]
			if weight[a] > weight[b] || (weight[a] == weight[b] && g.IDAt(a) < g.IDAt(b)) {
				pick = k
			}
		}
		u := ready[pick]
		ready = append(ready[:pick], ready[pick+1:]...)
		order = append(order, g.IDAt(u))
		for _, v := range g.ChildIndices(u) {
			indeg[v]--
			if indeg[v] == 0 {
				ready = append(ready, v)
			}
		}
	}
	return order
}

// Cost evaluates sigma at completion for a schedule under the model — the
// number Table 4 compares.
func Cost(g *taskgraph.Graph, s *sched.Schedule, m battery.Model) float64 {
	return s.Cost(g, m)
}

package baseline

import (
	"fmt"
	"math"

	"repro/internal/battery"
	"repro/internal/sched"
	"repro/internal/taskgraph"
)

// OptimalOptions bounds the exhaustive search.
type OptimalOptions struct {
	// MaxTasks rejects graphs larger than this (default 12): the search
	// space is (topological orders) × m^n.
	MaxTasks int
	// MaxNodesVisited aborts the search after this many search-tree
	// nodes (default 20 million) to keep the oracle usable in tests.
	MaxNodesVisited int64
}

func (o OptimalOptions) withDefaults() OptimalOptions {
	if o.MaxTasks == 0 {
		o.MaxTasks = 12
	}
	if o.MaxNodesVisited == 0 {
		o.MaxNodesVisited = 20_000_000
	}
	return o
}

// Optimal finds the true minimum-sigma schedule by branch-and-bound over
// every (topological order, design-point assignment) pair. It is the
// validation oracle for the heuristics on small instances.
//
// Pruning uses two sound bounds: (1) remaining fastest times must fit the
// deadline; (2) sigma at completion is at least the delivered charge, so
// partial-delivered + minimum-remaining-energy below the incumbent is
// required to continue.
func Optimal(g *taskgraph.Graph, deadline float64, m battery.Model, opts OptimalOptions) (*sched.Schedule, float64, error) {
	o := opts.withDefaults()
	n := g.N()
	if n > o.MaxTasks {
		return nil, 0, fmt.Errorf("baseline: graph has %d tasks, exhaustive search capped at %d", n, o.MaxTasks)
	}
	const eps = 1e-9
	if g.MinTotalTime() > deadline+eps {
		return nil, 0, ErrInfeasible
	}

	// Per-task fastest time and minimum energy, for the bounds.
	minT := make([]float64, n)
	minE := make([]float64, n)
	for i := 0; i < n; i++ {
		pts := g.TaskAt(i).Points
		minT[i] = pts[0].Time
		minE[i] = pts[0].Energy()
		for _, p := range pts[1:] {
			if p.Time < minT[i] {
				minT[i] = p.Time
			}
			if e := p.Energy(); e < minE[i] {
				minE[i] = e
			}
		}
	}

	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		indeg[i] = len(g.ParentIndices(i))
	}
	orderBuf := make([]int, 0, n)
	assignBuf := make([]int, n)
	profile := make(battery.Profile, 0, n)

	bestCost := math.Inf(1)
	var bestOrder []int
	var bestAssign []int
	var visited int64
	var remT, remE float64
	for i := 0; i < n; i++ {
		remT += minT[i]
		remE += minE[i]
	}

	var search func(placed int, elapsed, delivered float64) error
	search = func(placed int, elapsed, delivered float64) error {
		visited++
		if visited > o.MaxNodesVisited {
			return fmt.Errorf("baseline: exhaustive search exceeded %d nodes", o.MaxNodesVisited)
		}
		if placed == n {
			if elapsed > deadline+eps {
				return nil
			}
			p := profile
			cost := m.ChargeLost(p, elapsed)
			if cost < bestCost {
				bestCost = cost
				bestOrder = append(bestOrder[:0], orderBuf...)
				bestAssign = append(bestAssign[:0], assignBuf...)
			}
			return nil
		}
		if elapsed+remT > deadline+eps {
			return nil
		}
		if delivered+remE >= bestCost {
			return nil // sigma >= delivered charge, so no improvement possible
		}
		for i := 0; i < n; i++ {
			if indeg[i] != 0 {
				continue
			}
			// Place task i next with each design point.
			indeg[i] = -1 // mark placed
			for _, v := range g.ChildIndices(i) {
				indeg[v]--
			}
			orderBuf = append(orderBuf, i)
			remT -= minT[i]
			remE -= minE[i]
			for j, p := range g.TaskAt(i).Points {
				assignBuf[i] = j
				profile = append(profile, battery.Interval{Current: p.Current, Duration: p.Time})
				if err := search(placed+1, elapsed+p.Time, delivered+p.Energy()); err != nil {
					return err
				}
				profile = profile[:len(profile)-1]
			}
			remT += minT[i]
			remE += minE[i]
			orderBuf = orderBuf[:len(orderBuf)-1]
			for _, v := range g.ChildIndices(i) {
				indeg[v]++
			}
			indeg[i] = 0
		}
		return nil
	}
	if err := search(0, 0, 0); err != nil {
		return nil, 0, err
	}
	if bestOrder == nil {
		return nil, 0, ErrInfeasible
	}
	out := &sched.Schedule{Order: make([]int, n), Assignment: make(map[int]int, n)}
	for k, i := range bestOrder {
		out.Order[k] = g.IDAt(i)
	}
	for i, j := range bestAssign {
		out.Assignment[g.IDAt(i)] = j
	}
	return out, bestCost, nil
}

// CountTopoOrders counts the topological orders of the graph up to limit
// (it stops counting there); useful for sizing exhaustive runs in tests.
func CountTopoOrders(g *taskgraph.Graph, limit int64) int64 {
	n := g.N()
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		indeg[i] = len(g.ParentIndices(i))
	}
	var count int64
	var walk func(placed int)
	walk = func(placed int) {
		if count >= limit {
			return
		}
		if placed == n {
			count++
			return
		}
		for i := 0; i < n; i++ {
			if indeg[i] != 0 {
				continue
			}
			indeg[i] = -1
			for _, v := range g.ChildIndices(i) {
				indeg[v]--
			}
			walk(placed + 1)
			for _, v := range g.ChildIndices(i) {
				indeg[v]++
			}
			indeg[i] = 0
			if count >= limit {
				return
			}
		}
	}
	walk(0)
	return count
}

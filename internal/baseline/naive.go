package baseline

import (
	"sort"

	"repro/internal/sched"
	"repro/internal/taskgraph"
)

// AllFastest assigns every task its fastest (highest-current) design point
// in the graph's deterministic topological order — the schedule with the
// most slack and the most wasteful current profile. It is feasible
// whenever any schedule is.
func AllFastest(g *taskgraph.Graph, deadline float64) (*sched.Schedule, error) {
	order := g.TopoOrder()
	assign := make(map[int]int, g.N())
	total := 0.0
	for _, id := range order {
		assign[id] = 0
		total += g.Task(id).Points[0].Time
	}
	const eps = 1e-9
	if total > deadline+eps {
		return nil, ErrInfeasible
	}
	return &sched.Schedule{Order: order, Assignment: assign}, nil
}

// LowestPowerFeasible starts every task at its lowest-power design point
// and, while the deadline is violated, speeds up the task whose next-faster
// point costs the least extra energy per minute saved (a greedy
// energy-gradient repair). This is the natural "battery-unaware but
// deadline-aware" strawman: it ignores discharge order and the nonlinear
// battery entirely.
func LowestPowerFeasible(g *taskgraph.Graph, deadline float64) (*sched.Schedule, error) {
	order := g.TopoOrder()
	n := g.N()
	assign := make(map[int]int, n)
	total := 0.0
	for _, id := range order {
		pts := g.Task(id).Points
		assign[id] = len(pts) - 1
		total += pts[len(pts)-1].Time
	}
	const eps = 1e-9
	if g.MinTotalTime() > deadline+eps {
		return nil, ErrInfeasible
	}
	for total > deadline+eps {
		bestID, bestRate := -1, 0.0
		for _, id := range order {
			j := assign[id]
			if j == 0 {
				continue
			}
			pts := g.Task(id).Points
			saved := pts[j].Time - pts[j-1].Time
			if saved <= 0 {
				continue
			}
			extra := pts[j-1].Energy() - pts[j].Energy()
			rate := extra / saved
			if bestID < 0 || rate < bestRate {
				bestID, bestRate = id, rate
			}
		}
		if bestID < 0 {
			return nil, ErrInfeasible
		}
		j := assign[bestID]
		pts := g.Task(bestID).Points
		total -= pts[j].Time - pts[j-1].Time
		assign[bestID] = j - 1
	}
	return &sched.Schedule{Order: order, Assignment: assign}, nil
}

// DecreasingCurrentOrder re-sequences an existing schedule so tasks run in
// non-increasing order of their assigned currents wherever precedence
// allows — the provably best order for independent tasks under the
// Rakhmatov model (paper Section 3). Assignment is unchanged.
func DecreasingCurrentOrder(g *taskgraph.Graph, s *sched.Schedule) *sched.Schedule {
	n := g.N()
	cur := make([]float64, n)
	for i := 0; i < n; i++ {
		id := g.IDAt(i)
		cur[i] = g.TaskAt(i).Points[s.Assignment[id]].Current
	}
	order := listScheduleByWeight(g, cur)
	out := s.Clone()
	out.Order = order
	return out
}

// SortedByID returns the task IDs ascending — a helper for deterministic
// reporting.
func SortedByID(ids []int) []int {
	out := append([]int(nil), ids...)
	sort.Ints(out)
	return out
}

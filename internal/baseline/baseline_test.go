package baseline

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/battery"
	"repro/internal/sched"
	"repro/internal/taskgraph"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func model() battery.Model { return battery.NewRakhmatov(0.273) }

// TestBaselineMatchesPaperTable4G3 pins the reference-[1] baseline against
// the paper's own Table 4 row for G3: sigma = 68120, 48650 and 22686
// mA·min at deadlines 100, 150 and 230. These reproduce exactly, which
// cross-validates the DP, the Equation-5 sequencing AND the battery model
// in one shot.
func TestBaselineMatchesPaperTable4G3(t *testing.T) {
	g := taskgraph.G3()
	want := map[float64]float64{100: 68120, 150: 48650, 230: 22686}
	for d, sigma := range want {
		s, err := RakhmatovSchedule(g, d)
		if err != nil {
			t.Fatalf("deadline %g: %v", d, err)
		}
		if err := s.ValidateDeadline(g, d); err != nil {
			t.Fatalf("deadline %g: %v", d, err)
		}
		got := s.Cost(g, model())
		if !almost(got, sigma, 1.0) {
			t.Errorf("deadline %g: sigma %.2f, want %.0f ± 1 (Table 4)", d, got, sigma)
		}
	}
}

// TestMinEnergyAssignmentOptimal cross-checks the DP against brute force
// over all m^n assignments on small instances.
func TestMinEnergyAssignmentOptimal(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(5) + 2
		m := rng.Intn(3) + 2
		points := func(i int) []taskgraph.DesignPoint {
			base := float64(rng.Intn(400) + 50)
			tb := float64(rng.Intn(40)+5) / 10
			pts := make([]taskgraph.DesignPoint, m)
			for j := 0; j < m; j++ {
				f := 1 + 0.6*float64(j)
				pts[j] = taskgraph.DesignPoint{Current: base / (f * f * f), Time: math.Round(tb*f*10) / 10}
			}
			return pts
		}
		g, err := taskgraph.Random(rng, n, 0.4, points)
		if err != nil {
			return false
		}
		deadline := g.MinTotalTime() + (g.MaxTotalTime()-g.MinTotalTime())*rng.Float64()
		deadline = math.Round(deadline*10) / 10
		if deadline < g.MinTotalTime() {
			deadline = g.MinTotalTime()
		}
		assign, err := MinEnergyAssignment(g, deadline)
		if err != nil {
			return false
		}
		// DP result must be feasible.
		var dur, en float64
		for _, id := range g.TaskIDs() {
			p := g.Task(id).Points[assign[id]]
			dur += p.Time
			en += p.Energy()
		}
		if dur > deadline+1e-6 {
			return false
		}
		// Brute force.
		ids := g.TaskIDs()
		bestE := math.Inf(1)
		var walk func(k int, dur, en float64)
		walk = func(k int, dur, en float64) {
			if dur > deadline+1e-9 {
				return
			}
			if k == len(ids) {
				if en < bestE {
					bestE = en
				}
				return
			}
			for _, p := range g.Task(ids[k]).Points {
				walk(k+1, dur+p.Time, en+p.Energy())
			}
		}
		walk(0, 0, 0)
		return almost(en, bestE, 1e-6*math.Max(1, bestE))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMinEnergyAssignmentInfeasible(t *testing.T) {
	g := taskgraph.G3()
	if _, err := MinEnergyAssignment(g, g.MinTotalTime()-1); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
	if _, err := MinEnergyAssignment(g, 0); err == nil {
		t.Fatal("zero deadline should error")
	}
}

func TestMinEnergyLooseDeadlineAllSlowest(t *testing.T) {
	g := taskgraph.G3()
	assign, err := MinEnergyAssignment(g, g.MaxTotalTime()+10)
	if err != nil {
		t.Fatal(err)
	}
	for id, j := range assign {
		if j != 4 {
			t.Fatalf("task %d not at lowest-power point under a loose deadline", id)
		}
	}
}

func TestEq5SequenceValid(t *testing.T) {
	g := taskgraph.G3()
	assign, err := MinEnergyAssignment(g, 230)
	if err != nil {
		t.Fatal(err)
	}
	order, err := Eq5Sequence(g, assign)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsTopoOrder(order) {
		t.Fatalf("Eq5 order not topological: %v", order)
	}
	if _, err := Eq5Sequence(g, map[int]int{1: 0}); err == nil {
		t.Fatal("incomplete assignment should error")
	}
	if _, err := Eq5Sequence(g, map[int]int{1: 99}); err == nil {
		t.Fatal("out-of-range assignment should error")
	}
}

// TestEq5WeightSemantics pins w(v) = max{I_v, MeanI(G_v)} on a crafted
// graph: a low-current root whose subtree mean is high must outrank a
// middling independent task.
func TestEq5WeightSemantics(t *testing.T) {
	var b taskgraph.Builder
	one := func(c float64) taskgraph.DesignPoint { return taskgraph.DesignPoint{Current: c, Time: 1} }
	b.AddTask(1, "", one(10))  // root of a hot subtree
	b.AddTask(2, "", one(990)) // hot child
	b.AddTask(3, "", one(400)) // independent middling task
	b.AddEdge(1, 2)
	g := b.MustBuild()
	order, err := Eq5Sequence(g, map[int]int{1: 0, 2: 0, 3: 0})
	if err != nil {
		t.Fatal(err)
	}
	// w(1) = max(10, (10+990)/2) = 500 > w(3) = 400, so 1 runs first;
	// then w(2) = 990 > 400.
	want := []int{1, 2, 3}
	for k := range want {
		if order[k] != want[k] {
			t.Fatalf("Eq5 order = %v, want %v", order, want)
		}
	}
}

func TestChowdhury(t *testing.T) {
	g := taskgraph.G3()
	s, err := ChowdhurySchedule(g, 230, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ValidateDeadline(g, 230); err != nil {
		t.Fatal(err)
	}
	// Later tasks get slack first: the last task must be as slow as
	// possible given the budget.
	last := s.Order[len(s.Order)-1]
	if s.Assignment[last] == 0 && s.Duration(g) < 230-g.Task(last).Points[1].Time {
		t.Error("last task left fast despite available slack")
	}
	if _, err := ChowdhurySchedule(g, g.MinTotalTime()-1, nil); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
	if _, err := ChowdhurySchedule(g, 230, []int{1, 2}); err == nil {
		t.Fatal("bad order should error")
	}
	// At a deadline equal to the slowest completion time every task is
	// at its lowest-power point.
	s2, err := ChowdhurySchedule(g, g.MaxTotalTime(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for id, j := range s2.Assignment {
		if j != 4 {
			t.Fatalf("task %d not fully scaled down", id)
		}
	}
}

func TestAllFastest(t *testing.T) {
	g := taskgraph.G2()
	s, err := AllFastest(g, 55)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ValidateDeadline(g, 55); err != nil {
		t.Fatal(err)
	}
	for id, j := range s.Assignment {
		if j != 0 {
			t.Fatalf("task %d not at fastest point", id)
		}
	}
	if _, err := AllFastest(g, 1); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestLowestPowerFeasible(t *testing.T) {
	g := taskgraph.G3()
	for _, d := range []float64{100, 150, 230, 258} {
		s, err := LowestPowerFeasible(g, d)
		if err != nil {
			t.Fatalf("deadline %g: %v", d, err)
		}
		if err := s.ValidateDeadline(g, d); err != nil {
			t.Fatalf("deadline %g: %v", d, err)
		}
	}
	// Loose deadline: everything at lowest power.
	s, _ := LowestPowerFeasible(g, g.MaxTotalTime())
	for id, j := range s.Assignment {
		if j != 4 {
			t.Fatalf("task %d unnecessarily fast", id)
		}
	}
	if _, err := LowestPowerFeasible(g, 1); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestDecreasingCurrentOrder(t *testing.T) {
	g := taskgraph.G3()
	s, err := LowestPowerFeasible(g, 150)
	if err != nil {
		t.Fatal(err)
	}
	d := DecreasingCurrentOrder(g, s)
	if err := d.ValidateDeadline(g, 150); err != nil {
		t.Fatal(err)
	}
	// Same assignment, so the same duration and energy.
	if d.Duration(g) != s.Duration(g) || d.Energy(g) != s.Energy(g) {
		t.Fatal("reordering changed assignment-derived quantities")
	}
	// The reordered schedule should cost no more under the RV model
	// (non-increasing currents are optimal for independent tasks; with
	// precedence it is a heuristic but must hold on this instance).
	if d.Cost(g, model()) > s.Cost(g, model())+1e-6 {
		t.Errorf("decreasing-current order cost %f above original %f", d.Cost(g, model()), s.Cost(g, model()))
	}
}

func TestOptimalSmallChain(t *testing.T) {
	// 2 tasks × 2 points: enumerate by hand.
	var b taskgraph.Builder
	b.AddTask(1, "", taskgraph.DesignPoint{Current: 100, Time: 1}, taskgraph.DesignPoint{Current: 20, Time: 2})
	b.AddTask(2, "", taskgraph.DesignPoint{Current: 80, Time: 1}, taskgraph.DesignPoint{Current: 15, Time: 2})
	b.AddEdge(1, 2)
	g := b.MustBuild()
	m := model()
	s, cost, err := Optimal(g, 3, m, OptimalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ValidateDeadline(g, 3); err != nil {
		t.Fatal(err)
	}
	// Enumerate all four assignments (order is forced by the chain).
	best := math.Inf(1)
	for j1 := 0; j1 < 2; j1++ {
		for j2 := 0; j2 < 2; j2++ {
			c := &sched.Schedule{Order: []int{1, 2}, Assignment: map[int]int{1: j1, 2: j2}}
			if c.Duration(g) > 3 {
				continue
			}
			if got := c.Cost(g, m); got < best {
				best = got
			}
		}
	}
	if !almost(cost, best, 1e-9) {
		t.Fatalf("Optimal cost %f, brute force %f", cost, best)
	}
}

// TestOptimalBeatsHeuristics: on a small random instance the oracle must
// lower-bound every heuristic.
func TestOptimalBeatsHeuristics(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	points := func(i int) []taskgraph.DesignPoint {
		base := float64(rng.Intn(500) + 100)
		tb := float64(rng.Intn(30)+5) / 10
		return []taskgraph.DesignPoint{
			{Current: base, Time: tb},
			{Current: base / 4, Time: tb * 1.8},
			{Current: base / 16, Time: tb * 3},
		}
	}
	g, err := taskgraph.Random(rng, 6, 0.35, points)
	if err != nil {
		t.Fatal(err)
	}
	deadline := math.Round((g.MinTotalTime()+0.55*(g.MaxTotalTime()-g.MinTotalTime()))*10) / 10
	m := model()
	_, opt, err := Optimal(g, deadline, m, OptimalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for name, f := range map[string]func() (*sched.Schedule, error){
		"rakhmatov": func() (*sched.Schedule, error) { return RakhmatovSchedule(g, deadline) },
		"chowdhury": func() (*sched.Schedule, error) { return ChowdhurySchedule(g, deadline, nil) },
		"allfast":   func() (*sched.Schedule, error) { return AllFastest(g, deadline) },
		"lowpower":  func() (*sched.Schedule, error) { return LowestPowerFeasible(g, deadline) },
	} {
		s, err := f()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c := s.Cost(g, m); c < opt-1e-6 {
			t.Fatalf("%s cost %f beats the 'optimal' %f — oracle broken", name, c, opt)
		}
	}
}

func TestOptimalGuards(t *testing.T) {
	g := taskgraph.G3()
	if _, _, err := Optimal(g, 230, model(), OptimalOptions{}); err == nil {
		t.Fatal("15-task exhaustive search should be rejected by default")
	}
	var b taskgraph.Builder
	b.AddTask(1, "", taskgraph.DesignPoint{Current: 1, Time: 5})
	small := b.MustBuild()
	if _, _, err := Optimal(small, 1, model(), OptimalOptions{}); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestAnneal(t *testing.T) {
	g := taskgraph.G2()
	m := model()
	s, cost, err := Anneal(g, 75, m, AnnealOptions{Seed: 1, Iterations: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ValidateDeadline(g, 75); err != nil {
		t.Fatal(err)
	}
	if !almost(cost, s.Cost(g, m), 1e-6) {
		t.Fatalf("reported cost %f != schedule cost %f", cost, s.Cost(g, m))
	}
	// Must not be worse than its own feasible starting point.
	start, _ := LowestPowerFeasible(g, 75)
	if cost > start.Cost(g, m)+1e-6 {
		t.Fatalf("annealing worsened the start: %f vs %f", cost, start.Cost(g, m))
	}
	// Deterministic under a fixed seed.
	s2, cost2, err := Anneal(g, 75, m, AnnealOptions{Seed: 1, Iterations: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if cost2 != cost || s2.String() != s.String() {
		t.Fatal("annealing not deterministic for a fixed seed")
	}
	if _, _, err := Anneal(g, 1, m, AnnealOptions{Seed: 1}); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestCountTopoOrders(t *testing.T) {
	var b taskgraph.Builder
	one := taskgraph.DesignPoint{Current: 1, Time: 1}
	b.AddTask(1, "", one).AddTask(2, "", one).AddTask(3, "", one)
	b.AddEdge(1, 2).AddEdge(2, 3)
	chain := b.MustBuild()
	if got := CountTopoOrders(chain, 100); got != 1 {
		t.Fatalf("chain orders = %d", got)
	}
	var b2 taskgraph.Builder
	b2.AddTask(1, "", one).AddTask(2, "", one).AddTask(3, "", one)
	free := b2.MustBuild()
	if got := CountTopoOrders(free, 100); got != 6 {
		t.Fatalf("3 free tasks orders = %d, want 6", got)
	}
	if got := CountTopoOrders(free, 4); got != 4 {
		t.Fatalf("limit not honored: %d", got)
	}
}

func TestTimeScale(t *testing.T) {
	g := taskgraph.G3()
	if got := timeScale(g, 230, 1000); got != 10 {
		t.Fatalf("G3 time scale = %d, want 10 (0.1-minute grid)", got)
	}
	var b taskgraph.Builder
	b.AddTask(1, "", taskgraph.DesignPoint{Current: 1, Time: 2})
	ints := b.MustBuild()
	if got := timeScale(ints, 10, 1000); got != 1 {
		t.Fatalf("integer time scale = %d, want 1", got)
	}
}

func TestSortedByID(t *testing.T) {
	in := []int{3, 1, 2}
	out := SortedByID(in)
	if out[0] != 1 || out[2] != 3 || in[0] != 3 {
		t.Fatalf("SortedByID = %v (in %v)", out, in)
	}
}

package dvs

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/taskgraph"
)

// TestG3RecipeReproducesFixture regenerates every Table 1 row from its
// reference values (fastest current, slowest time) and compares with the
// G3 fixture to the table's rounding.
func TestG3RecipeReproducesFixture(t *testing.T) {
	g := taskgraph.G3()
	r := Recipe{Factors: G3Factors, Rule: TimeReversedLinear, Round: 1}
	for _, id := range g.TaskIDs() {
		want := g.Task(id).Points
		got, err := r.Points(want[0].Current, want[4].Time)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if math.Abs(got[j].Current-want[j].Current) > 1 {
				t.Errorf("T%d DP%d current %g, fixture %g", id, j+1, got[j].Current, want[j].Current)
			}
			if math.Abs(got[j].Time-want[j].Time) > 0.1001 {
				t.Errorf("T%d DP%d time %g, fixture %g", id, j+1, got[j].Time, want[j].Time)
			}
		}
	}
}

// TestG2RecipeReproducesFixture does the same for the robotic arm data
// (Figure 5), using the slowest point as the reference.
func TestG2RecipeReproducesFixture(t *testing.T) {
	g := taskgraph.G2()
	r := Recipe{Factors: G2Factors, Rule: TimeInverse, Round: 1}
	for _, id := range g.TaskIDs() {
		want := g.Task(id).Points
		got, err := r.Points(want[3].Current, want[3].Time)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if math.Abs(got[j].Current-want[j].Current) > 1 {
				t.Errorf("N%d DP%d current %g, fixture %g", id, j+1, got[j].Current, want[j].Current)
			}
			if math.Abs(got[j].Time-want[j].Time) > 0.1001 {
				t.Errorf("N%d DP%d time %g, fixture %g", id, j+1, got[j].Time, want[j].Time)
			}
		}
	}
}

func TestRecipeValidation(t *testing.T) {
	if _, err := (Recipe{}).Points(100, 1); err == nil {
		t.Fatal("empty factors should error")
	}
	if _, err := (Recipe{Factors: []float64{1, -1}}).Points(100, 1); err == nil {
		t.Fatal("negative factor should error")
	}
	if _, err := (Recipe{Factors: []float64{1}}).Points(-1, 1); err == nil {
		t.Fatal("negative reference current should error")
	}
	if _, err := (Recipe{Factors: []float64{1}}).Points(1, 0); err == nil {
		t.Fatal("zero reference time should error")
	}
	if _, err := (Recipe{Factors: []float64{1}, Rule: TimeRule(99)}).Points(1, 1); err == nil {
		t.Fatal("unknown rule should error")
	}
}

func TestRecipeProducesBuildablePoints(t *testing.T) {
	// Points must satisfy the Graph invariant: times ascending, currents
	// non-increasing.
	for _, r := range []Recipe{
		{Factors: G2Factors, Rule: TimeInverse},
		{Factors: G3Factors, Rule: TimeReversedLinear},
	} {
		pts, err := r.Points(500, 10)
		if err != nil {
			t.Fatal(err)
		}
		for j := 1; j < len(pts); j++ {
			if pts[j].Time <= pts[j-1].Time {
				t.Fatalf("%v: times not ascending: %v", r.Rule, pts)
			}
			if pts[j].Current > pts[j-1].Current {
				t.Fatalf("%v: currents not non-increasing: %v", r.Rule, pts)
			}
		}
	}
}

func TestRecipeVoltageAnnotation(t *testing.T) {
	r := Recipe{Factors: []float64{2, 1}, Rule: TimeInverse, BaseVoltage: 1.0}
	pts, err := r.Points(100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Voltage != 2.0 || pts[1].Voltage != 1.0 {
		t.Fatalf("voltages = %v", pts)
	}
}

func TestPointsFunc(t *testing.T) {
	r := Recipe{Factors: G2Factors, Rule: TimeInverse}
	refs := [][2]float64{{100, 10}, {50, 5}}
	fn, err := r.PointsFunc(refs)
	if err != nil {
		t.Fatal(err)
	}
	p0 := fn(0)
	p2 := fn(2) // cycles back to refs[0]
	if len(p0) != 4 || p0[3].Current != 100 || p0[3].Time != 10 {
		t.Fatalf("fn(0) = %v", p0)
	}
	if p2[3].Current != p0[3].Current {
		t.Fatal("PointsFunc should cycle through refs")
	}
	if _, err := r.PointsFunc(nil); err == nil {
		t.Fatal("empty refs should error")
	}
	if _, err := r.PointsFunc([][2]float64{{-1, 1}}); err == nil {
		t.Fatal("invalid ref should error eagerly")
	}
	// The func must feed straight into a graph generator.
	g, err := taskgraph.Chain(4, fn)
	if err != nil {
		t.Fatal(err)
	}
	if m, ok := g.UniformPointCount(); !ok || m != 4 {
		t.Fatalf("generated graph point count = %d,%v", m, ok)
	}
}

func TestRandomRefs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	refs := RandomRefs(rng, 20, 10, 900, 1, 30)
	if len(refs) != 20 {
		t.Fatalf("got %d refs", len(refs))
	}
	for _, ref := range refs {
		if ref[0] < 10 || ref[0] > 900 || ref[1] < 1 || ref[1] > 30 {
			t.Fatalf("ref out of range: %v", ref)
		}
	}
}

func TestFPGAImplementations(t *testing.T) {
	pts, err := FPGAImplementations(50, 16, 4, 2.0, 1.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("got %d variants", len(pts))
	}
	// Fastest first, slowest (baseline) last.
	if pts[3].Current != 50 || pts[3].Time != 16 {
		t.Fatalf("baseline variant = %v", pts[3])
	}
	if math.Abs(pts[0].Time-2) > 1e-12 { // 16 / 2^3
		t.Fatalf("fastest time = %g", pts[0].Time)
	}
	for j := 1; j < len(pts); j++ {
		if pts[j].Time <= pts[j-1].Time || pts[j].Current > pts[j-1].Current {
			t.Fatalf("FPGA points not monotone: %v", pts)
		}
	}
	// Energy roughly flat when powerGrowth < speedup: parallel variants
	// must not cost more energy than baseline here.
	base := pts[3].Energy()
	if pts[0].Energy() > base {
		t.Fatalf("parallel variant energy %g exceeds baseline %g with powerGrowth<speedup", pts[0].Energy(), base)
	}
	for _, f := range []func() ([]taskgraph.DesignPoint, error){
		func() ([]taskgraph.DesignPoint, error) { return FPGAImplementations(50, 16, 0, 2, 1.8) },
		func() ([]taskgraph.DesignPoint, error) { return FPGAImplementations(50, 16, 3, 1, 1.8) },
		func() ([]taskgraph.DesignPoint, error) { return FPGAImplementations(50, 16, 3, 2, 0.5) },
		func() ([]taskgraph.DesignPoint, error) { return FPGAImplementations(50, -1, 3, 2, 1.8) },
	} {
		if _, err := f(); err == nil {
			t.Error("want parameter error")
		}
	}
}

func TestTimeRuleString(t *testing.T) {
	if TimeInverse.String() == "" || TimeReversedLinear.String() == "" || TimeRule(42).String() == "" {
		t.Fatal("TimeRule strings must be non-empty")
	}
}

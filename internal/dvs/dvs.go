// Package dvs generates design-point tables for tasks, following the
// recipes the paper uses to synthesize its benchmarks: on a
// voltage/frequency-scalable processor, each design point is a discrete
// (V, f) operating level; currents scale with the cube of the voltage
// scaling factor and execution times stretch as the level slows down. For
// FPGA platforms the package instead produces a set of alternative
// implementations trading area/parallelism for time.
//
// The paper derives its tables from a reference design point and a list of
// voltage scaling factors. It states durations are "inversely proportional
// to the scaling factor", but its G3 table actually stretches durations
// linearly along the reversed factor list; both rules are provided (see
// TimeRule) and the fixtures tests pin G2 to TimeInverse and G3 to
// TimeReversedLinear.
package dvs

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/taskgraph"
)

// TimeRule selects how execution time scales across design points.
type TimeRule int

const (
	// TimeInverse stretches time inversely with the voltage scaling
	// factor: D_j = Dref / s_j (the paper's stated rule; matches its G2
	// table, where factors are relative to the slowest point).
	TimeInverse TimeRule = iota
	// TimeReversedLinear stretches time linearly along the reversed
	// factor list: D_j = Dref * s_{m+1-j} (the rule that actually
	// reproduces the paper's G3 table, with factors relative to the
	// fastest point and Dref the slowest time).
	TimeReversedLinear
)

func (r TimeRule) String() string {
	switch r {
	case TimeInverse:
		return "inverse"
	case TimeReversedLinear:
		return "reversed-linear"
	default:
		return fmt.Sprintf("TimeRule(%d)", int(r))
	}
}

// Recipe describes how to expand a reference workload into a design-point
// table.
type Recipe struct {
	// Factors are the voltage scaling factors, one per design point, in
	// design-point order (DP1 first). For TimeInverse they are relative
	// to the slowest point (so the last factor is 1, as in the paper's
	// G2: 2.5, 1.66, 1.25, 1); for TimeReversedLinear they are relative
	// to the fastest point (first factor 1, as in G3: 1, 0.85, 0.68,
	// 0.51, 0.33).
	Factors []float64
	// Rule selects the duration scaling law.
	Rule TimeRule
	// BaseVoltage, if positive, records the reference voltage so the
	// generated points carry absolute voltages (informational).
	BaseVoltage float64
	// Round, if positive, rounds currents and times to that many
	// decimal places — the paper's tables carry one decimal of time and
	// integer currents; Round=1 reproduces that flavor of data.
	Round int
}

// G2Factors are the paper's scaling factors for the robotic arm case study
// (relative to the slowest design point DP4). The paper prints the second
// factor as 1.66, but the Figure 5 currents were generated with 5/3
// (60·(5/3)³ rounds to the printed 278, while 60·1.66³ rounds to 274).
var G2Factors = []float64{2.5, 5.0 / 3.0, 1.25, 1}

// G3Factors are the paper's scaling factors for the illustrative example
// (relative to the fastest design point DP1).
var G3Factors = []float64{1, 0.85, 0.68, 0.51, 0.33}

// Points expands a reference (current, time) pair into a full design-point
// table per the recipe.
//
// For TimeInverse the reference is the SLOWEST point (current refI at the
// lowest voltage, time refT at the lowest speed):
//
//	I_j = refI * s_j^3,  D_j = refT / s_j
//
// For TimeReversedLinear the reference is the FASTEST current and SLOWEST
// time (matching how the paper presents G3):
//
//	I_j = refI * s_j^3,  D_j = refT * s_{m+1-j}
func (r Recipe) Points(refCurrent, refTime float64) ([]taskgraph.DesignPoint, error) {
	m := len(r.Factors)
	if m == 0 {
		return nil, fmt.Errorf("dvs: recipe has no scaling factors")
	}
	if refCurrent < 0 || refTime <= 0 {
		return nil, fmt.Errorf("dvs: reference point must have non-negative current and positive time (got I=%g, D=%g)", refCurrent, refTime)
	}
	for k, s := range r.Factors {
		if s <= 0 {
			return nil, fmt.Errorf("dvs: scaling factor %d must be positive, got %g", k+1, s)
		}
	}
	pts := make([]taskgraph.DesignPoint, m)
	for j := 0; j < m; j++ {
		s := r.Factors[j]
		var d float64
		switch r.Rule {
		case TimeInverse:
			d = refTime / s
		case TimeReversedLinear:
			d = refTime * r.Factors[m-1-j]
		default:
			return nil, fmt.Errorf("dvs: unknown time rule %d", int(r.Rule))
		}
		i := refCurrent * s * s * s
		if r.Round > 0 {
			pow := math.Pow(10, float64(r.Round))
			d = math.Round(d*pow) / pow
			i = math.Round(i)
		}
		v := 0.0
		if r.BaseVoltage > 0 {
			v = r.BaseVoltage * s
		}
		pts[j] = taskgraph.DesignPoint{
			Current: i,
			Time:    d,
			Voltage: v,
			Name:    fmt.Sprintf("DP%d", j+1),
		}
	}
	return pts, nil
}

// PointsFunc adapts a recipe plus per-task reference workloads into the
// generator callback taskgraph's builders expect. refs[i] gives task i's
// (current, time) reference pair; tasks beyond len(refs) cycle through it.
func (r Recipe) PointsFunc(refs [][2]float64) (taskgraph.PointsFunc, error) {
	if len(refs) == 0 {
		return nil, fmt.Errorf("dvs: no reference workloads")
	}
	// Validate eagerly so the callback cannot fail at graph-build time.
	for k, ref := range refs {
		if _, err := r.Points(ref[0], ref[1]); err != nil {
			return nil, fmt.Errorf("dvs: reference %d: %w", k, err)
		}
	}
	return func(i int) []taskgraph.DesignPoint {
		ref := refs[i%len(refs)]
		pts, _ := r.Points(ref[0], ref[1])
		return pts
	}, nil
}

// RandomRefs draws n reference workloads with currents uniform in
// [iLo, iHi] mA and times uniform in [tLo, tHi] minutes — handy for
// synthetic benchmark generation.
func RandomRefs(rng *rand.Rand, n int, iLo, iHi, tLo, tHi float64) [][2]float64 {
	refs := make([][2]float64, n)
	for k := range refs {
		refs[k] = [2]float64{
			iLo + rng.Float64()*(iHi-iLo),
			tLo + rng.Float64()*(tHi-tLo),
		}
	}
	return refs
}

// FPGAImplementations models an FPGA task with alternative bitstreams: a
// baseline implementation plus progressively more parallel variants. Each
// doubling of parallelism divides time by speedup and multiplies current by
// powerGrowth (more active logic). With speedup close to powerGrowth the
// energy stays flat while the time/current trade-off widens, which mirrors
// the FPGA design-space shape the paper describes.
func FPGAImplementations(baseCurrent, baseTime float64, variants int, speedup, powerGrowth float64) ([]taskgraph.DesignPoint, error) {
	if variants < 1 {
		return nil, fmt.Errorf("dvs: need at least one FPGA variant, got %d", variants)
	}
	if speedup <= 1 || powerGrowth <= 1 {
		return nil, fmt.Errorf("dvs: speedup and powerGrowth must exceed 1 (got %g, %g)", speedup, powerGrowth)
	}
	if baseCurrent < 0 || baseTime <= 0 {
		return nil, fmt.Errorf("dvs: base point must have non-negative current and positive time (got I=%g, D=%g)", baseCurrent, baseTime)
	}
	pts := make([]taskgraph.DesignPoint, variants)
	for v := 0; v < variants; v++ {
		// v=variants-1 is the sequential baseline (slowest, lowest
		// current); v=0 the most parallel (fastest, highest current),
		// matching the fastest-first convention.
		k := float64(variants - 1 - v)
		pts[v] = taskgraph.DesignPoint{
			Current: baseCurrent * math.Pow(powerGrowth, k),
			Time:    baseTime / math.Pow(speedup, k),
			Name:    fmt.Sprintf("bs%dx", 1<<uint(k)),
		}
	}
	return pts, nil
}

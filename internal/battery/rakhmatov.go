package battery

import (
	"fmt"
	"math"
)

// DefaultBeta is the diffusion parameter (min^-1/2) the paper uses for its
// illustrative example (Section 4.2).
const DefaultBeta = 0.273

// DefaultTerms is the number of series terms the paper's Equation 1 keeps
// (the sum over m = 1..10).
const DefaultTerms = 10

// Rakhmatov is the Rakhmatov–Vrudhula analytical battery model (ICCAD 2001),
// the paper's Equation 1. It derives, from one-dimensional diffusion of the
// electrolyte's active species, the apparent charge lost by time T under a
// piecewise-constant discharge profile:
//
//	sigma(T) = sum_k I_k [ d_k + 2 * sum_{m=1..Terms}
//	            (exp(-b²m²(T - t_k - d_k)) - exp(-b²m²(T - t_k))) / (b²m²) ]
//
// where t_k and d_k are the start and duration of interval k (d_k clamped
// at T for in-progress intervals) and b is Beta. The bracketed tail is the
// charge made temporarily unavailable by the concentration gradient; it
// decays during rest, which reproduces both the rate-capacity and the
// recovery effects. The battery is empty when sigma reaches its capacity
// alpha.
//
// The zero value is not useful; construct with NewRakhmatov or set Beta and
// Terms explicitly.
type Rakhmatov struct {
	// Beta is the diffusion parameter in min^-1/2. Larger values mean a
	// "stiffer" battery that recovers faster and wastes less charge; as
	// Beta grows the model converges to the ideal coulomb counter.
	Beta float64
	// Terms is the number of series terms kept (the paper uses 10).
	Terms int
}

// NewRakhmatov returns the model with the given beta and the paper's
// ten-term series. It panics if beta is not positive, because a zero beta
// silently degenerates to a division by zero deep in the series.
func NewRakhmatov(beta float64) Rakhmatov {
	if beta <= 0 || math.IsNaN(beta) {
		panic(fmt.Sprintf("battery: beta must be positive, got %g", beta))
	}
	return Rakhmatov{Beta: beta, Terms: DefaultTerms}
}

// Name implements Model.
func (r Rakhmatov) Name() string { return fmt.Sprintf("rakhmatov(beta=%g)", r.Beta) }

// ChargeLost implements Model. It returns sigma(at) for the profile; times
// beyond the profile end are rest, so sigma relaxes back toward the
// delivered charge. It returns 0 for at <= 0.
func (r Rakhmatov) ChargeLost(p Profile, at float64) float64 {
	if at <= 0 {
		return 0
	}
	b2 := r.Beta * r.Beta
	var sigma float64
	var start float64
	for _, iv := range p {
		if start >= at {
			break
		}
		d := iv.Duration
		if start+d > at {
			d = at - start
		}
		if iv.Current != 0 {
			sigma += iv.Current * (d + 2*r.seriesTail(b2, at-start-d, at-start))
		}
		start += iv.Duration
	}
	return sigma
}

// seriesTail computes sum_{m=1..Terms} (exp(-b²m²·after) - exp(-b²m²·since)) / (b²m²)
// where after = T - t_k - d_k (time since the interval ended) and
// since = T - t_k (time since it began). Both are non-negative with
// after <= since, so every term is non-negative and bounded by d_k.
func (r Rakhmatov) seriesTail(b2, after, since float64) float64 {
	terms := r.Terms
	if terms <= 0 {
		terms = DefaultTerms
	}
	var s float64
	for m := 1; m <= terms; m++ {
		m2 := float64(m) * float64(m)
		k := b2 * m2
		s += (math.Exp(-k*after) - math.Exp(-k*since)) / k
	}
	return s
}

// Unavailable returns the charge bound in the battery interior at time at:
// sigma(at) minus the delivered charge. It is non-negative, grows during
// discharge and decays during rest (the recovery effect).
func (r Rakhmatov) Unavailable(p Profile, at float64) float64 {
	return r.ChargeLost(p, at) - p.DeliveredCharge(at)
}

// ConstantLoadSigma returns sigma(T) in closed form for a constant current
// I applied over [0, T]:
//
//	sigma(T) = I [ T + 2 * sum_m (1 - exp(-b²m²T)) / (b²m²) ]
//
// Used by tests as an independent check of ChargeLost.
func (r Rakhmatov) ConstantLoadSigma(current, T float64) float64 {
	if T <= 0 {
		return 0
	}
	b2 := r.Beta * r.Beta
	terms := r.Terms
	if terms <= 0 {
		terms = DefaultTerms
	}
	var s float64
	for m := 1; m <= terms; m++ {
		k := b2 * float64(m) * float64(m)
		s += (1 - math.Exp(-k*T)) / k
	}
	return current * (T + 2*s)
}

package battery

import (
	"fmt"
	"math"
)

// DefaultBeta is the diffusion parameter (min^-1/2) the paper uses for its
// illustrative example (Section 4.2).
const DefaultBeta = 0.273

// DefaultTerms is the number of series terms the paper's Equation 1 keeps
// (the sum over m = 1..10).
const DefaultTerms = 10

// Rakhmatov is the Rakhmatov–Vrudhula analytical battery model (ICCAD 2001),
// the paper's Equation 1. It derives, from one-dimensional diffusion of the
// electrolyte's active species, the apparent charge lost by time T under a
// piecewise-constant discharge profile:
//
//	sigma(T) = sum_k I_k [ d_k + 2 * sum_{m=1..Terms}
//	            (exp(-b²m²(T - t_k - d_k)) - exp(-b²m²(T - t_k))) / (b²m²) ]
//
// where t_k and d_k are the start and duration of interval k (d_k clamped
// at T for in-progress intervals) and b is Beta. The bracketed tail is the
// charge made temporarily unavailable by the concentration gradient; it
// decays during rest, which reproduces both the rate-capacity and the
// recovery effects. The battery is empty when sigma reaches its capacity
// alpha.
//
// The zero value is not useful; construct with NewRakhmatov or set Beta and
// Terms explicitly.
type Rakhmatov struct {
	// Beta is the diffusion parameter in min^-1/2. Larger values mean a
	// "stiffer" battery that recovers faster and wastes less charge; as
	// Beta grows the model converges to the ideal coulomb counter.
	Beta float64
	// Terms is the number of series terms kept (the paper uses 10).
	Terms int
}

// NewRakhmatov returns the model with the given beta and the paper's
// ten-term series. It panics if beta is not positive and finite, because
// a zero beta silently degenerates to a division by zero deep in the
// series (and +Inf makes every series constant overflow). Spec.Resolve
// is the non-panicking construction path.
func NewRakhmatov(beta float64) Rakhmatov {
	if beta <= 0 || math.IsNaN(beta) || math.IsInf(beta, 0) {
		panic(fmt.Sprintf("battery: beta must be positive, got %g", beta))
	}
	return Rakhmatov{Beta: beta, Terms: DefaultTerms}
}

// Name implements Model.
func (r Rakhmatov) Name() string { return fmt.Sprintf("rakhmatov(beta=%g)", r.Beta) }

// seriesStackTerms bounds the stack-allocated series-constant buffer. The
// paper uses 10 terms; anything beyond the bound falls back to a heap
// slice (calibration sweeps occasionally probe larger series).
const seriesStackTerms = 32

// defaultSeriesKs is the b²m² table for the paper's configuration
// (DefaultBeta, DefaultTerms) — the overwhelmingly common case, shared by
// every evaluation instead of being recomputed per call. b² is squared
// through a variable so it rounds like the runtime r.Beta*r.Beta (Go
// constant arithmetic is exact and would differ by one ULP).
var defaultSeriesKs = func() []float64 {
	b := float64(DefaultBeta)
	return fillSeriesKs(make([]float64, DefaultTerms), b*b)
}()

// fillSeriesKs writes dst[m-1] = b²m² for m = 1..len(dst) and returns dst.
// Each constant is computed as ChargeLost's series loop always did
// (m² = float64(m)·float64(m) first, then b²·m²), so hoisting the table
// does not move a single bit of any ChargeLost sigma — the invariant the
// scheduler's cost function depends on. ConstantLoadSigma historically
// associated the same product as (b²·m)·m, which differs by one ULP for
// some m; it now intentionally reads this table instead, a one-ULP shift
// accepted because its consumers (the closed-form cross-check test and
// the calibration fit's spread objective) are tolerance-based, and two
// evaluators of the same Equation-1 constants should not disagree.
//
//battsched:hotpath
func fillSeriesKs(dst []float64, b2 float64) []float64 {
	for m := 1; m <= len(dst); m++ {
		m2 := float64(m) * float64(m)
		dst[m-1] = b2 * m2
	}
	return dst
}

// seriesKs returns the model's b²m² constants, preferring the shared
// default table, then the caller's stack buffer, then (for oversized
// series) a fresh slice. Shared by ChargeLost and ConstantLoadSigma; the
// Lifetime solver inherits it through ChargeLost.
//
//battsched:hotpath
func (r Rakhmatov) seriesKs(buf *[seriesStackTerms]float64) []float64 {
	terms := r.Terms
	if terms <= 0 {
		terms = DefaultTerms
	}
	if r.Beta == DefaultBeta && terms == DefaultTerms {
		return defaultSeriesKs
	}
	b2 := r.Beta * r.Beta
	if terms <= seriesStackTerms {
		return fillSeriesKs(buf[:terms], b2)
	}
	return fillSeriesKs(make([]float64, terms), b2)
}

// ChargeLost implements Model. It returns sigma(at) for the profile; times
// beyond the profile end are rest, so sigma relaxes back toward the
// delivered charge. It returns 0 for at <= 0.
//
//battsched:hotpath
func (r Rakhmatov) ChargeLost(p Profile, at float64) float64 {
	if at <= 0 {
		return 0
	}
	var buf [seriesStackTerms]float64
	ks := r.seriesKs(&buf)
	var sigma float64
	var start float64
	for _, iv := range p {
		if start >= at {
			break
		}
		d := iv.Duration
		if start+d > at {
			d = at - start
		}
		if iv.Current != 0 {
			sigma += iv.Current * (d + 2*seriesTail(ks, at-start-d, at-start))
		}
		start += iv.Duration
	}
	return sigma
}

// seriesTail computes sum_{m=1..Terms} (exp(-b²m²·after) - exp(-b²m²·since)) / (b²m²)
// where after = T - t_k - d_k (time since the interval ended) and
// since = T - t_k (time since it began). Both are non-negative with
// after <= since, so every term is non-negative and bounded by d_k.
//
// ks grows with m², so once exp(-k·after) underflows to zero so has
// exp(-k·since) (since >= after) and every later term is exactly zero —
// the early break skips only additions of +0.0, leaving sigma bit-exact.
//
//battsched:hotpath
func seriesTail(ks []float64, after, since float64) float64 {
	var s float64
	for _, k := range ks {
		ea := math.Exp(-k * after)
		if ea == 0 {
			break
		}
		s += (ea - math.Exp(-k*since)) / k
	}
	return s
}

// Unavailable returns the charge bound in the battery interior at time at:
// sigma(at) minus the delivered charge. It is non-negative, grows during
// discharge and decays during rest (the recovery effect).
//
//battsched:hotpath
func (r Rakhmatov) Unavailable(p Profile, at float64) float64 {
	return r.ChargeLost(p, at) - p.DeliveredCharge(at)
}

// ConstantLoadSigma returns sigma(T) in closed form for a constant current
// I applied over [0, T]:
//
//	sigma(T) = I [ T + 2 * sum_m (1 - exp(-b²m²T)) / (b²m²) ]
//
// Used by tests as an independent check of ChargeLost and by the
// calibration fit. It reads the same b²m² table as ChargeLost.
func (r Rakhmatov) ConstantLoadSigma(current, T float64) float64 {
	if T <= 0 {
		return 0
	}
	var buf [seriesStackTerms]float64
	ks := r.seriesKs(&buf)
	var s float64
	for _, k := range ks {
		s += (1 - math.Exp(-k*T)) / k
	}
	return current * (T + 2*s)
}

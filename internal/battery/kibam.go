package battery

import (
	"fmt"
	"math"
)

// KiBaM is the kinetic battery model (Manwell & McGowan), the other
// widely used analytical battery abstraction in the battery-aware
// scheduling literature. Charge sits in two wells: an available well
// (fraction C of capacity) that feeds the load directly, and a bound well
// (fraction 1−C) that trickles into the available well at a rate set by
// K and the head difference between the wells. The battery dies when the
// available well empties. Like the Rakhmatov model — and unlike Peukert —
// it reproduces both the rate-capacity effect (fast drains empty the
// available well before the bound well can follow) and the recovery
// effect (rest lets the wells re-equilibrate).
//
// To fit the Model interface (apparent charge lost, compared against a
// capacity), KiBaM reports
//
//	sigma(t) = Capacity − h1(t) = Capacity − q1(t)/C,
//
// where q1 is the available charge and h1 its head height. This is zero
// at rest-equilibrium start, reaches Capacity exactly when the available
// well empties, relaxes back toward the delivered charge during rest,
// and equals the delivered charge for C = 1 (the ideal-model limit) —
// the same semantics the Rakhmatov sigma has.
//
// Within each constant-current interval the two-well ODE has a closed
// form; ChargeLost steps interval by interval, so evaluation is exact up
// to float rounding (no numerical integration).
type KiBaM struct {
	// Capacity is the total charge in both wells at full charge,
	// mA·min. Lifetime comparisons should pass the same value as
	// alpha.
	Capacity float64
	// C is the available-well fraction in (0, 1].
	C float64
	// K is the well-equalization rate constant in 1/min (larger =
	// stiffer battery, less rate-capacity effect).
	K float64
}

// NewKiBaM validates and returns a kinetic battery model, panicking on
// non-physical parameters (non-positive or non-finite capacity or rate
// constant, well fraction outside (0,1]). Spec.Resolve is the
// non-panicking construction path.
func NewKiBaM(capacity, c, k float64) KiBaM {
	if capacity <= 0 || math.IsNaN(capacity) || math.IsInf(capacity, 0) {
		panic(fmt.Sprintf("battery: KiBaM capacity must be positive and finite, got %g", capacity))
	}
	if c <= 0 || c > 1 || math.IsNaN(c) {
		panic(fmt.Sprintf("battery: KiBaM well fraction must be in (0,1], got %g", c))
	}
	if k <= 0 || math.IsNaN(k) || math.IsInf(k, 0) {
		panic(fmt.Sprintf("battery: KiBaM rate constant must be positive and finite, got %g", k))
	}
	return KiBaM{Capacity: capacity, C: c, K: k}
}

// Name implements Model.
func (kb KiBaM) Name() string {
	return fmt.Sprintf("kibam(alpha=%g,c=%g,k=%g)", kb.Capacity, kb.C, kb.K)
}

// ChargeLost implements Model: Capacity − q1(at)/C with the wells evolved
// exactly through the profile. For C = 1 it reduces to the delivered
// charge. Once the available well empties the model pins sigma at (or
// above) Capacity — the battery is dead and stays dead for the rest of
// the evaluation (the well equations stop being physical at q1 < 0, so
// we clamp and only let further rest recover from exactly empty).
func (kb KiBaM) ChargeLost(p Profile, at float64) float64 {
	if at <= 0 {
		return 0
	}
	c := kb.C
	if c == 1 {
		return p.DeliveredCharge(at)
	}
	// State: total charge q (both wells) and head imbalance
	// delta = h1 − h2. Start at full, equilibrated wells.
	q := kb.Capacity
	delta := 0.0
	kprime := kb.K / (c * (1 - c)) // decay rate of the imbalance
	dead := false

	step := func(current, dt float64) {
		// d(delta)/dt = −I/c − k'·delta  (constant I over dt)
		// q(t) = q0 − I·t
		drive := current / c
		expTerm := math.Exp(-kprime * dt)
		delta = (delta+drive/kprime)*expTerm - drive/kprime
		q -= current * dt
	}
	h1 := func() float64 { return q + (1-c)*delta } // head of the available well

	remaining := at
	for _, iv := range p {
		if remaining <= 0 {
			break
		}
		dt := iv.Duration
		if dt > remaining {
			dt = remaining
		}
		// Detect in-interval death: h1 is monotone within a constant-
		// current interval (decreasing under load; increasing during
		// rest), so checking the endpoint is sound for the death flag;
		// the exact crossing time is Lifetime's job.
		step(iv.Current, dt)
		if h1() <= 0 {
			dead = true
			// Clamp the imbalance so the post-death state is "empty
			// available well" rather than an unphysical negative one.
			if h1() < 0 {
				delta = -q / (1 - c)
			}
		}
		remaining -= dt
	}
	if remaining > 0 {
		step(0, remaining) // beyond the profile end: rest
	}
	sigma := kb.Capacity - h1()
	if dead && sigma < kb.Capacity {
		return kb.Capacity
	}
	return sigma
}

// AvailableCharge returns q1(at), the charge in the available well —
// what the load can still draw instantaneously.
func (kb KiBaM) AvailableCharge(p Profile, at float64) float64 {
	return (kb.Capacity - kb.ChargeLost(p, at)) * kb.C
}

package battery

import (
	"fmt"
	"math"
	"sort"
)

// Observation is one measured constant-current discharge: the battery
// sustained Current (mA) for Lifetime minutes before cutoff. Datasheets
// and bench measurements provide exactly these pairs; FitRakhmatov turns
// them into model parameters the scheduler can use.
type Observation struct {
	Current  float64 `json:"current"`  // mA, > 0
	Lifetime float64 `json:"lifetime"` // minutes, > 0
}

// FitRakhmatov estimates (alpha, beta) for the Rakhmatov model from
// constant-current lifetime measurements, following the calibration
// procedure of the original model paper: for the correct beta, the
// quantity sigma(L_i) = I_i·[L_i + 2Σ(1−e^{−β²m²L_i})/(β²m²)] is the same
// battery capacity alpha for every observation, so we pick the beta that
// minimizes the spread of those estimates (log-space golden-section over
// a generous bracket) and return their mean as alpha.
//
// At least two observations at different currents are required — a single
// observation cannot separate capacity from the rate penalty.
func FitRakhmatov(obs []Observation) (alpha, beta float64, err error) {
	if len(obs) < 2 {
		return 0, 0, fmt.Errorf("battery: need at least 2 observations, got %d", len(obs))
	}
	seen := map[float64]bool{}
	for k, o := range obs {
		if o.Current <= 0 || o.Lifetime <= 0 || math.IsNaN(o.Current) || math.IsNaN(o.Lifetime) {
			return 0, 0, fmt.Errorf("battery: observation %d must have positive current and lifetime", k)
		}
		seen[o.Current] = true
	}
	if len(seen) < 2 {
		return 0, 0, fmt.Errorf("battery: observations must cover at least 2 distinct currents")
	}

	alphasFor := func(b float64) []float64 {
		m := Rakhmatov{Beta: b, Terms: DefaultTerms}
		out := make([]float64, len(obs))
		for k, o := range obs {
			out[k] = m.ConstantLoadSigma(o.Current, o.Lifetime)
		}
		return out
	}
	spread := func(b float64) float64 {
		as := alphasFor(b)
		var mean float64
		for _, a := range as {
			mean += a
		}
		mean /= float64(len(as))
		var ss float64
		for _, a := range as {
			d := (a - mean) / mean // relative, so large batteries don't dominate
			ss += d * d
		}
		return ss
	}

	// The spread is not unimodal in beta (it flattens as beta -> 0,
	// where sigma degenerates to a constant multiple of I·L), so a
	// bare golden-section search can converge into the wrong basin.
	// Scan a dense log-spaced grid first, then refine around the best
	// grid point with golden section.
	logLo, logHi := math.Log(1e-4), math.Log(1e2)
	const gridN = 600
	bestIdx, bestF := 0, math.Inf(1)
	for i := 0; i <= gridN; i++ {
		lb := logLo + (logHi-logLo)*float64(i)/gridN
		if f := spread(math.Exp(lb)); f < bestF {
			bestF = f
			bestIdx = i
		}
	}
	step := (logHi - logLo) / gridN
	lo := logLo + step*float64(bestIdx-1)
	hi := logLo + step*float64(bestIdx+1)
	if lo < logLo {
		lo = logLo
	}
	if hi > logHi {
		hi = logHi
	}
	const phi = 0.6180339887498949
	a1 := hi - phi*(hi-lo)
	a2 := lo + phi*(hi-lo)
	f1, f2 := spread(math.Exp(a1)), spread(math.Exp(a2))
	for i := 0; i < 200 && hi-lo > 1e-10; i++ {
		if f1 < f2 {
			hi, a2, f2 = a2, a1, f1
			a1 = hi - phi*(hi-lo)
			f1 = spread(math.Exp(a1))
		} else {
			lo, a1, f1 = a1, a2, f2
			a2 = lo + phi*(hi-lo)
			f2 = spread(math.Exp(a2))
		}
	}
	beta = math.Exp((lo + hi) / 2)
	as := alphasFor(beta)
	sort.Float64s(as)
	for _, a := range as {
		alpha += a
	}
	alpha /= float64(len(as))
	return alpha, beta, nil
}

// PredictLifetimes returns the model's constant-current lifetimes for the
// observed currents — the residual check after fitting.
func PredictLifetimes(alpha, beta float64, obs []Observation) ([]float64, error) {
	m := NewRakhmatov(beta)
	out := make([]float64, len(obs))
	for k, o := range obs {
		t, err := ConstantLoadLifetime(m, o.Current, alpha)
		if err != nil {
			return nil, fmt.Errorf("battery: predicting observation %d: %w", k, err)
		}
		out[k] = t
	}
	return out, nil
}

package battery

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// paperS1Profile is the discharge profile of the paper's iteration-1 best
// schedule for G3 (Table 2 sequence S1 with its printed design points;
// currents/durations from Table 1). Its battery cost anchors the model:
// Table 3 reports sigma = 16353 mA·min at duration 228.3 min.
var paperS1Profile = Profile{
	{Current: 33, Duration: 22.0},  // T1@DP5
	{Current: 34, Duration: 16.0},  // T4@DP5
	{Current: 28, Duration: 12.0},  // T5@DP5
	{Current: 96, Duration: 18.7},  // T7@DP4
	{Current: 81, Duration: 15.3},  // T3@DP4
	{Current: 69, Duration: 28.9},  // T2@DP4
	{Current: 106, Duration: 11.9}, // T6@DP4
	{Current: 80, Duration: 13.6},  // T8@DP4
	{Current: 94, Duration: 15.3},  // T10@DP4
	{Current: 86, Duration: 11.9},  // T9@DP4
	{Current: 93, Duration: 10.2},  // T13@DP4
	{Current: 68, Duration: 11.9},  // T12@DP4
	{Current: 66, Duration: 17.0},  // T11@DP4
	{Current: 53, Duration: 13.6},  // T14@DP4
	{Current: 14, Duration: 10.0},  // T15@DP5
}

// TestPaperAnchorSigma pins Equation 1 against the paper's own Table 3:
// the model, evaluated at the schedule completion time with beta = 0.273
// and ten terms, must reproduce sigma = 16353 mA·min.
func TestPaperAnchorSigma(t *testing.T) {
	m := NewRakhmatov(0.273)
	T := paperS1Profile.TotalTime()
	if !almost(T, 228.3, 1e-9) {
		t.Fatalf("profile duration = %.4f, want 228.3 (Table 3)", T)
	}
	sigma := m.ChargeLost(paperS1Profile, T)
	if !almost(sigma, 16353, 1.0) {
		t.Fatalf("sigma = %.2f, want 16353 ± 1 (Table 3)", sigma)
	}
}

func TestRakhmatovConstantLoadClosedForm(t *testing.T) {
	m := NewRakhmatov(0.273)
	for _, tc := range []struct{ i, T float64 }{{100, 10}, {5, 300}, {700, 1.5}} {
		p := Profile{{Current: tc.i, Duration: tc.T}}
		got := m.ChargeLost(p, tc.T)
		want := m.ConstantLoadSigma(tc.i, tc.T)
		if !almost(got, want, 1e-9*want) {
			t.Errorf("I=%g T=%g: ChargeLost %.6f vs closed form %.6f", tc.i, tc.T, got, want)
		}
	}
}

func TestRakhmatovZeroBeforeStart(t *testing.T) {
	m := NewRakhmatov(0.273)
	p := Profile{{Current: 100, Duration: 10}}
	if m.ChargeLost(p, 0) != 0 || m.ChargeLost(p, -5) != 0 {
		t.Fatal("sigma must be 0 at and before t=0")
	}
}

func TestRakhmatovLinearInCurrent(t *testing.T) {
	m := NewRakhmatov(0.2)
	p := Profile{{Current: 50, Duration: 3}, {Current: 20, Duration: 5}, {Current: 80, Duration: 2}}
	at := 9.0
	a := m.ChargeLost(p, at)
	b := m.ChargeLost(p.Scaled(3), at)
	if !almost(b, 3*a, 1e-9*b) {
		t.Fatalf("model not linear in current: %g vs %g", b, 3*a)
	}
}

func TestRakhmatovSigmaExceedsDelivered(t *testing.T) {
	m := NewRakhmatov(0.273)
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(6) + 1
		p := make(Profile, n)
		for k := range p {
			p[k] = Interval{Current: rng.Float64() * 500, Duration: rng.Float64()*20 + 0.1}
		}
		for _, frac := range []float64{0.25, 0.5, 1.0} {
			at := p.TotalTime() * frac
			if m.ChargeLost(p, at) < p.DeliveredCharge(at)-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestRakhmatovRecovery checks the recovery effect: after the load ends,
// sigma strictly decreases toward the delivered charge.
func TestRakhmatovRecovery(t *testing.T) {
	m := NewRakhmatov(0.273)
	p := Profile{{Current: 500, Duration: 10}}
	end := p.TotalTime()
	sEnd := m.ChargeLost(p, end)
	prev := sEnd
	for _, rest := range []float64{1, 5, 20, 100, 1000} {
		s := m.ChargeLost(p, end+rest)
		if s >= prev {
			t.Fatalf("sigma did not decrease during rest (%g at +%g)", s, rest)
		}
		prev = s
	}
	// In the long run everything recovers except the delivered charge.
	if s := m.ChargeLost(p, end+1e6); !almost(s, p.DeliveredCharge(end), 1e-6*s) {
		t.Fatalf("sigma(inf) = %g, want delivered %g", s, p.DeliveredCharge(end))
	}
}

// TestRakhmatovRateCapacity checks the rate-capacity effect: delivering the
// same charge at a higher rate loses more apparent capacity at completion.
func TestRakhmatovRateCapacity(t *testing.T) {
	m := NewRakhmatov(0.273)
	slow := Profile{{Current: 100, Duration: 40}}
	fast := Profile{{Current: 400, Duration: 10}}
	if slow.DeliveredCharge(40) != fast.DeliveredCharge(10) {
		t.Fatal("test setup: equal delivered charge required")
	}
	sSlow := m.ChargeLost(slow, 40)
	sFast := m.ChargeLost(fast, 10)
	if sFast <= sSlow {
		t.Fatalf("higher rate should lose more: fast %g vs slow %g", sFast, sSlow)
	}
}

// TestDecreasingOrderOptimal checks the ordering property the paper's
// Section 3 leans on: for independent intervals, discharging in
// non-increasing current order minimizes sigma at completion and the
// increasing order maximizes it.
func TestDecreasingOrderOptimal(t *testing.T) {
	m := NewRakhmatov(0.273)
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(5) + 2
		p := make(Profile, n)
		for k := range p {
			p[k] = Interval{Current: rng.Float64()*900 + 10, Duration: rng.Float64()*20 + 0.5}
		}
		dec := p.SortedDescending()
		inc := dec.Reversed()
		T := p.TotalTime()
		sDec := m.ChargeLost(dec, T)
		sInc := m.ChargeLost(inc, T)
		sOrig := m.ChargeLost(p, T)
		return sDec <= sOrig+1e-9 && sOrig <= sInc+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestLargeBetaApproachesIdeal: as beta grows the diffusion tail vanishes
// and sigma converges to the delivered charge.
func TestLargeBetaApproachesIdeal(t *testing.T) {
	p := Profile{{Current: 300, Duration: 5}, {Current: 50, Duration: 20}}
	T := p.TotalTime()
	delivered := p.DeliveredCharge(T)
	prevGap := math.Inf(1)
	for _, beta := range []float64{0.1, 0.5, 2, 10} {
		m := NewRakhmatov(beta)
		gap := m.ChargeLost(p, T) - delivered
		if gap < -1e-9 || gap >= prevGap {
			t.Fatalf("beta=%g: gap %g did not shrink (prev %g)", beta, gap, prevGap)
		}
		prevGap = gap
	}
}

func TestRakhmatovMidIntervalClamp(t *testing.T) {
	// Evaluating inside an interval must treat it as ending at `at`:
	// identical to a truncated profile.
	m := NewRakhmatov(0.3)
	p := Profile{{Current: 120, Duration: 10}}
	q := Profile{{Current: 120, Duration: 4}}
	if got, want := m.ChargeLost(p, 4), m.ChargeLost(q, 4); !almost(got, want, 1e-9*want) {
		t.Fatalf("mid-interval sigma %g, want %g", got, want)
	}
}

func TestRakhmatovUnavailable(t *testing.T) {
	m := NewRakhmatov(0.273)
	p := Profile{{Current: 200, Duration: 10}}
	u := m.Unavailable(p, 10)
	if u <= 0 {
		t.Fatalf("unavailable charge should be positive during load, got %g", u)
	}
	if got := UnavailableCharge(m, p, 10); !almost(got, u, 1e-12) {
		t.Fatalf("helper disagrees: %g vs %g", got, u)
	}
	if got := UnavailableCharge(Ideal{}, p, 10); got != 0 {
		t.Fatalf("ideal unavailable = %g, want 0", got)
	}
}

func TestNewRakhmatovPanicsOnBadBeta(t *testing.T) {
	for _, bad := range []float64{0, -1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("beta=%g should panic", bad)
				}
			}()
			NewRakhmatov(bad)
		}()
	}
}

func TestRakhmatovZeroCurrentIntervalsFree(t *testing.T) {
	m := NewRakhmatov(0.273)
	a := Profile{{Current: 100, Duration: 5}, {Current: 0, Duration: 3}, {Current: 100, Duration: 5}}
	// Zero-current intervals contribute nothing directly; sigma at the
	// end reflects only the two active intervals (with recovery between).
	burst := Profile{{Current: 100, Duration: 5}}
	sA := m.ChargeLost(a, 13)
	// Upper bound: two bursts with no recovery credit in between.
	if sA >= 2*m.ChargeLost(burst, 5)+m.ChargeLost(burst, 5) {
		t.Fatalf("sigma with rest looks wrong: %g", sA)
	}
	b := Profile{{Current: 100, Duration: 5}, {Current: 100, Duration: 5}}
	sB := m.ChargeLost(b, 10)
	if sA >= sB+m.ChargeLost(burst, 5) {
		t.Fatalf("rest did not help: with rest %g, back-to-back %g", sA, sB)
	}
}

func TestModelNames(t *testing.T) {
	if NewRakhmatov(0.273).Name() == "" || (Ideal{}).Name() == "" || NewPeukert(1.2, 100).Name() == "" {
		t.Fatal("models must have names")
	}
}

// TestRakhmatovBoundaryTimes evaluates sigma exactly at interval
// boundaries, where the clamped-duration branch hands over to the full
// formula; the two must agree.
func TestRakhmatovBoundaryTimes(t *testing.T) {
	m := NewRakhmatov(0.273)
	p := Profile{{Current: 300, Duration: 5}, {Current: 100, Duration: 7}}
	// At t=5 the first interval is exactly complete; compare against a
	// single-interval profile evaluated at its end.
	a := m.ChargeLost(p, 5)
	b := m.ChargeLost(Profile{{Current: 300, Duration: 5}}, 5)
	if !almost(a, b, 1e-9) {
		t.Fatalf("boundary mismatch: %g vs %g", a, b)
	}
	// Just after the boundary the second interval contributes ~nothing.
	c := m.ChargeLost(p, 5+1e-12)
	if !almost(c, a, 1e-6) {
		t.Fatalf("discontinuity at boundary: %g vs %g", c, a)
	}
}

// TestRakhmatovSeriesTermTruncation documents a subtle reproduction fact:
// the paper's ten-term truncation is NOT fully converged (the infinite
// series adds another ~0.2% on the paper-scale profile), and the paper's
// printed sigma = 16353 matches the ten-term value — so matching the paper
// requires truncating exactly where it does.
func TestRakhmatovSeriesTermTruncation(t *testing.T) {
	p := paperS1Profile
	T := p.TotalTime()
	ten := Rakhmatov{Beta: 0.273, Terms: 10}.ChargeLost(p, T)
	hundred := Rakhmatov{Beta: 0.273, Terms: 100}.ChargeLost(p, T)
	if !almost(ten, 16353, 1.0) {
		t.Fatalf("10-term sigma = %.2f, want the paper's 16353", ten)
	}
	gap := relDiff(ten, hundred)
	if gap < 1e-4 || gap > 5e-3 {
		t.Fatalf("10-vs-100-term gap = %.5f, expected ~0.002 (10=%g, 100=%g)", gap, ten, hundred)
	}
	// Convergence is monotone from below: more terms, more sigma.
	twenty := Rakhmatov{Beta: 0.273, Terms: 20}.ChargeLost(p, T)
	if !(ten < twenty && twenty < hundred) {
		t.Fatalf("series not monotone: 10=%g 20=%g 100=%g", ten, twenty, hundred)
	}
}

func relDiff(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a - b)
	}
	return math.Abs(a-b) / math.Abs(b)
}

// TestSeriesKsTable pins the hoisted b²m² table: the shared default table
// must be what fillSeriesKs produces, the non-default path must compute
// the same constants as the old per-term expression (b²·(m·m), in that
// association), and sigma must be bit-identical to a naive per-term
// reimplementation of Equation 1.
func TestSeriesKsTable(t *testing.T) {
	var buf [seriesStackTerms]float64
	def := Rakhmatov{Beta: DefaultBeta, Terms: DefaultTerms}
	ks := def.seriesKs(&buf)
	if &ks[0] != &defaultSeriesKs[0] {
		t.Fatal("paper-configuration model should share the default table")
	}
	for _, beta := range []float64{DefaultBeta, 0.05, 1.7} {
		for _, terms := range []int{1, 10, seriesStackTerms, seriesStackTerms + 8} {
			m := Rakhmatov{Beta: beta, Terms: terms}
			ks := m.seriesKs(&buf)
			if len(ks) != terms {
				t.Fatalf("beta=%g terms=%d: table has %d entries", beta, terms, len(ks))
			}
			b2 := beta * beta
			for i, k := range ks {
				mm := float64(i+1) * float64(i+1)
				if want := b2 * mm; math.Float64bits(k) != math.Float64bits(want) {
					t.Fatalf("beta=%g terms=%d: ks[%d]=%v, want %v", beta, terms, i, k, want)
				}
			}
		}
	}

	// Naive Equation-1 evaluation, term by term with inline constants.
	naive := func(r Rakhmatov, p Profile, at float64) float64 {
		if at <= 0 {
			return 0
		}
		b2 := r.Beta * r.Beta
		var sigma, start float64
		for _, iv := range p {
			if start >= at {
				break
			}
			d := iv.Duration
			if start+d > at {
				d = at - start
			}
			if iv.Current != 0 {
				var s float64
				for m := 1; m <= r.Terms; m++ {
					m2 := float64(m) * float64(m)
					k := b2 * m2
					s += (math.Exp(-k*(at-start-d)) - math.Exp(-k*(at-start))) / k
				}
				sigma += iv.Current * (d + 2*s)
			}
			start += iv.Duration
		}
		return sigma
	}
	p := Profile{
		{Current: 600, Duration: 10}, {Current: 0, Duration: 2000},
		{Current: 400, Duration: 15}, {Current: 100, Duration: 30},
	}
	for _, r := range []Rakhmatov{NewRakhmatov(DefaultBeta), {Beta: 0.05, Terms: 20}, {Beta: 1.7, Terms: 40}} {
		for _, at := range []float64{0.5, 10, 500, 2060, 5000} {
			got := r.ChargeLost(p, at)
			want := naive(r, p, at)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%s at=%g: ChargeLost %v != naive %v", r.Name(), at, got, want)
			}
		}
	}
}

// TestChargeLostNoAllocs pins the zero-allocation property of the series
// evaluation for both the shared-table and stack-buffer paths — the
// scheduler's cost function calls this in its steady state.
func TestChargeLostNoAllocs(t *testing.T) {
	p := Profile{{Current: 600, Duration: 10}, {Current: 400, Duration: 15}}
	T := p.TotalTime()
	for _, r := range []Rakhmatov{NewRakhmatov(DefaultBeta), {Beta: 0.31, Terms: seriesStackTerms}} {
		if a := testing.AllocsPerRun(200, func() { r.ChargeLost(p, T) }); a != 0 {
			t.Fatalf("%s: ChargeLost allocates %v per run", r.Name(), a)
		}
	}
}

package battery

import (
	"math"
	"testing"
)

func TestIdealModel(t *testing.T) {
	p := Profile{{Current: 10, Duration: 2}, {Current: 5, Duration: 4}}
	m := Ideal{}
	if got := m.ChargeLost(p, 6); got != 40 {
		t.Fatalf("ideal sigma = %g", got)
	}
	if got := m.ChargeLost(p, 3); got != 25 {
		t.Fatalf("ideal sigma(3) = %g", got)
	}
}

func TestPeukertReducesToIdealAtExponentOne(t *testing.T) {
	p := Profile{{Current: 120, Duration: 3}, {Current: 30, Duration: 7}}
	pk := NewPeukert(1, 100)
	id := Ideal{}
	for _, at := range []float64{1, 5, 10} {
		if a, b := pk.ChargeLost(p, at), id.ChargeLost(p, at); !almost(a, b, 1e-9) {
			t.Fatalf("k=1 Peukert %g != ideal %g at %g", a, b, at)
		}
	}
}

func TestPeukertPenalizesHighCurrents(t *testing.T) {
	pk := NewPeukert(1.2, 100)
	slow := Profile{{Current: 100, Duration: 40}}
	fast := Profile{{Current: 400, Duration: 10}}
	if pk.ChargeLost(fast, 10) <= pk.ChargeLost(slow, 40) {
		t.Fatal("Peukert should penalize the higher rate")
	}
	// Below the reference current the effective drain is smaller than
	// delivered.
	gentle := Profile{{Current: 25, Duration: 8}}
	if pk.ChargeLost(gentle, 8) >= gentle.DeliveredCharge(8) {
		t.Fatal("below-reference current should be cheaper than ideal under Peukert")
	}
}

func TestPeukertPanicsOnBadParams(t *testing.T) {
	for _, f := range []func(){
		func() { NewPeukert(0.9, 100) },
		func() { NewPeukert(1.2, 0) },
		func() { NewPeukert(1.2, -5) },
		func() { NewPeukert(math.NaN(), 100) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("want panic")
				}
			}()
			f()
		}()
	}
}

func TestLifetimeIdealConstantLoad(t *testing.T) {
	// Ideal battery, constant 100 mA, capacity 5000 mA·min → 50 min.
	p := Profile{{Current: 100, Duration: 100}}
	got, died := Lifetime(Ideal{}, p, 5000, LifetimeOptions{})
	if !died || !almost(got, 50, 1e-6) {
		t.Fatalf("lifetime = %g, died=%v; want 50", got, died)
	}
}

func TestLifetimeRakhmatovShorterThanIdeal(t *testing.T) {
	m := NewRakhmatov(0.273)
	p := Profile{{Current: 100, Duration: 100}}
	alpha := 5000.0
	rv, died := Lifetime(m, p, alpha, LifetimeOptions{})
	if !died {
		t.Fatal("RV battery should die within the profile")
	}
	ideal, _ := Lifetime(Ideal{}, p, alpha, LifetimeOptions{})
	if rv >= ideal {
		t.Fatalf("RV lifetime %g should be below ideal %g", rv, ideal)
	}
	// Consistency: sigma at the reported death time equals alpha.
	if got := m.ChargeLost(p, rv); !almost(got, alpha, 1e-3) {
		t.Fatalf("sigma at death = %g, want %g", got, alpha)
	}
}

func TestLifetimeSurvivesSmallLoad(t *testing.T) {
	m := NewRakhmatov(0.273)
	p := Profile{{Current: 1, Duration: 10}}
	got, died := Lifetime(m, p, 1e9, LifetimeOptions{})
	if died {
		t.Fatalf("battery should survive, died at %g", got)
	}
	if got != p.TotalTime() {
		t.Fatalf("survivor should report horizon %g, got %g", p.TotalTime(), got)
	}
}

// TestLifetimeFirstCrossing builds a profile whose sigma crosses alpha
// during a burst, recovers below it during rest, then crosses again; the
// solver must report the FIRST crossing.
func TestLifetimeFirstCrossing(t *testing.T) {
	m := NewRakhmatov(0.15) // sluggish battery, big unavailable charge
	burst := Interval{Current: 1000, Duration: 10}
	rest := Interval{Current: 0, Duration: 200}
	p := Profile{burst, rest, burst}
	endOfBurst := burst.Duration
	sigmaPeak := m.ChargeLost(p, endOfBurst)
	sigmaRested := m.ChargeLost(p, endOfBurst+rest.Duration)
	if sigmaRested >= sigmaPeak {
		t.Fatalf("setup: no recovery (%g -> %g)", sigmaPeak, sigmaRested)
	}
	alpha := (sigmaPeak + sigmaRested) / 2 // crossed in burst 1, recovered below in rest
	tDeath, died := Lifetime(m, p, alpha, LifetimeOptions{})
	if !died {
		t.Fatal("battery must die")
	}
	if tDeath > endOfBurst {
		t.Fatalf("death at %g, want within the first burst (<= %g)", tDeath, endOfBurst)
	}
	if got := m.ChargeLost(p, tDeath); !almost(got, alpha, 1e-3) {
		t.Fatalf("sigma at death %g != alpha %g", got, alpha)
	}
}

func TestLifetimeEdgeCases(t *testing.T) {
	m := Ideal{}
	if got, died := Lifetime(m, Profile{{Current: 1, Duration: 1}}, 0, LifetimeOptions{}); !died || got != 0 {
		t.Fatalf("alpha=0 should die immediately, got %g,%v", got, died)
	}
	if _, died := Lifetime(m, Profile{}, 100, LifetimeOptions{}); died {
		t.Fatal("empty profile cannot kill a battery")
	}
	if _, died := Lifetime(m, Profile{{Current: -1, Duration: 1}}, 100, LifetimeOptions{}); died {
		t.Fatal("invalid profile should report not-died")
	}
}

func TestConstantLoadLifetime(t *testing.T) {
	got, err := ConstantLoadLifetime(Ideal{}, 200, 1000)
	if err != nil || !almost(got, 5, 1e-6) {
		t.Fatalf("ideal constant-load lifetime = %g, %v; want 5", got, err)
	}
	m := NewRakhmatov(0.273)
	rv, err := ConstantLoadLifetime(m, 200, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if rv >= got {
		t.Fatalf("RV lifetime %g should be below ideal %g", rv, got)
	}
	if _, err := ConstantLoadLifetime(m, 0, 100); err == nil {
		t.Fatal("zero current should error")
	}
	if _, err := ConstantLoadLifetime(m, 100, 0); err == nil {
		t.Fatal("zero capacity should error")
	}
}

// TestRateCapacityLifetimeCurve: the classic battery curve — doubling the
// load more than halves the lifetime under the RV model.
func TestRateCapacityLifetimeCurve(t *testing.T) {
	m := NewRakhmatov(0.273)
	alpha := 20000.0
	l1, err := ConstantLoadLifetime(m, 100, alpha)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := ConstantLoadLifetime(m, 200, alpha)
	if err != nil {
		t.Fatal(err)
	}
	if l2 >= l1/2 {
		t.Fatalf("rate-capacity effect missing: L(100)=%g, L(200)=%g", l1, l2)
	}
}

func TestRecoverableIn(t *testing.T) {
	m := NewRakhmatov(0.273)
	p := Profile{{Current: 400, Duration: 10}}
	r := RecoverableIn(m, p, 30)
	if r <= 0 {
		t.Fatalf("RV battery should recover charge during rest, got %g", r)
	}
	if got := RecoverableIn(Ideal{}, p, 30); got != 0 {
		t.Fatalf("ideal battery recovered %g, want 0", got)
	}
	// Longer rest recovers (weakly) more.
	if RecoverableIn(m, p, 60) < r {
		t.Fatal("longer rest should not recover less")
	}
}

func TestDeathCheck(t *testing.T) {
	m := Ideal{}
	p := Profile{{Current: 100, Duration: 10}}
	if at, dies := DeathCheck(m, p, 500); !dies || !almost(at, 5, 1e-6) {
		t.Fatalf("DeathCheck = %g,%v", at, dies)
	}
	if at, dies := DeathCheck(m, p, 5000); dies || !math.IsInf(at, 1) {
		t.Fatalf("DeathCheck survivor = %g,%v", at, dies)
	}
}

package battery

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// kibamSpec/peukertSpec/calibratedSpec are the valid non-default specs
// the tests share.
func kibamSpec() Spec {
	return Spec{Kind: KindKiBaM, Capacity: 40000, WellFraction: 0.5, RateConstant: 0.1}
}

func peukertSpec() Spec {
	return Spec{Kind: KindPeukert, Exponent: 1.2, RefCurrent: 100}
}

func calibratedSpec() Spec {
	return Spec{Kind: KindCalibrated, Observations: []Observation{
		{Current: 100, Lifetime: 478.0},
		{Current: 200, Lifetime: 228.9},
		{Current: 400, Lifetime: 106.4},
	}}
}

func TestSpecValidateAccepts(t *testing.T) {
	for _, s := range []Spec{
		DefaultSpec(),
		{Kind: KindRakhmatov},                       // defaults fill in
		{Kind: "  Rakhmatov "},                      // kind normalization
		{Kind: KindRakhmatov, Beta: 0.5, Terms: 32}, // explicit params
		{Kind: KindIdeal},
		{Kind: KindPeukert, Exponent: 1}, // ref_current defaults
		peukertSpec(),
		kibamSpec(),
		{Kind: KindKiBaM, Capacity: 1, WellFraction: 1, RateConstant: 1e-6},
		calibratedSpec(),
	} {
		if err := s.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", s, err)
		}
	}
}

func TestSpecValidateRejects(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	obs2 := []Observation{{Current: 100, Lifetime: 478}, {Current: 200, Lifetime: 228.9}}
	cases := []struct {
		name string
		s    Spec
		want string // substring of the error
	}{
		{"zero value", Spec{}, "missing \"kind\""},
		{"unknown kind", Spec{Kind: "supercapacitor"}, "unknown spec kind"},
		{"NaN beta", Spec{Kind: KindRakhmatov, Beta: nan}, "\"beta\""},
		{"Inf beta", Spec{Kind: KindRakhmatov, Beta: inf}, "\"beta\""},
		{"negative beta", Spec{Kind: KindRakhmatov, Beta: -0.2}, "\"beta\""},
		{"negative terms", Spec{Kind: KindRakhmatov, Terms: -1}, "\"terms\""},
		{"huge terms", Spec{Kind: KindRakhmatov, Terms: MaxSeriesTerms + 1}, "\"terms\""},
		{"ideal with beta", Spec{Kind: KindIdeal, Beta: 0.3}, "does not take parameter \"beta\""},
		{"rakhmatov with capacity", Spec{Kind: KindRakhmatov, Capacity: 100}, "does not take parameter \"capacity\""},
		{"peukert missing exponent", Spec{Kind: KindPeukert}, "\"exponent\""},
		{"peukert exponent below 1", Spec{Kind: KindPeukert, Exponent: 0.9}, "\"exponent\""},
		{"peukert Inf exponent", Spec{Kind: KindPeukert, Exponent: inf}, "\"exponent\""},
		{"peukert negative iref", Spec{Kind: KindPeukert, Exponent: 1.2, RefCurrent: -1}, "\"ref_current\""},
		{"peukert with terms", Spec{Kind: KindPeukert, Exponent: 1.2, Terms: 5}, "does not take parameter \"terms\""},
		{"kibam missing capacity", Spec{Kind: KindKiBaM, WellFraction: 0.5, RateConstant: 0.1}, "\"capacity\""},
		{"kibam Inf capacity", Spec{Kind: KindKiBaM, Capacity: inf, WellFraction: 0.5, RateConstant: 0.1}, "\"capacity\""},
		{"kibam c over 1", Spec{Kind: KindKiBaM, Capacity: 100, WellFraction: 1.5, RateConstant: 0.1}, "\"well_fraction\""},
		{"kibam zero rate", Spec{Kind: KindKiBaM, Capacity: 100, WellFraction: 0.5}, "\"rate_constant\""},
		{"kibam negative rate", Spec{Kind: KindKiBaM, Capacity: 100, WellFraction: 0.5, RateConstant: -0.1}, "\"rate_constant\""},
		{"kibam NaN rate", Spec{Kind: KindKiBaM, Capacity: 100, WellFraction: 0.5, RateConstant: nan}, "\"rate_constant\""},
		{"calibrated no obs", Spec{Kind: KindCalibrated}, "at least 2 observations"},
		{"calibrated one obs", Spec{Kind: KindCalibrated, Observations: obs2[:1]}, "at least 2 observations"},
		{"calibrated same current", Spec{Kind: KindCalibrated, Observations: []Observation{
			{Current: 100, Lifetime: 478}, {Current: 100, Lifetime: 470}}}, "distinct currents"},
		{"calibrated negative lifetime", Spec{Kind: KindCalibrated, Observations: []Observation{
			{Current: 100, Lifetime: -478}, {Current: 200, Lifetime: 228.9}}}, "observation 0"},
		{"calibrated NaN current", Spec{Kind: KindCalibrated, Observations: []Observation{
			{Current: nan, Lifetime: 478}, {Current: 200, Lifetime: 228.9}}}, "observation 0"},
		{"calibrated with beta", Spec{Kind: KindCalibrated, Beta: 0.3, Observations: obs2}, "does not take parameter \"beta\""},
		{"calibrated too many obs", Spec{Kind: KindCalibrated, Observations: func() []Observation {
			out := make([]Observation, MaxObservations+1)
			for i := range out {
				out[i] = Observation{Current: float64(i + 1), Lifetime: 1}
			}
			return out
		}()}, "at most"},
	}
	for _, c := range cases {
		err := c.s.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted %+v", c.name, c.s)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
		if _, rerr := c.s.Resolve(); rerr == nil {
			t.Errorf("%s: Resolve accepted a spec Validate rejects", c.name)
		}
	}
}

// TestSpecResolveDefaultBitIdentical pins the refactor's core guarantee:
// the default spec resolves to exactly the model value the scheduler's
// historical Beta/SeriesTerms defaulting constructed, so every sigma it
// computes is bit-identical.
func TestSpecResolveDefaultBitIdentical(t *testing.T) {
	m, err := DefaultSpec().Resolve()
	if err != nil {
		t.Fatal(err)
	}
	want := Rakhmatov{Beta: DefaultBeta, Terms: DefaultTerms}
	if m != want {
		t.Fatalf("DefaultSpec resolved to %#v, want %#v", m, want)
	}
	// A zero-parameter rakhmatov spec is the same battery.
	m2, err := Spec{Kind: KindRakhmatov}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if m2 != want {
		t.Fatalf("zero rakhmatov spec resolved to %#v, want %#v", m2, want)
	}
}

func TestSpecResolveMatchesConstructors(t *testing.T) {
	if m := kibamSpec().MustResolve(); m != NewKiBaM(40000, 0.5, 0.1) {
		t.Fatalf("kibam spec resolved to %#v", m)
	}
	if m := peukertSpec().MustResolve(); m != NewPeukert(1.2, 100) {
		t.Fatalf("peukert spec resolved to %#v", m)
	}
	if m := (Spec{Kind: KindIdeal}).MustResolve(); m != (Ideal{}) {
		t.Fatalf("ideal spec resolved to %#v", m)
	}
	// Calibrated resolves to the same Rakhmatov the explicit fit yields.
	spec := calibratedSpec()
	_, beta, err := FitRakhmatov(spec.Observations)
	if err != nil {
		t.Fatal(err)
	}
	if m := spec.MustResolve(); m != (Rakhmatov{Beta: beta, Terms: DefaultTerms}) {
		t.Fatalf("calibrated spec resolved to %#v, want beta %g", m, beta)
	}
}

// TestSpecCanonicalBytes checks the hashing contract: canonicalization
// is encoding-invariant, equal-resolving specs encode equal, and
// distinct specs encode distinct.
func TestSpecCanonicalBytes(t *testing.T) {
	enc := func(s Spec) string { return string(s.AppendCanonical(nil)) }

	// Zero parameters and spelled-out defaults share an encoding.
	if enc(Spec{Kind: KindRakhmatov}) != enc(DefaultSpec()) {
		t.Fatal("zero rakhmatov spec and DefaultSpec encode differently")
	}
	if enc(Spec{Kind: "RAKHMATOV "}) != enc(DefaultSpec()) {
		t.Fatal("kind normalization does not reach the encoding")
	}
	if enc(Spec{Kind: KindPeukert, Exponent: 1.2}) != enc(peukertSpec()) {
		t.Fatal("peukert ref_current default does not reach the encoding")
	}

	// Distinct specs encode distinctly (no false sharing).
	distinct := []Spec{
		DefaultSpec(),
		{Kind: KindRakhmatov, Beta: 0.5},
		{Kind: KindRakhmatov, Terms: 12},
		{Kind: KindIdeal},
		peukertSpec(),
		{Kind: KindPeukert, Exponent: 1.3},
		kibamSpec(),
		{Kind: KindKiBaM, Capacity: 40000, WellFraction: 0.6, RateConstant: 0.1},
		calibratedSpec(),
		{Kind: KindCalibrated, Observations: calibratedSpec().Observations[:2]},
	}
	seen := map[string]Spec{}
	for _, s := range distinct {
		e := enc(s)
		if prev, dup := seen[e]; dup {
			t.Fatalf("specs %v and %v share canonical bytes", prev, s)
		}
		seen[e] = s
	}

	// AppendCanonical appends (no clobbering of the prefix).
	prefix := []byte("prefix")
	out := kibamSpec().AppendCanonical(prefix)
	if !bytes.HasPrefix(out, prefix) || string(out[len(prefix):]) != enc(kibamSpec()) {
		t.Fatal("AppendCanonical does not append to dst")
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	for _, s := range []Spec{DefaultSpec(), {Kind: KindIdeal}, peukertSpec(), kibamSpec(), calibratedSpec()} {
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var back Spec
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if string(back.AppendCanonical(nil)) != string(s.AppendCanonical(nil)) {
			t.Fatalf("JSON round trip changed the spec: %s -> %+v", data, back)
		}
	}
	// The wire field names are snake_case and stable.
	data, _ := json.Marshal(kibamSpec())
	for _, field := range []string{`"kind":"kibam"`, `"capacity":40000`, `"well_fraction":0.5`, `"rate_constant":0.1`} {
		if !strings.Contains(string(data), field) {
			t.Fatalf("kibam JSON %s missing %s", data, field)
		}
	}
}

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
	}{
		{"rakhmatov", DefaultSpec()},
		{"kind=rakhmatov,beta=0.35", Spec{Kind: KindRakhmatov, Beta: 0.35, Terms: DefaultTerms}},
		{"Rakhmatov,beta=0.35,terms=12", Spec{Kind: KindRakhmatov, Beta: 0.35, Terms: 12}},
		{"ideal", Spec{Kind: KindIdeal}},
		{"peukert,k=1.2,iref=100", peukertSpec()},
		{"peukert,exponent=1.2", peukertSpec()},
		{"kibam,capacity=40000,c=0.5,rate=0.1", kibamSpec()},
		{"kind=kibam,alpha=40000,well_fraction=0.5,rate_constant=0.1", kibamSpec()},
		{"calibrated,obs=100:478;200:228.9;400:106.4", calibratedSpec()},
	}
	for _, c := range cases {
		got, err := ParseSpec(c.in)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.in, err)
			continue
		}
		if string(got.AppendCanonical(nil)) != string(c.want.AppendCanonical(nil)) {
			t.Errorf("ParseSpec(%q) = %+v, want canonical of %+v", c.in, got, c.want)
		}
		// String() renders back into parseable flag syntax.
		again, err := ParseSpec(got.String())
		if err != nil {
			t.Errorf("ParseSpec(String(%q)) = %v", c.in, err)
			continue
		}
		if string(again.AppendCanonical(nil)) != string(got.AppendCanonical(nil)) {
			t.Errorf("String round trip changed %q: %q", c.in, got.String())
		}
	}
	for _, bad := range []string{
		"",                       // missing kind
		"flux-capacitor",         // unknown kind
		"rakhmatov,beta=x",       // bad number
		"rakhmatov,voltage=3.3",  // unknown parameter
		"rakhmatov,beta",         // not key=value
		"kibam,capacity=40000",   // missing required params
		"peukert,k=0.5",          // exponent below 1
		"calibrated,obs=100",     // bad observation
		"calibrated,obs=100:478", // one observation
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) should error", bad)
		}
	}
}

// TestSpecModelsEvaluate smoke-checks that every resolved model kind
// actually evaluates a profile (the Model contract) without panicking.
func TestSpecModelsEvaluate(t *testing.T) {
	p := Profile{{Current: 400, Duration: 10}, {Current: 0, Duration: 5}, {Current: 100, Duration: 20}}
	for _, s := range []Spec{DefaultSpec(), {Kind: KindIdeal}, peukertSpec(), kibamSpec(), calibratedSpec()} {
		m := s.MustResolve()
		sigma := m.ChargeLost(p, p.TotalTime())
		if math.IsNaN(sigma) || sigma < 0 {
			t.Errorf("%s: ChargeLost = %g", s, sigma)
		}
		if m.Name() == "" {
			t.Errorf("%s: empty model name", s)
		}
	}
}

// BenchmarkSpecResolve measures the cost of resolving specs into models
// — the work core.New performs exactly once per run. CI's bench-smoke
// job builds and runs this benchmark so spec resolution can never
// silently migrate onto the per-window hot path (the calibrated fit in
// particular is a beta search costing ~100x one ChargeLost evaluation,
// and a window sweep performs thousands of those).
func BenchmarkSpecResolve(b *testing.B) {
	for _, c := range []struct {
		name string
		spec Spec
	}{
		{"rakhmatov", DefaultSpec()},
		{"kibam", kibamSpec()},
		{"peukert", peukertSpec()},
	} {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := c.spec.Resolve(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("calibrated", func(b *testing.B) {
		spec := calibratedSpec()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := spec.Resolve(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

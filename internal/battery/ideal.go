package battery

// Ideal is the linear coulomb-counting battery model: the apparent charge
// lost equals the delivered charge, with no rate-capacity or recovery
// effects. It is the limit of the Rakhmatov model as beta grows, and the
// assumption implicit in conventional (battery-unaware) low-energy
// scheduling. Under this model the paper's problem reduces to plain energy
// minimization, which is exactly what baseline [1]'s dynamic program
// optimizes — making Ideal the right lens for explaining where the two
// algorithms diverge.
type Ideal struct{}

// Name implements Model.
func (Ideal) Name() string { return "ideal" }

// ChargeLost implements Model: it returns the delivered charge by `at`.
func (Ideal) ChargeLost(p Profile, at float64) float64 {
	return p.DeliveredCharge(at)
}

package battery

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Spec is the declarative, serializable form of a battery model: a kind
// plus the numeric parameters that kind takes. Unlike the opaque Model
// interface, a Spec can travel over the wire (it is the "battery" JSON
// object of wire jobs), be validated before any scheduling work starts,
// and be hashed into a content-addressed cache key — so a job scheduled
// against any battery model is as cacheable and serveable as one using
// the paper's default Rakhmatov configuration.
//
// The kinds and their parameters:
//
//	rakhmatov   beta (min^-1/2, default 0.273), terms (default 10)
//	ideal       no parameters
//	peukert     exponent (>= 1, required), ref_current (mA, default 100)
//	kibam       capacity (mA·min), well_fraction in (0,1],
//	            rate_constant (1/min) — all required
//	calibrated  observations: >= 2 constant-current lifetime measurements
//	            at >= 2 distinct currents; resolved by fitting the
//	            Rakhmatov model's beta to them (FitRakhmatov)
//
// Parameters not taken by the spec's kind must be zero — Validate
// rejects foreign parameters so that two specs with identical canonical
// bytes always resolve to the same model (no dead fields to disagree
// in).
//
// The zero Spec is invalid (it has no kind); DefaultSpec returns the
// paper's configuration.
type Spec struct {
	// Kind selects the model family; see the package constants.
	Kind string `json:"kind"`
	// Beta is the Rakhmatov diffusion parameter in min^-1/2
	// (kind rakhmatov; 0 means the paper's 0.273).
	Beta float64 `json:"beta,omitempty"`
	// Terms is the number of Rakhmatov series terms
	// (kind rakhmatov; 0 means the paper's 10, max MaxSeriesTerms).
	Terms int `json:"terms,omitempty"`
	// Exponent is Peukert's k (kind peukert; required, >= 1).
	Exponent float64 `json:"exponent,omitempty"`
	// RefCurrent is the Peukert reference current in mA
	// (kind peukert; 0 means DefaultRefCurrent).
	RefCurrent float64 `json:"ref_current,omitempty"`
	// Capacity is the KiBaM total charge in mA·min (kind kibam;
	// required, > 0).
	Capacity float64 `json:"capacity,omitempty"`
	// WellFraction is the KiBaM available-well fraction (kind kibam;
	// required, in (0, 1]).
	WellFraction float64 `json:"well_fraction,omitempty"`
	// RateConstant is the KiBaM well-equalization rate in 1/min
	// (kind kibam; required, > 0).
	RateConstant float64 `json:"rate_constant,omitempty"`
	// Observations are the constant-current lifetime measurements a
	// calibrated spec fits (kind calibrated; >= 2 required, max
	// MaxObservations, >= 2 distinct currents).
	Observations []Observation `json:"observations,omitempty"`
}

// The accepted Spec kinds.
const (
	// KindRakhmatov is the Rakhmatov–Vrudhula diffusion model (the
	// paper's Equation 1 and the default cost function).
	KindRakhmatov = "rakhmatov"
	// KindIdeal is the linear coulomb counter.
	KindIdeal = "ideal"
	// KindPeukert is the Peukert's-law model.
	KindPeukert = "peukert"
	// KindKiBaM is the kinetic (two-well) battery model.
	KindKiBaM = "kibam"
	// KindCalibrated fits a Rakhmatov model to constant-current
	// lifetime observations at resolve time.
	KindCalibrated = "calibrated"
)

// MaxSeriesTerms bounds Spec.Terms. The series buffer is allocated per
// model, so an unbounded wire value could make one request allocate
// gigabytes; the bound is three orders of magnitude past the point
// where exp(-b²m²t) underflows for any realistic input.
const MaxSeriesTerms = 10000

// MaxObservations bounds a calibrated spec's measurement list. The fit
// is O(observations) per probe of a 600-point beta grid, so the bound
// keeps a hostile wire job from buying minutes of CPU with one line;
// real calibrations use well under a dozen points.
const MaxObservations = 256

// DefaultRefCurrent is the Peukert reference current (mA) used when a
// peukert spec leaves ref_current zero — the same convention as
// cmd/battsim's -iref default.
const DefaultRefCurrent = 100

// Kinds returns the accepted spec kinds, in display order.
func Kinds() []string {
	return []string{KindRakhmatov, KindIdeal, KindPeukert, KindKiBaM, KindCalibrated}
}

// DefaultSpec returns the paper's battery configuration: the Rakhmatov
// model with beta 0.273 and ten series terms. It resolves to exactly
// the model the scheduler uses when no spec is given, so scheduling
// with DefaultSpec is bit-identical to scheduling with zero options.
func DefaultSpec() Spec {
	return Spec{Kind: KindRakhmatov, Beta: DefaultBeta, Terms: DefaultTerms}
}

// Canonical returns the spec with its kind normalized (trimmed,
// lowercased) and every defaultable parameter resolved to the value
// Resolve will actually use: a rakhmatov spec's zero beta/terms become
// the paper's 0.273/10, a peukert spec's zero ref_current becomes
// DefaultRefCurrent. Two specs with the same Canonical form resolve to
// the same model and hash to the same canonical bytes, so a request
// spelling out a default and one leaving it zero share a cache entry.
func (s Spec) Canonical() Spec {
	s.Kind = strings.ToLower(strings.TrimSpace(s.Kind))
	switch s.Kind {
	case KindRakhmatov:
		if s.Beta == 0 {
			s.Beta = DefaultBeta
		}
		if s.Terms == 0 {
			s.Terms = DefaultTerms
		}
	case KindPeukert:
		if s.RefCurrent == 0 {
			s.RefCurrent = DefaultRefCurrent
		}
	}
	return s
}

// finiteParam reports whether v is an ordinary number (not NaN, ±Inf).
func finiteParam(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Validate checks the spec after canonicalization: the kind must be
// known, every parameter the kind takes must be finite and within its
// domain, and every parameter it does not take must be zero. The error
// names the offending field. A valid spec never makes Resolve fail or
// any model constructor panic.
func (s Spec) Validate() error {
	c := s.Canonical()
	switch c.Kind {
	case KindRakhmatov:
		if err := c.rejectForeign("exponent", "ref_current", "capacity", "well_fraction", "rate_constant", "observations"); err != nil {
			return err
		}
		if !finiteParam(c.Beta) || c.Beta <= 0 {
			return fmt.Errorf("battery: spec %q: \"beta\" must be a positive finite number, got %g", c.Kind, c.Beta)
		}
		if c.Terms < 1 || c.Terms > MaxSeriesTerms {
			return fmt.Errorf("battery: spec %q: \"terms\" must be in [1, %d], got %d", c.Kind, MaxSeriesTerms, c.Terms)
		}
	case KindIdeal:
		if err := c.rejectForeign("beta", "terms", "exponent", "ref_current", "capacity", "well_fraction", "rate_constant", "observations"); err != nil {
			return err
		}
	case KindPeukert:
		if err := c.rejectForeign("beta", "terms", "capacity", "well_fraction", "rate_constant", "observations"); err != nil {
			return err
		}
		if !finiteParam(c.Exponent) || c.Exponent < 1 {
			return fmt.Errorf("battery: spec %q: \"exponent\" must be a finite number >= 1, got %g", c.Kind, c.Exponent)
		}
		if !finiteParam(c.RefCurrent) || c.RefCurrent <= 0 {
			return fmt.Errorf("battery: spec %q: \"ref_current\" must be a positive finite number, got %g", c.Kind, c.RefCurrent)
		}
	case KindKiBaM:
		if err := c.rejectForeign("beta", "terms", "exponent", "ref_current", "observations"); err != nil {
			return err
		}
		if !finiteParam(c.Capacity) || c.Capacity <= 0 {
			return fmt.Errorf("battery: spec %q: \"capacity\" must be a positive finite number, got %g", c.Kind, c.Capacity)
		}
		if !finiteParam(c.WellFraction) || c.WellFraction <= 0 || c.WellFraction > 1 {
			return fmt.Errorf("battery: spec %q: \"well_fraction\" must be in (0, 1], got %g", c.Kind, c.WellFraction)
		}
		if !finiteParam(c.RateConstant) || c.RateConstant <= 0 {
			return fmt.Errorf("battery: spec %q: \"rate_constant\" must be a positive finite number, got %g", c.Kind, c.RateConstant)
		}
	case KindCalibrated:
		if err := c.rejectForeign("beta", "terms", "exponent", "ref_current", "capacity", "well_fraction", "rate_constant"); err != nil {
			return err
		}
		if len(c.Observations) < 2 {
			return fmt.Errorf("battery: spec %q: needs at least 2 observations, got %d", c.Kind, len(c.Observations))
		}
		if len(c.Observations) > MaxObservations {
			return fmt.Errorf("battery: spec %q: at most %d observations, got %d", c.Kind, MaxObservations, len(c.Observations))
		}
		distinct := 0
		for k, o := range c.Observations {
			if !finiteParam(o.Current) || o.Current <= 0 || !finiteParam(o.Lifetime) || o.Lifetime <= 0 {
				return fmt.Errorf("battery: spec %q: observation %d must have positive finite current and lifetime, got (%g, %g)",
					c.Kind, k, o.Current, o.Lifetime)
			}
			fresh := true
			for _, prev := range c.Observations[:k] {
				if prev.Current == o.Current {
					fresh = false
					break
				}
			}
			if fresh {
				distinct++
			}
		}
		if distinct < 2 {
			return fmt.Errorf("battery: spec %q: observations must cover at least 2 distinct currents", c.Kind)
		}
	case "":
		return fmt.Errorf("battery: spec is missing \"kind\" (accepted: %s)", strings.Join(Kinds(), " | "))
	default:
		return fmt.Errorf("battery: unknown spec kind %q (accepted: %s)", c.Kind, strings.Join(Kinds(), " | "))
	}
	return nil
}

// rejectForeign errors when any of the named parameters is set on a
// kind that does not take it. Allowing dead fields would let two specs
// that resolve identically hash differently (false cache splits) — or,
// worse, let a typo'd parameter be silently ignored.
func (s Spec) rejectForeign(fields ...string) error {
	for _, f := range fields {
		set := false
		switch f {
		case "beta":
			set = s.Beta != 0
		case "terms":
			set = s.Terms != 0
		case "exponent":
			set = s.Exponent != 0
		case "ref_current":
			set = s.RefCurrent != 0
		case "capacity":
			set = s.Capacity != 0
		case "well_fraction":
			set = s.WellFraction != 0
		case "rate_constant":
			set = s.RateConstant != 0
		case "observations":
			set = len(s.Observations) != 0
		}
		if set {
			return fmt.Errorf("battery: spec %q does not take parameter %q", s.Kind, f)
		}
	}
	return nil
}

// Resolve validates the spec and constructs its Model. The returned
// model is a stateless value, safe for concurrent ChargeLost calls like
// every model in this package. For kind calibrated this runs the
// FitRakhmatov beta search — two orders of magnitude costlier than a
// single ChargeLost evaluation — which is why callers resolve once per
// run (core.New), never per window.
//
// Resolving DefaultSpec (or any zero-parameter rakhmatov spec) yields a
// model bit-identical to the scheduler's historical default path.
func (s Spec) Resolve() (Model, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	c := s.Canonical()
	switch c.Kind {
	case KindRakhmatov:
		// Construct exactly as Options.withDefaults always did — the
		// struct literal, not NewRakhmatov, so Terms overrides survive.
		return Rakhmatov{Beta: c.Beta, Terms: c.Terms}, nil
	case KindIdeal:
		return Ideal{}, nil
	case KindPeukert:
		return Peukert{Exponent: c.Exponent, RefCurrent: c.RefCurrent}, nil
	case KindKiBaM:
		return KiBaM{Capacity: c.Capacity, C: c.WellFraction, K: c.RateConstant}, nil
	case KindCalibrated:
		_, beta, err := FitRakhmatov(c.Observations)
		if err != nil {
			// Unreachable for a validated spec; kept so a future fit
			// constraint cannot silently produce a broken model.
			return nil, fmt.Errorf("battery: calibrated spec: %w", err)
		}
		return Rakhmatov{Beta: beta, Terms: DefaultTerms}, nil
	}
	panic("battery: Validate accepted a kind Resolve does not construct: " + c.Kind)
}

// MustResolve is Resolve for specs the caller has already validated;
// it panics on error (matching the New* constructors' contract).
func (s Spec) MustResolve() Model {
	m, err := s.Resolve()
	if err != nil {
		panic(err)
	}
	return m
}

// AppendCanonical appends the spec's canonical byte encoding to dst and
// returns the result. The encoding is stable across processes and
// releases of the same spec vocabulary: the canonical kind
// length-prefixed, then each parameter the kind takes as its exact
// float64 bit pattern (or int64), in declaration order. Specs that
// canonicalize equal encode equal; specs that resolve to different
// models encode differently (the kind tag separates the parameter
// namespaces). Content-addressed caches hash exactly these bytes.
func (s Spec) AppendCanonical(dst []byte) []byte {
	c := s.Canonical()
	dst = appendStr(dst, c.Kind)
	switch c.Kind {
	case KindRakhmatov:
		dst = appendF64(dst, c.Beta)
		dst = appendI64(dst, int64(c.Terms))
	case KindIdeal:
		// The kind alone identifies the model.
	case KindPeukert:
		dst = appendF64(dst, c.Exponent)
		dst = appendF64(dst, c.RefCurrent)
	case KindKiBaM:
		dst = appendF64(dst, c.Capacity)
		dst = appendF64(dst, c.WellFraction)
		dst = appendF64(dst, c.RateConstant)
	case KindCalibrated:
		dst = appendI64(dst, int64(len(c.Observations)))
		for _, o := range c.Observations {
			dst = appendF64(dst, o.Current)
			dst = appendF64(dst, o.Lifetime)
		}
	default:
		// Invalid kinds still encode deterministically (the kind string
		// itself); callers hash only validated specs.
	}
	return dst
}

// appendStr appends s length-prefixed so adjacent fields cannot melt
// into each other.
func appendStr(dst []byte, s string) []byte {
	dst = appendI64(dst, int64(len(s)))
	return append(dst, s...)
}

// appendF64 appends the exact float bit pattern (little-endian).
func appendF64(dst []byte, v float64) []byte {
	return appendU64(dst, math.Float64bits(v))
}

func appendI64(dst []byte, v int64) []byte { return appendU64(dst, uint64(v)) }

func appendU64(dst []byte, u uint64) []byte {
	return append(dst,
		byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
		byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
}

// String renders the spec in ParseSpec's flag syntax — the canonical
// kind followed by the parameters it takes — so a printed spec can be
// pasted straight back into a -battery flag.
func (s Spec) String() string {
	c := s.Canonical()
	var b strings.Builder
	b.WriteString(c.Kind)
	p := func(name string, v float64) {
		fmt.Fprintf(&b, ",%s=%s", name, strconv.FormatFloat(v, 'g', -1, 64))
	}
	switch c.Kind {
	case KindRakhmatov:
		p("beta", c.Beta)
		if c.Terms != DefaultTerms {
			fmt.Fprintf(&b, ",terms=%d", c.Terms)
		}
	case KindPeukert:
		p("exponent", c.Exponent)
		p("ref_current", c.RefCurrent)
	case KindKiBaM:
		p("capacity", c.Capacity)
		p("well_fraction", c.WellFraction)
		p("rate_constant", c.RateConstant)
	case KindCalibrated:
		b.WriteString(",obs=")
		for k, o := range c.Observations {
			if k > 0 {
				b.WriteByte(';')
			}
			fmt.Fprintf(&b, "%s:%s",
				strconv.FormatFloat(o.Current, 'g', -1, 64),
				strconv.FormatFloat(o.Lifetime, 'g', -1, 64))
		}
	}
	return b.String()
}

// specFlagAliases maps every accepted -battery parameter spelling to
// the canonical JSON field name.
var specFlagAliases = map[string]string{
	"beta":          "beta",
	"terms":         "terms",
	"exponent":      "exponent",
	"k":             "exponent", // Peukert's k in the literature
	"ref_current":   "ref_current",
	"iref":          "ref_current", // cmd/battsim's flag name
	"capacity":      "capacity",
	"alpha":         "capacity", // the paper's capacity symbol
	"well_fraction": "well_fraction",
	"c":             "well_fraction", // KiBaM's c
	"rate":          "rate_constant",
	"rate_constant": "rate_constant",
	"obs":           "obs",
	"observations":  "obs",
}

// ParseSpec parses the -battery CLI flag syntax into a validated Spec:
// comma-separated key=value pairs, the first of which may be a bare
// kind. Parameter names accept the JSON field names plus the short
// aliases the literature uses (k, iref, alpha, c, rate); calibrated
// observations are semicolon-separated current:lifetime pairs.
//
//	rakhmatov,beta=0.35
//	kind=kibam,capacity=40000,c=0.5,rate=0.1
//	peukert,k=1.2,iref=100
//	calibrated,obs=100:478;200:228.9;400:106.4
//	ideal
func ParseSpec(flag string) (Spec, error) {
	var s Spec
	for i, part := range strings.Split(flag, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, found := strings.Cut(part, "=")
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		if !found {
			if i == 0 {
				s.Kind = key
				continue
			}
			return s, fmt.Errorf("battery: spec flag: %q is not a key=value pair", part)
		}
		if key == "kind" {
			s.Kind = strings.ToLower(val)
			continue
		}
		name, ok := specFlagAliases[key]
		if !ok {
			return s, fmt.Errorf("battery: spec flag: unknown parameter %q", key)
		}
		if name == "obs" {
			obs, err := parseObservations(val)
			if err != nil {
				return s, err
			}
			s.Observations = obs
			continue
		}
		if name == "terms" {
			n, err := strconv.Atoi(val)
			if err != nil {
				return s, fmt.Errorf("battery: spec flag: bad terms %q: %w", val, err)
			}
			s.Terms = n
			continue
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return s, fmt.Errorf("battery: spec flag: bad %s %q: %w", name, val, err)
		}
		switch name {
		case "beta":
			s.Beta = f
		case "exponent":
			s.Exponent = f
		case "ref_current":
			s.RefCurrent = f
		case "capacity":
			s.Capacity = f
		case "well_fraction":
			s.WellFraction = f
		case "rate_constant":
			s.RateConstant = f
		}
	}
	if err := s.Validate(); err != nil {
		return s, err
	}
	return s.Canonical(), nil
}

// parseObservations parses "I1:L1;I2:L2;…" (current mA : lifetime min).
func parseObservations(val string) ([]Observation, error) {
	var obs []Observation
	for _, pair := range strings.Split(val, ";") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		is, ls, found := strings.Cut(pair, ":")
		if !found {
			return nil, fmt.Errorf("battery: spec flag: bad observation %q (want current:lifetime)", pair)
		}
		i, err := strconv.ParseFloat(strings.TrimSpace(is), 64)
		if err != nil {
			return nil, fmt.Errorf("battery: spec flag: bad observation current in %q: %w", pair, err)
		}
		l, err := strconv.ParseFloat(strings.TrimSpace(ls), 64)
		if err != nil {
			return nil, fmt.Errorf("battery: spec flag: bad observation lifetime in %q: %w", pair, err)
		}
		obs = append(obs, Observation{Current: i, Lifetime: l})
	}
	return obs, nil
}

package battery

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func kb() KiBaM { return NewKiBaM(40000, 0.6, 0.05) }

func TestKiBaMZeroAtStart(t *testing.T) {
	p := Profile{{Current: 100, Duration: 10}}
	if got := kb().ChargeLost(p, 0); got != 0 {
		t.Fatalf("sigma(0) = %g", got)
	}
}

func TestKiBaMIdealLimitAtCOne(t *testing.T) {
	m := NewKiBaM(40000, 1, 0.05)
	p := Profile{{Current: 300, Duration: 7}, {Current: 50, Duration: 20}}
	for _, at := range []float64{3, 10, 27} {
		if got, want := m.ChargeLost(p, at), p.DeliveredCharge(at); !almost(got, want, 1e-9) {
			t.Fatalf("C=1 sigma(%g) = %g, want delivered %g", at, got, want)
		}
	}
}

func TestKiBaMSigmaExceedsDelivered(t *testing.T) {
	m := kb()
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(5) + 1
		p := make(Profile, n)
		for k := range p {
			p[k] = Interval{Current: rng.Float64() * 400, Duration: rng.Float64()*15 + 0.1}
		}
		for _, frac := range []float64{0.3, 1.0} {
			at := p.TotalTime() * frac
			if m.ChargeLost(p, at) < p.DeliveredCharge(at)-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestKiBaMRecovery(t *testing.T) {
	m := kb()
	p := Profile{{Current: 500, Duration: 20}}
	end := p.TotalTime()
	sEnd := m.ChargeLost(p, end)
	sRested := m.ChargeLost(p, end+60)
	if sRested >= sEnd {
		t.Fatalf("no recovery: %g -> %g", sEnd, sRested)
	}
	// Long-run: wells re-equilibrate, sigma -> delivered charge.
	if s := m.ChargeLost(p, end+1e5); !almost(s, p.DeliveredCharge(end), 1e-3) {
		t.Fatalf("sigma(inf) = %g, want %g", s, p.DeliveredCharge(end))
	}
}

func TestKiBaMRateCapacity(t *testing.T) {
	m := kb()
	slow := Profile{{Current: 100, Duration: 40}}
	fast := Profile{{Current: 400, Duration: 10}}
	if m.ChargeLost(fast, 10) <= m.ChargeLost(slow, 40) {
		t.Fatal("KiBaM should penalize the higher rate")
	}
}

func TestKiBaMDeath(t *testing.T) {
	m := NewKiBaM(1000, 0.5, 0.01)
	// Draw hard: available well is 500 mA·min; a 300 mA load empties it
	// shortly after 500/300 ≈ 1.67 min (the bound well trickles a bit).
	p := Profile{{Current: 300, Duration: 10}}
	tDie, died := Lifetime(m, p, m.Capacity, LifetimeOptions{})
	if !died {
		t.Fatal("battery should die")
	}
	if tDie < 500.0/300 || tDie > 4 {
		t.Fatalf("death at %g, want shortly after %.2f", tDie, 500.0/300)
	}
	// An ideal battery of the same capacity lasts 1000/300 = 3.33 min;
	// KiBaM must die no later.
	ideal, _ := Lifetime(Ideal{}, p, m.Capacity, LifetimeOptions{})
	if tDie > ideal {
		t.Fatalf("KiBaM died at %g after ideal %g", tDie, ideal)
	}
	// After death sigma stays pinned at capacity while load continues.
	if s := m.ChargeLost(p, tDie+1); s < m.Capacity-1e-9 {
		t.Fatalf("sigma dropped below capacity after death: %g", s)
	}
}

func TestKiBaMPulsedOutlastsContinuous(t *testing.T) {
	// The classic KiBaM demonstration: a pulsed load delivers the same
	// charge with lower sigma than a continuous one.
	m := kb()
	cont := Profile{{Current: 400, Duration: 40}}
	var pulsed Profile
	for k := 0; k < 4; k++ {
		pulsed = append(pulsed, Interval{Current: 400, Duration: 10}, Interval{Current: 0, Duration: 10})
	}
	sc := m.ChargeLost(cont, cont.TotalTime())
	sp := m.ChargeLost(pulsed, pulsed.TotalTime())
	if sp >= sc {
		t.Fatalf("pulsed %g should beat continuous %g", sp, sc)
	}
}

func TestKiBaMAvailableCharge(t *testing.T) {
	m := kb()
	p := Profile{{Current: 200, Duration: 10}}
	q1start := m.AvailableCharge(p, 0)
	if !almost(q1start, m.Capacity*m.C, 1e-9) {
		t.Fatalf("initial available = %g, want %g", q1start, m.Capacity*m.C)
	}
	q1end := m.AvailableCharge(p, 10)
	if q1end >= q1start {
		t.Fatal("available charge should drop under load")
	}
}

func TestKiBaMDecreasingOrderStillBest(t *testing.T) {
	// The ordering property the scheduler exploits holds for KiBaM too.
	m := kb()
	p := Profile{
		{Current: 500, Duration: 8}, {Current: 80, Duration: 8},
		{Current: 300, Duration: 8}, {Current: 150, Duration: 8},
	}
	dec := p.SortedDescending()
	inc := dec.Reversed()
	T := p.TotalTime()
	if m.ChargeLost(dec, T) > m.ChargeLost(inc, T) {
		t.Fatal("decreasing order should not lose to increasing under KiBaM")
	}
}

func TestNewKiBaMPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewKiBaM(0, 0.5, 0.1) },
		func() { NewKiBaM(100, 0, 0.1) },
		func() { NewKiBaM(100, 1.5, 0.1) },
		func() { NewKiBaM(100, 0.5, 0) },
		func() { NewKiBaM(math.NaN(), 0.5, 0.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("want panic")
				}
			}()
			f()
		}()
	}
	if kb().Name() == "" {
		t.Fatal("name empty")
	}
}

// TestKiBaMAsSchedulerCost plugs KiBaM in as the scheduler's cost
// function through the Model seam (integration smoke test lives in the
// core package; here we just confirm interface conformance).
func TestKiBaMImplementsModel(t *testing.T) {
	var _ Model = KiBaM{}
	var _ Model = kb()
}

package battery

import (
	"fmt"
	"math"
)

// LifetimeOptions tunes the lifetime solver. The zero value selects sane
// defaults.
type LifetimeOptions struct {
	// SamplesPerInterval is how many points each profile interval is
	// probed at when bracketing the first crossing (default 64). The
	// apparent charge is not monotonic under recovery-capable models,
	// so sampling is what makes the "first" in first-crossing reliable.
	SamplesPerInterval int
	// Tolerance is the absolute time tolerance of the bisection
	// refinement (default 1e-9 minutes).
	Tolerance float64
	// Horizon bounds the search beyond the profile end (default: the
	// profile end itself — a battery that survives the profile is
	// reported as surviving, since sigma only decays afterwards).
	Horizon float64
}

func (o LifetimeOptions) withDefaults(p Profile) LifetimeOptions {
	if o.SamplesPerInterval <= 0 {
		o.SamplesPerInterval = 64
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-9
	}
	if o.Horizon <= 0 {
		o.Horizon = p.TotalTime()
	}
	return o
}

// Lifetime returns the earliest time at which sigma(t) reaches capacity
// alpha under the given model — the battery lifetime estimate the paper
// describes ("evaluating Equation 1 for increasing values of T and stopping
// where sigma ≈ alpha"). The boolean reports whether the battery dies
// within the horizon; if false, the returned time is the horizon and the
// battery survives the profile.
//
// The solver samples each interval (recovery makes sigma non-monotonic, so
// a plain bisection over the whole profile could skip an early crossing),
// brackets the first sign change of sigma−alpha, and refines it by
// bisection.
func Lifetime(m Model, p Profile, alpha float64, opts LifetimeOptions) (float64, bool) {
	if alpha <= 0 {
		return 0, true
	}
	if err := p.Validate(); err != nil || len(p) == 0 {
		return 0, false
	}
	o := opts.withDefaults(p)
	f := func(t float64) float64 { return m.ChargeLost(p, t) - alpha }

	var start float64
	prevT, prevF := 0.0, f(0)
	if prevF >= 0 {
		return 0, true
	}
	for _, iv := range p {
		end := start + iv.Duration
		if end > o.Horizon {
			end = o.Horizon
		}
		if end > start {
			step := (end - start) / float64(o.SamplesPerInterval)
			for s := 1; s <= o.SamplesPerInterval; s++ {
				t := start + float64(s)*step
				ft := f(t)
				if ft >= 0 {
					return bisect(f, prevT, t, o.Tolerance), true
				}
				prevT, prevF = t, ft
			}
		}
		start += iv.Duration
		if start >= o.Horizon {
			break
		}
	}
	_ = prevF
	return o.Horizon, false
}

// bisect refines a bracketed root of f (f(lo) < 0 <= f(hi)) to within tol.
func bisect(f func(float64) float64, lo, hi, tol float64) float64 {
	for hi-lo > tol {
		mid := lo + (hi-lo)/2
		if mid == lo || mid == hi {
			break // float resolution reached
		}
		if f(mid) >= 0 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// ConstantLoadLifetime returns the lifetime under a constant current draw
// by synthesizing a long constant profile and solving for the crossing.
// The horizon is alpha/current scaled by headroom (the ideal lifetime is
// alpha/current and real models die sooner, so headroom 1 suffices; a
// little margin keeps the bracket robust).
func ConstantLoadLifetime(m Model, current, alpha float64) (float64, error) {
	if current <= 0 {
		return 0, fmt.Errorf("battery: constant load current must be positive, got %g", current)
	}
	if alpha <= 0 {
		return 0, fmt.Errorf("battery: capacity must be positive, got %g", alpha)
	}
	horizon := alpha / current * 1.01
	p := Profile{{Current: current, Duration: horizon}}
	t, died := Lifetime(m, p, alpha, LifetimeOptions{Horizon: horizon})
	if !died {
		// Physical models lose at least the delivered charge, so the
		// crossing is within the horizon; not dying means a pathological
		// model (for example sigma < delivered). Report the horizon.
		return horizon, fmt.Errorf("battery: no crossing within horizon %g", horizon)
	}
	return t, nil
}

// RecoverableIn reports how much apparent charge the battery regains if it
// rests for `rest` minutes after the profile ends: sigma(end) − sigma(end+rest).
// It is zero for models without a recovery effect.
func RecoverableIn(m Model, p Profile, rest float64) float64 {
	end := p.TotalTime()
	return m.ChargeLost(p, end) - m.ChargeLost(p, end+rest)
}

// DeathCheck reports whether a battery of capacity alpha survives the whole
// profile, and if not, when it dies.
func DeathCheck(m Model, p Profile, alpha float64) (diesAt float64, dies bool) {
	t, died := Lifetime(m, p, alpha, LifetimeOptions{})
	if !died {
		return math.Inf(1), false
	}
	return t, true
}

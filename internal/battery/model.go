package battery

// Model estimates the apparent charge a load profile has drawn from a
// battery. Implementations differ in how they account for the rate-capacity
// effect (high currents waste capacity) and the recovery effect (rest
// periods restore some of it).
//
// The schedulers may evaluate a model from several goroutines at once
// (parallel window sweeps, concurrent multi-start restarts, batch
// engine jobs), so implementations must be safe for concurrent
// ChargeLost calls; every model in this package is a stateless value.
type Model interface {
	// ChargeLost returns sigma(at): the apparent charge (mA·min) the
	// battery has lost by time `at` under profile p. For nonlinear
	// models this exceeds the delivered charge while the load is
	// active and relaxes back toward it during rest. Implementations
	// must treat times beyond the profile end as rest.
	ChargeLost(p Profile, at float64) float64
	// Name identifies the model in reports.
	Name() string
}

// UnavailableCharge returns sigma(at) minus the delivered charge: the part
// of the apparent loss that is temporarily bound in the battery's interior
// (zero for ideal models, non-negative for physical ones).
func UnavailableCharge(m Model, p Profile, at float64) float64 {
	return m.ChargeLost(p, at) - p.DeliveredCharge(at)
}
